// Quickstart: parse the paper's Figure 1 purchase order, validate it
// against the Figures 2/3 schema, then break it and watch the runtime
// validator catch each problem — the workflow V-DOM exists to replace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

func main() {
	// 1. Parse the schema (paper Fig. 2/3).
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		log.Fatalf("schema: %v", err)
	}
	fmt.Println("schema parsed: purchase order vocabulary")
	fmt.Printf("  global elements: purchaseOrder, comment\n")
	fmt.Printf("  named types:     PurchaseOrderType, USAddress, Items, SKU\n\n")

	// 2. Parse the instance (paper Fig. 1) into a DOM tree.
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		log.Fatalf("document: %v", err)
	}
	root := doc.DocumentElement()
	fmt.Printf("document parsed: <%s orderDate=%q> with %d children\n\n",
		root.TagName(), root.GetAttribute("orderDate"), len(root.ChildElements()))

	// 3. Validate — the Fig. 1 document is valid.
	v := validator.New(schema, nil)
	res := v.ValidateDocument(doc)
	fmt.Printf("validation of Fig. 1: ok=%v\n\n", res.OK())

	// 4. Now the paper's point: with a generic DOM, nothing stops us
	// from building invalid trees. Each mutation below is legal DOM
	// surgery and is only caught by re-validating at runtime.
	mutate := func(label string, f func(d *dom.Document)) {
		d2, _ := dom.ParseString(schemas.PurchaseOrderDoc)
		f(d2)
		r := v.ValidateDocument(d2)
		fmt.Printf("mutation: %s\n", label)
		if r.OK() {
			fmt.Println("  -> still valid (!)")
		} else {
			fmt.Printf("  -> caught at runtime: %s\n", r.Violations[0].Error())
		}
	}
	mutate("remove required <billTo>", func(d *dom.Document) {
		r := d.DocumentElement()
		bill := r.ChildElements()[1]
		_, _ = r.RemoveChild(bill)
	})
	mutate("swap <shipTo> and <billTo>", func(d *dom.Document) {
		r := d.DocumentElement()
		ship := r.ChildElements()[0]
		bill := r.ChildElements()[1]
		_, _ = r.InsertBefore(bill, ship)
	})
	mutate("set quantity to 100 (maxExclusive)", func(d *dom.Document) {
		q := d.GetElementsByTagName("quantity")[0]
		q.ChildNodes()[0].(*dom.Text).Data = "100"
	})
	mutate("break the SKU pattern", func(d *dom.Document) {
		item := d.GetElementsByTagName("item")[0]
		item.SetAttribute("partNum", "bad-sku")
	})

	// 5. Serialize back out (round trip).
	var sb strings.Builder
	_ = dom.Serialize(&sb, doc, &dom.SerializeOptions{Indent: "  ", OmitXMLDecl: true})
	fmt.Printf("\nre-serialized document (%d bytes) round-trips losslessly\n", sb.Len())
}
