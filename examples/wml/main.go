// WML example (paper §5): the media-archive directory browser page, shown
// three ways:
//
//  1. the Fig. 8 string-template version (compiles even when broken),
//  2. the Fig. 10 P-XML source, preprocessed to Fig. 11 V-DOM code, and
//  3. the Fig. 11 typed construction executed directly.
//
// Run with: go run ./examples/wml
package main

import (
	"fmt"
	"log"

	"repro/internal/gen/wmlgen"
	"repro/internal/normalize"
	"repro/internal/pxml"
	"repro/internal/stringgen"
	"repro/internal/vdom"
	"repro/internal/wml"
)

// fig10 is the paper's Fig. 10 page in P-XML notation.
const fig10 = `package pages

//pxml:package wmlgen
//pxml:doc d

func directoryPage(d *wmlgen.Document, currentDir, parentDir, subDir string, subDirs []string) *wmlgen.PElement {
	var p *wmlgen.PElement
	var s *wmlgen.SelectElement
	var o *wmlgen.OptionElement

	s = <select name="directories">
		<option value=$parentDir$>..</option>
	</select>;
	o = <option value=$subDir$>$subDirs[0]$</option>;
	p = <p>
		<b>$currentDir$</b>
		<br/>
		$s$
		<br/>
	</p>;
	return p
}
`

func main() {
	currentDir, parentDir := "/workspace/media", "/workspace"
	subDirs := []string{"audio", "video", "images"}

	// --- 1. Fig. 8: string templates. The broken twin compiles too. ---
	fmt.Println("=== Fig. 8: string-template page (runtime-checked only) ===")
	fmt.Print(stringgen.DirectoryPageWML(currentDir, parentDir, subDirs))
	fmt.Println("\n(the broken variant BrokenDirectoryPageWML compiles identically;")
	fmt.Println(" only parsing its output at runtime reveals the typo)")

	// --- 2. Fig. 10 -> Fig. 11: the P-XML preprocessor. ---
	pp, err := pxml.New(pxml.Options{
		SchemaSource: wml.Schema,
		Scheme:       normalize.SchemePaper,
	})
	if err != nil {
		log.Fatal(err)
	}
	rewritten, err := pp.Rewrite(fig10)
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}
	fmt.Println("\n=== Fig. 10 source preprocessed to Fig. 11 V-DOM code ===")
	fmt.Print(rewritten)

	// A constructor with an invalid page is rejected before any run:
	broken := `package pages
//pxml:package wmlgen
//pxml:doc d
func bad(d *wmlgen.Document) {
	p := <p><option value="x">misplaced</option></p>;
	_ = p
}
`
	if _, err := pp.Rewrite(broken); err != nil {
		fmt.Printf("\nstatic rejection of an invalid constructor:\n  %v\n", err)
	}

	// --- 3. Fig. 11 executed: the typed construction. ---
	d := wmlgen.NewDocument()
	opt, err := d.CreateOptionType("..")
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.SetValue2(parentDir); err != nil {
		log.Fatal(err)
	}
	sel := d.CreateSelectType().AddOption(d.CreateOption(opt))
	if err := sel.SetName("directories"); err != nil {
		log.Fatal(err)
	}
	for _, sub := range subDirs {
		o, err := d.CreateOptionType(sub)
		if err != nil {
			log.Fatal(err)
		}
		if err := o.SetValue2(currentDir + "/" + sub); err != nil {
			log.Fatal(err)
		}
		sel.AddOption(d.CreateOption(o))
	}
	p := d.CreatePType()
	p.Add(d.CreateB(currentDir))
	p.Add(d.CreateBr(d.CreateBrType()))
	p.Add(d.CreateSelect(sel))
	p.Add(d.CreateBr(d.CreateBrType()))

	deckCard := d.CreateCardType().AddP(d.CreateP(p))
	if err := deckCard.SetId("dirs"); err != nil {
		log.Fatal(err)
	}
	deck := d.CreateWml(d.CreateWmlType().AddCard(d.CreateCard(deckCard)))

	out, err := vdom.MarshalIndent(deck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Fig. 11 executed: schema-valid WML by construction ===")
	fmt.Println(out)
	if err := wmlgen.RT.Verify(deck); err != nil {
		log.Fatalf("impossible: V-DOM output failed validation: %v", err)
	}
	fmt.Println("(validator re-check: valid)")
}
