// Media archive example: the paper's motivating application [6,7] — a
// web system generating WML views over a hierarchical media store. An
// in-memory directory tree plays the database; for every directory the
// generator produces a browsing deck through the typed V-DOM API, so every
// generated page is schema-valid without a single test run.
//
// Run with: go run ./examples/mediaarchive
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/gen/wmlgen"
	"repro/internal/validator"
	"repro/internal/vdom"
)

// store is the archive's directory structure (the "database view").
type store struct {
	children map[string][]string // path -> child names
}

// newStore builds a small archive.
func newStore() *store {
	return &store{children: map[string][]string{
		"/workspace":              {"media", "papers"},
		"/workspace/media":        {"audio", "video", "images"},
		"/workspace/media/audio":  {"lectures", "interviews"},
		"/workspace/media/video":  {"lectures"},
		"/workspace/media/images": {},
		"/workspace/papers":       {"edbt2002"},
	}}
}

// parentOf mirrors the paper's Fig. 10 parent computation.
func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/workspace"
	}
	p := path[:i]
	if strings.TrimSpace(p) == "" {
		return "/workspace"
	}
	return p
}

// directoryDeck renders the browsing deck for one directory — the Fig. 10
// page generalized over the store.
func directoryDeck(d *wmlgen.Document, s *store, dir string) (*wmlgen.WmlElement, error) {
	subDirs := append([]string(nil), s.children[dir]...)
	sort.Strings(subDirs)

	parent, err := d.CreateOptionType("..")
	if err != nil {
		return nil, err
	}
	if err := parent.SetValue2(parentOf(dir)); err != nil {
		return nil, err
	}
	sel := d.CreateSelectType().AddOption(d.CreateOption(parent))
	if err := sel.SetName("directories"); err != nil {
		return nil, err
	}
	for _, sub := range subDirs {
		o, err := d.CreateOptionType(sub)
		if err != nil {
			return nil, err
		}
		if err := o.SetValue2(dir + "/" + sub); err != nil {
			return nil, err
		}
		sel.AddOption(d.CreateOption(o))
	}

	p := d.CreatePType()
	p.Add(d.CreateB(dir))
	p.Add(d.CreateBr(d.CreateBrType()))
	if len(subDirs) == 0 {
		p.Text("(no subdirectories)")
		p.Add(d.CreateBr(d.CreateBrType()))
	}
	p.Add(d.CreateSelect(sel))

	card := d.CreateCardType().AddP(d.CreateP(p))
	if err := card.SetId(idFor(dir)); err != nil {
		return nil, err
	}
	if err := card.SetTitle("Media Archive — " + dir); err != nil {
		return nil, err
	}
	return d.CreateWml(d.CreateWmlType().AddCard(d.CreateCard(card))), nil
}

// idFor makes an NMTOKEN card id from a path.
func idFor(dir string) string {
	id := strings.ReplaceAll(strings.TrimPrefix(dir, "/"), "/", ".")
	if id == "" {
		id = "root"
	}
	return id
}

func main() {
	s := newStore()
	d := wmlgen.NewDocument()
	v := validator.New(wmlgen.RT.Schema, nil)

	var dirs []string
	for dir := range s.children {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	total, bytes := 0, 0
	for _, dir := range dirs {
		deck, err := directoryDeck(d, s, dir)
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		doc, err := vdom.Marshal(deck)
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		// Belt and braces: the validator must agree (it always does —
		// that is the theorem).
		if res := v.ValidateDocument(doc); !res.OK() {
			log.Fatalf("%s: generated deck invalid: %v", dir, res.Err())
		}
		out, _ := vdom.MarshalString(deck)
		total++
		bytes += len(out)
		fmt.Printf("generated %-28s -> %4d bytes, valid WML\n", dir, len(out))
	}
	fmt.Printf("\n%d decks generated, %d bytes total, 0 invalid (by construction)\n\n", total, bytes)

	// Show one deck in full.
	deck, _ := directoryDeck(d, s, "/workspace/media")
	out, _ := vdom.MarshalIndent(deck)
	fmt.Println("deck for /workspace/media:")
	fmt.Println(out)
}
