// Purchase order example: build the paper's Figure 1 document through the
// generated V-DOM API (one distinct Go type per schema construct), print
// the Fig. 7 typed view next to the Fig. 4 untyped view, and demonstrate
// which mistakes have become impossible to write.
//
// Run with: go run ./examples/purchaseorder
package main

import (
	"fmt"
	"log"

	"repro/internal/dom"
	"repro/internal/gen/pogen"
	"repro/internal/validator"
	"repro/internal/vdom"
)

func main() {
	d := pogen.NewDocument()

	// The paper's §4 example, as typed constructor calls (the code the
	// P-XML preprocessor would emit from literal XML).
	shipTo := d.CreateShipTo(d.CreateUSAddressType(
		d.CreateName("Alice Smith"),
		d.CreateStreet("123 Maple Street"),
		d.CreateCity("Mill Valley"),
		d.CreateState("CA"),
		d.MustZip("90952"),
	))
	billTo := d.CreateBillTo(d.CreateUSAddressType(
		d.CreateName("Robert Smith"),
		d.CreateStreet("8 Oak Avenue"),
		d.CreateCity("Old Town"),
		d.CreateState("PA"),
		d.MustZip("95819"),
	))

	lawnmower := d.CreateItemTypeType(
		d.CreateProductName("Lawnmower"),
		d.MustQuantity("1"),
		d.MustUSPrice("148.95"),
	)
	lawnmower.SetComment(d.CreateComment("Confirm this is electric"))
	if err := lawnmower.SetPartNum("872-AA"); err != nil {
		log.Fatal(err)
	}

	monitor := d.CreateItemTypeType(
		d.CreateProductName("Baby Monitor"),
		d.MustQuantity("1"),
		d.MustUSPrice("39.98"),
	)
	monitor.SetShipDate(d.MustShipDate("1999-05-21"))
	if err := monitor.SetPartNum("926-AA"); err != nil {
		log.Fatal(err)
	}

	items := d.CreateItemsType().
		AddItem(d.CreateItem(lawnmower)).
		AddItem(d.CreateItem(monitor))

	order := d.CreatePurchaseOrderTypeType(shipTo, billTo, d.CreateItems(items))
	order.SetComment(d.CreateComment("Hurry, my lawn is going wild"))
	if err := order.SetOrderDate("1999-10-20"); err != nil {
		log.Fatal(err)
	}
	root := d.CreatePurchaseOrder(order)

	// Mistakes that no longer compile (each line is a real compile
	// error if uncommented — the paper's "no test runs needed"):
	//
	//   d.CreatePurchaseOrderTypeType(billTo, shipTo, items)   // wrong member types? No: both are address elements —
	//                                                          // but swapping shipTo/billTo *is* caught: the params are
	//                                                          // *ShipToElement and *BillToElement, distinct types.
	//   d.CreateShipTo(items)                 // items is not a USAddressType
	//   order.SetComment(shipTo)              // shipTo is not a CommentElement
	//   items.AddItem(d.CreateComment("x"))   // a comment is not an item

	// What stays dynamic (exactly the paper's rule-5/§3 concessions):
	if _, err := d.CreateQuantity("100"); err != nil {
		fmt.Printf("facet check at creation:  %v\n", err)
	}
	if err := order.SetOrderDate("not a date"); err != nil {
		fmt.Printf("attribute check at set:   %v\n\n", err)
	}

	// Fig. 7: the typed object hierarchy.
	fmt.Println("=== V-DOM view (paper Fig. 7: one interface per schema construct) ===")
	fmt.Print(vdom.Dump(root))

	// Fig. 4: the same tree, seen through plain DOM.
	doc, err := vdom.Marshal(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== DOM view (paper Fig. 4: every node is just an Element) ===")
	fmt.Print(dom.Dump(doc.DocumentElement()))

	// The central theorem, checked empirically: marshal + validate.
	res := validator.New(pogen.RT.Schema, nil).ValidateDocument(doc)
	fmt.Printf("\nvalidator agrees the V-DOM output is valid: %v\n", res.OK())

	fmt.Println("\n=== serialized document ===")
	out, err := vdom.MarshalIndent(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
