// Typed query example — the paper's §8 future work: "extensions to ...
// XQuery in such a way that a query which is applied to appropriate
// VDOM-objects can be guaranteed to result only in documents which are
// valid according to an underlying Xml schema."
//
// Queries are compiled against the schema: paths the schema makes
// impossible are rejected before any document is touched, and results
// carry their static type.
//
// Run with: go run ./examples/typedquery
package main

import (
	"fmt"
	"log"

	"repro/internal/dom"
	"repro/internal/query"
	"repro/internal/schemas"
	"repro/internal/xsd"
)

func main() {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		log.Fatal(err)
	}

	// Statically valid queries.
	for _, path := range []string{
		"/purchaseOrder/shipTo/name",
		"/purchaseOrder//productName",
		"/purchaseOrder/items/item/@partNum",
		"/purchaseOrder/items/item[@partNum='872-AA']/USPrice",
		"/purchaseOrder/items/item[2]/productName",
	} {
		q, err := query.Compile(schema, path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		typeLabel := "?"
		if d := q.ResultElement(); d != nil {
			typeLabel = "element <" + d.Name.Local + ">"
		} else if a := q.ResultAttribute(); a != nil {
			typeLabel = "attribute :" + a.Type.Name.Local
		}
		results, err := q.EvaluateStrings(doc)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%-55s -> %-22s %v\n", path, typeLabel, results)
	}

	// Statically impossible queries: rejected at compile time, with no
	// document in sight.
	fmt.Println("\nstatically rejected (the schema admits no such path):")
	for _, path := range []string{
		"/purchaseOrder/nayme",             // typo
		"/purchaseOrder/items/productName", // skipped a level
		"/purchaseOrder/shipTo/@postcode",  // undeclared attribute
	} {
		if _, err := query.Compile(schema, path); err != nil {
			fmt.Printf("  %-45s %v\n", path, err)
		} else {
			log.Fatalf("%s should have been rejected", path)
		}
	}
}
