package repro

// E6 — naming-scheme stability under schema evolution (paper §3). For the
// three evolutions the paper walks through we count how many generated
// group names change under each scheme:
//
//   evolution                     synthesized  inherited  paper(merged)
//   add a choice alternative      changes      stable     stable
//   append to a sequence          changes      stable(*)  changes
//   insert mid-sequence           changes      changes    changes
//   named group (explicit)        stable       stable     stable
//
// (*) the paper argues a changed sequence SHOULD change its name — the
// type's value space really changed — which is why it merges the schemes.

import (
	"strings"
	"testing"

	"repro/internal/normalize"
	"repro/internal/xsd"
)

// namesUnder normalizes a schema and returns its generated group names.
func namesUnder(t *testing.T, src string, scheme normalize.Scheme) map[string]bool {
	t.Helper()
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	n, err := normalize.Normalize(s, scheme)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, g := range n.Groups {
		out[g.Name] = true
	}
	return out
}

// stability compares before/after name sets: kept is the count of names
// surviving the evolution.
func stability(before, after map[string]bool) (kept, lost int) {
	for n := range before {
		if after[n] {
			kept++
		} else {
			lost++
		}
	}
	return
}

const e6Base = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string"/>
      <xsd:choice>
        <xsd:element name="a" type="xsd:string"/>
        <xsd:element name="b" type="xsd:string"/>
      </xsd:choice>
      <xsd:sequence minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="k" type="xsd:string"/>
        <xsd:element name="v" type="xsd:string"/>
      </xsd:sequence>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

// TestE6NamingStability reproduces the §3 argument quantitatively.
func TestE6NamingStability(t *testing.T) {
	evolutions := []struct {
		name     string
		old, new string
	}{
		{
			name: "add choice alternative",
			old:  `<xsd:element name="b" type="xsd:string"/>`,
			new: `<xsd:element name="b" type="xsd:string"/>
        <xsd:element name="c" type="xsd:string"/>`,
		},
		{
			name: "append to repeated sequence",
			old:  `<xsd:element name="v" type="xsd:string"/>`,
			new: `<xsd:element name="v" type="xsd:string"/>
        <xsd:element name="w" type="xsd:string"/>`,
		},
		{
			name: "insert before the choice",
			old:  `<xsd:element name="head" type="xsd:string"/>`,
			new: `<xsd:element name="head" type="xsd:string"/>
      <xsd:element name="inserted" type="xsd:string"/>`,
		},
	}
	schemes := []normalize.Scheme{normalize.SchemeSynthesized, normalize.SchemeInherited, normalize.SchemePaper}

	t.Logf("%-30s %-14s %-8s %-8s", "evolution", "scheme", "kept", "lost")
	type key struct {
		evo    string
		scheme normalize.Scheme
	}
	results := map[key]int{} // lost counts
	for _, evo := range evolutions {
		after := strings.Replace(e6Base, evo.old, evo.new, 1)
		if after == e6Base {
			t.Fatalf("evolution %q did not apply", evo.name)
		}
		for _, scheme := range schemes {
			before := namesUnder(t, e6Base, scheme)
			post := namesUnder(t, after, scheme)
			kept, lost := stability(before, post)
			results[key{evo.name, scheme}] = lost
			t.Logf("%-30s %-14s %-8d %-8d", evo.name, scheme.String(), kept, lost)
		}
	}

	// The §3 claims, as assertions:
	// 1. Synthesized naming breaks on an added choice alternative...
	if results[key{"add choice alternative", normalize.SchemeSynthesized}] == 0 {
		t.Error("synthesized naming should lose the choice name when an alternative is added")
	}
	// ...inherited (and the merged paper scheme) keep it.
	if results[key{"add choice alternative", normalize.SchemeInherited}] != 0 {
		t.Error("inherited naming should keep the choice name when an alternative is added")
	}
	if results[key{"add choice alternative", normalize.SchemePaper}] != 0 {
		t.Error("the merged scheme should keep the choice name when an alternative is added")
	}
	// 2. Appending to a sequence: synthesized (and merged) change the
	// sequence's name — the desired behaviour per the paper.
	if results[key{"append to repeated sequence", normalize.SchemeSynthesized}] == 0 {
		t.Error("synthesized naming should rename an extended sequence")
	}
	if results[key{"append to repeated sequence", normalize.SchemePaper}] == 0 {
		t.Error("the merged scheme should rename an extended sequence")
	}
	// 3. Mid-sequence insertion shifts inherited positional names (the
	// limitation the paper solves with explicit named groups).
	if results[key{"insert before the choice", normalize.SchemeInherited}] == 0 {
		t.Error("inherited naming should shift positional names on mid-sequence insertion")
	}
}

// TestE6ExplicitNamingFixesInsertion shows the paper's remedy: pulling the
// choice into a named xs:group keeps its name across every evolution.
func TestE6ExplicitNamingFixesInsertion(t *testing.T) {
	base := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:group name="ABChoice">
    <xsd:choice>
      <xsd:element name="a" type="xsd:string"/>
      <xsd:element name="b" type="xsd:string"/>
    </xsd:choice>
  </xsd:group>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string"/>
      <xsd:group ref="ABChoice"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	evolved := strings.Replace(base, `<xsd:element name="head" type="xsd:string"/>`,
		`<xsd:element name="head" type="xsd:string"/>
      <xsd:element name="inserted" type="xsd:string"/>`, 1)
	for _, scheme := range []normalize.Scheme{normalize.SchemeSynthesized, normalize.SchemeInherited, normalize.SchemePaper} {
		before := namesUnder(t, base, scheme)
		after := namesUnder(t, evolved, scheme)
		if _, lost := stability(before, after); lost != 0 {
			t.Errorf("%v: explicit group name lost on insertion (before %v, after %v)", scheme, before, after)
		}
	}
}
