package repro

// Smoke tests for the example applications: each runs to completion and
// prints its key artifacts.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	cmd := exec.Command("go", "run", "./examples/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"validation of Fig. 1: ok=true",
		"caught at runtime",
		"maxExclusive",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}

func TestExamplePurchaseOrder(t *testing.T) {
	out := runExample(t, "purchaseorder")
	for _, want := range []string{
		"purchaseOrderElement",  // Fig. 7 view
		"Element purchaseOrder", // Fig. 4 view
		"validator agrees the V-DOM output is valid: true",
		`<item partNum="872-AA">`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("purchaseorder output missing %q", want)
		}
	}
}

func TestExampleWML(t *testing.T) {
	out := runExample(t, "wml")
	for _, want := range []string{
		"=== Fig. 10 source preprocessed to Fig. 11 V-DOM code ===",
		"d.CreateSelectType()",
		"static rejection of an invalid constructor",
		"(validator re-check: valid)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wml output missing %q", want)
		}
	}
}

func TestExampleMediaArchive(t *testing.T) {
	out := runExample(t, "mediaarchive")
	if !strings.Contains(out, "0 invalid (by construction)") {
		t.Errorf("mediaarchive output missing the validity line:\n%s", out)
	}
	if !strings.Contains(out, `<option value="/workspace">..</option>`) {
		t.Errorf("mediaarchive deck missing parent option")
	}
}

func TestExampleTypedQuery(t *testing.T) {
	out := runExample(t, "typedquery")
	for _, want := range []string{
		"[Alice Smith]",
		"attribute :SKU",
		"statically rejected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("typedquery output missing %q", want)
		}
	}
}
