//go:build unix

package repro

// Integration test for the cluster tier: boots a real 3-node xsdserved
// fleet on loopback ports and proves the three claims the tier makes.
// Any node answers any schema correctly (ring routing). A SIGHUP reload
// on ONE node converges the whole fleet's registry snapshots (gossip
// pull). And draining one node out of the fleet under live xsdblast
// load loses zero requests (drain notice + proxy failover).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/schemas"
)

// clusterStatus mirrors cluster.Status (decoded from /v1/cluster).
type clusterStatus struct {
	Self        string   `json:"self"`
	Mode        string   `json:"mode"`
	Draining    bool     `json:"draining"`
	Generation  int64    `json:"generation"`
	Fingerprint string   `json:"fingerprint"`
	Schemas     int      `json:"schemas"`
	Owned       []string `json:"owned"`
	Peers       []struct {
		Addr        string `json:"addr"`
		Alive       bool   `json:"alive"`
		Fingerprint string `json:"fingerprint"`
	} `json:"peers"`
	Divergence int64 `json:"divergence"`
}

// blastReport mirrors the xsdblast -json document.
type blastReport struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Invalid  int64 `json:"invalid"`
	Shed     int64 `json:"shed"`
	Failed   int64 `json:"failed"`
	Latency  struct {
		P50Ns int64 `json:"p50_ns"`
		P99Ns int64 `json:"p99_ns"`
	} `json:"latency"`
	FirstError string `json:"first_error,omitempty"`
}

// reservePorts grabs n distinct loopback ports by listening and
// closing. The tiny reuse race is acceptable in a test that needs
// concrete addresses BEFORE any process starts (the peer list must be
// complete when the first node boots).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

type fleetProc struct {
	addr   string
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

func (p *fleetProc) url() string { return "http://" + p.addr }

func TestClusterFleet(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	if testing.Short() {
		t.Skip("integration test builds and boots binaries")
	}

	binDir := t.TempDir()
	served := filepath.Join(binDir, "xsdserved")
	blastBin := filepath.Join(binDir, "xsdblast")
	if out, err := exec.Command("go", "build", "-o", served, "./cmd/xsdserved").CombinedOutput(); err != nil {
		t.Fatalf("building xsdserved: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", blastBin, "./cmd/xsdblast").CombinedOutput(); err != nil {
		t.Fatalf("building xsdblast: %v\n%s", err, out)
	}

	schemaDir := t.TempDir()
	poPath := filepath.Join(schemaDir, "po.xsd")
	base := time.Now().Add(-time.Hour)
	if err := os.WriteFile(poPath, []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(poPath, base, base); err != nil {
		t.Fatal(err)
	}

	addrs := reservePorts(t, 3)
	peers := strings.Join(addrs, ",")
	fleet := make([]*fleetProc, len(addrs))
	for i, addr := range addrs {
		// -reload 0: no mtime poll, so every reload in this test is
		// attributable to SIGHUP or a gossip pull. -gossip 150ms keeps
		// convergence (and drain awareness) well inside the timeouts.
		cmd := exec.Command(served,
			"-addr", addr,
			"-schemas", schemaDir,
			"-reload", "0",
			"-cluster-self", addr,
			"-cluster-peers", peers,
			"-gossip", "150ms",
			"-drain-notice", "1500ms",
			"-drain", "10s",
			"-timeout", "10s")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		p := &fleetProc{addr: addr, cmd: cmd, stderr: &stderr}
		fleet[i] = p
		t.Cleanup(func() {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill() //nolint:errcheck
				p.cmd.Wait()         //nolint:errcheck
			}
			if t.Failed() {
				t.Logf("node %s stderr:\n%s", p.addr, p.stderr.String())
			}
		})
		ready := make(chan struct{})
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "xsdserved listening on ") {
					close(ready)
					return
				}
			}
		}()
		select {
		case <-ready:
		case <-time.After(20 * time.Second):
			t.Fatalf("node %s never announced; stderr:\n%s", addr, stderr.String())
		}
	}

	getStatus := func(p *fleetProc) clusterStatus {
		t.Helper()
		var st clusterStatus
		if code := getJSON(t, p.url()+"/v1/cluster", &st); code != http.StatusOK {
			t.Fatalf("GET %s/v1/cluster = %d", p.addr, code)
		}
		return st
	}

	// --- Fleet status first: a node booting ahead of its peers marks
	// them dead on its first gossip sweep (and rightly serves locally
	// meanwhile), so routing assertions wait until every node sees the
	// whole fleet alive and converged at generation 1.
	waitForFleet(t, "initial convergence", fleet, func() bool {
		for _, p := range fleet {
			st := getStatus(p)
			if st.Self != p.addr || st.Schemas != 1 || len(st.Peers) != 2 {
				t.Fatalf("node %s status malformed: %+v", p.addr, st)
			}
			if st.Generation != 1 || st.Divergence != 0 {
				return false
			}
			for _, peer := range st.Peers {
				if !peer.Alive {
					return false
				}
			}
		}
		return true
	})

	// --- Routing: every node answers the po document correctly, and the
	// fleet agrees on a single owner (one local answer, two proxies to
	// the same peer).
	ownerByRoute := map[string]int{}
	for _, p := range fleet {
		resp, err := http.Post(p.url()+"/v1/validate/po", "application/xml",
			strings.NewReader(schemas.PurchaseOrderDoc))
		if err != nil {
			t.Fatalf("POST to %s: %v", p.addr, err)
		}
		var v serveResponse
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !v.Valid {
			t.Fatalf("node %s: status %d valid=%v", p.addr, resp.StatusCode, v.Valid)
		}
		route := resp.Header.Get("X-Xsd-Cluster-Route")
		switch {
		case route == "local":
			ownerByRoute[p.addr]++
		case strings.HasPrefix(route, "proxy:"):
			ownerByRoute[strings.TrimPrefix(route, "proxy:")]++
		default:
			t.Fatalf("node %s: unexpected route %q", p.addr, route)
		}
	}
	if len(ownerByRoute) != 1 {
		t.Fatalf("fleet disagrees on po's owner: %v", ownerByRoute)
	}
	var ownerAddr string
	for a := range ownerByRoute {
		ownerAddr = a
	}

	// Unknown schemas are 404 from every node, no proxy hop.
	for _, p := range fleet {
		resp, err := http.Post(p.url()+"/v1/validate/nosuch", "application/xml",
			strings.NewReader(schemas.PurchaseOrderDoc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("node %s: unknown schema answered %d", p.addr, resp.StatusCode)
		}
	}

	// --- Convergence: rewrite the schema, SIGHUP ONE node; gossip must
	// pull the other two to the same generation and fingerprint.
	poV2 := strings.Replace(schemas.PurchaseOrderXSD,
		`<xsd:element name="items" type="Items"/>`,
		`<xsd:element name="items" type="Items"/>
      <xsd:element name="priority" type="xsd:string" minOccurs="0"/>`, 1)
	if err := os.WriteFile(poPath, []byte(poV2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fleet[0].cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitForFleet(t, "post-SIGHUP convergence", fleet, func() bool {
		var fp string
		for i, p := range fleet {
			st := getStatus(p)
			if st.Generation != 2 || st.Divergence != 0 {
				return false
			}
			if i == 0 {
				fp = st.Fingerprint
			} else if st.Fingerprint != fp {
				return false
			}
		}
		return true
	})
	// The new version serves from every entry point.
	for _, p := range fleet {
		var l serveSchemas
		getJSON(t, p.url()+"/v1/schemas", &l)
		if len(l.Schemas) != 1 || l.Schemas[0].Version != 2 {
			t.Fatalf("node %s serves %+v after convergence, want po v2", p.addr, l.Schemas)
		}
	}

	// --- Lossless drain: blast the two NON-owner nodes while the owner
	// leaves the fleet. The drain notice flags the owner via gossip, the
	// survivors stop proxying to it, and not one request fails.
	var owner *fleetProc
	var survivors []*fleetProc
	for _, p := range fleet {
		if p.addr == ownerAddr {
			owner = p
		} else {
			survivors = append(survivors, p)
		}
	}
	targets := survivors[0].url() + "," + survivors[1].url()
	blastOut := filepath.Join(binDir, "blast.json")
	blast := exec.Command(blastBin,
		"-targets", targets,
		"-schema", "po",
		"-sample",
		"-mix", "validate=6,batch=1,decode=1",
		"-rate", "80",
		"-c", "4",
		"-d", "5s",
		"-json", blastOut)
	blastStderr := &bytes.Buffer{}
	blast.Stderr = blastStderr
	blastDone := make(chan error, 1)
	if err := blast.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { blastDone <- blast.Wait() }()

	// Let load flow through the full fleet first, then drain the owner.
	time.Sleep(1 * time.Second)
	if err := owner.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	ownerExit := make(chan error, 1)
	go func() { ownerExit <- owner.cmd.Wait() }()

	select {
	case err := <-blastDone:
		if err != nil {
			t.Fatalf("xsdblast exited non-zero: %v\nstderr:\n%s", err, blastStderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("xsdblast never finished")
	}
	select {
	case err := <-ownerExit:
		if err != nil {
			t.Fatalf("owner exited non-zero after SIGTERM: %v\nstderr:\n%s", err, owner.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("owner never exited after SIGTERM")
	}

	raw, err := os.ReadFile(blastOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep blastReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("blast report not JSON: %v\n%s", err, raw)
	}
	if rep.Requests == 0 {
		t.Fatal("blast issued no requests")
	}
	if rep.Failed != 0 {
		t.Fatalf("draining the owner failed %d of %d requests (first: %s)\nreport: %s",
			rep.Failed, rep.Requests, rep.FirstError, raw)
	}
	if rep.Invalid != 0 {
		t.Fatalf("%d verdicts went invalid during the drain: %s", rep.Invalid, raw)
	}
	t.Logf("drain run: %d requests, %d ok, %d shed, 0 failed, p50=%s p99=%s",
		rep.Requests, rep.OK, rep.Shed,
		time.Duration(rep.Latency.P50Ns), time.Duration(rep.Latency.P99Ns))

	// The survivors keep answering po — now without the old owner.
	for _, p := range survivors {
		v := postForVerdict(t, p.url()+"/v1/validate/po", schemas.PurchaseOrderDoc)
		if !v.Valid || v.SchemaVersion != 2 {
			t.Fatalf("survivor %s verdict = %+v after drain", p.addr, v)
		}
	}
}

// waitForFleet polls cond until it holds or a deadline passes. cond may
// call t.Fatal for structural failures; returning false means "not yet".
func waitForFleet(t *testing.T, what string, fleet []*fleetProc, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, p := range fleet {
		t.Logf("node %s stderr:\n%s", p.addr, p.stderr.String())
	}
	t.Fatalf("timed out waiting for %s", what)
}
