package repro

// Benchmark harness: one benchmark family per experiment in EXPERIMENTS.md.
// The paper (an application paper) publishes no measured tables; the
// experiments below quantify the claims its prose makes — above all §7's
// "the major disadvantage of [low-level bindings] is the expensive
// validation at run-time", which V-DOM removes.

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/blast"
	"repro/internal/cluster"
	"repro/internal/compat"
	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/gen/calcgen"
	"repro/internal/gen/evolvedgen"
	"repro/internal/gen/pogen"
	"repro/internal/normalize"
	"repro/internal/obs"
	"repro/internal/pxml"
	"repro/internal/registry"
	"repro/internal/schemas"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/stringgen"
	"repro/internal/validator"
	"repro/internal/vdom"
	"repro/internal/wml"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
	"repro/internal/xsdregex"
)

// ---------------------------------------------------------------------------
// E2 — build-and-guarantee cost: DOM+validate vs V-DOM vs string+reparse.
// ---------------------------------------------------------------------------

// orderSizes sweeps the number of items per order.
var orderSizes = []int{1, 10, 100, 1000}

// buildDOMOrder builds an n-item order as a generic DOM tree.
func buildDOMOrder(n int) *dom.Document {
	doc := dom.NewDocument()
	root := doc.CreateElement("purchaseOrder")
	_, _ = doc.AppendChild(root)
	root.SetAttribute("orderDate", "1999-10-20")
	addr := func(tag string) {
		e := doc.CreateElement(tag)
		e.SetAttribute("country", "US")
		for _, kv := range [][2]string{{"name", "n"}, {"street", "s"}, {"city", "c"}, {"state", "st"}, {"zip", "90952"}} {
			c := doc.CreateElement(kv[0])
			_, _ = c.AppendChild(doc.CreateTextNode(kv[1]))
			_, _ = e.AppendChild(c)
		}
		_, _ = root.AppendChild(e)
	}
	addr("shipTo")
	addr("billTo")
	items := doc.CreateElement("items")
	_, _ = root.AppendChild(items)
	for i := 0; i < n; i++ {
		item := doc.CreateElement("item")
		item.SetAttribute("partNum", "926-AA")
		for _, kv := range [][2]string{{"productName", "p"}, {"quantity", "1"}, {"USPrice", "1.50"}} {
			c := doc.CreateElement(kv[0])
			_, _ = c.AppendChild(doc.CreateTextNode(kv[1]))
			_, _ = item.AppendChild(c)
		}
		_, _ = items.AppendChild(item)
	}
	return doc
}

// buildVDOMOrder builds the same order through the typed bindings.
func buildVDOMOrder(d *pogen.Document, n int) *pogen.PurchaseOrderElement {
	addr := func() *pogen.USAddressType {
		return d.CreateUSAddressType(
			d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"),
			d.CreateState("st"), d.MustZip("90952"))
	}
	items := d.CreateItemsType()
	for i := 0; i < n; i++ {
		it := d.CreateItemTypeType(d.CreateProductName("p"), d.MustQuantity("1"), d.MustUSPrice("1.50"))
		if err := it.SetPartNum("926-AA"); err != nil {
			panic(err)
		}
		items.AddItem(d.CreateItem(it))
	}
	po := d.CreatePurchaseOrderTypeType(d.CreateShipTo(addr()), d.CreateBillTo(addr()), d.CreateItems(items))
	if err := po.SetOrderDate("1999-10-20"); err != nil {
		panic(err)
	}
	return d.CreatePurchaseOrder(po)
}

var poSchemaOnce *xsd.Schema

func poSchema(b testing.TB) *xsd.Schema {
	if poSchemaOnce == nil {
		s, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
		if err != nil {
			b.Fatal(err)
		}
		poSchemaOnce = s
	}
	return poSchemaOnce
}

// BenchmarkE2_DOMBuildAndValidate is the paper's baseline: build a generic
// DOM tree, then pay a full validation pass to learn whether it is valid.
func BenchmarkE2_DOMBuildAndValidate(b *testing.B) {
	v := validator.New(poSchema(b), nil)
	for _, n := range orderSizes {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc := buildDOMOrder(n)
				if res := v.ValidateDocument(doc); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// BenchmarkE2_VDOMBuildAndMarshal is V-DOM: typed construction plus
// materialization; validity needs no separate pass.
func BenchmarkE2_VDOMBuildAndMarshal(b *testing.B) {
	d := pogen.NewDocument()
	for _, n := range orderSizes {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				root := buildVDOMOrder(d, n)
				if _, err := vdom.Marshal(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_StringGenReparseValidate is the §7 "marshalling" path:
// concatenate strings, then parse AND validate the output to establish
// validity.
func BenchmarkE2_StringGenReparseValidate(b *testing.B) {
	schema := poSchema(b)
	for _, n := range orderSizes {
		// stringgen only emits one item; build n-item source here.
		var sb strings.Builder
		sb.WriteString(`<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></shipTo>`)
		sb.WriteString(`<billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></billTo><items>`)
		for i := 0; i < n; i++ {
			sb.WriteString(`<item partNum="926-AA"><productName>p</productName><quantity>1</quantity><USPrice>1.50</USPrice></item>`)
		}
		sb.WriteString(`</items></purchaseOrder>`)
		src := []byte(sb.String())
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				_, res := validator.ValidateBytes(schema, src)
				if !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// BenchmarkE2_VDOMSerializeOnly isolates serialization throughput of the
// typed path.
func BenchmarkE2_VDOMSerializeOnly(b *testing.B) {
	d := pogen.NewDocument()
	root := buildVDOMOrder(d, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vdom.MarshalString(root); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — content-model automaton construction (paper §6 cites the
// Aho–Sethi–Ullman construction for its preprocessor generator).
// ---------------------------------------------------------------------------

// syntheticModel builds a sequence of k choice groups of width w.
func syntheticModel(k, w int) *contentmodel.Particle {
	var seq []*contentmodel.Particle
	for i := 0; i < k; i++ {
		var alts []*contentmodel.Particle
		for j := 0; j < w; j++ {
			name := fmt.Sprintf("e%d_%d", i, j)
			alts = append(alts, contentmodel.NewElementLeaf(1, 1, contentmodel.Symbol{Local: name}, name))
		}
		seq = append(seq, contentmodel.NewChoice(0, 1, alts...))
	}
	return contentmodel.NewSequence(1, 1, seq...)
}

// BenchmarkE3_GlushkovConstruction measures automaton build time against
// model size.
func BenchmarkE3_GlushkovConstruction(b *testing.B) {
	for _, size := range []struct{ k, w int }{{4, 2}, {16, 4}, {64, 4}, {128, 8}} {
		p := syntheticModel(size.k, size.w)
		b.Run(fmt.Sprintf("groups=%d_width=%d", size.k, size.w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := contentmodel.CompileGlushkov(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_UPACheck measures the determinism check.
func BenchmarkE3_UPACheck(b *testing.B) {
	p := syntheticModel(64, 4)
	g, err := contentmodel.CompileGlushkov(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.CheckUPA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MatcherGlushkovVsInterp compares the two matchers on
// the purchase order items model (the ablation DESIGN.md §5 calls out).
func BenchmarkAblation_MatcherGlushkovVsInterp(b *testing.B) {
	p := contentmodel.NewSequence(1, 1,
		contentmodel.NewElementLeaf(0, contentmodel.Unbounded, contentmodel.Symbol{Local: "item"}, "item"))
	input := make([]contentmodel.Symbol, 1000)
	for i := range input {
		input[i] = contentmodel.Symbol{Local: "item"}
	}
	g, err := contentmodel.CompileGlushkov(p)
	if err != nil {
		b.Fatal(err)
	}
	in := contentmodel.NewInterp(p)
	b.Run("glushkov", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Match(input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := in.Match(input); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E4 — pattern facet matching: NFA simulation vs followpos DFA.
// ---------------------------------------------------------------------------

// BenchmarkE4_PatternCompile measures compilation of the paper's SKU
// pattern and a heavier real-world pattern.
func BenchmarkE4_PatternCompile(b *testing.B) {
	patterns := map[string]string{
		"sku":   `\d{3}-[A-Z]{2}`,
		"email": `([a-zA-Z0-9._%+-])+@([a-zA-Z0-9.-])+`,
		"iban":  `[A-Z]{2}[0-9]{2}[A-Z0-9]{1,30}`,
	}
	for name, pat := range patterns {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := xsdregex.Compile(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4_PatternMatch compares the NFA and DFA matchers on SKU
// checking — the per-value cost the validator pays for pattern facets.
func BenchmarkE4_PatternMatch(b *testing.B) {
	re := xsdregex.MustCompile(`\d{3}-[A-Z]{2}`)
	dfa, err := re.ToDFA()
	if err != nil {
		b.Fatal(err)
	}
	inputs := []string{"926-AA", "872-AB", "926-aa", "junk", "123-ZZ"}
	b.Run("nfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			re.MatchNFA(inputs[i%len(inputs)])
		}
	})
	b.Run("dfa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dfa.Match(inputs[i%len(inputs)])
		}
	})
}

// ---------------------------------------------------------------------------
// E5 — preprocessor throughput (Fig. 9 pipeline) vs runtime checking.
// ---------------------------------------------------------------------------

// syntheticPXML builds a source file with k shipTo constructors.
func syntheticPXML(k int) string {
	var sb strings.Builder
	sb.WriteString("package p\n//pxml:package pogen\n//pxml:doc d\nfunc f(d *pogen.Document) {\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "\ts%d := <shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></shipTo>;\n\t_ = s%d\n", i, i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BenchmarkE5_PreprocessorRewrite: constructors statically validated and
// rewritten per second.
func BenchmarkE5_PreprocessorRewrite(b *testing.B) {
	pp, err := pxml.New(pxml.Options{SchemaSource: schemas.PurchaseOrderXSD, Scheme: normalize.SchemePaper, Package: "pogen", DocExpr: "d"})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10, 100} {
		src := syntheticPXML(k)
		b.Run(fmt.Sprintf("constructors=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := pp.Rewrite(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_RuntimeEquivalent: the runtime cost the preprocessor
// replaces — parsing and validating the same fragment per request.
func BenchmarkE5_RuntimeEquivalent(b *testing.B) {
	schema := poSchema(b)
	v := validator.New(schema, nil)
	fragment := []byte(`<shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></shipTo>`)
	shipType := schema.Types[xsd.QName{Local: "USAddress"}]
	b.SetBytes(int64(len(fragment)))
	for i := 0; i < b.N; i++ {
		doc, err := dom.Parse(fragment)
		if err != nil {
			b.Fatal(err)
		}
		// Validate the fragment against its declaration (shipTo is a
		// local element; validate via its type through a synthetic
		// declaration).
		root := doc.DocumentElement()
		res := v.ValidateElement(root, &xsd.ElementDecl{
			Name: xsd.QName{Local: "shipTo"},
			Type: shipType,
		})
		if !res.OK() {
			b.Fatal(res.Err())
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate benchmarks: parser, schema compiler, generator, serializer.
// ---------------------------------------------------------------------------

// BenchmarkParseXML measures raw parser throughput on the Fig. 1 document.
func BenchmarkParseXML(b *testing.B) {
	src := []byte(schemas.PurchaseOrderDoc)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := xmlparser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseToDOM measures parse + tree construction.
func BenchmarkParseToDOM(b *testing.B) {
	src := []byte(schemas.PurchaseOrderDoc)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := dom.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaCompile measures schema parsing and resolution (the
// preprocessor generator's first step, Fig. 9).
func BenchmarkSchemaCompile(b *testing.B) {
	for _, tc := range []struct{ name, src string }{
		{"purchaseOrder", schemas.PurchaseOrderXSD},
		{"wml", wml.Schema},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(tc.src)))
			for i := 0; i < b.N; i++ {
				if _, err := xsd.ParseString(tc.src, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidateFig1 measures one full validation of the paper's
// instance document.
func BenchmarkValidateFig1(b *testing.B) {
	schema := poSchema(b)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		b.Fatal(err)
	}
	v := validator.New(schema, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := v.ValidateDocument(doc); !res.OK() {
			b.Fatal(res.Err())
		}
	}
}

// ---------------------------------------------------------------------------
// E7 (concurrency addendum) — compiled content-model cache + batch pool.
// ---------------------------------------------------------------------------

// BenchmarkE7_CachedValidate isolates the Validator's compiled
// content-model cache. "cold" builds a fresh Validator per iteration, so
// every complex type's Glushkov automaton recompiles on each validation —
// the pre-cache behaviour. "warm" reuses one Validator (the
// BenchmarkValidateFig1 configuration): after the first iteration every
// content-model lookup is a cache hit, which shows up as the time and
// allocations/op drop between the two sub-benchmarks.
func BenchmarkE7_CachedValidate(b *testing.B) {
	schema := poSchema(b)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold-recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := validator.New(schema, nil)
			if res := v.ValidateDocument(doc); !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
	b.Run("warm-cached", func(b *testing.B) {
		b.ReportAllocs()
		v := validator.New(schema, nil)
		for i := 0; i < b.N; i++ {
			if res := v.ValidateDocument(doc); !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
}

// BenchmarkE7_ParallelBatchValidate compares a sequential loop over a
// 64-document batch against ValidateBatch's bounded worker pool, both
// through one shared Validator (so both paths enjoy the model cache; the
// delta is pure parallelism).
func BenchmarkE7_ParallelBatchValidate(b *testing.B) {
	schema := poSchema(b)
	const batchSize = 64
	docs := make([]*dom.Document, batchSize)
	for i := range docs {
		doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
		if err != nil {
			b.Fatal(err)
		}
		docs[i] = doc
	}
	b.Run("sequential", func(b *testing.B) {
		v := validator.New(schema, nil)
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				if res := v.ValidateDocument(doc); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		}
	})
	b.Run("batch-parallel", func(b *testing.B) {
		v := validator.New(schema, nil)
		for i := 0; i < b.N; i++ {
			for _, res := range v.ValidateBatch(docs) {
				if !res.OK() {
					b.Fatal(res.Err())
				}
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E8 — streaming validation: DOM build + validate vs incremental checking.
// ---------------------------------------------------------------------------

// largePOSource emits an n-item purchase order as raw bytes, the input
// shape both E8 paths start from.
func largePOSource(n int) []byte {
	var sb strings.Builder
	sb.WriteString(`<purchaseOrder orderDate="1999-10-20"><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></shipTo>`)
	sb.WriteString(`<billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></billTo><items>`)
	for i := 0; i < n; i++ {
		sb.WriteString(`<item partNum="926-AA"><productName>p</productName><quantity>1</quantity><USPrice>1.50</USPrice><shipDate>1999-12-21</shipDate></item>`)
	}
	sb.WriteString(`</items></purchaseOrder>`)
	return []byte(sb.String())
}

// BenchmarkE8_StreamValidate compares the two ways to answer "are these
// bytes schema-valid": the DOM path (parse into a tree, then walk it) and
// the streaming path (drive the cached Glushkov automata directly off the
// token stream, O(depth) live state). The headline number is bytes/op:
// the stream never materializes the document.
func BenchmarkE8_StreamValidate(b *testing.B) {
	v := validator.New(poSchema(b), nil)
	sv := v.Stream()
	for _, n := range orderSizes {
		src := largePOSource(n)
		b.Run(fmt.Sprintf("dom/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				doc, err := dom.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				if res := v.ValidateDocument(doc); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
		b.Run(fmt.Sprintf("stream/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if res := sv.ValidateBytes(src); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// BenchmarkE6_NormalizeSchemes measures normalization under each naming
// scheme (the cost side of E6; the stability side is TestE6NamingStability).
func BenchmarkE6_NormalizeSchemes(b *testing.B) {
	schema := poSchema(b)
	for _, scheme := range []normalize.Scheme{normalize.SchemePaper, normalize.SchemeSynthesized, normalize.SchemeInherited} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := normalize.Normalize(schema, scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStringGen is the raw concatenation generator — fastest and
// unsafest corner of the design space.
func BenchmarkStringGen(b *testing.B) {
	subDirs := []string{"audio", "video", "images"}
	for i := 0; i < b.N; i++ {
		stringgen.DirectoryPageWML("/workspace/media", "/workspace", subDirs)
	}
}

// ---------------------------------------------------------------------------
// E10 — lazy-DFA content-model execution vs NFA position-set stepping.
// ---------------------------------------------------------------------------

// e10Models builds the stepper micro-benchmark corpus: the purchase-order
// items model under a long repeated-child stream, and a wide synthetic
// choice pipeline where the NFA carries many live candidates per step.
func e10Models(b *testing.B) []struct {
	name  string
	g     *contentmodel.Glushkov
	input []contentmodel.Symbol
} {
	items := contentmodel.NewSequence(1, 1,
		contentmodel.NewElementLeaf(0, contentmodel.Unbounded, contentmodel.Symbol{Local: "item"}, "item"))
	itemsInput := make([]contentmodel.Symbol, 1000)
	for i := range itemsInput {
		itemsInput[i] = contentmodel.Symbol{Local: "item"}
	}
	wide := syntheticModel(32, 16)
	wideInput := make([]contentmodel.Symbol, 32)
	for i := range wideInput {
		wideInput[i] = contentmodel.Symbol{Local: fmt.Sprintf("e%d_%d", i, i%16)}
	}
	out := []struct {
		name  string
		g     *contentmodel.Glushkov
		input []contentmodel.Symbol
	}{
		{"po-items-1000", nil, itemsInput},
		{"wide-choice-k32w16", nil, wideInput},
	}
	for i, p := range []*contentmodel.Particle{items, wide} {
		g, err := contentmodel.CompileGlushkov(p)
		if err != nil {
			b.Fatal(err)
		}
		if !g.EnableDFA(contentmodel.NewInterner(), 0) {
			b.Fatalf("%s: EnableDFA refused", out[i].name)
		}
		out[i].g = g
	}
	return out
}

// BenchmarkE10_ContentModelStep isolates the stepper: one Run reused via
// Reset (the validator's hot pattern), DFA execution vs NFA position sets
// over identical inputs. The DFA is warmed by a first pass so the numbers
// reflect steady state, as in repeated validation against a cached model.
func BenchmarkE10_ContentModelStep(b *testing.B) {
	for _, m := range e10Models(b) {
		run := func(b *testing.B, r *contentmodel.Run) {
			b.Helper()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Reset(m.g)
				for _, s := range m.input {
					if _, err := r.Step(s); err != nil {
						b.Fatal(err)
					}
				}
				if err := r.End(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(m.name+"/dfa", func(b *testing.B) { run(b, m.g.Start()) })
		b.Run(m.name+"/nfa", func(b *testing.B) { run(b, m.g.StartNFA()) })
	}
}

// BenchmarkE10_WarmValidate measures the end-to-end effect: repeated
// whole-document validation of a 100-item purchase order through one
// cached Validator, DFA on vs off.
func BenchmarkE10_WarmValidate(b *testing.B) {
	schema := poSchema(b)
	doc, err := dom.Parse(largePOSource(100))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts *validator.Options
	}{
		{"dfa", nil},
		{"nodfa", &validator.Options{DisableDFA: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			v := validator.New(schema, cfg.opts)
			for i := 0; i < b.N; i++ {
				if res := v.ValidateDocument(doc); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// BenchmarkE10_ParseValidateRelease is the allocation story: the full
// parse → validate → discard loop with the pooled DOM arena recycled via
// Release, against the same loop leaking documents to the collector.
func BenchmarkE10_ParseValidateRelease(b *testing.B) {
	schema := poSchema(b)
	src := []byte(schemas.PurchaseOrderDoc)
	v := validator.New(schema, nil)
	b.Run("release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc, err := dom.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			if res := v.ValidateDocument(doc); !res.OK() {
				b.Fatal(res.Err())
			}
			doc.Release()
		}
	})
	b.Run("no-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc, err := dom.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			if res := v.ValidateDocument(doc); !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E11 — service throughput: the HTTP validation endpoints end to end.
// ---------------------------------------------------------------------------

// BenchmarkE11_ServerValidate measures what a client of xsdserved actually
// pays: HTTP request + body transfer + validation + JSON verdict, against
// a warm registry (schemas compiled once, content-model caches hot). The
// DOM/stream split shows how much of the per-request cost is tree
// materialization once the transport overhead is shared; bytes/op is the
// request body size, so the sweep over item counts reads as throughput
// scaling.
func BenchmarkE11_ServerValidate(b *testing.B) {
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		b.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Registry: reg}).Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(b *testing.B, url string, src []byte) {
		b.Helper()
		resp, err := client.Post(url, "application/xml", bytes.NewReader(src))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	for _, n := range []int{1, 100, 1000} {
		src := largePOSource(n)
		for _, mode := range []struct{ name, query string }{
			{"dom", ""},
			{"stream", "?stream=1"},
		} {
			url := ts.URL + "/v1/validate/po" + mode.query
			b.Run(fmt.Sprintf("%s/items=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(src)))
				for i := 0; i < b.N; i++ {
					post(b, url, src)
				}
			})
		}
	}
	// The concurrent shape: many clients against one warm server, the
	// limiter admitting up to 4×GOMAXPROCS validations at once.
	src := largePOSource(100)
	url := ts.URL + "/v1/validate/po"
	b.Run("dom/items=100/parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				post(b, url, src)
			}
		})
	})
}

// ---------------------------------------------------------------------------
// E12 — schema-directed binding: validate+decode in one pass vs the parts.
// ---------------------------------------------------------------------------

// e12POJSON is the untyped struct encoding/xml users reach for when they
// want "the purchase order as data" — the no-schema baseline: decoded
// fields are strings, nothing is validated, and attribute defaults are
// simply absent.
type e12PO struct {
	OrderDate string `xml:"orderDate,attr"`
	Items     struct {
		Item []struct {
			PartNum     string `xml:"partNum,attr"`
			ProductName string `xml:"productName"`
			Quantity    string `xml:"quantity"`
			USPrice     string `xml:"USPrice"`
		} `xml:"item"`
	} `xml:"items"`
}

// BenchmarkE12_Decode measures what the one-pass promise costs: stream
// validation alone (the floor the decoder rides on), DOM decode (parse →
// validate → walk the tree), stream decode (typed values built from the
// same frames that validate, no DOM), and encoding/xml (decode without
// any verdict). The acceptance bar is stream decode ≤ 2× the stream
// validator's B/op at 1000 items — the typed value tree is the only
// extra allocation the binding adds.
func BenchmarkE12_Decode(b *testing.B) {
	schema := poSchema(b)
	v := validator.New(schema, nil)
	bn := bind.New(schema, v)
	sv := v.Stream()
	for _, n := range []int{1, 100, 1000} {
		src := largePOSource(n)
		b.Run(fmt.Sprintf("validate-stream/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if res := sv.ValidateBytes(src); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
		b.Run(fmt.Sprintf("decode-dom/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				val, res := bn.DecodeBytes(src)
				if val == nil {
					b.Fatal(res.Err())
				}
			}
		})
		b.Run(fmt.Sprintf("decode-stream/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				val, res, err := bn.DecodeStreamBytes(src)
				if err != nil {
					b.Fatal(err)
				}
				if val == nil {
					b.Fatal(res.Err())
				}
			}
		})
		b.Run(fmt.Sprintf("encoding-xml/items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				var po e12PO
				if err := xml.Unmarshal(src, &po); err != nil {
					b.Fatal(err)
				}
				if len(po.Items.Item) != n {
					b.Fatalf("decoded %d items, want %d", len(po.Items.Item), n)
				}
			}
		})
	}
}

// BenchmarkE12_JSONAndMarshal covers the other two legs of the round
// trip at a fixed size: projecting a decoded value to canonical JSON,
// and marshalling it back to XML (which re-parses and re-validates the
// output — the cost of the schema-valid-by-construction guarantee).
func BenchmarkE12_JSONAndMarshal(b *testing.B) {
	schema := poSchema(b)
	bn := bind.New(schema, nil)
	src := largePOSource(100)
	val, res := bn.DecodeBytes(src)
	if val == nil {
		b.Fatal(res.Err())
	}
	b.Run("json/items=100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(bn.JSON(val)) == 0 {
				b.Fatal("empty JSON")
			}
		}
	})
	b.Run("marshal/items=100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bn.Marshal(val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E13 — registry cold-start and compatibility checking at fleet scale.
// ---------------------------------------------------------------------------

// writeSchemaGraph materializes an n-schema import graph: one shared
// library under lib/ plus n top-level schemas, each in its own namespace,
// importing it. This is the worst case for the per-reload cache (every
// dependent pulls the same file) and the best case for the parallel pool
// (compilations are independent).
func writeSchemaGraph(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		b.Fatal(err)
	}
	lib := `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:shared"
            xmlns:s="urn:shared">
  <xsd:complexType name="Meta">
    <xsd:sequence>
      <xsd:element name="id" type="xsd:string"/>
      <xsd:element name="rev" type="xsd:positiveInteger" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	if err := os.WriteFile(filepath.Join(dir, "lib", "common.xsd"), []byte(lib), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:s%d"
            xmlns:s="urn:shared" elementFormDefault="qualified">
  <xsd:import namespace="urn:shared" schemaLocation="lib/common.xsd"/>
  <xsd:element name="doc%d">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="meta" type="s:Meta"/>
        <xsd:element name="body" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence>
      <xsd:attribute name="lang" type="xsd:language" default="en"/>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`, i, i)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("s%04d.xsd", i)), []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// BenchmarkE13_ColdStart prices bringing a registry from empty to serving
// over an n-schema import graph: every iteration starts a fresh registry
// (cold caches) and runs one full Reload. The serial leg pins the compile
// pool to one worker; the parallel/serial ratio is the payoff of
// compiling changed schemas concurrently under the shared per-reload
// stat/read cache.
func BenchmarkE13_ColdStart(b *testing.B) {
	for _, n := range []int{200, 1000} {
		dir := writeSchemaGraph(b, n)
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"parallel", 0},
			{"serial", 1},
		} {
			b.Run(fmt.Sprintf("%s/schemas=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					reg := registry.New(dir, nil)
					reg.Workers = mode.workers
					changed, err := reg.Reload()
					if err != nil {
						b.Fatal(err)
					}
					if changed != n {
						b.Fatalf("cold start loaded %d schemas, want %d", changed, n)
					}
				}
			})
		}
	}
}

// BenchmarkE13_WarmReload prices the steady state the watcher lives in: a
// no-op Reload over an already-loaded 1000-schema graph, where change
// detection stats each closure file once (shared library included) and
// every entry keeps its warm validator.
func BenchmarkE13_WarmReload(b *testing.B) {
	const n = 1000
	dir := writeSchemaGraph(b, n)
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		changed, err := reg.Reload()
		if err != nil {
			b.Fatal(err)
		}
		if changed != 0 {
			b.Fatalf("warm reload recompiled %d schemas, want 0", changed)
		}
	}
}

// BenchmarkE13_CompatClassify prices the compatibility gate itself:
// classifying every evolvedgen old/new schema pair (inclusion checks over
// Glushkov product constructions plus the structural simple-type walk).
// Parsing is hoisted out — a reload classifies already-parsed schemas.
func BenchmarkE13_CompatClassify(b *testing.B) {
	type parsedPair struct{ old, new *xsd.Schema }
	var pairs []parsedPair
	for _, p := range evolvedgen.Pairs() {
		oldS, err := xsd.ParseString(p.Old, nil)
		if err != nil {
			b.Fatalf("%s old: %v", p.Name, err)
		}
		newS, err := xsd.ParseString(p.New, nil)
		if err != nil {
			b.Fatalf("%s new: %v", p.Name, err)
		}
		pairs = append(pairs, parsedPair{oldS, newS})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if rep := compat.Classify(p.old, p.new); rep == nil {
				b.Fatal("nil report")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// E15 — zero-copy SWAR tokenization + intra-document parallel validation.
// ---------------------------------------------------------------------------

// e15TextDoc builds a ~1MB text-dominated document: long character runs
// with newlines, the shape the SWAR word sweep is built for.
func e15TextDoc() []byte {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "<p>line %d: ", i)
		sb.WriteString(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 10))
		sb.WriteString("</p>")
	}
	sb.WriteString("</doc>")
	return []byte(sb.String())
}

// BenchmarkE15_TokenizerScan prices a full tokenization pass two ways:
// zero-copy (tokens consumed through Bytes, nothing materialized) and
// materialized (Data() on every token — the pre-zero-copy behavior every
// consumer was forced into). The B/op gap is the tentpole metric: the
// zero-copy scan allocates near-nothing per document regardless of size.
func BenchmarkE15_TokenizerScan(b *testing.B) {
	docs := []struct {
		name string
		src  []byte
	}{
		{"text-heavy-1MB", e15TextDoc()},
		{"markup-heavy-1MB", []byte(strings.Repeat(`<item partNum="001-AB"><productName>Widget</productName><quantity>1</quantity><USPrice>9.95</USPrice></item>`, 9000))},
	}
	for _, d := range docs {
		b.Run(d.name+"/zero-copy", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(d.src)))
			for i := 0; i < b.N; i++ {
				dec := xmlparser.NewDecoder(d.src, &xmlparser.Options{Fragment: true})
				var n int
				for {
					tok, err := dec.Token()
					if err != nil {
						b.Fatal(err)
					}
					if tok == nil {
						break
					}
					n += len(tok.Bytes())
				}
				if n == 0 {
					b.Fatal("no bytes scanned")
				}
			}
		})
		b.Run(d.name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(d.src)))
			for i := 0; i < b.N; i++ {
				dec := xmlparser.NewDecoder(d.src, &xmlparser.Options{Fragment: true})
				var n int
				for {
					tok, err := dec.Token()
					if err != nil {
						b.Fatal(err)
					}
					if tok == nil {
						break
					}
					n += len(tok.Data())
				}
				if n == 0 {
					b.Fatal("no bytes scanned")
				}
			}
		})
	}
}

// BenchmarkE15_ParallelValidate prices the intra-document worker pool on
// a ~4.5MB purchase order (30k items): the workers=1 leg is the plain
// sequential walk; the scaling legs split the depth-1 subtrees across
// explicit pool sizes. Verdict equality with the sequential walk is
// enforced by the E15 differential suite; this measures only the speedup.
func BenchmarkE15_ParallelValidate(b *testing.B) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		b.Fatal(err)
	}
	src := []byte(syntheticOrder(30000, false))
	doc, err := dom.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	v := validator.New(schema, nil)
	if res := v.ValidateDocument(doc); !res.OK() {
		b.Fatalf("bench document invalid: %v", res.Err())
	}
	b.Logf("document: %.1f MB", float64(len(src))/(1<<20))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				var res *validator.Result
				if workers == 1 {
					res = v.ValidateDocument(doc)
				} else {
					res = v.ParallelValidate(doc, workers)
				}
				if !res.OK() {
					b.Fatal("verdict flipped")
				}
			}
		})
	}
	// End-to-end leg: bytes in, verdict out (parse + parallel validate),
	// the shape the server's ?parallel=1 path runs.
	b.Run("bytes-to-verdict/parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			d, res := validator.ParallelValidateBytes(schema, src, 0)
			if res == nil || !res.OK() {
				b.Fatal("verdict flipped")
			}
			d.Release()
		}
	})
}

// ---------------------------------------------------------------------------
// E16 — typed RPC: what the SOAP envelope adds over bare validation.
// ---------------------------------------------------------------------------

// BenchmarkE16_SOAP prices the envelope layer against the validation
// floor it rides on. payload/validate is the bar: parse + validate just
// the operation payload. envelope/handle adds the full dispatch stack —
// envelope framing, operation routing, in-place payload validation,
// typed decode, the handler, response marshal (re-validated) and
// envelope wrap. rpc/http is what a generated-client caller actually
// pays, transport included, against the service mounted on the shared
// serving stack.
func BenchmarkE16_SOAP(b *testing.B) {
	d, err := calcgen.Definitions()
	if err != nil {
		b.Fatal(err)
	}
	addHandler := func(svc *soap.Service) soap.Handler {
		return func(_ context.Context, req *bind.Value) (*bind.Value, error) {
			sum := 0
			for _, c := range req.Children {
				n, _ := strconv.Atoi(c.Simple.String())
				sum += n
			}
			return svc.Binder().FromJSON([]byte(fmt.Sprintf(`{"$element":"AddResponse","sum":%d}`, sum)))
		}
	}
	svc, err := soap.NewService(d, "Calc")
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Register("Add", addHandler(svc)); err != nil {
		b.Fatal(err)
	}

	payload := []byte(`<c:AddRequest xmlns:c="urn:calc"><c:a>40</c:a><c:b>2</c:b></c:AddRequest>`)
	envelope := []byte(`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
		`<c:AddRequest xmlns:c="urn:calc"><c:a>40</c:a><c:b>2</c:b></c:AddRequest></e:Body></e:Envelope>`)
	val := validator.New(d.Schema, nil)
	ctx := context.Background()

	b.Run("payload/validate", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			doc, err := dom.Parse(payload)
			if err != nil {
				b.Fatal(err)
			}
			if !val.ValidateDocument(doc).OK() {
				b.Fatal("verdict flipped")
			}
			doc.Release()
		}
	})
	b.Run("envelope/handle", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(envelope)))
		for i := 0; i < b.N; i++ {
			resp := svc.Handle(ctx, envelope, "")
			if resp.Faulted {
				b.Fatalf("faulted: %s", resp.Body)
			}
		}
	})

	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		b.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{Registry: reg})
	srv.RegisterSOAP(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := calcgen.NewClient(ts.URL + "/v1/soap/Calc")
	if err != nil {
		b.Fatal(err)
	}
	req, err := client.Binder().FromJSON([]byte(`{"$element":"AddRequest","a":40,"b":2}`))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rpc/http", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(envelope)))
		for i := 0; i < b.N; i++ {
			if _, err := client.Add(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rpc/http/parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(envelope)))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.Add(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// ---------------------------------------------------------------------------
// E17 — cluster tier: fleet routing cost, batch amortization, pooled
// response buffers, and shared-parse cold start.
// ---------------------------------------------------------------------------

// benchFleet boots n in-process nodes over one schema directory and
// returns their base URLs. n == 1 serves the bare handler (no cluster
// wrap) so the single-node leg prices the server alone; n > 1 wraps
// each node in proxy-mode routing, so requests landing on a non-owner
// pay the forward hop — exactly what a round-robin client sees against
// a real fleet.
func benchFleet(b *testing.B, dir string, n int) []string {
	b.Helper()
	servers := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		addrs[i] = servers[i].Listener.Addr().String()
	}
	for i, ts := range servers {
		reg := registry.New(dir, nil)
		if _, err := reg.Reload(); err != nil {
			b.Fatal(err)
		}
		met := &obs.Metrics{}
		srv := server.New(server.Config{Registry: reg, Metrics: met})
		if n == 1 {
			ts.Config.Handler = srv.Handler()
		} else {
			node, err := cluster.New(cluster.Config{
				Self:     addrs[i],
				Peers:    addrs,
				Registry: reg,
				Metrics:  met,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts.Config.Handler = node.Wrap(srv.Handler())
		}
		ts.Start()
		b.Cleanup(ts.Close)
	}
	targets := make([]string, n)
	for i, a := range addrs {
		targets[i] = "http://" + a
	}
	return targets
}

// BenchmarkE17_ClusterServe drives the blast harness against a single
// node and a 3-node fleet, per-document and batched. ns/op is wall
// time per REQUEST (a batch request carries 16 documents — read the
// docs/s extra metric for per-document throughput); p50/p90/p99-ns are
// client-observed latency quantiles from the run's histogram. The
// nodes=3 legs include the proxy hop for the ~2/3 of round-robin
// requests that land on a non-owner.
func BenchmarkE17_ClusterServe(b *testing.B) {
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		b.Fatal(err)
	}
	doc := largePOSource(10)
	legs := []struct {
		name  string
		mix   blast.Mix
		batch int
	}{
		{"validate", blast.Mix{Validate: 1}, 0},
		{"batch16", blast.Mix{Batch: 1}, 16},
	}
	for _, nodes := range []int{1, 3} {
		for _, leg := range legs {
			b.Run(fmt.Sprintf("%s/nodes=%d", leg.name, nodes), func(b *testing.B) {
				targets := benchFleet(b, dir, nodes)
				b.SetBytes(int64(len(doc)))
				b.ResetTimer()
				res, err := blast.Run(context.Background(), blast.Config{
					Targets:       targets,
					Schema:        "po",
					Doc:           doc,
					Mix:           leg.mix,
					Concurrency:   8,
					TotalRequests: int64(b.N),
					BatchSize:     leg.batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed > 0 || res.Invalid > 0 {
					b.Fatalf("blast run degraded: %d failed, %d invalid (%s)",
						res.Failed, res.Invalid, res.FirstError)
				}
				b.ReportMetric(float64(res.Latency.P50Ns), "p50-ns")
				b.ReportMetric(float64(res.Latency.P90Ns), "p90-ns")
				b.ReportMetric(float64(res.Latency.P99Ns), "p99-ns")
				b.ReportMetric(res.DocsPerSec, "docs/s")
			})
		}
	}
}

// BenchmarkE17_ResponseBuffer prices the pooled response-body path
// against per-request encoding, over a real connection — the pool's
// win is a pre-sized single-write response (exact Content-Length)
// where the direct path streams the encoder into the ResponseWriter
// and pays chunked framing plus extra write calls. The decode leg
// returns the whole document as canonical JSON, so the response body
// dwarfs the verdict and the framing difference is proportionally
// largest.
func BenchmarkE17_ResponseBuffer(b *testing.B) {
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		b.Fatal(err)
	}
	small, large := largePOSource(1), largePOSource(200)
	for _, leg := range []struct {
		name string
		path string
		doc  []byte
	}{
		{"validate-small", "/v1/validate/po", small},
		{"decode-200items", "/v1/decode/po", large},
	} {
		for _, variant := range []struct {
			name    string
			disable bool
		}{
			{"pooled", false},
			{"direct", true},
		} {
			b.Run(leg.name+"/"+variant.name, func(b *testing.B) {
				reg := registry.New(dir, nil)
				if _, err := reg.Reload(); err != nil {
					b.Fatal(err)
				}
				srv := server.New(server.Config{Registry: reg, DisableBufferPool: variant.disable})
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				url := ts.URL + leg.path
				b.ReportAllocs()
				b.SetBytes(int64(len(leg.doc)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(url, "application/xml", bytes.NewReader(leg.doc))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("%s answered %d", leg.path, resp.StatusCode)
					}
				}
			})
		}
	}
}

// BenchmarkE17_ColdStartSharedParse prices a registry cold start over a
// directory where 32 entries all import one shared library — the shape
// the per-reload DOM cache exists for. shared parses the library once
// per reload; direct re-parses it once per importer.
func BenchmarkE17_ColdStartSharedParse(b *testing.B) {
	dir := b.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		b.Fatal(err)
	}
	// A library big enough that parsing it is a measurable share of an
	// entry's compile cost.
	var lib strings.Builder
	lib.WriteString(`<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:benchlib">
  <xsd:complexType name="Meta"><xsd:sequence><xsd:element name="id" type="xsd:string"/></xsd:sequence></xsd:complexType>`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&lib, `
  <xsd:complexType name="T%02d"><xsd:sequence><xsd:element name="a" type="xsd:string"/><xsd:element name="b" type="xsd:int" minOccurs="0"/></xsd:sequence><xsd:attribute name="k" type="xsd:string"/></xsd:complexType>`, i)
	}
	lib.WriteString("\n</xsd:schema>\n")
	if err := os.WriteFile(filepath.Join(dir, "lib", "common.xsd"), []byte(lib.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		src := fmt.Sprintf(`<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:bench%02d"
            xmlns:l="urn:benchlib" elementFormDefault="qualified">
  <xsd:import namespace="urn:benchlib" schemaLocation="lib/common.xsd"/>
  <xsd:element name="doc"><xsd:complexType><xsd:sequence><xsd:element name="meta" type="l:Meta"/></xsd:sequence></xsd:complexType></xsd:element>
</xsd:schema>
`, i)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("bench%02d.xsd", i)), []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	for _, leg := range []struct {
		name    string
		disable bool
	}{
		{"shared", false},
		{"direct", true},
	} {
		b.Run(leg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reg := registry.New(dir, nil)
				reg.DisableSharedParse = leg.disable
				if _, err := reg.Reload(); err != nil {
					b.Fatal(err)
				}
				if len(reg.List()) != 32 {
					b.Fatalf("cold start compiled %d entries, want 32", len(reg.List()))
				}
			}
		})
	}
}
