// Command xmlfmt parses an XML document with the from-scratch parser and
// re-serializes it, optionally pretty-printed — a well-formedness checker
// and canonicalizer in one.
//
// Usage:
//
//	xmlfmt [-indent "  "] [-dump] file.xml
//
// With no file, standard input is read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dom"
)

func main() {
	indent := flag.String("indent", "  ", "indentation per level; empty disables pretty printing")
	dump := flag.Bool("dump", false, "print the DOM tree structure (paper Fig. 4 view) instead of XML")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: xmlfmt [-indent s] [-dump] [file.xml]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	doc, err := dom.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(dom.Dump(doc))
		return
	}
	if err := dom.Serialize(os.Stdout, doc, &dom.SerializeOptions{Indent: *indent}); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlfmt:", err)
	os.Exit(1)
}
