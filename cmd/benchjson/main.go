// Command benchjson converts `go test -bench` text output into JSON.
//
// Usage:
//
//	go test -run xxx -bench 'E7|E8|E10' -benchmem . | benchjson -o BENCH_PR3.json
//
// With no -o flag the JSON goes to stdout. The input is also echoed to
// stderr so the human-readable numbers stay visible when piping.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	quiet := flag.Bool("q", false, "do not echo the raw bench output to stderr")
	flag.Parse()

	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		os.Stderr.Write(raw)
	}
	run, err := benchjson.Parse(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	// benchjson runs in the same pipeline as the benchmarks, so the host
	// it sees is the host that produced the numbers.
	run.StampHost()
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}
