// Command xsdblast load-tests an xsdserved node or fleet: a mixed
// validate/decode/encode/batch workload at a target rate, reporting
// achieved throughput, p50/p90/p99 latency, and the error/shed split.
// It is the operational counterpart of the in-process benchmarks — the
// numbers an SLO conversation actually needs come from the far side of
// a real socket.
//
// Usage:
//
//	xsdblast -targets http://h1:8080,http://h2:8080 -schema po -sample \
//	    -mix validate=8,batch=1,decode=1 -rate 500 -d 30s -json out.json
//
// With -sample the built-in purchase-order document drives the run (the
// schema directory must serve it, e.g. xsdserved over a directory
// containing the po.xsd that /v1/schemas lists); -doc points at any
// other XML file instead. Exit status is non-zero when the run recorded
// failures (shed responses are not failures: the server kept its
// latency promise by refusing work).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/blast"
	"repro/internal/schemas"
)

func main() {
	var (
		targets = flag.String("targets", "http://127.0.0.1:8080", "comma-separated base URLs of the nodes to drive")
		schema  = flag.String("schema", "po", "registry schema name to exercise")
		docPath = flag.String("doc", "", "XML document to send (file path)")
		sample  = flag.Bool("sample", false, "use the built-in purchase-order sample document")
		mixSpec = flag.String("mix", "validate=1", "workload mix weights, e.g. validate=8,stream=2,batch=1,decode=2,encode=1")
		rate    = flag.Float64("rate", 0, "target requests/sec across all workers (0 = unthrottled)")
		conc    = flag.Int("c", 8, "concurrent workers")
		dur     = flag.Duration("d", 0, "run duration (0 = until -n requests)")
		total   = flag.Int64("n", 0, "total request budget (0 = until -d elapses)")
		batch   = flag.Int("batch", 16, "documents per batch request")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		jsonOut = flag.String("json", "", "write the full result as JSON to this file (- for stdout)")
	)
	flag.Parse()

	var doc []byte
	switch {
	case *docPath != "":
		var err error
		doc, err = os.ReadFile(*docPath)
		if err != nil {
			fatalf("reading -doc: %v", err)
		}
	case *sample:
		doc = []byte(schemas.PurchaseOrderDoc)
	default:
		fatalf("need -doc FILE or -sample")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatalf("%v", err)
	}
	if *dur <= 0 && *total <= 0 {
		fatalf("need a budget: -d DURATION and/or -n REQUESTS")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := blast.Run(ctx, blast.Config{
		Targets:       splitTargets(*targets),
		Schema:        *schema,
		Doc:           doc,
		Mix:           mix,
		Rate:          *rate,
		Concurrency:   *conc,
		Duration:      *dur,
		TotalRequests: *total,
		BatchSize:     *batch,
		Seed:          *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	printSummary(res)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatalf("writing -json: %v", err)
		}
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSuffix(strings.TrimSpace(t), "/"); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseMix reads "validate=8,batch=1"-style weight lists.
func parseMix(spec string) (blast.Mix, error) {
	var m blast.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		w := 1
		if ok {
			var err error
			if w, err = strconv.Atoi(v); err != nil || w < 0 {
				return m, fmt.Errorf("bad mix weight %q", part)
			}
		}
		switch k {
		case "validate":
			m.Validate = w
		case "stream":
			m.Stream = w
		case "batch":
			m.Batch = w
		case "decode":
			m.Decode = w
		case "encode":
			m.Encode = w
		default:
			return m, fmt.Errorf("unknown mix op %q (want validate, stream, batch, decode, encode)", k)
		}
	}
	return m, nil
}

func printSummary(res *blast.Result) {
	elapsed := time.Duration(res.ElapsedNs)
	fmt.Printf("requests  %d in %s (%.1f req/s, %.1f docs/s)\n",
		res.Requests, elapsed.Round(time.Millisecond), res.RPS, res.DocsPerSec)
	fmt.Printf("outcomes  ok=%d invalid=%d shed=%d failed=%d\n",
		res.OK, res.Invalid, res.Shed, res.Failed)
	fmt.Printf("latency   p50=%s p90=%s p99=%s max=%s\n",
		time.Duration(res.Latency.P50Ns).Round(time.Microsecond),
		time.Duration(res.Latency.P90Ns).Round(time.Microsecond),
		time.Duration(res.Latency.P99Ns).Round(time.Microsecond),
		time.Duration(res.Latency.MaxNs).Round(time.Microsecond))
	if len(res.ByOp) > 0 {
		parts := make([]string, 0, len(res.ByOp))
		for _, op := range []blast.Op{blast.OpValidate, blast.OpStream, blast.OpBatch, blast.OpDecode, blast.OpEncode} {
			if n := res.ByOp[op]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", op, n))
			}
		}
		fmt.Printf("mix       %s\n", strings.Join(parts, " "))
	}
	if res.FirstError != "" {
		fmt.Printf("first err %s\n", res.FirstError)
	}
}

// report is the -json document: the result plus enough host context to
// compare runs across machines.
type report struct {
	*blast.Result
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
}

func writeJSON(path string, res *blast.Result) error {
	rep := report{
		Result:     res,
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xsdblast: "+format+"\n", args...)
	os.Exit(1)
}
