// Command wsdlgen generates typed Go client and server stubs from a WSDL
// 1.1 service description (document/literal, SOAP 1.1 or 1.2).
//
// The generated package embeds the WSDL, rebuilds the service model and
// its compiled schema on first use, and exposes one method per operation
// on the client plus one handler field per operation on the server —
// every payload decoded and encoded through the schema's binder, so both
// directions are validated by construction.
//
// The WSDL must be self-contained: embedded <types> schemas may import
// each other by namespace, but file-based schemaLocation references are
// rejected so the generated package never depends on files at run time.
//
// Usage:
//
//	wsdlgen -wsdl calc.wsdl -package calcgen [-service Calc] [-o out.go]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codegen"
)

func main() {
	var (
		wsdlPath = flag.String("wsdl", "", "path to the WSDL document (required)")
		pkg      = flag.String("package", "stubs", "Go package name for the generated file")
		service  = flag.String("service", "", "wsdl:service to bind (default: the WSDL's only service)")
		out      = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()
	if *wsdlPath == "" {
		fmt.Fprintln(os.Stderr, "wsdlgen: -wsdl is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*wsdlPath)
	if err != nil {
		fatal(err)
	}
	code, err := codegen.GenerateWSDLStubs(string(src), codegen.WSDLOptions{
		Package: *pkg,
		Service: *service,
		Comment: filepath.Base(*wsdlPath),
	})
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wsdlgen: wrote %s (%d bytes)\n", *out, len(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsdlgen:", err)
	os.Exit(1)
}
