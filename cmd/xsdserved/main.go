// Command xsdserved is the long-running validation service: a schema
// registry served over HTTP, so consumers stop shelling out to xsdcheck
// per document and instead POST documents at a warm, concurrent,
// load-shedding validator — the paper's runtime validity guarantee as
// infrastructure.
//
// Usage:
//
//	xsdserved -schemas ./schemas [-addr 127.0.0.1:8080]
//
// Every *.xsd file in -schemas is served by base name:
//
//	curl -d @po.xml 'http://127.0.0.1:8080/v1/validate/po'
//	curl -d @po.xml 'http://127.0.0.1:8080/v1/validate/po?stream=1'
//	curl -d @big.xml 'http://127.0.0.1:8080/v1/validate/po?parallel=1' # split large documents across cores
//	curl -d @po.xml 'http://127.0.0.1:8080/v1/decode/po'          # validate + decode to canonical JSON
//	curl -d @po.xml 'http://127.0.0.1:8080/v1/decode/po?stream=1' # same, one pass over the wire bytes
//	curl -d @po.json 'http://127.0.0.1:8080/v1/encode/po'         # canonical JSON back to schema-valid XML
//	curl 'http://127.0.0.1:8080/v1/schemas'
//	curl 'http://127.0.0.1:8080/metrics'
//
// Schemas hot-reload on an mtime poll (-reload) and on SIGHUP; in-flight
// requests always finish on the schema version they started with.
// SIGINT/SIGTERM drain gracefully within -drain. Request logs are
// JSON-structured on stderr; the bound address is announced on stdout
// (useful with -addr :0).
//
// With -cluster-self and -cluster-peers a set of nodes becomes a
// schema-sharded fleet: each schema's traffic routes to its
// consistent-hash owner (-route proxy|redirect), /v1/cluster reports
// fleet state, and a gossip loop (-gossip) converges registry snapshots
// across nodes after any one of them reloads. SIGTERM first advertises
// draining for -drain-notice (503 on /healthz, flagged in gossip) so
// peers and load balancers steer away before the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/compat"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/soap"
	"repro/internal/validator"
	"repro/internal/wsdl"
)

// startPprof serves the net/http/pprof handlers on their own listener,
// refusing any address that does not resolve to a loopback interface.
func startPprof(logger *slog.Logger, addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -pprof-addr: %w", err)
	}
	if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("-pprof-addr %q is not a loopback address; profiling is local-only", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("pprof listening", "addr", ln.Addr().String())
	go func() {
		// DefaultServeMux carries the net/http/pprof registrations; the
		// service's own routes live on a private mux, so nothing else is
		// reachable here.
		srv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil {
			logger.Warn("pprof server stopped", "err", err.Error())
		}
	}()
	return nil
}

// loadSOAPServices builds a soap.Service for every service in every
// *.wsdl file of dir. No handlers are registered: the endpoints validate
// envelopes and echo WSDLs; schema-valid requests to an operation answer
// the not-implemented Fault. Duplicate service names across files are a
// configuration error, not a silent override.
func loadSOAPServices(dir string) ([]*soap.Service, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var services []*soap.Service
	seen := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wsdl") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		d, err := wsdl.ParseFile(path, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, ws := range d.Services {
			if prev, dup := seen[ws.Name]; dup {
				return nil, fmt.Errorf("%s: service %q already defined by %s", path, ws.Name, prev)
			}
			seen[ws.Name] = path
			svc, err := soap.NewService(d, ws.Name)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			services = append(services, svc)
		}
	}
	return services, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	dir := flag.String("schemas", "", "directory of *.xsd schema files (required)")
	reloadEvery := flag.Duration("reload", 10*time.Second, "schema-directory poll interval (0 disables polling; SIGHUP still reloads)")
	maxBody := flag.Int64("max-body", 16<<20, "request body cap in bytes")
	maxConc := flag.Int("max-concurrent", 0, "concurrent validation limit (0 = 4×GOMAXPROCS); excess load is shed with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request validation deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	nodfa := flag.Bool("nodfa", false, "disable the lazy-DFA content-model executor (NFA stepping)")
	gate := flag.String("compat-gate", "none", "reject reloaded schema versions below this compatibility level vs the serving version (none|backward|forward|full)")
	wsdls := flag.String("wsdls", "", "directory of *.wsdl service descriptions to mount at /v1/soap/{service} (envelope validation and WSDL echo; operations answer an unimplemented Fault)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty disables, non-loopback refused)")
	clusterSelf := flag.String("cluster-self", "", "this node's host:port as it appears in -cluster-peers (enables the cluster tier)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated host:port list of the full fleet, self included; every node must use the same list")
	routeMode := flag.String("route", "proxy", "what to do with requests for schemas another node owns (proxy|redirect)")
	gossipEvery := flag.Duration("gossip", time.Second, "peer status poll interval for the cluster gossip loop")
	drainNotice := flag.Duration("drain-notice", 3*time.Second, "after SIGTERM, advertise draining for this long (via /healthz and gossip) before closing the listener, so peers stop routing here first; 0 skips straight to drain")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: xsdserved -schemas dir [-addr host:port]")
		os.Exit(2)
	}
	gateLevel, err := compat.ParseLevel(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	metrics := &obs.Metrics{}
	reg := registry.New(*dir, &validator.Options{DisableDFA: *nodfa})
	reg.Gate = gateLevel
	reg.OnCompat = func(name string, rep *compat.Report, gated bool) {
		metrics.Compat.Observe(rep.Level.String(), gated)
		attrs := []any{"schema", name, "level", rep.Level.String(), "gated", gated}
		if len(rep.BackwardBreaks) > 0 {
			attrs = append(attrs, "backward_breaks", rep.BackwardBreaks)
		}
		if len(rep.ForwardBreaks) > 0 {
			attrs = append(attrs, "forward_breaks", rep.ForwardBreaks)
		}
		if gated {
			logger.Warn("schema version rejected by compatibility gate", attrs...)
		} else {
			logger.Info("schema compatibility", attrs...)
		}
	}
	reg.OnReload = func(gen int64, changed int, err error) {
		metrics.Reloads.Inc()
		switch {
		case err != nil:
			metrics.ReloadErrors.Inc()
			logger.Warn("reload", "generation", gen, "changed", changed, "err", err.Error())
		case changed > 0:
			logger.Info("reload", "generation", gen, "changed", changed)
		}
	}
	if _, err := reg.Reload(); err != nil && len(reg.List()) == 0 {
		// Per-file errors are tolerated (served as load_errors), but a
		// start with nothing loadable at all is a misconfiguration.
		logger.Error("no schemas loadable at startup", "dir", *dir, "err", err.Error())
		os.Exit(1)
	}
	for _, e := range reg.List() {
		logger.Info("schema loaded", "name", e.Name, "version", e.Version, "path", e.Path)
	}

	srv := server.New(server.Config{
		Registry:       reg,
		Metrics:        metrics,
		Logger:         logger,
		MaxBodyBytes:   *maxBody,
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
	})

	if *wsdls != "" {
		services, err := loadSOAPServices(*wsdls)
		if err != nil {
			logger.Error("loading WSDLs", "dir", *wsdls, "err", err.Error())
			os.Exit(1)
		}
		if len(services) == 0 {
			logger.Error("no services loadable", "dir", *wsdls)
			os.Exit(1)
		}
		for _, svc := range services {
			srv.RegisterSOAP(svc)
			logger.Info("SOAP service mounted", "service", svc.Name(),
				"operations", svc.Operations(), "path", "/v1/soap/"+svc.Name())
		}
	}

	if *pprofAddr != "" {
		// Profiling is opt-in and loopback-only: the pprof mux exposes heap
		// contents and symbol tables, so it never rides on the service
		// listener and never binds a routable interface.
		if err := startPprof(logger, *pprofAddr); err != nil {
			logger.Error("pprof", "addr", *pprofAddr, "err", err.Error())
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err.Error())
		os.Exit(1)
	}
	// Announced on stdout so wrappers (and the integration test) can
	// discover an ephemeral port.
	fmt.Printf("xsdserved listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "schemas", len(reg.List()))

	// SIGHUP kicks an immediate reload through the registry's watcher;
	// the non-blocking send coalesces a signal burst into one reload.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	kick := make(chan struct{}, 1)
	go func() {
		for range hup {
			select {
			case kick <- struct{}{}:
			default:
			}
		}
	}()
	go reg.Watch(ctx, *reloadEvery, kick)

	// With -cluster-self/-cluster-peers the serving handler is wrapped
	// in the ring-routing tier and the gossip loop starts: requests for
	// schemas another node owns are proxied (or 307ed) there, and peers'
	// registry snapshots are pulled into convergence. A pull reload
	// rides the same kick channel as SIGHUP, so gossip-triggered and
	// operator-triggered reloads coalesce instead of stacking.
	handler := srv.Handler()
	var clusterNode *cluster.Node
	if *clusterSelf != "" || *clusterPeers != "" {
		mode, err := cluster.ParseMode(*routeMode)
		if err != nil {
			logger.Error("cluster", "err", err.Error())
			os.Exit(2)
		}
		clusterNode, err = cluster.New(cluster.Config{
			Self:           *clusterSelf,
			Peers:          strings.Split(*clusterPeers, ","),
			Registry:       reg,
			Metrics:        metrics,
			Logger:         logger,
			Mode:           mode,
			GossipInterval: *gossipEvery,
			PullReload: func() {
				select {
				case kick <- struct{}{}:
				default:
				}
			},
		})
		if err != nil {
			logger.Error("cluster", "err", err.Error())
			os.Exit(2)
		}
		handler = clusterNode.Wrap(handler)
		go clusterNode.Gossip(ctx)
		logger.Info("cluster enabled", "self", *clusterSelf,
			"peers", clusterNode.Ring().Peers(), "mode", mode.String())
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("serve", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	// Drain in two phases. First ANNOUNCE: /healthz flips to 503
	// Draining and gossip carries the flag, so load balancers and peers
	// steer new work away while this listener still answers everything
	// in flight or newly arrived. Then DRAIN: close the listener and
	// wait out stragglers. The notice phase is what makes removing one
	// node from a fleet lossless — peers stop proxying here before the
	// socket stops accepting.
	srv.SetDraining(true)
	if clusterNode != nil {
		clusterNode.SetDraining(true)
	}
	if *drainNotice > 0 {
		logger.Info("drain notice", "notice", drainNotice.String())
		select {
		case <-time.After(*drainNotice):
		case err := <-serveErr:
			logger.Error("serve", "err", err.Error())
			os.Exit(1)
		}
	}
	logger.Info("shutting down", "drain", drain.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		logger.Warn("drain incomplete", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("bye")
}
