// Command pxmlc is the generated P-XML preprocessor of the paper's Fig. 9:
// it validates the XML constructors in a Go-like source file against an
// XML Schema — statically, without running the program — and rewrites them
// into V-DOM construction calls (Fig. 10 -> Fig. 11).
//
// Usage:
//
//	pxmlc -schema po.xsd -package pogen -doc d [-o out.go] input.go.pxml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/normalize"
	"repro/internal/pxml"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to the XML Schema (required)")
		pkg        = flag.String("package", "", "Go package identifier of the generated bindings")
		docExpr    = flag.String("doc", "", "expression of the *Document factory in scope")
		out        = flag.String("o", "", "output file (default: stdout)")
		checkOnly  = flag.Bool("check", false, "validate constructors without emitting output")
	)
	flag.Parse()
	if *schemaPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pxmlc -schema s.xsd [-package p -doc d] [-check] [-o out.go] input")
		os.Exit(2)
	}
	schemaSrc, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pp, err := pxml.New(pxml.Options{
		SchemaSource: string(schemaSrc),
		Scheme:       normalize.SchemePaper,
		Package:      *pkg,
		DocExpr:      *docExpr,
	})
	if err != nil {
		fatal(err)
	}
	rewritten, err := pp.Rewrite(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pxmlc: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Fprintf(os.Stderr, "pxmlc: %s: all constructors valid\n", flag.Arg(0))
		return
	}
	if *out == "" {
		fmt.Print(rewritten)
		return
	}
	if err := os.WriteFile(*out, []byte(rewritten), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmlc:", err)
	os.Exit(1)
}
