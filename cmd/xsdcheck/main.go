// Command xsdcheck validates XML documents against an XML Schema at
// runtime — the paper's baseline workflow that V-DOM renders unnecessary
// for generated documents.
//
// Usage:
//
//	xsdcheck -schema po.xsd doc1.xml [doc2.xml ...]
//
// The exit status is 0 when every document is valid, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the XML Schema (required)")
	quiet := flag.Bool("q", false, "suppress per-violation output")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xsdcheck -schema s.xsd doc.xml...")
		os.Exit(2)
	}
	schemaSrc, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, err := xsd.Parse(schemaSrc, nil)
	if err != nil {
		fatal(err)
	}
	v := validator.New(schema, nil)
	exit := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsdcheck: %v\n", err)
			exit = 1
			continue
		}
		doc, err := dom.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: not well-formed: %v\n", path, err)
			exit = 1
			continue
		}
		res := v.ValidateDocument(doc)
		if res.OK() {
			fmt.Printf("%s: valid\n", path)
			continue
		}
		exit = 1
		fmt.Printf("%s: INVALID (%d violations)\n", path, len(res.Violations))
		if !*quiet {
			for _, viol := range res.Violations {
				fmt.Printf("  %s\n", viol.Error())
			}
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsdcheck:", err)
	os.Exit(1)
}
