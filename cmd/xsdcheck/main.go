// Command xsdcheck validates XML documents against XML Schemas at
// runtime — the paper's baseline workflow that V-DOM renders unnecessary
// for generated documents.
//
// Usage:
//
//	xsdcheck -schema po.xsd doc1.xml [doc2.xml ...]
//	xsdcheck -schema po.xsd,inv.xsd docs/*.xml    # several schemas; documents dispatch by root element
//	xsdcheck -schemadir ./schemas docs/*.xml      # every top-level *.xsd in a directory tree
//	xsdcheck -schema po.xsd -json doc.xml         # decode valid documents to canonical JSON
//	xsdcheck -schema po.xsd -parallel big.xml     # split one large document across the cores
//
// Schemas may include or import other documents: references resolve
// relative to the referring file, confined to the schema's directory
// tree (-schemadir confines to that directory, so sibling folders like
// lib/ work, and builds a namespace catalog so imports without a
// schemaLocation resolve by target namespace). With more than one
// schema loaded, each document is routed to the schema that declares
// its root element as a global element.
//
// Document files are memory-mapped where the platform supports it (the
// parser is zero-copy, so validation runs straight out of the page
// cache); elsewhere they are read conventionally.
//
// Multiple documents are read, parsed and validated concurrently through
// shared validators (bounded by -p workers, default GOMAXPROCS), so each
// schema's content models compile once and every core helps with a bulk
// run. Reports are still printed in argument order. The exit status is 0
// when every document is valid, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/bind"
	"repro/internal/dom"
	"repro/internal/mmapfile"
	"repro/internal/validator"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
)

// report is the outcome of checking one file, formatted by the worker and
// printed by the main goroutine in argument order.
type report struct {
	out     string // stdout text
	errText string // stderr text
	failed  bool
}

// schemaEntry is one loaded schema with its shared validator (and binder
// when -json is on).
type schemaEntry struct {
	path   string
	schema *xsd.Schema
	v      *validator.Validator
	binder *bind.Binder
}

// schemaSet routes documents to schemas. With one schema every document
// goes to it (the validator reports unknown roots itself); with several,
// the document's root element picks the schema declaring it.
type schemaSet struct {
	entries []*schemaEntry
	byRoot  map[xsd.QName]*schemaEntry
}

func loadSchemas(paths []string, root string, vopts *validator.Options, withBinder bool) (*schemaSet, error) {
	set := &schemaSet{byRoot: map[xsd.QName]*schemaEntry{}}
	// With -schemadir, a namespace catalog over the directory lets
	// schemas import by namespace alone (no schemaLocation), same as the
	// serving registry.
	var catalog map[string]string
	if root != "" {
		var err error
		if catalog, err = xsd.BuildCatalog(root, os.ReadFile); err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		opts := &xsd.ParseOptions{}
		if root != "" {
			r := xsd.NewDirResolver(root)
			r.Catalog = catalog
			opts.Resolver = r
		}
		schema, err := xsd.ParseFile(p, opts)
		if err != nil {
			return nil, err
		}
		e := &schemaEntry{path: p, schema: schema, v: validator.New(schema, vopts)}
		if withBinder {
			e.binder = bind.New(schema, e.v)
		}
		set.entries = append(set.entries, e)
		for q := range schema.Elements {
			if _, taken := set.byRoot[q]; !taken {
				set.byRoot[q] = e // first schema in argument order wins
			}
		}
	}
	return set, nil
}

// forDoc picks the schema for a document by sniffing its root element.
func (s *schemaSet) forDoc(src []byte) (*schemaEntry, error) {
	if len(s.entries) == 1 {
		return s.entries[0], nil
	}
	d := xmlparser.NewDecoder(src, nil)
	for {
		tok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("not well-formed: %w", err)
		}
		if tok.Kind == xmlparser.KindStartElement {
			q := xsd.QName{Space: tok.Name.Space, Local: tok.Name.Local}
			e, ok := s.byRoot[q]
			if !ok {
				return nil, fmt.Errorf("no loaded schema declares root element %s", q)
			}
			return e, nil
		}
	}
}

func main() {
	schemaPath := flag.String("schema", "", "XML Schema path(s), comma-separated")
	schemaDir := flag.String("schemadir", "", "directory whose top-level *.xsd files are all loaded (references may reach anywhere under it)")
	quiet := flag.Bool("q", false, "suppress per-violation output")
	workers := flag.Int("p", runtime.GOMAXPROCS(0), "max files processed in parallel")
	stream := flag.Bool("stream", false, "validate incrementally while reading (O(depth) memory, no DOM; with several schemas the file is buffered for root dispatch)")
	parallel := flag.Bool("parallel", false, "split each document at top-level subtree boundaries across the cores (best for few large files; verdicts are identical to the sequential walk)")
	jsonOut := flag.Bool("json", false, "decode valid documents to canonical JSON in the same pass (invalid ones still report violations)")
	nodfa := flag.Bool("nodfa", false, "disable the lazy-DFA content-model executor (NFA stepping)")
	flag.Parse()

	var schemaFiles []string
	for _, p := range strings.Split(*schemaPath, ",") {
		if p = strings.TrimSpace(p); p != "" {
			schemaFiles = append(schemaFiles, p)
		}
	}
	if *schemaDir != "" {
		dirents, err := os.ReadDir(*schemaDir)
		if err != nil {
			fatal(err)
		}
		var names []string
		for _, de := range dirents {
			if !de.IsDir() && strings.HasSuffix(de.Name(), ".xsd") {
				names = append(names, de.Name())
			}
		}
		sort.Strings(names)
		for _, n := range names {
			schemaFiles = append(schemaFiles, filepath.Join(*schemaDir, n))
		}
	}
	if len(schemaFiles) == 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xsdcheck -schema s.xsd[,t.xsd...] | -schemadir dir  doc.xml...")
		os.Exit(2)
	}

	set, err := loadSchemas(schemaFiles, *schemaDir, &validator.Options{DisableDFA: *nodfa}, *jsonOut)
	if err != nil {
		fatal(err)
	}

	paths := flag.Args()
	n := *workers
	if n <= 0 {
		n = 1
	}
	if n > len(paths) {
		n = len(paths)
	}
	reports := make([]report, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i] = checkOne(set, paths[i], *quiet, *stream, *jsonOut, *parallel)
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	exit := 0
	for _, r := range reports {
		if r.errText != "" {
			fmt.Fprint(os.Stderr, r.errText)
		}
		if r.out != "" {
			fmt.Print(r.out)
		}
		if r.failed {
			exit = 1
		}
	}
	os.Exit(exit)
}

// checkOne routes one document to its schema and through the requested
// pipeline. True single-schema streaming never buffers the file; the
// multi-schema cases read it first to sniff the root element.
func checkOne(set *schemaSet, path string, quiet, stream, jsonOut, parallel bool) report {
	if stream && !jsonOut && len(set.entries) == 1 {
		return checkFileStream(set.entries[0].v.Stream(), path, quiet)
	}
	// Documents are memory-mapped when the platform allows: the parser is
	// zero-copy over src, so large files are validated straight out of the
	// page cache. Every reference into src (DOM nodes, decoded values) is
	// rendered to the report's strings before the mapping is released.
	src, release, err := mmapfile.ReadFile(path)
	if err != nil {
		return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
	}
	defer release()
	e, err := set.forDoc(src)
	if err != nil {
		return report{errText: fmt.Sprintf("%s: %v\n", path, err), failed: true}
	}
	switch {
	case jsonOut:
		return checkJSON(e.binder, path, src, quiet, stream)
	case stream:
		res := e.v.Stream().ValidateReader(bytes.NewReader(src))
		return renderResult(path, res, quiet)
	default:
		return checkDOM(e.v, path, src, quiet, parallel)
	}
}

// checkDOM parses and validates one document against the shared
// validator, returning its rendered report.
func checkDOM(v *validator.Validator, path string, src []byte, quiet, parallel bool) report {
	doc, err := dom.Parse(src)
	if err != nil {
		return report{errText: fmt.Sprintf("%s: not well-formed: %v\n", path, err), failed: true}
	}
	var res *validator.Result
	if parallel {
		res = v.ParallelValidate(doc, 0)
	} else {
		res = v.ValidateDocument(doc)
	}
	doc.Release()
	return renderResult(path, res, quiet)
}

// checkFileStream validates one document through the streaming path: the
// file is tokenized and checked while being read, with memory bounded by
// tree depth instead of file size. Each worker streams its own file, so
// -stream composes with -p.
func checkFileStream(sv *validator.StreamValidator, path string, quiet bool) report {
	f, err := os.Open(path)
	if err != nil {
		return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
	}
	defer f.Close()
	res := sv.ValidateReader(f)
	return renderResult(path, res, quiet)
}

// checkJSON validates and decodes one document in the same pass, printing
// the canonical JSON for valid documents and the usual violation report
// otherwise.
func checkJSON(b *bind.Binder, path string, src []byte, quiet, stream bool) report {
	var val *bind.Value
	var res *validator.Result
	if stream {
		var err error
		val, res, err = b.DecodeReader(context.Background(), bytes.NewReader(src))
		if err != nil && err != io.EOF {
			return report{errText: fmt.Sprintf("%s: %v\n", path, err), failed: true}
		}
	} else {
		val, res = b.DecodeBytes(src)
	}
	if val == nil {
		return renderResult(path, res, quiet)
	}
	return report{out: string(b.JSONIndent(val)) + "\n"}
}

// renderResult formats one validation outcome.
func renderResult(path string, res *validator.Result, quiet bool) report {
	if res.OK() {
		return report{out: fmt.Sprintf("%s: valid\n", path)}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: INVALID (%d violations)\n", path, len(res.Violations))
	if !quiet {
		for _, viol := range res.Violations {
			fmt.Fprintf(&b, "  %s\n", viol.Error())
		}
	}
	return report{out: b.String(), failed: true}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsdcheck:", err)
	os.Exit(1)
}
