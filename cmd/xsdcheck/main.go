// Command xsdcheck validates XML documents against an XML Schema at
// runtime — the paper's baseline workflow that V-DOM renders unnecessary
// for generated documents.
//
// Usage:
//
//	xsdcheck -schema po.xsd doc1.xml [doc2.xml ...]
//	xsdcheck -schema po.xsd -json doc.xml       # decode valid documents to canonical JSON
//
// Multiple documents are read, parsed and validated concurrently through
// one shared validator (bounded by -p workers, default GOMAXPROCS), so
// the schema's content models compile once and every core helps with a
// bulk run. Reports are still printed in argument order. The exit status
// is 0 when every document is valid, 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/bind"
	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// report is the outcome of checking one file, formatted by the worker and
// printed by the main goroutine in argument order.
type report struct {
	out     string // stdout text
	errText string // stderr text
	failed  bool
}

func main() {
	schemaPath := flag.String("schema", "", "path to the XML Schema (required)")
	quiet := flag.Bool("q", false, "suppress per-violation output")
	workers := flag.Int("p", runtime.GOMAXPROCS(0), "max files processed in parallel")
	stream := flag.Bool("stream", false, "validate incrementally while reading (O(depth) memory, no DOM)")
	jsonOut := flag.Bool("json", false, "decode valid documents to canonical JSON in the same pass (invalid ones still report violations)")
	nodfa := flag.Bool("nodfa", false, "disable the lazy-DFA content-model executor (NFA stepping)")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xsdcheck -schema s.xsd doc.xml...")
		os.Exit(2)
	}
	schemaSrc, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, err := xsd.Parse(schemaSrc, nil)
	if err != nil {
		fatal(err)
	}
	v := validator.New(schema, &validator.Options{DisableDFA: *nodfa})
	var binder *bind.Binder
	if *jsonOut {
		binder = bind.New(schema, v)
	}

	paths := flag.Args()
	n := *workers
	if n <= 0 {
		n = 1
	}
	if n > len(paths) {
		n = len(paths)
	}
	reports := make([]report, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				switch {
				case binder != nil:
					reports[i] = checkFileJSON(binder, paths[i], *quiet, *stream)
				case *stream:
					reports[i] = checkFileStream(v.Stream(), paths[i], *quiet)
				default:
					reports[i] = checkFile(v, paths[i], *quiet)
				}
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	exit := 0
	for _, r := range reports {
		if r.errText != "" {
			fmt.Fprint(os.Stderr, r.errText)
		}
		if r.out != "" {
			fmt.Print(r.out)
		}
		if r.failed {
			exit = 1
		}
	}
	os.Exit(exit)
}

// checkFile reads, parses and validates one document against the shared
// validator, returning its rendered report.
func checkFile(v *validator.Validator, path string, quiet bool) report {
	src, err := os.ReadFile(path)
	if err != nil {
		return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
	}
	doc, err := dom.Parse(src)
	if err != nil {
		return report{errText: fmt.Sprintf("%s: not well-formed: %v\n", path, err), failed: true}
	}
	res := v.ValidateDocument(doc)
	return renderResult(path, res, quiet)
}

// checkFileStream validates one document through the streaming path: the
// file is tokenized and checked while being read, with memory bounded by
// tree depth instead of file size. Each worker streams its own file, so
// -stream composes with -p.
func checkFileStream(sv *validator.StreamValidator, path string, quiet bool) report {
	f, err := os.Open(path)
	if err != nil {
		return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
	}
	defer f.Close()
	res := sv.ValidateReader(f)
	return renderResult(path, res, quiet)
}

// checkFileJSON validates and decodes one document in the same pass,
// printing the canonical JSON for valid documents and the usual violation
// report otherwise.
func checkFileJSON(b *bind.Binder, path string, quiet, stream bool) report {
	var val *bind.Value
	var res *validator.Result
	if stream {
		f, err := os.Open(path)
		if err != nil {
			return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
		}
		val, res, err = b.DecodeReader(context.Background(), f)
		f.Close()
		if err != nil {
			return report{errText: fmt.Sprintf("%s: %v\n", path, err), failed: true}
		}
	} else {
		src, err := os.ReadFile(path)
		if err != nil {
			return report{errText: fmt.Sprintf("xsdcheck: %v\n", err), failed: true}
		}
		val, res = b.DecodeBytes(src)
	}
	if val == nil {
		return renderResult(path, res, quiet)
	}
	return report{out: string(b.JSONIndent(val)) + "\n"}
}

// renderResult formats one validation outcome.
func renderResult(path string, res *validator.Result, quiet bool) report {
	if res.OK() {
		return report{out: fmt.Sprintf("%s: valid\n", path)}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: INVALID (%d violations)\n", path, len(res.Violations))
	if !quiet {
		for _, viol := range res.Violations {
			fmt.Fprintf(&b, "  %s\n", viol.Error())
		}
	}
	return report{out: b.String(), failed: true}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsdcheck:", err)
	os.Exit(1)
}
