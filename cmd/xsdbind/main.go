// Command xsdbind converts between XML and canonical JSON under a schema:
// decoding validates and decodes in one pass (the verdict and the typed
// value come from the same automata walk), encoding maps canonical JSON
// back to XML and re-validates it before printing, so the output is
// schema-valid by construction or the command fails.
//
// Usage:
//
//	xsdbind -schema po.xsd doc.xml            # XML -> canonical JSON on stdout
//	xsdbind -schema po.xsd -stream doc.xml    # same, O(depth) streaming decode
//	xsdbind -schema po.xsd -encode doc.json   # canonical JSON -> schema-valid XML
//	cat doc.xml | xsdbind -schema po.xsd -    # "-" reads stdin
//
// The exit status is 0 when the conversion succeeded, 1 when the input
// was invalid (violations on stderr) and 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bind"
	"repro/internal/validator"
	"repro/internal/xsd"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the XML Schema (required)")
	encode := flag.Bool("encode", false, "treat the input as canonical JSON and emit schema-valid XML")
	stream := flag.Bool("stream", false, "decode incrementally while reading (O(depth) memory, no DOM)")
	compact := flag.Bool("compact", false, "emit compact JSON instead of indented")
	nodfa := flag.Bool("nodfa", false, "disable the lazy-DFA content-model executor (NFA stepping)")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xsdbind -schema s.xsd [-encode] [-stream] file|-")
		os.Exit(2)
	}
	schemaSrc, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, err := xsd.Parse(schemaSrc, nil)
	if err != nil {
		fatal(err)
	}
	b := bind.New(schema, validator.New(schema, &validator.Options{DisableDFA: *nodfa}))

	if *encode {
		os.Exit(runEncode(b, flag.Arg(0)))
	}
	os.Exit(runDecode(b, flag.Arg(0), *stream, *compact))
}

// runDecode validates and decodes one XML document to canonical JSON.
func runDecode(b *bind.Binder, path string, stream, compact bool) int {
	var val *bind.Value
	var res *validator.Result
	if stream {
		f, err := open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		val, res, err = b.DecodeReader(context.Background(), f)
		if err != nil {
			fatal(err)
		}
	} else {
		src, err := readInput(path)
		if err != nil {
			fatal(err)
		}
		val, res = b.DecodeBytes(src)
	}
	if val == nil {
		fmt.Fprintf(os.Stderr, "%s: INVALID (%d violations)\n", path, len(res.Violations))
		for _, viol := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", viol.Error())
		}
		return 1
	}
	if compact {
		os.Stdout.Write(b.JSON(val)) //nolint:errcheck
	} else {
		os.Stdout.Write(b.JSONIndent(val)) //nolint:errcheck
	}
	fmt.Println()
	return 0
}

// runEncode maps canonical JSON back to schema-valid XML.
func runEncode(b *bind.Binder, path string) int {
	src, err := readInput(path)
	if err != nil {
		fatal(err)
	}
	val, err := b.FromJSON(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsdbind:", err)
		return 1
	}
	xml, err := b.Marshal(val)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsdbind:", err)
		return 1
	}
	os.Stdout.Write(xml) //nolint:errcheck
	fmt.Println()
	return 0
}

func open(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsdbind:", err)
	os.Exit(1)
}
