// Command vdomgen generates Go V-DOM bindings from an XML Schema: one
// distinct, strictly typed Go type per element declaration, type
// definition and model group (the paper's §3 transformation).
//
// Usage:
//
//	vdomgen -schema po.xsd -package pogen [-scheme paper|synthesized|inherited] [-o out.go]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/normalize"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to the XML Schema document (required)")
		pkg        = flag.String("package", "bindings", "Go package name for the generated file")
		schemeName = flag.String("scheme", "paper", "naming scheme: paper, synthesized or inherited")
		out        = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()
	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "vdomgen: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	var scheme normalize.Scheme
	switch *schemeName {
	case "paper":
		scheme = normalize.SchemePaper
	case "synthesized":
		scheme = normalize.SchemeSynthesized
	case "inherited":
		scheme = normalize.SchemeInherited
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}
	code, err := codegen.Generate(string(src), codegen.Options{
		Package:       *pkg,
		Scheme:        scheme,
		SchemaComment: *schemaPath,
	})
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdomgen:", err)
	os.Exit(1)
}
