// Command vdomgen generates Go V-DOM bindings from an XML Schema: one
// distinct, strictly typed Go type per element declaration, type
// definition and model group (the paper's §3 transformation).
//
// With -emit-validator it additionally writes a companion file holding an
// ahead-of-time compiled validator for the same schema: each content
// model unrolled into a DFA over Go switch statements, straight-line
// attribute and facet checks, and a specialized decode/marshal pair —
// verdict-identical to the interpreted validator. -corpus prunes that
// validator to the element declarations a set of instance documents
// actually reaches.
//
// Usage:
//
//	vdomgen -schema po.xsd -package pogen [-scheme paper|synthesized|inherited]
//	        [-o out.go] [-emit-validator validator.go] [-corpus 'docs/*.xml']
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codegen"
	"repro/internal/normalize"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to the XML Schema document (required)")
		pkg        = flag.String("package", "bindings", "Go package name for the generated file")
		schemeName = flag.String("scheme", "paper", "naming scheme: paper, synthesized or inherited")
		out        = flag.String("o", "", "output file (default: stdout)")
		validator  = flag.String("emit-validator", "", "also write a compiled validator/decoder to this file")
		corpus     = flag.String("corpus", "", "glob of instance documents; prunes the compiled validator to the declarations they reach (requires -emit-validator)")
	)
	flag.Parse()
	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "vdomgen: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	if *corpus != "" && *validator == "" {
		fatal(fmt.Errorf("-corpus requires -emit-validator"))
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	var scheme normalize.Scheme
	switch *schemeName {
	case "paper":
		scheme = normalize.SchemePaper
	case "synthesized":
		scheme = normalize.SchemeSynthesized
	case "inherited":
		scheme = normalize.SchemeInherited
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}
	opts := codegen.Options{
		Package:       *pkg,
		Scheme:        scheme,
		SchemaComment: *schemaPath,
	}
	if *corpus != "" {
		docs, err := loadCorpus(*corpus)
		if err != nil {
			fatal(err)
		}
		opts.Corpus = docs
	}
	code, err := codegen.Generate(string(src), opts)
	if err != nil {
		fatal(err)
	}
	if *validator != "" {
		vcode, err := codegen.GenerateValidator(string(src), opts)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*validator, []byte(vcode), 0o644); err != nil {
			fatal(err)
		}
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
}

// loadCorpus reads the pruning corpus in sorted order so repeated runs
// generate identical output.
func loadCorpus(glob string) ([]codegen.CorpusDoc, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-corpus %q matched no files", glob)
	}
	sort.Strings(paths)
	var docs []codegen.CorpusDoc
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		docs = append(docs, codegen.CorpusDoc{Name: filepath.Base(p), Source: string(src)})
	}
	return docs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdomgen:", err)
	os.Exit(1)
}
