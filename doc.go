// Package repro reproduces "XML-Based Applications Using XML Schema"
// (Kempa & Linnemann, EDBT 2002 Workshops): V-DOM, a strictly typed
// document object model generated from an XML Schema, and P-XML, a
// preprocessor for literal XML constructors that are validated statically.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable binaries are under cmd/ and examples/. This root package holds
// the experiment harness: bench_test.go and exp_*_test.go regenerate every
// figure and quantitative claim catalogued in EXPERIMENTS.md.
package repro
