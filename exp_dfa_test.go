package repro

// E10 — differential testing of the lazy-DFA content-model executor
// against the NFA position-set stepper. The DFA path must be
// observationally byte-identical: same leaf assignment for every accepted
// child, same rejection step, same MatchError positions and messages, on
// every content model of every bundled schema — and the full validators
// (DOM and streaming) must produce identical Results with the DFA on and
// off.

import (
	"math/rand"
	"testing"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// bundledSchemas is every schema the repository ships: the paper's
// examples plus the streaming feature-coverage schema.
var bundledSchemas = map[string]string{
	"purchase-order":         schemas.PurchaseOrderXSD,
	"evolved-purchase-order": schemas.EvolvedPurchaseOrderXSD,
	"address-derivation":     schemas.AddressDerivationXSD,
	"namespaced-order":       schemas.NamespacedOrderXSD,
	"complex-groups":         schemas.ComplexGroupsXSD,
	"named-group":            schemas.NamedGroupXSD,
	"stream-features":        streamFeaturesXSD,
}

// schemaGlushkovs compiles every complex type reachable from the schema's
// global components and returns the Glushkov content models.
func schemaGlushkovs(t *testing.T, s *xsd.Schema) []*contentmodel.Glushkov {
	t.Helper()
	seen := map[*xsd.ComplexType]bool{}
	var out []*contentmodel.Glushkov
	var visitType func(ty xsd.Type)
	var visitParticle func(p *xsd.Particle)
	visitType = func(ty xsd.Type) {
		ct, ok := ty.(*xsd.ComplexType)
		if !ok || ct == nil || seen[ct] {
			return
		}
		seen[ct] = true
		if g, ok := ct.Matcher(s).(*contentmodel.Glushkov); ok {
			out = append(out, g)
		}
		visitParticle(ct.Particle)
	}
	visitParticle = func(p *xsd.Particle) {
		if p == nil {
			return
		}
		if p.Element != nil {
			visitType(p.Element.Type)
		}
		if p.Group != nil {
			for _, c := range p.Group.Particles {
				visitParticle(c)
			}
		}
	}
	for _, decl := range s.Elements {
		visitType(decl.Type)
	}
	for _, ty := range s.Types {
		visitType(ty)
	}
	return out
}

// trialStep reports whether a known-good prefix extended by next still
// steps (fresh NFA replay — a dead Run cannot be probed).
func trialStep(g *contentmodel.Glushkov, prefix []contentmodel.Symbol, next contentmodel.Symbol) bool {
	r := g.StartNFA()
	for _, s := range prefix {
		if _, err := r.Step(s); err != nil {
			return false
		}
	}
	_, err := r.Step(next)
	return err == nil
}

// generateSequences yields valid and invalid child sequences for a model:
// greedy valid walks over the model's alphabet, truncations, single-symbol
// substitutions, and random noise including foreign names.
func generateSequences(g *contentmodel.Glushkov, rng *rand.Rand) [][]contentmodel.Symbol {
	alpha := g.Alphabet()
	pool := append(append([]contentmodel.Symbol{}, alpha...),
		contentmodel.Symbol{Local: "zzz-unknown"},
		contentmodel.Symbol{Space: "urn:not-in-schema", Local: "alien"},
	)
	var seqs [][]contentmodel.Symbol
	for trial := 0; trial < 5; trial++ {
		var seq []contentmodel.Symbol
		for len(seq) < 8 {
			found := false
			for _, i := range rng.Perm(len(alpha)) {
				if trialStep(g, seq, alpha[i]) {
					seq = append(seq, alpha[i])
					found = true
					break
				}
			}
			if !found || rng.Intn(4) == 0 {
				break
			}
		}
		seqs = append(seqs, seq)
		if n := len(seq); n > 0 {
			mut := append([]contentmodel.Symbol{}, seq...)
			mut[rng.Intn(n)] = pool[rng.Intn(len(pool))]
			seqs = append(seqs, mut, seq[:rng.Intn(n)])
		}
	}
	for trial := 0; trial < 5; trial++ {
		var seq []contentmodel.Symbol
		for i, n := 0, rng.Intn(5); i < n; i++ {
			seq = append(seq, pool[rng.Intn(len(pool))])
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// diffRun drives one sequence through the DFA-backed and NFA runs and
// fails on any observable difference.
func diffRun(t *testing.T, label string, dr, nr *contentmodel.Run, seq []contentmodel.Symbol) {
	t.Helper()
	for i, s := range seq {
		dl, de := dr.Step(s)
		nl, ne := nr.Step(s)
		if (de == nil) != (ne == nil) {
			t.Fatalf("%s step %d (%v): dfa err=%v nfa err=%v", label, i, s, de, ne)
		}
		if de != nil {
			if de.Error() != ne.Error() || de.Index != ne.Index {
				t.Fatalf("%s step %d: errors diverged:\n  dfa: %v\n  nfa: %v", label, i, de, ne)
			}
			return
		}
		if dl != nl {
			t.Fatalf("%s step %d (%v): leaf diverged: %v vs %v", label, i, s, dl.Data, nl.Data)
		}
	}
	de, ne := dr.End(), nr.End()
	if (de == nil) != (ne == nil) {
		t.Fatalf("%s end: dfa err=%v nfa err=%v", label, de, ne)
	}
	if de != nil && de.Error() != ne.Error() {
		t.Fatalf("%s end errors diverged:\n  dfa: %v\n  nfa: %v", label, de, ne)
	}
}

// TestDFAMatchesNFA drives every bundled schema's content models through
// the DFA and NFA steppers with generated valid and invalid child
// sequences, twice per model so both the building and the memoized DFA
// paths are covered.
func TestDFAMatchesNFA(t *testing.T) {
	enabled := 0
	for name, src := range bundledSchemas {
		t.Run(name, func(t *testing.T) {
			schema, err := xsd.ParseString(src, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			models := schemaGlushkovs(t, schema)
			if len(models) == 0 {
				t.Fatalf("no Glushkov content models found")
			}
			rng := rand.New(rand.NewSource(0xd1f))
			for _, g := range models {
				if !g.DFAEnabled() {
					continue // UPA-ambiguous or wildcard-heavy: NFA-only by design
				}
				enabled++
				seqs := generateSequences(g, rng)
				for pass := 0; pass < 2; pass++ {
					for _, seq := range seqs {
						diffRun(t, t.Name(), g.Start(), g.StartNFA(), seq)
					}
				}
			}
		})
	}
	if enabled == 0 {
		t.Fatalf("no bundled content model had the DFA enabled — test is vacuous")
	}
}

// TestValidatorDFAParity runs the full differential corpus (the E8
// diffCases: every bundled schema with valid, invalid and malformed
// instances) through validators with the DFA enabled and disabled, over
// both the DOM and the streaming paths. Results must be identical.
func TestValidatorDFAParity(t *testing.T) {
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tc.xsdSrc, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			vdfa := validator.New(schema, nil)
			vnfa := validator.New(schema, &validator.Options{DisableDFA: true})
			svdfa := vdfa.Stream()
			svnfa := vnfa.Stream()
			for label, src := range tc.instances {
				assertSameResult(t, label+" (stream)",
					svnfa.ValidateBytes([]byte(src)), svdfa.ValidateBytes([]byte(src)))
				doc, perr := dom.Parse([]byte(src))
				if perr != nil {
					continue // malformed input: no DOM path to compare
				}
				assertSameResult(t, label+" (dom)",
					vnfa.ValidateDocument(doc), vdfa.ValidateDocument(doc))
				doc.Release()
			}
		})
	}
}

// TestValidatorDFABudgetParity repeats the corpus with a pathologically
// small DFA state budget so the mid-document fallback path is exercised
// end to end.
func TestValidatorDFABudgetParity(t *testing.T) {
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tc.xsdSrc, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			vtiny := validator.New(schema, &validator.Options{DFAStateBudget: 2})
			vnfa := validator.New(schema, &validator.Options{DisableDFA: true})
			for label, src := range tc.instances {
				assertSameResult(t, label+" (budget=2 stream)",
					vnfa.Stream().ValidateBytes([]byte(src)),
					vtiny.Stream().ValidateBytes([]byte(src)))
			}
		})
	}
}
