package repro

// Ablation (DESIGN.md §5): the two choice-group representations the paper
// weighs in §3 — Fig. 5's union/discriminant struct vs Fig. 6's sealed
// interface. The paper rejects the union on software-engineering grounds
// (every consumer needs a new case arm per added alternative); this
// ablation measures the runtime side so the trade-off is complete.

import (
	"testing"

	"repro/internal/dom"
)

// --- Fig. 5 style: union with a discriminant ------------------------------

type addrKind int

const (
	kindSing addrKind = iota
	kindTwo
)

// unionAddr is the singAddrORtwoAddrGroup union of Fig. 5.
type unionAddr struct {
	kind addrKind
	sing *singAddr
	two  *twoAddr
}

type singAddr struct{ city string }
type twoAddr struct{ first, second string }

func (u *unionAddr) buildInto(doc *dom.Document, parent dom.Node) error {
	switch u.kind {
	case kindSing:
		el := doc.CreateElement("singAddr")
		_, _ = el.AppendChild(doc.CreateTextNode(u.sing.city))
		_, err := parent.AppendChild(el)
		return err
	default:
		el := doc.CreateElement("twoAddr")
		_, _ = el.AppendChild(doc.CreateTextNode(u.two.first + u.two.second))
		_, err := parent.AppendChild(el)
		return err
	}
}

// --- Fig. 6 style: sealed interface ----------------------------------------

type addrChoice interface {
	isAddrChoice()
	buildInto(doc *dom.Document, parent dom.Node) error
}

type singAddrElem struct{ city string }
type twoAddrElem struct{ first, second string }

func (*singAddrElem) isAddrChoice() {}
func (*twoAddrElem) isAddrChoice()  {}

func (s *singAddrElem) buildInto(doc *dom.Document, parent dom.Node) error {
	el := doc.CreateElement("singAddr")
	_, _ = el.AppendChild(doc.CreateTextNode(s.city))
	_, err := parent.AppendChild(el)
	return err
}

func (s *twoAddrElem) buildInto(doc *dom.Document, parent dom.Node) error {
	el := doc.CreateElement("twoAddr")
	_, _ = el.AppendChild(doc.CreateTextNode(s.first + s.second))
	_, err := parent.AppendChild(el)
	return err
}

// BenchmarkAblation_ChoiceUnion measures the rejected Fig. 5 design.
func BenchmarkAblation_ChoiceUnion(b *testing.B) {
	values := []*unionAddr{
		{kind: kindSing, sing: &singAddr{city: "Mill Valley"}},
		{kind: kindTwo, two: &twoAddr{first: "a", second: "b"}},
	}
	for i := 0; i < b.N; i++ {
		doc := dom.NewDocument()
		root := doc.CreateElement("po")
		_, _ = doc.AppendChild(root)
		if err := values[i%2].buildInto(doc, root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ChoiceInterface measures the adopted Fig. 6 design.
func BenchmarkAblation_ChoiceInterface(b *testing.B) {
	values := []addrChoice{
		&singAddrElem{city: "Mill Valley"},
		&twoAddrElem{first: "a", second: "b"},
	}
	for i := 0; i < b.N; i++ {
		doc := dom.NewDocument()
		root := doc.CreateElement("po")
		_, _ = doc.AppendChild(root)
		if err := values[i%2].buildInto(doc, root); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAblationChoiceEquivalent: both representations produce identical
// documents — the choice between them is about evolution and dispatch,
// not output.
func TestAblationChoiceEquivalent(t *testing.T) {
	build := func(f func(doc *dom.Document, parent dom.Node) error) string {
		doc := dom.NewDocument()
		root := doc.CreateElement("po")
		_, _ = doc.AppendChild(root)
		if err := f(doc, root); err != nil {
			t.Fatal(err)
		}
		return dom.ToString(root)
	}
	u := &unionAddr{kind: kindSing, sing: &singAddr{city: "x"}}
	i := &singAddrElem{city: "x"}
	if build(u.buildInto) != build(i.buildInto) {
		t.Error("representations diverge")
	}
}
