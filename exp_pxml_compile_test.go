package repro

// End-to-end proof of the Fig. 9 pipeline: the preprocessor's OUTPUT is a
// real Go program that compiles against the generated bindings and, when
// executed, produces a schema-valid document. The test materializes a
// scratch module (with a replace directive onto this repository), runs
// `go build` and `go run` on the rewritten source, and validates the
// program's output with the runtime validator.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/normalize"
	"repro/internal/pxml"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// pxmlProgram is a complete P-XML program: it builds the paper's shipTo
// fragment (with a splice) inside a purchase order and prints it.
const pxmlProgram = `package main

//pxml:package pogen
//pxml:doc d

import (
	"fmt"
	"log"

	"repro/internal/gen/pogen"
	"repro/internal/vdom"
)

func main() {
	d := pogen.NewDocument()
	var n *pogen.NameElement
	n = <name>Alice Smith</name>;
	var s *pogen.ShipToElement
	s = <shipTo country="US">
		$n$
		<street>123 Maple Street</street>
		<city>Mill Valey</city>
		<state>CA</state>
		<zip>90952</zip>
	</shipTo>;
	var b *pogen.BillToElement
	b = <billTo country="US">
		<name>Robert Smith</name>
		<street>8 Oak Avenue</street>
		<city>Old Town</city>
		<state>PA</state>
		<zip>95819</zip>
	</billTo>;
	var items *pogen.ItemsElement
	items = <items>
		<item partNum="926-AA">
			<productName>Baby Monitor</productName>
			<quantity>1</quantity>
			<USPrice>39.98</USPrice>
		</item>
	</items>;
	var po *pogen.PurchaseOrderElement
	po = <purchaseOrder orderDate="1999-10-20">
		$s$
		$b$
		<comment>Hurry, my lawn is going wild</comment>
		$items$
	</purchaseOrder>;
	out, err := vdom.MarshalString(po)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
`

func TestPXMLOutputCompilesAndRuns(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}

	pp, err := pxml.New(pxml.Options{
		SchemaSource: schemas.PurchaseOrderXSD,
		Scheme:       normalize.SchemePaper,
	})
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := pp.Rewrite(pxmlProgram)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}

	// The scratch program must live inside this module: the bindings are
	// under internal/, which no other module may import.
	dir, err := os.MkdirTemp(repoRoot, "tmp_pxmlrun_")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(rewritten), 0o644); err != nil {
		t.Fatal(err)
	}

	rel := "./" + filepath.Base(dir)
	run := func(args ...string) string {
		cmd := exec.Command("go", args...)
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go %s: %v\n%s\n--- rewritten source ---\n%s", strings.Join(args, " "), err, out, rewritten)
		}
		return string(out)
	}
	run("vet", rel)
	output := run("run", rel)

	// The program's output must be the Fig. 1 fragment — and valid.
	doc, err := dom.ParseString(output)
	if err != nil {
		t.Fatalf("program output is not well-formed: %v\n%s", err, output)
	}
	schema, _ := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if res := validator.New(schema, nil).ValidateDocument(doc); !res.OK() {
		t.Fatalf("program output is invalid (the theorem is broken!):\n%v\n%s", res.Err(), output)
	}
	for _, want := range []string{"<name>Alice Smith</name>", `<shipTo country="US">`, `orderDate="1999-10-20"`} {
		if !strings.Contains(output, want) {
			t.Errorf("output missing %q:\n%s", want, output)
		}
	}
}
