package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/gen/calcgen"
	"repro/internal/gen/ordersgen"
	"repro/internal/registry"
	"repro/internal/schemas"
	"repro/internal/server"
	"repro/internal/soap"
)

// bootSOAP mounts both corpus services — wsdlgen-generated server stubs
// with real handlers — on the full serving stack (shed/deadline worker,
// metrics) and returns the base URL.
func bootSOAP(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Registry: reg})

	calc, err := calcgen.NewServer(calcgen.Handlers{
		Add: func(_ context.Context, req *bind.Value) (*bind.Value, error) {
			a, b := intChild(req, "a"), intChild(req, "b")
			return calcBinder(t).FromJSON([]byte(fmt.Sprintf(`{"$element":"AddResponse","sum":%d}`, a+b)))
		},
		Subtract: func(_ context.Context, req *bind.Value) (*bind.Value, error) {
			a, b := intChild(req, "a"), intChild(req, "b")
			return calcBinder(t).FromJSON([]byte(fmt.Sprintf(`{"$element":"SubtractResponse","difference":%d}`, a-b)))
		},
		Ping: func(_ context.Context, _ *bind.Value) (*bind.Value, error) {
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterSOAP(calc)

	orders, err := ordersgen.NewServer(ordersgen.Handlers{
		SubmitOrder: func(_ context.Context, req *bind.Value) (*bind.Value, error) {
			items := 0
			for _, c := range req.Children {
				if c.Name.Local == "item" {
					items++
				}
			}
			return ordersBinder(t).FromJSON([]byte(fmt.Sprintf(
				`{"$element":"SubmitOrderResponse","orderId":"ord-%d","status":"pending"}`, items)))
		},
		OrderStatus: func(_ context.Context, req *bind.Value) (*bind.Value, error) {
			id := req.Children[0].Simple.String()
			return ordersBinder(t).FromJSON([]byte(fmt.Sprintf(
				`{"$element":"OrderStatusResponse","orderId":%q,"status":"shipped"}`, id)))
		},
		CancelOrder: func(_ context.Context, _ *bind.Value) (*bind.Value, error) {
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterSOAP(orders)

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func calcBinder(t *testing.T) *bind.Binder {
	t.Helper()
	c, err := calcgen.NewClient("unused")
	if err != nil {
		t.Fatal(err)
	}
	return c.Binder()
}

func ordersBinder(t *testing.T) *bind.Binder {
	t.Helper()
	c, err := ordersgen.NewClient("unused")
	if err != nil {
		t.Fatal(err)
	}
	return c.Binder()
}

// intChild reads an integer-typed child element by local name.
func intChild(v *bind.Value, name string) int {
	for _, c := range v.Children {
		if c.Name.Local == name {
			var n int
			fmt.Sscanf(c.Simple.String(), "%d", &n)
			return n
		}
	}
	return 0
}

// TestSOAPEndToEnd round-trips every operation of both corpus WSDLs:
// generated client → /v1/soap/{service} → generated server stub, both
// SOAP versions, envelopes schema-valid in both directions.
func TestSOAPEndToEnd(t *testing.T) {
	base := bootSOAP(t)

	calc, err := calcgen.NewClient(base + "/v1/soap/" + calcgen.ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Calc.Add
	req, err := calc.Binder().FromJSON([]byte(`{"$element":"AddRequest","a":19,"b":23}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := calc.Add(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Children[0].Simple.String(); got != "42" {
		t.Errorf("Add = %s, want 42", got)
	}

	// Calc.Subtract
	req, err = calc.Binder().FromJSON([]byte(`{"$element":"SubtractRequest","a":50,"b":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = calc.Subtract(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Children[0].Simple.String(); got != "42" {
		t.Errorf("Subtract = %s, want 42", got)
	}

	// Calc.Ping (one-way)
	req, err = calc.Binder().FromJSON([]byte(`{"$element":"Ping","$value":"hello"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := calc.Ping(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Orders (SOAP 1.2).
	orders, err := ordersgen.NewClient(base + "/v1/soap/" + ordersgen.ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	req, err = orders.Binder().FromJSON([]byte(`{"$element":"SubmitOrderRequest",
		"shipTo":{"name":"Alice Smith","street":"123 Maple","city":"Mill Valley","zip":90952},
		"item":[{"sku":"872-AA","quantity":1},{"sku":"926-AA","quantity":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = orders.SubmitOrder(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Children[0].Simple.String(); got != "ord-2" {
		t.Errorf("SubmitOrder orderId = %q, want ord-2 (one per item)", got)
	}

	req, err = orders.Binder().FromJSON([]byte(`{"$element":"OrderStatusRequest","orderId":"ord-2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = orders.OrderStatus(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Children[1].Simple.String(); got != "shipped" {
		t.Errorf("OrderStatus status = %q", got)
	}

	req, err = orders.Binder().FromJSON([]byte(`{"$element":"CancelOrder","orderId":"ord-2"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := orders.CancelOrder(ctx, req); err != nil {
		t.Fatal(err)
	}
}

// TestSOAPEndToEndFaults drives the failure contract over the wire: a
// schema-invalid request faults with violations and never a 500; the
// typed client refuses to send a wrong-element request; a fault answer
// surfaces as *soap.Fault.
func TestSOAPEndToEndFaults(t *testing.T) {
	base := bootSOAP(t)
	ctx := context.Background()

	// Raw invalid request: SKU pattern violation (declared \d{3}-[A-Z]{2}).
	env := `<e:Envelope xmlns:e="http://www.w3.org/2003/05/soap-envelope"><e:Body>` +
		`<o:SubmitOrderRequest xmlns:o="urn:orders">` +
		`<o:shipTo><o:name>A</o:name><o:street>S</o:street><o:city>C</o:city><o:zip>1</o:zip></o:shipTo>` +
		`<o:item><o:sku>NOT-A-SKU</o:sku><o:quantity>1</o:quantity></o:item>` +
		`</o:SubmitOrderRequest></e:Body></e:Envelope>`
	hres, err := http.Post(base+"/v1/soap/Orders", "application/soap+xml; charset=utf-8", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != 400 {
		t.Fatalf("invalid request: status %d, want 400 (never a 500)", hres.StatusCode)
	}

	// The typed client surfaces that fault as *soap.Fault with details.
	orders, err := ordersgen.NewClient(base + "/v1/soap/Orders")
	if err != nil {
		t.Fatal(err)
	}
	// Build a request that is locally valid but will be rejected by the
	// service-side handler contract: wrong element for the operation.
	ping, err := orders.Binder().FromJSON([]byte(`{"$element":"CancelOrder","orderId":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orders.SubmitOrder(ctx, ping); err == nil ||
		!strings.Contains(err.Error(), "takes element") {
		t.Fatalf("client sent a wrong-element request: %v", err)
	}

	// Unknown body root → 400 Fault, still never a 500.
	hres2, err := http.Post(base+"/v1/soap/Orders", "application/soap+xml",
		strings.NewReader(`<e:Envelope xmlns:e="http://www.w3.org/2003/05/soap-envelope"><e:Body><x:Nope xmlns:x="urn:x"/></e:Body></e:Envelope>`))
	if err != nil {
		t.Fatal(err)
	}
	defer hres2.Body.Close()
	if hres2.StatusCode != 400 {
		t.Fatalf("unknown body root: status %d", hres2.StatusCode)
	}
}

// TestSOAPFaultTyped checks that a Fault response decodes into *soap.Fault
// through the generated client.
func TestSOAPFaultTyped(t *testing.T) {
	// A service with no handlers at all: every schema-valid request
	// answers the not-implemented Fault.
	d, err := calcgen.Definitions()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := soap.NewService(d, "Calc")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		resp := svc.Handle(r.Context(), data, r.Header.Get("SOAPAction"))
		w.Header().Set("Content-Type", resp.ContentType)
		w.WriteHeader(resp.Status)
		w.Write(resp.Body) //nolint:errcheck
	}))
	defer srv.Close()
	calc, err := calcgen.NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	req, err := calc.Binder().FromJSON([]byte(`{"$element":"AddRequest","a":1,"b":2}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = calc.Add(context.Background(), req)
	f, ok := err.(*soap.Fault)
	if !ok {
		t.Fatalf("want *soap.Fault, got %T: %v", err, err)
	}
	if f.Code != "Server" || !strings.Contains(f.Reason, "not implemented") {
		t.Errorf("fault = %+v", f)
	}
}
