package repro

// E14 — ahead-of-time compiled validators (DESIGN.md §14). Two layers:
// the isolated stepper (the generated unrolled-switch matcher against the
// lazy-DFA Run over identical inputs) and the end-to-end effect (repeated
// whole-document validation through the generated pogen.Validate against
// a warm interpreted Validator). The acceptance bar recorded in
// EXPERIMENTS.md: the generated path at least 2x the lazy-DFA path.

import (
	"fmt"
	"testing"

	"repro/internal/bind"
	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/gen/cmbench"
	"repro/internal/gen/pogen"
	"repro/internal/validator"
)

// e14Models pairs each cmbench compiled matcher with its interpreted
// Glushkov automaton (DFA enabled, warmed by the first benchmark pass)
// and a representative accept input.
func e14Models(b *testing.B) []struct {
	name  string
	match func([]contentmodel.Symbol) *contentmodel.MatchError
	g     *contentmodel.Glushkov
	input []contentmodel.Symbol
} {
	itemsInput := make([]contentmodel.Symbol, 1000)
	for i := range itemsInput {
		itemsInput[i] = contentmodel.Symbol{Local: "item"}
	}
	wideInput := make([]contentmodel.Symbol, 16)
	for i := range wideInput {
		wideInput[i] = contentmodel.Symbol{Local: fmt.Sprintf("e%d_%d", i, i%8)}
	}
	out := []struct {
		name  string
		match func([]contentmodel.Symbol) *contentmodel.MatchError
		g     *contentmodel.Glushkov
		input []contentmodel.Symbol
	}{
		{"po-items-1000", cmbench.MatchItems, nil, itemsInput},
		{"wide-choice-k16w8", cmbench.MatchWideChoice, nil, wideInput},
	}
	for i, p := range []*contentmodel.Particle{cmbench.ItemsModel(), cmbench.WideChoiceModel()} {
		g, err := contentmodel.CompileGlushkov(p)
		if err != nil {
			b.Fatal(err)
		}
		if !g.EnableDFA(contentmodel.NewInterner(), 0) {
			b.Fatalf("%s: EnableDFA refused", out[i].name)
		}
		out[i].g = g
	}
	return out
}

// BenchmarkE14_CompiledMatcher isolates the stepper: the generated
// unrolled-switch matcher vs the lazy-DFA Run (the E10 winner) over
// identical inputs.
func BenchmarkE14_CompiledMatcher(b *testing.B) {
	for _, m := range e14Models(b) {
		b.Run(m.name+"/gen", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if merr := m.match(m.input); merr != nil {
					b.Fatal(merr)
				}
			}
		})
		b.Run(m.name+"/dfa", func(b *testing.B) {
			b.ReportAllocs()
			r := m.g.Start()
			for i := 0; i < b.N; i++ {
				r.Reset(m.g)
				for _, s := range m.input {
					if _, err := r.Step(s); err != nil {
						b.Fatal(err)
					}
				}
				if err := r.End(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_GeneratedValidate is the end-to-end comparison: repeated
// whole-document validation of a 100-item purchase order through the
// generated pogen.Validate vs one warm interpreted Validator over the
// same parsed document.
func BenchmarkE14_GeneratedValidate(b *testing.B) {
	doc, err := dom.Parse(largePOSource(100))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := pogen.Validate(doc); !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		v := validator.New(poSchema(b), nil)
		for i := 0; i < b.N; i++ {
			if res := v.ValidateDocument(doc); !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
}

// BenchmarkE14_GeneratedDecode compares the specialized one-pass
// validate+decode against the generic binder on the paper's Fig. 1
// document.
func BenchmarkE14_GeneratedDecode(b *testing.B) {
	doc, err := dom.Parse(largePOSource(100))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			val, res := pogen.Decode(doc)
			if val == nil || !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		bd := bind.New(poSchema(b), nil)
		for i := 0; i < b.N; i++ {
			val, res := bd.DecodeDocument(doc)
			if val == nil || !res.OK() {
				b.Fatal(res.Err())
			}
		}
	})
}
