package repro

import (
	"os"
	"testing"

	"repro/internal/schemas"
)

// TestCheckedInSchemaInSync guards testdata/schemas/po.xsd — the on-disk
// copy of the embedded purchase-order schema that the README quickstart
// points xsdserved at — against drifting from the constant the rest of
// the repo compiles in.
func TestCheckedInSchemaInSync(t *testing.T) {
	disk, err := os.ReadFile("testdata/schemas/po.xsd")
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != schemas.PurchaseOrderXSD {
		t.Fatal("testdata/schemas/po.xsd differs from schemas.PurchaseOrderXSD; regenerate the file from the constant")
	}
}
