package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen/manifest"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// TestCheckedInSchemaInSync guards testdata/schemas/po.xsd — the on-disk
// copy of the embedded purchase-order schema that the README quickstart
// points xsdserved at — against drifting from the constant the rest of
// the repo compiles in.
func TestCheckedInSchemaInSync(t *testing.T) {
	disk, err := os.ReadFile("testdata/schemas/po.xsd")
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != schemas.PurchaseOrderXSD {
		t.Fatal("testdata/schemas/po.xsd differs from schemas.PurchaseOrderXSD; regenerate the file from the constant")
	}
}

// TestCheckedInWSDLsInSync guards the on-disk WSDL corpus under
// testdata/wsdl/ — what xsdserved -wsdls and the integration test load —
// against drifting from the constants the generated stub packages embed.
func TestCheckedInWSDLsInSync(t *testing.T) {
	for _, tc := range []struct {
		path string
		want string
	}{
		{"testdata/wsdl/calc.wsdl", schemas.CalcWSDL},
		{"testdata/wsdl/orders.wsdl", schemas.OrdersWSDL},
	} {
		disk, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(disk) != tc.want {
			t.Errorf("%s differs from its schemas constant; regenerate the file from the constant", tc.path)
		}
	}
}

// TestPrunedCorpusInSync guards the pruning-pass instance corpus under
// testdata/corpus/: every document a manifest target prunes by must be
// present, valid against that target's schema (an invalid corpus doc
// fails generation outright), and stamped by name into the checked-in
// pruned validator's header — so a corpus edit without a regen run is
// caught here even before the codegen golden test diffs the full file.
func TestPrunedCorpusInSync(t *testing.T) {
	pruned := 0
	for _, tgt := range manifest.Targets {
		if tgt.CorpusGlob == "" {
			continue
		}
		pruned++
		corpus, err := manifest.LoadCorpus(".", tgt.CorpusGlob)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Pkg, err)
		}
		if len(corpus) == 0 {
			t.Fatalf("%s: corpus glob %q matched nothing", tgt.Pkg, tgt.CorpusGlob)
		}
		schema, err := xsd.ParseString(tgt.Source, nil)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Pkg, err)
		}
		header, err := os.ReadFile(filepath.Join("internal", "gen", tgt.Pkg, tgt.Pkg+"_validator.go"))
		if err != nil {
			t.Fatalf("%s: %v", tgt.Pkg, err)
		}
		for _, doc := range corpus {
			if _, res := validator.ValidateBytes(schema, []byte(doc.Source)); !res.OK() {
				t.Errorf("%s: corpus document %s is invalid: %v", tgt.Pkg, doc.Name, res.Violations[0])
			}
			if !strings.Contains(string(header), doc.Name) {
				t.Errorf("%s: corpus document %s is not stamped into %s_validator.go; run `go run ./internal/gen/regen`",
					tgt.Pkg, doc.Name, tgt.Pkg)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no manifest target declares a pruning corpus")
	}
}
