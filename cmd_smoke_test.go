package repro

// Smoke tests for the CLI tools: each binary is exercised through
// `go run` on the paper's artifacts. They prove the Fig. 9 pipeline works
// from the command line, not just through library calls.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/schemas"
)

// runCmd executes `go run ./cmd/<tool> args...` from the repo root.
func runCmd(t *testing.T, wantExitZero bool, tool string, args ...string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if wantExitZero && err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	if !wantExitZero && err == nil {
		t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
	}
	return string(out)
}

// writeTemp materializes test data on disk for the CLIs.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdXsdcheck(t *testing.T) {
	schema := writeTemp(t, "po.xsd", schemas.PurchaseOrderXSD)
	good := writeTemp(t, "good.xml", schemas.PurchaseOrderDoc)
	bad := writeTemp(t, "bad.xml", strings.Replace(schemas.PurchaseOrderDoc, "<quantity>1</quantity>", "<quantity>9999</quantity>", 1))

	out := runCmd(t, true, "xsdcheck", "-schema", schema, good)
	if !strings.Contains(out, "valid") {
		t.Errorf("xsdcheck good: %s", out)
	}
	out = runCmd(t, false, "xsdcheck", "-schema", schema, bad)
	if !strings.Contains(out, "INVALID") {
		t.Errorf("xsdcheck bad: %s", out)
	}
	// -parallel uses the intra-document worker pool; verdicts must match.
	out = runCmd(t, true, "xsdcheck", "-schema", schema, "-parallel", good)
	if !strings.Contains(out, "valid") {
		t.Errorf("xsdcheck -parallel good: %s", out)
	}
	out = runCmd(t, false, "xsdcheck", "-schema", schema, "-parallel", bad)
	if !strings.Contains(out, "INVALID") {
		t.Errorf("xsdcheck -parallel bad: %s", out)
	}
	// -json decodes a valid document to canonical JSON in the same pass.
	out = runCmd(t, true, "xsdcheck", "-schema", schema, "-json", good)
	if !strings.Contains(out, `"$element": "purchaseOrder"`) {
		t.Errorf("xsdcheck -json: %s", out)
	}
	out = runCmd(t, false, "xsdcheck", "-schema", schema, "-json", bad)
	if !strings.Contains(out, "INVALID") {
		t.Errorf("xsdcheck -json bad: %s", out)
	}

	// -schemadir builds a namespace catalog: main.xsd imports urn:lib
	// without a schemaLocation and still resolves to lib.xsd next to it.
	dir := t.TempDir()
	files := map[string]string{
		"lib.xsd": `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:lib">
  <xsd:simpleType name="Word"><xsd:restriction base="xsd:string"><xsd:pattern value="[a-z]+"/></xsd:restriction></xsd:simpleType>
</xsd:schema>`,
		"main.xsd": `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:m" xmlns:l="urn:lib">
  <xsd:import namespace="urn:lib"/>
  <xsd:element name="doc" type="l:Word"/>
</xsd:schema>`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	okDoc := writeTemp(t, "ok.xml", `<m:doc xmlns:m="urn:m">hello</m:doc>`)
	badDoc := writeTemp(t, "bad2.xml", `<m:doc xmlns:m="urn:m">HELLO</m:doc>`)
	out = runCmd(t, true, "xsdcheck", "-schemadir", dir, okDoc)
	if !strings.Contains(out, "valid") {
		t.Errorf("xsdcheck -schemadir good: %s", out)
	}
	out = runCmd(t, false, "xsdcheck", "-schemadir", dir, badDoc)
	if !strings.Contains(out, "INVALID") {
		t.Errorf("xsdcheck -schemadir bad: %s", out)
	}
}

func TestCmdXsdbind(t *testing.T) {
	schema := writeTemp(t, "po.xsd", schemas.PurchaseOrderXSD)
	good := writeTemp(t, "good.xml", schemas.PurchaseOrderDoc)
	bad := writeTemp(t, "bad.xml", strings.Replace(schemas.PurchaseOrderDoc, "<quantity>1</quantity>", "<quantity>9999</quantity>", 1))

	// Decode (DOM and stream paths must agree), then encode the JSON back
	// and decode once more: the canonical JSON is the fixed point.
	j := runCmd(t, true, "xsdbind", "-schema", schema, "-compact", good)
	if !strings.Contains(j, `"$element":"purchaseOrder"`) {
		t.Fatalf("xsdbind decode: %s", j)
	}
	js := runCmd(t, true, "xsdbind", "-schema", schema, "-compact", "-stream", good)
	if j != js {
		t.Errorf("stream decode diverged:\n  dom:    %s\n  stream: %s", j, js)
	}
	jsonPath := writeTemp(t, "good.json", j)
	xml := runCmd(t, true, "xsdbind", "-schema", schema, "-encode", jsonPath)
	xmlPath := writeTemp(t, "roundtrip.xml", xml)
	j2 := runCmd(t, true, "xsdbind", "-schema", schema, "-compact", xmlPath)
	if j != j2 {
		t.Errorf("round trip changed the value:\n  before: %s\n  after:  %s", j, j2)
	}
	out := runCmd(t, false, "xsdbind", "-schema", schema, bad)
	if !strings.Contains(out, "INVALID") {
		t.Errorf("xsdbind bad: %s", out)
	}
}

func TestCmdVdomgen(t *testing.T) {
	schema := writeTemp(t, "po.xsd", schemas.PurchaseOrderXSD)
	out := runCmd(t, true, "vdomgen", "-schema", schema, "-package", "mygen")
	for _, want := range []string{"package mygen", "type PurchaseOrderTypeType struct", "func (d *Document) CreateShipTo"} {
		if !strings.Contains(out, want) {
			t.Errorf("vdomgen output missing %q", want)
		}
	}
	// Unknown scheme is rejected.
	runCmd(t, false, "vdomgen", "-schema", schema, "-scheme", "bogus")
}

func TestCmdPxmlc(t *testing.T) {
	schema := writeTemp(t, "po.xsd", schemas.PurchaseOrderXSD)
	goodSrc := writeTemp(t, "good.pxml", `package p
//pxml:package pogen
//pxml:doc d
func f(d *pogen.Document) {
	c := <comment>hello</comment>;
	_ = c
}
`)
	out := runCmd(t, true, "pxmlc", "-schema", schema, goodSrc)
	if !strings.Contains(out, `d.CreateComment("hello")`) {
		t.Errorf("pxmlc output: %s", out)
	}
	// -check mode reports success without emitting.
	out = runCmd(t, true, "pxmlc", "-schema", schema, "-check", goodSrc)
	if !strings.Contains(out, "all constructors valid") {
		t.Errorf("pxmlc -check: %s", out)
	}
	// Static rejection exits non-zero.
	badSrc := writeTemp(t, "bad.pxml", `package p
//pxml:package pogen
//pxml:doc d
func f(d *pogen.Document) {
	q := <quantity>100</quantity>;
	_ = q
}
`)
	out = runCmd(t, false, "pxmlc", "-schema", schema, badSrc)
	if !strings.Contains(out, "must be < 100") {
		t.Errorf("pxmlc rejection message: %s", out)
	}
}

func TestCmdXmlfmt(t *testing.T) {
	doc := writeTemp(t, "po.xml", schemas.PurchaseOrderDoc)
	out := runCmd(t, true, "xmlfmt", doc)
	if !strings.Contains(out, "<purchaseOrder") {
		t.Errorf("xmlfmt: %s", out)
	}
	out = runCmd(t, true, "xmlfmt", "-dump", doc)
	if !strings.Contains(out, "Element purchaseOrder") {
		t.Errorf("xmlfmt -dump: %s", out)
	}
	badDoc := writeTemp(t, "bad.xml", "<a><b></a>")
	runCmd(t, false, "xmlfmt", badDoc)
}
