package repro

// E14 — the differential layer behind the ahead-of-time compiled
// validators (DESIGN.md §14): every checked-in generated package under
// internal/gen/ is exercised against the interpreted walk over shared
// corpora, with verdicts — paths, messages, MatchError text — required
// byte-identical, and decode/marshal outputs required byte-identical to
// the generic binder.

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/bind"
	"repro/internal/dom"
	"repro/internal/gen/derivgen"
	"repro/internal/gen/evolvedgen"
	"repro/internal/gen/mixgen"
	"repro/internal/gen/nsgen"
	"repro/internal/gen/pogen"
	"repro/internal/gen/popruned"
	"repro/internal/gen/wildgen"
	"repro/internal/gen/wmlgen"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/wml"
	"repro/internal/xsd"
)

// genTarget is one checked-in generated package: its schema source and
// the compiled entry points under differential test.
type genTarget struct {
	name          string
	source        string
	validateBytes func([]byte) (*dom.Document, *validator.Result)
	decodeBytes   func([]byte) (*bind.Value, *validator.Result)
	json          func(*bind.Value) []byte
	marshal       func(*bind.Value) ([]byte, error)
	// extra adds target-specific instances on top of the shared corpora.
	extra map[string]string
}

var genTargets = []genTarget{
	{
		name: "pogen", source: schemas.PurchaseOrderXSD,
		validateBytes: pogen.ValidateBytes, decodeBytes: pogen.DecodeBytes,
		json: pogen.JSON, marshal: pogen.Marshal,
		extra: map[string]string{
			"paper fig 1":       schemas.PurchaseOrderDoc,
			"comment root":      `<comment>standalone</comment>`,
			"nested bad child":  `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items><item partNum="926-AA"><productName>p</productName><quantity>0</quantity><USPrice>1</USPrice></item></items></purchaseOrder>`,
			"not even xml":      `<purchaseOrder`,
			"empty input":       ``,
			"processing quirks": `<?xml version="1.0"?><!--pre--><purchaseOrder><items/></purchaseOrder>`,
		},
	},
	{
		name: "popruned", source: schemas.PurchaseOrderXSD,
		validateBytes: popruned.ValidateBytes, decodeBytes: popruned.DecodeBytes,
		json: popruned.JSON, marshal: popruned.Marshal,
		extra: map[string]string{
			// The corpus omits <comment>, so its declaration is pruned:
			// these route through the interpreted Sink delegation.
			"paper fig 1 (pruned comment)": schemas.PurchaseOrderDoc,
			"comment root (pruned)":        `<comment>standalone</comment>`,
			"bad comment placement":        `<purchaseOrder><comment>early</comment><items/></purchaseOrder>`,
		},
	},
	{
		name: "evolvedgen", source: schemas.EvolvedPurchaseOrderXSD,
		validateBytes: evolvedgen.ValidateBytes, decodeBytes: evolvedgen.DecodeBytes,
		json: evolvedgen.JSON, marshal: evolvedgen.Marshal,
	},
	{
		name: "derivgen", source: schemas.AddressDerivationXSD,
		validateBytes: derivgen.ValidateBytes, decodeBytes: derivgen.DecodeBytes,
		json: derivgen.JSON, marshal: derivgen.Marshal,
	},
	{
		name: "wmlgen", source: wml.Schema,
		validateBytes: wmlgen.ValidateBytes, decodeBytes: wmlgen.DecodeBytes,
		json: wmlgen.JSON, marshal: wmlgen.Marshal,
	},
	{
		name: "nsgen", source: schemas.NamespacedOrderXSD,
		validateBytes: nsgen.ValidateBytes, decodeBytes: nsgen.DecodeBytes,
		json: nsgen.JSON, marshal: nsgen.Marshal,
	},
	{
		name: "mixgen", source: schemas.ComplexGroupsXSD,
		validateBytes: mixgen.ValidateBytes, decodeBytes: mixgen.DecodeBytes,
		json: mixgen.JSON, marshal: mixgen.Marshal,
	},
	{
		name: "wildgen", source: schemas.WildcardEnvelopeXSD,
		validateBytes: wildgen.ValidateBytes, decodeBytes: wildgen.DecodeBytes,
		json: wildgen.JSON, marshal: wildgen.Marshal,
		extra: map[string]string{
			"lax mix":               schemas.WildcardEnvelopeDoc,
			"known global invalid":  `<envelope><record><value>v</value><key>k</key></record></envelope>`,
			"foreign content only":  `<envelope xmlns:o="urn:other"><o:thing deep="1"><o:more/></o:thing></envelope>`,
			"bad declared attr":     `<envelope version="zero"><extra>x</extra></envelope>`,
			"wildcard attr":         `<envelope anything="goes"/>`,
			"global extra root":     `<extra>top level</extra>`,
			"global record invalid": `<record><key>k</key></record>`,
		},
	},
}

// genInstances collects the differential corpus for one target: every
// instance of the shared mutation/stream/bind corpora whose schema
// matches, plus the target's own extras. Keys are sorted for
// deterministic runs.
func genInstances(tgt genTarget) []struct{ label, src string } {
	merged := map[string]string{}
	for _, dc := range diffCases {
		if dc.xsdSrc != tgt.source {
			continue
		}
		for k, v := range dc.instances {
			merged["diff/"+k] = v
		}
	}
	for _, bc := range bindCases {
		if bc.xsdSrc != tgt.source {
			continue
		}
		for k, v := range bc.instances {
			merged["bind/"+k] = v
		}
	}
	if tgt.source == schemas.PurchaseOrderXSD {
		for _, m := range poMutations {
			merged["mutation/"+m.name] = m.xmlOutput
		}
	}
	for k, v := range tgt.extra {
		merged["extra/"+k] = v
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct{ label, src string }, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct{ label, src string }{k, merged[k]})
	}
	return out
}

// diffOne runs one instance through both stacks and asserts byte-equal
// verdicts; on valid documents it also asserts byte-equal decoded JSON
// and byte-equal (or identically failing) marshal round trips.
func diffOne(t *testing.T, tgt genTarget, b *bind.Binder, schema *xsd.Schema, label, src string) {
	t.Helper()
	_, intRes := validator.ValidateBytes(schema, []byte(src))
	_, genRes := tgt.validateBytes([]byte(src))
	assertSameResult(t, label+" (validate)", intRes, genRes)

	intVal, intDecRes := b.DecodeBytes([]byte(src))
	genVal, genDecRes := tgt.decodeBytes([]byte(src))
	assertSameResult(t, label+" (decode verdict)", intDecRes, genDecRes)
	if (intVal == nil) != (genVal == nil) {
		t.Errorf("%s: decode diverged: interpreted value nil=%v generated nil=%v",
			label, intVal == nil, genVal == nil)
		return
	}
	if intVal == nil {
		return
	}
	intJSON, genJSON := b.JSON(intVal), tgt.json(genVal)
	if !bytes.Equal(intJSON, genJSON) {
		t.Errorf("%s: JSON diverged:\n  interpreted: %s\n  generated:   %s", label, intJSON, genJSON)
	}
	intOut, intErr := b.Marshal(intVal)
	genOut, genErr := tgt.marshal(genVal)
	if (intErr == nil) != (genErr == nil) || (intErr != nil && intErr.Error() != genErr.Error()) {
		t.Errorf("%s: marshal error diverged:\n  interpreted: %v\n  generated:   %v", label, intErr, genErr)
		return
	}
	if !bytes.Equal(intOut, genOut) {
		t.Errorf("%s: marshal output diverged:\n  interpreted: %s\n  generated:   %s", label, intOut, genOut)
	}
}

// TestGeneratedMatchesInterpreted is the curated differential corpus:
// every bundled generated validator against the interpreted walk, same
// instances the mutation (E1), streaming (E8) and binding (E12)
// experiments use, plus wildcard/pruning extras.
func TestGeneratedMatchesInterpreted(t *testing.T) {
	for _, tgt := range genTargets {
		t.Run(tgt.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tgt.source, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := bind.New(schema, nil)
			for _, inst := range genInstances(tgt) {
				diffOne(t, tgt, b, schema, inst.label, inst.src)
			}
		})
	}
}

// FuzzGeneratedValidator drives arbitrary bytes through every generated
// validator and the interpreted walk, demanding identical verdicts (and,
// for valid inputs, identical decoded JSON). Seeded with the whole
// curated corpus.
func FuzzGeneratedValidator(f *testing.F) {
	schemasByName := map[string]*xsd.Schema{}
	bindersByName := map[string]*bind.Binder{}
	for _, tgt := range genTargets {
		schema, err := xsd.ParseString(tgt.source, nil)
		if err != nil {
			f.Fatal(err)
		}
		schemasByName[tgt.name] = schema
		bindersByName[tgt.name] = bind.New(schema, nil)
		for _, inst := range genInstances(tgt) {
			f.Add([]byte(inst.src))
		}
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		for _, tgt := range genTargets {
			schema := schemasByName[tgt.name]
			_, intRes := validator.ValidateBytes(schema, src)
			_, genRes := tgt.validateBytes(src)
			assertSameResult(t, tgt.name, intRes, genRes)
			if !intRes.OK() {
				continue
			}
			intVal, _ := bindersByName[tgt.name].DecodeBytes(src)
			genVal, _ := tgt.decodeBytes(src)
			if (intVal == nil) != (genVal == nil) {
				t.Errorf("%s: decode nil-ness diverged", tgt.name)
				continue
			}
			if intVal != nil && !bytes.Equal(bindersByName[tgt.name].JSON(intVal), tgt.json(genVal)) {
				t.Errorf("%s: decoded JSON diverged", tgt.name)
			}
		}
	})
}
