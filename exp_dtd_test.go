package repro

// E9 (addendum) — DTD vs XML Schema on the same vocabulary: the paper's
// §1 motivation for leaving the authors' DTD-based system [14]. The test
// shows the expressiveness gap (the DTD accepts every facet violation the
// XSD rejects); the benchmark shows the runtime cost of each validator.

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/dtd"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// poDTDSubset is the purchase-order vocabulary as a DTD.
const poDTDSubset = `
<!ELEMENT purchaseOrder (shipTo, billTo, comment?, items)>
<!ATTLIST purchaseOrder orderDate CDATA #IMPLIED>
<!ELEMENT shipTo (name, street, city, state, zip)>
<!ATTLIST shipTo country NMTOKEN #FIXED "US">
<!ELEMENT billTo (name, street, city, state, zip)>
<!ATTLIST billTo country NMTOKEN #FIXED "US">
<!ELEMENT comment (#PCDATA)>
<!ELEMENT items (item*)>
<!ELEMENT item (productName, quantity, USPrice, comment?, shipDate?)>
<!ATTLIST item partNum CDATA #REQUIRED>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT USPrice (#PCDATA)>
<!ELEMENT shipDate (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
`

// TestE9ExpressivenessGap: the same invalid values pass the DTD and fail
// the XSD — the paper's reason for upgrading.
func TestE9ExpressivenessGap(t *testing.T) {
	d, err := dtd.Parse("purchaseOrder", poDTDSubset)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A structurally correct order with facet violations everywhere.
	src := strings.NewReplacer(
		"<quantity>1</quantity>", "<quantity>99999</quantity>",
		`partNum="872-AA"`, `partNum="NOT-A-SKU"`,
		"<zip>90952</zip>", "<zip>letters</zip>",
	).Replace(schemas.PurchaseOrderDoc)
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	dtdRes := dtd.Validate(d, doc)
	xsdRes := validator.New(schema, nil).ValidateDocument(doc)
	t.Logf("facet-violating order: DTD valid=%v, XSD valid=%v (%d XSD violations)",
		dtdRes.OK(), xsdRes.OK(), len(xsdRes.Violations))
	if !dtdRes.OK() {
		t.Errorf("the DTD should accept facet violations it cannot express: %v", dtdRes.Err())
	}
	if xsdRes.OK() {
		t.Error("the XSD must reject the facet violations")
	}
	// Structural errors are caught by both.
	broken := strings.Replace(schemas.PurchaseOrderDoc, "<billTo", "<XbillTo", 1)
	broken = strings.Replace(broken, "</billTo>", "</XbillTo>", 1)
	doc2, err := dom.ParseString(broken)
	if err != nil {
		t.Fatal(err)
	}
	if dtd.Validate(d, doc2).OK() {
		t.Error("DTD should catch the structural error")
	}
	if validator.New(schema, nil).ValidateDocument(doc2).OK() {
		t.Error("XSD should catch the structural error")
	}
}

// BenchmarkE9_DTDValidate vs BenchmarkE9_XSDValidate: the price of the
// richer checks.
func BenchmarkE9_DTDValidate(b *testing.B) {
	d, err := dtd.Parse("purchaseOrder", poDTDSubset)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := dtd.Validate(d, doc); !res.OK() {
			b.Fatal(res.Err())
		}
	}
}

func BenchmarkE9_XSDValidate(b *testing.B) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		b.Fatal(err)
	}
	v := validator.New(schema, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := v.ValidateDocument(doc); !res.OK() {
			b.Fatal(res.Err())
		}
	}
}
