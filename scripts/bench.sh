#!/bin/sh
# Run the perf-trajectory benchmarks (E7 cached validation, E8 streaming,
# E10 DFA stepping + pooled allocation, E11 service throughput, E12
# one-pass binding, E13 registry cold-start + compatibility checking,
# E14 ahead-of-time compiled validators, E15 zero-copy tokenization +
# intra-document parallel validation, E16 SOAP envelope dispatch vs the
# bare-validation floor, E17 cluster routing + batch amortization +
# pooled response buffers + shared-parse cold start) and write
# machine-readable results to BENCH_PR10.json at the repository root.
# The JSON records the host's CPU model, core count and GOMAXPROCS —
# read the E15 scaling legs and the E17 fleet legs against num_cpu, not
# in isolation (a 3-node in-process fleet on one core is measuring
# routing overhead, not horizontal scaling).
#
# Usage: scripts/bench.sh [extra go test flags...]
#   e.g. scripts/bench.sh -benchtime=2s
set -eu
cd "$(dirname "$0")/.."

go test -run xxx -bench 'BenchmarkE7|BenchmarkE8|BenchmarkE10|BenchmarkE11|BenchmarkE12|BenchmarkE13|BenchmarkE14|BenchmarkE15|BenchmarkE16|BenchmarkE17' -benchmem "$@" . |
	go run ./cmd/benchjson -o BENCH_PR10.json
echo "wrote BENCH_PR10.json" >&2
