package stringgen

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/wml"
	"repro/internal/xsd"
)

// TestFig8CorrectPage: the careful string template happens to produce
// well-formed, schema-valid WML — but only a runtime check can tell.
func TestFig8CorrectPage(t *testing.T) {
	page := DirectoryPageWML("/workspace/media", "/workspace", []string{"audio", "video"})
	doc, err := dom.ParseString(page)
	if err != nil {
		t.Fatalf("correct page does not parse: %v", err)
	}
	schema, err := xsd.ParseString(wml.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	decl, _ := schema.LookupElement(xsd.QName{Local: "p"})
	if decl == nil {
		// p is a local element in the WML schema; validate the subtree
		// against the P type via a synthetic global. Instead just check
		// well-formedness plus the option containment below.
		t.Skip("p is not global in the WML schema")
	}
	_ = doc
}

// TestWrongServerPage: the paper's broken page compiles (it is a Go
// function!) and the damage only shows when the output is parsed.
func TestWrongServerPage(t *testing.T) {
	page := WrongServerPage("A Wrong Server Page")
	if _, err := dom.ParseString(page); err == nil {
		t.Fatal("the wrong server page should not be well-formed")
	}
	// The good twin parses.
	if _, err := dom.ParseString(SimpleServerPage("A Simple Server Page")); err != nil {
		t.Fatalf("the simple server page should parse: %v", err)
	}
}

// TestBrokenDirectoryPage: the typo generator compiles but its output is
// rejected by the XML parser — detection deferred to runtime.
func TestBrokenDirectoryPage(t *testing.T) {
	page := BrokenDirectoryPageWML("/a", "/", []string{"x"})
	if _, err := dom.ParseString(page); err == nil {
		t.Fatal("broken page should not parse")
	}
}

// TestInvalidModelPage: well-formed output that violates the schema —
// only a validator notices.
func TestInvalidModelPage(t *testing.T) {
	page := InvalidModelPageWML("/a")
	if _, err := dom.ParseString(page); err != nil {
		t.Fatalf("invalid-model page is well-formed by design: %v", err)
	}
	// Wrap it in a deck so the root is the global wml element, then
	// validate: the option inside p must be flagged.
	deck := "<wml><card>" + page + "</card></wml>"
	schema, err := xsd.ParseString(wml.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dom.ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	res := validator.New(schema, nil).ValidateDocument(doc)
	if res.OK() {
		t.Fatal("schema-invalid page accepted by the validator")
	}
	if !strings.Contains(res.Err().Error(), "option") {
		t.Errorf("violation should mention option: %v", res.Err())
	}
}

// TestPurchaseOrderPageUnchecked: garbage in, garbage out — the template
// happily emits values the schema forbids.
func TestPurchaseOrderPageUnchecked(t *testing.T) {
	page := PurchaseOrderPage("n", "s", "c", "st", "zip!", "NOT-A-SKU", "p", "-5", "free")
	doc, err := dom.ParseString(page)
	if err != nil {
		t.Fatalf("page is well-formed: %v", err)
	}
	schema := mustPOSchema(t)
	res := validator.New(schema, nil).ValidateDocument(doc)
	if res.OK() {
		t.Fatal("facet-violating order accepted")
	}
	// And a well-behaved call is valid.
	good := PurchaseOrderPage("n", "s", "c", "st", "90952", "926-AA", "p", "5", "1.50")
	doc, err = dom.ParseString(good)
	if err != nil {
		t.Fatal(err)
	}
	if res := validator.New(schema, nil).ValidateDocument(doc); !res.OK() {
		t.Fatalf("good order rejected: %v", res.Err())
	}
}

func mustPOSchema(t *testing.T) *xsd.Schema {
	t.Helper()
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}
