// Package stringgen is the paper's §1 strawman: generating markup by
// string concatenation, the Java-Server-Pages style the paper opens with.
// The Go compiler accepts every function here — including the ones that
// emit garbage — because to the host language the page is just a string.
// Detecting the broken generators requires runtime parsing and validation
// (see the E1 experiment), which is precisely the deficiency V-DOM and
// P-XML remove.
//
// # Role in the pipeline
//
// stringgen sits outside the typed pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml) on purpose: it is the
// untyped baseline whose output can only be judged by feeding it back
// through xmlparser and the runtime validator, which is what the E1/E2
// experiments measure.
//
// # Concurrency
//
// All generators are pure functions of their arguments; they may be
// called from any number of goroutines.
package stringgen
