package stringgen

import (
	"fmt"
	"strings"
)

// SimpleServerPage renders the paper's first listing: a title page whose
// markup happens to be correct.
func SimpleServerPage(title string) string {
	var sb strings.Builder
	sb.WriteString("<html>\n")
	sb.WriteString("  <head><title>" + title + "</title></head>\n")
	sb.WriteString("  <body><h1>" + title + "</h1></body>\n")
	sb.WriteString("</html>\n")
	return sb.String()
}

// WrongServerPage renders the paper's second listing: the compiler is
// equally happy, but the output is not well-formed (the title element is
// never closed and the tags overlap).
func WrongServerPage(title string) string {
	var sb strings.Builder
	sb.WriteString("<html>\n")
	sb.WriteString("  <head><title>" + title + "</head></title>\n") // overlapping tags
	sb.WriteString("  <body><h1>" + title + "</body>\n")            // h1 never closed
	sb.WriteString("</html>\n")
	return sb.String()
}

// DirectoryPageWML renders the paper's Fig. 8 page by concatenation: the
// current directory in bold, then a select of the parent and all
// subdirectories.
func DirectoryPageWML(currentDir, parentDir string, subDirs []string) string {
	var sb strings.Builder
	sb.WriteString("<p>\n")
	sb.WriteString("  <b>" + escape(currentDir) + "</b><br/>\n")
	sb.WriteString("  <select name=\"directories\">\n")
	fmt.Fprintf(&sb, "    <option value=%q>..</option>\n", parentDir)
	for _, sub := range subDirs {
		fmt.Fprintf(&sb, "    <option value=%q>%s</option>\n", currentDir+"/"+sub, escape(sub))
	}
	sb.WriteString("  </select><br/>\n")
	sb.WriteString("</p>\n")
	return sb.String()
}

// BrokenDirectoryPageWML is DirectoryPageWML with the kind of slip the
// paper warns about: an <option> start tag is closed as </optoin>. The
// function compiles; only a test run (or a validator) notices.
func BrokenDirectoryPageWML(currentDir, parentDir string, subDirs []string) string {
	var sb strings.Builder
	sb.WriteString("<p>\n")
	sb.WriteString("  <b>" + escape(currentDir) + "</b><br/>\n")
	sb.WriteString("  <select name=\"directories\">\n")
	fmt.Fprintf(&sb, "    <option value=%q>..</optoin>\n", parentDir) // typo: invalid
	for _, sub := range subDirs {
		fmt.Fprintf(&sb, "    <option value=%q>%s</option>\n", currentDir+"/"+sub, escape(sub))
	}
	sb.WriteString("  </select><br/>\n")
	sb.WriteString("</p>\n")
	return sb.String()
}

// InvalidModelPageWML emits well-formed WML that is nonetheless invalid
// against the schema (an option directly inside the paragraph): the class
// of error only a validating check catches at runtime, and the typed API
// rejects at compile time.
func InvalidModelPageWML(currentDir string) string {
	var sb strings.Builder
	sb.WriteString("<p>\n")
	fmt.Fprintf(&sb, "  <option value=%q>%s</option>\n", currentDir, escape(currentDir))
	sb.WriteString("</p>\n")
	return sb.String()
}

// PurchaseOrderPage renders a purchase order by concatenation; fields land
// in the output with no checks at all.
func PurchaseOrderPage(name, street, city, state, zip, partNum, product, quantity, price string) string {
	var sb strings.Builder
	sb.WriteString("<purchaseOrder>\n")
	sb.WriteString("  <shipTo country=\"US\">\n")
	fmt.Fprintf(&sb, "    <name>%s</name><street>%s</street><city>%s</city><state>%s</state><zip>%s</zip>\n",
		escape(name), escape(street), escape(city), escape(state), escape(zip))
	sb.WriteString("  </shipTo>\n")
	sb.WriteString("  <billTo country=\"US\">\n")
	fmt.Fprintf(&sb, "    <name>%s</name><street>%s</street><city>%s</city><state>%s</state><zip>%s</zip>\n",
		escape(name), escape(street), escape(city), escape(state), escape(zip))
	sb.WriteString("  </billTo>\n")
	fmt.Fprintf(&sb, "  <items><item partNum=%q><productName>%s</productName><quantity>%s</quantity><USPrice>%s</USPrice></item></items>\n",
		partNum, escape(product), quantity, price)
	sb.WriteString("</purchaseOrder>\n")
	return sb.String()
}

// escape performs the minimal text escaping string-template authors
// remember to do on good days.
func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return s
}
