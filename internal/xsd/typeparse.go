package xsd

import (
	"strconv"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xsdregex"
	"repro/internal/xsdtypes"
)

// parseComplexType parses an xs:complexType definition. name is zero for
// anonymous types; context describes the definition site for diagnostics
// and the normalization naming scheme.
func (p *parser) parseComplexType(el *dom.Element, name QName, context string) (*ComplexType, error) {
	ct := &ComplexType{Name: name, Context: context}
	ct.Abstract = el.GetAttribute("abstract") == "true"
	mixed := el.GetAttribute("mixed") == "true"
	if !name.IsZero() {
		p.schema.Types[name] = ct // register shell: recursive content is legal
	} else {
		p.schema.anonTypes = append(p.schema.anonTypes, ct)
	}
	kids := schemaChildren(el)
	// simpleContent / complexContent / implicit content.
	if len(kids) == 1 && kids[0].LocalName() == "simpleContent" {
		if err := p.parseSimpleContent(kids[0], ct); err != nil {
			return nil, err
		}
		return ct, nil
	}
	if len(kids) == 1 && kids[0].LocalName() == "complexContent" {
		if m := kids[0].GetAttribute("mixed"); m != "" {
			mixed = m == "true"
		}
		if err := p.parseComplexContent(kids[0], ct, mixed); err != nil {
			return nil, err
		}
		return ct, nil
	}
	// Implicit complex content: restriction of anyType.
	ct.Base = p.schema.AnyType()
	ct.DerivedBy = DeriveRestriction
	particle, uses, wild, err := p.parseContentBody(kids, context)
	if err != nil {
		return nil, err
	}
	ct.Particle = particle
	ct.AttributeUses = uses
	ct.AttrWildcard = wild
	ct.Kind = classifyContent(particle, mixed)
	return ct, nil
}

// classifyContent determines the content kind from the particle.
func classifyContent(particle *Particle, mixed bool) ContentKind {
	empty := particle == nil || (particle.Group != nil && len(particle.Group.Particles) == 0)
	switch {
	case mixed:
		return ContentMixed
	case empty:
		return ContentEmpty
	default:
		return ContentElementOnly
	}
}

// parseContentBody parses the (group|all|choice|sequence)? attrDecls tail
// shared by complexType and complexContent derivations.
func (p *parser) parseContentBody(kids []*dom.Element, context string) (*Particle, []*AttributeUse, *contentmodel.Wildcard, error) {
	var particle *Particle
	var attrNodes []*dom.Element
	for _, c := range kids {
		switch c.LocalName() {
		case "group", "all", "choice", "sequence":
			if particle != nil {
				return nil, nil, nil, errAt(c, "multiple content model groups")
			}
			var err error
			particle, err = p.parseParticle(c)
			if err != nil {
				return nil, nil, nil, err
			}
		case "attribute", "attributeGroup", "anyAttribute":
			attrNodes = append(attrNodes, c)
		default:
			return nil, nil, nil, errAt(c, "unexpected construct in complex type %q", context)
		}
	}
	uses, wild, err := p.parseAttributeNodes(attrNodes)
	if err != nil {
		return nil, nil, nil, err
	}
	return particle, uses, wild, nil
}

// parseSimpleContent parses simpleContent extension/restriction.
func (p *parser) parseSimpleContent(el *dom.Element, ct *ComplexType) error {
	kids := schemaChildren(el)
	if len(kids) != 1 {
		return errAt(el, "simpleContent requires exactly one extension or restriction")
	}
	deriv := kids[0]
	baseName := deriv.GetAttribute("base")
	if baseName == "" {
		return errAt(deriv, "derivation requires base")
	}
	q, err := resolveQName(deriv, baseName)
	if err != nil {
		return errAt(deriv, "%v", err)
	}
	base, err := p.buildType(q)
	if err != nil {
		return err
	}
	ct.Base = base
	ct.Kind = ContentSimple
	// Determine the character-data simple type.
	var baseSimple *SimpleType
	switch b := base.(type) {
	case *SimpleType:
		baseSimple = b
	case *ComplexType:
		if b.Kind != ContentSimple {
			return errAt(deriv, "simpleContent base %s has no simple content", q)
		}
		baseSimple = b.SimpleContentType
		// Inherit the base's attributes.
		ct.AttributeUses = append(ct.AttributeUses, b.AttributeUses...)
		if b.AttrWildcard != nil {
			ct.AttrWildcard = b.AttrWildcard
		}
	}
	switch deriv.LocalName() {
	case "extension":
		ct.DerivedBy = DeriveExtension
		ct.SimpleContentType = baseSimple
		uses, wild, err := p.parseAttributeUses(deriv)
		if err != nil {
			return err
		}
		ct.AttributeUses = mergeAttributeUses(ct.AttributeUses, uses)
		if wild != nil {
			ct.AttrWildcard = wild
		}
	case "restriction":
		ct.DerivedBy = DeriveRestriction
		// Facets restrict the simple content type.
		st := &SimpleType{Base: baseSimple, Variety: baseSimple.Variety, ItemType: baseSimple.ItemType, MemberTypes: baseSimple.MemberTypes, Context: ct.Context + " simpleContent"}
		if err := p.parseFacets(deriv, st); err != nil {
			return err
		}
		ct.SimpleContentType = st
		uses, wild, err := p.parseAttributeUses(deriv)
		if err != nil {
			return err
		}
		ct.AttributeUses = mergeAttributeUses(ct.AttributeUses, uses)
		if wild != nil {
			ct.AttrWildcard = wild
		}
	default:
		return errAt(deriv, "simpleContent requires extension or restriction")
	}
	return nil
}

// parseComplexContent parses complexContent extension/restriction.
func (p *parser) parseComplexContent(el *dom.Element, ct *ComplexType, mixed bool) error {
	kids := schemaChildren(el)
	if len(kids) != 1 {
		return errAt(el, "complexContent requires exactly one extension or restriction")
	}
	deriv := kids[0]
	baseName := deriv.GetAttribute("base")
	if baseName == "" {
		return errAt(deriv, "derivation requires base")
	}
	q, err := resolveQName(deriv, baseName)
	if err != nil {
		return errAt(deriv, "%v", err)
	}
	baseT, err := p.buildType(q)
	if err != nil {
		return err
	}
	base, ok := baseT.(*ComplexType)
	if !ok {
		return errAt(deriv, "complexContent base %s is not a complex type", q)
	}
	ct.Base = base
	particle, uses, wild, err := p.parseContentBody(schemaChildren(deriv), ct.Context)
	if err != nil {
		return err
	}
	switch deriv.LocalName() {
	case "extension":
		ct.DerivedBy = DeriveExtension
		// Effective content: sequence(base content, extension content).
		switch {
		case base.Particle == nil || isEmptyGroup(base.Particle):
			ct.Particle = particle
		case particle == nil:
			ct.Particle = base.Particle
		case isPlainSequence(base.Particle) && isPlainSequence(particle):
			// Flatten two 1..1 sequences into one, so inherited members
			// sit next to the extension's own (paper §3: USAddressType
			// carries name..city and state/zip as sibling attributes).
			merged := append(append([]*Particle{}, base.Particle.Group.Particles...), particle.Group.Particles...)
			ct.Particle = &Particle{Min: 1, Max: 1, Group: &ModelGroup{Kind: Sequence, Particles: merged}}
		default:
			ct.Particle = &Particle{Min: 1, Max: 1, Group: &ModelGroup{
				Kind:      Sequence,
				Particles: []*Particle{base.Particle, particle},
			}}
		}
		ct.AttributeUses = mergeAttributeUses(base.AttributeUses, uses)
		ct.AttrWildcard = wild
		if ct.AttrWildcard == nil {
			ct.AttrWildcard = base.AttrWildcard
		}
		if !mixed && base.Kind == ContentMixed {
			mixed = true // extension of a mixed type stays mixed
		}
	case "restriction":
		ct.DerivedBy = DeriveRestriction
		ct.Particle = particle
		ct.AttributeUses = mergeAttributeUses(base.AttributeUses, uses)
		ct.AttrWildcard = wild
	default:
		return errAt(deriv, "complexContent requires extension or restriction")
	}
	ct.Kind = classifyContent(ct.Particle, mixed)
	return nil
}

func isEmptyGroup(p *Particle) bool {
	return p.Group != nil && len(p.Group.Particles) == 0
}

// isPlainSequence reports whether p is an unnamed 1..1 sequence group.
func isPlainSequence(p *Particle) bool {
	return p.Group != nil && p.Group.Kind == Sequence && p.Group.DefName.IsZero() &&
		p.Min == 1 && p.Max == 1
}

// mergeAttributeUses overlays own uses on inherited ones (same-name
// replaces; prohibited removes).
func mergeAttributeUses(inherited, own []*AttributeUse) []*AttributeUse {
	var out []*AttributeUse
	replaced := func(name QName) *AttributeUse {
		for _, u := range own {
			if u.Decl.Name == name {
				return u
			}
		}
		return nil
	}
	for _, u := range inherited {
		if r := replaced(u.Decl.Name); r != nil {
			continue // own declaration wins
		}
		out = append(out, u)
	}
	for _, u := range own {
		if u.Prohibited {
			continue
		}
		out = append(out, u)
	}
	return out
}

// parseAttributeUses parses attribute/attributeGroup/anyAttribute children
// of el.
func (p *parser) parseAttributeUses(el *dom.Element) ([]*AttributeUse, *contentmodel.Wildcard, error) {
	var nodes []*dom.Element
	for _, c := range schemaChildren(el) {
		switch c.LocalName() {
		case "attribute", "attributeGroup", "anyAttribute":
			nodes = append(nodes, c)
		}
	}
	return p.parseAttributeNodes(nodes)
}

func (p *parser) parseAttributeNodes(nodes []*dom.Element) ([]*AttributeUse, *contentmodel.Wildcard, error) {
	var uses []*AttributeUse
	var wild *contentmodel.Wildcard
	for _, c := range nodes {
		switch c.LocalName() {
		case "attribute":
			u, err := p.parseAttributeUse(c)
			if err != nil {
				return nil, nil, err
			}
			uses = append(uses, u)
		case "attributeGroup":
			ref := c.GetAttribute("ref")
			if ref == "" {
				return nil, nil, errAt(c, "attributeGroup here requires ref")
			}
			q, err := resolveQName(c, ref)
			if err != nil {
				return nil, nil, errAt(c, "%v", err)
			}
			def, err := p.buildAttributeGroup(q)
			if err != nil {
				return nil, nil, err
			}
			uses = append(uses, def.AttributeUses...)
			if def.AttrWildcard != nil {
				wild = def.AttrWildcard
			}
		case "anyAttribute":
			w, err := parseWildcard(c, p.tnsOf(c))
			if err != nil {
				return nil, nil, err
			}
			wild = w
		}
	}
	return uses, wild, nil
}

// parseAttributeUse parses one xs:attribute occurrence inside a type.
func (p *parser) parseAttributeUse(el *dom.Element) (*AttributeUse, error) {
	use := &AttributeUse{}
	switch el.GetAttribute("use") {
	case "required":
		use.Required = true
	case "prohibited":
		use.Prohibited = true
	}
	if v := el.GetAttribute("default"); el.HasAttribute("default") {
		use.Default = &v
	}
	if v := el.GetAttribute("fixed"); el.HasAttribute("fixed") {
		use.Fixed = &v
	}
	if ref := el.GetAttribute("ref"); ref != "" {
		q, err := resolveQName(el, ref)
		if err != nil {
			return nil, errAt(el, "%v", err)
		}
		decl, err := p.buildGlobalAttribute(q)
		if err != nil {
			return nil, err
		}
		use.Decl = decl
		return use, nil
	}
	name := el.GetAttribute("name")
	if name == "" {
		return nil, errAt(el, "attribute requires name or ref")
	}
	space := ""
	qualified := p.formDefaultOf(el, "attributeFormDefault")
	if form := el.GetAttribute("form"); form != "" {
		qualified = form == "qualified"
	}
	if qualified {
		space = p.tnsOf(el)
	}
	st, err := p.attributeType(el, name)
	if err != nil {
		return nil, err
	}
	use.Decl = &AttributeDecl{Name: QName{Space: space, Local: name}, Type: st}
	return use, nil
}

// parseSimpleType parses an xs:simpleType definition.
func (p *parser) parseSimpleType(el *dom.Element, name QName, context string) (*SimpleType, error) {
	st := &SimpleType{Name: name, Context: context}
	// Unlike complex types, simple types register only after their body
	// parses: a simple type cannot legally refer to itself, and eager
	// registration would mask derivation cycles (buildType's in-progress
	// set catches them instead).
	if name.IsZero() {
		p.schema.anonTypes = append(p.schema.anonTypes, st)
	}
	kids := schemaChildren(el)
	if len(kids) != 1 {
		return nil, errAt(el, "simpleType requires exactly one of restriction, list or union")
	}
	body := kids[0]
	switch body.LocalName() {
	case "restriction":
		st.Variety = VarietyAtomic
		base, err := p.simpleBase(body, context)
		if err != nil {
			return nil, err
		}
		st.Base = base
		st.Variety = base.Variety
		st.ItemType = base.ItemType
		st.MemberTypes = base.MemberTypes
		if err := p.parseFacets(body, st); err != nil {
			return nil, err
		}
	case "list":
		st.Variety = VarietyList
		if it := body.GetAttribute("itemType"); it != "" {
			q, err := resolveQName(body, it)
			if err != nil {
				return nil, errAt(body, "%v", err)
			}
			item, err := p.buildSimpleType(q, body)
			if err != nil {
				return nil, err
			}
			st.ItemType = item
		} else {
			inner := schemaChildren(body)
			if len(inner) != 1 || inner[0].LocalName() != "simpleType" {
				return nil, errAt(body, "list requires itemType or an inline simpleType")
			}
			item, err := p.parseSimpleType(inner[0], QName{}, context+" item")
			if err != nil {
				return nil, err
			}
			st.ItemType = item
		}
	case "union":
		st.Variety = VarietyUnion
		if mt := body.GetAttribute("memberTypes"); mt != "" {
			for _, lex := range strings.Fields(mt) {
				q, err := resolveQName(body, lex)
				if err != nil {
					return nil, errAt(body, "%v", err)
				}
				m, err := p.buildSimpleType(q, body)
				if err != nil {
					return nil, err
				}
				st.MemberTypes = append(st.MemberTypes, m)
			}
		}
		for _, inner := range schemaChildren(body) {
			if inner.LocalName() != "simpleType" {
				return nil, errAt(inner, "unexpected construct in union")
			}
			m, err := p.parseSimpleType(inner, QName{}, context+" member")
			if err != nil {
				return nil, err
			}
			st.MemberTypes = append(st.MemberTypes, m)
		}
		if len(st.MemberTypes) == 0 {
			return nil, errAt(body, "union requires at least one member type")
		}
	default:
		return nil, errAt(body, "simpleType requires restriction, list or union")
	}
	if !name.IsZero() {
		p.schema.Types[name] = st
	}
	return st, nil
}

// simpleBase resolves a restriction's base (attribute or inline).
func (p *parser) simpleBase(body *dom.Element, context string) (*SimpleType, error) {
	if baseName := body.GetAttribute("base"); baseName != "" {
		q, err := resolveQName(body, baseName)
		if err != nil {
			return nil, errAt(body, "%v", err)
		}
		return p.buildSimpleType(q, body)
	}
	for _, inner := range schemaChildren(body) {
		if inner.LocalName() == "simpleType" {
			return p.parseSimpleType(inner, QName{}, context+" base")
		}
	}
	return nil, errAt(body, "restriction requires base or an inline simpleType")
}

// buildSimpleType resolves a type name that must denote a simple type.
func (p *parser) buildSimpleType(q QName, at *dom.Element) (*SimpleType, error) {
	t, err := p.buildType(q)
	if err != nil {
		return nil, err
	}
	st, ok := t.(*SimpleType)
	if !ok {
		return nil, errAt(at, "%s is not a simple type", q)
	}
	return st, nil
}

// parseFacets parses the facet children of a restriction into st.Facets.
// Facet bound/enumeration values are validated against the base type.
func (p *parser) parseFacets(body *dom.Element, st *SimpleType) error {
	f := &st.Facets
	parseBound := func(c *dom.Element) (*xsdtypes.Value, error) {
		lex := c.GetAttribute("value")
		base := st.Base
		if base == nil {
			return nil, errAt(c, "facet on type without base")
		}
		v, err := base.Parse(lex)
		if err != nil {
			return nil, errAt(c, "facet value %q is not valid against the base type: %v", lex, err)
		}
		return &v, nil
	}
	parseInt := func(c *dom.Element) (*int, error) {
		lex := c.GetAttribute("value")
		n, err := strconv.Atoi(lex)
		if err != nil || n < 0 {
			return nil, errAt(c, "facet value %q must be a non-negative integer", lex)
		}
		return &n, nil
	}
	for _, c := range schemaChildren(body) {
		var err error
		switch c.LocalName() {
		case "length":
			f.Length, err = parseInt(c)
		case "minLength":
			f.MinLength, err = parseInt(c)
		case "maxLength":
			f.MaxLength, err = parseInt(c)
		case "totalDigits":
			f.TotalDigits, err = parseInt(c)
		case "fractionDigits":
			f.FractionDigits, err = parseInt(c)
		case "pattern":
			var re *xsdregex.Regexp
			re, err = xsdregex.Compile(c.GetAttribute("value"))
			if err == nil {
				f.Patterns = append(f.Patterns, re)
			}
		case "enumeration":
			var v *xsdtypes.Value
			v, err = parseBound(c)
			if err == nil {
				f.Enumeration = append(f.Enumeration, *v)
			}
		case "minInclusive":
			f.MinInclusive, err = parseBound(c)
		case "maxInclusive":
			f.MaxInclusive, err = parseBound(c)
		case "minExclusive":
			f.MinExclusive, err = parseBound(c)
		case "maxExclusive":
			f.MaxExclusive, err = parseBound(c)
		case "whiteSpace":
			switch c.GetAttribute("value") {
			case "preserve":
				ws := xsdtypes.WSPreserve
				f.WhiteSpace = &ws
			case "replace":
				ws := xsdtypes.WSReplace
				f.WhiteSpace = &ws
			case "collapse":
				ws := xsdtypes.WSCollapse
				f.WhiteSpace = &ws
			default:
				err = errAt(c, "bad whiteSpace value %q", c.GetAttribute("value"))
			}
		case "simpleType", "attribute", "attributeGroup", "anyAttribute":
			// Inline base (handled by simpleBase) or attribute uses
			// (handled by simpleContent restriction).
		default:
			err = errAt(c, "unsupported facet")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// indexSubstitutionGroups builds the transitive head -> members index.
func (p *parser) indexSubstitutionGroups() {
	for _, decl := range p.schema.Elements {
		for head := decl.SubstitutionHead; head != nil; head = head.SubstitutionHead {
			p.schema.substitutionMembers[head.Name] = append(p.schema.substitutionMembers[head.Name], decl)
		}
	}
	// Deterministic order for code generation.
	for head, members := range p.schema.substitutionMembers {
		sortDecls(members)
		p.schema.substitutionMembers[head] = members
	}
}

func sortDecls(ds []*ElementDecl) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && lessQName(ds[j].Name, ds[j-1].Name); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func lessQName(a, b QName) bool {
	if a.Space != b.Space {
		return a.Space < b.Space
	}
	return a.Local < b.Local
}
