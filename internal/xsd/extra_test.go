package xsd

import (
	"strings"
	"testing"

	"repro/internal/contentmodel"
)

func TestImportWithLoader(t *testing.T) {
	main := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:other="urn:other">
  <xsd:import namespace="urn:other" schemaLocation="other.xsd"/>
  <xsd:element name="root" type="other:T"/>
</xsd:schema>`
	other := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    targetNamespace="urn:other">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	s, err := Parse([]byte(main), &ParseOptions{Loader: MapLoader{"other.xsd": []byte(other)}})
	if err != nil {
		t.Fatal(err)
	}
	root, ok := s.LookupElement(QName{Local: "root"})
	if !ok || root.Type.TypeName() != (QName{Space: "urn:other", Local: "T"}) {
		t.Errorf("imported type not linked: %+v", root)
	}
	// Import without schemaLocation is tolerated (components may come
	// from elsewhere) as long as nothing references them.
	benign := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:import namespace="urn:absent"/>
  <xsd:element name="r" type="xsd:string"/>
</xsd:schema>`
	if _, err := ParseString(benign, nil); err != nil {
		t.Errorf("location-less import: %v", err)
	}
}

func TestProhibitedAttributeInRestriction(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Base">
    <xsd:sequence/>
    <xsd:attribute name="keep" type="xsd:string"/>
    <xsd:attribute name="drop" type="xsd:string"/>
  </xsd:complexType>
  <xsd:complexType name="Narrow">
    <xsd:complexContent>
      <xsd:restriction base="Base">
        <xsd:sequence/>
        <xsd:attribute name="drop" use="prohibited"/>
      </xsd:restriction>
    </xsd:complexContent>
  </xsd:complexType>
</xsd:schema>`
	s, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	narrow := s.Types[QName{Local: "Narrow"}].(*ComplexType)
	if narrow.FindAttributeUse(QName{Local: "keep"}) == nil {
		t.Error("keep should be inherited")
	}
	if u := narrow.FindAttributeUse(QName{Local: "drop"}); u != nil {
		t.Errorf("drop should be prohibited, got %+v", u)
	}
}

func TestSkipUPACheckOption(t *testing.T) {
	bad := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T"><xsd:sequence>
    <xsd:element name="a" type="xsd:string" minOccurs="0"/>
    <xsd:element name="a" type="xsd:string"/>
  </xsd:sequence></xsd:complexType>
</xsd:schema>`
	if _, err := ParseString(bad, nil); err == nil {
		t.Fatal("UPA violation should fail by default")
	}
	if _, err := ParseString(bad, &ParseOptions{SkipUPACheck: true}); err != nil {
		t.Errorf("SkipUPACheck: %v", err)
	}
}

func TestNillableAndDefaults(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="a" type="xsd:int" nillable="true" default="5"/>
  <xsd:element name="b" type="xsd:string" fixed="F"/>
</xsd:schema>`
	s, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.LookupElement(QName{Local: "a"})
	if !a.Nillable || a.Default == nil || *a.Default != "5" {
		t.Errorf("a: %+v", a)
	}
	b, _ := s.LookupElement(QName{Local: "b"})
	if b.Fixed == nil || *b.Fixed != "F" {
		t.Errorf("b: %+v", b)
	}
}

func TestElementWithoutTypeIsAnyType(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="anything"/>
</xsd:schema>`
	s, err := ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.LookupElement(QName{Local: "anything"})
	if a.Type != Type(s.AnyType()) {
		t.Errorf("untyped element should get anyType, got %v", a.Type)
	}
}

func TestGlobalTypeNames(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="A"><xsd:restriction base="xsd:string"/></xsd:simpleType>
  <xsd:complexType name="B"><xsd:sequence/></xsd:complexType>
</xsd:schema>`
	s, _ := ParseString(src, nil)
	names := s.GlobalTypeNames()
	if len(names) != 2 {
		t.Errorf("GlobalTypeNames: %v", names)
	}
}

func TestMatcherCaching(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	s, _ := ParseString(src, nil)
	ct := s.Types[QName{Local: "T"}].(*ComplexType)
	m1 := ct.Matcher(s)
	m2 := ct.Matcher(s)
	if m1 != m2 {
		t.Error("matcher should be cached")
	}
	if _, err := m1.Match([]contentmodel.Symbol{{Local: "x"}}); err != nil {
		t.Errorf("cached matcher: %v", err)
	}
}

func TestGroupDefinitionCycleRejected(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:group name="G">
    <xsd:sequence><xsd:group ref="G"/></xsd:sequence>
  </xsd:group>
</xsd:schema>`
	_, err := ParseString(src, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("group cycle: %v", err)
	}
}

func TestChameleonInclude(t *testing.T) {
	main := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:t="urn:t" targetNamespace="urn:t">
  <xsd:include schemaLocation="parts.xsd"/>
  <xsd:element name="root" type="t:PartType"/>
</xsd:schema>`
	parts := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PartType">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	s, err := Parse([]byte(main), &ParseOptions{Loader: MapLoader{"parts.xsd": []byte(parts)}})
	if err != nil {
		t.Fatal(err)
	}
	// The chameleon component adopted the including namespace.
	if _, ok := s.Types[QName{Space: "urn:t", Local: "PartType"}]; !ok {
		t.Error("chameleon include did not adopt the target namespace")
	}
}

func TestSimpleContentOfComplexBaseWithElementContentFails(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Elems">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Bad">
    <xsd:simpleContent>
      <xsd:extension base="Elems"/>
    </xsd:simpleContent>
  </xsd:complexType>
</xsd:schema>`
	if _, err := ParseString(src, nil); err == nil {
		t.Error("simpleContent over element-content base should fail")
	}
}
