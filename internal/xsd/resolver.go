package xsd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/xmlparser"
)

// Resolver resolves xs:include / xs:import / xs:redefine schemaLocation
// references to schema documents. Unlike the simpler Loader, a Resolver
// sees the *referring* document's canonical key, so relative locations
// resolve the way authors expect ("../common/types.xsd" means relative to
// the file containing the reference, not to some global search path), and
// it returns a canonical key per document so that one file reached through
// two different relative spellings is loaded exactly once — which is also
// what makes reference cycles terminate.
type Resolver interface {
	// Resolve returns the canonical key of the document at location,
	// relative to the document with canonical key base ("" for the root
	// document), together with its bytes.
	Resolve(base, location string) (key string, src []byte, err error)
}

// NamespaceResolver resolves xs:import references that carry no
// schemaLocation: the import names only a namespace, and a catalog built
// from the schema directory supplies the document that declares it. A
// Resolver that also implements NamespaceResolver enables that lookup;
// without it, a location-less import keeps its historical meaning
// ("components expected elsewhere") and resolves nothing.
type NamespaceResolver interface {
	// ResolveNamespace returns the canonical key and bytes of the document
	// declaring namespace as its target namespace. A namespace the catalog
	// does not know is NOT an error: ok=false falls back to the
	// components-expected-elsewhere behavior.
	ResolveNamespace(namespace string) (key string, src []byte, ok bool, err error)
}

// DirResolver resolves schemaLocation references against the referring
// document's directory, confined to one root directory tree. Canonical
// keys are absolute cleaned file paths, so diamonds and cycles in the
// reference graph are detected no matter how each edge spells its path.
//
// References that would escape the root (via "..", absolute paths outside
// it, or symlink-free lexical tricks) are rejected: a schema directory
// served by the registry must not be able to read arbitrary files.
type DirResolver struct {
	root string

	// ReadFile loads the bytes of an already-confinement-checked absolute
	// path; os.ReadFile when nil. The registry injects a per-reload cache
	// here so a dependency shared by many schemas is read (and statted)
	// once per reload instead of once per dependent.
	ReadFile func(path string) ([]byte, error)

	// Catalog maps target namespaces to the absolute path of the schema
	// document declaring them, enabling schemaLocation-less xs:import.
	// Build one with BuildCatalog, or assemble it by hand. Nil disables
	// namespace resolution.
	Catalog map[string]string
}

// NewDirResolver creates a resolver confined to the directory tree rooted
// at root.
func NewDirResolver(root string) *DirResolver {
	return &DirResolver{root: root}
}

// Resolve implements Resolver.
func (d *DirResolver) Resolve(base, location string) (string, []byte, error) {
	if strings.Contains(location, "://") {
		return "", nil, fmt.Errorf("remote schemaLocation %q is not supported", location)
	}
	absRoot, err := filepath.Abs(d.root)
	if err != nil {
		return "", nil, err
	}
	baseDir := absRoot
	if base != "" {
		baseDir = filepath.Dir(base)
	}
	cand := location
	if !filepath.IsAbs(cand) {
		cand = filepath.Join(baseDir, cand)
	}
	cand = filepath.Clean(cand)
	rel, err := filepath.Rel(absRoot, cand)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", nil, fmt.Errorf("schemaLocation %q escapes the schema root %s", location, d.root)
	}
	read := d.ReadFile
	if read == nil {
		read = os.ReadFile
	}
	src, err := read(cand)
	if err != nil {
		return "", nil, err
	}
	return cand, src, nil
}

// ResolveNamespace implements NamespaceResolver over the Catalog field.
// The returned key is the catalog path, confined to the resolver's root
// like any other reference.
func (d *DirResolver) ResolveNamespace(namespace string) (string, []byte, bool, error) {
	path, ok := d.Catalog[namespace]
	if !ok {
		return "", nil, false, nil
	}
	key, src, err := d.Resolve("", path)
	if err != nil {
		return "", nil, true, fmt.Errorf("namespace catalog entry for %q: %w", namespace, err)
	}
	return key, src, true, nil
}

// BuildCatalog scans the directory tree rooted at root for *.xsd files
// and maps each target namespace to the file declaring it. Only the root
// element's targetNamespace attribute is read (a cheap token scan, not a
// full schema parse), so building the catalog over a large directory is
// one pass of opens, not compiles. When several files declare the same
// namespace the lexicographically smallest path wins, which keeps the
// catalog deterministic across reloads; no-namespace documents are not
// cataloged (an import cannot name them). readFile may be nil
// (os.ReadFile); the registry injects its per-reload cache.
func BuildCatalog(root string, readFile func(path string) ([]byte, error)) (map[string]string, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	catalog := map[string]string{}
	walkErr := filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".xsd") {
			return err
		}
		src, rerr := readFile(path)
		if rerr != nil {
			return nil // unreadable file: not cataloged, surfaced if referenced
		}
		tns, ok := sniffTargetNamespace(src)
		if !ok || tns == "" {
			return nil
		}
		if prev, taken := catalog[tns]; !taken || path < prev {
			catalog[tns] = path
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return catalog, nil
}

// sniffTargetNamespace tokenizes src just far enough to read the root
// element's targetNamespace attribute. ok is false when the document is
// not well-formed up to its root start tag or the root is not xs:schema.
func sniffTargetNamespace(src []byte) (string, bool) {
	d := xmlparser.NewDecoder(src, nil)
	for {
		tok, err := d.Next()
		if err != nil {
			return "", false
		}
		if tok.Kind != xmlparser.KindStartElement {
			continue
		}
		if tok.Name.Space != XSDNamespace || tok.Name.Local != "schema" {
			return "", false
		}
		for _, a := range tok.Attrs {
			if a.Name.Space == "" && a.Name.Local == "targetNamespace" {
				return a.Value, true
			}
		}
		return "", true
	}
}

// loaderResolver adapts the legacy location-keyed Loader to the Resolver
// interface: no relative resolution, the location string is the key.
type loaderResolver struct{ l Loader }

func (r loaderResolver) Resolve(_, location string) (string, []byte, error) {
	src, err := r.l.Load(location)
	return location, src, err
}

// ParseFile parses the schema document at path, following its
// xs:include / xs:import / xs:redefine references relative to each
// referring document. When opts carries no Resolver, references are
// confined to the document's own directory tree; pass a DirResolver
// rooted higher (e.g. at a schema-registry directory) to allow sibling
// directories. The resulting schema records the canonical paths of every
// document that contributed components (Schema.Sources), which is what
// dependency-closure invalidation in the registry is built on.
func ParseFile(path string, opts *ParseOptions) (*Schema, error) {
	o := ParseOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Resolver == nil {
		o.Resolver = NewDirResolver(filepath.Dir(path))
		o.Loader = nil
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	key, src, err := o.Resolver.Resolve("", abs)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	return parseRoot(src, o, key)
}
