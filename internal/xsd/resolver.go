package xsd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Resolver resolves xs:include / xs:import / xs:redefine schemaLocation
// references to schema documents. Unlike the simpler Loader, a Resolver
// sees the *referring* document's canonical key, so relative locations
// resolve the way authors expect ("../common/types.xsd" means relative to
// the file containing the reference, not to some global search path), and
// it returns a canonical key per document so that one file reached through
// two different relative spellings is loaded exactly once — which is also
// what makes reference cycles terminate.
type Resolver interface {
	// Resolve returns the canonical key of the document at location,
	// relative to the document with canonical key base ("" for the root
	// document), together with its bytes.
	Resolve(base, location string) (key string, src []byte, err error)
}

// DirResolver resolves schemaLocation references against the referring
// document's directory, confined to one root directory tree. Canonical
// keys are absolute cleaned file paths, so diamonds and cycles in the
// reference graph are detected no matter how each edge spells its path.
//
// References that would escape the root (via "..", absolute paths outside
// it, or symlink-free lexical tricks) are rejected: a schema directory
// served by the registry must not be able to read arbitrary files.
type DirResolver struct {
	root string

	// ReadFile loads the bytes of an already-confinement-checked absolute
	// path; os.ReadFile when nil. The registry injects a per-reload cache
	// here so a dependency shared by many schemas is read (and statted)
	// once per reload instead of once per dependent.
	ReadFile func(path string) ([]byte, error)
}

// NewDirResolver creates a resolver confined to the directory tree rooted
// at root.
func NewDirResolver(root string) *DirResolver {
	return &DirResolver{root: root}
}

// Resolve implements Resolver.
func (d *DirResolver) Resolve(base, location string) (string, []byte, error) {
	if strings.Contains(location, "://") {
		return "", nil, fmt.Errorf("remote schemaLocation %q is not supported", location)
	}
	absRoot, err := filepath.Abs(d.root)
	if err != nil {
		return "", nil, err
	}
	baseDir := absRoot
	if base != "" {
		baseDir = filepath.Dir(base)
	}
	cand := location
	if !filepath.IsAbs(cand) {
		cand = filepath.Join(baseDir, cand)
	}
	cand = filepath.Clean(cand)
	rel, err := filepath.Rel(absRoot, cand)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", nil, fmt.Errorf("schemaLocation %q escapes the schema root %s", location, d.root)
	}
	read := d.ReadFile
	if read == nil {
		read = os.ReadFile
	}
	src, err := read(cand)
	if err != nil {
		return "", nil, err
	}
	return cand, src, nil
}

// loaderResolver adapts the legacy location-keyed Loader to the Resolver
// interface: no relative resolution, the location string is the key.
type loaderResolver struct{ l Loader }

func (r loaderResolver) Resolve(_, location string) (string, []byte, error) {
	src, err := r.l.Load(location)
	return location, src, err
}

// ParseFile parses the schema document at path, following its
// xs:include / xs:import / xs:redefine references relative to each
// referring document. When opts carries no Resolver, references are
// confined to the document's own directory tree; pass a DirResolver
// rooted higher (e.g. at a schema-registry directory) to allow sibling
// directories. The resulting schema records the canonical paths of every
// document that contributed components (Schema.Sources), which is what
// dependency-closure invalidation in the registry is built on.
func ParseFile(path string, opts *ParseOptions) (*Schema, error) {
	o := ParseOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Resolver == nil {
		o.Resolver = NewDirResolver(filepath.Dir(path))
		o.Loader = nil
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	key, src, err := o.Resolver.Resolve("", abs)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	return parseRoot(src, o, key)
}
