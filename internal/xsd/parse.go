package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xmlparser"
)

// Loader resolves include/import schemaLocation references.
type Loader interface {
	// Load returns the bytes of the schema document at location.
	Load(location string) ([]byte, error)
}

// MapLoader serves schema documents from an in-memory map.
type MapLoader map[string][]byte

// Load implements Loader.
func (m MapLoader) Load(location string) ([]byte, error) {
	b, ok := m[location]
	if !ok {
		return nil, fmt.Errorf("xsd: no schema document at %q", location)
	}
	return b, nil
}

// ParseOptions configures schema parsing.
type ParseOptions struct {
	// Loader resolves xs:include and xs:import schemaLocation values.
	// Without a loader (or Resolver), include/import with a location is an
	// error.
	Loader Loader
	// Resolver resolves schemaLocation values with referring-document
	// context and canonical keys (multi-file directory trees). When set it
	// takes precedence over Loader.
	Resolver Resolver
	// SkipUPACheck disables the Unique Particle Attribution check.
	SkipUPACheck bool
	// ParseDoc, when set, supplies the DOM for every schema document the
	// parse touches (the root and every include/import/redefine target)
	// in place of dom.Parse. A registry reload installs a content-hash
	// keyed cache here, so fifty schemas importing one shared library
	// parse its bytes once per reload instead of once per dependent.
	//
	// Documents returned here may be shared between concurrent parses:
	// the parser only reads them, and the supplier must neither mutate
	// nor Release a document while any parse that received it is alive.
	ParseDoc func(src []byte) (*dom.Document, error)
}

// parseDoc builds the DOM for one schema document through the ParseDoc
// hook when the options carry one.
func (o *ParseOptions) parseDoc(src []byte) (*dom.Document, error) {
	if o.ParseDoc != nil {
		return o.ParseDoc(src)
	}
	return dom.Parse(src)
}

// resolver returns the effective Resolver (the Loader adapted, if that is
// all the options carry), or nil.
func (o *ParseOptions) resolver() Resolver {
	if o.Resolver != nil {
		return o.Resolver
	}
	if o.Loader != nil {
		return loaderResolver{o.Loader}
	}
	return nil
}

// Parse parses a schema document into a resolved Schema.
func Parse(src []byte, opts *ParseOptions) (*Schema, error) {
	o := ParseOptions{}
	if opts != nil {
		o = *opts
	}
	return parseRoot(src, o, "")
}

// parseRoot parses the root schema document (canonical key docKey, "" when
// the source did not come from a resolver) and resolves the full component
// graph reachable from it.
func parseRoot(src []byte, o ParseOptions, docKey string) (*Schema, error) {
	doc, err := o.parseDoc(src)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.NamespaceURI() != XSDNamespace || root.LocalName() != "schema" {
		return nil, fmt.Errorf("xsd: document root is not xsd:schema")
	}
	p := &parser{
		opts:     o,
		resolver: o.resolver(),
		schema:   NewSchema(root.GetAttribute("targetNamespace")),
		globals:  map[globalKey]*dom.Element{},
		building: map[globalKey]bool{},
		loaded:   map[string]bool{},
	}
	if docKey != "" {
		p.loaded[docKey] = true
		p.schema.sources = append(p.schema.sources, docKey)
	}
	p.schema.QualifiedLocal = root.GetAttribute("elementFormDefault") == "qualified"
	p.schema.QualifiedLocalAttr = root.GetAttribute("attributeFormDefault") == "qualified"
	if err := p.collect(root, p.schema.TargetNamespace, docKey); err != nil {
		return nil, err
	}
	if err := p.buildAll(); err != nil {
		return nil, err
	}
	if err := p.schema.checkDerivationCycles(); err != nil {
		return nil, err
	}
	p.indexSubstitutionGroups()
	if !o.SkipUPACheck {
		if err := p.schema.CheckAllUPA(); err != nil {
			return nil, err
		}
	}
	return p.schema, nil
}

// ParseSource parses a schema document that already has a canonical key —
// an in-memory document that participates in reference resolution as if it
// lived at key (relative schemaLocations resolve against it, and it is
// recorded in Schema.Sources). Callers embedding schemas inside larger
// documents (WSDL <types>) use this to give each embedded schema a stable
// identity without a backing file.
func ParseSource(key string, src []byte, opts *ParseOptions) (*Schema, error) {
	o := ParseOptions{}
	if opts != nil {
		o = *opts
	}
	return parseRoot(src, o, key)
}

// ParseString parses a schema from a string.
func ParseString(src string, opts *ParseOptions) (*Schema, error) {
	return Parse([]byte(src), opts)
}

// MustParse parses a schema known to be valid.
func MustParse(src string) *Schema {
	s, err := ParseString(src, nil)
	if err != nil {
		panic(err)
	}
	return s
}

// componentKind distinguishes the global symbol spaces.
type componentKind int

const (
	kindElement componentKind = iota
	kindType
	kindGroup
	kindAttributeGroup
	kindAttribute
)

type globalKey struct {
	kind componentKind
	name QName
}

// parser carries parse state.
type parser struct {
	opts     ParseOptions
	resolver Resolver
	schema   *Schema
	// globals maps each declared global component to its DOM element;
	// components build lazily so forward references work.
	globals map[globalKey]*dom.Element
	// elemTNS records the target namespace of the schema document each
	// global was declared in (include/import may differ).
	elemTNS map[*dom.Element]string
	// building detects illegal definition cycles.
	building map[globalKey]bool
	loaded   map[string]bool
}

// errAt formats an error with the offending schema construct.
func errAt(el *dom.Element, format string, args ...any) error {
	return fmt.Errorf("xsd: <%s>: %s", el.TagName(), fmt.Sprintf(format, args...))
}

// collect registers all global components of a schema document. docKey is
// the document's canonical key under the resolver ("" when the document
// was parsed from bytes); relative schemaLocation values resolve against
// it.
func (p *parser) collect(root *dom.Element, tns, docKey string) error {
	if p.elemTNS == nil {
		p.elemTNS = map[*dom.Element]string{}
	}
	for _, el := range root.ChildElements() {
		if el.NamespaceURI() != XSDNamespace {
			return errAt(el, "foreign top-level element")
		}
		switch el.LocalName() {
		case "annotation", "notation":
			continue
		case "include":
			if _, err := p.loadRef(el, tns, docKey, refInclude); err != nil {
				return err
			}
		case "import":
			if err := p.loadImport(el, tns, docKey); err != nil {
				return err
			}
		case "redefine":
			if err := p.loadRedefine(el, tns, docKey); err != nil {
				return err
			}
		case "element", "complexType", "simpleType", "group", "attributeGroup", "attribute":
			name := el.GetAttribute("name")
			if name == "" {
				return errAt(el, "top-level component requires a name")
			}
			key := globalKey{kind: kindOf(el.LocalName()), name: QName{Space: tns, Local: name}}
			if _, dup := p.globals[key]; dup {
				return errAt(el, "duplicate global %s %q", el.LocalName(), name)
			}
			p.globals[key] = el
			p.elemTNS[el] = tns
		default:
			return errAt(el, "unsupported top-level construct")
		}
	}
	return nil
}

// kindOf maps a top-level construct name to its symbol space.
func kindOf(local string) componentKind {
	return map[string]componentKind{
		"element": kindElement, "complexType": kindType, "simpleType": kindType,
		"group": kindGroup, "attributeGroup": kindAttributeGroup, "attribute": kindAttribute,
	}[local]
}

// refKind distinguishes the three composition constructs, which share the
// document-loading mechanics but differ in namespace rules and in what
// happens to the loaded components.
type refKind int

const (
	refInclude refKind = iota
	refImport
	refRedefine
)

// loadImport handles xs:import: components of a *different* namespace.
func (p *parser) loadImport(el *dom.Element, tns, docKey string) error {
	nsAttr := el.GetAttribute("namespace")
	if nsAttr == tns && nsAttr != "" {
		return errAt(el, "import of the importing schema's own target namespace %q (use include)", nsAttr)
	}
	_, err := p.loadRef(el, nsAttr, docKey, refImport)
	return err
}

// loadRedefine handles xs:redefine: the referenced same-namespace document
// is composed exactly like an include, then the redefine's own child
// definitions *replace* the loaded ones of the same name.
//
// Supported semantics are replacement: a redefining type may not use
// itself as its own derivation base (the W3C "pervasive" self-referential
// form); such a redefinition reports a definition cycle. Replacement
// covers the common vocabulary-pinning use and keeps the component graph
// acyclic.
func (p *parser) loadRedefine(el *dom.Element, tns, docKey string) error {
	if _, err := p.loadRef(el, tns, docKey, refRedefine); err != nil {
		return err
	}
	for _, c := range schemaChildren(el) {
		switch c.LocalName() {
		case "complexType", "simpleType", "group", "attributeGroup":
			name := c.GetAttribute("name")
			if name == "" {
				return errAt(c, "redefined component requires a name")
			}
			key := globalKey{kind: kindOf(c.LocalName()), name: QName{Space: tns, Local: name}}
			if _, ok := p.globals[key]; !ok {
				return errAt(c, "redefined %s %q is not declared by the redefined schema", c.LocalName(), name)
			}
			p.globals[key] = c // replace the loaded definition
			p.elemTNS[c] = tns
		default:
			return errAt(c, "unsupported construct inside redefine")
		}
	}
	return nil
}

// loadRef loads and collects the document referenced by an
// include/import/redefine element. It returns whether a document was
// actually loaded (false for a location-less import, or a reference
// already composed through another path — canonical keys make the same
// file reachable through different relative spellings load once, which is
// also what terminates reference cycles).
func (p *parser) loadRef(el *dom.Element, tns, docKey string, kind refKind) (bool, error) {
	loc := el.GetAttribute("schemaLocation")
	var key string
	var src []byte
	if loc == "" {
		if kind != refImport {
			return false, errAt(el, "%s requires schemaLocation", el.LocalName())
		}
		// Import without location: a namespace catalog may know the
		// document; otherwise components are expected elsewhere.
		nr, ok := p.resolver.(NamespaceResolver)
		if !ok {
			return false, nil
		}
		k, s, found, err := nr.ResolveNamespace(tns)
		if err != nil {
			return false, errAt(el, "resolving namespace %q: %v", tns, err)
		}
		if !found {
			return false, nil
		}
		key, src = k, s
	} else {
		if p.resolver == nil {
			return false, errAt(el, "schemaLocation %q cannot be resolved without a Loader or Resolver", loc)
		}
		k, s, err := p.resolver.Resolve(docKey, loc)
		if err != nil {
			return false, errAt(el, "loading %q: %v", loc, err)
		}
		key, src = k, s
	}
	if p.loaded[key] {
		return false, nil
	}
	p.loaded[key] = true
	p.schema.sources = append(p.schema.sources, key)
	ref := loc
	if ref == "" {
		ref = "namespace " + tns
	}
	doc, err := p.opts.parseDoc(src)
	if err != nil {
		return false, errAt(el, "parsing %q: %v", ref, err)
	}
	sub := doc.DocumentElement()
	if sub == nil || sub.NamespaceURI() != XSDNamespace || sub.LocalName() != "schema" {
		return false, errAt(el, "%q is not a schema document", ref)
	}
	subTNS := sub.GetAttribute("targetNamespace")
	switch kind {
	case refInclude, refRedefine:
		// Chameleon include: a no-namespace document adopts ours.
		if subTNS == "" {
			subTNS = tns
		} else if subTNS != tns {
			return false, errAt(el, "%s schema has target namespace %q, want %q", el.LocalName(), subTNS, tns)
		}
	case refImport:
		// Namespace coherence: the document must declare the namespace the
		// import promised (or none, when the import named none).
		if subTNS != tns {
			return false, errAt(el, "imported schema has target namespace %q, import declares %q", subTNS, tns)
		}
	}
	return true, p.collect(sub, subTNS, key)
}

// buildAll forces construction of every registered global component.
func (p *parser) buildAll() error {
	// Deterministic order: elements, then types, groups, attribute
	// groups, attributes; within a kind, document registration order is
	// map-random, so sort by name.
	var keys []globalKey
	for k := range p.globals {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		var err error
		switch k.kind {
		case kindType:
			_, err = p.buildType(k.name)
		case kindElement:
			_, err = p.buildGlobalElement(k.name)
		case kindGroup:
			_, err = p.buildGroup(k.name)
		case kindAttributeGroup:
			_, err = p.buildAttributeGroup(k.name)
		case kindAttribute:
			_, err = p.buildGlobalAttribute(k.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func sortKeys(keys []globalKey) {
	less := func(a, b globalKey) bool {
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.name.Space != b.name.Space {
			return a.name.Space < b.name.Space
		}
		return a.name.Local < b.name.Local
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// tnsOf returns the target namespace governing a DOM node.
func (p *parser) tnsOf(el *dom.Element) string {
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		if e, ok := n.(*dom.Element); ok {
			if tns, ok := p.elemTNS[e]; ok {
				return tns
			}
		}
	}
	return p.schema.TargetNamespace
}

// formDefaultOf reports whether locals declared in el's schema document
// default to qualified names. Form defaults are per *document*, not per
// schema: an imported document's elementFormDefault governs its own
// declarations no matter what the importing root says, so this walks up
// to the owning <xs:schema> root instead of reading the root document's
// flag. attr selects elementFormDefault or attributeFormDefault.
func (p *parser) formDefaultOf(el *dom.Element, attr string) bool {
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		if e, ok := n.(*dom.Element); ok &&
			e.NamespaceURI() == XSDNamespace && e.LocalName() == "schema" {
			return e.GetAttribute(attr) == "qualified"
		}
	}
	if attr == "attributeFormDefault" {
		return p.schema.QualifiedLocalAttr
	}
	return p.schema.QualifiedLocal
}

// resolveQName resolves a lexical QName against the namespace declarations
// in scope at el.
func resolveQName(el *dom.Element, lexical string) (QName, error) {
	lexical = strings.TrimSpace(lexical)
	prefix, local := "", lexical
	if i := strings.IndexByte(lexical, ':'); i >= 0 {
		prefix, local = lexical[:i], lexical[i+1:]
	}
	if local == "" || !xmlparser.IsNCName(local) || (prefix != "" && !xmlparser.IsNCName(prefix)) {
		return QName{}, fmt.Errorf("bad QName %q", lexical)
	}
	if prefix == "xml" {
		return QName{Space: xmlparser.XMLNamespace, Local: local}, nil
	}
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		e, ok := n.(*dom.Element)
		if !ok {
			continue
		}
		if prefix == "" {
			// Default namespace: the xmlns attribute itself.
			if e.HasAttributeNS(xmlparser.XMLNSNamespace, "xmlns") {
				return QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, "xmlns"), Local: local}, nil
			}
		} else if e.HasAttributeNS(xmlparser.XMLNSNamespace, prefix) {
			return QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, prefix), Local: local}, nil
		}
	}
	if prefix != "" {
		return QName{}, fmt.Errorf("undeclared namespace prefix %q in %q", prefix, lexical)
	}
	return QName{Local: local}, nil
}

// childElements returns the XSD-namespace children, skipping annotations.
func schemaChildren(el *dom.Element) []*dom.Element {
	var out []*dom.Element
	for _, c := range el.ChildElements() {
		if c.NamespaceURI() == XSDNamespace && c.LocalName() != "annotation" {
			out = append(out, c)
		}
	}
	return out
}

// occurs parses minOccurs/maxOccurs.
func occurs(el *dom.Element) (int, int, error) {
	min, max := 1, 1
	if v := el.GetAttribute("minOccurs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, errAt(el, "bad minOccurs %q", v)
		}
		min = n
	}
	if v := el.GetAttribute("maxOccurs"); v != "" {
		if v == "unbounded" {
			max = Unbounded
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, 0, errAt(el, "bad maxOccurs %q", v)
			}
			max = n
		}
	}
	if max != Unbounded && max < min {
		return 0, 0, errAt(el, "maxOccurs %d is below minOccurs %d", max, min)
	}
	return min, max, nil
}

// buildType resolves a named type (built-in or global declaration).
func (p *parser) buildType(name QName) (Type, error) {
	if t, ok := p.schema.Types[name]; ok {
		return t, nil
	}
	key := globalKey{kind: kindType, name: name}
	el, ok := p.globals[key]
	if !ok {
		return nil, fmt.Errorf("xsd: reference to undeclared type %s", name)
	}
	if p.building[key] {
		return nil, fmt.Errorf("xsd: type %s is part of a definition cycle", name)
	}
	p.building[key] = true
	defer delete(p.building, key)
	var t Type
	var err error
	if el.LocalName() == "simpleType" {
		t, err = p.parseSimpleType(el, name, name.Local)
	} else {
		t, err = p.parseComplexType(el, name, name.Local)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// buildGlobalElement resolves a global element declaration.
func (p *parser) buildGlobalElement(name QName) (*ElementDecl, error) {
	if e, ok := p.schema.Elements[name]; ok {
		return e, nil
	}
	key := globalKey{kind: kindElement, name: name}
	el, ok := p.globals[key]
	if !ok {
		return nil, fmt.Errorf("xsd: reference to undeclared element %s", name)
	}
	decl := &ElementDecl{Name: name, Global: true}
	p.schema.Elements[name] = decl // register shell first: recursion is legal
	if err := p.fillElement(el, decl); err != nil {
		return nil, err
	}
	return decl, nil
}

// fillElement populates an element declaration from its DOM node.
func (p *parser) fillElement(el *dom.Element, decl *ElementDecl) error {
	decl.Abstract = el.GetAttribute("abstract") == "true"
	decl.Nillable = el.GetAttribute("nillable") == "true"
	if v := el.GetAttribute("default"); el.HasAttribute("default") {
		decl.Default = &v
	}
	if v := el.GetAttribute("fixed"); el.HasAttribute("fixed") {
		decl.Fixed = &v
	}
	if sg := el.GetAttribute("substitutionGroup"); sg != "" {
		q, err := resolveQName(el, sg)
		if err != nil {
			return errAt(el, "%v", err)
		}
		head, err := p.buildGlobalElement(q)
		if err != nil {
			return err
		}
		decl.SubstitutionHead = head
	}
	// Identity constraints (extension beyond the paper's scope).
	for _, c := range schemaChildren(el) {
		switch c.LocalName() {
		case "unique", "key", "keyref":
			ic, err := p.parseIdentityConstraint(c)
			if err != nil {
				return err
			}
			decl.Constraints = append(decl.Constraints, ic)
		}
	}
	// Type: @type, inline complexType/simpleType, or the head's type, or
	// anyType.
	if tn := el.GetAttribute("type"); tn != "" {
		q, err := resolveQName(el, tn)
		if err != nil {
			return errAt(el, "%v", err)
		}
		t, err := p.buildType(q)
		if err != nil {
			return err
		}
		decl.Type = t
		return nil
	}
	for _, c := range schemaChildren(el) {
		switch c.LocalName() {
		case "complexType":
			t, err := p.parseComplexType(c, QName{}, decl.Name.Local)
			if err != nil {
				return err
			}
			decl.Type = t
			return nil
		case "simpleType":
			t, err := p.parseSimpleType(c, QName{}, decl.Name.Local)
			if err != nil {
				return err
			}
			decl.Type = t
			return nil
		}
	}
	if decl.SubstitutionHead != nil {
		decl.Type = decl.SubstitutionHead.Type
		return nil
	}
	decl.Type = p.schema.AnyType()
	return nil
}

// parseIdentityConstraint parses xs:unique / xs:key / xs:keyref.
func (p *parser) parseIdentityConstraint(el *dom.Element) (*IdentityConstraint, error) {
	ic := &IdentityConstraint{}
	switch el.LocalName() {
	case "key":
		ic.Kind = ConstraintKey
	case "keyref":
		ic.Kind = ConstraintKeyref
	default:
		ic.Kind = ConstraintUnique
	}
	name := el.GetAttribute("name")
	if name == "" {
		return nil, errAt(el, "identity constraint requires a name")
	}
	ic.Name = QName{Space: p.tnsOf(el), Local: name}
	if ic.Kind == ConstraintKeyref {
		refer := el.GetAttribute("refer")
		if refer == "" {
			return nil, errAt(el, "keyref requires refer")
		}
		q, err := resolveQName(el, refer)
		if err != nil {
			return nil, errAt(el, "%v", err)
		}
		ic.Refer = q
	}
	for _, c := range schemaChildren(el) {
		switch c.LocalName() {
		case "selector":
			ic.Selector = c.GetAttribute("xpath")
		case "field":
			ic.Fields = append(ic.Fields, c.GetAttribute("xpath"))
		}
	}
	if ic.Selector == "" || len(ic.Fields) == 0 {
		return nil, errAt(el, "identity constraint %q requires a selector and at least one field", name)
	}
	return ic, nil
}

// buildGroup resolves a named model group definition.
func (p *parser) buildGroup(name QName) (*ModelGroupDef, error) {
	if g, ok := p.schema.Groups[name]; ok {
		return g, nil
	}
	key := globalKey{kind: kindGroup, name: name}
	el, ok := p.globals[key]
	if !ok {
		return nil, fmt.Errorf("xsd: reference to undeclared group %s", name)
	}
	if p.building[key] {
		return nil, fmt.Errorf("xsd: group %s is part of a definition cycle", name)
	}
	p.building[key] = true
	defer delete(p.building, key)
	def := &ModelGroupDef{Name: name}
	kids := schemaChildren(el)
	if len(kids) != 1 {
		return nil, errAt(el, "group definition must contain exactly one compositor")
	}
	particle, err := p.parseParticle(kids[0])
	if err != nil {
		return nil, err
	}
	if particle.Group != nil {
		particle.Group.DefName = name
	}
	def.Particle = particle
	p.schema.Groups[name] = def
	return def, nil
}

// buildAttributeGroup resolves a named attribute group.
func (p *parser) buildAttributeGroup(name QName) (*AttributeGroupDef, error) {
	if g, ok := p.schema.AttributeGroups[name]; ok {
		return g, nil
	}
	key := globalKey{kind: kindAttributeGroup, name: name}
	el, ok := p.globals[key]
	if !ok {
		return nil, fmt.Errorf("xsd: reference to undeclared attributeGroup %s", name)
	}
	if p.building[key] {
		return nil, fmt.Errorf("xsd: attributeGroup %s is part of a definition cycle", name)
	}
	p.building[key] = true
	defer delete(p.building, key)
	def := &AttributeGroupDef{Name: name}
	uses, wild, err := p.parseAttributeUses(el)
	if err != nil {
		return nil, err
	}
	def.AttributeUses, def.AttrWildcard = uses, wild
	p.schema.AttributeGroups[name] = def
	return def, nil
}

// buildGlobalAttribute resolves a global attribute declaration.
func (p *parser) buildGlobalAttribute(name QName) (*AttributeDecl, error) {
	if a, ok := p.schema.Attributes[name]; ok {
		return a, nil
	}
	key := globalKey{kind: kindAttribute, name: name}
	el, ok := p.globals[key]
	if !ok {
		return nil, fmt.Errorf("xsd: reference to undeclared attribute %s", name)
	}
	decl := &AttributeDecl{Name: name}
	st, err := p.attributeType(el, name.Local)
	if err != nil {
		return nil, err
	}
	decl.Type = st
	p.schema.Attributes[name] = decl
	return decl, nil
}

// attributeType determines an attribute's simple type.
func (p *parser) attributeType(el *dom.Element, context string) (*SimpleType, error) {
	if tn := el.GetAttribute("type"); tn != "" {
		q, err := resolveQName(el, tn)
		if err != nil {
			return nil, errAt(el, "%v", err)
		}
		t, err := p.buildType(q)
		if err != nil {
			return nil, err
		}
		st, ok := t.(*SimpleType)
		if !ok {
			return nil, errAt(el, "attribute type %s is not a simple type", q)
		}
		return st, nil
	}
	for _, c := range schemaChildren(el) {
		if c.LocalName() == "simpleType" {
			return p.parseSimpleType(c, QName{}, context)
		}
	}
	return p.schema.SimpleTypeOf("anySimpleType"), nil
}

// parseParticle parses element | group(ref) | choice | sequence | all | any.
func (p *parser) parseParticle(el *dom.Element) (*Particle, error) {
	min, max, err := occurs(el)
	if err != nil {
		return nil, err
	}
	pt := &Particle{Min: min, Max: max}
	switch el.LocalName() {
	case "element":
		if ref := el.GetAttribute("ref"); ref != "" {
			q, err := resolveQName(el, ref)
			if err != nil {
				return nil, errAt(el, "%v", err)
			}
			decl, err := p.buildGlobalElement(q)
			if err != nil {
				return nil, err
			}
			pt.Element = decl
			return pt, nil
		}
		name := el.GetAttribute("name")
		if name == "" {
			return nil, errAt(el, "local element requires name or ref")
		}
		space := ""
		qualified := p.formDefaultOf(el, "elementFormDefault")
		if form := el.GetAttribute("form"); form != "" {
			qualified = form == "qualified"
		}
		if qualified {
			space = p.tnsOf(el)
		}
		decl := &ElementDecl{Name: QName{Space: space, Local: name}}
		if err := p.fillElement(el, decl); err != nil {
			return nil, err
		}
		pt.Element = decl
		return pt, nil
	case "group":
		ref := el.GetAttribute("ref")
		if ref == "" {
			return nil, errAt(el, "group particle requires ref")
		}
		q, err := resolveQName(el, ref)
		if err != nil {
			return nil, errAt(el, "%v", err)
		}
		def, err := p.buildGroup(q)
		if err != nil {
			return nil, err
		}
		// Splice the definition's particle under this particle's
		// occurrence bounds, keeping the explicit name.
		inner := def.Particle
		if inner.Group != nil {
			pt.Group = inner.Group
		} else {
			pt.Group = &ModelGroup{Kind: Sequence, Particles: []*Particle{inner}, DefName: q}
		}
		return pt, nil
	case "sequence", "choice", "all":
		kind := map[string]GroupKind{"sequence": Sequence, "choice": Choice, "all": All}[el.LocalName()]
		g := &ModelGroup{Kind: kind}
		for _, c := range schemaChildren(el) {
			cp, err := p.parseParticle(c)
			if err != nil {
				return nil, err
			}
			g.Particles = append(g.Particles, cp)
		}
		pt.Group = g
		return pt, nil
	case "any":
		w, err := parseWildcard(el, p.tnsOf(el))
		if err != nil {
			return nil, err
		}
		pt.Wildcard = w
		return pt, nil
	default:
		return nil, errAt(el, "unexpected particle")
	}
}

// parseWildcard parses xs:any / xs:anyAttribute namespace constraints.
func parseWildcard(el *dom.Element, tns string) (*contentmodel.Wildcard, error) {
	ns := el.GetAttribute("namespace")
	w := &contentmodel.Wildcard{TargetNS: tns}
	switch ns {
	case "", "##any":
		w.Kind = contentmodel.WildAny
	case "##other":
		w.Kind = contentmodel.WildOther
	default:
		w.Kind = contentmodel.WildList
		for _, part := range strings.Fields(ns) {
			switch part {
			case "##local":
				w.Namespaces = append(w.Namespaces, "")
			case "##targetNamespace":
				w.Namespaces = append(w.Namespaces, tns)
			default:
				w.Namespaces = append(w.Namespaces, part)
			}
		}
	}
	return w, nil
}
