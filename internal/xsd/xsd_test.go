package xsd

import (
	"strings"
	"testing"

	"repro/internal/contentmodel"
	"repro/internal/schemas"
)

func parseSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := ParseString(src, nil)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return s
}

// TestFig2_3PurchaseOrderSchema parses the paper's Figures 2/3 schema and
// checks every component the paper names.
func TestFig2_3PurchaseOrderSchema(t *testing.T) {
	s := parseSchema(t, schemas.PurchaseOrderXSD)

	po, ok := s.LookupElement(QName{Local: "purchaseOrder"})
	if !ok {
		t.Fatal("purchaseOrder element missing")
	}
	pot, ok := po.Type.(*ComplexType)
	if !ok || pot.Name.Local != "PurchaseOrderType" {
		t.Fatalf("purchaseOrder type: %+v", po.Type)
	}

	comment, ok := s.LookupElement(QName{Local: "comment"})
	if !ok {
		t.Fatal("comment element missing")
	}
	if st, ok := comment.Type.(*SimpleType); !ok || st.Builtin == nil || st.Builtin.Name != "string" {
		t.Errorf("comment should be xsd:string, got %v", comment.Type)
	}

	// PurchaseOrderType: sequence of shipTo, billTo, comment?, items +
	// orderDate attribute.
	if pot.Kind != ContentElementOnly {
		t.Errorf("PurchaseOrderType content kind: %v", pot.Kind)
	}
	seq := pot.Particle.Group
	if seq == nil || seq.Kind != Sequence || len(seq.Particles) != 4 {
		t.Fatalf("PurchaseOrderType particle: %v", pot.Particle)
	}
	names := []string{"shipTo", "billTo", "comment", "items"}
	for i, want := range names {
		el := seq.Particles[i].Element
		if el == nil || el.Name.Local != want {
			t.Errorf("sequence member %d: got %+v, want %s", i, el, want)
		}
	}
	if seq.Particles[2].Min != 0 || seq.Particles[2].Max != 1 {
		t.Errorf("comment occurrence: %d..%d", seq.Particles[2].Min, seq.Particles[2].Max)
	}
	if u := pot.FindAttributeUse(QName{Local: "orderDate"}); u == nil {
		t.Error("orderDate attribute missing")
	} else if u.Decl.Type.PrimitiveBuiltin().Name != "date" {
		t.Errorf("orderDate type: %v", u.Decl.Type)
	}

	// USAddress: 5-element sequence + fixed country attribute.
	usa := s.Types[QName{Local: "USAddress"}].(*ComplexType)
	if len(usa.Particle.Group.Particles) != 5 {
		t.Errorf("USAddress members: %d", len(usa.Particle.Group.Particles))
	}
	country := usa.FindAttributeUse(QName{Local: "country"})
	if country == nil || country.Fixed == nil || *country.Fixed != "US" {
		t.Errorf("country attribute: %+v", country)
	}

	// Items: item* with an anonymous complex type carrying partNum:SKU.
	items := s.Types[QName{Local: "Items"}].(*ComplexType)
	item := items.Particle.Group.Particles[0]
	if item.Min != 0 || item.Max != Unbounded {
		t.Errorf("item occurrence: %d..%d", item.Min, item.Max)
	}
	itemType := item.Element.Type.(*ComplexType)
	if !itemType.Name.IsZero() {
		t.Errorf("item type should be anonymous, got %v", itemType.Name)
	}
	partNum := itemType.FindAttributeUse(QName{Local: "partNum"})
	if partNum == nil || !partNum.Required {
		t.Fatalf("partNum: %+v", partNum)
	}
	if partNum.Decl.Type.Name.Local != "SKU" {
		t.Errorf("partNum type: %v", partNum.Decl.Type.Name)
	}

	// The anonymous quantity restriction: positiveInteger,
	// maxExclusive 100.
	quantity := itemType.Particle.Group.Particles[1].Element
	qt := quantity.Type.(*SimpleType)
	if qt.Name.Local != "" || qt.Base.Builtin.Name != "positiveInteger" {
		t.Errorf("quantity type: %+v", qt)
	}
	if qt.Facets.MaxExclusive == nil {
		t.Fatal("quantity maxExclusive missing")
	}
	if err := qt.Validate("99"); err != nil {
		t.Errorf("quantity 99: %v", err)
	}
	if qt.Validate("100") == nil {
		t.Error("quantity 100 should fail maxExclusive")
	}
	if qt.Validate("0") == nil {
		t.Error("quantity 0 should fail positiveInteger")
	}

	// SKU pattern.
	sku := s.Types[QName{Local: "SKU"}].(*SimpleType)
	if err := sku.Validate("926-AA"); err != nil {
		t.Errorf("SKU 926-AA: %v", err)
	}
	if sku.Validate("926-aa") == nil {
		t.Error("SKU 926-aa should fail the pattern")
	}
}

func TestContentModelMatching(t *testing.T) {
	s := parseSchema(t, schemas.PurchaseOrderXSD)
	pot := s.Types[QName{Local: "PurchaseOrderType"}].(*ComplexType)
	m := pot.Matcher(s)
	ok := func(names ...string) bool {
		var in []contentmodel.Symbol
		for _, n := range names {
			in = append(in, contentmodel.Symbol{Local: n})
		}
		_, err := m.Match(in)
		return err == nil
	}
	if !ok("shipTo", "billTo", "comment", "items") {
		t.Error("full sequence should match")
	}
	if !ok("shipTo", "billTo", "items") {
		t.Error("optional comment may be absent")
	}
	if ok("billTo", "shipTo", "items") {
		t.Error("wrong order should fail")
	}
	if ok("shipTo", "billTo", "items", "items") {
		t.Error("duplicate items should fail")
	}
}

func TestTypeExtension(t *testing.T) {
	s := parseSchema(t, schemas.AddressDerivationXSD)
	addr := s.Types[QName{Local: "Address"}].(*ComplexType)
	us := s.Types[QName{Local: "USAddress"}].(*ComplexType)
	if us.Base != Type(addr) || us.DerivedBy != DeriveExtension {
		t.Fatalf("USAddress derivation: base=%v by=%v", us.Base, us.DerivedBy)
	}
	if !us.DerivesFrom(addr) {
		t.Error("DerivesFrom failed")
	}
	// Effective content: name, street, city (inherited) + state, zip.
	m := us.Matcher(s)
	var in []contentmodel.Symbol
	for _, n := range []string{"name", "street", "city", "state", "zip"} {
		in = append(in, contentmodel.Symbol{Local: n})
	}
	if _, err := m.Match(in); err != nil {
		t.Errorf("extended content: %v", err)
	}
	if _, err := m.Match(in[:3]); err == nil {
		t.Error("extension members are required")
	}
}

func TestSubstitutionGroups(t *testing.T) {
	s := parseSchema(t, schemas.AddressDerivationXSD)
	members := s.SubstitutionMembers(QName{Local: "comment"})
	if len(members) != 2 {
		t.Fatalf("comment substitution members: %d", len(members))
	}
	got := []string{members[0].Name.Local, members[1].Name.Local}
	if got[0] != "customerComment" || got[1] != "shipComment" {
		t.Errorf("members: %v", got)
	}
	// CommentBlock accepts any mix of the group.
	cb := s.Types[QName{Local: "CommentBlock"}].(*ComplexType)
	m := cb.Matcher(s)
	in := []contentmodel.Symbol{{Local: "comment"}, {Local: "shipComment"}, {Local: "customerComment"}}
	leaves, err := m.Match(in)
	if err != nil {
		t.Fatalf("substitution match: %v", err)
	}
	// All three match the comment leaf; ResolveChild finds the concrete
	// declarations.
	decl := leaves[1].Data.(*ElementDecl)
	resolved, rerr := s.ResolveChild(decl, QName{Local: "shipComment"})
	if rerr != nil || resolved.Name.Local != "shipComment" {
		t.Errorf("ResolveChild: %v, %v", resolved, rerr)
	}
}

func TestAbstractElements(t *testing.T) {
	s := parseSchema(t, schemas.AddressDerivationXSD)
	nb := s.Types[QName{Local: "NoteBlock"}].(*ComplexType)
	m := nb.Matcher(s)
	// The abstract head itself cannot appear...
	if _, err := m.Match([]contentmodel.Symbol{{Local: "note"}}); err == nil {
		t.Error("abstract head should not be matchable")
	}
	// ...but its substitution member can.
	if _, err := m.Match([]contentmodel.Symbol{{Local: "shipNote"}}); err != nil {
		t.Errorf("substitution member: %v", err)
	}
	note, _ := s.LookupElement(QName{Local: "note"})
	if _, err := s.ResolveChild(note, QName{Local: "note"}); err == nil {
		t.Error("resolving the abstract head should fail")
	}
}

func TestNamedGroup(t *testing.T) {
	s := parseSchema(t, schemas.NamedGroupXSD)
	def, ok := s.Groups[QName{Local: "AddressGroup"}]
	if !ok {
		t.Fatal("AddressGroup definition missing")
	}
	if def.Particle.Group.Kind != Choice {
		t.Errorf("AddressGroup kind: %v", def.Particle.Group.Kind)
	}
	pot := s.Types[QName{Local: "PurchaseOrderType"}].(*ComplexType)
	first := pot.Particle.Group.Particles[0]
	if first.Group == nil || first.Group.DefName.Local != "AddressGroup" {
		t.Errorf("group reference lost its name: %+v", first)
	}
	m := pot.Matcher(s)
	if _, err := m.Match([]contentmodel.Symbol{{Local: "twoAddr"}, {Local: "items"}}); err != nil {
		t.Errorf("named group content: %v", err)
	}
}

func TestSimpleContentExtension(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Price">
    <xsd:simpleContent>
      <xsd:extension base="xsd:decimal">
        <xsd:attribute name="currency" type="xsd:string" use="required"/>
      </xsd:extension>
    </xsd:simpleContent>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	price := s.Types[QName{Local: "Price"}].(*ComplexType)
	if price.Kind != ContentSimple {
		t.Fatalf("Price kind: %v", price.Kind)
	}
	if price.SimpleContentType.PrimitiveBuiltin().Name != "decimal" {
		t.Errorf("Price content type: %v", price.SimpleContentType)
	}
	if u := price.FindAttributeUse(QName{Local: "currency"}); u == nil || !u.Required {
		t.Errorf("currency attribute: %+v", u)
	}
}

func TestSimpleContentRestrictionFacets(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Price">
    <xsd:simpleContent>
      <xsd:extension base="xsd:decimal">
        <xsd:attribute name="currency" type="xsd:string"/>
      </xsd:extension>
    </xsd:simpleContent>
  </xsd:complexType>
  <xsd:complexType name="SmallPrice">
    <xsd:simpleContent>
      <xsd:restriction base="Price">
        <xsd:maxInclusive value="100"/>
      </xsd:restriction>
    </xsd:simpleContent>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	sp := s.Types[QName{Local: "SmallPrice"}].(*ComplexType)
	if err := sp.SimpleContentType.Validate("99.5"); err != nil {
		t.Errorf("99.5: %v", err)
	}
	if sp.SimpleContentType.Validate("100.5") == nil {
		t.Error("100.5 should violate maxInclusive")
	}
	// The currency attribute is inherited through the restriction.
	if sp.FindAttributeUse(QName{Local: "currency"}) == nil {
		t.Error("currency attribute not inherited")
	}
}

func TestListAndUnionTypes(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Sizes">
    <xsd:list itemType="xsd:int"/>
  </xsd:simpleType>
  <xsd:simpleType name="SizeOrWord">
    <xsd:union memberTypes="xsd:int">
      <xsd:simpleType>
        <xsd:restriction base="xsd:string">
          <xsd:enumeration value="small"/>
          <xsd:enumeration value="large"/>
        </xsd:restriction>
      </xsd:simpleType>
    </xsd:union>
  </xsd:simpleType>
  <xsd:simpleType name="ShortSizes">
    <xsd:restriction base="Sizes">
      <xsd:maxLength value="3"/>
    </xsd:restriction>
  </xsd:simpleType>
</xsd:schema>`
	s := parseSchema(t, src)
	sizes := s.Types[QName{Local: "Sizes"}].(*SimpleType)
	if sizes.Variety != VarietyList {
		t.Fatalf("Sizes variety: %v", sizes.Variety)
	}
	if err := sizes.Validate("1 2 3"); err != nil {
		t.Errorf("1 2 3: %v", err)
	}
	if sizes.Validate("1 x 3") == nil {
		t.Error("non-int item should fail")
	}
	sow := s.Types[QName{Local: "SizeOrWord"}].(*SimpleType)
	for _, ok := range []string{"42", "small", "large"} {
		if err := sow.Validate(ok); err != nil {
			t.Errorf("union %q: %v", ok, err)
		}
	}
	if sow.Validate("medium") == nil {
		t.Error("medium should fail the union")
	}
	short := s.Types[QName{Local: "ShortSizes"}].(*SimpleType)
	if err := short.Validate("1 2 3"); err != nil {
		t.Errorf("3 items: %v", err)
	}
	if short.Validate("1 2 3 4") == nil {
		t.Error("4 items should exceed maxLength 3")
	}
}

func TestIncludeViaLoader(t *testing.T) {
	main := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:include schemaLocation="addr.xsd"/>
  <xsd:element name="order" type="Address"/>
</xsd:schema>`
	addr := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Address">
    <xsd:sequence><xsd:element name="city" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	s, err := Parse([]byte(main), &ParseOptions{Loader: MapLoader{"addr.xsd": []byte(addr)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Types[QName{Local: "Address"}]; !ok {
		t.Error("included type missing")
	}
	// Without a loader, include must fail.
	if _, err := ParseString(main, nil); err == nil {
		t.Error("include without loader should fail")
	}
}

func TestTargetNamespace(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:po="urn:po" targetNamespace="urn:po" elementFormDefault="qualified">
  <xsd:element name="order" type="po:OrderType"/>
  <xsd:complexType name="OrderType">
    <xsd:sequence>
      <xsd:element name="id" type="xsd:int"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	if s.TargetNamespace != "urn:po" {
		t.Fatalf("tns: %q", s.TargetNamespace)
	}
	order, ok := s.LookupElement(QName{Space: "urn:po", Local: "order"})
	if !ok {
		t.Fatal("order element missing in target namespace")
	}
	ot := order.Type.(*ComplexType)
	// elementFormDefault=qualified: the local element is qualified.
	id := ot.Particle.Group.Particles[0].Element
	if id.Name.Space != "urn:po" {
		t.Errorf("local element namespace: %q", id.Name.Space)
	}
}

func TestUnqualifiedLocals(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:po="urn:po" targetNamespace="urn:po">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="child" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="root" type="po:T"/>
</xsd:schema>`
	s := parseSchema(t, src)
	root, _ := s.LookupElement(QName{Space: "urn:po", Local: "root"})
	child := root.Type.(*ComplexType).Particle.Group.Particles[0].Element
	if child.Name.Space != "" {
		t.Errorf("unqualified local got namespace %q", child.Name.Space)
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`<x/>`, "not xsd:schema"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:element name="a" type="Missing"/></xsd:schema>`, "undeclared type"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:element name="a" type="xsd:string"/>
			<xsd:element name="a" type="xsd:int"/></xsd:schema>`, "duplicate"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:complexType name="T"><xsd:sequence>
			<xsd:element name="e" type="xsd:string" minOccurs="3" maxOccurs="2"/>
			</xsd:sequence></xsd:complexType></xsd:schema>`, "maxOccurs"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:simpleType name="S">
			<xsd:restriction base="xsd:int"><xsd:minInclusive value="abc"/></xsd:restriction>
			</xsd:simpleType></xsd:schema>`, "not valid against the base"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:simpleType name="S">
			<xsd:restriction base="xsd:string"><xsd:pattern value="[unclosed"/></xsd:restriction>
			</xsd:simpleType></xsd:schema>`, "xsdregex"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:simpleType name="A"><xsd:restriction base="B"/></xsd:simpleType>
			<xsd:simpleType name="B"><xsd:restriction base="A"/></xsd:simpleType>
			</xsd:schema>`, "cycle"},
		{`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:complexType name="T"><xsd:choice>
			<xsd:element name="a" type="xsd:string"/>
			<xsd:sequence><xsd:element name="a" type="xsd:string"/><xsd:element name="b" type="xsd:string"/></xsd:sequence>
			</xsd:choice></xsd:complexType></xsd:schema>`, "unique particle attribution"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src, nil)
		if err == nil {
			t.Errorf("expected error containing %q, got nil", c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("error %q does not contain %q", err, c.substr)
		}
	}
}

func TestRecursiveType(t *testing.T) {
	// Recursion through element content is legal.
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Tree">
    <xsd:sequence>
      <xsd:element name="label" type="xsd:string"/>
      <xsd:element name="child" type="Tree" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="tree" type="Tree"/>
</xsd:schema>`
	s := parseSchema(t, src)
	tree := s.Types[QName{Local: "Tree"}].(*ComplexType)
	child := tree.Particle.Group.Particles[1].Element
	if child.Type != Type(tree) {
		t.Error("recursive type reference not resolved to the same component")
	}
}

func TestWildcardParsing(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:t" xmlns:t="urn:t">
  <xsd:complexType name="Open">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string" form="qualified"/>
      <xsd:any namespace="##other" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:anyAttribute namespace="##any"/>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	open := s.Types[QName{Space: "urn:t", Local: "Open"}].(*ComplexType)
	wild := open.Particle.Group.Particles[1].Wildcard
	if wild == nil || wild.Kind != contentmodel.WildOther || wild.TargetNS != "urn:t" {
		t.Fatalf("wildcard: %+v", wild)
	}
	if open.AttrWildcard == nil || open.AttrWildcard.Kind != contentmodel.WildAny {
		t.Errorf("attribute wildcard: %+v", open.AttrWildcard)
	}
}

func TestAttributeGroupAndGlobalAttribute(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:attribute name="lang" type="xsd:language"/>
  <xsd:attributeGroup name="Common">
    <xsd:attribute ref="lang"/>
    <xsd:attribute name="id" type="xsd:ID" use="required"/>
  </xsd:attributeGroup>
  <xsd:complexType name="T">
    <xsd:sequence/>
    <xsd:attributeGroup ref="Common"/>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	tt := s.Types[QName{Local: "T"}].(*ComplexType)
	if len(tt.AttributeUses) != 2 {
		t.Fatalf("attribute uses: %d", len(tt.AttributeUses))
	}
	if u := tt.FindAttributeUse(QName{Local: "id"}); u == nil || !u.Required {
		t.Errorf("id use: %+v", u)
	}
	if u := tt.FindAttributeUse(QName{Local: "lang"}); u == nil || u.Decl.Type.PrimitiveBuiltin().Name != "language" {
		t.Errorf("lang use: %+v", u)
	}
}

func TestAnonymousTypeOrder(t *testing.T) {
	s := parseSchema(t, schemas.PurchaseOrderXSD)
	anon := s.AnonymousTypes()
	// item's complex type and quantity's simple type.
	if len(anon) != 2 {
		t.Fatalf("anonymous types: %d", len(anon))
	}
}

func TestAllGroupSchema(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:all>
      <xsd:element name="a" type="xsd:string"/>
      <xsd:element name="b" type="xsd:string" minOccurs="0"/>
    </xsd:all>
  </xsd:complexType>
</xsd:schema>`
	s := parseSchema(t, src)
	tt := s.Types[QName{Local: "T"}].(*ComplexType)
	m := tt.Matcher(s)
	if _, err := m.Match([]contentmodel.Symbol{{Local: "b"}, {Local: "a"}}); err != nil {
		t.Errorf("all group permutation: %v", err)
	}
}
