package xsd

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBuildCatalog maps target namespaces to the declaring files across a
// directory tree, cheaply (root-tag scan) and deterministically (smallest
// path wins a namespace collision).
func TestBuildCatalog(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"lib/common.xsd": commonTypes,
		"lib/dup.xsd":    commonTypes, // same namespace, later path: loses
		"nons.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"/>`,
		"notxml.xsd": `this is not xml at all <<<`,
		"order.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order"/>`,
	})
	cat, err := BuildCatalog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cat); got != 2 {
		t.Fatalf("catalog has %d entries, want 2: %v", got, cat)
	}
	if got := cat["urn:common"]; filepath.Base(got) != "common.xsd" {
		t.Errorf("urn:common resolves to %q, want lib/common.xsd (smallest path wins)", got)
	}
	if got := cat["urn:order"]; filepath.Base(got) != "order.xsd" {
		t.Errorf("urn:order resolves to %q", got)
	}
}

// TestLocationlessImportViaCatalog resolves an xs:import with no
// schemaLocation through the directory's namespace catalog — the form
// WSDL <types> sections and vendor schema sets use routinely.
func TestLocationlessImportViaCatalog(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"lib/common.xsd": commonTypes,
		"order.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order"
            xmlns:c="urn:common">
  <xsd:import namespace="urn:common"/>
  <xsd:element name="order">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="shipTo" type="c:Address"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`,
	})

	// Without a catalog the import resolves nothing and the reference to
	// c:Address must fail — the historical behavior.
	if _, err := ParseFile(filepath.Join(dir, "order.xsd"), nil); err == nil {
		t.Fatal("expected undeclared-type error without a catalog")
	} else if !strings.Contains(err.Error(), "Address") {
		t.Fatalf("unexpected error without catalog: %v", err)
	}

	cat, err := BuildCatalog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := NewDirResolver(dir)
	res.Catalog = cat
	s, err := ParseFile(filepath.Join(dir, "order.xsd"), &ParseOptions{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupType(QName{Space: "urn:common", Local: "Address"}); !ok {
		t.Error("catalog-imported type Address missing")
	}
	if len(s.Sources()) != 2 {
		t.Errorf("sources = %v, want the root and the cataloged import", s.Sources())
	}
}

// TestCatalogEscapeConfined keeps namespace resolution inside the
// resolver's root: a catalog entry pointing outside the tree is an error,
// not a read.
func TestCatalogEscapeConfined(t *testing.T) {
	dir := t.TempDir()
	outside := t.TempDir()
	writeTree(t, outside, map[string]string{"evil.xsd": commonTypes})
	writeTree(t, dir, map[string]string{
		"order.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order"
            xmlns:c="urn:common">
  <xsd:import namespace="urn:common"/>
  <xsd:element name="order" type="c:Address"/>
</xsd:schema>`,
	})
	res := NewDirResolver(dir)
	res.Catalog = map[string]string{"urn:common": filepath.Join(outside, "evil.xsd")}
	_, err := ParseFile(filepath.Join(dir, "order.xsd"), &ParseOptions{Resolver: res})
	if err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("want confinement error, got %v", err)
	}
}

// TestImportedFormDefaultPerDocument pins the per-document scope of
// elementFormDefault/attributeFormDefault: an unqualified root importing
// a qualified library must keep the library's locals qualified (and its
// own unqualified) — the root document's defaults never leak into
// imported documents.
func TestImportedFormDefaultPerDocument(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"lib.xsd": `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
  targetNamespace="urn:q" elementFormDefault="qualified" attributeFormDefault="qualified">
  <xsd:complexType name="Pair">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
    <xsd:attribute name="id" type="xsd:string"/>
  </xsd:complexType>
</xsd:schema>`,
		"root.xsd": `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
  xmlns:q="urn:q" targetNamespace="urn:r">
  <xsd:import namespace="urn:q" schemaLocation="lib.xsd"/>
  <xsd:element name="doc">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="local" type="xsd:string"/>
        <xsd:element name="pair" type="q:Pair"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "root.xsd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, ok := s.LookupElement(QName{Space: "urn:r", Local: "doc"})
	if !ok {
		t.Fatal("doc not declared")
	}
	kids := doc.Type.(*ComplexType).Particle.Group.Particles
	if got := kids[0].Element.Name; got != (QName{Local: "local"}) {
		t.Errorf("root-document local = %v, want unqualified (root has no elementFormDefault)", got)
	}
	pair := kids[1].Element.Type.(*ComplexType)
	px := pair.Particle.Group.Particles[0].Element.Name
	if px != (QName{Space: "urn:q", Local: "x"}) {
		t.Errorf("imported local = %v, want {urn:q}x (lib is elementFormDefault=qualified)", px)
	}
	var id QName
	for _, a := range pair.AttributeUses {
		if a.Decl.Name.Local == "id" {
			id = a.Decl.Name
		}
	}
	if id != (QName{Space: "urn:q", Local: "id"}) {
		t.Errorf("imported attribute = %v, want {urn:q}id (lib is attributeFormDefault=qualified)", id)
	}
}
