package xsd

import (
	"path/filepath"
	"testing"

	"repro/internal/dom"
)

// TestParseDocHook: ParseOptions.ParseDoc replaces dom.Parse for the
// root document AND every referenced document, which is the seam the
// registry's per-reload DOM cache plugs into. The hook must see each
// file exactly once per ParseFile call (reference dedup happens above
// it) and the resulting schema must be fully composed.
func TestParseDocHook(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"lib/common.xsd": commonTypes,
		"order.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order"
            xmlns:c="urn:common">
  <xsd:import namespace="urn:common" schemaLocation="lib/common.xsd"/>
  <xsd:element name="order">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="shipTo" type="c:Address"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`,
	})

	calls := 0
	opts := &ParseOptions{
		Resolver: NewDirResolver(dir),
		ParseDoc: func(src []byte) (*dom.Document, error) {
			calls++
			return dom.Parse(src)
		},
	}
	s, err := ParseFile(filepath.Join(dir, "order.xsd"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("ParseDoc called %d times, want 2 (root + import)", calls)
	}
	if _, ok := s.LookupType(QName{Space: "urn:common", Local: "Address"}); !ok {
		t.Error("imported type Address missing when parsing through the hook")
	}
}
