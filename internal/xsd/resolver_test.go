package xsd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree writes a file tree under root, creating directories as needed.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const commonTypes = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:common"
            xmlns:c="urn:common">
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

func TestParseFileImportGraph(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"lib/common.xsd": commonTypes,
		"order.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order"
            xmlns:c="urn:common">
  <xsd:import namespace="urn:common" schemaLocation="lib/common.xsd"/>
  <xsd:element name="order">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="shipTo" type="c:Address"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "order.xsd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupType(QName{Space: "urn:common", Local: "Address"}); !ok {
		t.Error("imported type Address missing")
	}
	srcs := s.Sources()
	if len(srcs) != 2 {
		t.Fatalf("Sources() = %v, want root + import", srcs)
	}
	if filepath.Base(srcs[0]) != "order.xsd" || filepath.Base(srcs[1]) != "common.xsd" {
		t.Errorf("Sources() order = %v", srcs)
	}
}

// TestParseFileDiamond loads a diamond (root includes a and b, both of
// which include shared) and verifies the shared document is composed once
// even though the two edges spell its path differently.
func TestParseFileDiamond(t *testing.T) {
	dir := t.TempDir()
	shared := `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:d">
  <xsd:simpleType name="Code"><xsd:restriction base="xsd:string"/></xsd:simpleType>
</xsd:schema>`
	sub := func(local, loc string) string {
		return `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:d">
  <xsd:include schemaLocation="` + loc + `"/>
  <xsd:element name="` + local + `" type="xsd:string"/>
</xsd:schema>`
	}
	writeTree(t, dir, map[string]string{
		"parts/shared.xsd": shared,
		"parts/a.xsd":      sub("a", "shared.xsd"),
		"parts/b.xsd":      sub("b", "./shared.xsd"), // same file, different spelling
		"root.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:d">
  <xsd:include schemaLocation="parts/a.xsd"/>
  <xsd:include schemaLocation="parts/b.xsd"/>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "root.xsd"), nil)
	if err != nil {
		t.Fatal(err) // a duplicate-global error here would mean shared loaded twice
	}
	if len(s.Sources()) != 4 {
		t.Errorf("Sources() = %v, want 4 distinct documents", s.Sources())
	}
}

// TestParseFileCycle verifies mutually-including documents terminate.
func TestParseFileCycle(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"a.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:c">
  <xsd:include schemaLocation="b.xsd"/>
  <xsd:element name="a" type="xsd:string"/>
</xsd:schema>`,
		"b.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:c">
  <xsd:include schemaLocation="a.xsd"/>
  <xsd:element name="b" type="xsd:string"/>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "a.xsd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, ok := s.LookupElement(QName{Space: "urn:c", Local: name}); !ok {
			t.Errorf("element %s missing after cyclic include", name)
		}
	}
}

func TestParseFileEscapeRejected(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"outside.xsd": commonTypes,
		"tree/main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:common">
  <xsd:include schemaLocation="../outside.xsd"/>
</xsd:schema>`,
	})
	_, err := ParseFile(filepath.Join(dir, "tree", "main.xsd"), nil)
	if err == nil || !strings.Contains(err.Error(), "escapes the schema root") {
		t.Errorf("escaping include: err = %v, want confinement error", err)
	}
	// The same reference is fine when the resolver is rooted high enough.
	_, err = ParseFile(filepath.Join(dir, "tree", "main.xsd"),
		&ParseOptions{Resolver: NewDirResolver(dir)})
	if err != nil {
		t.Errorf("wider root: %v", err)
	}
}

func TestParseFileRemoteLocationRejected(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:include schemaLocation="https://example.com/evil.xsd"/>
</xsd:schema>`,
	})
	_, err := ParseFile(filepath.Join(dir, "main.xsd"), nil)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("remote include: err = %v, want unsupported error", err)
	}
}

func TestImportNamespaceCoherence(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{"lib/common.xsd": commonTypes})
	cases := []struct {
		name, importEl, wantErr string
	}{
		{"declared namespace mismatch",
			`<xsd:import namespace="urn:wrong" schemaLocation="lib/common.xsd"/>`,
			`target namespace "urn:common", import declares "urn:wrong"`},
		{"undeclared namespace but namespaced document",
			`<xsd:import schemaLocation="lib/common.xsd"/>`,
			`import declares ""`},
		{"import of own target namespace",
			`<xsd:import namespace="urn:order" schemaLocation="lib/common.xsd"/>`,
			"use include"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			writeTree(t, dir, map[string]string{
				"main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:order">
  ` + tc.importEl + `
</xsd:schema>`,
			})
			_, err := ParseFile(filepath.Join(dir, "main.xsd"), nil)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestRedefine(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"base.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:r" xmlns:r="urn:r">
  <xsd:complexType name="Item">
    <xsd:sequence><xsd:element name="sku" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="item" type="r:Item"/>
</xsd:schema>`,
		"main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:r" xmlns:r="urn:r">
  <xsd:redefine schemaLocation="base.xsd">
    <xsd:complexType name="Item">
      <xsd:sequence>
        <xsd:element name="sku" type="xsd:string"/>
        <xsd:element name="qty" type="xsd:int"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:redefine>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "main.xsd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	item, ok := s.LookupType(QName{Space: "urn:r", Local: "Item"})
	if !ok {
		t.Fatal("redefined type Item missing")
	}
	ct := item.(*ComplexType)
	if got := s.CompileParticle(ct.Particle).String(); !strings.Contains(got, "qty") {
		t.Errorf("element item should use the redefined type; content model = %s", got)
	}
	// The global element from the redefined document must resolve to the
	// replacement type.
	el, ok := s.LookupElement(QName{Space: "urn:r", Local: "item"})
	if !ok {
		t.Fatal("element item missing")
	}
	if el.Type != item {
		t.Error("element item bound to the original type, not the redefinition")
	}
}

func TestRedefineUnknownName(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"base.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:r">
  <xsd:complexType name="Item"><xsd:sequence/></xsd:complexType>
</xsd:schema>`,
		"main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:r">
  <xsd:redefine schemaLocation="base.xsd">
    <xsd:complexType name="NoSuchType"><xsd:sequence/></xsd:complexType>
  </xsd:redefine>
</xsd:schema>`,
	})
	_, err := ParseFile(filepath.Join(dir, "main.xsd"), nil)
	if err == nil || !strings.Contains(err.Error(), "not declared by the redefined schema") {
		t.Errorf("err = %v, want undeclared-redefinition error", err)
	}
}

// TestChameleonIncludeViaFile exercises the chameleon rule through the
// file resolver: a no-namespace document adopts the including schema's
// target namespace.
func TestChameleonIncludeViaFile(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"parts.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Part"><xsd:restriction base="xsd:string"/></xsd:simpleType>
</xsd:schema>`,
		"main.xsd": `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:cham">
  <xsd:include schemaLocation="parts.xsd"/>
</xsd:schema>`,
	})
	s, err := ParseFile(filepath.Join(dir, "main.xsd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupType(QName{Space: "urn:cham", Local: "Part"}); !ok {
		t.Error("chameleon include did not adopt the target namespace")
	}
}
