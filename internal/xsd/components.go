package xsd

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/contentmodel"
	"repro/internal/xsdtypes"
)

// XSDNamespace is the XML Schema namespace.
const XSDNamespace = xsdtypes.XSDNamespace

// XSINamespace is the XML Schema instance namespace.
const XSINamespace = xsdtypes.XSINamespace

// QName is a namespace-qualified schema component name.
type QName struct {
	Space string
	Local string
}

// String renders the name in Clark notation.
func (q QName) String() string {
	if q.Space == "" {
		return q.Local
	}
	return "{" + q.Space + "}" + q.Local
}

// IsZero reports whether the name is unset (anonymous component).
func (q QName) IsZero() bool { return q.Local == "" }

// Type is a simple or complex type definition.
type Type interface {
	// TypeName returns the component name; zero for anonymous types.
	TypeName() QName
	// IsSimple distinguishes simple from complex types.
	IsSimple() bool
	// BaseType returns the derivation base, or nil (anyType for complex
	// roots, anySimpleType handled inside SimpleType chains).
	BaseType() Type
}

// Derivation is the derivation method of a complex type.
type Derivation int

// Derivation methods.
const (
	DeriveNone Derivation = iota
	DeriveExtension
	DeriveRestriction
)

// String names the derivation method.
func (d Derivation) String() string {
	switch d {
	case DeriveExtension:
		return "extension"
	case DeriveRestriction:
		return "restriction"
	default:
		return "none"
	}
}

// Variety is the variety of a simple type.
type Variety int

// Simple type varieties.
const (
	VarietyAtomic Variety = iota
	VarietyList
	VarietyUnion
)

// SimpleType is a simple type definition: a built-in, or a user-defined
// restriction / list / union.
type SimpleType struct {
	// Name is empty for anonymous types (normalize assigns one).
	Name QName
	// Builtin is non-nil when this type IS a built-in.
	Builtin *xsdtypes.Builtin
	// Base is the restriction base (nil for built-ins and for list/union
	// varieties derived directly from anySimpleType).
	Base *SimpleType
	// Variety is atomic, list or union.
	Variety Variety
	// Facets are the constraining facets added at this derivation step.
	Facets xsdtypes.Facets
	// ItemType is the list item type (Variety == VarietyList).
	ItemType *SimpleType
	// MemberTypes are the union members (Variety == VarietyUnion).
	MemberTypes []*SimpleType
	// Context records where an anonymous type was defined, for the
	// normalization naming scheme.
	Context string
}

// TypeName implements Type.
func (s *SimpleType) TypeName() QName { return s.Name }

// IsSimple implements Type.
func (s *SimpleType) IsSimple() bool { return true }

// BaseType implements Type.
func (s *SimpleType) BaseType() Type {
	if s.Base == nil {
		return nil
	}
	return s.Base
}

// effectiveWhiteSpace returns the whitespace mode, honoring overrides.
func (s *SimpleType) effectiveWhiteSpace() xsdtypes.WhiteSpace {
	for t := s; t != nil; t = t.Base {
		if t.Facets.WhiteSpace != nil {
			return *t.Facets.WhiteSpace
		}
		if t.Builtin != nil {
			return t.Builtin.WS
		}
	}
	return xsdtypes.WSCollapse
}

// PrimitiveBuiltin returns the built-in the atomic chain bottoms out in.
func (s *SimpleType) PrimitiveBuiltin() *xsdtypes.Builtin {
	for t := s; t != nil; t = t.Base {
		if t.Builtin != nil {
			return t.Builtin
		}
	}
	return nil
}

// Parse validates a lexical value against the simple type and returns the
// parsed value.
func (s *SimpleType) Parse(lexical string) (xsdtypes.Value, error) {
	norm := xsdtypes.ApplyWhiteSpace(s.effectiveWhiteSpace(), lexical)
	v, err := s.parseNormalized(norm)
	if err != nil {
		return xsdtypes.Value{}, err
	}
	// Apply user facet steps from the base outward.
	var steps []*SimpleType
	for t := s; t != nil && t.Builtin == nil; t = t.Base {
		steps = append(steps, t)
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if !steps[i].Facets.IsEmpty() {
			if err := steps[i].Facets.Check(v, norm); err != nil {
				return xsdtypes.Value{}, fmt.Errorf("%s: %w", s.displayName(), err)
			}
		}
	}
	return v, nil
}

// parseNormalized parses a whitespace-normalized lexical value in the
// type's value space (without this type's user facet steps).
func (s *SimpleType) parseNormalized(norm string) (xsdtypes.Value, error) {
	switch s.Variety {
	case VarietyList:
		var items []xsdtypes.Value
		if norm != "" {
			for _, part := range strings.Fields(norm) {
				iv, err := s.ItemType.Parse(part)
				if err != nil {
					return xsdtypes.Value{}, fmt.Errorf("list item %q: %w", part, err)
				}
				items = append(items, iv)
			}
		}
		return xsdtypes.Value{Kind: xsdtypes.VList, Items: items}, nil
	case VarietyUnion:
		var firstErr error
		for _, m := range s.MemberTypes {
			v, err := m.Parse(norm)
			if err == nil {
				return v, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return xsdtypes.Value{}, fmt.Errorf("%s: no union member accepts %q: %w", s.displayName(), norm, firstErr)
	default:
		if s.Builtin != nil {
			return s.Builtin.Parse(norm)
		}
		if s.Base != nil {
			return s.Base.Parse(norm)
		}
		return xsdtypes.Value{Kind: xsdtypes.VString, Str: norm}, nil
	}
}

// Validate checks a lexical value, discarding the parsed form.
func (s *SimpleType) Validate(lexical string) error {
	_, err := s.Parse(lexical)
	return err
}

// DerivesFrom reports whether s is anc or derives from it (restriction,
// list item or union membership are all treated as derivation here).
func (s *SimpleType) DerivesFrom(anc *SimpleType) bool {
	for t := s; t != nil; t = t.Base {
		if t == anc {
			return true
		}
		if t.Builtin != nil && anc.Builtin != nil && t.Builtin.DerivesFrom(anc.Builtin) {
			return true
		}
	}
	return false
}

func (s *SimpleType) displayName() string {
	if !s.Name.IsZero() {
		return s.Name.Local
	}
	if s.Context != "" {
		return "anonymous type (" + s.Context + ")"
	}
	return "anonymous simple type"
}

// ContentKind classifies a complex type's content.
type ContentKind int

// Content kinds.
const (
	// ContentEmpty has no children and no character data.
	ContentEmpty ContentKind = iota
	// ContentSimple has character data of a simple type and no children.
	ContentSimple
	// ContentElementOnly has child elements per the content model.
	ContentElementOnly
	// ContentMixed allows character data interleaved with the model.
	ContentMixed
)

// ComplexType is a complex type definition.
type ComplexType struct {
	// Name is empty for anonymous types.
	Name     QName
	Abstract bool
	// Base is the derivation base; nil means ur-type (xs:anyType).
	Base      Type
	DerivedBy Derivation
	// Kind classifies the content.
	Kind ContentKind
	// Particle is the content model for element-only/mixed content. It
	// is this type's *effective* particle: for extension it already
	// includes the base's particle as a leading sequence member.
	Particle *Particle
	// SimpleContentType is the character-data type for ContentSimple.
	SimpleContentType *SimpleType
	// AttributeUses are the declared attributes (including inherited).
	AttributeUses []*AttributeUse
	// AttrWildcard admits additional attributes (xs:anyAttribute).
	AttrWildcard *contentmodel.Wildcard
	// Context records where an anonymous type was defined.
	Context string

	// compiled caches the compiled content-model matcher; compileOnce
	// makes the lazy build safe under concurrent Matcher calls.
	compileOnce sync.Once
	compiled    contentmodel.Matcher
	// compiledUPA caches the UPA check result under the same discipline.
	upaOnce     sync.Once
	compiledUPA error
}

// TypeName implements Type.
func (c *ComplexType) TypeName() QName { return c.Name }

// IsSimple implements Type.
func (c *ComplexType) IsSimple() bool { return false }

// BaseType implements Type.
func (c *ComplexType) BaseType() Type { return c.Base }

// DerivesFrom reports whether c equals anc or derives from it.
func (c *ComplexType) DerivesFrom(anc Type) bool {
	var t Type = c
	for t != nil {
		if t == anc {
			return true
		}
		t = t.BaseType()
	}
	return false
}

// FindAttributeUse looks up an attribute use by name.
func (c *ComplexType) FindAttributeUse(name QName) *AttributeUse {
	for _, u := range c.AttributeUses {
		if u.Decl.Name == name {
			return u
		}
	}
	return nil
}

// ElementDecl is an element declaration.
type ElementDecl struct {
	Name QName
	Type Type
	// Global marks top-level declarations (only these can head
	// substitution groups or be substituted).
	Global   bool
	Abstract bool
	Nillable bool
	// SubstitutionHead is the declaration this element may substitute.
	SubstitutionHead *ElementDecl
	// Default and Fixed are the value constraints.
	Default *string
	Fixed   *string
	// Constraints are the identity constraints (unique/key/keyref)
	// scoped to this element. The paper explicitly excludes these
	// ("Currently we do not handle identity constraints"); they are
	// implemented here as an extension, used by the validator only.
	Constraints []*IdentityConstraint
}

// ConstraintKind distinguishes unique, key and keyref.
type ConstraintKind int

// Identity constraint kinds.
const (
	ConstraintUnique ConstraintKind = iota
	ConstraintKey
	ConstraintKeyref
)

// String names the constraint kind.
func (k ConstraintKind) String() string {
	switch k {
	case ConstraintKey:
		return "key"
	case ConstraintKeyref:
		return "keyref"
	default:
		return "unique"
	}
}

// IdentityConstraint is an xs:unique / xs:key / xs:keyref definition.
type IdentityConstraint struct {
	Kind ConstraintKind
	Name QName
	// Selector is the restricted-XPath selecting the constrained nodes
	// relative to the declaring element.
	Selector string
	// Fields are the restricted-XPaths producing each key member.
	Fields []string
	// Refer names the key a keyref resolves against.
	Refer QName
}

// AttributeDecl is an attribute declaration.
type AttributeDecl struct {
	Name QName
	Type *SimpleType
}

// AttributeUse is an attribute declaration attached to a complex type.
type AttributeUse struct {
	Decl     *AttributeDecl
	Required bool
	// Prohibited removes an inherited attribute in a restriction.
	Prohibited bool
	Default    *string
	Fixed      *string
}

// ModelGroupDef is a named model group (xs:group definition).
type ModelGroupDef struct {
	Name     QName
	Particle *Particle
}

// AttributeGroupDef is a named attribute group.
type AttributeGroupDef struct {
	Name          QName
	AttributeUses []*AttributeUse
	AttrWildcard  *contentmodel.Wildcard
}

// GroupKind re-exports the compositor kinds.
type GroupKind = contentmodel.GroupKind

// Compositors.
const (
	Sequence = contentmodel.Sequence
	Choice   = contentmodel.Choice
	All      = contentmodel.All
)

// Unbounded re-exports maxOccurs="unbounded".
const Unbounded = contentmodel.Unbounded

// Particle is a schema-level particle: an element declaration, a wildcard
// or a model group, with occurrence bounds.
type Particle struct {
	Min int
	Max int // Unbounded for maxOccurs="unbounded"

	// Exactly one of the following is set.
	Element  *ElementDecl
	Wildcard *contentmodel.Wildcard
	Group    *ModelGroup
	// GroupRefName names the referenced xs:group before resolution; the
	// resolver replaces it with the definition's particle.
	GroupRefName QName
}

// ModelGroup is a sequence/choice/all group of particles.
type ModelGroup struct {
	Kind      GroupKind
	Particles []*Particle
	// DefName is set when this group came from a named xs:group
	// definition — the paper's "explicit naming" (§3).
	DefName QName
}

// Schema is a resolved schema: the symbol tables of all global components.
type Schema struct {
	TargetNamespace string
	// QualifiedLocal reports whether locally declared elements are
	// namespace-qualified (elementFormDefault="qualified").
	QualifiedLocal     bool
	QualifiedLocalAttr bool

	Elements        map[QName]*ElementDecl
	Types           map[QName]Type
	Groups          map[QName]*ModelGroupDef
	AttributeGroups map[QName]*AttributeGroupDef
	Attributes      map[QName]*AttributeDecl

	// substitutionMembers indexes substitution groups: head name ->
	// member declarations (transitively).
	substitutionMembers map[QName][]*ElementDecl

	// anonTypes collects anonymous types in definition order so that
	// normalization and code generation are deterministic.
	anonTypes []Type

	// symbols is the schema-wide content-model symbol interner: every
	// element name across every compiled content model maps to one dense
	// ID, so the lazy-DFA executors can index transition tables instead of
	// comparing names.
	symbols *contentmodel.Interner

	// sources lists the canonical keys of every document that contributed
	// components (root first, then referenced documents in load order).
	// Populated only when the schema was parsed through a Resolver
	// (ParseFile); the registry stats this closure to decide which schemas
	// a file edit invalidates.
	sources []string
}

// Sources returns the canonical document keys (file paths, for
// DirResolver) this schema was composed from: the root document first,
// then every included/imported/redefined document in load order. Empty for
// schemas parsed from bytes without a Resolver. The returned slice is
// owned by the schema; callers must not mutate it.
func (s *Schema) Sources() []string { return s.sources }

// Symbols returns the schema-wide symbol interning table shared by every
// content model compiled from this schema.
func (s *Schema) Symbols() *contentmodel.Interner { return s.symbols }

// NewSchema creates an empty schema with the built-in types preloaded.
func NewSchema(targetNS string) *Schema {
	s := &Schema{
		TargetNamespace:     targetNS,
		Elements:            map[QName]*ElementDecl{},
		Types:               map[QName]Type{},
		Groups:              map[QName]*ModelGroupDef{},
		AttributeGroups:     map[QName]*AttributeGroupDef{},
		Attributes:          map[QName]*AttributeDecl{},
		substitutionMembers: map[QName][]*ElementDecl{},
		symbols:             contentmodel.NewInterner(),
	}
	for _, name := range xsdtypes.Names() {
		b, _ := xsdtypes.Lookup(name)
		s.Types[QName{Space: XSDNamespace, Local: name}] = &SimpleType{
			Name:    QName{Space: XSDNamespace, Local: name},
			Builtin: b,
		}
	}
	// xs:anyType: the ur-type, a complex type with mixed wildcard
	// content and any attributes.
	anyType := &ComplexType{
		Name: QName{Space: XSDNamespace, Local: "anyType"},
		Kind: ContentMixed,
		Particle: &Particle{Min: 1, Max: 1, Group: &ModelGroup{Kind: Sequence, Particles: []*Particle{
			{Min: 0, Max: Unbounded, Wildcard: &contentmodel.Wildcard{Kind: contentmodel.WildAny}},
		}}},
		AttrWildcard: &contentmodel.Wildcard{Kind: contentmodel.WildAny},
	}
	s.Types[anyType.Name] = anyType
	return s
}

// AnyType returns the xs:anyType definition.
func (s *Schema) AnyType() *ComplexType {
	return s.Types[QName{Space: XSDNamespace, Local: "anyType"}].(*ComplexType)
}

// LookupType resolves a type name (built-ins included).
func (s *Schema) LookupType(name QName) (Type, bool) {
	t, ok := s.Types[name]
	return t, ok
}

// LookupElement resolves a global element declaration.
func (s *Schema) LookupElement(name QName) (*ElementDecl, bool) {
	e, ok := s.Elements[name]
	return e, ok
}

// SubstitutionMembers returns the declarations that may substitute for the
// named head (not including the head itself), transitively.
func (s *Schema) SubstitutionMembers(head QName) []*ElementDecl {
	return s.substitutionMembers[head]
}

// SimpleTypeOf returns the named built-in as a *SimpleType.
func (s *Schema) SimpleTypeOf(local string) *SimpleType {
	t, ok := s.Types[QName{Space: XSDNamespace, Local: local}]
	if !ok {
		panic("xsd: unknown builtin " + local)
	}
	return t.(*SimpleType)
}

// AnonymousTypes returns anonymous types in definition order.
func (s *Schema) AnonymousTypes() []Type { return s.anonTypes }

// GlobalTypeNames returns the names of user-declared global types (not
// built-ins) in no particular order.
func (s *Schema) GlobalTypeNames() []QName {
	var out []QName
	for q := range s.Types {
		if q.Space == XSDNamespace {
			continue
		}
		out = append(out, q)
	}
	return out
}
