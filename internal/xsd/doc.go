// Package xsd parses XML Schema documents (the xsd:schema vocabulary of
// the 2001 recommendation) into a resolved component model: element
// declarations, simple and complex type definitions, model groups,
// attribute declarations and uses, wildcards, and the derivation
// relations (extension, restriction, substitution groups, abstractness)
// that §3 of the paper maps onto V-DOM interface inheritance.
//
// # Multi-document schema sets
//
// A schema may be spread over several documents: ParseFile follows
// xs:include, xs:import and xs:redefine through a Resolver, with
// DirResolver confining schemaLocation resolution to one directory root
// (relative to the referring file; URLs and root-escaping paths are
// rejected, so untrusted trees load without touching the network).
// Loading is cycle-safe, include is chameleon-aware, import enforces
// namespace coherence, and redefine applies replacement semantics. The
// compiled Schema records the full document list (Sources, root first),
// which the registry uses as the entry's invalidation closure.
//
// # Role in the pipeline
//
// xsd is the head of the pipeline (xsd parse → normalize → contentmodel →
// codegen/vdom → validator → pxml): everything downstream — the §3
// normal form (package normalize), the binding generator (package
// codegen), the runtime validator and the P-XML preprocessor — consumes
// the Schema component model built here. Content models are lowered to
// package contentmodel particles via CompileParticle and compiled lazily
// through ComplexType.Matcher.
//
// # Concurrency
//
// A Schema is immutable once Parse/ParseString returns, and all lookup
// methods are read-only, so one Schema may back any number of concurrent
// validators, generators and preprocessors. The two lazily computed
// artifacts on ComplexType — the compiled content-model matcher
// (Matcher) and the UPA check result (CheckUPA) — are built under
// sync.Once, so concurrent first calls are safe and the work happens
// exactly once per type. Parsing itself is single-goroutine per call;
// distinct schemas may be parsed concurrently.
package xsd
