package xsd

import (
	"fmt"

	"repro/internal/contentmodel"
)

// CompileParticle lowers a schema particle to a contentmodel particle,
// expanding substitution groups into leaf name sets and dropping the
// schema-level group names.
func (s *Schema) CompileParticle(p *Particle) *contentmodel.Particle {
	if p == nil {
		return &contentmodel.Particle{Min: 1, Max: 1, Group: &contentmodel.Group{Kind: contentmodel.Sequence}}
	}
	out := &contentmodel.Particle{Min: p.Min, Max: p.Max}
	switch {
	case p.Element != nil:
		leaf := &contentmodel.Leaf{Data: p.Element}
		head := p.Element
		if !head.Abstract {
			leaf.Names = append(leaf.Names, contentmodel.Symbol{Space: head.Name.Space, Local: head.Name.Local})
		}
		if head.Global {
			for _, m := range s.SubstitutionMembers(head.Name) {
				if m.Abstract {
					continue
				}
				leaf.Names = append(leaf.Names, contentmodel.Symbol{Space: m.Name.Space, Local: m.Name.Local})
			}
		}
		out.Leaf = leaf
	case p.Wildcard != nil:
		out.Leaf = &contentmodel.Leaf{Wildcard: p.Wildcard, Data: p.Wildcard}
	case p.Group != nil:
		g := &contentmodel.Group{Kind: p.Group.Kind}
		for _, c := range p.Group.Particles {
			g.Children = append(g.Children, s.CompileParticle(c))
		}
		out.Group = g
	default:
		out.Group = &contentmodel.Group{Kind: contentmodel.Sequence}
	}
	return out
}

// Matcher returns (building and caching on first use) the content-model
// matcher for the complex type. The build happens exactly once per type —
// concurrent callers block until the first build finishes — so a resolved
// Schema may be shared freely across goroutines. The returned matcher is
// itself immutable and safe for concurrent Match calls.
func (c *ComplexType) Matcher(s *Schema) contentmodel.Matcher {
	c.compileOnce.Do(func() {
		m := contentmodel.Compile(s.CompileParticle(c.Particle))
		if g, ok := m.(*contentmodel.Glushkov); ok {
			// Attach the lazy DFA before the matcher is published; it
			// shares the schema-wide symbol interner with every other
			// model so transition lookups are a single array index.
			g.EnableDFA(s.symbols, 0)
		}
		c.compiled = m
	})
	return c.compiled
}

// CheckUPA verifies Unique Particle Attribution for the type's content
// model. Models too large for the position automaton are not checked (the
// spec's check is approximated by the Glushkov overlap test). Like
// Matcher, the check runs once per type and is safe to call concurrently.
func (c *ComplexType) CheckUPA(s *Schema) error {
	c.upaOnce.Do(func() {
		g, err := contentmodel.CompileGlushkov(s.CompileParticle(c.Particle))
		if err != nil {
			c.compiledUPA = nil // too large: skipped
			return
		}
		c.compiledUPA = g.CheckUPA()
	})
	return c.compiledUPA
}

// ResolveChild maps an instance child-element name to the declaration that
// actually governs it: the declared element itself, or a member of its
// substitution group.
func (s *Schema) ResolveChild(declared *ElementDecl, name QName) (*ElementDecl, error) {
	if declared.Name == name {
		if declared.Abstract {
			return nil, fmt.Errorf("element %s is abstract and cannot appear in instances", name)
		}
		return declared, nil
	}
	if g, ok := s.Elements[name]; ok {
		for h := g.SubstitutionHead; h != nil; h = h.SubstitutionHead {
			if h == declared || h.Name == declared.Name {
				if g.Abstract {
					return nil, fmt.Errorf("element %s is abstract and cannot appear in instances", name)
				}
				return g, nil
			}
		}
	}
	return nil, fmt.Errorf("element %s cannot substitute for %s", name, declared.Name)
}

// checkDerivationCycles rejects complex types whose Base chain loops (a
// type extending or restricting itself, directly or transitively).
func (s *Schema) checkDerivationCycles() error {
	check := func(name string, t Type) error {
		slow, fast := t, t
		for {
			if fast == nil {
				return nil
			}
			fast = fast.BaseType()
			if fast == nil {
				return nil
			}
			fast = fast.BaseType()
			slow = slow.BaseType()
			if fast != nil && fast == slow {
				return fmt.Errorf("xsd: type %s is part of a derivation cycle", name)
			}
		}
	}
	for name, t := range s.Types {
		if name.Space == XSDNamespace {
			continue
		}
		if err := check(name.String(), t); err != nil {
			return err
		}
	}
	return nil
}

// CheckAllUPA runs the UPA check over every complex type in the schema and
// returns the first violation.
func (s *Schema) CheckAllUPA() error {
	for name, t := range s.Types {
		ct, ok := t.(*ComplexType)
		if !ok || name.Space == XSDNamespace {
			continue
		}
		if err := ct.CheckUPA(s); err != nil {
			return fmt.Errorf("type %s: %w", name, err)
		}
	}
	for _, t := range s.anonTypes {
		if ct, ok := t.(*ComplexType); ok {
			if err := ct.CheckUPA(s); err != nil {
				return fmt.Errorf("anonymous type (%s): %w", ct.Context, err)
			}
		}
	}
	return nil
}
