package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Status is the payload of GET /v1/cluster: this node's identity and
// registry state plus its last-known view of every peer. It is both the
// operator's fleet dashboard and the gossip protocol itself — nodes
// converge by polling each other's Status, so the wire format and the
// human format are the same document.
type Status struct {
	Self        string       `json:"self"`
	Mode        string       `json:"mode"`
	Draining    bool         `json:"draining"`
	Generation  int64        `json:"generation"`
	Fingerprint string       `json:"fingerprint"`
	Schemas     int          `json:"schemas"`
	Owned       []string     `json:"owned"`
	Peers       []PeerStatus `json:"peers"`
	// Divergence counts peers whose last-reported fingerprint differs
	// from ours (never-seen peers count as divergent). 0 means the
	// fleet, as far as this node can see, serves identical snapshots.
	Divergence int64 `json:"divergence"`
}

// PeerStatus is one peer as last observed by the gossip loop.
type PeerStatus struct {
	Addr        string `json:"addr"`
	Alive       bool   `json:"alive"`
	Draining    bool   `json:"draining,omitempty"`
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	LastSeenMs  int64  `json:"last_seen_ms,omitempty"` // ms since last successful poll
}

// status assembles the current Status document.
func (n *Node) status() *Status {
	reg := n.cfg.Registry
	st := &Status{
		Self:        n.cfg.Self,
		Mode:        n.cfg.Mode.String(),
		Draining:    n.Draining(),
		Generation:  reg.Generation(),
		Fingerprint: reg.Fingerprint(),
	}
	entries := reg.List()
	st.Schemas = len(entries)
	for _, e := range entries {
		if n.ring.Owner(e.Name) == n.cfg.Self {
			st.Owned = append(st.Owned, e.Name)
		}
	}
	now := time.Now()
	n.mu.Lock()
	for _, addr := range n.ring.Peers() {
		ps := n.peers[addr]
		if ps == nil {
			continue // self
		}
		p := PeerStatus{
			Addr:        addr,
			Alive:       ps.Alive,
			Draining:    ps.Draining,
			Generation:  ps.Generation,
			Fingerprint: ps.Fingerprint,
		}
		if !ps.LastSeen.IsZero() {
			p.LastSeenMs = now.Sub(ps.LastSeen).Milliseconds()
		}
		if ps.Fingerprint != st.Fingerprint {
			st.Divergence++
		}
		st.Peers = append(st.Peers, p)
	}
	n.mu.Unlock()
	return st
}

// handleStatus serves GET /v1/cluster.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(nodeHeader, n.cfg.Self)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.status()) //nolint:errcheck // client went away; nothing to do
}

// Gossip polls every peer's /v1/cluster on the configured interval
// until ctx is cancelled, updating liveness, drain flags and snapshot
// identity, and kicking a local reload whenever a peer publishes a
// snapshot this node has not seen. Convergence is pull-only and
// unsynchronized: there is no leader and no broadcast, just every node
// noticing "someone serves different bytes than me" and re-reading the
// shared schema directory. For a fleet over one directory tree that is
// enough — the directory is the authority, gossip only spreads the news
// that it changed.
func (n *Node) Gossip(ctx context.Context) {
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		n.PollOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// PollOnce runs one synchronous gossip sweep: poll every peer, fold in
// what they report, update the gauges. Gossip calls it on a ticker;
// tests and drain sequences call it directly when they need the local
// view current NOW rather than within one interval.
func (n *Node) PollOnce(ctx context.Context) { n.pollPeers(ctx) }

// pollPeers sweeps every peer once, concurrently (one slow peer must
// not stretch the sweep for the rest), then recomputes the divergence
// and liveness gauges.
func (n *Node) pollPeers(ctx context.Context) {
	peers := make([]string, 0, len(n.peers))
	n.mu.Lock()
	for addr := range n.peers {
		peers = append(peers, addr)
	}
	n.mu.Unlock()

	var wg sync.WaitGroup
	for _, addr := range peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			n.pollPeer(ctx, addr)
		}(addr)
	}
	wg.Wait()

	local := n.cfg.Registry.Fingerprint()
	var alive, divergent int64
	n.mu.Lock()
	for _, ps := range n.peers {
		if ps.Alive {
			alive++
		}
		if ps.Fingerprint != local {
			divergent++
		}
	}
	n.mu.Unlock()
	n.cfg.Metrics.Cluster.PeersAlive.Set(alive)
	n.cfg.Metrics.Cluster.Divergence.Set(divergent)
}

// gossipTimeout bounds one status poll. Status documents are a few KB
// served from atomics; a peer that cannot answer in two seconds is down
// for routing purposes.
const gossipTimeout = 2 * time.Second

// pollPeer fetches one peer's status and folds it into the local view.
func (n *Node) pollPeer(ctx context.Context, addr string) {
	n.cfg.Metrics.Cluster.GossipPolls.Inc()
	rctx, cancel := context.WithTimeout(ctx, gossipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+addr+"/v1/cluster", nil)
	if err != nil {
		return
	}
	resp, err := n.client.Do(req)
	if err == nil && resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		err = fmt.Errorf("status %d", resp.StatusCode)
	}
	if err != nil {
		n.cfg.Metrics.Cluster.GossipErrors.Inc()
		n.markDown(addr)
		return
	}
	var st Status
	derr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if derr != nil {
		n.cfg.Metrics.Cluster.GossipErrors.Inc()
		n.markDown(addr)
		return
	}

	var pull bool
	local := n.cfg.Registry.Fingerprint()
	n.mu.Lock()
	if ps := n.peers[addr]; ps != nil {
		ps.Alive = true
		ps.Draining = st.Draining
		ps.Generation = st.Generation
		ps.Fingerprint = st.Fingerprint
		ps.LastSeen = time.Now()
		// Pull rule: the peer serves a snapshot we don't — and one we
		// haven't already kicked a reload for. The second condition
		// makes the pull edge-triggered: a reload is requested once per
		// unseen remote snapshot, not once per poll while the (async)
		// reload is still in flight. If the reload lands us on the same
		// fingerprint, converged; if not (disjoint schema dirs), we
		// don't spin — only the NEXT remote snapshot triggers again.
		if st.Fingerprint != "" && st.Fingerprint != local && ps.lastPulled != st.Fingerprint {
			ps.lastPulled = st.Fingerprint
			pull = true
		}
	}
	n.mu.Unlock()
	if pull {
		n.cfg.Metrics.Cluster.PullReloads.Inc()
		n.log.Info("cluster: peer published new snapshot, reloading",
			"peer", addr, "peer_gen", st.Generation, "peer_fingerprint", st.Fingerprint)
		if n.cfg.PullReload != nil {
			n.cfg.PullReload()
		} else {
			n.cfg.Registry.Reload() //nolint:errcheck // surfaced via registry Errors and OnReload
		}
	}
}
