package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("schema-%03d", i)
	}
	return out
}

func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	shuffled := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.2:8080"}
	a, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across peer orderings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range keys(3000) {
		counts[r.Owner(k)]++
	}
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("peer %s owns nothing: %v", p, counts)
		}
		// Perfect balance is 1000 each; 64 vnodes should keep every
		// peer within a factor of two of fair share.
		if counts[p] < 500 || counts[p] > 2000 {
			t.Errorf("peer %s owns %d of 3000 keys, outside [500, 2000]: %v", p, counts[p], counts)
		}
	}
}

func TestRingCandidates(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		cands := r.Candidates(k, 0)
		if len(cands) != 4 {
			t.Fatalf("Candidates(%q, 0) = %v, want all 4 peers", k, cands)
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("Candidates(%q)[0] = %q, Owner = %q", k, cands[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("Candidates(%q) repeats %q: %v", k, c, cands)
			}
			seen[c] = true
		}
		if got := r.Candidates(k, 2); len(got) != 2 || got[0] != cands[0] || got[1] != cands[1] {
			t.Fatalf("Candidates(%q, 2) = %v, want prefix of %v", k, got, cands)
		}
	}
}

// TestRingRebalanceMinimalMovement is the property the retry order
// depends on: removing a peer moves ONLY the keys that peer owned, and
// each moved key lands on what was its first successor — so proxy
// failover (try successors) and permanent removal (rebuild ring without
// the peer) route identically.
func TestRingRebalanceMinimalMovement(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1", "d:1"}
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const removed = "c:1"
	r2, err := r1.Without(removed)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Peers(); len(got) != 3 {
		t.Fatalf("Without(%q).Peers() = %v", removed, got)
	}
	moved := 0
	for _, k := range keys(1000) {
		before, after := r1.Owner(k), r2.Owner(k)
		if before != removed {
			if after != before {
				t.Fatalf("key %q moved %q -> %q though %q was not its owner", k, before, after, removed)
			}
			continue
		}
		moved++
		if succ := r1.Candidates(k, 2)[1]; after != succ {
			t.Fatalf("key %q reassigned to %q, want first successor %q", k, after, succ)
		}
	}
	if moved == 0 {
		t.Fatal("removed peer owned no keys; test proves nothing")
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"", ""}, 0); err == nil {
		t.Fatal("NewRing with only empty peers succeeded, want error")
	}
}
