package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

// RouteMode selects what a node does with a request for a schema it
// does not own.
type RouteMode int

const (
	// ModeProxy forwards the request to the owner server-side and
	// relays the response. Clients see one address; the fleet is
	// invisible to them.
	ModeProxy RouteMode = iota
	// ModeRedirect answers 307 with the owner's address in Location.
	// Clients that follow redirects land on the owner themselves and
	// can cache the mapping; the node never relays bodies.
	ModeRedirect
)

func (m RouteMode) String() string {
	if m == ModeRedirect {
		return "redirect"
	}
	return "proxy"
}

// ParseMode parses "proxy" or "redirect" (the -route flag values).
func ParseMode(s string) (RouteMode, error) {
	switch s {
	case "proxy":
		return ModeProxy, nil
	case "redirect":
		return ModeRedirect, nil
	}
	return 0, fmt.Errorf("cluster: unknown route mode %q (want proxy or redirect)", s)
}

// Headers the cluster tier speaks.
const (
	// forwardedByHeader marks a proxied hop with the forwarder's
	// address. A node receiving it always serves locally — one hop
	// maximum, no loops even if two nodes' rings momentarily disagree.
	forwardedByHeader = "X-Xsd-Forwarded-By"
	// nodeHeader names the node that produced the response body.
	nodeHeader = "X-Xsd-Cluster-Node"
	// routeHeader records the routing decision on the client-facing
	// response: "local", "proxy:<peer>", "local-fallback" or
	// "redirect:<peer>". Diagnostic only.
	routeHeader = "X-Xsd-Cluster-Route"
)

// Config configures a cluster Node.
type Config struct {
	// Self is this node's address as it appears in Peers (host:port).
	Self string
	// Peers is the full static fleet membership, self included. Every
	// node must be configured with the same set: ownership is computed
	// over this list (never over liveness), so all nodes agree on who
	// owns what even while they disagree on who is up.
	Peers []string
	// Registry is the local schema registry; the node reads its
	// generation and fingerprint for gossip and kicks its reload when a
	// peer publishes a newer snapshot.
	Registry *registry.Registry
	// Metrics receives cluster counters. Required.
	Metrics *obs.Metrics
	// Logger receives routing and gossip events. Nil discards.
	Logger *slog.Logger
	// Mode selects proxy (default) or redirect routing.
	Mode RouteMode
	// GossipInterval is the peer-poll period. Zero means a second —
	// convergence within a couple of seconds at a cost of one tiny GET
	// per peer per second.
	GossipInterval time.Duration
	// Replicas is the ring's virtual-node count (0 = DefaultReplicas).
	Replicas int
	// Client performs proxy and gossip requests. Nil gets a client with
	// a 30s timeout; gossip polls override it with a short per-request
	// deadline either way.
	Client *http.Client
	// PullReload, when set, is called (from the gossip goroutine) to
	// request a local registry reload after a peer published a snapshot
	// we have not seen. It must not block: the server wires it to the
	// same non-blocking kick channel SIGHUP uses. Nil calls
	// Registry.Reload directly.
	PullReload func()
	// MaxProxyBody caps how many request-body bytes the proxy will
	// buffer for replay across retry candidates (0 = 16 MiB, matching
	// the serving tier's own body cap).
	MaxProxyBody int64
}

// peerState is what gossip last learned about one peer.
type peerState struct {
	Alive       bool
	Draining    bool
	Generation  int64
	Fingerprint string
	LastSeen    time.Time
	// lastPulled is the peer fingerprint we most recently kicked a
	// reload for, so one unseen snapshot triggers one pull, not one per
	// poll until the reload lands.
	lastPulled string
}

// Node is one member of an xsdserved fleet. It wraps the local serving
// handler with ring routing, answers /v1/cluster, and runs the gossip
// loop that converges registry snapshots. Construct with New, mount
// Wrap(localHandler), and run Gossip in a goroutine.
type Node struct {
	cfg      Config
	ring     *Ring
	client   *http.Client
	log      *slog.Logger
	maxBody  int64
	draining atomic.Bool

	mu    sync.Mutex
	peers map[string]*peerState // keyed by address, self excluded
}

// New validates the config and builds the node. Self must be listed in
// Peers: a node that is not part of its own ring would proxy every
// request.
func New(cfg Config) (*Node, error) {
	if cfg.Registry == nil || cfg.Metrics == nil {
		return nil, errors.New("cluster: Config.Registry and Config.Metrics are required")
	}
	ring, err := NewRing(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	self := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, ring.Peers())
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		client:  cfg.Client,
		log:     cfg.Logger,
		maxBody: cfg.MaxProxyBody,
		peers:   map[string]*peerState{},
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	if n.maxBody <= 0 {
		n.maxBody = 16 << 20
	}
	for _, p := range ring.Peers() {
		if p != cfg.Self {
			// Until the first poll says otherwise, assume peers are up:
			// a cold fleet should route normally, not local-fallback.
			n.peers[p] = &peerState{Alive: true}
		}
	}
	cfg.Metrics.EnableCluster()
	return n, nil
}

// Ring exposes the node's hash ring (for tests and status reporting).
func (n *Node) Ring() *Ring { return n.ring }

// SetDraining marks the node as draining. A draining node keeps
// answering — shutdown correctness comes from the server's own drain —
// but advertises the state via gossip so peers stop proxying new work
// to it.
func (n *Node) SetDraining(v bool) { n.draining.Store(v) }

// Draining reports the drain flag.
func (n *Node) Draining() bool { return n.draining.Load() }

// routedPrefixes are the endpoints keyed by schema name in the path;
// only these participate in ring routing. Everything else — health,
// metrics, schema listing, SOAP (service names are not registry
// entries) — is served locally by every node.
var routedPrefixes = []string{
	"/v1/validate/",
	"/v1/validate-batch/",
	"/v1/decode/",
	"/v1/encode/",
}

// schemaFromPath extracts the schema segment from a routed path, or ""
// when the path is not ring-routed.
func schemaFromPath(path string) string {
	for _, p := range routedPrefixes {
		if rest, ok := strings.CutPrefix(path, p); ok {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			return rest
		}
	}
	return ""
}

// Wrap layers ring routing over the local serving handler and mounts
// GET /v1/cluster. Requests for schemas this node owns — and every
// non-schema-keyed route — pass straight through to local.
func (n *Node) Wrap(local http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", n.handleStatus)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		n.route(w, r, local)
	})
	return mux
}

func (n *Node) route(w http.ResponseWriter, r *http.Request, local http.Handler) {
	w.Header().Set(nodeHeader, n.cfg.Self)
	// A forwarded request is always served locally: the forwarder made
	// the routing decision, and one hop is the maximum.
	if r.Header.Get(forwardedByHeader) != "" {
		local.ServeHTTP(w, r)
		return
	}
	name := schemaFromPath(r.URL.Path)
	if name == "" {
		local.ServeHTTP(w, r)
		return
	}
	owner := n.ring.Owner(name)
	if owner == n.cfg.Self {
		w.Header().Set(routeHeader, "local")
		local.ServeHTTP(w, r)
		return
	}
	// Unknown schemas are answered locally. Every node compiles every
	// schema, so "unknown here" means "unknown everywhere": clients get
	// the same 404 from any node without a wasted hop, and the response
	// stays correct the moment a reload adds the schema (the next
	// request re-routes).
	if _, ok := n.cfg.Registry.Get(name); !ok {
		w.Header().Set(routeHeader, "local")
		local.ServeHTTP(w, r)
		return
	}
	if n.cfg.Mode == ModeRedirect {
		n.cfg.Metrics.Cluster.Redirects.Inc()
		w.Header().Set(routeHeader, "redirect:"+owner)
		w.Header().Set("Location", "http://"+owner+r.URL.RequestURI())
		// 307 preserves method and body; Go's http.Client replays the
		// body automatically for replayable (bytes/strings) readers.
		w.WriteHeader(http.StatusTemporaryRedirect)
		return
	}
	n.proxy(w, r, name, local)
}

// proxy forwards the request to the schema's owner, retrying down the
// ring's successor list when a candidate is unreachable and falling
// back to serving locally when every remote candidate is out. The body
// is buffered once so each attempt can replay it.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, name string, local http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, n.maxBody+1))
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"reading request body: %v"}`, err), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > n.maxBody {
		// Over the proxy buffer cap. The serving tier enforces the same
		// limit, so answer its 413 here instead of relaying the excess.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(routeHeader, "local")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		fmt.Fprintf(w, `{"error":"request body exceeds the %d-byte limit"}`, n.maxBody)
		return
	}
	attempts := 0
	for _, peer := range n.ring.Candidates(name, 0) {
		if peer == n.cfg.Self {
			continue
		}
		if st := n.peerSnapshot(peer); !st.Alive || st.Draining {
			continue
		}
		if attempts > 0 {
			n.cfg.Metrics.Cluster.ProxyRetries.Inc()
		}
		attempts++
		if n.forwardTo(w, r, peer, body) {
			n.cfg.Metrics.Cluster.Proxied.Inc()
			return
		}
		// forwardTo marked the peer down; try the next candidate.
	}
	// Every remote candidate is down or draining. Answer locally: every
	// node holds every compiled schema precisely so the fleet degrades
	// to correct-but-cold instead of unavailable.
	n.cfg.Metrics.Cluster.ProxyLocal.Inc()
	n.log.Warn("cluster: all candidates down, serving locally", "schema", name)
	w.Header().Set(routeHeader, "local-fallback")
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	local.ServeHTTP(w, r2)
}

// forwardTo relays one buffered request to peer and copies the response
// through. A transport failure marks the peer dead (gossip revives it)
// and reports false so the caller retries; any HTTP response — 404, 429,
// 5xx included — is relayed as-is, because it is the answer.
func (n *Node) forwardTo(w http.ResponseWriter, r *http.Request, peer string, body []byte) bool {
	url := "http://" + peer + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedByHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		n.markDown(peer)
		n.log.Warn("cluster: forward failed", "peer", peer, "err", err)
		return false
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		switch k {
		case "Connection", "Transfer-Encoding", nodeHeader:
			continue
		}
		h[k] = vs
	}
	h.Set(nodeHeader, n.cfg.Self)
	h.Set(routeHeader, "proxy:"+peer)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client went away mid-copy; nothing to do
	return true
}

// markDown records a failed forward so subsequent requests skip the
// peer until gossip observes it answering again.
func (n *Node) markDown(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st := n.peers[peer]; st != nil {
		st.Alive = false
	}
}

// peerSnapshot returns a copy of the peer's last-known state.
func (n *Node) peerSnapshot(peer string) peerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st := n.peers[peer]; st != nil {
		return *st
	}
	return peerState{}
}
