// Package cluster turns a set of xsdserved nodes into a schema-sharded
// fleet with no coordinator and no shared state beyond the schema
// directory itself.
//
// The design exploits what the rest of this repo already guarantees.
// Every node compiles every schema (cold start is parallel and cheap,
// PR 4), so any node can answer any request correctly — sharding is
// purely a cache-locality play. The expensive per-schema state is the
// lazily built warm state: compiled content-model DFAs, lazy-DFA edges,
// binder plans. Routing each schema's traffic to one owner concentrates
// that warmth instead of rebuilding it N times, while the "anyone can
// answer" property remains the failure-mode escape hatch: if the owner
// and every successor are down, the receiving node serves the request
// itself (correct, merely colder).
//
// Ownership comes from a consistent-hash ring (Ring) computed over the
// full static peer list. Liveness never changes ownership — it only
// changes which candidate actually serves — so all nodes agree on the
// routing table by construction, with no membership protocol.
//
// Convergence is the one genuinely distributed concern: after a schema
// directory change, every node must end up serving the same compiled
// snapshot. The registry provides two primitives (PR 10): a generation
// that identifies a content state (no-op reloads do not advance it) and
// a content fingerprint that is equal across nodes iff they compiled
// the same file states. The gossip loop (Node.Gossip) polls peers'
// /v1/cluster documents and kicks a local reload when a peer publishes
// a fingerprint this node has not seen; the divergence gauge reports
// how many peers still differ. There is no push, no leader and no
// quorum — the schema directory is the single source of truth and
// gossip merely propagates "it changed".
package cluster
