package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over the fleet's peer addresses. Every
// peer is placed at Replicas pseudo-random points on a 64-bit circle;
// a schema name is owned by the peer whose first point follows the
// name's hash clockwise. The two properties the cluster is built on:
//
//   - Determinism: two nodes constructing a Ring from the same peer set
//     (any order) agree on every owner, with no coordination. Routing
//     needs no consensus because the ring IS the consensus.
//   - Minimal movement: removing a peer reassigns only the schemas that
//     peer owned — everyone else's cache working set survives the
//     rebalance untouched.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	peers    []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	peer string
}

// DefaultReplicas is the virtual-node count per peer. 64 points per
// peer keeps the expected ownership imbalance in a small fleet within a
// few percent while construction stays microseconds.
const DefaultReplicas = 64

// NewRing builds a ring over peers (duplicates ignored). replicas <= 0
// selects DefaultReplicas. An empty peer set is rejected: a ring that
// owns nothing answers nothing.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, peers: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*replicas)
	for _, p := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-width hash collision between different peers is
		// vanishingly rare; break the tie deterministically anyway so
		// every node sorts identically.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hashKey is 64-bit FNV-1a through a splitmix64 finalizer. FNV alone
// diffuses poorly on short, similar keys (vnode labels differ in a few
// trailing bytes, and raw FNV placed one of three peers on 10% of the
// circle); the finalizer avalanches every input bit across the word.
// Not cryptographic, but uniform enough for placement and — critically —
// stable across processes, architectures and Go versions, unlike
// hash/maphash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Peers returns the ring's peer set, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer that owns key.
func (r *Ring) Owner(key string) string {
	return r.points[r.firstPoint(key)].peer
}

// firstPoint locates the first ring point at or after key's hash,
// wrapping at the top of the circle.
func (r *Ring) firstPoint(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Candidates returns up to max distinct peers for key in ring order:
// the owner first, then each successor. This is the proxy's retry
// sequence — when the owner is down or draining, the next candidate
// inherits the key's traffic, which is exactly the peer that would own
// the key if the owner were removed from the ring (so retry routing and
// rebalance routing agree).
func (r *Ring) Candidates(key string, max int) []string {
	if max <= 0 || max > len(r.peers) {
		max = len(r.peers)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i, n := r.firstPoint(key), len(r.points); len(out) < max && n > 0; n-- {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// Without returns a new ring with peer removed. The returned ring
// preserves every other peer's points, which is what makes the
// minimal-movement property hold.
func (r *Ring) Without(peer string) (*Ring, error) {
	rest := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if p != peer {
			rest = append(rest, p)
		}
	}
	return NewRing(rest, r.replicas)
}
