package cluster_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/schemas"
	"repro/internal/server"
)

// testNode is one in-process fleet member: a real HTTP listener serving
// the full stack (cluster routing wrapped around the serving handler
// over a live registry).
type testNode struct {
	addr string
	ts   *httptest.Server
	reg  *registry.Registry
	met  *obs.Metrics
	node *cluster.Node
}

func writeSchemas(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, n := range names {
		if err := os.WriteFile(filepath.Join(dir, n+".xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// startFleet boots n nodes over one schema directory. The listeners are
// created unstarted first so every node knows the full peer address set
// before any handler is constructed.
func startFleet(t *testing.T, dir string, n int, mode cluster.RouteMode) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(nil)
		nodes[i] = &testNode{ts: ts, addr: ts.Listener.Addr().String()}
		addrs[i] = nodes[i].addr
	}
	for _, tn := range nodes {
		tn.reg = registry.New(dir, nil)
		if _, err := tn.reg.Reload(); err != nil {
			t.Fatal(err)
		}
		tn.met = &obs.Metrics{}
		srv := server.New(server.Config{Registry: tn.reg, Metrics: tn.met})
		node, err := cluster.New(cluster.Config{
			Self:     tn.addr,
			Peers:    addrs,
			Registry: tn.reg,
			Metrics:  tn.met,
			Mode:     mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.ts.Config.Handler = node.Wrap(srv.Handler())
		tn.ts.Start()
		t.Cleanup(tn.ts.Close)
	}
	return nodes
}

// splitByOwner returns the node owning name and the others.
func splitByOwner(nodes []*testNode, name string) (owner *testNode, rest []*testNode) {
	ownerAddr := nodes[0].node.Ring().Owner(name)
	for _, tn := range nodes {
		if tn.addr == ownerAddr {
			owner = tn
		} else {
			rest = append(rest, tn)
		}
	}
	return owner, rest
}

func postXML(t *testing.T, url, doc string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func validVerdict(t *testing.T, body []byte) {
	t.Helper()
	var v struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("verdict is not JSON: %v\n%s", err, body)
	}
	if !v.Valid {
		t.Fatalf("document judged invalid: %s", body)
	}
}

// TestProxyAnyNodeAnswers is the tentpole contract: a request sent to
// ANY node returns the correct verdict, with non-owners forwarding to
// the owner transparently.
func TestProxyAnyNodeAnswers(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	owner, rest := splitByOwner(nodes, "po")

	code, hdr, body := postXML(t, owner.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("owner answered %d: %s", code, body)
	}
	validVerdict(t, body)
	if got := hdr.Get("X-Xsd-Cluster-Route"); got != "local" {
		t.Fatalf("owner route = %q, want local", got)
	}

	for _, tn := range rest {
		code, hdr, body := postXML(t, tn.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
		if code != http.StatusOK {
			t.Fatalf("node %s answered %d: %s", tn.addr, code, body)
		}
		validVerdict(t, body)
		if got := hdr.Get("X-Xsd-Cluster-Route"); got != "proxy:"+owner.addr {
			t.Fatalf("node %s route = %q, want proxy:%s", tn.addr, got, owner.addr)
		}
		if tn.met.Cluster.Proxied.Load() == 0 {
			t.Fatalf("node %s forwarded but Proxied counter is 0", tn.addr)
		}
	}
}

// TestUnknownSchema404Parity: a schema no node serves is 404 from every
// node, answered locally — "unknown here" means "unknown everywhere",
// so no node wastes a hop asking a peer.
func TestUnknownSchema404Parity(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	for _, tn := range nodes {
		code, hdr, body := postXML(t, tn.ts.URL+"/v1/validate/nosuch", schemas.PurchaseOrderDoc)
		if code != http.StatusNotFound {
			t.Fatalf("node %s answered %d for unknown schema: %s", tn.addr, code, body)
		}
		if got := hdr.Get("X-Xsd-Cluster-Route"); got != "local" {
			t.Fatalf("node %s route = %q for unknown schema, want local", tn.addr, got)
		}
		if tn.met.Cluster.Proxied.Load() != 0 {
			t.Fatalf("node %s proxied an unknown-schema request", tn.addr)
		}
	}
}

// TestOwnerDownProxyRetries: with the owner hard-down, a non-owner
// retries the ring successor and still produces a verdict; the second
// request skips the known-dead owner without another retry.
func TestOwnerDownProxyRetries(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	owner, rest := splitByOwner(nodes, "po")
	owner.ts.Close()

	asker := rest[0]
	code, hdr, body := postXML(t, asker.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("answered %d with owner down: %s", code, body)
	}
	validVerdict(t, body)
	route := hdr.Get("X-Xsd-Cluster-Route")
	if route == "proxy:"+owner.addr {
		t.Fatalf("request routed to the dead owner")
	}
	if !strings.HasPrefix(route, "proxy:") && route != "local-fallback" {
		t.Fatalf("route = %q, want a successor proxy or local-fallback", route)
	}
	retries := asker.met.Cluster.ProxyRetries.Load()
	if retries == 0 {
		t.Fatal("owner was down but ProxyRetries is 0")
	}

	// Second request: the owner is now marked dead, so the successor is
	// tried first — no additional retry.
	code, _, body = postXML(t, asker.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("second request answered %d: %s", code, body)
	}
	validVerdict(t, body)
	if got := asker.met.Cluster.ProxyRetries.Load(); got != retries {
		t.Fatalf("ProxyRetries moved %d -> %d on a request that should skip the dead owner", retries, got)
	}
}

// TestAllPeersDownLocalFallback: a node whose every remote candidate is
// gone serves the request itself — degraded to cold, never unavailable.
func TestAllPeersDownLocalFallback(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	owner, rest := splitByOwner(nodes, "po")

	survivor := rest[0]
	owner.ts.Close()
	rest[1].ts.Close()

	code, hdr, body := postXML(t, survivor.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("survivor answered %d: %s", code, body)
	}
	validVerdict(t, body)
	if got := hdr.Get("X-Xsd-Cluster-Route"); got != "local-fallback" {
		t.Fatalf("route = %q, want local-fallback", got)
	}
	if survivor.met.Cluster.ProxyLocal.Load() == 0 {
		t.Fatal("ProxyLocal counter is 0 after a local fallback")
	}
}

// TestDrainingPeerSkipped: once gossip reports the owner draining, new
// forwards go to the successor even though the owner still answers.
func TestDrainingPeerSkipped(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	owner, rest := splitByOwner(nodes, "po")
	owner.node.SetDraining(true)

	asker := rest[0]
	asker.node.PollOnce(context.Background())

	code, hdr, body := postXML(t, asker.ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("answered %d with owner draining: %s", code, body)
	}
	validVerdict(t, body)
	route := hdr.Get("X-Xsd-Cluster-Route")
	if route == "proxy:"+owner.addr {
		t.Fatal("request proxied to a draining owner")
	}
}

// TestForwardedRequestServedLocally: the loop-prevention header forces
// local serving even on a node that does not own the schema.
func TestForwardedRequestServedLocally(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	_, rest := splitByOwner(nodes, "po")

	tn := rest[0]
	req, err := http.NewRequest(http.MethodPost, tn.ts.URL+"/v1/validate/po", strings.NewReader(schemas.PurchaseOrderDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Xsd-Forwarded-By", "somebody:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request answered %d: %s", resp.StatusCode, body)
	}
	validVerdict(t, body)
	if got := resp.Header.Get("X-Xsd-Cluster-Node"); got != tn.addr {
		t.Fatalf("forwarded request served by %q, want the receiving node %s", got, tn.addr)
	}
	if tn.met.Cluster.Proxied.Load() != 0 {
		t.Fatal("forwarded request was proxied again (loop)")
	}
}

// TestRedirectMode: non-owners answer 307 with the owner in Location;
// following it manually lands on the owner and yields the verdict.
func TestRedirectMode(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeRedirect)
	owner, rest := splitByOwner(nodes, "po")

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Post(rest[0].ts.URL+"/v1/validate/po", "application/xml", strings.NewReader(schemas.PurchaseOrderDoc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner answered %d in redirect mode, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc != "http://"+owner.addr+"/v1/validate/po" {
		t.Fatalf("Location = %q, want the owner %s", loc, owner.addr)
	}
	if rest[0].met.Cluster.Redirects.Load() == 0 {
		t.Fatal("Redirects counter is 0 after a 307")
	}

	// A stock client follows the 307 (replaying the body) end to end.
	code, hdr, body := postXML(t, rest[0].ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK {
		t.Fatalf("followed redirect answered %d: %s", code, body)
	}
	validVerdict(t, body)
	if got := hdr.Get("X-Xsd-Cluster-Node"); got != owner.addr {
		t.Fatalf("redirect landed on %q, want owner %s", got, owner.addr)
	}
}

// TestBatchEndpointRoutes: /v1/validate-batch is schema-keyed and rides
// the same ring.
func TestBatchEndpointRoutes(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	owner, rest := splitByOwner(nodes, "po")

	breq, err := json.Marshal(map[string][]string{
		"documents": {schemas.PurchaseOrderDoc, "<not-xml", schemas.PurchaseOrderDoc},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(rest[0].ts.URL+"/v1/validate-batch/po", "application/json", strings.NewReader(string(breq)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Xsd-Cluster-Route"); got != "proxy:"+owner.addr {
		t.Fatalf("batch route = %q, want proxy:%s", got, owner.addr)
	}
	var br struct {
		Count   int `json:"count"`
		Valid   int `json:"valid"`
		Invalid int `json:"invalid"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch response not JSON: %v\n%s", err, body)
	}
	if br.Count != 3 || br.Valid != 2 || br.Invalid != 1 {
		t.Fatalf("batch verdicts = %+v, want count 3, valid 2, invalid 1", br)
	}
}

// TestGossipConvergence: one node reloads a changed schema directory;
// gossip pulls the others to the same generation and fingerprint with
// divergence settling back to zero.
func TestGossipConvergence(t *testing.T) {
	dir := t.TempDir()
	writeSchemas(t, dir, "po")
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, tn := range nodes {
		tn := tn
		go func() {
			// Tight interval: the test wants convergence in milliseconds.
			for ctx.Err() == nil {
				tn.node.PollOnce(ctx)
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}

	// Everyone starts converged: same dir, same fingerprint, gen 1.
	waitFor(t, "initial convergence", func() bool {
		return converged(nodes) && nodes[0].reg.Generation() == 1
	})

	// Change the schema content (size change guarantees detection) and
	// SIGHUP-equivalent reload on node 0 only.
	v2 := strings.Replace(schemas.PurchaseOrderXSD,
		`name="comment"`, `name="comment" id="v2"`, 1)
	if v2 == schemas.PurchaseOrderXSD {
		t.Fatal("schema rewrite did not change anything")
	}
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(v2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].reg.Generation() != 2 {
		t.Fatalf("node 0 generation = %d after a real change, want 2", nodes[0].reg.Generation())
	}

	waitFor(t, "post-change convergence", func() bool {
		if !converged(nodes) {
			return false
		}
		for _, tn := range nodes {
			if tn.reg.Generation() != 2 {
				return false
			}
		}
		return true
	})
	for _, tn := range nodes[1:] {
		if tn.met.Cluster.PullReloads.Load() == 0 {
			t.Errorf("node %s converged without recording a pull reload", tn.addr)
		}
	}
	// The gauge is recomputed per sweep from what peers last REPORTED,
	// so it settles one poll after the registries themselves converge.
	waitFor(t, "divergence gauges to settle", func() bool {
		for _, tn := range nodes {
			if tn.met.Cluster.Divergence.Load() != 0 {
				return false
			}
		}
		return true
	})
}

func converged(nodes []*testNode) bool {
	fp := nodes[0].reg.Fingerprint()
	for _, tn := range nodes[1:] {
		if tn.reg.Fingerprint() != fp {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterStatus: /v1/cluster reports identity, ownership and the
// peer table; the fleet's owned sets partition the schema list.
func TestClusterStatus(t *testing.T) {
	dir := t.TempDir()
	all := []string{"invoice", "po", "shipping", "stock"}
	writeSchemas(t, dir, all...)
	nodes := startFleet(t, dir, 3, cluster.ModeProxy)
	for _, tn := range nodes {
		tn.node.PollOnce(context.Background())
	}

	ownedBy := map[string]string{}
	for _, tn := range nodes {
		resp, err := http.Get(tn.ts.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var st cluster.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Self != tn.addr {
			t.Fatalf("status self = %q, want %s", st.Self, tn.addr)
		}
		if st.Mode != "proxy" {
			t.Fatalf("status mode = %q, want proxy", st.Mode)
		}
		if st.Schemas != len(all) {
			t.Fatalf("status schemas = %d, want %d", st.Schemas, len(all))
		}
		if len(st.Peers) != 2 {
			t.Fatalf("status lists %d peers, want 2", len(st.Peers))
		}
		for _, p := range st.Peers {
			if !p.Alive {
				t.Fatalf("node %s reports peer %s dead in a healthy fleet", tn.addr, p.Addr)
			}
		}
		if st.Divergence != 0 {
			t.Fatalf("node %s reports divergence %d in a converged fleet", tn.addr, st.Divergence)
		}
		for _, name := range st.Owned {
			if prev, dup := ownedBy[name]; dup {
				t.Fatalf("schema %q owned by both %s and %s", name, prev, tn.addr)
			}
			ownedBy[name] = tn.addr
		}
	}
	for _, name := range all {
		if ownedBy[name] == "" {
			t.Fatalf("schema %q owned by nobody: %v", name, ownedBy)
		}
	}
}
