// This doc.go is hand-written and survives regeneration; the sibling
// wildgen.go and wildgen_validator.go are emitted by cmd/vdomgen (run
// internal/gen/regen to refresh them) from the wildcard envelope
// schema — the one bundled schema whose content model is a lax xsd:any
// and whose attribute set is open via xsd:anyAttribute, so the
// compiled validator's wildcard paths (namespace-mask DFA classes, lax
// global-element dispatch, raw-subtree decode) are exercised at
// runtime, not just emitted.
//
// # Role in the pipeline
//
// The package is a checked-in output of the codegen stage (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml), kept in
// sync with the generator by codegen.TestGoldenGeneratedPackages and
// differentially verified against the interpreted walk by
// TestGeneratedMatchesInterpreted.
//
// # Concurrency
//
// As with all V-DOM bindings, build and marshal each typed tree from a
// single goroutine; the underlying schema and compiled content models
// are safe to share (see package vdom).
package wildgen
