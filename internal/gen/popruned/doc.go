// This doc.go is hand-written and survives regeneration; the sibling
// popruned.go and popruned_validator.go are emitted by cmd/vdomgen
// (run internal/gen/regen to refresh them) from the purchase-order
// schema with the corpus-pruning pass on: the instance documents under
// testdata/corpus/po/ never use <comment>, so its generated validator
// and decoder are two-line stubs delegating to the interpreted walk —
// the differential tests prove verdicts stay byte-identical anyway.
//
// # Role in the pipeline
//
// The package is a checked-in output of the codegen stage (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml), kept in
// sync with the generator by codegen.TestGoldenGeneratedPackages and
// with its corpus by TestPrunedCorpusInSync.
//
// # Concurrency
//
// As with all V-DOM bindings, build and marshal each typed tree from a
// single goroutine; the underlying schema and compiled content models
// are safe to share (see package vdom).
package popruned
