// Command regen regenerates the checked-in V-DOM binding packages under
// internal/gen/ from the schemas embedded in internal/schemas and
// internal/wml. The codegen golden tests verify the checked-in files stay
// in sync with the generator. Hand-written doc.go files in the binding
// packages are left untouched.
//
// Run from the repository root:
//
//	go run ./internal/gen/regen
package main
