// Command regen regenerates the checked-in generated packages under
// internal/gen/ — for every target in internal/gen/manifest both the
// V-DOM binding file (<pkg>.go) and the ahead-of-time compiled
// validator (<pkg>_validator.go), plus the cmbench compiled matchers —
// from the schemas embedded in internal/schemas and internal/wml.
// Targets with a pruning corpus (popruned) read their instance
// documents from testdata/corpus/. The codegen golden tests verify the
// checked-in files stay in sync with the generator byte for byte.
// Hand-written files in the generated packages (doc.go, models.go) are
// left untouched.
//
// Run from the repository root:
//
//	go run ./internal/gen/regen
package main
