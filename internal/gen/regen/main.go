package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codegen"
	"repro/internal/normalize"
	"repro/internal/schemas"
	"repro/internal/wml"
)

// Targets lists the generated binding packages. Exported so the golden
// test can iterate the same list.
var targets = []struct {
	Pkg     string
	Source  string
	Comment string
}{
	{"pogen", schemas.PurchaseOrderXSD, "the purchase order schema (paper Fig. 2/3)"},
	{"evolvedgen", schemas.EvolvedPurchaseOrderXSD, "the evolved purchase order schema (paper §3 choice example)"},
	{"derivgen", schemas.AddressDerivationXSD, "the address derivation schema (paper §3 extension/substitution examples)"},
	{"wmlgen", wml.Schema, "the WML subset schema (paper §5)"},
	{"nsgen", schemas.NamespacedOrderXSD, "the namespaced order schema (namespace-handling coverage)"},
	{"mixgen", schemas.ComplexGroupsXSD, "the nested-groups schema (group-promotion coverage)"},
}

func main() {
	root := "internal/gen"
	for _, t := range targets {
		code, err := codegen.Generate(t.Source, codegen.Options{
			Package:       t.Pkg,
			Scheme:        normalize.SchemePaper,
			SchemaComment: t.Comment,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "regen %s: %v\n", t.Pkg, err)
			os.Exit(1)
		}
		dir := filepath.Join(root, t.Pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out := filepath.Join(dir, t.Pkg+".go")
		if err := os.WriteFile(out, []byte(code), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(code))
	}
}
