package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codegen"
	"repro/internal/gen/cmbench"
	"repro/internal/gen/manifest"
	"repro/internal/normalize"
)

func main() {
	root := "internal/gen"
	for _, t := range manifest.Targets {
		opts := codegen.Options{
			Package:       t.Pkg,
			Scheme:        normalize.SchemePaper,
			SchemaComment: t.Comment,
		}
		if t.CorpusGlob != "" {
			corpus, err := manifest.LoadCorpus(".", t.CorpusGlob)
			if err != nil {
				fatal(fmt.Errorf("regen %s: corpus: %w", t.Pkg, err))
			}
			if len(corpus) == 0 {
				fatal(fmt.Errorf("regen %s: corpus glob %q matched nothing", t.Pkg, t.CorpusGlob))
			}
			for _, d := range corpus {
				opts.Corpus = append(opts.Corpus, codegen.CorpusDoc{Name: d.Name, Source: d.Source})
			}
		}
		bindings, err := codegen.Generate(t.Source, opts)
		if err != nil {
			fatal(fmt.Errorf("regen %s: %w", t.Pkg, err))
		}
		vcode, err := codegen.GenerateValidator(t.Source, opts)
		if err != nil {
			fatal(fmt.Errorf("regen %s: validator: %w", t.Pkg, err))
		}
		dir := filepath.Join(root, t.Pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		write(filepath.Join(dir, t.Pkg+".go"), bindings)
		write(filepath.Join(dir, t.Pkg+"_validator.go"), vcode)
	}
	for _, t := range manifest.WSDLTargets {
		code, err := codegen.GenerateWSDLStubs(t.Source, codegen.WSDLOptions{
			Package: t.Pkg, Service: t.Service, Comment: t.Comment,
		})
		if err != nil {
			fatal(fmt.Errorf("regen %s: %w", t.Pkg, err))
		}
		dir := filepath.Join(root, t.Pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		write(filepath.Join(dir, t.Pkg+".go"), code)
	}
	// Compiled matchers for the E14 stepper benchmark.
	matchers, err := codegen.GenerateMatchers("cmbench", []codegen.MatcherSpec{
		{Name: "Items", Particle: cmbench.ItemsModel(), Comment: "the purchase-order items model (item*)"},
		{Name: "WideChoice", Particle: cmbench.WideChoiceModel(), Comment: "the scaled-down E10 synthetic wide-choice model (16 groups x 8 alternatives)"},
	})
	if err != nil {
		fatal(fmt.Errorf("regen cmbench: %w", err))
	}
	write(filepath.Join(root, "cmbench", "matchers.go"), matchers)
}

func write(path, code string) {
	if err := os.WriteFile(path, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
