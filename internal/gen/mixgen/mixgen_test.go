package mixgen

import (
	"strings"
	"testing"

	"repro/internal/vdom"
)

// buildReport assembles a report exercising every promoted-group shape:
// the choice (ReportCC2Group), the sequence group inside the choice
// (FirstANDlastGroup), and the repeated sequence group (KeyANDvalueList).
func buildReport(t *testing.T, alt ReportCC2Group) *ReportElement {
	t.Helper()
	d := NewDocument()
	r := d.CreateReportType(d.CreateTitle("Q3"), alt)
	r.AddKeyANDvalueList(d.CreateKeyANDvalueList(d.CreateKey("region"), d.CreateValue("EMEA")))
	r.AddKeyANDvalueList(d.CreateKeyANDvalueList(d.CreateKey("status"), d.CreateValue("final")))
	entry := d.CreateEntryTypeType(d.MustWhen("2026-07-06"))
	if err := entry.SetId("e1"); err != nil {
		t.Fatal(err)
	}
	r.AddEntry(d.CreateEntry(entry))
	if err := r.SetVersion("2"); err != nil {
		t.Fatal(err)
	}
	return d.CreateReport(r)
}

// TestChoiceWithSummaryAlternative: the element alternative.
func TestChoiceWithSummaryAlternative(t *testing.T) {
	d := NewDocument()
	root := buildReport(t, d.CreateSummary("all good"))
	if err := RT.Verify(root); err != nil {
		t.Fatalf("summary alternative: %v", err)
	}
	out, _ := vdom.MarshalString(root)
	for _, want := range []string{
		"<summary>all good</summary>",
		"<key>region</key><value>EMEA</value>",
		"<key>status</key><value>final</value>",
		`<entry id="e1"><when>2026-07-06</when></entry>`,
		`version="2"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestChoiceWithSequenceGroupAlternative: the nested-sequence alternative —
// a promoted group struct filling a choice slot (the paper's normal-form
// rule 3 in action).
func TestChoiceWithSequenceGroupAlternative(t *testing.T) {
	d := NewDocument()
	grp := d.CreateFirstANDlastGroup(d.CreateFirst("Ada"), d.CreateLast("Lovelace"))
	root := buildReport(t, grp)
	if err := RT.Verify(root); err != nil {
		t.Fatalf("sequence-group alternative: %v", err)
	}
	out, _ := vdom.MarshalString(root)
	if !strings.Contains(out, "<first>Ada</first><last>Lovelace</last>") {
		t.Errorf("group members missing:\n%s", out)
	}
	// The group contributes its members without a wrapper element.
	if strings.Contains(out, "FirstANDlast") {
		t.Errorf("group leaked a wrapper element:\n%s", out)
	}
}

// TestSequenceGroupRequiredMembers: a half-built group fails at marshal.
func TestSequenceGroupRequiredMembers(t *testing.T) {
	d := NewDocument()
	grp := d.CreateFirstANDlastGroup(d.CreateFirst("only"), nil)
	root := buildReport(t, grp)
	if _, err := vdom.Marshal(root); err == nil {
		t.Fatal("missing last member should fail at marshal")
	}
}

// TestRepeatedGroupIsOptional: zero key/value pairs are fine (minOccurs=0).
func TestRepeatedGroupIsOptional(t *testing.T) {
	d := NewDocument()
	r := d.CreateReportType(d.CreateTitle("t"), d.CreateSummary("s"))
	if err := RT.Verify(d.CreateReport(r)); err != nil {
		t.Fatalf("bare report: %v", err)
	}
}

// TestAnonymousEntryType: the promoted anonymous complex type with its
// date member and ID attribute.
func TestAnonymousEntryType(t *testing.T) {
	d := NewDocument()
	if _, err := d.CreateWhen("not a date"); err == nil {
		t.Error("bad date accepted")
	}
	e := d.CreateEntryTypeType(d.MustWhen("2026-01-01"))
	if err := e.SetId("has space"); err == nil {
		t.Error("bad ID accepted")
	}
}

// TestChoiceSealed: key elements cannot fill the choice slot.
func TestChoiceSealed(t *testing.T) {
	d := NewDocument()
	if _, ok := any(d.CreateKey("x")).(ReportCC2Group); ok {
		t.Error("keyElement must not satisfy the report choice")
	}
	if _, ok := any(d.CreateSummary("x")).(ReportCC2Group); !ok {
		t.Error("summaryElement should satisfy the report choice")
	}
	if _, ok := any(d.CreateFirstANDlastGroup(d.CreateFirst("a"), d.CreateLast("b"))).(ReportCC2Group); !ok {
		t.Error("the sequence group should satisfy the report choice")
	}
}
