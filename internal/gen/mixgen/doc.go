// This doc.go is hand-written and survives regeneration; the sibling
// mixgen.go is emitted by cmd/vdomgen (run internal/gen/regen to
// refresh it) from the nested-groups schema (group-promotion coverage).
//
// # Role in the pipeline
//
// The package is a checked-in output of the codegen stage (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml), kept in
// sync with the generator by codegen.TestGoldenGeneratedPackages.
//
// # Concurrency
//
// As with all V-DOM bindings, build and marshal each typed tree from a
// single goroutine; the underlying schema and compiled content models
// are safe to share (see package vdom).
package mixgen
