// Package manifest is the single list of checked-in generated binding
// packages under internal/gen/. The regen command and the codegen golden
// tests both iterate it, so a schema added here is generated and
// golden-guarded in one step.
package manifest

import (
	"os"
	"path/filepath"
	"sort"

	"repro/internal/schemas"
	"repro/internal/wml"
)

// Target describes one generated package: its embedded schema, the
// comment stamped into the file header, and (optionally) the instance
// corpus that prunes its generated validator.
type Target struct {
	// Pkg is the package (and directory) name under internal/gen/.
	Pkg string
	// Source is the schema document compiled into the package.
	Source string
	// Comment is the human-readable schema description in the header.
	Comment string
	// CorpusGlob, when non-empty, is a repo-root-relative glob of
	// instance documents; the generated validator is pruned to the
	// declarations that corpus reaches.
	CorpusGlob string
}

// Targets lists every checked-in generated package, in generation order.
var Targets = []Target{
	{Pkg: "pogen", Source: schemas.PurchaseOrderXSD, Comment: "the purchase order schema (paper Fig. 2/3)"},
	{Pkg: "evolvedgen", Source: schemas.EvolvedPurchaseOrderXSD, Comment: "the evolved purchase order schema (paper §3 choice example)"},
	{Pkg: "derivgen", Source: schemas.AddressDerivationXSD, Comment: "the address derivation schema (paper §3 extension/substitution examples)"},
	{Pkg: "wmlgen", Source: wml.Schema, Comment: "the WML subset schema (paper §5)"},
	{Pkg: "nsgen", Source: schemas.NamespacedOrderXSD, Comment: "the namespaced order schema (namespace-handling coverage)"},
	{Pkg: "mixgen", Source: schemas.ComplexGroupsXSD, Comment: "the nested-groups schema (group-promotion coverage)"},
	{Pkg: "wildgen", Source: schemas.WildcardEnvelopeXSD, Comment: "the wildcard envelope schema (lax any/anyAttribute coverage)"},
	{Pkg: "popruned", Source: schemas.PurchaseOrderXSD, Comment: "the purchase order schema, validator pruned to the shipping corpus", CorpusGlob: "testdata/corpus/po/*.xml"},
}

// WSDLTarget describes one generated SOAP stub package: its embedded
// WSDL, the service it binds, and the header comment.
type WSDLTarget struct {
	// Pkg is the package (and directory) name under internal/gen/.
	Pkg string
	// Source is the WSDL document compiled into the package.
	Source string
	// Service is the wsdl:service the stubs bind.
	Service string
	// Comment is the human-readable WSDL description in the header.
	Comment string
}

// WSDLTargets lists every checked-in generated stub package.
var WSDLTargets = []WSDLTarget{
	{Pkg: "calcgen", Source: schemas.CalcWSDL, Service: "Calc", Comment: "the calculator WSDL (SOAP 1.1 corpus service)"},
	{Pkg: "ordersgen", Source: schemas.OrdersWSDL, Service: "Orders", Comment: "the orders WSDL (SOAP 1.2, two embedded schemas)"},
}

// CorpusDoc is one pruning-corpus instance document.
type CorpusDoc struct {
	// Name is the document's base filename, stamped into the generated
	// header.
	Name string
	// Source is the document text.
	Source string
}

// LoadCorpus reads a target's pruning corpus. root is the repository
// root (regen runs there; tests pass a relative prefix). The result is
// sorted by filename so generation is deterministic.
func LoadCorpus(root, glob string) ([]CorpusDoc, error) {
	paths, err := filepath.Glob(filepath.Join(root, glob))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var docs []CorpusDoc
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		docs = append(docs, CorpusDoc{Name: filepath.Base(p), Source: string(src)})
	}
	return docs, nil
}
