package evolvedgen

import (
	"strings"
	"testing"

	"repro/internal/vdom"
)

// buildOrder constructs an order using the given address alternative — the
// paper's Fig. 6 scenario: the first sequence member is the sealed choice
// PurchaseOrderTypeCC1Group, fillable only by singAddr or twoAddr.
func buildOrder(t *testing.T, addr PurchaseOrderTypeCC1Group) *PurchaseOrderElement {
	t.Helper()
	d := NewDocument()
	item := d.CreateItemTypeType(d.CreateProductName("p"), d.MustQuantity("1"), d.MustUSPrice("1.5"))
	if err := item.SetPartNum("926-AA"); err != nil {
		t.Fatal(err)
	}
	items := d.CreateItemsType().AddItem(d.CreateItem(item))
	po := d.CreatePurchaseOrderTypeType(addr, d.CreateItems(items))
	return d.CreatePurchaseOrder(po)
}

func usAddr(d *Document) *USAddressType {
	return d.CreateUSAddressType(
		d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"),
		d.CreateState("st"), d.MustZip("1"))
}

// TestChoiceAlternatives: both alternatives of the Fig. 6 choice marshal
// to valid documents.
func TestChoiceAlternatives(t *testing.T) {
	d := NewDocument()

	sing := d.CreateSingAddr(usAddr(d))
	if err := RT.Verify(buildOrder(t, sing)); err != nil {
		t.Errorf("singAddr alternative: %v", err)
	}
	out, _ := vdom.MarshalString(buildOrder(t, sing))
	if !strings.Contains(out, "<singAddr>") {
		t.Errorf("output missing singAddr:\n%s", out)
	}

	two := d.CreateTwoAddr(d.CreateTwoAddressType(
		d.CreateFirst(usAddr(d)), d.CreateSecond(usAddr(d))))
	if err := RT.Verify(buildOrder(t, two)); err != nil {
		t.Errorf("twoAddr alternative: %v", err)
	}
	out, _ = vdom.MarshalString(buildOrder(t, two))
	if !strings.Contains(out, "<twoAddr>") || !strings.Contains(out, "<second>") {
		t.Errorf("output missing twoAddr members:\n%s", out)
	}
}

// TestChoiceIsSealed documents the static guarantee: the choice interface
// has an unexported marker method, so no type outside the generated
// package can satisfy it, and only the two alternatives do. (That a
// *CommentElement does not satisfy PurchaseOrderTypeCC1Group is a
// compile-time fact — the commented line below does not compile.)
func TestChoiceIsSealed(t *testing.T) {
	var g PurchaseOrderTypeCC1Group
	d := NewDocument()
	g = d.CreateSingAddr(usAddr(d))
	_ = g
	g = d.CreateTwoAddr(d.CreateTwoAddressType(d.CreateFirst(usAddr(d)), d.CreateSecond(usAddr(d))))
	_ = g
	// g = d.CreateComment("x") // compile error: *CommentElement does not implement PurchaseOrderTypeCC1Group
	// g = d.CreateItems(...)   // compile error likewise

	// The marker is unexported: assert the method set via the interface.
	if _, ok := any(d.CreateComment("x")).(PurchaseOrderTypeCC1Group); ok {
		t.Error("comment must not satisfy the address choice")
	}
}

func TestChoiceGetterReturnsDynamicAlternative(t *testing.T) {
	d := NewDocument()
	sing := d.CreateSingAddr(usAddr(d))
	root := buildOrder(t, sing)
	got := root.Content().PurchaseOrderTypeCC1Group()
	if _, ok := got.(*SingAddrElement); !ok {
		t.Errorf("choice getter: got %T", got)
	}
}

func TestFig6DumpShowsGroupAlternative(t *testing.T) {
	d := NewDocument()
	root := buildOrder(t, d.CreateSingAddr(usAddr(d)))
	dump := vdom.Dump(root)
	if !strings.Contains(dump, "singAddrElement") {
		t.Errorf("dump missing singAddrElement:\n%s", dump)
	}
}
