// pairs.go is hand-written and survives regeneration (like doc.go): it
// derives a schema-evolution corpus from the generated SchemaSource
// constants, for the compatibility classifier (internal/compat) and the
// registry's reload gates to test against.

package evolvedgen

import (
	"strings"

	"repro/internal/gen/pogen"
)

// SchemaPair couples an old schema version with an evolved one, plus the
// compatibility level a correct classifier must assign to the evolution
// old → new: "backward" (new accepts every old document), "forward" (old
// accepts every new document), "full" (both) or "none" (neither).
// Reversing a pair swaps backward and forward.
type SchemaPair struct {
	Name string
	Old  string
	New  string
	Want string
}

// Pairs returns the evolution corpus: widening evolutions of the paper's
// purchase-order schema (each must classify backward), one no-op
// evolution (full), and the paper's choice rewrite — pogen.SchemaSource
// against this package's SchemaSource — which renames the address
// elements and therefore breaks both directions (none).
//
// The widened versions are produced by anchored text replacement on the
// generated source; mustEvolve panics if regeneration moved an anchor,
// so the corpus can never silently drift out of sync with the
// generators.
func Pairs() []SchemaPair {
	po := pogen.SchemaSource
	return []SchemaPair{
		{
			Name: "unchanged",
			Old:  po,
			New:  po,
			Want: "full",
		},
		{
			Name: "optional element added",
			Old:  po,
			New: mustEvolve(po,
				`<xsd:element name="items" type="Items"/>`,
				`<xsd:element name="items" type="Items"/>
      <xsd:element name="deliveryNotes" type="xsd:string" minOccurs="0"/>`),
			Want: "backward",
		},
		{
			Name: "comment repetition widened",
			Old:  po,
			New: mustEvolve(po,
				`<xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>`,
				`<xsd:element ref="comment" minOccurs="0" maxOccurs="unbounded"/>
      <xsd:element name="items" type="Items"/>`),
			Want: "backward",
		},
		{
			Name: "partNum pattern dropped",
			Old:  po,
			New: mustEvolve(po,
				`<xsd:attribute name="partNum" type="SKU" use="required"/>`,
				`<xsd:attribute name="partNum" type="xsd:string" use="required"/>`),
			Want: "backward",
		},
		{
			Name: "quantity bound dropped",
			Old:  po,
			New: mustEvolve(po,
				`<xsd:maxExclusive value="100"/>`,
				``),
			Want: "backward",
		},
		{
			Name: "orderDate attribute made required",
			Old:  po,
			New: mustEvolve(po,
				`<xsd:attribute name="orderDate" type="xsd:date"/>`,
				`<xsd:attribute name="orderDate" type="xsd:date" use="required"/>`),
			Want: "forward",
		},
		{
			Name: "paper choice rewrite",
			Old:  po,
			New:  SchemaSource,
			Want: "none",
		},
	}
}

// mustEvolve applies one anchored replacement, panicking when the anchor
// is absent — which means a generator change invalidated the corpus.
func mustEvolve(src, anchor, replacement string) string {
	if !strings.Contains(src, anchor) {
		panic("evolvedgen: evolution anchor not found in generated schema source: " + anchor)
	}
	return strings.Replace(src, anchor, replacement, 1)
}
