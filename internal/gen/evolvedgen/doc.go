// This doc.go is hand-written and survives regeneration; the sibling
// evolvedgen.go is emitted by cmd/vdomgen (run internal/gen/regen to
// refresh it) from the evolved purchase-order schema (paper §3 choice-evolution example).
//
// The hand-written pairs.go also survives regeneration: Pairs derives a
// schema-evolution corpus (old/new schema sources with known
// backward/forward/full/none verdicts) from the generated SchemaSource
// constants, which the compatibility classifier (internal/compat) and
// the registry's reload gates test against — each pair is checked
// forward and reversed, since reversing a pair must swap backward and
// forward.
//
// # Role in the pipeline
//
// The package is a checked-in output of the codegen stage (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml), kept in
// sync with the generator by codegen.TestGoldenGeneratedPackages.
//
// # Concurrency
//
// As with all V-DOM bindings, build and marshal each typed tree from a
// single goroutine; the underlying schema and compiled content models
// are safe to share (see package vdom).
package evolvedgen
