package derivgen

import (
	"strings"
	"testing"

	"repro/internal/vdom"
)

func baseAddr(d *Document) *AddressType {
	return d.CreateAddressType(d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"))
}

func usAddr(d *Document) *USAddressType {
	return d.CreateUSAddressType(
		d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"),
		d.CreateState("CA"), d.CreateZip("90952"))
}

// TestTypeExtensionInheritance: a USAddressType value fills an
// AddressType slot (paper §3: "instances of the subtype are allowed at
// locations where objects of the super type are required").
func TestTypeExtensionInheritance(t *testing.T) {
	d := NewDocument()
	// Both satisfy the derivation interface.
	var slot AddressTypeIface = baseAddr(d)
	_ = slot
	slot = usAddr(d)

	// Base content.
	el := d.CreateAddress(baseAddr(d))
	if err := RT.Verify(el); err != nil {
		t.Errorf("base address: %v", err)
	}
	out, _ := vdom.MarshalString(el)
	if strings.Contains(out, "xsi:type") {
		t.Errorf("base content must not carry xsi:type:\n%s", out)
	}

	// Derived content in a base slot gets xsi:type and validates.
	el = d.CreateAddress(usAddr(d))
	out, err := vdom.MarshalString(el)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `xsi:type="USAddress"`) {
		t.Errorf("derived content should carry xsi:type:\n%s", out)
	}
	if !strings.Contains(out, "<state>CA</state>") {
		t.Errorf("inherited+extension members missing:\n%s", out)
	}
	if verr := RT.Verify(el); verr != nil {
		t.Errorf("xsi:type document: %v", verr)
	}
}

// TestSubstitutionGroup: shipComment and customerComment can stand
// wherever comment is declared (§3's substitution-group example).
func TestSubstitutionGroup(t *testing.T) {
	d := NewDocument()
	block := d.CreateCommentBlockType()
	var c CommentSubst = d.CreateComment("plain")
	block.AddComment(c)
	block.AddComment(d.CreateShipComment("from shipping"))
	block.AddComment(d.CreateCustomerComment("from the customer"))
	el := d.CreateCommentBlock(block)
	if err := RT.Verify(el); err != nil {
		t.Fatalf("substitution members: %v", err)
	}
	out, _ := vdom.MarshalString(el)
	for _, want := range []string{"<comment>plain</comment>", "<shipComment>", "<customerComment>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAbstractElement: the abstract head <note> has no constructor (a
// compile-time property); its member shipNote fills note slots.
func TestAbstractElement(t *testing.T) {
	d := NewDocument()
	block := d.CreateNoteBlockType()
	block.AddNote(d.CreateShipNote("packed"))
	// d.CreateNote("x") // compile error: no constructor for the abstract element
	el := d.CreateNoteBlock(block)
	if err := RT.Verify(el); err != nil {
		t.Fatalf("abstract substitution: %v", err)
	}
	out, _ := vdom.MarshalString(el)
	if !strings.Contains(out, "<shipNote>packed</shipNote>") {
		t.Errorf("output: %s", out)
	}
}

func TestSealedSubstInterface(t *testing.T) {
	d := NewDocument()
	// A name element is not in comment's substitution group.
	if _, ok := any(d.CreateName("x")).(CommentSubst); ok {
		t.Error("nameElement must not satisfy CommentSubst")
	}
	if _, ok := any(d.CreateShipNote("x")).(NoteSubst); !ok {
		t.Error("shipNote should satisfy NoteSubst")
	}
	if _, ok := any(d.CreateShipNote("x")).(CommentSubst); ok {
		t.Error("shipNote must not satisfy CommentSubst")
	}
}
