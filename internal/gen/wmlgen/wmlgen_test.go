package wmlgen

import (
	"strings"
	"testing"

	"repro/internal/vdom"
)

// buildDirectoryPage builds the paper's §5 media-archive directory page
// (Fig. 10/11): a select listing the parent directory and each
// subdirectory, inside a paragraph showing the current directory in bold.
func buildDirectoryPage(t testing.TB, currentDir, parentDir string, subDirs []string) *PElement {
	d := NewDocument()

	// s = <select name="directories"><option value=$parentDir$>..</option></select>
	opt, err := d.CreateOptionType("..")
	if err != nil {
		t.Fatalf("CreateOptionType: %v", err)
	}
	// The option type's "value" attribute collides with the simple
	// content accessor Value(), so the generator suffixed the setter.
	if err := opt.SetValue2(parentDir); err != nil {
		t.Fatalf("SetValue2: %v", err)
	}
	s := d.CreateSelectType().AddOption(d.CreateOption(opt))
	if err := s.SetName("directories"); err != nil {
		t.Fatalf("SetName: %v", err)
	}

	// for each subdirectory: o = <option value=$subDir$>$subDirs[i]$</option>; s.add(o)
	for _, sub := range subDirs {
		o, err := d.CreateOptionType(sub)
		if err != nil {
			t.Fatalf("option %q: %v", sub, err)
		}
		if err := o.SetValue2(currentDir + "/" + sub); err != nil {
			t.Fatal(err)
		}
		s.AddOption(d.CreateOption(o))
	}

	// p = <p><b>$currentDir$</b><br/>$s$<br/></p>
	p := d.CreatePType()
	p.Add(d.CreateB(currentDir))
	p.Add(d.CreateBr(d.CreateBrType()))
	p.Add(d.CreateSelect(s))
	p.Add(d.CreateBr(d.CreateBrType()))
	return d.CreateP(p)
}

// TestFig10DirectoryPage: the generated page is valid WML by
// construction and has the Fig. 8/10 shape.
func TestFig10DirectoryPage(t *testing.T) {
	page := buildDirectoryPage(t, "/workspace/media", "/workspace", []string{"audio", "video", "images"})
	out, err := vdom.MarshalString(page)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{
		`<select name="directories">`,
		`<option value="/workspace">..</option>`,
		`<option value="/workspace/media/audio">audio</option>`,
		`<option value="/workspace/media/video">video</option>`,
		`<b>/workspace/media</b>`,
		`<br/>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("page missing %q:\n%s", want, out)
		}
	}
}

// TestWholeDeckValidates: wml/card/p document verified against the WML
// schema.
func TestWholeDeckValidates(t *testing.T) {
	d := NewDocument()
	deckCard := d.CreateCardType()
	p2 := buildDirectoryPage(t, "/a", "/", []string{"x", "y"})
	deckCard.AddP(p2)
	if err := deckCard.SetId("main"); err != nil {
		t.Fatal(err)
	}
	if err := deckCard.SetTitle("Media Archive"); err != nil {
		t.Fatal(err)
	}
	wml := d.CreateWmlType().AddCard(d.CreateCard(deckCard))
	root := d.CreateWml(wml)
	if err := RT.Verify(root); err != nil {
		t.Fatalf("deck: %v", err)
	}
}

// TestMixedContentOrderChecked: the mixed paragraph's element sequence is
// still checked against the content model at marshal time.
func TestMixedContentText(t *testing.T) {
	d := NewDocument()
	p := d.CreatePType()
	p.Text("Hello ")
	p.Add(d.CreateB("world"))
	p.Text("!")
	out, err := vdom.MarshalString(d.CreateP(p))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Hello <b>world</b>!") {
		t.Errorf("mixed serialization: %s", out)
	}
}

func TestMixedSealedMembers(t *testing.T) {
	d := NewDocument()
	// option is not allowed directly inside p.
	if _, ok := any(d.CreateOption(mustOption(t, d, "x"))).(PTypeMember); ok {
		t.Error("optionElement must not be addable to a paragraph")
	}
	if _, ok := any(d.CreateB("x")).(PTypeMember); !ok {
		t.Error("bElement should be addable to a paragraph")
	}
}

func mustOption(t *testing.T, d *Document, s string) *OptionType {
	t.Helper()
	o, err := d.CreateOptionType(s)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSelectRequiresOneOption(t *testing.T) {
	d := NewDocument()
	s := d.CreateSelectType() // no options: violates minOccurs=1
	p := d.CreatePType()
	p.Add(d.CreateSelect(s))
	_, err := vdom.MarshalString(d.CreateP(p))
	if err == nil {
		t.Fatal("empty select should violate option minOccurs=1")
	}
	if !strings.Contains(err.Error(), "option") {
		t.Errorf("error should name the option member: %v", err)
	}
}

func TestAlignmentEnumeration(t *testing.T) {
	d := NewDocument()
	p := d.CreatePType()
	if err := p.SetAlign("center"); err != nil {
		t.Errorf("center: %v", err)
	}
	if err := p.SetAlign("justified"); err == nil {
		t.Error("justified should fail the Alignment enumeration")
	}
}

func TestAttributeTypes(t *testing.T) {
	d := NewDocument()
	s := d.CreateSelectType()
	if err := s.SetMultiple("true"); err != nil {
		t.Errorf("multiple=true: %v", err)
	}
	if err := s.SetMultiple("yes"); err == nil {
		t.Error("multiple=yes should fail xsd:boolean")
	}
	if err := s.SetName("has space"); err == nil {
		t.Error("NMTOKEN with space should fail")
	}
	a, err := d.CreateAType("link text")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetHref("http://example.com/x"); err != nil {
		t.Errorf("href: %v", err)
	}
	// href is required: marshaling without it fails.
	p := d.CreatePType()
	a2, _ := d.CreateAType("no href")
	p.Add(d.CreateA(a2))
	if _, err := vdom.MarshalString(d.CreateP(p)); err == nil {
		t.Error("missing required href should fail at marshal")
	}
}
