package nsgen

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/vdom"
)

func buildOrder(t *testing.T) *OrderElement {
	t.Helper()
	d := NewDocument()
	ot := d.CreateOrderTypeType(d.MustId("42"))
	ot.SetNote(d.CreateNote("rush"))
	if err := ot.SetPriority("3"); err != nil {
		t.Fatal(err)
	}
	return d.CreateOrder(ot)
}

// TestNamespacedMarshalValidates: qualified elements serialize with the
// right namespace declarations and validate.
func TestNamespacedMarshalValidates(t *testing.T) {
	root := buildOrder(t)
	out, err := vdom.MarshalString(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `xmlns="urn:example:po"`) {
		t.Errorf("missing namespace declaration:\n%s", out)
	}
	// The declaration appears once (children inherit it).
	if strings.Count(out, `xmlns="urn:example:po"`) != 1 {
		t.Errorf("namespace declared more than once:\n%s", out)
	}
	doc, err := dom.ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.DocumentElement().NamespaceURI(); got != "urn:example:po" {
		t.Errorf("root namespace: %q", got)
	}
	if res := validator.New(RT.Schema, nil).ValidateDocument(doc); !res.OK() {
		t.Fatalf("namespaced document invalid:\n%v", res.Err())
	}
}

func TestNamespacedVerify(t *testing.T) {
	if err := RT.Verify(buildOrder(t)); err != nil {
		t.Fatal(err)
	}
}

func TestQualifiedChildrenResolve(t *testing.T) {
	root := buildOrder(t)
	doc, err := vdom.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	ids := doc.GetElementsByTagNameNS("urn:example:po", "id")
	if len(ids) != 1 || ids[0].TextContent() != "42" {
		t.Errorf("qualified child lookup: %v", ids)
	}
}

func TestValueChecksStillApply(t *testing.T) {
	d := NewDocument()
	if _, err := d.CreateId("0"); err == nil {
		t.Error("id=0 should violate positiveInteger")
	}
	ot := d.CreateOrderTypeType(d.MustId("1"))
	if err := ot.SetPriority("2147483648"); err == nil {
		t.Error("priority overflow should violate xsd:int")
	}
}
