package pogen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/vdom"
)

// buildFig1 constructs the paper's Figure 1 purchase order through the
// typed V-DOM API — the program that, by the paper's central claim, can
// only produce valid documents.
func buildFig1(t testing.TB) *PurchaseOrderElement {
	d := NewDocument()

	shipAddr := d.CreateUSAddressType(
		d.CreateName("Alice Smith"),
		d.CreateStreet("123 Maple Street"),
		d.CreateCity("Mill Valley"),
		d.CreateState("CA"),
		d.MustZip("90952"),
	)
	if err := shipAddr.SetCountry("US"); err != nil {
		t.Fatalf("SetCountry: %v", err)
	}
	billAddr := d.CreateUSAddressType(
		d.CreateName("Robert Smith"),
		d.CreateStreet("8 Oak Avenue"),
		d.CreateCity("Old Town"),
		d.CreateState("PA"),
		d.MustZip("95819"),
	)
	if err := billAddr.SetCountry("US"); err != nil {
		t.Fatalf("SetCountry: %v", err)
	}

	item1 := d.CreateItemTypeType(
		d.CreateProductName("Lawnmower"),
		d.MustQuantity("1"),
		d.MustUSPrice("148.95"),
	)
	item1.SetComment(d.CreateComment("Confirm this is electric"))
	if err := item1.SetPartNum("872-AA"); err != nil {
		t.Fatalf("SetPartNum: %v", err)
	}
	item2 := d.CreateItemTypeType(
		d.CreateProductName("Baby Monitor"),
		d.MustQuantity("1"),
		d.MustUSPrice("39.98"),
	)
	item2.SetShipDate(d.MustShipDate("1999-05-21"))
	if err := item2.SetPartNum("926-AA"); err != nil {
		t.Fatalf("SetPartNum: %v", err)
	}

	items := d.CreateItemsType().
		AddItem(d.CreateItem(item1)).
		AddItem(d.CreateItem(item2))

	po := d.CreatePurchaseOrderTypeType(
		d.CreateShipTo(shipAddr),
		d.CreateBillTo(billAddr),
		d.CreateItems(items),
	)
	po.SetComment(d.CreateComment("Hurry, my lawn is going wild"))
	if err := po.SetOrderDate("1999-10-20"); err != nil {
		t.Fatalf("SetOrderDate: %v", err)
	}
	return d.CreatePurchaseOrder(po)
}

// TestFig1ByConstruction builds Fig. 1 via V-DOM, marshals it, and runs
// the runtime validator over the result: the document must be valid (the
// paper's headline guarantee) and structurally identical to the paper's
// own instance text.
func TestFig1ByConstruction(t *testing.T) {
	root := buildFig1(t)
	doc, err := vdom.Marshal(root)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if res := validator.New(RT.Schema, nil).ValidateDocument(doc); !res.OK() {
		t.Fatalf("V-DOM output failed validation:\n%v", res.Err())
	}
	// Structural comparison with the paper's Fig. 1 text.
	want, perr := dom.ParseString(schemas.PurchaseOrderDoc)
	if perr != nil {
		t.Fatal(perr)
	}
	if got, wantDump := dom.DumpElements(doc.DocumentElement()), dom.DumpElements(want.DocumentElement()); got != wantDump {
		t.Errorf("typed build differs from Fig. 1:\n--- got ---\n%s--- want ---\n%s", got, wantDump)
	}
}

// TestFig7TypedDump reproduces the paper's Fig. 7: the same fragment as
// Fig. 4 but every node carries its generated V-DOM interface name.
func TestFig7TypedDump(t *testing.T) {
	root := buildFig1(t)
	dump := vdom.Dump(root)
	for _, want := range []string{
		"purchaseOrderElement",
		"PurchaseOrderTypeType",
		"shipToElement",
		"USAddressType",
		"nameElement",
		"Text Alice Smith",
		"ItemsType",
		"itemElement",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Fig. 7 dump missing %q:\n%s", want, dump)
		}
	}
	// And the untyped Fig. 4 counterpart shows only generic interfaces.
	doc, _ := vdom.Marshal(root)
	fig4 := dom.Dump(doc.DocumentElement())
	if strings.Contains(fig4, "USAddressType") {
		t.Errorf("plain DOM dump should not know schema types:\n%s", fig4)
	}
}

// TestVerifyProperty is the E1 core loop for the valid side: whatever we
// build through the API verifies against the schema.
func TestVerifyProperty(t *testing.T) {
	if err := RT.Verify(buildFig1(t)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSimpleTypeFacetsAtCreation(t *testing.T) {
	d := NewDocument()
	// quantity: positiveInteger maxExclusive 100 — Fig. 3 lines 41-46.
	if _, err := d.CreateQuantity("99"); err != nil {
		t.Errorf("99: %v", err)
	}
	if _, err := d.CreateQuantity("100"); err == nil {
		t.Error("100 should violate maxExclusive")
	}
	if _, err := d.CreateQuantity("0"); err == nil {
		t.Error("0 should violate positiveInteger")
	}
	if _, err := d.CreateUSPrice("not-a-price"); err == nil {
		t.Error("non-decimal price accepted")
	}
	if _, err := d.CreateShipDate("1999-13-40"); err == nil {
		t.Error("bad date accepted")
	}
}

func TestSKUNamedType(t *testing.T) {
	if _, err := NewSKU("926-AA"); err != nil {
		t.Errorf("926-AA: %v", err)
	}
	if _, err := NewSKU("926-aa"); err == nil {
		t.Error("926-aa should fail the SKU pattern")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSKU should panic on invalid input")
		}
	}()
	MustSKU("bad")
}

func TestAttributeValidationAtSet(t *testing.T) {
	d := NewDocument()
	addr := d.CreateUSAddressType(d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"), d.CreateState("st"), d.MustZip("1"))
	// country is fixed to US.
	if err := addr.SetCountry("DE"); err == nil {
		t.Error("country=DE should violate the fixed value")
	}
	if err := addr.SetCountry("US"); err != nil {
		t.Errorf("country=US: %v", err)
	}
	po := d.CreatePurchaseOrderTypeType(d.CreateShipTo(addr), d.CreateBillTo(addr), d.CreateItems(d.CreateItemsType()))
	if err := po.SetOrderDate("not-a-date"); err == nil {
		t.Error("bad orderDate accepted")
	}
	item := d.CreateItemTypeType(d.CreateProductName("p"), d.MustQuantity("1"), d.MustUSPrice("1"))
	if err := item.SetPartNum("926-aa"); err == nil {
		t.Error("partNum must match the SKU pattern")
	}
}

func TestRequiredAttributeAtMarshal(t *testing.T) {
	d := NewDocument()
	item := d.CreateItemTypeType(d.CreateProductName("p"), d.MustQuantity("1"), d.MustUSPrice("1"))
	// partNum (required) never set.
	items := d.CreateItemsType().AddItem(d.CreateItem(item))
	addr := d.CreateUSAddressType(d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"), d.CreateState("st"), d.MustZip("1"))
	po := d.CreatePurchaseOrderTypeType(d.CreateShipTo(addr), d.CreateBillTo(addr), d.CreateItems(items))
	root := d.CreatePurchaseOrder(po)
	_, err := vdom.Marshal(root)
	var req *vdom.RequiredError
	if !errors.As(err, &req) {
		t.Fatalf("expected RequiredError for partNum, got %v", err)
	}
	if !strings.Contains(req.Error(), "partNum") {
		t.Errorf("error should name partNum: %v", req)
	}
}

func TestRequiredMemberNil(t *testing.T) {
	d := NewDocument()
	// A nil required member (possible by passing nil explicitly) is
	// caught at marshal time.
	po := d.CreatePurchaseOrderTypeType(nil, nil, nil)
	_, err := vdom.Marshal(d.CreatePurchaseOrder(po))
	var req *vdom.RequiredError
	if !errors.As(err, &req) {
		t.Fatalf("expected RequiredError, got %v", err)
	}
}

func TestSerializedShape(t *testing.T) {
	out, err := vdom.MarshalString(buildFig1(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<purchaseOrder orderDate="1999-10-20">`,
		`<shipTo country="US">`,
		`<name>Alice Smith</name>`,
		`<item partNum="872-AA">`,
		`<USPrice>148.95</USPrice>`,
		`<shipDate>1999-05-21</shipDate>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized output missing %q:\n%s", want, out)
		}
	}
}

func TestGettersAndVDOMNames(t *testing.T) {
	root := buildFig1(t)
	if root.VDOMName() != "purchaseOrderElement" {
		t.Errorf("VDOMName: %q", root.VDOMName())
	}
	po := root.Content()
	if po.VDOMName() != "PurchaseOrderTypeType" {
		t.Errorf("type VDOMName: %q", po.VDOMName())
	}
	if po.ShipTo().Content().Name().Value() != "Alice Smith" {
		t.Errorf("getter chain broken")
	}
	if got, ok := po.OrderDate(); !ok || got != "1999-10-20" {
		t.Errorf("OrderDate: %q %v", got, ok)
	}
	if n := len(po.Items().Content().Item()); n != 2 {
		t.Errorf("items: %d", n)
	}
	if space, local := root.XMLQName(); space != "" || local != "purchaseOrder" {
		t.Errorf("XMLQName: %q %q", space, local)
	}
}

// TestRoundTripManyItems stresses the occurrence machinery: item is
// 0..unbounded, so any count must marshal and validate.
func TestRoundTripManyItems(t *testing.T) {
	d := NewDocument()
	items := d.CreateItemsType()
	for i := 0; i < 200; i++ {
		it := d.CreateItemTypeType(d.CreateProductName("p"), d.MustQuantity("1"), d.MustUSPrice("1.0"))
		if err := it.SetPartNum("000-AA"); err != nil {
			t.Fatal(err)
		}
		items.AddItem(d.CreateItem(it))
	}
	addr := d.CreateUSAddressType(d.CreateName("n"), d.CreateStreet("s"), d.CreateCity("c"), d.CreateState("st"), d.MustZip("1"))
	po := d.CreatePurchaseOrderTypeType(d.CreateShipTo(addr), d.CreateBillTo(addr), d.CreateItems(items))
	if err := RT.Verify(d.CreatePurchaseOrder(po)); err != nil {
		t.Fatalf("200 items: %v", err)
	}
}
