package vdom

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/normalize"
	"repro/internal/schemas"
)

func testRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(schemas.PurchaseOrderXSD, normalize.SchemePaper)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRuntimeResolvesGeneratedNames(t *testing.T) {
	rt := testRuntime(t)
	for _, name := range []string{"PurchaseOrderType", "USAddress", "Items", "SKU", "ItemType", "QuantityType"} {
		if _, ok := rt.Type(name); !ok {
			t.Errorf("runtime cannot resolve %q", name)
		}
	}
	if _, ok := rt.Type("Nonexistent"); ok {
		t.Error("bogus name resolved")
	}
	if rt.SimpleType("SKU") == nil {
		t.Error("SKU should resolve as a simple type")
	}
	if rt.ComplexType("USAddress") == nil {
		t.Error("USAddress should resolve as a complex type")
	}
}

func TestRuntimePanicsOnKindMismatch(t *testing.T) {
	rt := testRuntime(t)
	defer func() {
		if recover() == nil {
			t.Error("SimpleType on a complex name should panic (schema drift)")
		}
	}()
	rt.SimpleType("USAddress")
}

func TestCheckSimpleAndAttr(t *testing.T) {
	rt := testRuntime(t)
	if err := rt.CheckSimple("SKU", "926-AA"); err != nil {
		t.Errorf("SKU ok value: %v", err)
	}
	if rt.CheckSimple("SKU", "nope") == nil {
		t.Error("SKU bad value accepted")
	}
	if err := rt.CheckAttr("PurchaseOrderType", "orderDate", "1999-10-20"); err != nil {
		t.Errorf("orderDate: %v", err)
	}
	if rt.CheckAttr("PurchaseOrderType", "orderDate", "soon") == nil {
		t.Error("bad orderDate accepted")
	}
	if rt.CheckAttr("USAddress", "country", "DE") == nil {
		t.Error("fixed country violation accepted")
	}
	if rt.CheckAttr("PurchaseOrderType", "bogus", "x") == nil {
		t.Error("undeclared attribute accepted")
	}
}

func TestCheckOccurs(t *testing.T) {
	if err := CheckOccurs("t.m", 2, 1, 3); err != nil {
		t.Errorf("in range: %v", err)
	}
	if err := CheckOccurs("t.m", 5, 0, -1); err != nil {
		t.Errorf("unbounded: %v", err)
	}
	err := CheckOccurs("t.m", 0, 1, 3)
	var oe *OccurrenceError
	if !errors.As(err, &oe) || oe.Count != 0 || oe.Min != 1 {
		t.Errorf("below min: %v", err)
	}
	err = CheckOccurs("t.m", 4, 1, 3)
	if !errors.As(err, &oe) || !strings.Contains(err.Error(), "1..3") {
		t.Errorf("above max: %v", err)
	}
}

func TestRequiredError(t *testing.T) {
	err := Required("shipToElement", "content")
	if !strings.Contains(err.Error(), "shipToElement") || !strings.Contains(err.Error(), "content") {
		t.Errorf("required error text: %v", err)
	}
}

// fakeNode is a minimal ElementNode for Marshal tests.
type fakeNode struct {
	name string
	fail bool
}

func (f *fakeNode) VDOMName() string { return f.name }
func (f *fakeNode) BuildInto(doc *dom.Document, parent dom.Node) error {
	if f.fail {
		return Required(f.name, "something")
	}
	el := doc.CreateElement(f.name)
	_, err := parent.AppendChild(el)
	return err
}

func TestMarshalHelpers(t *testing.T) {
	out, err := MarshalString(&fakeNode{name: "ok"})
	if err != nil || out != "<ok/>" {
		t.Errorf("MarshalString: %q, %v", out, err)
	}
	if _, err := MarshalString(&fakeNode{name: "bad", fail: true}); err == nil {
		t.Error("failing node should propagate")
	}
	pretty, err := MarshalIndent(&fakeNode{name: "ok"})
	if err != nil || !strings.Contains(pretty, "<ok/>") {
		t.Errorf("MarshalIndent: %q, %v", pretty, err)
	}
}

func TestCheckBuiltin(t *testing.T) {
	if err := CheckBuiltin("decimal", "1.5"); err != nil {
		t.Errorf("decimal: %v", err)
	}
	if CheckBuiltin("decimal", "x") == nil {
		t.Error("bad decimal accepted")
	}
	if CheckBuiltin("noSuchType", "x") == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestMixedContentOrdering(t *testing.T) {
	m := &MixedContent{}
	m.AddText("a")
	m.AddNode(&fakeNamed{fakeNode{name: "b"}})
	m.AddText("c")
	if m.Len() != 3 {
		t.Errorf("len: %d", m.Len())
	}
	var sb strings.Builder
	DumpMixed(m, &sb, 0)
	if !strings.Contains(sb.String(), `Text "a"`) || !strings.Contains(sb.String(), "b") {
		t.Errorf("dump: %s", sb.String())
	}
}

type fakeNamed struct{ fakeNode }

func (f *fakeNamed) XMLQName() (string, string) { return "", f.name }

func TestXSITypeHelper(t *testing.T) {
	doc := dom.NewDocument()
	el := doc.CreateElement("e")
	XSIType(el, "USAddress")
	if el.GetAttributeNS("http://www.w3.org/2001/XMLSchema-instance", "type") != "USAddress" {
		t.Errorf("xsi:type not set: %s", dom.ToString(el))
	}
}

func TestBuildAnyInto(t *testing.T) {
	src := dom.NewDocument()
	raw := src.CreateElement("raw")
	raw.SetAttribute("k", "v")
	_, _ = raw.AppendChild(src.CreateTextNode("t"))

	dst := dom.NewDocument()
	parent := dst.CreateElement("parent")
	_, _ = dst.AppendChild(parent)
	if err := BuildAnyInto(raw, dst, parent); err != nil {
		t.Fatal(err)
	}
	out := dom.ToString(parent)
	if !strings.Contains(out, `<raw k="v">t</raw>`) {
		t.Errorf("imported wrong: %s", out)
	}
	// The original element is untouched (import copies).
	if raw.OwnerDocument() != src {
		t.Error("original reparented")
	}
}
