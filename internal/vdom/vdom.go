package vdom

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/normalize"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// Node is implemented by every generated V-DOM type.
type Node interface {
	// VDOMName returns the generated interface name in the paper's
	// style, e.g. "shipToElement" or "PurchaseOrderTypeType".
	VDOMName() string
}

// ElementNode is a generated element wrapper that can materialize itself
// as a DOM subtree.
type ElementNode interface {
	Node
	// BuildInto appends the element's DOM representation to parent,
	// performing the deferred dynamic checks (occurrence counts,
	// required attributes). It reports the first violated constraint.
	BuildInto(doc *dom.Document, parent dom.Node) error
}

// Runtime binds generated code to its schema: it resolves the components
// behind generated type names so that value checks use the exact facets
// of the schema the bindings were generated from.
type Runtime struct {
	Schema *xsd.Schema
	Norm   *normalize.Result

	typesByName map[string]xsd.Type
}

// NewRuntime parses the schema source and recomputes the (deterministic)
// normalization the generator used.
func NewRuntime(schemaSource string, scheme normalize.Scheme) (*Runtime, error) {
	s, err := xsd.ParseString(schemaSource, nil)
	if err != nil {
		return nil, err
	}
	n, err := normalize.Normalize(s, scheme)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Schema: s, Norm: n, typesByName: map[string]xsd.Type{}}
	for t, name := range n.TypeNames {
		rt.typesByName[name] = t
	}
	return rt, nil
}

// MustRuntime is NewRuntime for schema text known to be valid (generated
// code embeds the schema it was generated from).
func MustRuntime(schemaSource string, scheme normalize.Scheme) *Runtime {
	rt, err := NewRuntime(schemaSource, scheme)
	if err != nil {
		panic(err)
	}
	return rt
}

// Type resolves a generated type name to its schema component.
func (rt *Runtime) Type(generatedName string) (xsd.Type, bool) {
	t, ok := rt.typesByName[generatedName]
	return t, ok
}

// SimpleType resolves a generated name that must denote a simple type.
func (rt *Runtime) SimpleType(generatedName string) *xsd.SimpleType {
	t, ok := rt.typesByName[generatedName]
	if !ok {
		panic("vdom: generated name " + generatedName + " not found in schema")
	}
	st, ok := t.(*xsd.SimpleType)
	if !ok {
		panic("vdom: generated name " + generatedName + " is not a simple type")
	}
	return st
}

// ComplexType resolves a generated name that must denote a complex type.
func (rt *Runtime) ComplexType(generatedName string) *xsd.ComplexType {
	t, ok := rt.typesByName[generatedName]
	if !ok {
		panic("vdom: generated name " + generatedName + " not found in schema")
	}
	ct, ok := t.(*xsd.ComplexType)
	if !ok {
		panic("vdom: generated name " + generatedName + " is not a complex type")
	}
	return ct
}

// CheckSimple validates a lexical value against a named simple type. This
// is the dynamic residue of type restriction (§3: "to enforce the
// restricted values validation checks at runtime are necessary").
func (rt *Runtime) CheckSimple(typeName, lexical string) error {
	return rt.SimpleType(typeName).Validate(lexical)
}

// CheckAttr validates an attribute value against the attribute's declared
// type within a named complex type, including fixed-value constraints.
func (rt *Runtime) CheckAttr(typeName, attrLocal, lexical string) error {
	ct := rt.ComplexType(typeName)
	var use *xsd.AttributeUse
	for _, u := range ct.AttributeUses {
		if u.Decl.Name.Local == attrLocal {
			use = u
			break
		}
	}
	if use == nil {
		// Generated code only emits setters for declared attributes,
		// so this indicates schema drift.
		return fmt.Errorf("vdom: attribute %q is not declared on %s", attrLocal, typeName)
	}
	v, err := use.Decl.Type.Parse(lexical)
	if err != nil {
		return fmt.Errorf("attribute %q: %w", attrLocal, err)
	}
	if use.Fixed != nil {
		want, ferr := use.Decl.Type.Parse(*use.Fixed)
		if ferr == nil && !v.Equal(want) {
			return fmt.Errorf("attribute %q must have the fixed value %q", attrLocal, *use.Fixed)
		}
	}
	return nil
}

// OccurrenceError reports a violated occurrence constraint at marshal
// time — the one structural property rule 5 of §3 leaves dynamic.
type OccurrenceError struct {
	Context string // e.g. "ItemsType.item"
	Count   int
	Min     int
	Max     int // -1 for unbounded
}

// Error implements the error interface.
func (e *OccurrenceError) Error() string {
	max := "unbounded"
	if e.Max >= 0 {
		max = fmt.Sprintf("%d", e.Max)
	}
	return fmt.Sprintf("vdom: %s occurs %d times, schema requires %d..%s", e.Context, e.Count, e.Min, max)
}

// CheckOccurs verifies a repeated member's count against its bounds.
func CheckOccurs(context string, count, min, max int) error {
	if count < min || (max >= 0 && count > max) {
		return &OccurrenceError{Context: context, Count: count, Min: min, Max: max}
	}
	return nil
}

// RequiredError reports a missing required member or attribute.
type RequiredError struct {
	Context string
	What    string
}

// Error implements the error interface.
func (e *RequiredError) Error() string {
	return fmt.Sprintf("vdom: %s: required %s is not set", e.Context, e.What)
}

// Required returns an error for an unset required member.
func Required(context, what string) error {
	return &RequiredError{Context: context, What: what}
}

// Marshal materializes a typed tree into a new DOM document and returns
// it. The returned document is valid against the runtime's schema by
// construction (the E1/E2 tests verify this with the runtime validator).
func Marshal(root ElementNode) (*dom.Document, error) {
	doc := dom.NewDocument()
	if err := root.BuildInto(doc, doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// MarshalString serializes a typed tree to XML text.
func MarshalString(root ElementNode) (string, error) {
	doc, err := Marshal(root)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := dom.Serialize(&sb, doc, &dom.SerializeOptions{OmitXMLDecl: true}); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// MarshalIndent serializes a typed tree pretty-printed.
func MarshalIndent(root ElementNode) (string, error) {
	doc, err := Marshal(root)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := dom.Serialize(&sb, doc, &dom.SerializeOptions{OmitXMLDecl: true, Indent: "  "}); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Verify marshals the tree and re-validates it with the runtime
// validator — used by tests to demonstrate the paper's central claim
// (every V-DOM tree is schema-valid) and by callers who want belt and
// braces.
func (rt *Runtime) Verify(root ElementNode) error {
	doc, err := Marshal(root)
	if err != nil {
		return err
	}
	return validator.New(rt.Schema, nil).ValidateDocument(doc).Err()
}

// Dumper is implemented by generated nodes to render the paper's Fig. 7
// view: the typed object hierarchy with one generated interface per node,
// in contrast to Fig. 4's uniform "Element".
type Dumper interface {
	Node
	// DumpInto writes one line per node at the given depth.
	DumpInto(sb *strings.Builder, depth int)
}

// Dump renders a typed tree in the Fig. 7 style.
func Dump(n Node) string {
	var sb strings.Builder
	if d, ok := n.(Dumper); ok {
		d.DumpInto(&sb, 0)
	} else {
		sb.WriteString(n.VDOMName() + "\n")
	}
	return sb.String()
}

// Indent writes dump indentation.
func Indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}
