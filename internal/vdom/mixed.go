package vdom

import (
	"fmt"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// CheckBuiltin validates a lexical value against a built-in simple type by
// its XSD local name (used by generated code for elements typed directly
// with built-ins like xsd:decimal).
func CheckBuiltin(local, lexical string) error {
	b, ok := xsdtypes.Lookup(local)
	if !ok {
		return fmt.Errorf("vdom: unknown built-in type %q", local)
	}
	return b.Validate(lexical)
}

// CheckSimpleContent validates the character content of a named complex
// type with simple content.
func (rt *Runtime) CheckSimpleContent(typeName, lexical string) error {
	ct := rt.ComplexType(typeName)
	if ct.SimpleContentType == nil {
		return fmt.Errorf("vdom: type %s has no simple content", typeName)
	}
	return ct.SimpleContentType.Validate(lexical)
}

// NamedElement is an element node that knows its XML name — implemented by
// every generated element wrapper and used for mixed-content ordering
// checks.
type NamedElement interface {
	ElementNode
	// XMLQName returns the element's namespace and local name.
	XMLQName() (space, local string)
}

// mixedItem is one ordered child of a mixed-content value: text or a
// typed element.
type mixedItem struct {
	text string
	node NamedElement
}

// MixedContent is the ordered child list of a mixed-content complex type.
// Generated mixed types embed it; their typed Add methods restrict which
// element types can enter, and the content-model check at build time
// enforces order and occurrence (the two properties a flat list cannot
// carry statically).
type MixedContent struct {
	items []mixedItem
}

// AddNode appends a typed child element.
func (m *MixedContent) AddNode(n NamedElement) { m.items = append(m.items, mixedItem{node: n}) }

// AddText appends character data.
func (m *MixedContent) AddText(s string) { m.items = append(m.items, mixedItem{text: s}) }

// Len returns the number of items (text runs and elements).
func (m *MixedContent) Len() int { return len(m.items) }

// BuildMixed materializes the mixed children into el, first checking the
// element sequence against the named type's content model.
func (rt *Runtime) BuildMixed(m *MixedContent, typeName string, doc *dom.Document, el *dom.Element) error {
	ct := rt.ComplexType(typeName)
	var symbols []contentmodel.Symbol
	for _, it := range m.items {
		if it.node != nil {
			space, local := it.node.XMLQName()
			symbols = append(symbols, contentmodel.Symbol{Space: space, Local: local})
		}
	}
	if _, merr := ct.Matcher(rt.Schema).Match(symbols); merr != nil {
		return fmt.Errorf("vdom: %s content: %s", typeName, merr.Error())
	}
	for _, it := range m.items {
		if it.node != nil {
			if err := it.node.BuildInto(doc, el); err != nil {
				return err
			}
			continue
		}
		if _, err := el.AppendChild(doc.CreateTextNode(it.text)); err != nil {
			return err
		}
	}
	return nil
}

// DumpMixed renders mixed children for the Fig. 7 style dump.
func DumpMixed(m *MixedContent, sb *strings.Builder, depth int) {
	for _, it := range m.items {
		if it.node != nil {
			if d, ok := it.node.(Dumper); ok {
				d.DumpInto(sb, depth)
			} else {
				Indent(sb, depth)
				sb.WriteString(it.node.VDOMName() + "\n")
			}
			continue
		}
		Indent(sb, depth)
		fmt.Fprintf(sb, "Text %q\n", it.text)
	}
}

// BuildAnyInto appends a raw DOM element (a wildcard member's value),
// importing it into the target document.
func BuildAnyInto(raw *dom.Element, doc *dom.Document, parent dom.Node) error {
	imported := doc.ImportNode(raw, true)
	_, err := parent.AppendChild(imported)
	return err
}

// XSIType decorates el with an xsi:type attribute — emitted when a derived
// type's value fills a base-typed slot (paper §3, type extension).
func XSIType(el *dom.Element, typeName string) {
	el.SetAttributeNS("http://www.w3.org/2000/xmlns/", "xmlns:xsi", xsd.XSINamespace)
	el.SetAttributeNS(xsd.XSINamespace, "xsi:type", typeName)
}
