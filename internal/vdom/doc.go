// Package vdom is the runtime support library for V-DOM, the paper's core
// contribution: strictly typed document object models generated from an
// XML Schema (one distinct type per element declaration, type definition
// and model group).
//
// The generated bindings (package codegen emits them) enforce the schema's
// *structure* at compile time: a child can only be placed where its Go
// type is accepted, choice groups are sealed interfaces, substitution
// groups and type extension are interface satisfaction. What remains
// dynamic — exactly the residue the paper concedes in §3 — is occurrence
// counting (rule 5), simple-type facet values (type restriction), and
// required attributes. Those checks live here and run when a typed tree is
// materialized into a DOM or serialized; they cannot fail for programs
// that respect the documented constructor contracts.
//
// Where the paper's Java/IDL V-DOM makes every generated interface extend
// DOM's Element, Go has no implementation inheritance; the adaptation is
// that every generated node converts to a plain *dom.Element via its
// BuildInto method, and Marshal produces the equivalent document.
//
// # Role in the pipeline
//
// vdom is the runtime half of codegen's output in the pipeline (xsd parse
// → normalize → contentmodel → codegen/vdom → validator → pxml): the
// generated packages under internal/gen call into it, its mixed-content
// checks reuse package contentmodel's matchers via the once-guarded
// ComplexType.Matcher, and the validator serves as the independent oracle
// that its marshalled output is schema-valid.
//
// # Concurrency
//
// A typed tree under construction is a mutable value with no internal
// locking: build and marshal each tree from a single goroutine (the
// natural one-tree-per-request pattern), or synchronize externally.
// The schema and its compiled content models, by contrast, are shared
// safely across any number of trees and goroutines.
package vdom
