package dom

import (
	"io"
	"strings"
)

// SerializeOptions controls XML output.
type SerializeOptions struct {
	// Indent, when non-empty, enables pretty printing with this string
	// per nesting level. Mixed-content elements (those containing
	// non-whitespace text) are never re-indented.
	Indent string
	// OmitXMLDecl suppresses the leading <?xml ...?> declaration.
	OmitXMLDecl bool
	// EmptyElementTags writes childless elements as <e/> (the default is
	// also <e/>; setting ExpandEmpty forces <e></e>).
	ExpandEmpty bool
}

// Serialize writes the node (and its subtree) as XML text.
func Serialize(w io.Writer, n Node, opts *SerializeOptions) error {
	o := SerializeOptions{}
	if opts != nil {
		o = *opts
	}
	s := &serializer{w: &errWriter{w: w}, opts: o}
	s.node(n, 0)
	return s.w.err
}

// ToString serializes a node with default options.
func ToString(n Node) string {
	var sb strings.Builder
	_ = Serialize(&sb, n, nil)
	return sb.String()
}

// ToStringIndent serializes a node pretty-printed with two-space indent.
func ToStringIndent(n Node) string {
	var sb strings.Builder
	_ = Serialize(&sb, n, &SerializeOptions{Indent: "  "})
	return sb.String()
}

// errWriter latches the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

type serializer struct {
	w    *errWriter
	opts SerializeOptions
}

func (s *serializer) indent(depth int) {
	if s.opts.Indent == "" {
		return
	}
	s.w.WriteString("\n")
	for i := 0; i < depth; i++ {
		s.w.WriteString(s.opts.Indent)
	}
}

func (s *serializer) node(n Node, depth int) {
	switch x := n.(type) {
	case *Document:
		if !s.opts.OmitXMLDecl {
			s.w.WriteString(`<?xml version="`)
			v := x.Version
			if v == "" {
				v = "1.0"
			}
			s.w.WriteString(v)
			s.w.WriteString(`"`)
			if x.Encoding != "" {
				s.w.WriteString(` encoding="` + x.Encoding + `"`)
			}
			s.w.WriteString("?>")
			if s.opts.Indent != "" {
				s.w.WriteString("\n")
			}
		}
		for i, c := range x.ChildNodes() {
			if i > 0 && s.opts.Indent != "" {
				s.w.WriteString("\n")
			}
			s.node(c, depth)
		}
		if s.opts.Indent != "" {
			s.w.WriteString("\n")
		}
	case *DocumentType:
		s.w.WriteString("<!DOCTYPE " + x.Name)
		if x.ExternalID != "" {
			s.w.WriteString(" " + x.ExternalID)
		}
		if x.InternalSubset != "" {
			s.w.WriteString(" [" + x.InternalSubset + "]")
		}
		s.w.WriteString(">")
	case *Element:
		s.element(x, depth)
	case *Text:
		s.w.WriteString(EscapeText(x.Data))
	case *CDATASection:
		// Split any embedded "]]>" across sections.
		data := strings.ReplaceAll(x.Data, "]]>", "]]]]><![CDATA[>")
		s.w.WriteString("<![CDATA[" + data + "]]>")
	case *Comment:
		s.w.WriteString("<!--" + x.Data + "-->")
	case *ProcessingInstruction:
		s.w.WriteString("<?" + x.Target)
		if x.Data != "" {
			s.w.WriteString(" " + x.Data)
		}
		s.w.WriteString("?>")
	case *DocumentFragment:
		for _, c := range x.ChildNodes() {
			s.node(c, depth)
		}
	case *Attr:
		s.w.WriteString(x.NodeName() + `="` + EscapeAttr(x.Value()) + `"`)
	}
}

// hasMixedText reports whether e directly contains non-whitespace text.
func hasMixedText(e *Element) bool {
	for _, c := range e.ChildNodes() {
		switch t := c.(type) {
		case *Text:
			if !isAllSpace(t.Data) {
				return true
			}
		case *CDATASection:
			return true
		}
	}
	return false
}

func (s *serializer) element(e *Element, depth int) {
	s.w.WriteString("<" + e.TagName())
	for _, a := range e.Attributes() {
		s.w.WriteString(" " + a.NodeName() + `="` + EscapeAttr(a.Value()) + `"`)
	}
	kids := e.ChildNodes()
	if len(kids) == 0 {
		if s.opts.ExpandEmpty {
			s.w.WriteString("></" + e.TagName() + ">")
		} else {
			s.w.WriteString("/>")
		}
		return
	}
	s.w.WriteString(">")
	pretty := s.opts.Indent != "" && !hasMixedText(e)
	for _, c := range kids {
		if t, ok := c.(*Text); ok && pretty && isAllSpace(t.Data) {
			continue // drop ignorable whitespace when re-indenting
		}
		if pretty {
			s.indent(depth + 1)
		}
		s.node(c, depth+1)
	}
	if pretty {
		s.indent(depth)
	}
	s.w.WriteString("</" + e.TagName() + ">")
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '\r':
			sb.WriteString("&#xD;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// EscapeAttr escapes an attribute value for double-quoted output.
func EscapeAttr(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		case '\t':
			sb.WriteString("&#x9;")
		case '\n':
			sb.WriteString("&#xA;")
		case '\r':
			sb.WriteString("&#xD;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
