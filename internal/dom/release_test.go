package dom

import "testing"

// TestReleaseIdempotent guards the double-release contract: releasing a
// pooled document twice must be a no-op the second time, never a second
// round of sync.Pool Puts. A double Put would hand one slab to two
// documents at once — the next two NewPooledDocument parses would silently
// share node storage. Server error paths (defer Release + eager Release on
// the success path) make this an easy call pattern to hit.
func TestReleaseIdempotent(t *testing.T) {
	d := NewPooledDocument()
	root := d.CreateElementNS("", "root")
	root.SetAttributeNS("", "id", "r1")
	root.AppendChild(d.CreateTextNode("payload"))
	d.AppendChild(root)

	d.Release()
	if d.arena != nil {
		t.Fatal("arena still attached after Release")
	}
	// The regression: before the detach-first ordering, a second Release on
	// a partially-torn-down document could re-Put slabs. Now it must be a
	// pure no-op.
	d.Release()
	d.Release()

	// Fresh pooled documents after the double release must hand out
	// distinct node storage: build two side by side and check their nodes
	// do not alias.
	a, b := NewPooledDocument(), NewPooledDocument()
	ea := a.CreateElementNS("", "a")
	eb := b.CreateElementNS("", "b")
	if ea == eb {
		t.Fatal("two live pooled documents share an element slot — slab aliased by double release")
	}
	ea.SetAttributeNS("", "k", "va")
	eb.SetAttributeNS("", "k", "vb")
	if got := ea.GetAttributeNS("", "k"); got != "va" {
		t.Fatalf("document A's attribute clobbered to %q by document B", got)
	}
	a.Release()
	b.Release()
}

// TestReleaseOnUnpooledDocument checks Release is safe on documents that
// never had an arena (NewDocument, CloneNode results): the optional-call
// contract must not require callers to know how a document was built.
func TestReleaseOnUnpooledDocument(t *testing.T) {
	d := NewDocument()
	d.AppendChild(d.CreateElement("root"))
	d.Release()
	d.Release()
	if d.DocumentElement() == nil {
		t.Fatal("Release on an unpooled document must not tear it down")
	}
}
