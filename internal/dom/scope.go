package dom

import "repro/internal/xmlparser"

// DeclareInScopeNamespaces copies every namespace declaration in scope at
// e — inherited from its ancestors — onto e itself, skipping prefixes e
// already declares. After the call, serializing e alone produces a
// self-contained fragment: prefixes that were bound on an ancestor (a
// SOAP Envelope, a WSDL definitions element) stay bound when the subtree
// is detached and re-parsed.
//
// The nearest declaration of each prefix wins, matching XML namespace
// scoping; a default-namespace binding (xmlns="...") is copied like any
// other so unprefixed descendants keep their meaning. Declarations added
// deeper in the subtree still shadow the copied ones, so the subtree's
// own bindings are untouched.
func DeclareInScopeNamespaces(e *Element) {
	declared := map[string]bool{}
	for _, a := range e.Attributes() {
		if a.Name().Space == xmlparser.XMLNSNamespace {
			declared[a.Name().Local] = true
		}
	}
	for n := e.ParentNode(); n != nil; n = n.ParentNode() {
		anc, ok := n.(*Element)
		if !ok {
			break
		}
		for _, a := range anc.Attributes() {
			name := a.Name()
			if name.Space != xmlparser.XMLNSNamespace || declared[name.Local] {
				continue
			}
			declared[name.Local] = true
			qname := "xmlns"
			if name.Local != "xmlns" {
				qname = "xmlns:" + name.Local
			}
			e.SetAttributeNS(xmlparser.XMLNSNamespace, qname, a.Value())
		}
	}
}
