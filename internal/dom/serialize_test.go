package dom

import (
	"errors"
	"strings"
	"testing"
)

func TestExpandEmptyOption(t *testing.T) {
	d := mustParse(t, `<a><b/></a>`)
	var sb strings.Builder
	_ = Serialize(&sb, d.DocumentElement(), &SerializeOptions{ExpandEmpty: true})
	if sb.String() != "<a><b></b></a>" {
		t.Errorf("ExpandEmpty: %s", sb.String())
	}
}

func TestOmitXMLDecl(t *testing.T) {
	d := mustParse(t, `<?xml version="1.0"?><a/>`)
	var with, without strings.Builder
	_ = Serialize(&with, d, nil)
	_ = Serialize(&without, d, &SerializeOptions{OmitXMLDecl: true})
	if !strings.HasPrefix(with.String(), "<?xml") {
		t.Errorf("decl missing: %s", with.String())
	}
	if strings.Contains(without.String(), "<?xml") {
		t.Errorf("decl not omitted: %s", without.String())
	}
}

// failWriter fails after n bytes to exercise error latching.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestSerializeErrorPropagation(t *testing.T) {
	d := mustParse(t, `<a><b>some text content here</b><c/></a>`)
	err := Serialize(&failWriter{left: 5}, d, nil)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("write error not propagated: %v", err)
	}
}

func TestAttrNodeSerialization(t *testing.T) {
	d := NewDocument()
	a := d.CreateAttribute("key")
	a.SetValue(`va"l`)
	if got := ToString(a); got != `key="va&quot;l"` {
		t.Errorf("attr serialization: %s", got)
	}
}

func TestCommentAndPISerialization(t *testing.T) {
	d := NewDocument()
	e := d.CreateElement("r")
	_, _ = e.AppendChild(d.CreateComment(" note "))
	_, _ = e.AppendChild(d.CreateProcessingInstruction("target", "data"))
	_, _ = e.AppendChild(d.CreateProcessingInstruction("bare", ""))
	_, _ = d.AppendChild(e)
	got := ToString(e)
	if got != "<r><!-- note --><?target data?><?bare?></r>" {
		t.Errorf("comment/pi: %s", got)
	}
}

func TestPrettyPrintMixedContentPreserved(t *testing.T) {
	// Mixed content must not be re-indented (whitespace is significant).
	d := mustParse(t, `<p>hello <b>bold</b> world</p>`)
	out := ToStringIndent(d)
	if !strings.Contains(out, "hello <b>bold</b> world") {
		t.Errorf("mixed content reformatted:\n%s", out)
	}
}

func TestDocumentFragmentSerialization(t *testing.T) {
	d := NewDocument()
	f := d.CreateDocumentFragment()
	_, _ = f.AppendChild(d.CreateElement("a"))
	_, _ = f.AppendChild(d.CreateTextNode("x"))
	if got := ToString(f); got != "<a/>x" {
		t.Errorf("fragment: %s", got)
	}
}

func TestTextContentOnLeafKinds(t *testing.T) {
	d := NewDocument()
	if d.CreateComment("c").TextContent() != "" {
		t.Error("comment text content should not leak")
	}
	if d.CreateTextNode("t").TextContent() != "t" {
		t.Error("text node TextContent")
	}
	if d.CreateCDATASection("x").TextContent() != "x" {
		t.Error("cdata TextContent")
	}
}
