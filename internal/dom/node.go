package dom

import (
	"errors"
	"fmt"

	"repro/internal/xmlparser"
)

// NodeType identifies the concrete kind of a Node, mirroring DOM Level 1.
type NodeType int

// Node types (values match DOM Level 1).
const (
	ElementNode NodeType = iota + 1
	AttributeNode
	TextNode
	CDATASectionNode
	_ // EntityReferenceNode: unsupported
	_ // EntityNode: unsupported
	ProcessingInstructionNode
	CommentNode
	DocumentNode
	DocumentTypeNode
	DocumentFragmentNode
)

// String returns the DOM interface name of the node type.
func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "Element"
	case AttributeNode:
		return "Attr"
	case TextNode:
		return "Text"
	case CDATASectionNode:
		return "CDATASection"
	case ProcessingInstructionNode:
		return "ProcessingInstruction"
	case CommentNode:
		return "Comment"
	case DocumentNode:
		return "Document"
	case DocumentTypeNode:
		return "DocumentType"
	case DocumentFragmentNode:
		return "DocumentFragment"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Hierarchy errors returned by tree mutations.
var (
	ErrHierarchy     = errors.New("dom: hierarchy request error")
	ErrWrongDocument = errors.New("dom: node belongs to a different document")
	ErrNotFound      = errors.New("dom: node not found")
)

// Node is the common interface of all tree nodes.
type Node interface {
	// NodeType returns the concrete node kind.
	NodeType() NodeType
	// NodeName returns the DOM nodeName (tag name, "#text", ...).
	NodeName() string
	// NodeValue returns the DOM nodeValue (text data, attr value, ...).
	NodeValue() string
	// ParentNode returns the parent, or nil.
	ParentNode() Node
	// ChildNodes returns the children in document order. The returned
	// slice is the live backing store and must not be mutated by callers.
	ChildNodes() []Node
	// FirstChild returns the first child or nil.
	FirstChild() Node
	// LastChild returns the last child or nil.
	LastChild() Node
	// PreviousSibling returns the sibling before this node, or nil.
	PreviousSibling() Node
	// NextSibling returns the sibling after this node, or nil.
	NextSibling() Node
	// OwnerDocument returns the document this node belongs to (nil for a
	// Document itself).
	OwnerDocument() *Document
	// HasChildNodes reports whether the node has any children.
	HasChildNodes() bool
	// AppendChild appends newChild, removing it from its old parent
	// first, and returns it.
	AppendChild(newChild Node) (Node, error)
	// InsertBefore inserts newChild before ref (or appends when ref is
	// nil) and returns it.
	InsertBefore(newChild, ref Node) (Node, error)
	// RemoveChild detaches oldChild and returns it.
	RemoveChild(oldChild Node) (Node, error)
	// ReplaceChild replaces oldChild with newChild and returns oldChild.
	ReplaceChild(newChild, oldChild Node) (Node, error)
	// CloneNode copies the node; deep copies the subtree too.
	CloneNode(deep bool) Node
	// TextContent returns the concatenated text of all descendant text
	// and CDATA nodes.
	TextContent() string

	base() *node
}

// node is the shared implementation embedded by all concrete node types.
type node struct {
	self     Node // the concrete node embedding this base
	doc      *Document
	parent   Node
	children []Node
	index    int // position within parent.children
}

func (n *node) base() *node         { return n }
func (n *node) ParentNode() Node    { return n.parent }
func (n *node) ChildNodes() []Node  { return n.children }
func (n *node) HasChildNodes() bool { return len(n.children) > 0 }

func (n *node) FirstChild() Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[0]
}

func (n *node) LastChild() Node {
	if len(n.children) == 0 {
		return nil
	}
	return n.children[len(n.children)-1]
}

func (n *node) PreviousSibling() Node {
	if n.parent == nil {
		return nil
	}
	sibs := n.parent.base().children
	if n.index <= 0 || n.index >= len(sibs) {
		return nil
	}
	return sibs[n.index-1]
}

func (n *node) NextSibling() Node {
	if n.parent == nil {
		return nil
	}
	sibs := n.parent.base().children
	if n.index < 0 || n.index+1 >= len(sibs) {
		return nil
	}
	return sibs[n.index+1]
}

func (n *node) OwnerDocument() *Document {
	if n.self != nil {
		if d, ok := n.self.(*Document); ok {
			_ = d
			return nil
		}
	}
	return n.doc
}

// reindex renumbers children starting at from.
func (n *node) reindex(from int) {
	for i := from; i < len(n.children); i++ {
		n.children[i].base().index = i
	}
}

// canContain reports whether parent may hold a child of type ct.
func canContain(parent Node, child Node) error {
	ct := child.NodeType()
	switch parent.NodeType() {
	case DocumentNode:
		switch ct {
		case ElementNode:
			d := parent.(*Document)
			if root := d.DocumentElement(); root != nil && root != child {
				return fmt.Errorf("%w: document already has a root element", ErrHierarchy)
			}
			return nil
		case CommentNode, ProcessingInstructionNode, DocumentTypeNode:
			return nil
		default:
			return fmt.Errorf("%w: %v cannot be a document child", ErrHierarchy, ct)
		}
	case ElementNode, DocumentFragmentNode:
		switch ct {
		case ElementNode, TextNode, CDATASectionNode, CommentNode, ProcessingInstructionNode:
			return nil
		default:
			return fmt.Errorf("%w: %v cannot be an element child", ErrHierarchy, ct)
		}
	default:
		return fmt.Errorf("%w: %v cannot have children", ErrHierarchy, parent.NodeType())
	}
}

// checkInsert validates document ownership, containment rules and cycles.
func (n *node) checkInsert(newChild Node) error {
	if newChild == nil {
		return fmt.Errorf("%w: nil child", ErrHierarchy)
	}
	nd := newChild.OwnerDocument()
	var selfDoc *Document
	if d, ok := n.self.(*Document); ok {
		selfDoc = d
	} else {
		selfDoc = n.doc
	}
	if nd != nil && selfDoc != nil && nd != selfDoc {
		return ErrWrongDocument
	}
	if err := canContain(n.self, newChild); err != nil {
		return err
	}
	// Cycle check: newChild must not be this node or an ancestor of it.
	for a := n.self; a != nil; a = a.ParentNode() {
		if a == newChild {
			return fmt.Errorf("%w: insertion would create a cycle", ErrHierarchy)
		}
	}
	return nil
}

// detach removes child from its current parent, if any.
func detach(child Node) {
	b := child.base()
	if b.parent == nil {
		return
	}
	pb := b.parent.base()
	pb.children = append(pb.children[:b.index], pb.children[b.index+1:]...)
	pb.reindex(b.index)
	b.parent = nil
	b.index = 0
}

func (n *node) AppendChild(newChild Node) (Node, error) {
	return n.insertAt(newChild, len(n.children))
}

func (n *node) InsertBefore(newChild, ref Node) (Node, error) {
	if ref == nil {
		return n.AppendChild(newChild)
	}
	rb := ref.base()
	if rb.parent != n.self {
		return nil, fmt.Errorf("%w: reference node is not a child", ErrNotFound)
	}
	return n.insertAt(newChild, rb.index)
}

// insertAt performs the checked insertion, expanding fragments.
func (n *node) insertAt(newChild Node, at int) (Node, error) {
	if newChild != nil && newChild.NodeType() == DocumentFragmentNode {
		// Insert the fragment's children, leaving the fragment empty.
		kids := append([]Node(nil), newChild.ChildNodes()...)
		for _, k := range kids {
			if err := n.base().checkInsert(k); err != nil {
				return nil, err
			}
		}
		for _, k := range kids {
			// If k's parent is the fragment and it precedes 'at' in
			// this node... it cannot: the fragment is a different
			// parent, so positions are independent.
			detach(k)
			if _, err := n.insertAt(k, at); err != nil {
				return nil, err
			}
			at++
		}
		return newChild, nil
	}
	if err := n.checkInsert(newChild); err != nil {
		return nil, err
	}
	cb := newChild.base()
	if cb.parent == n.self && cb.index < at {
		at-- // removing it first shifts the insertion point
	}
	detach(newChild)
	if at < 0 || at > len(n.children) {
		at = len(n.children)
	}
	n.children = append(n.children, nil)
	copy(n.children[at+1:], n.children[at:])
	n.children[at] = newChild
	cb.parent = n.self
	n.reindex(at)
	return newChild, nil
}

func (n *node) RemoveChild(oldChild Node) (Node, error) {
	if oldChild == nil || oldChild.base().parent != n.self {
		return nil, fmt.Errorf("%w: not a child of this node", ErrNotFound)
	}
	detach(oldChild)
	return oldChild, nil
}

func (n *node) ReplaceChild(newChild, oldChild Node) (Node, error) {
	if oldChild == nil || oldChild.base().parent != n.self {
		return nil, fmt.Errorf("%w: not a child of this node", ErrNotFound)
	}
	at := oldChild.base().index
	detach(oldChild)
	if _, err := n.insertAt(newChild, at); err != nil {
		// Restore oldChild on failure.
		_, _ = n.insertAt(oldChild, at)
		return nil, err
	}
	return oldChild, nil
}

func (n *node) TextContent() string {
	var out []byte
	var walk func(Node)
	walk = func(x Node) {
		switch x.NodeType() {
		case TextNode, CDATASectionNode:
			out = append(out, x.NodeValue()...)
		default:
			for _, c := range x.ChildNodes() {
				walk(c)
			}
		}
	}
	walk(n.self)
	return string(out)
}

// cloneChildrenInto deep-copies the children of src into dst.
func cloneChildrenInto(dst, src Node) {
	for _, c := range src.ChildNodes() {
		cc := c.CloneNode(true)
		_, _ = dst.AppendChild(cc)
	}
}

// Name is re-exported so that dom users need not import xmlparser.
type Name = xmlparser.Name
