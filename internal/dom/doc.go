// Package dom implements a Document Object Model core in the spirit of DOM
// Level 1/2, over the xmlparser token stream.
//
// This is the paper's *untyped* baseline: every element is a generic
// *Element, every tree mutation is legal as long as the generic hierarchy
// constraints hold, and validity against a schema can only be established
// by running a validator over the finished tree (package validator). The
// typed counterpart that makes invalid trees unrepresentable is package
// vdom.
//
// # Role in the pipeline
//
// dom sits beside the pipeline proper (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml) as the document
// substrate: xmlparser tokens are assembled into dom trees, the runtime
// validator walks them, and vdom's typed nodes materialize into them for
// serialization.
//
// # Allocation
//
// Parse builds its documents from a pooled slab arena (NewPooledDocument):
// Element, Text and Attr nodes are handed out from 64-entry slabs
// recycled through sync.Pools, so the per-node allocations that dominate
// DOM build cost disappear on warm parse loops. Callers on hot
// parse-validate-discard paths may call Document.Release to return the
// slabs immediately; after Release no node of that document may be
// touched. Releasing is optional — an un-Released document is simply
// collected by the GC.
//
// # Concurrency
//
// Documents are plain mutable trees with no internal locking or lazily
// computed state. Any number of goroutines may read one document
// concurrently (all accessors are pure) — that is what lets the
// validator's ValidateBatch share a parsed schema-side document across
// workers — but mutation requires external synchronization: never mutate
// a node while another goroutine reads or writes the same tree. Distinct
// documents are fully independent.
package dom
