package dom

import "strings"

// Document is the root of a DOM tree and the factory for all node kinds.
type Document struct {
	node
	// Version and Encoding record the XML declaration, if present.
	Version  string
	Encoding string
	// Doctype is the document type node, if the document had one.
	Doctype *DocumentType
	// arena, when set, backs Element/Text/Attr creation with pooled slabs
	// (see arena.go); nil for documents built node by node.
	arena *arena
}

// NewDocument creates an empty document.
func NewDocument() *Document {
	d := &Document{}
	d.self = d
	return d
}

// NodeType implements Node.
func (d *Document) NodeType() NodeType { return DocumentNode }

// NodeName implements Node.
func (d *Document) NodeName() string { return "#document" }

// NodeValue implements Node.
func (d *Document) NodeValue() string { return "" }

// DocumentElement returns the root element, or nil.
func (d *Document) DocumentElement() *Element {
	for _, c := range d.children {
		if e, ok := c.(*Element); ok {
			return e
		}
	}
	return nil
}

// CreateElement creates an element with no namespace.
func (d *Document) CreateElement(tag string) *Element {
	return d.CreateElementNS("", tag)
}

// CreateElementNS creates an element with the given namespace URI and
// qualified name ("prefix:local" or "local").
func (d *Document) CreateElementNS(ns, qname string) *Element {
	var e *Element
	if d.arena != nil {
		e = d.arena.newElement()
	} else {
		e = &Element{}
	}
	e.self = e
	e.doc = d
	e.name = parseQName(ns, qname)
	return e
}

// CreateTextNode creates a text node.
func (d *Document) CreateTextNode(data string) *Text {
	var t *Text
	if d.arena != nil {
		t = d.arena.newText()
	} else {
		t = &Text{}
	}
	t.self = t
	t.doc = d
	t.Data = data
	return t
}

// CreateCDATASection creates a CDATA section node.
func (d *Document) CreateCDATASection(data string) *CDATASection {
	c := &CDATASection{}
	c.self = c
	c.doc = d
	c.Data = data
	return c
}

// CreateComment creates a comment node.
func (d *Document) CreateComment(data string) *Comment {
	c := &Comment{}
	c.self = c
	c.doc = d
	c.Data = data
	return c
}

// CreateProcessingInstruction creates a PI node.
func (d *Document) CreateProcessingInstruction(target, data string) *ProcessingInstruction {
	p := &ProcessingInstruction{Target: target, Data: data}
	p.self = p
	p.doc = d
	return p
}

// CreateDocumentFragment creates an empty fragment.
func (d *Document) CreateDocumentFragment() *DocumentFragment {
	f := &DocumentFragment{}
	f.self = f
	f.doc = d
	return f
}

// CreateAttribute creates a detached attribute node.
func (d *Document) CreateAttribute(qname string) *Attr {
	return d.CreateAttributeNS("", qname)
}

// CreateAttributeNS creates a detached namespaced attribute node.
func (d *Document) CreateAttributeNS(ns, qname string) *Attr {
	var a *Attr
	if d.arena != nil {
		a = d.arena.newAttr()
	} else {
		a = &Attr{}
	}
	a.self = a
	a.doc = d
	a.name = parseQName(ns, qname)
	return a
}

// GetElementsByTagName returns all descendant elements with the given tag
// name in document order; "*" matches every element.
func (d *Document) GetElementsByTagName(tag string) []*Element {
	return elementsByTagName(d, "", tag, false)
}

// GetElementsByTagNameNS is the namespace-aware variant; "*" wildcards are
// accepted for both the namespace and the local name.
func (d *Document) GetElementsByTagNameNS(ns, local string) []*Element {
	return elementsByTagName(d, ns, local, true)
}

// CloneNode implements Node.
func (d *Document) CloneNode(deep bool) Node {
	nd := NewDocument()
	nd.Version, nd.Encoding = d.Version, d.Encoding
	if deep {
		for _, c := range d.children {
			_, _ = nd.AppendChild(importNode(nd, c))
		}
	}
	return nd
}

// ImportNode copies a node from another document into this one (always a
// copy; deep selects subtree copying).
func (d *Document) ImportNode(n Node, deep bool) Node {
	if !deep {
		return importShallow(d, n)
	}
	return importNode(d, n)
}

// importNode deep-copies n into document d.
func importNode(d *Document, n Node) Node {
	c := importShallow(d, n)
	for _, k := range n.ChildNodes() {
		_, _ = c.AppendChild(importNode(d, k))
	}
	return c
}

func importShallow(d *Document, n Node) Node {
	switch x := n.(type) {
	case *Element:
		e := d.CreateElementNS(x.name.Space, x.name.Qualified())
		for _, a := range x.attrs {
			e.SetAttributeNS(a.name.Space, a.name.Qualified(), a.value)
		}
		return e
	case *Text:
		return d.CreateTextNode(x.Data)
	case *CDATASection:
		return d.CreateCDATASection(x.Data)
	case *Comment:
		return d.CreateComment(x.Data)
	case *ProcessingInstruction:
		return d.CreateProcessingInstruction(x.Target, x.Data)
	case *DocumentFragment:
		return d.CreateDocumentFragment()
	default:
		panic("dom: cannot import " + n.NodeType().String())
	}
}

// parseQName splits a qualified name and attaches the namespace.
func parseQName(ns, qname string) Name {
	n := Name{Space: ns}
	if i := strings.IndexByte(qname, ':'); i >= 0 {
		n.Prefix, n.Local = qname[:i], qname[i+1:]
	} else {
		n.Local = qname
	}
	return n
}

// elementsByTagName walks the subtree collecting matching elements.
func elementsByTagName(root Node, ns, local string, nsAware bool) []*Element {
	var out []*Element
	var walk func(Node)
	walk = func(n Node) {
		for _, c := range n.ChildNodes() {
			if e, ok := c.(*Element); ok {
				if matchTag(e, ns, local, nsAware) {
					out = append(out, e)
				}
			}
			walk(c)
		}
	}
	walk(root)
	return out
}

func matchTag(e *Element, ns, local string, nsAware bool) bool {
	if !nsAware {
		return local == "*" || e.TagName() == local
	}
	nsOK := ns == "*" || e.name.Space == ns
	localOK := local == "*" || e.name.Local == local
	return nsOK && localOK
}

// DocumentType is a doctype node; the declarations of its internal subset
// are kept as raw text (package dtd parses them).
type DocumentType struct {
	node
	// Name is the doctype name (the root element type).
	Name string
	// ExternalID is the raw SYSTEM/PUBLIC identifier text, if any.
	ExternalID string
	// InternalSubset is the raw internal subset text, if any.
	InternalSubset string
}

// NodeType implements Node.
func (t *DocumentType) NodeType() NodeType { return DocumentTypeNode }

// NodeName implements Node.
func (t *DocumentType) NodeName() string { return t.Name }

// NodeValue implements Node.
func (t *DocumentType) NodeValue() string { return "" }

// CloneNode implements Node.
func (t *DocumentType) CloneNode(bool) Node {
	c := &DocumentType{Name: t.Name, ExternalID: t.ExternalID, InternalSubset: t.InternalSubset}
	c.self = c
	c.doc = t.doc
	return c
}

// DocumentFragment is a lightweight container; inserting it inserts its
// children.
type DocumentFragment struct{ node }

// NodeType implements Node.
func (f *DocumentFragment) NodeType() NodeType { return DocumentFragmentNode }

// NodeName implements Node.
func (f *DocumentFragment) NodeName() string { return "#document-fragment" }

// NodeValue implements Node.
func (f *DocumentFragment) NodeValue() string { return "" }

// CloneNode implements Node.
func (f *DocumentFragment) CloneNode(deep bool) Node {
	c := f.doc.CreateDocumentFragment()
	if deep {
		cloneChildrenInto(c, f)
	}
	return c
}
