package dom

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	d, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return d
}

func TestParseBuildsTree(t *testing.T) {
	d := mustParse(t, `<a x="1"><b>hi</b><c/></a>`)
	root := d.DocumentElement()
	if root == nil || root.TagName() != "a" {
		t.Fatalf("root: %v", root)
	}
	if root.GetAttribute("x") != "1" {
		t.Errorf("attr x: %q", root.GetAttribute("x"))
	}
	kids := root.ChildElements()
	if len(kids) != 2 || kids[0].TagName() != "b" || kids[1].TagName() != "c" {
		t.Fatalf("children: %v", kids)
	}
	if kids[0].TextContent() != "hi" {
		t.Errorf("text content: %q", kids[0].TextContent())
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []string{
		`<a><b x="1">text</b><c/></a>`,
		`<a>one<b/>two</a>`,
		`<r><!--c--><?pi data?><![CDATA[raw <markup>]]></r>`,
		`<p:a xmlns:p="urn:x" p:k="v"><p:b/></p:a>`,
	}
	for _, src := range cases {
		d := mustParse(t, src)
		var sb strings.Builder
		if err := Serialize(&sb, d, &SerializeOptions{OmitXMLDecl: true}); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		// Reparse the output and compare canonical dumps.
		d2 := mustParse(t, sb.String())
		if Dump(d) != Dump(d2) {
			t.Errorf("round trip changed tree for %q:\nfirst:\n%s\nsecond:\n%s", src, Dump(d), Dump(d2))
		}
	}
}

func TestEscaping(t *testing.T) {
	d := NewDocument()
	e := d.CreateElement("e")
	e.SetAttribute("a", `<&">`)
	_, _ = e.AppendChild(d.CreateTextNode(`a<b & c>d`))
	_, _ = d.AppendChild(e)
	got := ToString(e)
	want := `<e a="&lt;&amp;&quot;>">a&lt;b &amp; c&gt;d</e>`
	if got != want {
		t.Errorf("escaping:\ngot  %s\nwant %s", got, want)
	}
	// The output must reparse to the same values.
	d2 := mustParse(t, got)
	r := d2.DocumentElement()
	if r.GetAttribute("a") != `<&">` || r.TextContent() != `a<b & c>d` {
		t.Errorf("reparse: attr=%q text=%q", r.GetAttribute("a"), r.TextContent())
	}
}

func TestCDATASplitting(t *testing.T) {
	d := NewDocument()
	e := d.CreateElement("e")
	_, _ = e.AppendChild(d.CreateCDATASection("a]]>b"))
	_, _ = d.AppendChild(e)
	out := ToString(e)
	d2 := mustParse(t, out)
	if got := d2.DocumentElement().TextContent(); got != "a]]>b" {
		t.Errorf("cdata round trip: %q (serialized %q)", got, out)
	}
}

func TestSingleRootEnforced(t *testing.T) {
	d := NewDocument()
	_, _ = d.AppendChild(d.CreateElement("a"))
	_, err := d.AppendChild(d.CreateElement("b"))
	if !errors.Is(err, ErrHierarchy) {
		t.Errorf("second root: got %v", err)
	}
	// Comments and PIs are fine.
	if _, err := d.AppendChild(d.CreateComment("ok")); err != nil {
		t.Errorf("comment at doc level: %v", err)
	}
}

func TestTextCannotHaveChildren(t *testing.T) {
	d := NewDocument()
	txt := d.CreateTextNode("x")
	_, err := txt.AppendChild(d.CreateTextNode("y"))
	if !errors.Is(err, ErrHierarchy) {
		t.Errorf("text child: got %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	d := NewDocument()
	a := d.CreateElement("a")
	b := d.CreateElement("b")
	_, _ = a.AppendChild(b)
	if _, err := b.AppendChild(a); !errors.Is(err, ErrHierarchy) {
		t.Errorf("cycle: got %v", err)
	}
	if _, err := a.AppendChild(a); !errors.Is(err, ErrHierarchy) {
		t.Errorf("self append: got %v", err)
	}
}

func TestWrongDocumentRejected(t *testing.T) {
	d1, d2 := NewDocument(), NewDocument()
	e := d1.CreateElement("e")
	r := d2.CreateElement("r")
	_, _ = d2.AppendChild(r)
	if _, err := r.AppendChild(e); !errors.Is(err, ErrWrongDocument) {
		t.Errorf("cross document: got %v", err)
	}
	// ImportNode fixes it.
	imp := d2.ImportNode(e, true)
	if _, err := r.AppendChild(imp); err != nil {
		t.Errorf("after import: %v", err)
	}
}

func TestInsertBeforeAndSiblings(t *testing.T) {
	d := NewDocument()
	r := d.CreateElement("r")
	a := d.CreateElement("a")
	c := d.CreateElement("c")
	_, _ = r.AppendChild(a)
	_, _ = r.AppendChild(c)
	b := d.CreateElement("b")
	if _, err := r.InsertBefore(b, c); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, k := range r.ChildNodes() {
		names = append(names, k.NodeName())
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("order: %v", names)
	}
	if b.PreviousSibling() != Node(a) || b.NextSibling() != Node(c) {
		t.Errorf("sibling links wrong")
	}
	if a.PreviousSibling() != nil || c.NextSibling() != nil {
		t.Errorf("end sibling links wrong")
	}
}

func TestRemoveAndReplace(t *testing.T) {
	d := mustParse(t, `<r><a/><b/><c/></r>`)
	r := d.DocumentElement()
	b := r.ChildElements()[1]
	if _, err := r.RemoveChild(b); err != nil {
		t.Fatal(err)
	}
	if len(r.ChildElements()) != 2 || b.ParentNode() != nil {
		t.Errorf("remove failed")
	}
	x := d.CreateElement("x")
	old := r.ChildElements()[0]
	if _, err := r.ReplaceChild(x, old); err != nil {
		t.Fatal(err)
	}
	if r.ChildElements()[0].TagName() != "x" {
		t.Errorf("replace order: %v", ToString(r))
	}
	if _, err := r.RemoveChild(old); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: got %v", err)
	}
}

func TestReparentingMove(t *testing.T) {
	d := mustParse(t, `<r><a><x/></a><b/></r>`)
	r := d.DocumentElement()
	a, b := r.ChildElements()[0], r.ChildElements()[1]
	x := a.ChildElements()[0]
	if _, err := b.AppendChild(x); err != nil {
		t.Fatal(err)
	}
	if len(a.ChildElements()) != 0 || x.ParentNode() != Node(b) {
		t.Errorf("move failed: %s", ToString(r))
	}
}

func TestMoveEarlierSibling(t *testing.T) {
	d := mustParse(t, `<r><a/><b/><c/></r>`)
	r := d.DocumentElement()
	a, c := r.ChildElements()[0], r.ChildElements()[2]
	// Move a to just before c (i.e. after b).
	if _, err := r.InsertBefore(a, c); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, k := range r.ChildNodes() {
		names = append(names, k.NodeName())
	}
	if strings.Join(names, ",") != "b,a,c" {
		t.Errorf("order after move: %v", names)
	}
}

func TestDocumentFragment(t *testing.T) {
	d := mustParse(t, `<r><z/></r>`)
	r := d.DocumentElement()
	f := d.CreateDocumentFragment()
	_, _ = f.AppendChild(d.CreateElement("a"))
	_, _ = f.AppendChild(d.CreateElement("b"))
	if _, err := r.InsertBefore(f, r.FirstChild()); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, k := range r.ChildNodes() {
		names = append(names, k.NodeName())
	}
	if strings.Join(names, ",") != "a,b,z" {
		t.Errorf("fragment insert: %v", names)
	}
	if f.HasChildNodes() {
		t.Errorf("fragment should be empty after insertion")
	}
}

func TestCloneNode(t *testing.T) {
	d := mustParse(t, `<r k="v"><a><b>t</b></a></r>`)
	r := d.DocumentElement()
	shallow := r.CloneNode(false).(*Element)
	if shallow.HasChildNodes() || shallow.GetAttribute("k") != "v" {
		t.Errorf("shallow clone wrong: %s", ToString(shallow))
	}
	deep := r.CloneNode(true).(*Element)
	if ToString(deep) != ToString(r) {
		t.Errorf("deep clone: %s != %s", ToString(deep), ToString(r))
	}
	// Mutating the clone must not affect the original.
	deep.ChildElements()[0].SetAttribute("new", "1")
	if r.ChildElements()[0].HasAttribute("new") {
		t.Errorf("clone aliases original")
	}
}

func TestAttributesNSAndOrder(t *testing.T) {
	d := NewDocument()
	e := d.CreateElement("e")
	e.SetAttribute("b", "2")
	e.SetAttribute("a", "1")
	e.SetAttributeNS("urn:x", "p:c", "3")
	if got := len(e.Attributes()); got != 3 {
		t.Fatalf("attr count: %d", got)
	}
	// Document order is insertion order.
	if e.Attributes()[0].NodeName() != "b" {
		t.Errorf("attr order: %v", e.Attributes()[0].NodeName())
	}
	if e.GetAttributeNS("urn:x", "c") != "3" {
		t.Errorf("ns attr lookup failed")
	}
	e.SetAttribute("b", "22") // replace keeps position
	if e.Attributes()[0].Value() != "22" {
		t.Errorf("attr replace: %v", e.Attributes()[0].Value())
	}
	e.RemoveAttributeNS("urn:x", "c")
	if e.HasAttributeNS("urn:x", "c") {
		t.Errorf("remove ns attr failed")
	}
}

func TestGetElementsByTagName(t *testing.T) {
	d := mustParse(t, `<r><a/><b><a/><c><a/></c></b></r>`)
	if got := len(d.GetElementsByTagName("a")); got != 3 {
		t.Errorf("GetElementsByTagName(a): %d", got)
	}
	if got := len(d.GetElementsByTagName("*")); got != 6 { // includes the root
		t.Errorf("GetElementsByTagName(*): %d", got)
	}
}

func TestGetElementsByTagNameNS(t *testing.T) {
	d := mustParse(t, `<r xmlns:p="urn:x"><p:a/><a/></r>`)
	if got := len(d.GetElementsByTagNameNS("urn:x", "a")); got != 1 {
		t.Errorf("ns lookup: %d", got)
	}
	if got := len(d.GetElementsByTagNameNS("*", "a")); got != 2 {
		t.Errorf("ns wildcard: %d", got)
	}
}

func TestTextContentConcat(t *testing.T) {
	d := mustParse(t, `<r>a<b>b<c>c</c></b>d</r>`)
	if got := d.DocumentElement().TextContent(); got != "abcd" {
		t.Errorf("TextContent: %q", got)
	}
}

func TestPrettyPrint(t *testing.T) {
	d := mustParse(t, `<r><a><b>x</b></a></r>`)
	out := ToStringIndent(d)
	if !strings.Contains(out, "\n  <a>") || !strings.Contains(out, "<b>x</b>") {
		t.Errorf("pretty print:\n%s", out)
	}
	// Pretty output must reparse to the same element structure.
	d2 := mustParse(t, out)
	if DumpElements(d) != DumpElements(d2) {
		t.Errorf("pretty print changed structure")
	}
}

func TestDoctypePreserved(t *testing.T) {
	src := `<!DOCTYPE r [<!ELEMENT r EMPTY>]><r/>`
	d := mustParse(t, src)
	if d.Doctype == nil || d.Doctype.Name != "r" {
		t.Fatalf("doctype missing")
	}
	out := ToString(d)
	if !strings.Contains(out, "<!DOCTYPE r [") {
		t.Errorf("doctype not serialized: %s", out)
	}
}

func TestXMLDeclRecorded(t *testing.T) {
	d := mustParse(t, `<?xml version="1.0" encoding="UTF-8"?><r/>`)
	if d.Version != "1.0" || d.Encoding != "UTF-8" {
		t.Errorf("decl: version=%q encoding=%q", d.Version, d.Encoding)
	}
}

func TestDumpFig4Style(t *testing.T) {
	// Paper Fig. 4: in plain DOM every node is just "Element" — the dump
	// shows the generic interface for each node.
	d := mustParse(t, `<purchaseOrder orderDate="1999-10-20"><shipTo country="US"><name>Alice Smith</name></shipTo></purchaseOrder>`)
	got := Dump(d.DocumentElement())
	for _, want := range []string{"Element purchaseOrder", "Element shipTo", "Element name", `Text "Alice Smith"`} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}
