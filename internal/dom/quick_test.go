package dom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomTree builds a random element tree with text, comments, attributes.
func randomTree(r *rand.Rand, doc *Document, depth int) *Element {
	e := doc.CreateElement(fmt.Sprintf("e%d", r.Intn(8)))
	for i := 0; i < r.Intn(3); i++ {
		e.SetAttribute(fmt.Sprintf("a%d", i), randText(r))
	}
	if depth >= 4 {
		return e
	}
	for i := 0; i < r.Intn(4); i++ {
		switch r.Intn(4) {
		case 0:
			// Avoid empty and adjacent text nodes: the serializer
			// cannot represent the boundary between two text nodes,
			// so they legitimately merge on reparse.
			if t := randText(r); t != "" {
				if _, isText := e.LastChild().(*Text); !isText || e.LastChild() == nil {
					_, _ = e.AppendChild(doc.CreateTextNode(t))
				}
			}
		case 1:
			_, _ = e.AppendChild(doc.CreateComment("c" + fmt.Sprint(r.Intn(10))))
		default:
			_, _ = e.AppendChild(randomTree(r, doc, depth+1))
		}
	}
	return e
}

// randText produces text with characters that need escaping.
func randText(r *rand.Rand) string {
	alphabet := []string{"a", "b", "<", ">", "&", "\"", "'", " ", "é", "\n"}
	n := r.Intn(8)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(alphabet[r.Intn(len(alphabet))])
	}
	return sb.String()
}

// TestQuickSerializeParseRoundTrip: serialize(parse(serialize(t))) is
// stable and value-preserving for random trees — the fundamental
// serializer/parser inverse property.
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		doc := NewDocument()
		root := randomTree(r, doc, 0)
		_, _ = doc.AppendChild(root)

		out1 := ToString(doc)
		doc2, err := ParseString(out1)
		if err != nil {
			t.Fatalf("iteration %d: reparse failed: %v\n%s", i, err, out1)
		}
		out2 := ToString(doc2)
		if out1 != out2 {
			t.Fatalf("iteration %d: serialization not stable:\n%s\n%s", i, out1, out2)
		}
		if Dump(doc) != Dump(doc2) {
			t.Fatalf("iteration %d: tree changed across round trip", i)
		}
	}
}

// TestQuickMutationInvariants: random mutations keep parent/child/sibling
// links consistent.
func TestQuickMutationInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	doc := NewDocument()
	root := doc.CreateElement("root")
	_, _ = doc.AppendChild(root)
	var pool []*Element
	pool = append(pool, root)
	for i := 0; i < 400; i++ {
		switch r.Intn(3) {
		case 0: // add
			parent := pool[r.Intn(len(pool))]
			e := doc.CreateElement(fmt.Sprintf("n%d", i))
			if _, err := parent.AppendChild(e); err == nil {
				pool = append(pool, e)
			}
		case 1: // move (may legitimately fail on cycles)
			if len(pool) > 2 {
				from := pool[r.Intn(len(pool))]
				to := pool[r.Intn(len(pool))]
				_, _ = to.AppendChild(from)
			}
		case 2: // remove a leaf
			if len(pool) > 1 {
				idx := 1 + r.Intn(len(pool)-1)
				e := pool[idx]
				if p := e.ParentNode(); p != nil && !e.HasChildNodes() {
					_, _ = p.RemoveChild(e)
					pool = append(pool[:idx], pool[idx+1:]...)
				}
			}
		}
		checkLinks(t, root)
	}
}

// checkLinks asserts structural invariants over the whole tree.
func checkLinks(t *testing.T, n Node) {
	t.Helper()
	kids := n.ChildNodes()
	for i, c := range kids {
		if c.ParentNode() != n {
			t.Fatalf("child %d has wrong parent", i)
		}
		if i > 0 && c.PreviousSibling() != kids[i-1] {
			t.Fatalf("broken previous-sibling link at %d", i)
		}
		if i < len(kids)-1 && c.NextSibling() != kids[i+1] {
			t.Fatalf("broken next-sibling link at %d", i)
		}
		checkLinks(t, c)
	}
	if len(kids) > 0 {
		if n.FirstChild() != kids[0] || n.LastChild() != kids[len(kids)-1] {
			t.Fatal("first/last child mismatch")
		}
	}
}

// TestQuickEscaping: every string survives attribute and text escaping.
func TestQuickEscaping(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 800; i++ {
		s := randText(r)
		doc := NewDocument()
		e := doc.CreateElement("e")
		e.SetAttribute("k", s)
		_, _ = e.AppendChild(doc.CreateTextNode(s))
		_, _ = doc.AppendChild(e)
		doc2, err := ParseString(ToString(doc))
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		r2 := doc2.DocumentElement()
		// Text round trip normalizes CR to LF (XML end-of-line rules).
		wantText := strings.ReplaceAll(s, "\r", "\n")
		wantAttr := strings.ReplaceAll(s, "\r", " ")
		_ = wantAttr
		if got := r2.TextContent(); got != wantText {
			t.Fatalf("text %q -> %q", s, got)
		}
		if got := r2.GetAttribute("k"); got != s {
			t.Fatalf("attr %q -> %q", s, got)
		}
	}
}
