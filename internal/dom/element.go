package dom

// Element is an XML element node with ordered, namespace-aware attributes.
type Element struct {
	node
	name  Name
	attrs []*Attr
}

// NodeType implements Node.
func (e *Element) NodeType() NodeType { return ElementNode }

// NodeName implements Node; it returns the qualified tag name.
func (e *Element) NodeName() string { return e.name.Qualified() }

// NodeValue implements Node.
func (e *Element) NodeValue() string { return "" }

// TagName returns the qualified tag name (prefix:local).
func (e *Element) TagName() string { return e.name.Qualified() }

// Name returns the full namespace-resolved name.
func (e *Element) Name() Name { return e.name }

// LocalName returns the local part of the element name.
func (e *Element) LocalName() string { return e.name.Local }

// NamespaceURI returns the element's namespace URI ("" if none).
func (e *Element) NamespaceURI() string { return e.name.Space }

// Attributes returns the attributes in document order. The slice is the
// live backing store and must not be mutated by callers.
func (e *Element) Attributes() []*Attr { return e.attrs }

// findAttr locates an attribute by namespace and local name.
func (e *Element) findAttr(ns, local string) int {
	for i, a := range e.attrs {
		if a.name.Local == local && a.name.Space == ns {
			return i
		}
	}
	return -1
}

// GetAttribute returns the value of the no-namespace attribute named local,
// or "" when absent.
func (e *Element) GetAttribute(local string) string {
	return e.GetAttributeNS("", local)
}

// GetAttributeNS returns the value of the attribute {ns}local, or "".
func (e *Element) GetAttributeNS(ns, local string) string {
	if i := e.findAttr(ns, local); i >= 0 {
		return e.attrs[i].value
	}
	return ""
}

// HasAttribute reports whether the no-namespace attribute exists.
func (e *Element) HasAttribute(local string) bool {
	return e.findAttr("", local) >= 0
}

// HasAttributeNS reports whether the attribute {ns}local exists.
func (e *Element) HasAttributeNS(ns, local string) bool {
	return e.findAttr(ns, local) >= 0
}

// SetAttribute sets a no-namespace attribute.
func (e *Element) SetAttribute(qname, value string) {
	e.SetAttributeNS("", qname, value)
}

// SetAttributeNS sets (or replaces) the attribute {ns}qname.
func (e *Element) SetAttributeNS(ns, qname, value string) {
	n := parseQName(ns, qname)
	if i := e.findAttr(n.Space, n.Local); i >= 0 {
		e.attrs[i].value = value
		e.attrs[i].name.Prefix = n.Prefix
		return
	}
	var a *Attr
	if e.doc != nil && e.doc.arena != nil {
		a = e.doc.arena.newAttr()
	} else {
		a = &Attr{}
	}
	a.owner = e
	a.self = a
	a.doc = e.doc
	a.name = n
	a.value = value
	e.attrs = append(e.attrs, a)
}

// RemoveAttribute removes the no-namespace attribute, if present.
func (e *Element) RemoveAttribute(local string) { e.RemoveAttributeNS("", local) }

// RemoveAttributeNS removes the attribute {ns}local, if present.
func (e *Element) RemoveAttributeNS(ns, local string) {
	if i := e.findAttr(ns, local); i >= 0 {
		e.attrs[i].owner = nil
		e.attrs = append(e.attrs[:i], e.attrs[i+1:]...)
	}
}

// GetAttributeNode returns the attribute node {ns}local, or nil.
func (e *Element) GetAttributeNode(ns, local string) *Attr {
	if i := e.findAttr(ns, local); i >= 0 {
		return e.attrs[i]
	}
	return nil
}

// ChildElements returns the element children, skipping text, comments, PIs.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok {
			out = append(out, ce)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given local
// name ("" matches any), or nil.
func (e *Element) FirstChildElement(local string) *Element {
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok && (local == "" || ce.name.Local == local) {
			return ce
		}
	}
	return nil
}

// GetElementsByTagName returns descendant elements with the given tag name.
func (e *Element) GetElementsByTagName(tag string) []*Element {
	return elementsByTagName(e, "", tag, false)
}

// GetElementsByTagNameNS is the namespace-aware variant.
func (e *Element) GetElementsByTagNameNS(ns, local string) []*Element {
	return elementsByTagName(e, ns, local, true)
}

// CloneNode implements Node.
func (e *Element) CloneNode(deep bool) Node {
	c := e.doc.CreateElementNS(e.name.Space, e.name.Qualified())
	for _, a := range e.attrs {
		c.SetAttributeNS(a.name.Space, a.name.Qualified(), a.value)
	}
	if deep {
		cloneChildrenInto(c, e)
	}
	return c
}

// Attr is an attribute node. Attributes are not children of their element;
// they are reached through the element's attribute list, as in DOM.
type Attr struct {
	node
	name  Name
	value string
	owner *Element
}

// NodeType implements Node.
func (a *Attr) NodeType() NodeType { return AttributeNode }

// NodeName implements Node; it returns the qualified attribute name.
func (a *Attr) NodeName() string { return a.name.Qualified() }

// NodeValue implements Node.
func (a *Attr) NodeValue() string { return a.value }

// Name returns the full attribute name.
func (a *Attr) Name() Name { return a.name }

// Value returns the attribute value.
func (a *Attr) Value() string { return a.value }

// SetValue updates the attribute value.
func (a *Attr) SetValue(v string) { a.value = v }

// OwnerElement returns the element holding this attribute, or nil.
func (a *Attr) OwnerElement() *Element { return a.owner }

// CloneNode implements Node.
func (a *Attr) CloneNode(bool) Node {
	c := a.doc.CreateAttributeNS(a.name.Space, a.name.Qualified())
	c.value = a.value
	return c
}

// Text is a character-data node.
type Text struct {
	node
	// Data is the text content.
	Data string
}

// NodeType implements Node.
func (t *Text) NodeType() NodeType { return TextNode }

// NodeName implements Node.
func (t *Text) NodeName() string { return "#text" }

// NodeValue implements Node.
func (t *Text) NodeValue() string { return t.Data }

// CloneNode implements Node.
func (t *Text) CloneNode(bool) Node { return t.doc.CreateTextNode(t.Data) }

// CDATASection is a CDATA node.
type CDATASection struct {
	node
	// Data is the section content.
	Data string
}

// NodeType implements Node.
func (c *CDATASection) NodeType() NodeType { return CDATASectionNode }

// NodeName implements Node.
func (c *CDATASection) NodeName() string { return "#cdata-section" }

// NodeValue implements Node.
func (c *CDATASection) NodeValue() string { return c.Data }

// CloneNode implements Node.
func (c *CDATASection) CloneNode(bool) Node { return c.doc.CreateCDATASection(c.Data) }

// Comment is a comment node.
type Comment struct {
	node
	// Data is the comment body.
	Data string
}

// NodeType implements Node.
func (c *Comment) NodeType() NodeType { return CommentNode }

// NodeName implements Node.
func (c *Comment) NodeName() string { return "#comment" }

// NodeValue implements Node.
func (c *Comment) NodeValue() string { return c.Data }

// CloneNode implements Node.
func (c *Comment) CloneNode(bool) Node { return c.doc.CreateComment(c.Data) }

// ProcessingInstruction is a PI node.
type ProcessingInstruction struct {
	node
	// Target is the PI target.
	Target string
	// Data is the PI body.
	Data string
}

// NodeType implements Node.
func (p *ProcessingInstruction) NodeType() NodeType { return ProcessingInstructionNode }

// NodeName implements Node.
func (p *ProcessingInstruction) NodeName() string { return p.Target }

// NodeValue implements Node.
func (p *ProcessingInstruction) NodeValue() string { return p.Data }

// CloneNode implements Node.
func (p *ProcessingInstruction) CloneNode(bool) Node {
	return p.doc.CreateProcessingInstruction(p.Target, p.Data)
}
