package dom

import "sync"

// Node allocation arena. Parsing a document materializes one Element, Text
// or Attr per token, and the per-node allocations dominate the DOM build
// cost. Documents created by Parse therefore draw their nodes from slabs:
// fixed-size arrays handed out entry by entry, recycled through sync.Pools
// when the caller Releases the document.
//
// Invariant: slabs in the pools are fully zeroed. Fresh slabs come zeroed
// from the allocator; release zeroes every used entry before returning a
// slab, so the allocation fast path never clears memory.

// slabSize is the number of nodes per slab: large enough to amortize the
// pool round-trip, small enough that tiny documents waste little.
const slabSize = 64

var (
	elemSlabs = sync.Pool{New: func() any { return new([slabSize]Element) }}
	textSlabs = sync.Pool{New: func() any { return new([slabSize]Text) }}
	attrSlabs = sync.Pool{New: func() any { return new([slabSize]Attr) }}
)

// arena hands out nodes from pooled slabs. It is owned by one Document and
// is not safe for concurrent use (a DOM build is single-goroutine).
type arena struct {
	elems []*[slabSize]Element
	ei    int // used entries in the last element slab
	texts []*[slabSize]Text
	ti    int
	attrs []*[slabSize]Attr
	ai    int
}

func (a *arena) newElement() *Element {
	if len(a.elems) == 0 || a.ei == slabSize {
		a.elems = append(a.elems, elemSlabs.Get().(*[slabSize]Element))
		a.ei = 0
	}
	e := &a.elems[len(a.elems)-1][a.ei]
	a.ei++
	return e
}

func (a *arena) newText() *Text {
	if len(a.texts) == 0 || a.ti == slabSize {
		a.texts = append(a.texts, textSlabs.Get().(*[slabSize]Text))
		a.ti = 0
	}
	t := &a.texts[len(a.texts)-1][a.ti]
	a.ti++
	return t
}

func (a *arena) newAttr() *Attr {
	if len(a.attrs) == 0 || a.ai == slabSize {
		a.attrs = append(a.attrs, attrSlabs.Get().(*[slabSize]Attr))
		a.ai = 0
	}
	at := &a.attrs[len(a.attrs)-1][a.ai]
	a.ai++
	return at
}

// release zeroes every handed-out node and returns the slabs to the pools.
func (a *arena) release() {
	for i, s := range a.elems {
		n := slabSize
		if i == len(a.elems)-1 {
			n = a.ei
		}
		for j := 0; j < n; j++ {
			s[j] = Element{}
		}
		elemSlabs.Put(s)
	}
	for i, s := range a.texts {
		n := slabSize
		if i == len(a.texts)-1 {
			n = a.ti
		}
		for j := 0; j < n; j++ {
			s[j] = Text{}
		}
		textSlabs.Put(s)
	}
	for i, s := range a.attrs {
		n := slabSize
		if i == len(a.attrs)-1 {
			n = a.ai
		}
		for j := 0; j < n; j++ {
			s[j] = Attr{}
		}
		attrSlabs.Put(s)
	}
	a.elems, a.texts, a.attrs = nil, nil, nil
	a.ei, a.ti, a.ai = 0, 0, 0
}

// NewPooledDocument creates a document whose Element, Text and Attr nodes
// come from the slab arena. Parse builds its documents this way; other
// bulk builders (like the stream validator's fallback buffering) can opt
// in too. Pair with Release on the discard path to recycle the slabs.
func NewPooledDocument() *Document {
	d := NewDocument()
	d.arena = &arena{}
	return d
}

// Release returns the document's pooled node storage for reuse by later
// parses. It is optional — an un-Released document is reclaimed by the
// garbage collector as usual — but on hot parse-validate-discard loops it
// removes the per-node allocations entirely.
//
// After Release the document and every node obtained from it (elements,
// text nodes, attributes, and strings still referenced by them) must not
// be used; the storage is recycled for unrelated documents.
//
// Release is idempotent: calling it again (or calling it on a document
// that never drew from the arena) is a no-op. This matters on error
// paths that both defer a Release and release eagerly on success — a
// double release must never hand the same slab to the pools twice, which
// would alias one slab's nodes across two live documents. To keep that
// guarantee even if zeroing panics partway (an impossibility today, but
// the failure mode is silent cross-document corruption), the arena is
// detached from the document before any slab is returned.
func (d *Document) Release() {
	a := d.arena
	if a == nil {
		return
	}
	d.arena = nil
	a.release()
}
