package dom

import (
	"fmt"
	"strings"
)

// Dump renders the tree structure of a node as indented text, one line per
// node, in the style of the paper's Fig. 4 ("Document fragment represented
// in Dom"): every node shows its generic DOM interface name, demonstrating
// that plain DOM types carry no schema information.
func Dump(n Node) string {
	var sb strings.Builder
	dumpNode(&sb, n, 0)
	return sb.String()
}

func dumpNode(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch x := n.(type) {
	case *Element:
		fmt.Fprintf(sb, "Element %s", x.TagName())
		if len(x.Attributes()) > 0 {
			var parts []string
			for _, a := range x.Attributes() {
				parts = append(parts, fmt.Sprintf("%s=%q", a.NodeName(), a.Value()))
			}
			fmt.Fprintf(sb, " [%s]", strings.Join(parts, " "))
		}
	case *Text:
		fmt.Fprintf(sb, "Text %q", x.Data)
	case *CDATASection:
		fmt.Fprintf(sb, "CDATASection %q", x.Data)
	case *Comment:
		fmt.Fprintf(sb, "Comment %q", x.Data)
	case *ProcessingInstruction:
		fmt.Fprintf(sb, "ProcessingInstruction %s %q", x.Target, x.Data)
	case *Document:
		sb.WriteString("Document")
	case *DocumentType:
		fmt.Fprintf(sb, "DocumentType %s", x.Name)
	case *DocumentFragment:
		sb.WriteString("DocumentFragment")
	case *Attr:
		fmt.Fprintf(sb, "Attr %s=%q", x.NodeName(), x.Value())
	}
	sb.WriteString("\n")
	for _, c := range n.ChildNodes() {
		dumpNode(sb, c, depth+1)
	}
}

// DumpElements is like Dump but skips whitespace-only text nodes, which is
// the usual view when inspecting data-oriented documents.
func DumpElements(n Node) string {
	var sb strings.Builder
	dumpElems(&sb, n, 0)
	return sb.String()
}

func dumpElems(sb *strings.Builder, n Node, depth int) {
	if t, ok := n.(*Text); ok && isAllSpace(t.Data) {
		return
	}
	sb.WriteString(strings.Repeat("  ", depth))
	switch x := n.(type) {
	case *Element:
		sb.WriteString("Element " + x.TagName())
		for _, a := range x.Attributes() {
			fmt.Fprintf(sb, " @%s=%q", a.NodeName(), a.Value())
		}
	case *Text:
		fmt.Fprintf(sb, "Text %q", x.Data)
	default:
		sb.WriteString(n.NodeType().String())
	}
	sb.WriteString("\n")
	for _, c := range n.ChildNodes() {
		dumpElems(sb, c, depth+1)
	}
}
