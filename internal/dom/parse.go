package dom

import (
	"fmt"

	"repro/internal/xmlparser"
)

// Parse parses an XML document into a DOM tree.
func Parse(src []byte) (*Document, error) {
	return parseWith(src, nil)
}

// ParseString is a convenience wrapper around Parse.
func ParseString(src string) (*Document, error) { return Parse([]byte(src)) }

// ParseWithOptions parses with explicit parser options (e.g. fragment mode
// or extra entities).
func ParseWithOptions(src []byte, opts *xmlparser.Options) (*Document, error) {
	return parseWith(src, opts)
}

func parseWith(src []byte, opts *xmlparser.Options) (_ *Document, err error) {
	dec := xmlparser.NewDecoder(src, opts)
	// Parsed documents draw their nodes from the pooled slab arena; callers
	// on hot parse-validate-discard loops may Release them when done. On
	// parse failure no node escapes, so the slabs go straight back.
	doc := NewPooledDocument()
	defer func() {
		if err != nil {
			doc.Release()
		}
	}()
	var cur Node = doc
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		if tok == nil {
			return doc, nil
		}
		switch tok.Kind {
		case xmlparser.KindXMLDecl:
			doc.Version = pseudoAttr(tok.Data(), "version")
			doc.Encoding = pseudoAttr(tok.Data(), "encoding")
		case xmlparser.KindDoctype:
			dt := &DocumentType{Name: tok.Name.Local, ExternalID: tok.Target, InternalSubset: tok.Data()}
			dt.self = dt
			dt.doc = doc
			doc.Doctype = dt
			if _, err := cur.AppendChild(dt); err != nil {
				return nil, err
			}
		case xmlparser.KindStartElement:
			e := doc.CreateElementNS(tok.Name.Space, tok.Name.Qualified())
			for _, a := range tok.Attrs {
				// Namespace declarations are kept as ordinary
				// attributes so serialization round-trips.
				e.SetAttributeNS(a.Name.Space, a.Name.Qualified(), a.Value)
			}
			if _, err := cur.AppendChild(e); err != nil {
				return nil, fmt.Errorf("at %s: %w", tok.Pos, err)
			}
			cur = e
		case xmlparser.KindEndElement:
			cur = cur.ParentNode()
		case xmlparser.KindText:
			if cur == Node(doc) {
				// Fragment mode: attach top-level text only if
				// non-empty after the parser allowed it; documents
				// never reach here with text.
				if isAllSpace(tok.Data()) {
					continue
				}
			}
			if tok.Data() == "" {
				continue
			}
			if _, err := cur.AppendChild(doc.CreateTextNode(tok.Data())); err != nil {
				return nil, fmt.Errorf("at %s: %w", tok.Pos, err)
			}
		case xmlparser.KindCData:
			if _, err := cur.AppendChild(doc.CreateCDATASection(tok.Data())); err != nil {
				return nil, fmt.Errorf("at %s: %w", tok.Pos, err)
			}
		case xmlparser.KindComment:
			if _, err := cur.AppendChild(doc.CreateComment(tok.Data())); err != nil {
				return nil, fmt.Errorf("at %s: %w", tok.Pos, err)
			}
		case xmlparser.KindProcInst:
			if _, err := cur.AppendChild(doc.CreateProcessingInstruction(tok.Target, tok.Data())); err != nil {
				return nil, fmt.Errorf("at %s: %w", tok.Pos, err)
			}
		}
	}
}

func isAllSpace(s string) bool {
	for _, r := range s {
		if !xmlparser.IsSpace(r) {
			return false
		}
	}
	return true
}

// pseudoAttr extracts name="value" from XML declaration text.
func pseudoAttr(s, name string) string {
	attrs, err := xmlparser.ParsePseudoAttrs(s)
	if err != nil {
		return ""
	}
	return attrs[name]
}
