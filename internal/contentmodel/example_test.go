package contentmodel_test

import (
	"fmt"

	"repro/internal/contentmodel"
)

// ExampleCompileGlushkov compiles the content model
// (to, cc?, body) into a position automaton and matches child sequences
// against it. The compiled automaton is immutable: one instance may serve
// any number of concurrent Match calls, which is what the validator's
// per-Validator cache relies on.
func ExampleCompileGlushkov() {
	model := contentmodel.NewSequence(1, 1,
		contentmodel.NewElementLeaf(1, 1, contentmodel.Symbol{Local: "to"}, nil),
		contentmodel.NewElementLeaf(0, 1, contentmodel.Symbol{Local: "cc"}, nil),
		contentmodel.NewElementLeaf(1, 1, contentmodel.Symbol{Local: "body"}, nil),
	)
	g, err := contentmodel.CompileGlushkov(model)
	if err != nil {
		panic(err)
	}
	fmt.Println("positions:", g.NumPositions())

	if _, merr := g.Match([]contentmodel.Symbol{{Local: "to"}, {Local: "body"}}); merr == nil {
		fmt.Println("to,body: accepted")
	}
	if _, merr := g.Match([]contentmodel.Symbol{{Local: "body"}}); merr != nil {
		fmt.Println("body:", merr.Error())
	}
	// Output:
	// positions: 3
	// to,body: accepted
	// body: unexpected element body at position 0; expected to
}
