package contentmodel

// Interp is a backtracking content-model interpreter. Unlike the Glushkov
// automaton it handles arbitrary occurrence bounds and all-groups natively
// (no count expansion), at the cost of potential backtracking on ambiguous
// models; a step budget guards against pathological cases.
type Interp struct {
	root *Particle
}

// NewInterp wraps a particle for interpretation.
func NewInterp(root *Particle) *Interp { return &Interp{root: root} }

// interpRun carries the per-match state.
type interpRun struct {
	input    []Symbol
	assigned []*Leaf
	steps    int
	// furthest tracks the deepest failure point for error reporting.
	furthest int
	expected []string
}

// maxInterpSteps bounds backtracking work per match.
const maxInterpSteps = 1 << 22

// Match checks the child-name sequence and returns per-child leaf
// assignments, like Glushkov.Match.
func (it *Interp) Match(input []Symbol) ([]*Leaf, *MatchError) {
	run := &interpRun{input: input, assigned: make([]*Leaf, len(input))}
	ok := run.particle(it.root, 0, func(pos int) bool { return pos == len(input) })
	if ok {
		return run.assigned, nil
	}
	me := &MatchError{Index: run.furthest, Expected: dedupStrings(run.expected)}
	if run.furthest >= len(input) {
		me.Premature = true
	} else {
		me.Got = input[run.furthest]
	}
	return nil, me
}

// fail records an expectation at the failure frontier.
func (r *interpRun) fail(pos int, l *Leaf) bool {
	if pos > r.furthest {
		r.furthest = pos
		r.expected = r.expected[:0]
	}
	if pos == r.furthest {
		r.expected = append(r.expected, l.label())
	}
	return false
}

// particle matches p starting at pos and calls k with every reachable end
// position until k returns true.
func (r *interpRun) particle(p *Particle, pos int, k func(int) bool) bool {
	r.steps++
	if r.steps > maxInterpSteps {
		return false
	}
	if p == nil || (p.Leaf == nil && p.Group == nil) || p.Max == 0 {
		return k(pos)
	}
	var term func(pos int, k func(int) bool) bool
	if p.Leaf != nil {
		term = func(pos int, k func(int) bool) bool {
			if pos >= len(r.input) || !p.Leaf.Accepts(r.input[pos]) {
				return r.fail(pos, p.Leaf)
			}
			r.assigned[pos] = p.Leaf
			return k(pos + 1)
		}
	} else {
		term = func(pos int, k func(int) bool) bool {
			return r.group(p.Group, pos, k)
		}
	}
	// rep matches the term count more times (greedy, with backtracking
	// into fewer repetitions down to Min).
	var rep func(count, pos int) bool
	rep = func(count, pos int) bool {
		r.steps++
		if r.steps > maxInterpSteps {
			return false
		}
		if p.Max != Unbounded && count == p.Max {
			return k(pos)
		}
		// Greedy: try one more occurrence first.
		if term(pos, func(next int) bool {
			if next == pos && count >= p.Min {
				// The term matched empty; looping again cannot make
				// progress, so stop here.
				return false
			}
			return rep(count+1, next)
		}) {
			return true
		}
		if count >= p.Min {
			return k(pos)
		}
		return false
	}
	return rep(0, pos)
}

// group matches a model group at pos.
func (r *interpRun) group(g *Group, pos int, k func(int) bool) bool {
	switch g.Kind {
	case Sequence:
		var seq func(idx, pos int) bool
		seq = func(idx, pos int) bool {
			if idx == len(g.Children) {
				return k(pos)
			}
			return r.particle(g.Children[idx], pos, func(next int) bool {
				return seq(idx+1, next)
			})
		}
		return seq(0, pos)
	case Choice:
		for _, c := range g.Children {
			if r.particle(c, pos, k) {
				return true
			}
		}
		return false
	default: // All: match children in any order, each per its own bounds
		n := len(g.Children)
		used := make([]bool, n)
		var all func(done, pos int) bool
		all = func(done, pos int) bool {
			r.steps++
			if r.steps > maxInterpSteps {
				return false
			}
			if done == n {
				return k(pos)
			}
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				used[i] = true
				ok := r.particle(g.Children[i], pos, func(next int) bool {
					return all(done+1, next)
				})
				used[i] = false
				if ok {
					return true
				}
			}
			return false
		}
		return all(0, pos)
	}
}

// Matcher is the common interface of the two content-model matchers.
type Matcher interface {
	// Match checks a child-name sequence, returning the leaf particle
	// each child matched, or a MatchError.
	Match(input []Symbol) ([]*Leaf, *MatchError)
}

// Compile returns the best matcher for the particle: the Glushkov position
// automaton when the model fits the position budget, otherwise the
// interpreter.
func Compile(p *Particle) Matcher {
	if g, err := CompileGlushkov(p); err == nil {
		return g
	}
	return NewInterp(p)
}
