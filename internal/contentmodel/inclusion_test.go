package contentmodel

import "testing"

func mustGlushkov(t *testing.T, p *Particle) *Glushkov {
	t.Helper()
	g, err := CompileGlushkov(p)
	if err != nil {
		t.Fatalf("CompileGlushkov: %v", err)
	}
	return g
}

func leaf(min, max int, local string) *Particle {
	return NewElementLeaf(min, max, sym(local), nil)
}

func wildcardLeaf(min, max int, w *Wildcard) *Particle {
	return &Particle{Min: min, Max: max, Leaf: &Leaf{Wildcard: w, Data: w}}
}

func TestIncludes(t *testing.T) {
	cases := []struct {
		name     string
		sup, sub *Particle
		want     bool
	}{
		{"identical", NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
			NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")), true},
		{"added optional trailing element", NewSequence(1, 1, leaf(1, 1, "a"), leaf(0, 1, "b")),
			NewSequence(1, 1, leaf(1, 1, "a")), true},
		{"reverse of added optional", NewSequence(1, 1, leaf(1, 1, "a")),
			NewSequence(1, 1, leaf(1, 1, "a"), leaf(0, 1, "b")), false},
		{"maxOccurs widened to unbounded", leaf(1, Unbounded, "a"), leaf(1, 3, "a"), true},
		{"maxOccurs narrowed", leaf(1, 3, "a"), leaf(1, Unbounded, "a"), false},
		{"minOccurs relaxed", leaf(0, 1, "a"), leaf(1, 1, "a"), true},
		{"minOccurs tightened rejects empty", leaf(1, 1, "a"), leaf(0, 1, "a"), false},
		{"new choice alternative", NewChoice(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
			leaf(1, 1, "a"), true},
		{"choice alternative removed", leaf(1, 1, "a"),
			NewChoice(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")), false},
		{"renamed element", leaf(1, 1, "b"), leaf(1, 1, "a"), false},
		{"sequence reordered", NewSequence(1, 1, leaf(1, 1, "b"), leaf(1, 1, "a")),
			NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")), false},
		{"interleave covers sequence",
			NewAll(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
			NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")), true},
		{"sequence does not cover interleave",
			NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
			NewAll(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sup, sub := mustGlushkov(t, tc.sup), mustGlushkov(t, tc.sub)
			got, err := Includes(sup, sub, 0)
			if err != nil {
				t.Fatalf("Includes: %v", err)
			}
			if got != tc.want {
				t.Errorf("Includes(%s, %s) = %v, want %v", tc.sup, tc.sub, got, tc.want)
			}
		})
	}
}

func TestIncludesWildcards(t *testing.T) {
	const tns = "urn:test"
	anyW := &Wildcard{Kind: WildAny}
	otherW := &Wildcard{Kind: WildOther, TargetNS: tns}
	listW := &Wildcard{Kind: WildList, Namespaces: []string{tns}}
	named := func(space, local string) *Particle {
		return NewElementLeaf(1, 1, Symbol{Space: space, Local: local}, nil)
	}
	cases := []struct {
		name     string
		sup, sub *Particle
		want     bool
	}{
		{"##any covers a named element", wildcardLeaf(1, 1, anyW), named(tns, "a"), true},
		{"named element does not cover ##any", named(tns, "a"), wildcardLeaf(1, 1, anyW), false},
		{"##any covers ##other", wildcardLeaf(1, 1, anyW), wildcardLeaf(1, 1, otherW), true},
		{"##other does not cover ##any", wildcardLeaf(1, 1, otherW), wildcardLeaf(1, 1, anyW), false},
		{"##other excludes the target namespace", wildcardLeaf(1, 1, otherW), named(tns, "a"), false},
		{"##other admits foreign namespaces", wildcardLeaf(1, 1, otherW), named("urn:elsewhere", "a"), true},
		{"namespace list covers its namespace", wildcardLeaf(1, 1, listW), named(tns, "a"), true},
		{"namespace list rejects others", wildcardLeaf(1, 1, listW), named("urn:elsewhere", "a"), false},
		{"list does not cover ##other (fresh namespaces)", wildcardLeaf(1, 1, listW), wildcardLeaf(1, 1, otherW), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sup, sub := mustGlushkov(t, tc.sup), mustGlushkov(t, tc.sub)
			got, err := Includes(sup, sub, 0)
			if err != nil {
				t.Fatalf("Includes: %v", err)
			}
			if got != tc.want {
				t.Errorf("Includes = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIncludesEmptyWord(t *testing.T) {
	empty := &Particle{Min: 1, Max: 1, Group: &Group{Kind: Sequence}}
	optA := leaf(0, 1, "a")
	reqA := leaf(1, 1, "a")
	sup, sub := mustGlushkov(t, optA), mustGlushkov(t, empty)
	if ok, err := Includes(sup, sub, 0); err != nil || !ok {
		t.Errorf("a? should include the empty language: ok=%v err=%v", ok, err)
	}
	sup, sub = mustGlushkov(t, reqA), mustGlushkov(t, empty)
	if ok, err := Includes(sup, sub, 0); err != nil || ok {
		t.Errorf("a should not include the empty language: ok=%v err=%v", ok, err)
	}
}

func TestEquivalent(t *testing.T) {
	// (a, b) | (a, c)  ==  a, (b | c)
	left := NewChoice(1, 1,
		NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
		NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "c")))
	right := NewSequence(1, 1, leaf(1, 1, "a"), NewChoice(1, 1, leaf(1, 1, "b"), leaf(1, 1, "c")))
	ok, err := Equivalent(mustGlushkov(t, left), mustGlushkov(t, right), 0)
	if err != nil || !ok {
		t.Errorf("factored choice should be equivalent: ok=%v err=%v", ok, err)
	}
	ok, err = Equivalent(mustGlushkov(t, left), mustGlushkov(t, leaf(1, 1, "a")), 0)
	if err != nil || ok {
		t.Errorf("distinct languages reported equivalent: ok=%v err=%v", ok, err)
	}
}

func TestIncludesBudget(t *testing.T) {
	a := mustGlushkov(t, NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b"), leaf(1, 1, "c")))
	if _, err := Includes(a, a, 1); err != ErrInclusionBudget {
		t.Errorf("stateLimit 1 should overflow, got err=%v", err)
	}
	// A verdict reached within the budget reports no error.
	if ok, err := Includes(a, a, 100); err != nil || !ok {
		t.Errorf("self-inclusion within budget: ok=%v err=%v", ok, err)
	}
}

// TestIncludesAgreesWithMatch cross-checks the inclusion verdict against
// brute-force membership: enumerate all words up to length 4 over a tiny
// alphabet and verify set containment matches Includes.
func TestIncludesAgreesWithMatch(t *testing.T) {
	models := []*Particle{
		NewSequence(1, 1, leaf(1, 1, "a"), leaf(0, 1, "b")),
		NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b")),
		NewChoice(1, 1, leaf(1, 1, "a"), NewSequence(1, 1, leaf(1, 1, "a"), leaf(1, 1, "b"))),
		leaf(0, 3, "a"),
		leaf(1, Unbounded, "b"),
		NewAll(1, 1, leaf(1, 1, "a"), leaf(0, 1, "b")),
	}
	alphabet := []Symbol{sym("a"), sym("b")}
	var words [][]Symbol
	var grow func(prefix []Symbol, depth int)
	grow = func(prefix []Symbol, depth int) {
		words = append(words, append([]Symbol(nil), prefix...))
		if depth == 0 {
			return
		}
		for _, s := range alphabet {
			grow(append(prefix, s), depth-1)
		}
	}
	grow(nil, 4)

	accepts := func(g *Glushkov, w []Symbol) bool {
		_, err := g.Match(w)
		return err == nil
	}
	for i, ps := range models {
		for j, pb := range models {
			gs, gb := mustGlushkov(t, ps), mustGlushkov(t, pb)
			want := true
			for _, w := range words {
				if accepts(gb, w) && !accepts(gs, w) {
					want = false
					break
				}
			}
			got, err := Includes(gs, gb, 0)
			if err != nil {
				t.Fatalf("models %d⊇%d: %v", i, j, err)
			}
			if got != want {
				t.Errorf("Includes(%s, %s) = %v, brute force says %v", ps, pb, got, want)
			}
		}
	}
}
