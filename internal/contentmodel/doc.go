// Package contentmodel compiles XML Schema content models (particles:
// element declarations, wildcards, and sequence/choice/all groups with
// occurrence constraints) into matchers over sequences of child-element
// names.
//
// Two matchers are provided and cross-checked:
//
//   - Glushkov: a position automaton built with the Aho–Sethi–Ullman
//     followpos construction (the algorithm the paper's §6 uses for its
//     generated preprocessor), simulated over position sets. It also
//     performs the Unique Particle Attribution (determinism) check.
//   - Interp: a backtracking interpreter with memoization that handles
//     arbitrary occurrence bounds and all-groups natively.
//
// Both return, for an accepted sequence, the leaf particle each child
// matched — which is how the validator assigns types to children, and how
// the P-XML preprocessor decides which V-DOM constructor argument a child
// becomes.
//
// # Role in the pipeline
//
// contentmodel is the shared automaton layer of the pipeline (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml): package
// xsd lowers its schema particles into this package's Particle form, and
// the compiled matchers serve the runtime validator, the vdom runtime's
// mixed-content checks, the P-XML preprocessor's static checks, and the
// DTD baseline alike.
//
// # Concurrency
//
// Compilation (CompileGlushkov, NewInterp, Compile) is a pure function of
// its input particle; callers own synchronization of the particle tree
// while building it. The compiled matchers are immutable: Glushkov.Match
// and Interp.Match keep all mutable state on the call stack, so a single
// matcher instance may serve any number of concurrent Match calls — the
// property the validator's per-Validator model cache and the xsd
// package's once-guarded Matcher rely on.
package contentmodel
