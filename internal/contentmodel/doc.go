// Package contentmodel compiles XML Schema content models (particles:
// element declarations, wildcards, and sequence/choice/all groups with
// occurrence constraints) into matchers over sequences of child-element
// names.
//
// Two matchers are provided and cross-checked:
//
//   - Glushkov: a position automaton built with the Aho–Sethi–Ullman
//     followpos construction (the algorithm the paper's §6 uses for its
//     generated preprocessor), simulated over position sets. It also
//     performs the Unique Particle Attribution (determinism) check.
//   - Interp: a backtracking interpreter with memoization that handles
//     arbitrary occurrence bounds and all-groups natively.
//
// Both return, for an accepted sequence, the leaf particle each child
// matched — which is how the validator assigns types to children, and how
// the P-XML preprocessor decides which V-DOM constructor argument a child
// becomes.
//
// # Lazy-DFA execution
//
// The Glushkov matcher additionally supports deterministic execution:
// EnableDFA attaches a lazily subset-constructed DFA whose alphabet is
// the schema-wide Interner's dense symbol IDs (plus wildcard-admission
// bucket classes), so stepping a child is an array walk instead of a
// position-set scan. States are memoized on demand under a bounded
// budget; on overflow a Run falls back mid-sequence to the NFA stepper,
// reseeded from the DFA state's own position set. The DFA is only
// enabled for models that pass the UPA check, which is what makes its
// verdicts, leaf assignments and MatchError messages byte-identical to
// the NFA's (enforced by the differential tests and FuzzDFAContentModel).
//
// # Language inclusion
//
// Beyond matching single sequences, Includes decides whether one
// compiled model accepts every word another does — a product subset
// construction over the two Glushkov automata, explored over a finite
// alphabet drawn from both models' symbols plus per-namespace wildcard
// probes, under an explicit state budget (ErrInclusionBudget) that turns
// pathological blowups into a conservative "not provable" instead of a
// hang. The schema-evolution classifier (package compat) is built on it.
//
// # Role in the pipeline
//
// contentmodel is the shared automaton layer of the pipeline (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml): package
// xsd lowers its schema particles into this package's Particle form, and
// the compiled matchers serve the runtime validator, the vdom runtime's
// mixed-content checks, the P-XML preprocessor's static checks, the
// schema-evolution classifier's inclusion checks, and the DTD baseline
// alike.
//
// # Concurrency
//
// Compilation (CompileGlushkov, NewInterp, Compile) is a pure function of
// its input particle; callers own synchronization of the particle tree
// while building it. The compiled matchers are safe for concurrent use:
// Glushkov.Match and Interp.Match keep per-call state on the stack, and
// the lazy DFA fills its transition table under an internal mutex with
// atomically published edges, so a single matcher instance may serve any
// number of concurrent Match calls and Runs — the property the
// validator's per-Validator model cache and the xsd package's
// once-guarded Matcher rely on. EnableDFA itself must happen before the
// matcher is shared (the compile paths call it). A Run is single-owner
// and must not be shared or interleaved between validation frames; after
// reporting an error it panics on further use until Reset.
package contentmodel
