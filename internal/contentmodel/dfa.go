package contentmodel

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultDFABudget is the default cap on memoized DFA states per automaton.
// A run that needs a state beyond the budget falls back to the NFA stepper
// from the current position set, so pathological minOccurs/maxOccurs models
// stay safe in bounded memory.
const DefaultDFABudget = 4096

// maxDFAWildcards bounds the number of distinct wildcard particles a
// DFA-enabled model may contain: every subset of wildcards that admits a
// namespace is one alphabet class, so k wildcards cost 2^k bucket classes.
const maxDFAWildcards = 4

// maxNamespaceClasses bounds the namespace->bucket-class cache so hostile
// input with unbounded distinct namespaces cannot grow it without limit;
// past the cap the admission mask is recomputed per symbol.
const maxNamespaceClasses = 64

// dfa is a lazy subset construction over one Glushkov automaton. Position
// sets reached during matching are memoized into dstates with one
// transition slot per alphabet class; slots are built on demand under mu
// and published with an atomic store, so steppers never block on a slot
// that is already built.
//
// The alphabet is partitioned into classes: one class per element name the
// model declares (indexed through the shared Interner), plus one "bucket"
// class per subset of wildcards for names the model does not declare —
// every name admitted by the same wildcard subset behaves identically.
type dfa struct {
	g      *Glushkov
	in     *Interner
	budget int

	named    []int32 // global symbol ID -> class, -1 when not named by this model
	nnamed   int
	wilds    []*Leaf // distinct wildcard leaves; bit i of a bucket mask = wilds[i] admits
	nclasses int
	accSets  [][]int // class -> positions accepting that class (ascending)

	start *dstate

	mu      sync.Mutex
	nstates int
	bySet   map[string]*dstate // canonical position-set key -> state
	full    atomic.Bool        // budget exhausted; unbuilt slots overflow to NFA
	scratch []bool             // per-position membership scratch, guarded by mu

	nsClass atomic.Value // map[string]int32: namespace -> bucket class, copy-on-write
}

// dstate is one memoized position set. cand and matched keep the order the
// NFA stepper would have produced, so error messages, leaf assignment, and
// mid-run fallback are indistinguishable from never having used the DFA.
type dstate struct {
	cand    []int // positions that may match the next symbol, NFA order
	matched []int // positions matched by the previous symbol (nil in the start state)
	accept  bool  // a matched position is a last position
	trans   []dtrans
}

type dtrans struct {
	state atomic.Pointer[dstate] // nil = unbuilt, dfaReject = no successor
	leaf  *Leaf                  // assignment reported on this transition; written before state
}

// dfaReject marks transitions with no successor.
var dfaReject = &dstate{}

// EnableDFA attaches a lazy DFA to the automaton, using the shared symbol
// interner for transition lookup. It reports whether the DFA was attached:
// models that violate Unique Particle Attribution keep the NFA stepper
// (subset canonicalization is only observation-equivalent when at most one
// particle competes per symbol), as do models with more than
// maxDFAWildcards distinct wildcards. A budget <= 0 selects
// DefaultDFABudget.
//
// EnableDFA must be called before the automaton is shared between
// goroutines (the caches call it inside their sync.Once compile step).
func (g *Glushkov) EnableDFA(in *Interner, budget int) bool {
	if g.dfa != nil {
		return true
	}
	if in == nil || g.CheckUPA() != nil {
		return false
	}
	if budget <= 0 {
		budget = DefaultDFABudget
	}
	cls := g.buildClasses()
	if len(cls.wilds) > maxDFAWildcards {
		return false
	}
	for _, s := range cls.syms {
		in.Intern(s)
	}
	named := make([]int32, in.Len())
	for i := range named {
		named[i] = -1
	}
	for _, s := range cls.syms {
		named[in.Intern(s)] = cls.seenSym[s]
	}
	d := &dfa{
		g:        g,
		in:       in,
		budget:   budget,
		named:    named,
		nnamed:   len(cls.syms),
		wilds:    cls.wilds,
		nclasses: cls.nclasses,
		accSets:  cls.accSets,
		bySet:    map[string]*dstate{},
		scratch:  make([]bool, len(g.leaves)),
	}
	d.start = &dstate{cand: g.first, accept: g.nullable, trans: make([]dtrans, cls.nclasses)}
	d.nstates = 1
	g.dfa = d
	return true
}

// classes is the alphabet partition shared by the lazy DFA and the eager
// exporter: one class per element name the model declares (first-seen leaf
// order), plus one bucket class per subset of wildcards.
type classes struct {
	syms     []Symbol
	seenSym  map[Symbol]int32
	wilds    []*Leaf
	nclasses int
	accSets  [][]int // class -> positions accepting that class (ascending)
}

// buildClasses partitions the alphabet. Both EnableDFA and ExportDFA build
// their transition structure from this one partition, so the two can never
// disagree on which positions a symbol activates.
func (g *Glushkov) buildClasses() classes {
	var wilds []*Leaf
	seenWild := map[*Leaf]bool{}
	seenSym := map[Symbol]int32{}
	var syms []Symbol
	for _, l := range g.leaves {
		if l.Wildcard != nil {
			if !seenWild[l] {
				seenWild[l] = true
				wilds = append(wilds, l)
			}
			continue
		}
		for _, n := range l.Names {
			if _, ok := seenSym[n]; !ok {
				seenSym[n] = int32(len(syms))
				syms = append(syms, n)
			}
		}
	}
	nclasses := len(syms) + (1 << len(wilds))
	accSets := make([][]int, nclasses)
	for p, l := range g.leaves {
		if l.Wildcard != nil {
			continue
		}
		for _, n := range l.Names {
			c := seenSym[n]
			accSets[c] = append(accSets[c], p)
		}
	}
	// Wildcard positions accept every named symbol whose namespace they
	// admit, and every bucket whose mask includes them.
	for wi, wl := range wilds {
		for p, l := range g.leaves {
			if l != wl {
				continue
			}
			for c, s := range syms {
				if wl.Wildcard.Admits(s.Space) {
					accSets[c] = append(accSets[c], p)
				}
			}
			for mask := 0; mask < 1<<len(wilds); mask++ {
				if mask&(1<<wi) != 0 {
					accSets[len(syms)+mask] = append(accSets[len(syms)+mask], p)
				}
			}
		}
	}
	for c := range accSets {
		sort.Ints(accSets[c])
	}
	return classes{syms: syms, seenSym: seenSym, wilds: wilds, nclasses: nclasses, accSets: accSets}
}

// DFAEnabled reports whether a lazy DFA is attached.
func (g *Glushkov) DFAEnabled() bool { return g.dfa != nil }

// DFAStates returns the number of memoized DFA states built so far.
func (g *Glushkov) DFAStates() int {
	d := g.dfa
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nstates
}

// Alphabet returns the distinct element names the model declares, in
// first-seen order (used by differential tests to generate sequences).
func (g *Glushkov) Alphabet() []Symbol {
	var out []Symbol
	seen := map[Symbol]bool{}
	for _, l := range g.leaves {
		for _, n := range l.Names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// classOf maps a symbol to its alphabet class. Named symbols resolve
// through the shared interner to an array index; everything else lands in
// the wildcard-admission bucket for its namespace.
func (d *dfa) classOf(sym Symbol) int32 {
	if id, ok := d.in.Lookup(sym); ok && int(id) < len(d.named) {
		if c := d.named[id]; c >= 0 {
			return c
		}
	}
	return d.bucketClass(sym.Space)
}

func (d *dfa) bucketClass(ns string) int32 {
	if m, _ := d.nsClass.Load().(map[string]int32); m != nil {
		if c, ok := m[ns]; ok {
			return c
		}
	}
	var mask int32
	for i, w := range d.wilds {
		if w.Wildcard.Admits(ns) {
			mask |= 1 << i
		}
	}
	c := int32(d.nnamed) + mask
	d.mu.Lock()
	old, _ := d.nsClass.Load().(map[string]int32)
	if len(old) < maxNamespaceClasses {
		next := make(map[string]int32, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[ns] = c
		d.nsClass.Store(next)
	}
	d.mu.Unlock()
	return c
}

// buildTrans fills the (st, cls) transition slot. ok=false means the state
// budget is exhausted and the successor was not memoized; the caller must
// fall back to NFA stepping from st.
func (d *dfa) buildTrans(st *dstate, cls int32) (next *dstate, leaf *Leaf, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tr := &st.trans[cls]
	if s := tr.state.Load(); s != nil {
		return s, tr.leaf, true
	}
	acc := d.accSets[cls]
	for _, p := range acc {
		d.scratch[p] = true
	}
	var matched []int
	for _, p := range st.cand {
		if d.scratch[p] {
			if leaf == nil {
				leaf = d.g.leaves[p]
			}
			matched = append(matched, p)
		}
	}
	for _, p := range acc {
		d.scratch[p] = false
	}
	if leaf == nil {
		tr.state.Store(dfaReject)
		return dfaReject, nil, true
	}
	key := setKey(matched)
	next, exists := d.bySet[key]
	if !exists {
		if d.nstates >= d.budget {
			d.full.Store(true)
			return nil, nil, false
		}
		next = d.newState(matched)
		d.bySet[key] = next
		d.nstates++
	}
	tr.leaf = leaf
	tr.state.Store(next)
	return next, leaf, true
}

// newState materializes the successor for a matched set, replaying exactly
// the candidate-set computation the NFA stepper performs (follow-set union
// in matched order with keep-first dedup).
func (d *dfa) newState(matched []int) *dstate {
	g := d.g
	var cand []int
	for _, p := range matched {
		for _, q := range g.follow[p] {
			if !d.scratch[q] {
				d.scratch[q] = true
				cand = append(cand, q)
			}
		}
	}
	for _, q := range cand {
		d.scratch[q] = false
	}
	accept := false
	for _, p := range matched {
		if g.last[p] {
			accept = true
			break
		}
	}
	return &dstate{cand: cand, matched: matched, accept: accept, trans: make([]dtrans, d.nclasses)}
}

// setKey canonicalizes a position set (order-independent) for state lookup.
func setKey(ps []int) string {
	s := make([]int, len(ps))
	copy(s, ps)
	sort.Ints(s)
	buf := make([]byte, 0, 4*len(s))
	for _, p := range s {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	return string(buf)
}
