package contentmodel

import (
	"fmt"
)

// Glushkov is a position automaton over leaf particles, built with the
// Aho–Sethi–Ullman followpos construction. Each position is one occurrence
// of a leaf in the (count-expanded) content model.
type Glushkov struct {
	leaves   []*Leaf // position -> leaf
	first    []int
	last     map[int]bool
	follow   [][]int
	nullable bool
}

// ErrTooComplex is returned when count expansion would exceed the position
// budget (callers fall back to the interpreter).
var ErrTooComplex = fmt.Errorf("contentmodel: content model too large for position automaton")

// expansion limits for the Glushkov construction.
const (
	maxPositions        = 4096
	allPermutationLimit = 4
)

// gnode is the internal expanded regex tree.
type gnode interface{ isG() }

type gleaf struct{ pos int }
type gseq struct{ items []gnode }
type galt struct{ alts []gnode }
type gstar struct{ sub gnode }
type gempty struct{}

func (gleaf) isG()  {}
func (gseq) isG()   {}
func (galt) isG()   {}
func (gstar) isG()  {}
func (gempty) isG() {}

type gbuilder struct {
	leaves []*Leaf
}

func (b *gbuilder) newLeaf(l *Leaf) (gnode, error) {
	if len(b.leaves) >= maxPositions {
		return nil, ErrTooComplex
	}
	b.leaves = append(b.leaves, l)
	return gleaf{pos: len(b.leaves) - 1}, nil
}

// convert expands a particle into the internal tree, allocating fresh
// positions per occurrence copy.
func (b *gbuilder) convert(p *Particle) (gnode, error) {
	if p == nil || (p.Leaf == nil && p.Group == nil) || p.Max == 0 {
		return gempty{}, nil
	}
	one := func() (gnode, error) {
		if p.Leaf != nil {
			return b.newLeaf(p.Leaf)
		}
		return b.convertGroup(p.Group)
	}
	min, max := p.Min, p.Max
	if min > maxPositions {
		return nil, ErrTooComplex
	}
	var items []gnode
	for i := 0; i < min; i++ {
		n, err := one()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	switch {
	case max == Unbounded:
		n, err := one()
		if err != nil {
			return nil, err
		}
		items = append(items, gstar{sub: n})
	case max > min:
		if max-min > maxPositions {
			return nil, ErrTooComplex
		}
		for i := min; i < max; i++ {
			n, err := one()
			if err != nil {
				return nil, err
			}
			items = append(items, galt{alts: []gnode{n, gempty{}}})
		}
	}
	switch len(items) {
	case 0:
		return gempty{}, nil
	case 1:
		return items[0], nil
	default:
		return gseq{items: items}, nil
	}
}

func (b *gbuilder) convertGroup(g *Group) (gnode, error) {
	switch g.Kind {
	case Sequence:
		var items []gnode
		for _, c := range g.Children {
			n, err := b.convert(c)
			if err != nil {
				return nil, err
			}
			items = append(items, n)
		}
		if len(items) == 0 {
			return gempty{}, nil
		}
		return gseq{items: items}, nil
	case Choice:
		var alts []gnode
		for _, c := range g.Children {
			n, err := b.convert(c)
			if err != nil {
				return nil, err
			}
			alts = append(alts, n)
		}
		if len(alts) == 0 {
			return gempty{}, nil
		}
		return galt{alts: alts}, nil
	default: // All: expand to a choice of permutations for small groups
		n := len(g.Children)
		if n > allPermutationLimit {
			return nil, ErrTooComplex
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var alts []gnode
		var build func(depth int) error
		used := make([]bool, n)
		order := make([]int, 0, n)
		build = func(depth int) error {
			if depth == n {
				var items []gnode
				for _, idx := range order {
					cn, err := b.convert(g.Children[idx])
					if err != nil {
						return err
					}
					items = append(items, cn)
				}
				alts = append(alts, gseq{items: items})
				return nil
			}
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				used[i] = true
				order = append(order, i)
				if err := build(depth + 1); err != nil {
					return err
				}
				order = order[:len(order)-1]
				used[i] = false
			}
			return nil
		}
		if n == 0 {
			return gempty{}, nil
		}
		if err := build(0); err != nil {
			return nil, err
		}
		return galt{alts: alts}, nil
	}
}

// ginfo is the nullable/firstpos/lastpos triple.
type ginfo struct {
	nullable bool
	first    []int
	last     []int
}

// analyze computes nullable/first/last and fills follow.
func analyze(n gnode, follow [][]int) ginfo {
	switch x := n.(type) {
	case gempty:
		return ginfo{nullable: true}
	case gleaf:
		return ginfo{first: []int{x.pos}, last: []int{x.pos}}
	case gseq:
		cur := analyze(x.items[0], follow)
		for _, item := range x.items[1:] {
			next := analyze(item, follow)
			for _, p := range cur.last {
				follow[p] = append(follow[p], next.first...)
			}
			merged := ginfo{nullable: cur.nullable && next.nullable}
			if cur.nullable {
				merged.first = append(append([]int{}, cur.first...), next.first...)
			} else {
				merged.first = cur.first
			}
			if next.nullable {
				merged.last = append(append([]int{}, next.last...), cur.last...)
			} else {
				merged.last = next.last
			}
			cur = merged
		}
		return cur
	case galt:
		out := ginfo{}
		for _, alt := range x.alts {
			ai := analyze(alt, follow)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case gstar:
		inner := analyze(x.sub, follow)
		for _, p := range inner.last {
			follow[p] = append(follow[p], inner.first...)
		}
		return ginfo{nullable: true, first: inner.first, last: inner.last}
	default:
		panic("contentmodel: unknown gnode")
	}
}

// CompileGlushkov builds the position automaton. It returns ErrTooComplex
// for content models whose expansion exceeds the position budget; callers
// should then use NewInterp.
func CompileGlushkov(root *Particle) (*Glushkov, error) {
	b := &gbuilder{}
	tree, err := b.convert(root)
	if err != nil {
		return nil, err
	}
	follow := make([][]int, len(b.leaves))
	info := analyze(tree, follow)
	g := &Glushkov{
		leaves:   b.leaves,
		first:    dedupInts(info.first),
		follow:   follow,
		nullable: info.nullable,
		last:     map[int]bool{},
	}
	for i := range follow {
		g.follow[i] = dedupInts(follow[i])
	}
	for _, p := range info.last {
		g.last[p] = true
	}
	return g, nil
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// NumPositions returns the number of automaton positions (for tests).
func (g *Glushkov) NumPositions() int { return len(g.leaves) }

// Match runs the automaton over the child-name sequence. On success it
// returns the leaf each child matched; on failure, a MatchError.
func (g *Glushkov) Match(input []Symbol) ([]*Leaf, *MatchError) {
	if len(input) == 0 {
		if g.nullable {
			return nil, nil
		}
		return nil, &MatchError{Index: 0, Premature: true, Expected: g.expectedLabels(g.first, false)}
	}
	assigned := make([]*Leaf, len(input))
	cand := g.first // positions that may match the next symbol
	var matched []int
	for i, sym := range input {
		matched = matched[:0]
		var leaf *Leaf
		for _, p := range cand {
			if g.leaves[p].Accepts(sym) {
				if leaf == nil {
					leaf = g.leaves[p]
				}
				matched = append(matched, p)
			}
		}
		if leaf == nil {
			return nil, &MatchError{Index: i, Got: sym, Expected: g.expectedLabels(cand, i == 0 && g.nullable)}
		}
		assigned[i] = leaf
		var nxt []int
		for _, p := range matched {
			nxt = append(nxt, g.follow[p]...)
		}
		cand = dedupInts(nxt)
	}
	// Accept iff a position matched by the final symbol is a last
	// position of the augmented expression.
	for _, p := range matched {
		if g.last[p] {
			return assigned, nil
		}
	}
	return nil, &MatchError{Index: len(input), Premature: true, Expected: g.expectedLabels(cand, false)}
}

func (g *Glushkov) expectedLabels(positions []int, orEnd bool) []string {
	var out []string
	for _, p := range positions {
		out = append(out, g.leaves[p].label())
	}
	if orEnd || len(positions) == 0 {
		out = append(out, "end of content")
	}
	return dedupStrings(out)
}

// UPAViolation describes a Unique Particle Attribution conflict.
type UPAViolation struct {
	A, B string // labels of the conflicting particles
}

// Error implements the error interface.
func (v *UPAViolation) Error() string {
	return fmt.Sprintf("content model violates unique particle attribution: %s and %s can match the same element", v.A, v.B)
}

// CheckUPA verifies the Unique Particle Attribution constraint: no two
// distinct particles may compete for the same element at any point.
// Positions expanded from the same schema particle (the same *Leaf) do not
// conflict.
func (g *Glushkov) CheckUPA() error {
	check := func(set []int) error {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				a, b := g.leaves[set[i]], g.leaves[set[j]]
				if a == b {
					continue
				}
				if a.overlaps(b) {
					return &UPAViolation{A: a.label(), B: b.label()}
				}
			}
		}
		return nil
	}
	if err := check(g.first); err != nil {
		return err
	}
	for _, f := range g.follow {
		if err := check(f); err != nil {
			return err
		}
	}
	return nil
}
