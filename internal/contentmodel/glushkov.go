package contentmodel

import (
	"fmt"
)

// Glushkov is a position automaton over leaf particles, built with the
// Aho–Sethi–Ullman followpos construction. Each position is one occurrence
// of a leaf in the (count-expanded) content model.
type Glushkov struct {
	leaves   []*Leaf // position -> leaf
	first    []int
	last     map[int]bool
	follow   [][]int
	nullable bool
	// dfa is the optional lazy subset construction attached by EnableDFA.
	// It must be set before the automaton is shared between goroutines.
	dfa *dfa
}

// ErrTooComplex is returned when count expansion would exceed the position
// budget (callers fall back to the interpreter).
var ErrTooComplex = fmt.Errorf("contentmodel: content model too large for position automaton")

// expansion limits for the Glushkov construction.
const (
	maxPositions        = 4096
	allPermutationLimit = 4
)

// gnode is the internal expanded regex tree.
type gnode interface{ isG() }

type gleaf struct{ pos int }
type gseq struct{ items []gnode }
type galt struct{ alts []gnode }
type gstar struct{ sub gnode }
type gempty struct{}

func (gleaf) isG()  {}
func (gseq) isG()   {}
func (galt) isG()   {}
func (gstar) isG()  {}
func (gempty) isG() {}

type gbuilder struct {
	leaves []*Leaf
}

func (b *gbuilder) newLeaf(l *Leaf) (gnode, error) {
	if len(b.leaves) >= maxPositions {
		return nil, ErrTooComplex
	}
	b.leaves = append(b.leaves, l)
	return gleaf{pos: len(b.leaves) - 1}, nil
}

// convert expands a particle into the internal tree, allocating fresh
// positions per occurrence copy.
func (b *gbuilder) convert(p *Particle) (gnode, error) {
	if p == nil || (p.Leaf == nil && p.Group == nil) || p.Max == 0 {
		return gempty{}, nil
	}
	one := func() (gnode, error) {
		if p.Leaf != nil {
			return b.newLeaf(p.Leaf)
		}
		return b.convertGroup(p.Group)
	}
	min, max := p.Min, p.Max
	if min > maxPositions {
		return nil, ErrTooComplex
	}
	var items []gnode
	for i := 0; i < min; i++ {
		n, err := one()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	switch {
	case max == Unbounded:
		n, err := one()
		if err != nil {
			return nil, err
		}
		items = append(items, gstar{sub: n})
	case max > min:
		if max-min > maxPositions {
			return nil, ErrTooComplex
		}
		for i := min; i < max; i++ {
			n, err := one()
			if err != nil {
				return nil, err
			}
			items = append(items, galt{alts: []gnode{n, gempty{}}})
		}
	}
	switch len(items) {
	case 0:
		return gempty{}, nil
	case 1:
		return items[0], nil
	default:
		return gseq{items: items}, nil
	}
}

func (b *gbuilder) convertGroup(g *Group) (gnode, error) {
	switch g.Kind {
	case Sequence:
		var items []gnode
		for _, c := range g.Children {
			n, err := b.convert(c)
			if err != nil {
				return nil, err
			}
			items = append(items, n)
		}
		if len(items) == 0 {
			return gempty{}, nil
		}
		return gseq{items: items}, nil
	case Choice:
		var alts []gnode
		for _, c := range g.Children {
			n, err := b.convert(c)
			if err != nil {
				return nil, err
			}
			alts = append(alts, n)
		}
		if len(alts) == 0 {
			return gempty{}, nil
		}
		return galt{alts: alts}, nil
	default: // All: expand to a choice of permutations for small groups
		n := len(g.Children)
		if n > allPermutationLimit {
			return nil, ErrTooComplex
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var alts []gnode
		var build func(depth int) error
		used := make([]bool, n)
		order := make([]int, 0, n)
		build = func(depth int) error {
			if depth == n {
				var items []gnode
				for _, idx := range order {
					cn, err := b.convert(g.Children[idx])
					if err != nil {
						return err
					}
					items = append(items, cn)
				}
				alts = append(alts, gseq{items: items})
				return nil
			}
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				used[i] = true
				order = append(order, i)
				if err := build(depth + 1); err != nil {
					return err
				}
				order = order[:len(order)-1]
				used[i] = false
			}
			return nil
		}
		if n == 0 {
			return gempty{}, nil
		}
		if err := build(0); err != nil {
			return nil, err
		}
		return galt{alts: alts}, nil
	}
}

// ginfo is the nullable/firstpos/lastpos triple.
type ginfo struct {
	nullable bool
	first    []int
	last     []int
}

// analyze computes nullable/first/last and fills follow.
func analyze(n gnode, follow [][]int) ginfo {
	switch x := n.(type) {
	case gempty:
		return ginfo{nullable: true}
	case gleaf:
		return ginfo{first: []int{x.pos}, last: []int{x.pos}}
	case gseq:
		cur := analyze(x.items[0], follow)
		for _, item := range x.items[1:] {
			next := analyze(item, follow)
			for _, p := range cur.last {
				follow[p] = append(follow[p], next.first...)
			}
			merged := ginfo{nullable: cur.nullable && next.nullable}
			if cur.nullable {
				merged.first = append(append([]int{}, cur.first...), next.first...)
			} else {
				merged.first = cur.first
			}
			if next.nullable {
				merged.last = append(append([]int{}, next.last...), cur.last...)
			} else {
				merged.last = next.last
			}
			cur = merged
		}
		return cur
	case galt:
		out := ginfo{}
		for _, alt := range x.alts {
			ai := analyze(alt, follow)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case gstar:
		inner := analyze(x.sub, follow)
		for _, p := range inner.last {
			follow[p] = append(follow[p], inner.first...)
		}
		return ginfo{nullable: true, first: inner.first, last: inner.last}
	default:
		panic("contentmodel: unknown gnode")
	}
}

// CompileGlushkov builds the position automaton. It returns ErrTooComplex
// for content models whose expansion exceeds the position budget; callers
// should then use NewInterp.
func CompileGlushkov(root *Particle) (*Glushkov, error) {
	b := &gbuilder{}
	tree, err := b.convert(root)
	if err != nil {
		return nil, err
	}
	follow := make([][]int, len(b.leaves))
	info := analyze(tree, follow)
	g := &Glushkov{
		leaves:   b.leaves,
		first:    dedupInts(info.first),
		follow:   follow,
		nullable: info.nullable,
		last:     map[int]bool{},
	}
	for i := range follow {
		g.follow[i] = dedupInts(follow[i])
	}
	for _, p := range info.last {
		g.last[p] = true
	}
	return g, nil
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// NumPositions returns the number of automaton positions (for tests).
func (g *Glushkov) NumPositions() int { return len(g.leaves) }

// Match runs the automaton over the child-name sequence. On success it
// returns the leaf each child matched; on failure, a MatchError. It is a
// batch wrapper around the incremental Run stepper, so the two APIs can
// never disagree on a verdict.
func (g *Glushkov) Match(input []Symbol) ([]*Leaf, *MatchError) {
	run := g.Start()
	var assigned []*Leaf
	if len(input) > 0 {
		assigned = make([]*Leaf, len(input))
	}
	for i, sym := range input {
		leaf, err := run.Step(sym)
		if err != nil {
			return nil, err
		}
		assigned[i] = leaf
	}
	if err := run.End(); err != nil {
		return nil, err
	}
	return assigned, nil
}

// Run is one incremental match in progress: the automaton state after
// some prefix of a child-name sequence. It is the streaming counterpart
// of Match — the validator's streaming path holds one Run per open
// element, stepping it as child start-tags arrive, so validity is decided
// in O(depth) memory without materializing the child list.
//
// A Run references its (immutable, shared) Glushkov automaton but owns
// all mutable state, so any number of Runs may step concurrently over
// one compiled automaton.
//
// A Run is single-owner: it must not be stepped from two goroutines or
// interleaved between two match attempts. After Step or End returns a
// MatchError the Run is dead — further Step/End calls panic — until Reset
// re-arms it. The stream validator's pooled frames rely on this guard to
// surface accidental sharing of one Run between frames.
type Run struct {
	g       *Glushkov
	cand    []int  // positions that may match the next symbol
	matched []int  // positions matched by the previous symbol
	next    []int  // scratch buffer ping-ponged with cand
	spare   []int  // second owned buffer, parked while cand aliases g.first
	mark    []bool // per-position dedup scratch, cleared after each Step
	ownCand bool   // cand is an owned buffer, not an alias of g.first
	n       int    // symbols consumed

	d        *dfa    // non-nil while stepping the lazy DFA
	ds       *dstate // current DFA state
	memoSym  Symbol  // 1-entry symbol->class memo (hot for runs of one child name)
	memoCls  int32
	memoOK   bool
	forceNFA bool // StartNFA: never re-attach the DFA on Reset
	failed   bool // a Step/End reported an error; Reset required before reuse
}

// Start begins an incremental match, on the lazy DFA when one is attached.
func (g *Glushkov) Start() *Run {
	if d := g.dfa; d != nil {
		return &Run{g: g, d: d, ds: d.start}
	}
	return &Run{g: g, cand: g.first}
}

// StartNFA begins an incremental match on the NFA stepper even when a DFA
// is attached. Differential tests and benchmarks use it to compare the two
// executors over one compiled automaton.
func (g *Glushkov) StartNFA() *Run { return &Run{g: g, cand: g.first, forceNFA: true} }

// Reset re-arms the run for a new sequence against g, reusing its
// internal buffers. Equivalent to replacing the Run with g.Start()
// (or g.StartNFA(), for runs started that way).
func (r *Run) Reset(g *Glushkov) {
	r.g = g
	if r.ownCand {
		r.spare = r.cand
	}
	r.ownCand = false
	r.matched = r.matched[:0]
	r.n = 0
	r.failed = false
	d := g.dfa
	if r.forceNFA {
		d = nil
	}
	if r.d != d {
		r.d = d
		r.memoOK = false
	}
	if d != nil {
		r.ds = d.start
		r.cand = nil
	} else {
		r.ds = nil
		r.cand = g.first
	}
}

// Step feeds the next child symbol. On acceptance it returns the leaf
// particle the child matched (the same assignment Match reports); on
// rejection, the same MatchError Match would report at this index. After
// an error the Run is dead: stepping it again panics until Reset.
func (r *Run) Step(sym Symbol) (*Leaf, *MatchError) {
	if r.failed {
		panic("contentmodel: Run reused after an error without Reset")
	}
	if r.d != nil {
		leaf, err, ok := r.stepDFA(sym)
		if ok {
			return leaf, err
		}
		// State budget overflowed: the run has been reseeded onto the
		// NFA stepper from the current position set; fall through.
	}
	g := r.g
	r.matched = r.matched[:0]
	var leaf *Leaf
	for _, p := range r.cand {
		if g.leaves[p].Accepts(sym) {
			if leaf == nil {
				leaf = g.leaves[p]
			}
			r.matched = append(r.matched, p)
		}
	}
	if leaf == nil {
		r.failed = true
		return nil, &MatchError{Index: r.n, Got: sym, Expected: g.expectedLabels(r.cand, r.n == 0 && g.nullable)}
	}
	if len(r.mark) < len(g.leaves) {
		r.mark = make([]bool, len(g.leaves))
	}
	r.next = r.next[:0]
	for _, p := range r.matched {
		for _, q := range g.follow[p] {
			if !r.mark[q] {
				r.mark[q] = true
				r.next = append(r.next, q)
			}
		}
	}
	for _, q := range r.next {
		r.mark[q] = false
	}
	// Ping-pong the buffers. On the first step cand aliases g.first,
	// which must never be written through; the parked spare buffer takes
	// its place in the rotation.
	old := r.cand
	if !r.ownCand {
		old = r.spare
	}
	r.cand, r.next, r.ownCand = r.next, old[:0], true
	r.n++
	return leaf, nil
}

// stepDFA advances the lazy DFA one symbol. ok=false means the state
// budget overflowed before the needed transition was memoized: the Run has
// been reseeded onto the NFA stepper from the current position set and the
// caller must retry the symbol on the NFA path.
func (r *Run) stepDFA(sym Symbol) (*Leaf, *MatchError, bool) {
	d := r.d
	var cls int32
	if r.memoOK && sym == r.memoSym {
		cls = r.memoCls
	} else {
		cls = d.classOf(sym)
		r.memoSym, r.memoCls, r.memoOK = sym, cls, true
	}
	st := r.ds
	tr := &st.trans[cls]
	next := tr.state.Load()
	var leaf *Leaf
	if next != nil {
		leaf = tr.leaf
	} else {
		var ok bool
		next, leaf, ok = d.buildTrans(st, cls)
		if !ok {
			r.fallbackNFA(st)
			return nil, nil, false
		}
	}
	if next == dfaReject {
		r.failed = true
		return nil, &MatchError{Index: r.n, Got: sym, Expected: d.g.expectedLabels(st.cand, r.n == 0 && d.g.nullable)}, true
	}
	r.ds = next
	r.n++
	return leaf, nil, true
}

// fallbackNFA reseeds the run onto the NFA stepper from a DFA state's
// position-set snapshot. st.cand belongs to the (shared, immutable) state
// and is aliased exactly like g.first, never written through.
func (r *Run) fallbackNFA(st *dstate) {
	r.d = nil
	r.ds = nil
	r.memoOK = false
	r.cand = st.cand
	r.ownCand = false
	r.matched = append(r.matched[:0], st.matched...)
}

// End reports whether the sequence consumed so far is a complete match:
// nil on acceptance, otherwise the premature-end MatchError Match would
// report for the same sequence. After an error the Run is dead until
// Reset, like Step.
func (r *Run) End() *MatchError {
	if r.failed {
		panic("contentmodel: Run reused after an error without Reset")
	}
	g := r.g
	if r.n == 0 {
		if g.nullable {
			return nil
		}
		r.failed = true
		return &MatchError{Index: 0, Premature: true, Expected: g.expectedLabels(g.first, false)}
	}
	if r.d != nil {
		if r.ds.accept {
			return nil
		}
		r.failed = true
		return &MatchError{Index: r.n, Premature: true, Expected: g.expectedLabels(r.ds.cand, false)}
	}
	// Accept iff a position matched by the final symbol is a last
	// position of the augmented expression.
	for _, p := range r.matched {
		if g.last[p] {
			return nil
		}
	}
	r.failed = true
	return &MatchError{Index: r.n, Premature: true, Expected: g.expectedLabels(r.cand, false)}
}

func (g *Glushkov) expectedLabels(positions []int, orEnd bool) []string {
	var out []string
	for _, p := range positions {
		out = append(out, g.leaves[p].label())
	}
	if orEnd || len(positions) == 0 {
		out = append(out, "end of content")
	}
	return dedupStrings(out)
}

// UPAViolation describes a Unique Particle Attribution conflict.
type UPAViolation struct {
	A, B string // labels of the conflicting particles
}

// Error implements the error interface.
func (v *UPAViolation) Error() string {
	return fmt.Sprintf("content model violates unique particle attribution: %s and %s can match the same element", v.A, v.B)
}

// CheckUPA verifies the Unique Particle Attribution constraint: no two
// distinct particles may compete for the same element at any point.
// Positions expanded from the same schema particle (the same *Leaf) do not
// conflict.
func (g *Glushkov) CheckUPA() error {
	check := func(set []int) error {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				a, b := g.leaves[set[i]], g.leaves[set[j]]
				if a == b {
					continue
				}
				if a.overlaps(b) {
					return &UPAViolation{A: a.label(), B: b.label()}
				}
			}
		}
		return nil
	}
	if err := check(g.first); err != nil {
		return err
	}
	for _, f := range g.follow {
		if err := check(f); err != nil {
			return err
		}
	}
	return nil
}
