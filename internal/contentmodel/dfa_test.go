package contentmodel

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// modelZoo is the hand-built particle corpus the differential tests sweep:
// every compositor, occurrence shape and leaf kind the compiler emits.
func modelZoo() map[string]*Particle {
	leaf := NewElementLeaf
	return map[string]*Particle{
		"po-items": NewSequence(1, 1,
			leaf(0, Unbounded, sym("item"), "item")),
		"po-order": NewSequence(1, 1,
			leaf(1, 1, sym("shipTo"), "shipTo"),
			leaf(1, 1, sym("billTo"), "billTo"),
			leaf(0, 1, sym("comment"), "comment"),
			leaf(1, 1, sym("items"), "items")),
		"choice-star": NewChoice(0, Unbounded,
			leaf(1, 1, sym("a"), "a"),
			leaf(1, 1, sym("b"), "b"),
			leaf(1, 1, sym("c"), "c")),
		"nested-optional": NewSequence(1, 1,
			leaf(0, 1, sym("head"), "head"),
			NewSequence(0, Unbounded,
				leaf(1, 1, sym("key"), "key"),
				leaf(1, 1, sym("value"), "value")),
			leaf(0, 1, sym("tail"), "tail")),
		"counted": NewSequence(1, 1,
			leaf(2, 4, sym("x"), "x"),
			leaf(1, 1, sym("end"), "end")),
		"all-group": NewAll(1, 1,
			leaf(1, 1, sym("one"), "one"),
			leaf(1, 1, sym("two"), "two"),
			leaf(0, 1, sym("three"), "three")),
		"substitution-names": NewSequence(1, 1, &Particle{
			Min: 1, Max: Unbounded,
			Leaf: &Leaf{Names: []Symbol{sym("comment"), sym("shipComment"), sym("customerComment")}, Data: "comments"},
		}),
		"wildcard-tail": NewSequence(1, 1,
			leaf(1, 1, sym("name"), "name"),
			&Particle{Min: 0, Max: Unbounded,
				Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildList, Namespaces: []string{"urn:ext"}}, Data: "ext"}}),
		"wildcard-other": NewSequence(1, 1,
			&Particle{Min: 0, Max: Unbounded,
				Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildOther, TargetNS: "urn:tns"}, Data: "other"}},
			&Particle{Min: 1, Max: 1,
				Leaf: &Leaf{Names: []Symbol{{Space: "urn:tns", Local: "end"}}, Data: "end"}}),
		"empty":    NewSequence(1, 1),
		"nullable": NewChoice(0, 1, leaf(1, 1, sym("only"), "only")),
	}
}

// symbolPool builds the generation alphabet for a model: its own names,
// wildcard-admitted names, and foreign symbols no leaf accepts.
func symbolPool(g *Glushkov) []Symbol {
	pool := g.Alphabet()
	pool = append(pool,
		Symbol{Space: "urn:ext", Local: "extElem"},
		Symbol{Space: "urn:other", Local: "stranger"},
		Symbol{Space: "urn:tns", Local: "local"},
		Symbol{Local: "zzz-unknown"},
	)
	return pool
}

// stepAccepts reports whether appending next to a known-steppable prefix
// still steps (replays the prefix on a fresh NFA run).
func stepAccepts(g *Glushkov, prefix []Symbol, next Symbol) bool {
	r := g.StartNFA()
	for _, s := range prefix {
		if _, err := r.Step(s); err != nil {
			return false
		}
	}
	_, err := r.Step(next)
	return err == nil
}

// genSequences produces valid and invalid child sequences for the model:
// greedy valid walks, truncations, single-symbol mutations, and pure noise.
func genSequences(g *Glushkov, rng *rand.Rand) [][]Symbol {
	alpha := g.Alphabet()
	pool := symbolPool(g)
	var seqs [][]Symbol
	for t := 0; t < 6; t++ {
		var seq []Symbol
		for len(seq) < 10 {
			found := false
			for _, i := range rng.Perm(len(alpha)) {
				if stepAccepts(g, seq, alpha[i]) {
					seq = append(seq, alpha[i])
					found = true
					break
				}
			}
			if !found || rng.Intn(3) == 0 {
				break
			}
		}
		seqs = append(seqs, seq)
		if n := len(seq); n > 0 {
			mut := append([]Symbol{}, seq...)
			mut[rng.Intn(n)] = pool[rng.Intn(len(pool))]
			seqs = append(seqs, mut, seq[:rng.Intn(n)])
		}
	}
	for t := 0; t < 6; t++ {
		var seq []Symbol
		for i, n := 0, rng.Intn(6); i < n; i++ {
			seq = append(seq, pool[rng.Intn(len(pool))])
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// assertSameRun drives one sequence through a DFA-backed run and an NFA
// run and fails unless every observable — leaf assignment per step, error
// position, error message — is identical.
func assertSameRun(t *testing.T, g *Glushkov, dr, nr *Run, seq []Symbol) {
	t.Helper()
	for i, s := range seq {
		dl, de := dr.Step(s)
		nl, ne := nr.Step(s)
		if (de == nil) != (ne == nil) {
			t.Fatalf("step %d (%v): DFA err=%v NFA err=%v", i, s, de, ne)
		}
		if de != nil {
			if !reflect.DeepEqual(de, ne) || de.Error() != ne.Error() {
				t.Fatalf("step %d (%v): errors diverged:\n  dfa: %#v\n  nfa: %#v", i, s, de, ne)
			}
			return
		}
		if dl != nl {
			t.Fatalf("step %d (%v): leaf diverged: dfa=%v nfa=%v", i, s, dl.Data, nl.Data)
		}
	}
	de, ne := dr.End(), nr.End()
	if (de == nil) != (ne == nil) {
		t.Fatalf("end after %d: DFA err=%v NFA err=%v", len(seq), de, ne)
	}
	if de != nil && (!reflect.DeepEqual(de, ne) || de.Error() != ne.Error()) {
		t.Fatalf("end errors diverged:\n  dfa: %#v\n  nfa: %#v", de, ne)
	}
}

// TestDFAMatchesNFAModelZoo sweeps the particle corpus: per model, DFA and
// NFA steppers must agree on every generated sequence, both on cold
// (building) and warm (memoized) DFA passes.
func TestDFAMatchesNFAModelZoo(t *testing.T) {
	for name, p := range modelZoo() {
		t.Run(name, func(t *testing.T) {
			g, err := CompileGlushkov(p)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !g.EnableDFA(NewInterner(), 0) {
				t.Fatalf("EnableDFA refused a UPA-clean model")
			}
			rng := rand.New(rand.NewSource(0x5eed))
			seqs := genSequences(g, rng)
			for pass := 0; pass < 2; pass++ { // cold, then memoized
				for _, seq := range seqs {
					assertSameRun(t, g, g.Start(), g.StartNFA(), seq)
				}
			}
			// Reset-based reuse (the stream validator's pattern).
			dr, nr := g.Start(), g.StartNFA()
			for _, seq := range seqs {
				dr.Reset(g)
				nr.Reset(g)
				assertSameRun(t, g, dr, nr, seq)
			}
		})
	}
}

// TestDFABudgetFallback forces the state budget to overflow mid-run and
// checks the reseeded NFA continuation still matches pure NFA stepping.
func TestDFABudgetFallback(t *testing.T) {
	for name, p := range modelZoo() {
		t.Run(name, func(t *testing.T) {
			g, err := CompileGlushkov(p)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !g.EnableDFA(NewInterner(), 2) { // start state + one successor
				t.Fatalf("EnableDFA refused")
			}
			rng := rand.New(rand.NewSource(42))
			for _, seq := range genSequences(g, rng) {
				assertSameRun(t, g, g.Start(), g.StartNFA(), seq)
			}
			if n := g.DFAStates(); n > 2 {
				t.Fatalf("budget 2 exceeded: %d states", n)
			}
		})
	}
}

// TestDFAConcurrent races many steppers over one shared automaton while
// the lazy DFA is still being built (meaningful under -race).
func TestDFAConcurrent(t *testing.T) {
	p := modelZoo()["nested-optional"]
	g, err := CompileGlushkov(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.EnableDFA(NewInterner(), 0) {
		t.Fatal("EnableDFA refused")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, seq := range genSequences(g, rng) {
				dr, nr := g.Start(), g.StartNFA()
				for i, s := range seq {
					dl, de := dr.Step(s)
					nl, ne := nr.Step(s)
					if (de == nil) != (ne == nil) || (de == nil && dl != nl) {
						t.Errorf("worker %d step %d diverged", seed, i)
						return
					}
					if de != nil {
						if de.Error() != ne.Error() {
							t.Errorf("worker %d: error text diverged", seed)
						}
						break
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestDFAUPAGate: ambiguous models must keep the NFA stepper.
func TestDFAUPAGate(t *testing.T) {
	amb := NewChoice(1, 1,
		NewSequence(1, 1, NewElementLeaf(1, 1, sym("a"), "a1"), NewElementLeaf(1, 1, sym("b"), "b")),
		NewSequence(1, 1, NewElementLeaf(1, 1, sym("a"), "a2"), NewElementLeaf(1, 1, sym("c"), "c")),
	)
	g, err := CompileGlushkov(amb)
	if err != nil {
		t.Fatal(err)
	}
	if g.EnableDFA(NewInterner(), 0) {
		t.Fatal("EnableDFA accepted a UPA-violating model")
	}
	if g.DFAEnabled() {
		t.Fatal("DFA attached despite refusal")
	}
}

// TestRunDeadAfterError: a Run that reported an error must panic on
// further use until Reset re-arms it (the pooled-frame safety net).
func TestRunDeadAfterError(t *testing.T) {
	p := modelZoo()["po-order"]
	g, err := CompileGlushkov(p)
	if err != nil {
		t.Fatal(err)
	}
	g.EnableDFA(NewInterner(), 0)
	for _, mode := range []string{"dfa", "nfa"} {
		t.Run(mode, func(t *testing.T) {
			r := g.Start()
			if mode == "nfa" {
				r = g.StartNFA()
			}
			if _, err := r.Step(sym("nonsense")); err == nil {
				t.Fatal("expected step error")
			}
			assertPanics(t, func() { r.Step(sym("shipTo")) })
			assertPanics(t, func() { r.End() })
			r.Reset(g)
			if _, err := r.Step(sym("shipTo")); err != nil {
				t.Fatalf("reset run must step: %v", err)
			}
		})
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestInterner covers dense IDs and concurrent lookup stability.
func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern(sym("a"))
	b := in.Intern(sym("b"))
	if a == b || in.Intern(sym("a")) != a || in.Len() != 2 {
		t.Fatalf("bad interning: a=%d b=%d len=%d", a, b, in.Len())
	}
	if id, ok := in.Lookup(sym("b")); !ok || id != b {
		t.Fatalf("lookup b: %d %v", id, ok)
	}
	if _, ok := in.Lookup(sym("c")); ok {
		t.Fatal("phantom symbol")
	}
}
