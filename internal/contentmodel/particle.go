package contentmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Unbounded is the Max value representing maxOccurs="unbounded".
const Unbounded = -1

// Symbol is a child-element event: a namespace/local-name pair.
type Symbol struct {
	Space string
	Local string
}

// String renders the symbol in Clark notation.
func (s Symbol) String() string {
	if s.Space == "" {
		return s.Local
	}
	return "{" + s.Space + "}" + s.Local
}

// WildcardKind describes which namespaces a wildcard admits.
type WildcardKind int

// Wildcard kinds.
const (
	// WildAny admits any namespace (##any).
	WildAny WildcardKind = iota
	// WildOther admits any namespace except the target namespace
	// (##other).
	WildOther
	// WildList admits the listed namespaces ("" stands for ##local).
	WildList
)

// Wildcard is an xs:any term.
type Wildcard struct {
	Kind WildcardKind
	// TargetNS is the schema's target namespace (for ##other).
	TargetNS string
	// Namespaces is the admitted list for WildList.
	Namespaces []string
}

// Admits reports whether the wildcard admits an element in namespace ns.
func (w *Wildcard) Admits(ns string) bool {
	switch w.Kind {
	case WildAny:
		return true
	case WildOther:
		return ns != w.TargetNS && ns != ""
	default:
		for _, n := range w.Namespaces {
			if n == ns {
				return true
			}
		}
		return false
	}
}

// Leaf is a terminal particle: either a set of admissible element names
// (the declared element plus its substitution-group members) or a
// wildcard.
type Leaf struct {
	// Names are the concrete element names this leaf accepts; empty for
	// a wildcard leaf.
	Names []Symbol
	// Wildcard is set for xs:any leaves.
	Wildcard *Wildcard
	// Data carries the schema component (e.g. *xsd.ElementDecl) through
	// to match results.
	Data any
}

// Accepts reports whether the leaf matches the symbol.
func (l *Leaf) Accepts(s Symbol) bool {
	if l.Wildcard != nil {
		return l.Wildcard.Admits(s.Space)
	}
	for _, n := range l.Names {
		if n == s {
			return true
		}
	}
	return false
}

// overlaps reports whether two leaves can accept a common symbol (used by
// the Unique Particle Attribution check).
func (l *Leaf) overlaps(m *Leaf) bool {
	switch {
	case l.Wildcard != nil && m.Wildcard != nil:
		return true // conservative: most wildcard pairs overlap
	case l.Wildcard != nil:
		for _, n := range m.Names {
			if l.Wildcard.Admits(n.Space) {
				return true
			}
		}
		return false
	case m.Wildcard != nil:
		return m.overlaps(l)
	default:
		for _, a := range l.Names {
			for _, b := range m.Names {
				if a == b {
					return true
				}
			}
		}
		return false
	}
}

// label names the leaf for error messages.
func (l *Leaf) label() string {
	if l.Wildcard != nil {
		return "any"
	}
	parts := make([]string, len(l.Names))
	for i, n := range l.Names {
		parts[i] = n.String()
	}
	return strings.Join(parts, "|")
}

// GroupKind is the compositor of a model group.
type GroupKind int

// Group kinds.
const (
	Sequence GroupKind = iota
	Choice
	All
)

// String returns the XSD element name of the compositor.
func (k GroupKind) String() string {
	switch k {
	case Sequence:
		return "sequence"
	case Choice:
		return "choice"
	case All:
		return "all"
	}
	return "group"
}

// Group is a model group.
type Group struct {
	Kind     GroupKind
	Children []*Particle
}

// Particle is a term with occurrence bounds. Exactly one of Leaf and Group
// is non-nil; a Particle with both nil is an empty content placeholder.
type Particle struct {
	Min  int
	Max  int // Unbounded (-1) for maxOccurs="unbounded"
	Leaf *Leaf
	// Group is the nested model group.
	Group *Group
}

// NewElementLeaf builds a leaf particle for one element name.
func NewElementLeaf(min, max int, name Symbol, data any) *Particle {
	return &Particle{Min: min, Max: max, Leaf: &Leaf{Names: []Symbol{name}, Data: data}}
}

// NewSequence builds a sequence particle.
func NewSequence(min, max int, children ...*Particle) *Particle {
	return &Particle{Min: min, Max: max, Group: &Group{Kind: Sequence, Children: children}}
}

// NewChoice builds a choice particle.
func NewChoice(min, max int, children ...*Particle) *Particle {
	return &Particle{Min: min, Max: max, Group: &Group{Kind: Choice, Children: children}}
}

// NewAll builds an all particle.
func NewAll(min, max int, children ...*Particle) *Particle {
	return &Particle{Min: min, Max: max, Group: &Group{Kind: All, Children: children}}
}

// isEmptiable reports whether the particle can match the empty sequence.
func (p *Particle) isEmptiable() bool {
	if p == nil {
		return true
	}
	if p.Min == 0 {
		return true
	}
	if p.Group == nil {
		return false
	}
	switch p.Group.Kind {
	case Choice:
		for _, c := range p.Group.Children {
			if c.isEmptiable() {
				return true
			}
		}
		return false
	default: // Sequence, All
		for _, c := range p.Group.Children {
			if !c.isEmptiable() {
				return false
			}
		}
		return true
	}
}

// String renders the particle as a regex-like expression for diagnostics.
func (p *Particle) String() string {
	if p == nil {
		return "()"
	}
	var body string
	switch {
	case p.Leaf != nil:
		body = p.Leaf.label()
	case p.Group != nil:
		parts := make([]string, len(p.Group.Children))
		for i, c := range p.Group.Children {
			parts[i] = c.String()
		}
		sep := ", "
		if p.Group.Kind == Choice {
			sep = " | "
		}
		if p.Group.Kind == All {
			sep = " & "
		}
		body = "(" + strings.Join(parts, sep) + ")"
	default:
		return "()"
	}
	switch {
	case p.Min == 1 && p.Max == 1:
		return body
	case p.Min == 0 && p.Max == 1:
		return body + "?"
	case p.Min == 0 && p.Max == Unbounded:
		return body + "*"
	case p.Min == 1 && p.Max == Unbounded:
		return body + "+"
	case p.Max == Unbounded:
		return fmt.Sprintf("%s{%d,}", body, p.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", body, p.Min, p.Max)
	}
}

// MatchError reports why a child sequence was rejected.
type MatchError struct {
	// Index is the offending child position, or len(input) when input
	// ended too early.
	Index int
	// Got is the rejected symbol (zero when input ended).
	Got Symbol
	// Expected describes what the automaton would have accepted.
	Expected []string
	// Premature marks an unexpected end of input.
	Premature bool
}

// Error implements the error interface.
func (e *MatchError) Error() string {
	exp := "nothing"
	if len(e.Expected) > 0 {
		exp = strings.Join(e.Expected, ", ")
	}
	if e.Premature {
		return fmt.Sprintf("content ended at position %d; expected %s", e.Index, exp)
	}
	return fmt.Sprintf("unexpected element %s at position %d; expected %s", e.Got, e.Index, exp)
}

// dedupStrings sorts and deduplicates a string list (for error messages).
func dedupStrings(xs []string) []string {
	sort.Strings(xs)
	out := xs[:0]
	var last string
	for i, x := range xs {
		if i == 0 || x != last {
			out = append(out, x)
		}
		last = x
	}
	return out
}
