package contentmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sym builds a no-namespace symbol.
func sym(local string) Symbol { return Symbol{Local: local} }

// syms splits "a b c" into symbols.
func syms(s string) []Symbol {
	if s == "" {
		return nil
	}
	parts := strings.Fields(s)
	out := make([]Symbol, len(parts))
	for i, p := range parts {
		out[i] = sym(p)
	}
	return out
}

// el is shorthand for a single-element leaf particle.
func el(name string, min, max int) *Particle {
	return NewElementLeaf(min, max, sym(name), name)
}

// purchaseOrderModel is the paper's PurchaseOrderType content model:
// sequence(shipTo, billTo, comment?, items).
func purchaseOrderModel() *Particle {
	return NewSequence(1, 1,
		el("shipTo", 1, 1),
		el("billTo", 1, 1),
		el("comment", 0, 1),
		el("items", 1, 1),
	)
}

// choiceModel is the paper's evolved model: sequence(choice(singAddr,
// twoAddr), comment?, items).
func choiceModel() *Particle {
	return NewSequence(1, 1,
		NewChoice(1, 1, el("singAddr", 1, 1), el("twoAddr", 1, 1)),
		el("comment", 0, 1),
		el("items", 1, 1),
	)
}

// matchers returns both matchers for cross-checking.
func matchers(t *testing.T, p *Particle) map[string]Matcher {
	t.Helper()
	g, err := CompileGlushkov(p)
	if err != nil {
		t.Fatalf("CompileGlushkov: %v", err)
	}
	return map[string]Matcher{"glushkov": g, "interp": NewInterp(p)}
}

type acceptCase struct {
	input string
	want  bool
}

func runCases(t *testing.T, p *Particle, cases []acceptCase) {
	t.Helper()
	for name, m := range matchers(t, p) {
		for _, c := range cases {
			_, err := m.Match(syms(c.input))
			got := err == nil
			if got != c.want {
				t.Errorf("%s: %v on %q = %v, want %v (err: %v)", name, p, c.input, got, c.want, err)
			}
		}
	}
}

func TestPurchaseOrderSequence(t *testing.T) {
	runCases(t, purchaseOrderModel(), []acceptCase{
		{"shipTo billTo comment items", true},
		{"shipTo billTo items", true}, // comment is optional
		{"shipTo billTo", false},
		{"billTo shipTo items", false}, // order matters
		{"shipTo billTo comment comment items", false},
		{"shipTo billTo items extra", false},
		{"", false},
	})
}

func TestChoiceGroup(t *testing.T) {
	runCases(t, choiceModel(), []acceptCase{
		{"singAddr comment items", true},
		{"twoAddr items", true},
		{"singAddr twoAddr items", false}, // choice picks one
		{"comment items", false},
		{"items", false},
	})
}

func TestOccurrenceBounds(t *testing.T) {
	// item{0,unbounded} — the paper's Items type.
	p := NewSequence(1, 1, el("item", 0, Unbounded))
	runCases(t, p, []acceptCase{
		{"", true},
		{"item", true},
		{"item item item item item", true},
		{"item other", false},
	})
	// quantity{2,4}.
	q := NewSequence(1, 1, el("q", 2, 4))
	runCases(t, q, []acceptCase{
		{"q", false},
		{"q q", true},
		{"q q q q", true},
		{"q q q q q", false},
	})
}

func TestNestedGroups(t *testing.T) {
	// sequence(a, choice(b, sequence(c, d))+, e?)
	p := NewSequence(1, 1,
		el("a", 1, 1),
		NewChoice(1, Unbounded,
			el("b", 1, 1),
			NewSequence(1, 1, el("c", 1, 1), el("d", 1, 1)),
		),
		el("e", 0, 1),
	)
	runCases(t, p, []acceptCase{
		{"a b", true},
		{"a c d", true},
		{"a b c d b e", true},
		{"a", false},
		{"a c", false},
		{"a c d d", false},
		{"a e", false},
	})
}

func TestAllGroup(t *testing.T) {
	p := NewAll(1, 1, el("a", 1, 1), el("b", 1, 1), el("c", 0, 1))
	runCases(t, p, []acceptCase{
		{"a b c", true},
		{"c b a", true},
		{"b a", true}, // c optional
		{"a b b c", false},
		{"a", false},
	})
}

func TestAllGroupInterpOnly(t *testing.T) {
	// Seven children exceed the permutation limit: Glushkov refuses,
	// interpreter handles it.
	children := make([]*Particle, 7)
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, n := range names {
		children[i] = el(n, 1, 1)
	}
	p := NewAll(1, 1, children...)
	if _, err := CompileGlushkov(p); err == nil {
		t.Fatal("expected ErrTooComplex for a 7-way all group")
	}
	m := NewInterp(p)
	if _, err := m.Match(syms("g f e d c b a")); err != nil {
		t.Errorf("interp all: %v", err)
	}
	if _, err := m.Match(syms("g f e d c b")); err == nil {
		t.Error("interp all should reject missing child")
	}
}

func TestEmptyContent(t *testing.T) {
	p := NewSequence(1, 1) // empty sequence
	runCases(t, p, []acceptCase{
		{"", true},
		{"x", false},
	})
}

func TestLeafAssignment(t *testing.T) {
	p := purchaseOrderModel()
	for name, m := range matchers(t, p) {
		leaves, err := m.Match(syms("shipTo billTo items"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := []string{"shipTo", "billTo", "items"}
		for i, l := range leaves {
			if l.Data.(string) != want[i] {
				t.Errorf("%s: child %d assigned %v, want %s", name, i, l.Data, want[i])
			}
		}
	}
}

func TestSubstitutionGroupNames(t *testing.T) {
	// A leaf accepting comment + its substitution members shipComment,
	// customerComment (paper §3).
	leaf := &Leaf{Names: []Symbol{sym("comment"), sym("shipComment"), sym("customerComment")}, Data: "comment"}
	p := NewSequence(1, 1, &Particle{Min: 1, Max: 1, Leaf: leaf})
	runCases(t, p, []acceptCase{
		{"comment", true},
		{"shipComment", true},
		{"customerComment", true},
		{"otherComment", false},
	})
}

func TestWildcard(t *testing.T) {
	anyLeaf := &Particle{Min: 0, Max: Unbounded, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildAny}}}
	p := NewSequence(1, 1, el("head", 1, 1), anyLeaf)
	for name, m := range matchers(t, p) {
		if _, err := m.Match([]Symbol{sym("head"), {Space: "urn:x", Local: "foo"}, sym("bar")}); err != nil {
			t.Errorf("%s wildcard: %v", name, err)
		}
	}
	other := &Wildcard{Kind: WildOther, TargetNS: "urn:t"}
	if other.Admits("urn:t") || other.Admits("") || !other.Admits("urn:else") {
		t.Error("##other semantics wrong")
	}
	list := &Wildcard{Kind: WildList, Namespaces: []string{"", "urn:a"}}
	if !list.Admits("") || !list.Admits("urn:a") || list.Admits("urn:b") {
		t.Error("namespace list semantics wrong")
	}
}

func TestUPADetection(t *testing.T) {
	// (a | a b): classic UPA violation — 'a' attributable to two
	// particles.
	bad := NewChoice(1, 1,
		el("a", 1, 1),
		NewSequence(1, 1, el("a", 1, 1), el("b", 1, 1)),
	)
	g, err := CompileGlushkov(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckUPA(); err == nil {
		t.Error("UPA violation not detected for (a | a b)")
	}
	// (a?, a) also violates UPA.
	bad2 := NewSequence(1, 1, el("a", 0, 1), el("a", 1, 1))
	g2, _ := CompileGlushkov(bad2)
	if err := g2.CheckUPA(); err == nil {
		t.Error("UPA violation not detected for (a?, a)")
	}
	// The purchase order model is deterministic.
	g3, _ := CompileGlushkov(purchaseOrderModel())
	if err := g3.CheckUPA(); err != nil {
		t.Errorf("purchase order model flagged: %v", err)
	}
	// a{0,unbounded} is fine: both positions are the same particle.
	g4, _ := CompileGlushkov(NewSequence(1, 1, el("a", 0, Unbounded)))
	if err := g4.CheckUPA(); err != nil {
		t.Errorf("a* flagged: %v", err)
	}
}

func TestMatchErrorDetail(t *testing.T) {
	p := purchaseOrderModel()
	g, _ := CompileGlushkov(p)
	_, err := g.Match(syms("shipTo comment"))
	if err == nil {
		t.Fatal("expected error")
	}
	if err.Index != 1 || err.Got != sym("comment") {
		t.Errorf("error position: %+v", err)
	}
	found := false
	for _, e := range err.Expected {
		if e == "billTo" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected list should mention billTo: %v", err.Expected)
	}
	// Premature end.
	_, err = g.Match(syms("shipTo billTo"))
	if err == nil || !err.Premature {
		t.Errorf("premature end not flagged: %v", err)
	}
}

func TestGroupOccursOnGroups(t *testing.T) {
	// (a, b){2}
	p := NewSequence(2, 2, el("a", 1, 1), el("b", 1, 1))
	runCases(t, p, []acceptCase{
		{"a b a b", true},
		{"a b", false},
		{"a b a b a b", false},
	})
	// choice(a, b){1,3}
	q := NewChoice(1, 3, el("a", 1, 1), el("b", 1, 1))
	runCases(t, q, []acceptCase{
		{"a", true},
		{"b a b", true},
		{"a a a a", false},
		{"", false},
	})
}

func TestEmptiable(t *testing.T) {
	if !el("a", 0, 1).isEmptiable() {
		t.Error("a? should be emptiable")
	}
	if el("a", 1, 1).isEmptiable() {
		t.Error("a should not be emptiable")
	}
	if !NewSequence(1, 1, el("a", 0, 1), el("b", 0, Unbounded)).isEmptiable() {
		t.Error("(a?, b*) should be emptiable")
	}
	if !NewChoice(1, 1, el("a", 1, 1), el("b", 0, 1)).isEmptiable() {
		t.Error("(a | b?) should be emptiable")
	}
}

// TestGlushkovInterpAgree is the core property test: both matchers must
// agree on random inputs over random particle trees.
func TestGlushkovInterpAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c", "d"}
	var genParticle func(depth int) *Particle
	genParticle = func(depth int) *Particle {
		min := rng.Intn(2)
		max := min + rng.Intn(3)
		if rng.Intn(6) == 0 {
			max = Unbounded
		}
		if max == 0 {
			max = 1
		}
		if depth >= 2 || rng.Intn(2) == 0 {
			return el(alphabet[rng.Intn(len(alphabet))], min, max)
		}
		n := 1 + rng.Intn(3)
		kids := make([]*Particle, n)
		for i := range kids {
			kids[i] = genParticle(depth + 1)
		}
		if rng.Intn(2) == 0 {
			return NewSequence(min, max, kids...)
		}
		return NewChoice(min, max, kids...)
	}
	for trial := 0; trial < 60; trial++ {
		p := genParticle(0)
		g, err := CompileGlushkov(p)
		if err != nil {
			continue
		}
		in := NewInterp(p)
		f := func(raw []byte) bool {
			if len(raw) > 8 {
				raw = raw[:8]
			}
			input := make([]Symbol, len(raw))
			for i, b := range raw {
				input[i] = sym(alphabet[int(b)%len(alphabet)])
			}
			_, e1 := g.Match(input)
			_, e2 := in.Match(input)
			return (e1 == nil) == (e2 == nil)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("matchers disagree on %v: %v", p, err)
		}
	}
}

func TestLargeCountsFallback(t *testing.T) {
	// maxOccurs=100000 exceeds the position budget.
	p := NewSequence(1, 1, el("a", 99999, 100000))
	if _, err := CompileGlushkov(p); err == nil {
		t.Fatal("expected ErrTooComplex")
	}
	m := Compile(p) // falls back to interpreter
	if _, ok := m.(*Interp); !ok {
		t.Fatalf("Compile should fall back to Interp, got %T", m)
	}
	input := make([]Symbol, 99999)
	for i := range input {
		input[i] = sym("a")
	}
	if _, err := m.Match(input); err != nil {
		t.Errorf("interp large count: %v", err)
	}
	if _, err := m.Match(input[:99998]); err == nil {
		t.Error("should reject count below minOccurs")
	}
}

func TestParticleString(t *testing.T) {
	p := choiceModel()
	s := p.String()
	for _, want := range []string{"singAddr | twoAddr", "comment?", "items"} {
		if !strings.Contains(s, want) {
			t.Errorf("particle string %q missing %q", s, want)
		}
	}
}
