package contentmodel

import (
	"fmt"
)

// This file is the eager counterpart of the lazy subset construction in
// dfa.go, built for ahead-of-time code emission: codegen's validator back
// end determinizes a content model once at generation time and prints the
// whole transition table as Go switch statements. The construction mirrors
// the lazy one step for step — same alphabet classes (buildClasses), same
// candidate ordering, same first-matched leaf assignment, same
// canonical-set state identity — so a generated validator walks exactly
// the states the lazy DFA would have memoized and reports byte-identical
// MatchError values.

// DFATable is a fully materialized DFA over one Glushkov automaton.
// State 0 is the start state. Named transitions are indexed by the
// position of the symbol in Syms; symbols the model does not declare are
// routed through the wildcard-admission bucket for their namespace
// (bit i of a bucket mask = Wilds[i].Wildcard admits the namespace).
type DFATable struct {
	Syms     []Symbol // named alphabet, first-seen leaf order
	Wilds    []*Leaf  // distinct wildcard leaves, first-seen order
	Leaves   []*Leaf  // dense leaf universe referenced by arcs
	States   []DFAState
	Nullable bool
}

// DFAState is one determinized position set.
type DFAState struct {
	Accept bool
	// StepExpected is the Expected slice of the MatchError a Step reports
	// from this state (sorted, deduplicated — exactly what the lazy path
	// computes from its candidate set). EndExpected is the Expected slice
	// of the premature-end MatchError.
	StepExpected []string
	EndExpected  []string
	Named        []DFAArc // per named symbol, parallel to Syms
	Buckets      []DFAArc // per wildcard subset mask, len 1<<len(Wilds)
}

// DFAArc is one transition: the successor state and the leaf particle the
// symbol is attributed to. Next < 0 means reject.
type DFAArc struct {
	Next int
	Leaf int // index into Leaves, -1 on reject
}

// Label returns the human-readable particle label used in MatchError
// expected lists ("name", "a|b" for substitution heads, "any").
func (l *Leaf) Label() string { return l.label() }

// ExportDFA determinizes the automaton eagerly. It refuses — mirroring
// EnableDFA — when the model violates Unique Particle Attribution (subset
// canonicalization is only observation-equivalent when at most one
// particle competes per symbol), when it has more than maxDFAWildcards
// distinct wildcards, or when determinization exceeds the state budget
// (callers fall back to the interpreted path). A budget <= 0 selects
// DefaultDFABudget.
func (g *Glushkov) ExportDFA(budget int) (*DFATable, error) {
	if err := g.CheckUPA(); err != nil {
		return nil, fmt.Errorf("contentmodel: cannot export DFA: %w", err)
	}
	if budget <= 0 {
		budget = DefaultDFABudget
	}
	cls := g.buildClasses()
	if len(cls.wilds) > maxDFAWildcards {
		return nil, fmt.Errorf("contentmodel: cannot export DFA: %d distinct wildcards exceeds the limit of %d", len(cls.wilds), maxDFAWildcards)
	}

	t := &DFATable{Syms: cls.syms, Wilds: cls.wilds, Nullable: g.nullable}
	leafIdx := map[*Leaf]int{}
	leafOf := func(l *Leaf) int {
		if i, ok := leafIdx[l]; ok {
			return i
		}
		i := len(t.Leaves)
		leafIdx[l] = i
		t.Leaves = append(t.Leaves, l)
		return i
	}

	// cands[i] is state i's candidate set in NFA order; the start state's
	// set is g.first and successors derive from the matched set exactly as
	// dfa.newState replays it.
	cands := [][]int{g.first}
	accepts := []bool{g.nullable}
	bySet := map[string]int{}
	scratch := make([]bool, len(g.leaves))
	type arcs struct{ named, buckets []DFAArc }
	var all []arcs

	for si := 0; si < len(cands); si++ {
		cand := cands[si]
		a := arcs{
			named:   make([]DFAArc, len(cls.syms)),
			buckets: make([]DFAArc, 1<<len(cls.wilds)),
		}
		for c := 0; c < cls.nclasses; c++ {
			arc := DFAArc{Next: -1, Leaf: -1}
			acc := cls.accSets[c]
			for _, p := range acc {
				scratch[p] = true
			}
			var matched []int
			leaf := -1
			for _, p := range cand {
				if scratch[p] {
					if leaf < 0 {
						leaf = leafOf(g.leaves[p])
					}
					matched = append(matched, p)
				}
			}
			for _, p := range acc {
				scratch[p] = false
			}
			if leaf >= 0 {
				key := setKey(matched)
				next, ok := bySet[key]
				if !ok {
					if len(cands) >= budget {
						return nil, fmt.Errorf("contentmodel: cannot export DFA: state budget %d exceeded", budget)
					}
					// Successor candidate set: follow-set union in matched
					// order with keep-first dedup, as dfa.newState does.
					var nc []int
					for _, p := range matched {
						for _, q := range g.follow[p] {
							if !scratch[q] {
								scratch[q] = true
								nc = append(nc, q)
							}
						}
					}
					for _, q := range nc {
						scratch[q] = false
					}
					acceptState := false
					for _, p := range matched {
						if g.last[p] {
							acceptState = true
							break
						}
					}
					next = len(cands)
					bySet[key] = next
					cands = append(cands, nc)
					accepts = append(accepts, acceptState)
				}
				arc = DFAArc{Next: next, Leaf: leaf}
			}
			if c < len(cls.syms) {
				a.named[c] = arc
			} else {
				a.buckets[c-len(cls.syms)] = arc
			}
		}
		all = append(all, a)
	}

	for si, cand := range cands {
		t.States = append(t.States, DFAState{
			Accept:       accepts[si],
			StepExpected: g.expectedLabels(cand, si == 0 && g.nullable),
			EndExpected:  g.expectedLabels(cand, false),
			Named:        all[si].named,
			Buckets:      all[si].buckets,
		})
	}
	return t, nil
}

// Match runs the exported table over a child-name sequence, producing the
// verdict the Glushkov stepper would. It exists for differential tests:
// generated validators inline this walk, and this reference implementation
// pins its semantics against the lazy path.
func (t *DFATable) Match(input []Symbol) ([]*Leaf, *MatchError) {
	st := 0
	var assigned []*Leaf
	if len(input) > 0 {
		assigned = make([]*Leaf, len(input))
	}
	for i, sym := range input {
		arc := t.step(st, sym)
		if arc.Next < 0 {
			return nil, &MatchError{Index: i, Got: sym, Expected: t.States[st].StepExpected}
		}
		assigned[i] = t.Leaves[arc.Leaf]
		st = arc.Next
	}
	if len(input) == 0 {
		if t.Nullable {
			return nil, nil
		}
		return nil, &MatchError{Index: 0, Premature: true, Expected: t.States[0].EndExpected}
	}
	if !t.States[st].Accept {
		return nil, &MatchError{Index: len(input), Premature: true, Expected: t.States[st].EndExpected}
	}
	return assigned, nil
}

// step resolves one transition: named symbols through Syms, everything
// else through the wildcard bucket for its namespace.
func (t *DFATable) step(st int, sym Symbol) DFAArc {
	for i, s := range t.Syms {
		if s == sym {
			return t.States[st].Named[i]
		}
	}
	mask := 0
	for i, w := range t.Wilds {
		if w.Wildcard.Admits(sym.Space) {
			mask |= 1 << i
		}
	}
	return t.States[st].Buckets[mask]
}
