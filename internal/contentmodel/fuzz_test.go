package contentmodel

import (
	"testing"
)

// fuzzAlphabet is the symbol space fuzz inputs index into: plain names,
// namespaced names that wildcards may admit, and a foreign name.
var fuzzAlphabet = []Symbol{
	{Local: "a"}, {Local: "b"}, {Local: "c"}, {Local: "d"},
	{Space: "urn:ext", Local: "x"},
	{Space: "urn:tns", Local: "y"},
	{Space: "urn:zzz", Local: "stranger"},
}

// fuzzCursor decodes a byte stream into a particle tree and a symbol
// sequence. Every byte stream decodes to something; depth and width are
// bounded so position counts stay small.
type fuzzCursor struct {
	data []byte
	off  int
}

func (c *fuzzCursor) next() byte {
	if c.off >= len(c.data) {
		return 0
	}
	b := c.data[c.off]
	c.off++
	return b
}

func (c *fuzzCursor) particle(depth int) *Particle {
	op := c.next()
	if depth >= 4 {
		op %= 3 // leaves only
	}
	min := int(c.next() % 3)
	max := min + int(c.next()%3)
	if c.next()%5 == 0 {
		max = Unbounded
	}
	if max != Unbounded && max == 0 {
		max = 1
	}
	switch op % 7 {
	case 0, 1: // named leaf
		s := fuzzAlphabet[int(c.next())%4]
		return NewElementLeaf(min, max, s, s.Local)
	case 2: // wildcard leaf
		switch c.next() % 3 {
		case 0:
			return &Particle{Min: min, Max: max, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildAny}, Data: "any"}}
		case 1:
			return &Particle{Min: min, Max: max, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildOther, TargetNS: "urn:tns"}, Data: "other"}}
		default:
			return &Particle{Min: min, Max: max, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildList, Namespaces: []string{"urn:ext", "urn:tns"}}, Data: "list"}}
		}
	case 3, 4: // sequence
		n := 1 + int(c.next()%3)
		kids := make([]*Particle, n)
		for i := range kids {
			kids[i] = c.particle(depth + 1)
		}
		return NewSequence(min, max, kids...)
	case 5: // choice
		n := 1 + int(c.next()%3)
		kids := make([]*Particle, n)
		for i := range kids {
			kids[i] = c.particle(depth + 1)
		}
		return NewChoice(min, max, kids...)
	default: // all group (compiler restricts occurs)
		n := 1 + int(c.next()%2)
		kids := make([]*Particle, n)
		for i := range kids {
			s := fuzzAlphabet[int(c.next())%4]
			kids[i] = NewElementLeaf(int(c.next()%2), 1, s, s.Local)
		}
		return NewAll(1, 1, kids...)
	}
}

// FuzzDFAContentModel decodes a random particle grammar plus a symbol
// sequence and checks the lazy DFA and the NFA stepper agree on every
// observable: per-step leaf assignment, error step, and error message.
// Odd-length inputs run with a tiny state budget to exercise the mid-run
// NFA fallback path.
func FuzzDFAContentModel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 1, 2, 3})
	f.Add([]byte{3, 1, 2, 1, 0, 0, 1, 0, 2, 1, 0, 1, 2, 3, 0, 1})
	f.Add([]byte{5, 0, 2, 1, 3, 2, 1, 0, 2, 2, 0, 4, 5, 6, 0, 1, 2})
	f.Add([]byte{6, 1, 1, 1, 0, 1, 1, 0, 3, 2, 1, 0})
	f.Add([]byte{2, 0, 1, 1, 1, 4, 5, 6, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			return
		}
		c := &fuzzCursor{data: data}
		p := c.particle(0)
		g, err := CompileGlushkov(p)
		if err != nil {
			return // counted model too large etc. — not this fuzzer's target
		}
		budget := 0
		if len(data)%2 == 1 {
			budget = 2
		}
		if !g.EnableDFA(NewInterner(), budget) {
			return // UPA-violating or wildcard-heavy grammar: NFA-only
		}
		var seq []Symbol
		for c.off < len(c.data) && len(seq) < 64 {
			seq = append(seq, fuzzAlphabet[int(c.next())%len(fuzzAlphabet)])
		}
		// Two passes so memoized transitions are checked too.
		for pass := 0; pass < 2; pass++ {
			dr, nr := g.Start(), g.StartNFA()
			errored := false
			for i, s := range seq {
				dl, de := dr.Step(s)
				nl, ne := nr.Step(s)
				if (de == nil) != (ne == nil) {
					t.Fatalf("step %d (%v): dfa err=%v nfa err=%v", i, s, de, ne)
				}
				if de != nil {
					if de.Error() != ne.Error() || de.Index != ne.Index {
						t.Fatalf("step %d: error diverged:\n  dfa: %v\n  nfa: %v", i, de, ne)
					}
					errored = true
					break
				}
				if dl != nl {
					t.Fatalf("step %d (%v): leaf diverged: %q vs %q", i, s, dl.Data, nl.Data)
				}
			}
			if errored {
				continue
			}
			de, ne := dr.End(), nr.End()
			if (de == nil) != (ne == nil) {
				t.Fatalf("end: dfa err=%v nfa err=%v", de, ne)
			}
			if de != nil && de.Error() != ne.Error() {
				t.Fatalf("end error diverged:\n  dfa: %v\n  nfa: %v", de, ne)
			}
		}
	})
}
