package contentmodel

import (
	"fmt"
	"reflect"
	"testing"
)

// exportModels are representative content-model shapes: repetition,
// choice, optionality, substitution-name leaves, all-groups, wildcards.
func exportModels() []struct {
	name     string
	particle *Particle
	alphabet []Symbol
} {
	sub := &Particle{Min: 1, Max: 1, Leaf: &Leaf{Names: []Symbol{{Local: "head"}, {Local: "member"}}}}
	wild := &Particle{Min: 0, Max: Unbounded, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildOther, TargetNS: "urn:t"}}}
	return []struct {
		name     string
		particle *Particle
		alphabet []Symbol
	}{
		{
			name:     "items-star",
			particle: NewSequence(1, 1, NewElementLeaf(0, Unbounded, Symbol{Local: "item"}, "item")),
			alphabet: []Symbol{{Local: "item"}, {Local: "other"}},
		},
		{
			name: "seq-opt-choice",
			particle: NewSequence(1, 1,
				NewElementLeaf(1, 1, Symbol{Local: "a"}, "a"),
				NewElementLeaf(0, 1, Symbol{Local: "b"}, "b"),
				NewChoice(1, 1,
					NewElementLeaf(1, 1, Symbol{Local: "c"}, "c"),
					NewElementLeaf(1, 2, Symbol{Local: "d"}, "d"),
				),
			),
			alphabet: []Symbol{{Local: "a"}, {Local: "b"}, {Local: "c"}, {Local: "d"}},
		},
		{
			name:     "substitution-head",
			particle: NewSequence(1, 1, sub, NewElementLeaf(0, 1, Symbol{Local: "tail"}, "tail")),
			alphabet: []Symbol{{Local: "head"}, {Local: "member"}, {Local: "tail"}},
		},
		{
			name: "all-group",
			particle: NewAll(1, 1,
				NewElementLeaf(1, 1, Symbol{Local: "x"}, "x"),
				NewElementLeaf(1, 1, Symbol{Local: "y"}, "y"),
				NewElementLeaf(0, 1, Symbol{Local: "z"}, "z"),
			),
			alphabet: []Symbol{{Local: "x"}, {Local: "y"}, {Local: "z"}},
		},
		{
			name: "wildcard-tail",
			particle: NewSequence(1, 1,
				NewElementLeaf(1, 1, Symbol{Space: "urn:t", Local: "lead"}, "lead"),
				wild,
			),
			alphabet: []Symbol{
				{Space: "urn:t", Local: "lead"},
				{Space: "urn:x", Local: "foreign"},
				{Space: "urn:y", Local: "foreign"},
				{Local: "unqualified"},
			},
		},
	}
}

// enumSequences yields every sequence over the alphabet up to maxLen.
func enumSequences(alphabet []Symbol, maxLen int) [][]Symbol {
	out := [][]Symbol{nil}
	prev := [][]Symbol{nil}
	for l := 1; l <= maxLen; l++ {
		var next [][]Symbol
		for _, p := range prev {
			for _, s := range alphabet {
				seq := append(append([]Symbol{}, p...), s)
				next = append(next, seq)
			}
		}
		out = append(out, next...)
		prev = next
	}
	return out
}

func matchErrString(e *MatchError) string {
	if e == nil {
		return "<accept>"
	}
	return fmt.Sprintf("index=%d premature=%v msg=%q", e.Index, e.Premature, e.Error())
}

// TestExportedDFAMatchesStepper pins the eager export against both the NFA
// stepper and the lazy DFA: verdicts, leaf attribution, and MatchError
// values (index, premature flag, full message text) must be identical for
// every sequence up to length 4 over each model's extended alphabet.
func TestExportedDFAMatchesStepper(t *testing.T) {
	for _, m := range exportModels() {
		t.Run(m.name, func(t *testing.T) {
			nfa, err := CompileGlushkov(m.particle)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := CompileGlushkov(m.particle)
			if err != nil {
				t.Fatal(err)
			}
			if !lazy.EnableDFA(NewInterner(), 0) {
				t.Fatal("EnableDFA refused a model the exporter must handle")
			}
			table, err := nfa.ExportDFA(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, seq := range enumSequences(m.alphabet, 4) {
				gotLeaves, gotErr := table.Match(seq)
				wantLeaves, wantErr := nfa.Match(seq)
				lazyLeaves, lazyErr := lazy.Match(seq)
				if matchErrString(gotErr) != matchErrString(wantErr) {
					t.Fatalf("seq %v: exported %s, NFA %s", seq, matchErrString(gotErr), matchErrString(wantErr))
				}
				if matchErrString(gotErr) != matchErrString(lazyErr) {
					t.Fatalf("seq %v: exported %s, lazy DFA %s", seq, matchErrString(gotErr), matchErrString(lazyErr))
				}
				if gotErr != nil {
					if !reflect.DeepEqual(gotErr.Expected, wantErr.Expected) {
						t.Fatalf("seq %v: expected lists differ: %v vs %v", seq, gotErr.Expected, wantErr.Expected)
					}
					continue
				}
				for i := range seq {
					if gotLeaves[i] != wantLeaves[i] {
						t.Fatalf("seq %v: leaf attribution differs at %d: %v vs %v", seq, i, gotLeaves[i], wantLeaves[i])
					}
					if gotLeaves[i] != lazyLeaves[i] {
						t.Fatalf("seq %v: leaf attribution differs from lazy DFA at %d", seq, i)
					}
				}
			}
		})
	}
}

// TestExportDFARefusals pins the refusal conditions shared with EnableDFA.
func TestExportDFARefusals(t *testing.T) {
	// UPA violation: two distinct particles compete for "a".
	upa := NewSequence(1, 1,
		NewElementLeaf(0, 1, Symbol{Local: "a"}, "a1"),
		NewElementLeaf(1, 1, Symbol{Local: "a"}, "a2"),
	)
	g, err := CompileGlushkov(upa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ExportDFA(0); err == nil {
		t.Fatal("ExportDFA accepted a UPA-violating model")
	}
	if g.EnableDFA(NewInterner(), 0) {
		t.Fatal("EnableDFA accepted a UPA-violating model (refusals out of sync)")
	}

	// Budget exhaustion: a counted model with many states.
	big := NewSequence(1, 1, NewElementLeaf(10, 40, Symbol{Local: "e"}, "e"))
	g2, err := CompileGlushkov(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.ExportDFA(3); err == nil {
		t.Fatal("ExportDFA ignored the state budget")
	}
	if _, err := g2.ExportDFA(0); err != nil {
		t.Fatalf("default budget should cover the counted model: %v", err)
	}
}
