package contentmodel

import (
	"errors"
	"sort"
	"strconv"
	"strings"
)

// ErrInclusionBudget is returned by Includes when the product construction
// exceeds its state budget before reaching a verdict. Callers should treat
// the relation as unknown and fall back to a conservative answer.
var ErrInclusionBudget = errors.New("contentmodel: inclusion check exceeded its state budget")

// defaultInclusionBudget bounds the number of visited product states. Real
// schema content models determinize to a handful of states; the budget
// exists for adversarial choice nests, not for normal schemas.
const defaultInclusionBudget = 1 << 14

// probeLocal is the local name used for wildcard probe symbols. It is not
// a valid NCName, so it can never collide with a concrete element name
// declared by any schema; a probe symbol is accepted only by wildcard
// leaves whose namespace predicate admits the probe's namespace.
const probeLocal = "\x01wildcard-probe"

// probeNamespace stands for "every namespace neither automaton mentions".
// All such namespaces are indistinguishable to the leaf predicates we
// compile (exact names, ##any, ##other, namespace lists), so one
// representative is enough to make the finite test alphabet complete.
const probeNamespace = "\x01urn:contentmodel:fresh-namespace"

// Includes reports whether the language of sup contains the language of
// sub: every child-element sequence sub accepts, sup accepts too. This is
// the decision procedure behind schema-evolution compatibility — "does the
// new content model still admit everything the old one did" is
// Includes(new, old).
//
// The check runs a product subset construction over the two position
// automata. The alphabet of the product is finite even though wildcards
// admit infinitely many names: leaf predicates only distinguish exact
// names and namespace membership, so the concrete names of both automata
// plus one probe symbol per mentioned namespace (and one for a fresh,
// unmentioned namespace) cover every equivalence class of symbols.
//
// stateLimit bounds the visited product states (<= 0 selects the default,
// 16384). On overflow the verdict is unknown and ErrInclusionBudget is
// returned.
func Includes(sup, sub *Glushkov, stateLimit int) (bool, error) {
	if stateLimit <= 0 {
		stateLimit = defaultInclusionBudget
	}
	// The empty sequence first: nullability is acceptance at the start
	// state, which the BFS below never revisits.
	if sub.nullable && !sup.nullable {
		return false, nil
	}
	alphabet := testAlphabet(sup, sub)

	// A determinized state is the set of positions matched by the last
	// consumed symbol (nil at the start). Every Glushkov position is
	// coaccessible — it came from a leaf of the expression, so some word
	// through it reaches acceptance — which is what makes "sub alive, sup
	// dead" an immediate non-inclusion witness below.
	type state struct {
		sub, sup []int
		start    bool
	}
	startState := state{start: true}
	seen := map[string]bool{key(startState.sub, startState.sup, true): true}
	queue := []state{startState}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, sym := range alphabet {
			subNext := stepSet(sub, cur.sub, cur.start, sym)
			if len(subNext) == 0 {
				continue // sub rejects every word through here
			}
			supNext := stepSet(sup, cur.sup, cur.start, sym)
			if len(supNext) == 0 {
				// sub can still reach acceptance (coaccessibility), sup is
				// dead: some word is in L(sub) \ L(sup).
				return false, nil
			}
			if acceptSet(sub, subNext) && !acceptSet(sup, supNext) {
				return false, nil
			}
			k := key(subNext, supNext, false)
			if seen[k] {
				continue
			}
			if len(seen) >= stateLimit {
				return false, ErrInclusionBudget
			}
			seen[k] = true
			queue = append(queue, state{sub: subNext, sup: supNext})
		}
	}
	return true, nil
}

// Equivalent reports whether two automata accept exactly the same
// language, under the same budget semantics as Includes.
func Equivalent(a, b *Glushkov, stateLimit int) (bool, error) {
	ab, err := Includes(a, b, stateLimit)
	if err != nil || !ab {
		return false, err
	}
	return Includes(b, a, stateLimit)
}

// testAlphabet derives the finite symbol set that distinguishes every pair
// of determinized states of the given automata: all concrete names, plus
// one probe per namespace any leaf mentions (wildcard target namespaces
// and namespace lists included, and the empty namespace for ##local),
// plus one probe in a namespace nobody mentions.
func testAlphabet(gs ...*Glushkov) []Symbol {
	names := map[Symbol]bool{}
	namespaces := map[string]bool{"": true, probeNamespace: true}
	for _, g := range gs {
		for _, l := range g.leaves {
			for _, n := range l.Names {
				names[n] = true
				namespaces[n.Space] = true
			}
			if w := l.Wildcard; w != nil {
				namespaces[w.TargetNS] = true
				for _, ns := range w.Namespaces {
					namespaces[ns] = true
				}
			}
		}
	}
	out := make([]Symbol, 0, len(names)+len(namespaces))
	for n := range names {
		out = append(out, n)
	}
	for ns := range namespaces {
		out = append(out, Symbol{Space: ns, Local: probeLocal})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Space != out[j].Space {
			return out[i].Space < out[j].Space
		}
		return out[i].Local < out[j].Local
	})
	return out
}

// stepSet advances a determinized state by one symbol: the positions
// reachable from cur (first positions at the start) whose leaves accept
// sym, deduplicated and sorted for canonical keying.
func stepSet(g *Glushkov, cur []int, atStart bool, sym Symbol) []int {
	var next []int
	seen := map[int]bool{}
	add := func(q int) {
		if !seen[q] && g.leaves[q].Accepts(sym) {
			seen[q] = true
			next = append(next, q)
		}
	}
	if atStart {
		for _, q := range g.first {
			add(q)
		}
	} else {
		for _, p := range cur {
			for _, q := range g.follow[p] {
				add(q)
			}
		}
	}
	sort.Ints(next)
	return next
}

// acceptSet reports whether a determinized (non-start) state is accepting:
// some matched position is a last position of the expression.
func acceptSet(g *Glushkov, set []int) bool {
	for _, p := range set {
		if g.last[p] {
			return true
		}
	}
	return false
}

// key canonically encodes a product state.
func key(sub, sup []int, start bool) string {
	var b strings.Builder
	if start {
		b.WriteByte('S')
	}
	for _, p := range sub {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, p := range sup {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(',')
	}
	return b.String()
}
