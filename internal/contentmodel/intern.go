package contentmodel

import (
	"sync"
	"sync/atomic"
)

// Interner assigns dense int32 IDs to Symbols so automaton transitions can
// index arrays instead of comparing namespace/local-name pairs. One Interner
// is shared by every content model compiled from the same schema, so a
// symbol has the same ID in all of them.
//
// Lookups are lock-free: the symbol table is an immutable map republished
// (copy-on-write) under a mutex on each insertion. Interning happens at
// compile time, lookups at validation time, so the write path is cold.
type Interner struct {
	mu sync.Mutex
	m  atomic.Value // map[Symbol]int32, copy-on-write
}

// NewInterner returns an empty interning table.
func NewInterner() *Interner {
	t := &Interner{}
	t.m.Store(map[Symbol]int32{})
	return t
}

// Lookup returns the ID previously assigned to s, if any. It never
// allocates and is safe for concurrent use with Intern.
func (t *Interner) Lookup(s Symbol) (int32, bool) {
	id, ok := t.m.Load().(map[Symbol]int32)[s]
	return id, ok
}

// Intern returns the ID for s, assigning the next dense ID on first sight.
// IDs are stable for the lifetime of the table.
func (t *Interner) Intern(s Symbol) int32 {
	if id, ok := t.Lookup(s); ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.m.Load().(map[Symbol]int32)
	if id, ok := old[s]; ok {
		return id
	}
	next := make(map[Symbol]int32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	id := int32(len(old))
	next[s] = id
	t.m.Store(next)
	return id
}

// Len reports how many symbols have been interned.
func (t *Interner) Len() int {
	return len(t.m.Load().(map[Symbol]int32))
}
