package contentmodel

import (
	"strings"
	"testing"
)

func TestCompilePicksGlushkov(t *testing.T) {
	m := Compile(purchaseOrderModel())
	if _, ok := m.(*Glushkov); !ok {
		t.Errorf("expected Glushkov for a small model, got %T", m)
	}
}

func TestUPAWildcardOverlaps(t *testing.T) {
	// element a | any : the wildcard can also match 'a' -> violation.
	p := NewChoice(1, 1,
		el("a", 1, 1),
		&Particle{Min: 1, Max: 1, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildAny}}},
	)
	g, err := CompileGlushkov(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.CheckUPA() == nil {
		t.Error("wildcard/element overlap not detected")
	}
	// ##other wildcard vs a no-namespace element: no overlap.
	q := NewChoice(1, 1,
		el("a", 1, 1),
		&Particle{Min: 1, Max: 1, Leaf: &Leaf{Wildcard: &Wildcard{Kind: WildOther, TargetNS: "urn:t"}}},
	)
	g2, _ := CompileGlushkov(q)
	if err := g2.CheckUPA(); err != nil {
		t.Errorf("##other vs local element flagged: %v", err)
	}
}

func TestPrematureEndError(t *testing.T) {
	g, _ := CompileGlushkov(purchaseOrderModel())
	_, err := g.Match(nil)
	if err == nil || !err.Premature {
		t.Fatalf("empty input: %+v", err)
	}
	if !strings.Contains(err.Error(), "shipTo") {
		t.Errorf("expected list should name shipTo: %v", err)
	}
	// The interpreter agrees.
	_, ierr := NewInterp(purchaseOrderModel()).Match(nil)
	if ierr == nil {
		t.Fatal("interp should reject empty input")
	}
}

func TestMatchErrorStringForms(t *testing.T) {
	e1 := &MatchError{Index: 2, Got: Symbol{Local: "x"}, Expected: []string{"a", "b"}}
	if !strings.Contains(e1.Error(), "unexpected element x") || !strings.Contains(e1.Error(), "a, b") {
		t.Errorf("mismatch form: %v", e1)
	}
	e2 := &MatchError{Index: 3, Premature: true, Expected: []string{"c"}}
	if !strings.Contains(e2.Error(), "content ended") {
		t.Errorf("premature form: %v", e2)
	}
	e3 := &MatchError{Index: 0, Premature: true}
	if !strings.Contains(e3.Error(), "nothing") {
		t.Errorf("empty expected form: %v", e3)
	}
}

func TestSymbolString(t *testing.T) {
	if (Symbol{Local: "a"}).String() != "a" {
		t.Error("plain symbol")
	}
	if (Symbol{Space: "urn:x", Local: "a"}).String() != "{urn:x}a" {
		t.Error("qualified symbol")
	}
}

func TestNamespacedMatching(t *testing.T) {
	p := NewSequence(1, 1,
		NewElementLeaf(1, 1, Symbol{Space: "urn:a", Local: "x"}, nil))
	for name, m := range matchers(t, p) {
		if _, err := m.Match([]Symbol{{Space: "urn:a", Local: "x"}}); err != nil {
			t.Errorf("%s: qualified match: %v", name, err)
		}
		if _, err := m.Match([]Symbol{{Local: "x"}}); err == nil {
			t.Errorf("%s: unqualified symbol should not match a qualified leaf", name)
		}
	}
}

func TestGroupKindString(t *testing.T) {
	if Sequence.String() != "sequence" || Choice.String() != "choice" || All.String() != "all" {
		t.Error("GroupKind names")
	}
}

func TestNumPositions(t *testing.T) {
	g, _ := CompileGlushkov(purchaseOrderModel())
	// shipTo, billTo, comment, items = 4 positions.
	if g.NumPositions() != 4 {
		t.Errorf("positions: %d", g.NumPositions())
	}
	// Bounded counts expand: a{2,4} has 4 positions.
	g2, _ := CompileGlushkov(NewSequence(1, 1, el("a", 2, 4)))
	if g2.NumPositions() != 4 {
		t.Errorf("expanded positions: %d", g2.NumPositions())
	}
}

func TestZeroMaxParticle(t *testing.T) {
	// maxOccurs=0 contributes nothing.
	p := NewSequence(1, 1, el("gone", 0, 0), el("kept", 1, 1))
	for name, m := range matchers(t, p) {
		if _, err := m.Match(syms("kept")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := m.Match(syms("gone kept")); err == nil {
			t.Errorf("%s: maxOccurs=0 element matched", name)
		}
	}
}
