// Package benchjson parses `go test -bench` text output into a
// machine-readable form so benchmark results can be checked in and
// compared across PRs (the BENCH_PR*.json trajectory files).
//
// The parser understands the standard benchmark result line:
//
//	BenchmarkE7_CachedValidate/warm-cached-8   68612   17146 ns/op   6713 B/op   253 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines, which are captured as run
// metadata. Anything else (PASS, ok, coverage) is ignored.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	// Name is the full benchmark name with the -P procs suffix stripped,
	// e.g. "BenchmarkE10_ContentModelStep/po-items-1000/dfa".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when the name carries none).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem;
	// they are -1 when the line carried no memory columns.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra holds every other value/unit pair on the line — MB/s from
	// b.SetBytes and custom b.ReportMetric units (the E17 cluster legs
	// report p50-ns/p90-ns/p99-ns latency quantiles this way).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is a parsed benchmark session: the environment header plus every
// result line, in input order.
type Run struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// CPU is the model string from the `cpu:` header line.
	CPU string `json:"cpu,omitempty"`
	// NumCPU and Gomaxprocs describe the machine the session ran on;
	// they are stamped by StampHost (scaling numbers — the E15 parallel
	// speedups especially — are meaningless without them).
	NumCPU     int      `json:"num_cpu,omitempty"`
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Results    []Result `json:"results"`
}

// StampHost records the current machine's core counts on the run. Call it
// only in the process (or pipeline) that actually ran the benchmarks.
func (run *Run) StampHost() {
	run.NumCPU = runtime.NumCPU()
	run.Gomaxprocs = runtime.GOMAXPROCS(0)
}

// Parse reads `go test -bench` output and collects header metadata and
// result lines. Lines that are not benchmark results are skipped; a line
// that looks like a result but does not parse is an error.
func Parse(r io.Reader) (*Run, error) {
	run := &Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			run.Results = append(run.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return run, nil
}

func parseResult(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, fmt.Errorf("not a result line: %q", line)
	}
	res := Result{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			res.Procs = p
			name = name[:i]
		}
	}
	res.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	res.Iterations = iters
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("ns/op in %q: %w", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("allocs/op in %q: %w", line, err)
			}
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, fmt.Errorf("%s in %q: %w", unit, line, err)
			}
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = f
		}
	}
	return res, nil
}

// Write renders the run as indented JSON with a trailing newline (so the
// checked-in file diffs cleanly).
func (run *Run) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}
