package benchjson

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE7_CachedValidate/warm-cached-8         	   68612	     17146 ns/op	    6713 B/op	     253 allocs/op
BenchmarkE10_ContentModelStep/po-items-1000/dfa-8	  160000	      7442 ns/op	       0 B/op	       0 allocs/op
BenchmarkE3_GlushkovConstruction/k8w4            	   10000	      5000 ns/op
BenchmarkE17_ClusterServe/validate/nodes=3-8     	    2000	    901234 ns/op	  52.11 MB/s	    812345 p50-ns	   2101234 p99-ns
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	run, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || run.Pkg != "repro" {
		t.Fatalf("bad header: %+v", run)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("bad cpu: %q", run.CPU)
	}
	if len(run.Results) != 4 {
		t.Fatalf("want 4 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.Name != "BenchmarkE7_CachedValidate/warm-cached" || r.Procs != 8 ||
		r.Iterations != 68612 || r.NsPerOp != 17146 || r.BytesPerOp != 6713 || r.AllocsPerOp != 253 {
		t.Fatalf("result 0 mismatch: %+v", r)
	}
	if r.Extra != nil {
		t.Fatalf("result 0 has unexpected extra metrics: %+v", r.Extra)
	}
	// No -P suffix and no -benchmem columns.
	r = run.Results[2]
	if r.Name != "BenchmarkE3_GlushkovConstruction/k8w4" || r.Procs != 1 ||
		r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Fatalf("result 2 mismatch: %+v", r)
	}
	// MB/s and b.ReportMetric units land in Extra.
	r = run.Results[3]
	if r.Extra["MB/s"] != 52.11 || r.Extra["p50-ns"] != 812345 || r.Extra["p99-ns"] != 2101234 {
		t.Fatalf("result 3 extra metrics mismatch: %+v", r.Extra)
	}
}

func TestParseRejectsMangledResult(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\n"))
	if err == nil {
		t.Fatal("expected error for mangled iterations")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	run, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatal("output must end in newline")
	}
	var back Run
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(run.Results) || !reflect.DeepEqual(back.Results, run.Results) {
		t.Fatalf("round trip mismatch: %+v", back.Results)
	}
}

func TestStampHost(t *testing.T) {
	run := &Run{}
	run.StampHost()
	if run.NumCPU < 1 || run.Gomaxprocs < 1 {
		t.Fatalf("StampHost left zero core counts: %+v", run)
	}
	var buf bytes.Buffer
	if err := run.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"num_cpu"`, `"gomaxprocs"`} {
		if !bytes.Contains(buf.Bytes(), []byte(key)) {
			t.Errorf("serialized run missing %s: %s", key, buf.String())
		}
	}
}
