package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestReadFileRegular(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	want := bytes.Repeat([]byte("<a>hello</a>\n"), 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	data, release, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("mapped contents differ: %d vs %d bytes", len(data), len(want))
	}
	release()
}

func TestReadFileEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	data, release, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("empty file read %d bytes", len(data))
	}
	release()
}

func TestReadFileMissing(t *testing.T) {
	_, release, err := ReadFile(filepath.Join(t.TempDir(), "nope"))
	if err == nil {
		t.Fatal("want error for missing file")
	}
	if release == nil {
		t.Fatal("release must be non-nil even on error")
	}
	release()
}
