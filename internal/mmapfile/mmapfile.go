// Package mmapfile reads whole files for zero-copy parsing. On unix
// platforms regular files are memory-mapped read-only, so the kernel
// pages bytes in on demand and large documents never occupy heap twice
// (once in the page cache, once in a Go buffer); everywhere else — and
// for empty or irregular files — it degrades to os.ReadFile.
//
// The returned bytes MUST NOT be written to (mapped pages are
// PROT_READ; a write faults) and MUST NOT be referenced after release
// is called. Callers that hand slices of the data to longer-lived
// structures must copy first or delay release accordingly.
package mmapfile

// ReadFile returns the file's contents and a release function that
// must be called exactly once when the bytes are no longer referenced.
// release is always non-nil, even on error.
func ReadFile(path string) (data []byte, release func(), err error) {
	return readFile(path)
}
