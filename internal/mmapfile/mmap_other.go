//go:build !unix

package mmapfile

import "os"

func readFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	return data, func() {}, err
}
