//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

func readFile(path string) ([]byte, func(), error) {
	noop := func() {}
	f, err := os.Open(path)
	if err != nil {
		return nil, noop, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, noop, err
	}
	// Empty files cannot be mapped (zero-length mmap is an EINVAL) and
	// irregular ones (pipes, devices) have no stable size; both take the
	// plain read path. So does anything the kernel refuses to map.
	if !fi.Mode().IsRegular() || fi.Size() == 0 || int64(int(fi.Size())) != fi.Size() {
		data, err := os.ReadFile(path)
		return data, noop, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, noop, err
	}
	return data, func() { syscall.Munmap(data) }, nil //nolint:errcheck
}
