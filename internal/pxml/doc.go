// Package pxml implements Parametric XML (the paper's §4): Go source
// files may contain literal XML constructors with $variable$ splices; the
// preprocessor validates every constructor against the schema *at
// preprocess time* and rewrites it into calls against the generated V-DOM
// bindings (paper Fig. 9's pipeline, Fig. 10 -> Fig. 11 rewriting). No
// test runs are needed to know the emitted documents are valid.
//
// # Role in the pipeline
//
// pxml is the last stage of the static pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): it reuses the
// resolved schema (package xsd), its compiled content models (package
// contentmodel, via ComplexType.Matcher) and the codegen naming rules to
// check each literal constructor exactly the way the runtime validator
// would check the finished document — just before the program ever runs.
//
// # Concurrency
//
// A Preprocessor holds no mutable state beyond its schema reference; the
// per-source rewrite state lives in the Rewrite call. Since
// ComplexType.Matcher is once-guarded, multiple goroutines may
// preprocess different sources against one shared schema concurrently —
// useful when a build fans out over many .pxml files — but a single
// Rewrite call processes its source sequentially.
package pxml
