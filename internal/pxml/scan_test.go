package pxml

import (
	"strings"
	"testing"
)

func TestScannerIgnoresStringsAndComments(t *testing.T) {
	src := "package p\n" +
		"// a comment with x = <name>not xml</name>\n" +
		"/* block with y = <shipTo>also not</shipTo> */\n" +
		"var a = \"s = <name>quoted</name>\"\n" +
		"var b = `raw = <name>raw</name>`\n" +
		"func f() { c := 'x' }\n"
	res, err := scanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.stmts) != 0 {
		t.Errorf("constructors found inside strings/comments: %+v", res.stmts)
	}
}

func TestScannerDirectives(t *testing.T) {
	src := "package p\n//pxml:package pogen\n//pxml:doc myDoc\n"
	res, err := scanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.directives["package"] != "pogen" || res.directives["doc"] != "myDoc" {
		t.Errorf("directives: %v", res.directives)
	}
}

func TestScannerVarTypes(t *testing.T) {
	src := `package p

var top *pogen.ShipToElement

func f(a string, n *pogen.NameElement, i int) {
	var local *pogen.CommentElement
	_ = local
}
`
	res, err := scanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"top":   "*pogen.ShipToElement",
		"a":     "string",
		"n":     "*pogen.NameElement",
		"i":     "int",
		"local": "*pogen.CommentElement",
	}
	for name, typ := range want {
		if res.varTypes[name] != typ {
			t.Errorf("var %s: %q, want %q", name, res.varTypes[name], typ)
		}
	}
}

func TestScannerCapturesAssignmentForms(t *testing.T) {
	src := "package p\nfunc f() {\n\ta := <x>1</x>;\n\tb = <y>2</y>\n}\n"
	res, err := scanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.stmts) != 2 {
		t.Fatalf("stmts: %d", len(res.stmts))
	}
	if res.stmts[0].op != ":=" || res.stmts[0].lhs != "a" || res.stmts[0].root.name != "x" {
		t.Errorf("first: %+v", res.stmts[0])
	}
	if res.stmts[1].op != "=" || res.stmts[1].lhs != "b" {
		t.Errorf("second: %+v", res.stmts[1])
	}
	// := declarations are tracked for later splices.
	if res.varTypes["a"] != "pxml:x" {
		t.Errorf("inferred type: %q", res.varTypes["a"])
	}
}

func TestFragmentParserErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{`<a><b></a>`, "does not match"},
		{`<a`, "unterminated start tag"},
		{`<a x=5/>`, "quoted value"},
		{`<a x="$v$extra"/>`, "mixes a splice"},
		{`<a>$unclosed</a>`, "unterminated $splice$"},
		{`<a>&unknown;</a>`, "unsupported entity"},
		{`<a>$ $</a>`, "empty $splice$"},
	}
	for _, c := range cases {
		_, _, err := parseConstructor(c.src, 0, 1)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.wantErr)
		}
	}
}

func TestFragmentParserFeatures(t *testing.T) {
	el, end, err := parseConstructor(`<a k="v&amp;w" s=$expr$><!-- skip -->text&lt;$x$<b/></a>tail`, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if el.name != "a" || len(el.attrs) != 2 {
		t.Fatalf("element: %+v", el)
	}
	if *el.attrs[0].lit != "v&w" {
		t.Errorf("entity in attr: %q", *el.attrs[0].lit)
	}
	if *el.attrs[1].splice != "expr" {
		t.Errorf("attr splice: %+v", el.attrs[1])
	}
	// children: text("text<"), splice(x), elem(b)
	if len(el.children) != 3 {
		t.Fatalf("children: %d", len(el.children))
	}
	if txt, ok := el.children[0].(*xtext); !ok || txt.s != "text<" {
		t.Errorf("text child: %+v", el.children[0])
	}
	if sp, ok := el.children[1].(*xsplice); !ok || sp.expr != "x" {
		t.Errorf("splice child: %+v", el.children[1])
	}
	if `tail` != `<a k="v&amp;w" s=$expr$><!-- skip -->text&lt;$x$<b/></a>tail`[end:] {
		t.Errorf("end offset wrong: %d", end)
	}
}

func TestErrorLineNumbers(t *testing.T) {
	src := "package p\n//pxml:package pogen\n//pxml:doc d\nfunc f(d *pogen.Document) {\n\tq := <quantity>200</quantity>;\n\t_ = q\n}\n"
	pp := mustPO(t)
	_, err := pp.Rewrite(src)
	if err == nil {
		t.Fatal("expected rejection")
	}
	pe, ok := err.(*Error)
	if !ok || pe.Line != 5 {
		t.Errorf("error should point at line 5: %v", err)
	}
}

func mustPO(t *testing.T) *Preprocessor {
	t.Helper()
	return poPP(t)
}
