package pxml

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/codegen"
	"repro/internal/contentmodel"
	"repro/internal/normalize"
	"repro/internal/xsd"
)

// Options configures the preprocessor.
type Options struct {
	// SchemaSource is the XML Schema the constructors are validated
	// against (the same source the bindings were generated from).
	SchemaSource string
	// Scheme must match the bindings' naming scheme.
	Scheme normalize.Scheme
	// Package is the Go package identifier of the generated bindings
	// (e.g. "pogen"); a //pxml:package directive overrides it.
	Package string
	// DocExpr is the expression of the *Document factory in scope (e.g.
	// "d"); a //pxml:doc directive overrides it.
	DocExpr string
}

// Preprocessor rewrites P-XML sources against one schema. It is the
// generated component of the paper's Fig. 9 pipeline (schema ->
// preprocessor -> V-DOM program).
type Preprocessor struct {
	opts  Options
	sch   *xsd.Schema
	norm  *normalize.Result
	names *codegen.Names
	// elemsByLocal indexes element declarations by local name for
	// constructor roots.
	elemsByLocal map[string][]*xsd.ElementDecl
	// declByGoType resolves "*pogen.NameElement" style var types.
	declByGoType map[string]*xsd.ElementDecl
}

// New builds a preprocessor for a schema.
func New(opts Options) (*Preprocessor, error) {
	sch, err := xsd.ParseString(opts.SchemaSource, nil)
	if err != nil {
		return nil, err
	}
	norm, err := normalize.Normalize(sch, opts.Scheme)
	if err != nil {
		return nil, err
	}
	names := codegen.AssignNames(norm)
	pp := &Preprocessor{
		opts:         opts,
		sch:          sch,
		norm:         norm,
		names:        names,
		elemsByLocal: map[string][]*xsd.ElementDecl{},
		declByGoType: map[string]*xsd.ElementDecl{},
	}
	for _, decl := range names.ElementsInOrder {
		pp.elemsByLocal[decl.Name.Local] = append(pp.elemsByLocal[decl.Name.Local], decl)
		pp.declByGoType[names.Elements[decl].GoType] = decl
	}
	return pp, nil
}

// Rewrite validates every XML constructor in src and replaces it with
// V-DOM construction code (Fig. 10 -> Fig. 11). The returned source uses
// only generated-bindings calls; its validity needs no test runs.
func (pp *Preprocessor) Rewrite(src string) (string, error) {
	scan, err := scanSource(src)
	if err != nil {
		return "", err
	}
	pkg := pp.opts.Package
	if v, ok := scan.directives["package"]; ok {
		pkg = v
	}
	docExpr := pp.opts.DocExpr
	if v, ok := scan.directives["doc"]; ok {
		docExpr = v
	}
	if pkg == "" || docExpr == "" {
		return "", &Error{Line: 1, Msg: "preprocessor needs the bindings package and document expression (//pxml:package, //pxml:doc)"}
	}
	var out strings.Builder
	last := 0
	for si := range scan.stmts {
		stmt := &scan.stmts[si]
		em := &emitter{pp: pp, pkg: pkg, doc: docExpr, vars: scan.varTypes, indent: stmt.indent, seq: &seqCounter{n: si * 100}}
		resultVar, err := em.element(stmt.root, nil)
		if err != nil {
			return "", err
		}
		out.WriteString(src[last:stmt.start])
		for i, line := range em.lines {
			if i > 0 {
				out.WriteString(stmt.indent)
			}
			out.WriteString(line)
			out.WriteString("\n")
		}
		out.WriteString(stmt.indent)
		fmt.Fprintf(&out, "%s %s %s", stmt.lhs, stmt.op, resultVar)
		last = stmt.end
	}
	out.WriteString(src[last:])
	return out.String(), nil
}

// seqCounter hands out temp variable suffixes.
type seqCounter struct{ n int }

func (s *seqCounter) next() int {
	s.n++
	return s.n
}

// emitter produces the replacement statements for one constructor.
type emitter struct {
	pp     *Preprocessor
	pkg    string
	doc    string
	vars   map[string]string
	indent string
	lines  []string
	seq    *seqCounter
}

func (em *emitter) emitf(format string, args ...any) {
	em.lines = append(em.lines, fmt.Sprintf(format, args...))
}

func (em *emitter) temp() string { return fmt.Sprintf("_pxml%d", em.seq.next()) }

func errAtLine(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// resolveRoot finds the element declaration for a constructor root.
func (em *emitter) resolveRoot(el *xelem) (*xsd.ElementDecl, error) {
	cands := em.pp.elemsByLocal[el.name]
	switch len(cands) {
	case 0:
		return nil, errAtLine(el.line, "element <%s> is not declared in the schema", el.name)
	case 1:
		return cands[0], nil
	default:
		// Ambiguous local element name: accept if all share one type.
		t := cands[0].Type
		for _, c := range cands[1:] {
			if c.Type != t {
				return nil, errAtLine(el.line, "element name <%s> is declared with different types in different contexts; P-XML cannot disambiguate it", el.name)
			}
		}
		return cands[0], nil
	}
}

// spliceDecl resolves a spliced variable to its element declaration, or
// nil when the splice is a plain (string) expression.
func (em *emitter) spliceDecl(expr string) *xsd.ElementDecl {
	typ, ok := em.vars[expr]
	if !ok {
		return nil
	}
	if local, ok := strings.CutPrefix(typ, "pxml:"); ok {
		cands := em.pp.elemsByLocal[local]
		if len(cands) > 0 {
			return cands[0]
		}
		return nil
	}
	goType := strings.TrimPrefix(typ, "*")
	if i := strings.IndexByte(goType, '.'); i >= 0 {
		goType = goType[i+1:]
	}
	return em.pp.declByGoType[goType]
}

// element emits code constructing el and returns the variable holding the
// resulting element wrapper. expectDecl, when non-nil, is the declaration
// the context requires (used to check splice/assignment compatibility).
func (em *emitter) element(el *xelem, expectDecl *xsd.ElementDecl) (string, error) {
	decl, err := em.resolveRoot(el)
	if err != nil {
		return "", err
	}
	if expectDecl != nil && decl != expectDecl {
		// Substitution-group members are fine; anything else is a
		// static validity error (already caught by the content model,
		// but double-check).
		ok := false
		for h := decl.SubstitutionHead; h != nil; h = h.SubstitutionHead {
			if h == expectDecl {
				ok = true
			}
		}
		if !ok && decl != expectDecl {
			return "", errAtLine(el.line, "element <%s> is not allowed here", el.name)
		}
	}
	if decl.Abstract {
		return "", errAtLine(el.line, "element <%s> is abstract and cannot be constructed", el.name)
	}
	en := em.pp.names.Elements[decl]
	switch t := decl.Type.(type) {
	case *xsd.SimpleType:
		if len(el.attrs) > 0 {
			return "", errAtLine(el.line, "element <%s> has a simple type and admits no attributes", el.name)
		}
		valueExpr, allLit, lit, err := em.textValue(el)
		if err != nil {
			return "", err
		}
		v := em.temp()
		if _, fallible := em.simpleCheck(t); fallible {
			if allLit {
				if verr := t.Validate(lit); verr != nil {
					return "", errAtLine(el.line, "content of <%s>: %v", el.name, verr)
				}
			}
			// Statically validated literals cannot fail; spliced
			// values keep the dynamic check (Must panics).
			em.emitf("%s := %s.Must%s(%s)", v, em.doc, strings.TrimPrefix(en.Create, "Create"), valueExpr)
		} else {
			em.emitf("%s := %s.%s(%s)", v, em.doc, en.Create, valueExpr)
		}
		return v, nil
	case *xsd.ComplexType:
		ctVar, err := em.complexValue(el, t)
		if err != nil {
			return "", err
		}
		v := em.temp()
		em.emitf("%s := %s.%s(%s)", v, em.doc, en.Create, ctVar)
		return v, nil
	}
	return "", errAtLine(el.line, "unsupported element type for <%s>", el.name)
}

// simpleCheck mirrors codegen's fallibility rule.
func (em *emitter) simpleCheck(st *xsd.SimpleType) (string, bool) {
	if name, ok := em.pp.norm.TypeName(st); ok {
		return name, true
	}
	if st.Builtin != nil {
		switch st.Builtin.Name {
		case "string", "normalizedString", "token", "anySimpleType":
			return "", false
		}
		return st.Builtin.Name, true
	}
	return "", false
}

// textValue concatenates the text/splice children into a Go string
// expression. It reports whether the value is a pure literal (and its
// text) so callers can validate it at preprocess time.
func (em *emitter) textValue(el *xelem) (expr string, allLit bool, lit string, err error) {
	var parts []string
	allLit = true
	var sb strings.Builder
	for _, c := range el.children {
		switch x := c.(type) {
		case *xtext:
			parts = append(parts, fmt.Sprintf("%q", x.s))
			sb.WriteString(x.s)
		case *xsplice:
			if d := em.spliceDecl(x.expr); d != nil {
				return "", false, "", errAtLine(x.line, "element variable $%s$ cannot appear in simple content", x.expr)
			}
			parts = append(parts, x.expr)
			allLit = false
		case *xelem:
			return "", false, "", errAtLine(x.line, "element <%s> is not allowed inside simple content", x.name)
		}
	}
	if len(parts) == 0 {
		return `""`, true, "", nil
	}
	return strings.Join(parts, " + "), allLit, sb.String(), nil
}

// complexValue emits construction of a complex type value and returns its
// variable.
func (em *emitter) complexValue(el *xelem, ct *xsd.ComplexType) (string, error) {
	tn := em.pp.names.Types[ct]
	api, err := em.pp.names.APIAttrsAndMembers(ct)
	if err != nil {
		return "", errAtLine(el.line, "%v", err)
	}
	var v string
	switch ct.Kind {
	case xsd.ContentSimple:
		valueExpr, allLit, lit, terr := em.textValue(el)
		if terr != nil {
			return "", terr
		}
		if allLit && ct.SimpleContentType != nil {
			if verr := ct.SimpleContentType.Validate(lit); verr != nil {
				return "", errAtLine(el.line, "content of <%s>: %v", el.name, verr)
			}
		}
		v = em.temp()
		errVar := em.temp()
		em.emitf("%s, %s := %s.%s(%s)", v, errVar, em.doc, tn.Create, valueExpr)
		em.emitf("if %s != nil {", errVar)
		em.emitf("\tpanic(%s) // unreachable for preprocessor-validated literals", errVar)
		em.emitf("}")
	case xsd.ContentMixed:
		v = em.temp()
		em.emitf("%s := %s.%s()", v, em.doc, tn.Create)
		if err := em.mixedChildren(el, ct, v); err != nil {
			return "", err
		}
	default: // element-only / empty
		var assigned map[int][]string
		assigned, err = em.elementChildren(el, ct, api)
		if err != nil {
			return "", err
		}
		var params []string
		for i := range api.Members {
			m := &api.Members[i]
			if !m.Repeated() && !m.Optional() {
				vals := assigned[i]
				if len(vals) != 1 {
					return "", errAtLine(el.line, "<%s> needs exactly one %s member", el.name, m.Field)
				}
				params = append(params, vals[0])
			}
		}
		v = em.temp()
		em.emitf("%s := %s.%s(%s)", v, em.doc, tn.Create, strings.Join(params, ", "))
		for i := range api.Members {
			m := &api.Members[i]
			switch {
			case m.Repeated():
				for _, val := range assigned[i] {
					em.emitf("%s.Add%s(%s)", v, m.Accessor, val)
				}
			case m.Optional():
				if vals := assigned[i]; len(vals) == 1 {
					em.emitf("%s.Set%s(%s)", v, m.Accessor, vals[0])
				}
			}
		}
	}
	// Attributes (statically validated when literal).
	for _, a := range el.attrs {
		am := findAttr(api.Attrs, a.name)
		if am == nil {
			return "", errAtLine(a.line, "attribute %q is not declared on <%s>", a.name, el.name)
		}
		var valExpr string
		if a.lit != nil {
			if verr := am.Use.Decl.Type.Validate(*a.lit); verr != nil {
				return "", errAtLine(a.line, "attribute %q: %v", a.name, verr)
			}
			if am.Use.Fixed != nil && *a.lit != *am.Use.Fixed {
				return "", errAtLine(a.line, "attribute %q must have the fixed value %q", a.name, *am.Use.Fixed)
			}
			valExpr = fmt.Sprintf("%q", *a.lit)
		} else {
			valExpr = *a.splice
		}
		errVar := em.temp()
		em.emitf("if %s := %s.Set%s(%s); %s != nil {", errVar, v, am.Accessor, valExpr, errVar)
		em.emitf("\tpanic(%s) // unreachable for preprocessor-validated literals", errVar)
		em.emitf("}")
	}
	// Required attributes must be present (the marshal-time check would
	// catch it, but P-XML's contract is static detection).
	for _, am := range api.Attrs {
		if !am.Use.Required {
			continue
		}
		found := false
		for _, a := range el.attrs {
			if a.name == am.Use.Decl.Name.Local {
				found = true
			}
		}
		if !found {
			return "", errAtLine(el.line, "required attribute %q is missing on <%s>", am.Use.Decl.Name.Local, el.name)
		}
	}
	return v, nil
}

// findAttr locates an attribute member by XML attribute name.
func findAttr(attrs []codegen.AttrMember, name string) *codegen.AttrMember {
	for i := range attrs {
		if attrs[i].Use.Decl.Name.Local == name {
			return &attrs[i]
		}
	}
	return nil
}

// elementChildren validates the child sequence against the content model
// and emits each child's construction, returning member index -> values.
func (em *emitter) elementChildren(el *xelem, ct *xsd.ComplexType, api *codegen.TypeAPI) (map[int][]string, error) {
	declToMember := em.memberIndex(api)
	var symbols []contentmodel.Symbol
	var nodes []xnode
	for _, c := range el.children {
		switch x := c.(type) {
		case *xtext:
			if strings.TrimSpace(x.s) != "" {
				return nil, errAtLine(el.line, "character data %q is not allowed in element-only content of <%s>", strings.TrimSpace(x.s), el.name)
			}
		case *xsplice:
			d := em.spliceDecl(x.expr)
			if d == nil {
				return nil, errAtLine(x.line, "$%s$ is not a declared V-DOM element variable; only element variables may be spliced into element content", x.expr)
			}
			symbols = append(symbols, contentmodel.Symbol{Space: d.Name.Space, Local: d.Name.Local})
			nodes = append(nodes, x)
		case *xelem:
			cands := em.pp.elemsByLocal[x.name]
			if len(cands) == 0 {
				return nil, errAtLine(x.line, "element <%s> is not declared in the schema", x.name)
			}
			symbols = append(symbols, contentmodel.Symbol{Space: cands[0].Name.Space, Local: x.name})
			nodes = append(nodes, x)
		}
	}
	leaves, merr := ct.Matcher(em.pp.sch).Match(symbols)
	if merr != nil {
		return nil, errAtLine(el.line, "content of <%s> does not match the schema: %s", el.name, merr.Error())
	}
	assigned := map[int][]string{}
	for i, n := range nodes {
		declared, ok := leaves[i].Data.(*xsd.ElementDecl)
		if !ok {
			return nil, errAtLine(el.line, "wildcard content is not supported in P-XML constructors")
		}
		mi, ok := declToMember[declared]
		if !ok {
			return nil, errAtLine(el.line, "internal: no member for element <%s>", declared.Name.Local)
		}
		var val string
		switch x := n.(type) {
		case *xsplice:
			val = x.expr
		case *xelem:
			var err error
			val, err = em.element(x, declared)
			if err != nil {
				return nil, err
			}
		}
		assigned[mi] = append(assigned[mi], val)
	}
	return assigned, nil
}

// memberIndex maps each declared element (and its alternatives) to its
// member position.
func (em *emitter) memberIndex(api *codegen.TypeAPI) map[*xsd.ElementDecl]int {
	out := map[*xsd.ElementDecl]int{}
	var walkGroup func(g *xsd.ModelGroup, idx int)
	walkGroup = func(g *xsd.ModelGroup, idx int) {
		for _, p := range g.Particles {
			switch {
			case p.Element != nil:
				out[p.Element] = idx
			case p.Group != nil:
				walkGroup(p.Group, idx)
			}
		}
	}
	for i := range api.Members {
		m := &api.Members[i]
		switch m.Kind {
		case codegen.MemberElement:
			out[m.Elem] = i
		case codegen.MemberChoice, codegen.MemberSeqGroup:
			walkGroup(m.Group, i)
		}
	}
	return out
}

// mixedChildren emits Add/Text calls preserving the interleaving.
func (em *emitter) mixedChildren(el *xelem, ct *xsd.ComplexType, v string) error {
	// Pre-validate the element sequence against the content model so
	// errors surface at preprocess time, not at marshal.
	var symbols []contentmodel.Symbol
	for _, c := range el.children {
		switch x := c.(type) {
		case *xsplice:
			if d := em.spliceDecl(x.expr); d != nil {
				symbols = append(symbols, contentmodel.Symbol{Space: d.Name.Space, Local: d.Name.Local})
			}
		case *xelem:
			cands := em.pp.elemsByLocal[x.name]
			if len(cands) == 0 {
				return errAtLine(x.line, "element <%s> is not declared in the schema", x.name)
			}
			symbols = append(symbols, contentmodel.Symbol{Space: cands[0].Name.Space, Local: x.name})
		}
	}
	if _, merr := ct.Matcher(em.pp.sch).Match(symbols); merr != nil {
		return errAtLine(el.line, "content of <%s> does not match the schema: %s", el.name, merr.Error())
	}
	for _, c := range el.children {
		switch x := c.(type) {
		case *xtext:
			if x.s == "" {
				continue
			}
			em.emitf("%s.Text(%q)", v, x.s)
		case *xsplice:
			if d := em.spliceDecl(x.expr); d != nil {
				em.emitf("%s.Add(%s)", v, x.expr)
			} else {
				em.emitf("%s.Text(%s)", v, x.expr)
			}
		case *xelem:
			val, err := em.element(x, nil)
			if err != nil {
				return err
			}
			em.emitf("%s.Add(%s)", v, val)
		}
	}
	return nil
}

// ValidateOnly runs the full static validation of every constructor in
// src without producing output — the mode used by the E1 mutation study
// to count statically-caught errors.
func (pp *Preprocessor) ValidateOnly(src string) error {
	_, err := pp.Rewrite(src)
	return err
}

// SortDeclNames is a test helper listing the constructor-root names the
// preprocessor would accept.
func (pp *Preprocessor) SortDeclNames() []string {
	var out []string
	for name := range pp.elemsByLocal {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
