package pxml

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"repro/internal/xmlparser"
)

// xnode is a node of a parsed XML constructor.
type xnode interface{ isX() }

// xelem is an element with possibly spliced attributes and children.
type xelem struct {
	name     string
	attrs    []xattr
	children []xnode
	line     int
}

// xtext is literal character data (entities resolved).
type xtext struct{ s string }

// xsplice is a $expr$ splice in content position.
type xsplice struct {
	expr string
	line int
}

func (*xelem) isX()   {}
func (*xtext) isX()   {}
func (*xsplice) isX() {}

// xattr is an attribute; exactly one of lit/splice is set.
type xattr struct {
	name   string
	lit    *string
	splice *string
	line   int
}

// fragParser parses an XML constructor with splices out of program text.
type fragParser struct {
	src  string
	pos  int
	line int
}

// Error reports a syntax error in a constructor.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("pxml: line %d: %s", e.Line, e.Msg) }

func (p *fragParser) errf(format string, args ...any) error {
	return &Error{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *fragParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *fragParser) next() byte {
	b := p.peek()
	if b != 0 {
		p.pos++
		if b == '\n' {
			p.line++
		}
	}
	return b
}

func (p *fragParser) skipSpace() {
	for {
		b := p.peek()
		if b != ' ' && b != '\t' && b != '\n' && b != '\r' {
			return
		}
		p.next()
	}
}

// parseConstructor parses one <elem>...</elem> starting at src[pos]
// (which must be '<'). It returns the element and the offset just past
// its end tag.
func parseConstructor(src string, pos, line int) (*xelem, int, error) {
	p := &fragParser{src: src, pos: pos, line: line}
	el, err := p.element()
	if err != nil {
		return nil, 0, err
	}
	return el, p.pos, nil
}

// element parses <name attr...> content </name> or <name .../>.
func (p *fragParser) element() (*xelem, error) {
	startLine := p.line
	if p.next() != '<' {
		return nil, p.errf("expected '<'")
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	el := &xelem{name: name, line: startLine}
	for {
		p.skipSpace()
		switch p.peek() {
		case '>':
			p.next()
			if err := p.content(el); err != nil {
				return nil, err
			}
			return el, nil
		case '/':
			p.next()
			if p.next() != '>' {
				return nil, p.errf("expected '/>' in <%s>", name)
			}
			return el, nil
		case 0:
			return nil, p.errf("unterminated start tag <%s>", name)
		default:
			a, err := p.attribute()
			if err != nil {
				return nil, err
			}
			el.attrs = append(el.attrs, a)
		}
	}
}

// name scans an XML name.
func (p *fragParser) name() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !xmlparser.IsNameStartChar(r) {
		return "", p.errf("expected a name")
	}
	p.pos += size
	for {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if size == 0 || !xmlparser.IsNameChar(r) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

// attribute parses name="value", name='value', name=$expr$ or
// name="$expr$".
func (p *fragParser) attribute() (xattr, error) {
	line := p.line
	name, err := p.name()
	if err != nil {
		return xattr{}, err
	}
	p.skipSpace()
	if p.next() != '=' {
		return xattr{}, p.errf("expected '=' after attribute %q", name)
	}
	p.skipSpace()
	switch p.peek() {
	case '$':
		expr, err := p.spliceExpr()
		if err != nil {
			return xattr{}, err
		}
		return xattr{name: name, splice: &expr, line: line}, nil
	case '"', '\'':
		q := p.next()
		start := p.pos
		var sb strings.Builder
		for {
			b := p.peek()
			if b == 0 {
				return xattr{}, p.errf("unterminated value for attribute %q", name)
			}
			if b == q {
				break
			}
			if b == '$' {
				// A fully spliced quoted value: "$expr$".
				if p.pos == start {
					expr, err := p.spliceExpr()
					if err != nil {
						return xattr{}, err
					}
					if p.peek() != q {
						return xattr{}, p.errf("attribute %q mixes a splice with literal text (unsupported)", name)
					}
					p.next()
					return xattr{name: name, splice: &expr, line: line}, nil
				}
				return xattr{}, p.errf("attribute %q mixes a splice with literal text (unsupported)", name)
			}
			if b == '&' {
				s, err := p.entity()
				if err != nil {
					return xattr{}, err
				}
				sb.WriteString(s)
				continue
			}
			sb.WriteByte(p.next())
		}
		p.next()
		lit := sb.String()
		return xattr{name: name, lit: &lit, line: line}, nil
	default:
		return xattr{}, p.errf("attribute %q needs a quoted value or a $splice$", name)
	}
}

// spliceExpr parses $...$ and returns the inner Go expression.
func (p *fragParser) spliceExpr() (string, error) {
	if p.next() != '$' {
		return "", p.errf("expected '$'")
	}
	start := p.pos
	for {
		b := p.peek()
		if b == 0 || b == '\n' {
			return "", p.errf("unterminated $splice$")
		}
		if b == '$' {
			expr := strings.TrimSpace(p.src[start:p.pos])
			p.next()
			if expr == "" {
				return "", p.errf("empty $splice$")
			}
			return expr, nil
		}
		p.next()
	}
}

// entity resolves the predefined entities.
func (p *fragParser) entity() (string, error) {
	p.next() // '&'
	start := p.pos
	for p.peek() != ';' {
		if p.peek() == 0 {
			return "", p.errf("unterminated entity reference")
		}
		p.next()
	}
	name := p.src[start:p.pos]
	p.next()
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	return "", p.errf("unsupported entity &%s;", name)
}

// content parses element content up to the matching end tag.
func (p *fragParser) content(el *xelem) error {
	var text strings.Builder
	textLine := p.line
	flush := func() {
		if text.Len() > 0 {
			el.children = append(el.children, &xtext{s: text.String()})
			text.Reset()
		}
	}
	for {
		switch p.peek() {
		case 0:
			return p.errf("missing end tag </%s>", el.name)
		case '<':
			if strings.HasPrefix(p.src[p.pos:], "</") {
				flush()
				p.next()
				p.next()
				name, err := p.name()
				if err != nil {
					return err
				}
				if name != el.name {
					return p.errf("end tag </%s> does not match <%s>", name, el.name)
				}
				p.skipSpace()
				if p.next() != '>' {
					return p.errf("malformed end tag </%s>", name)
				}
				return nil
			}
			if strings.HasPrefix(p.src[p.pos:], "<!--") {
				// Comments inside constructors are dropped.
				end := strings.Index(p.src[p.pos:], "-->")
				if end < 0 {
					return p.errf("unterminated comment")
				}
				for i := 0; i < end+3; i++ {
					p.next()
				}
				continue
			}
			flush()
			child, err := p.element()
			if err != nil {
				return err
			}
			el.children = append(el.children, child)
		case '$':
			flush()
			line := p.line
			expr, err := p.spliceExpr()
			if err != nil {
				return err
			}
			el.children = append(el.children, &xsplice{expr: expr, line: line})
		case '&':
			s, err := p.entity()
			if err != nil {
				return err
			}
			text.WriteString(s)
		default:
			if text.Len() == 0 {
				textLine = p.line
			}
			_ = textLine
			text.WriteByte(p.next())
		}
	}
}
