package pxml

import (
	"fmt"
	"strings"
)

// constructorStmt is one `lhs = <xml>...;` statement found in the source.
type constructorStmt struct {
	// start/end delimit the byte range to replace (from the first
	// character of the left-hand side to just past the constructor and
	// an optional trailing semicolon).
	start, end int
	// lhs is the assignment target text, op is "=" or ":=".
	lhs string
	op  string
	// root is the parsed constructor.
	root *xelem
	// line is the 1-based source line of the constructor.
	line int
	// indent is the leading whitespace of the statement's line.
	indent string
}

// scanResult is what the source scanner extracts.
type scanResult struct {
	stmts []constructorStmt
	// varTypes maps variable names to their declared Go type text
	// ("*pogen.NameElement", "string", ...).
	varTypes map[string]string
	// directives holds //pxml:key value comments.
	directives map[string]string
}

// scanSource walks Go-ish source text, skipping strings and comments,
// collecting pxml directives, variable declarations and XML constructor
// assignments.
func scanSource(src string) (*scanResult, error) {
	res := &scanResult{varTypes: map[string]string{}, directives: map[string]string{}}
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			end := strings.IndexByte(src[i:], '\n')
			if end < 0 {
				end = len(src) - i
			}
			comment := src[i+2 : i+end]
			if strings.HasPrefix(comment, "pxml:") {
				kv := strings.SplitN(strings.TrimPrefix(comment, "pxml:"), " ", 2)
				if len(kv) == 2 {
					res.directives[kv[0]] = strings.TrimSpace(kv[1])
				}
			}
			i += end
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, &Error{Line: line, Msg: "unterminated block comment"}
			}
			line += strings.Count(src[i:i+end+4], "\n")
			i += end + 4
		case c == '"' || c == '\'':
			j, nl, err := skipGoString(src, i)
			if err != nil {
				return nil, &Error{Line: line, Msg: err.Error()}
			}
			line += nl
			i = j
		case c == '`':
			end := strings.IndexByte(src[i+1:], '`')
			if end < 0 {
				return nil, &Error{Line: line, Msg: "unterminated raw string"}
			}
			line += strings.Count(src[i:i+end+2], "\n")
			i += end + 2
		case c == 'v' && hasWordAt(src, i, "var"):
			name, typ, adv := parseVarDecl(src[i:])
			if name != "" {
				res.varTypes[name] = typ
			}
			i += adv
		case c == 'f' && hasWordAt(src, i, "func"):
			params, adv := parseFuncParams(src[i:])
			for n, t := range params {
				res.varTypes[n] = t
			}
			line += strings.Count(src[i:i+adv], "\n")
			i += adv
		case c == '<' && isConstructorStart(src, i):
			stmt, adv, err := captureConstructor(src, i, line, res)
			if err != nil {
				return nil, err
			}
			if stmt != nil {
				res.stmts = append(res.stmts, *stmt)
			}
			line += strings.Count(src[i:i+adv], "\n")
			i += adv
		default:
			i++
		}
	}
	return res, nil
}

// skipGoString advances past a quoted Go string/rune literal.
func skipGoString(src string, i int) (int, int, error) {
	q := src[i]
	nl := 0
	j := i + 1
	for j < len(src) {
		switch src[j] {
		case '\\':
			j += 2
			continue
		case '\n':
			nl++
		case q:
			return j + 1, nl, nil
		}
		j++
	}
	return 0, 0, fmt.Errorf("unterminated string literal")
}

// hasWordAt reports whether word appears at i as a standalone token.
func hasWordAt(src string, i int, word string) bool {
	if !strings.HasPrefix(src[i:], word) {
		return false
	}
	if i > 0 && isIdentByte(src[i-1]) {
		return false
	}
	j := i + len(word)
	return j < len(src) && (src[j] == ' ' || src[j] == '\t')
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '.' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// parseVarDecl parses "var name Type" up to end of line.
func parseVarDecl(s string) (name, typ string, adv int) {
	end := strings.IndexByte(s, '\n')
	if end < 0 {
		end = len(s)
	}
	fields := strings.Fields(s[:end])
	if len(fields) >= 3 && fields[0] == "var" {
		return fields[1], strings.Join(fields[2:], " "), end
	}
	return "", "", end
}

// parseFuncParams extracts "name Type" pairs from a func signature's
// parameter list (handling "a, b Type" groups).
func parseFuncParams(s string) (map[string]string, int) {
	out := map[string]string{}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return out, len("func")
	}
	depth := 0
	j := open
	for ; j < len(s); j++ {
		if s[j] == '(' {
			depth++
		} else if s[j] == ')' {
			depth--
			if depth == 0 {
				break
			}
		}
	}
	if j >= len(s) {
		return out, len("func")
	}
	params := s[open+1 : j]
	for _, part := range strings.Split(params, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) >= 2 {
			out[fields[0]] = strings.Join(fields[1:], " ")
		}
	}
	return out, j + 1
}

// isConstructorStart reports whether the '<' at i begins an XML
// constructor: it must follow '=' (possibly ":=") and be followed by a
// name character.
func isConstructorStart(src string, i int) bool {
	if i+1 >= len(src) {
		return false
	}
	n := src[i+1]
	if !(n == '_' || (n >= 'a' && n <= 'z') || (n >= 'A' && n <= 'Z')) {
		return false
	}
	// Look back over whitespace for '='.
	j := i - 1
	for j >= 0 && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n' || src[j] == '\r') {
		j--
	}
	return j >= 0 && src[j] == '=' && (j == 0 || src[j-1] != '=' && src[j-1] != '!' && src[j-1] != '<' && src[j-1] != '>')
}

// captureConstructor parses the constructor at i and reconstructs the
// surrounding assignment statement.
func captureConstructor(src string, i, line int, res *scanResult) (*constructorStmt, int, error) {
	// Find '=' and the lhs identifier before it.
	j := i - 1
	for j >= 0 && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n' || src[j] == '\r') {
		j--
	}
	eq := j // at '='
	op := "="
	j--
	if j >= 0 && src[j] == ':' {
		op = ":="
		j--
	}
	for j >= 0 && (src[j] == ' ' || src[j] == '\t') {
		j--
	}
	lhsEnd := j + 1
	for j >= 0 && isIdentByte(src[j]) {
		j--
	}
	lhsStart := j + 1
	lhs := src[lhsStart:lhsEnd]
	if lhs == "" {
		return nil, 1, &Error{Line: line, Msg: "XML constructor is not the right-hand side of an assignment"}
	}
	_ = eq
	root, end, err := parseConstructor(src, i, line)
	if err != nil {
		return nil, 0, err
	}
	// Optional trailing semicolon.
	k := end
	for k < len(src) && (src[k] == ' ' || src[k] == '\t') {
		k++
	}
	if k < len(src) && src[k] == ';' {
		k++
	}
	// Leading indentation of the statement line.
	ls := lhsStart
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	indent := src[ls:lhsStart]
	if strings.TrimSpace(indent) != "" {
		indent = ""
	}
	// Track := declarations so later splices know the variable's type
	// (resolved to the constructor's element).
	stmt := &constructorStmt{
		start: lhsStart, end: k, lhs: lhs, op: op, root: root, line: line, indent: indent,
	}
	if op == ":=" {
		res.varTypes[lhs] = "pxml:" + root.name
	}
	return stmt, k - i, nil
}
