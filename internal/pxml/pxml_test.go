package pxml

import (
	"strings"
	"testing"

	"repro/internal/normalize"
	"repro/internal/schemas"
	"repro/internal/wml"
)

func poPP(t *testing.T) *Preprocessor {
	t.Helper()
	pp, err := New(Options{
		SchemaSource: schemas.PurchaseOrderXSD,
		Scheme:       normalize.SchemePaper,
		Package:      "pogen",
		DocExpr:      "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func wmlPP(t *testing.T) *Preprocessor {
	t.Helper()
	pp, err := New(Options{
		SchemaSource: wml.Schema,
		Scheme:       normalize.SchemePaper,
		Package:      "wmlgen",
		DocExpr:      "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

// shipToSource is the paper's §4 example: a shipTo constructor with a
// spliced name element.
const shipToSource = `package main

func build(d *pogen.Document) *pogen.ShipToElement {
	var n *pogen.NameElement
	n = <name>Alice Smith</name>;
	var s *pogen.ShipToElement
	s = <shipTo country="US">
		$n$
		<street>123 Maple Street</street>
		<city>Mill Valey</city>
		<state>CA</state>
		<zip>90952</zip>
	</shipTo>;
	return s
}
`

// TestSection4ShipToRewrite reproduces the paper's §4 rewriting: the
// constructor becomes createShipTo(createUSAddress(createName(...), ...))
// style V-DOM calls.
func TestSection4ShipToRewrite(t *testing.T) {
	pp := poPP(t)
	out, err := pp.Rewrite(shipToSource)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	for _, want := range []string{
		`d.CreateName("Alice Smith")`,
		`d.CreateStreet("123 Maple Street")`,
		`d.CreateCity("Mill Valey")`,
		`d.CreateState("CA")`,
		`d.MustZip("90952")`,
		"d.CreateUSAddressType(",
		"d.CreateShipTo(",
		`.SetCountry("US")`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rewritten source missing %q:\n%s", want, out)
		}
	}
	// The spliced variable is used directly as the name member.
	if !strings.Contains(out, "d.CreateUSAddressType(n, ") {
		t.Errorf("splice should pass the variable through:\n%s", out)
	}
	// No XML remains.
	if strings.Contains(out, "<shipTo") {
		t.Errorf("constructor not replaced:\n%s", out)
	}
}

// TestStaticRejections is the heart of the paper's claim: these programs
// are rejected at preprocess time, before any test run.
func TestStaticRejections(t *testing.T) {
	pp := poPP(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{
			"undeclared element",
			`s = <shipTo country="US"><nayme>x</nayme><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
			"not declared",
		},
		{
			"wrong child order",
			`s = <shipTo country="US"><street>s</street><name>x</name><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
			"does not match the schema",
		},
		{
			"missing required child",
			`s = <shipTo country="US"><name>x</name><street>s</street><city>c</city><state>st</state></shipTo>;`,
			"does not match the schema",
		},
		{
			"undeclared attribute",
			`s = <shipTo planet="earth"><name>x</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
			`attribute "planet" is not declared`,
		},
		{
			"fixed attribute violated",
			`s = <shipTo country="DE"><name>x</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
			"fixed value",
		},
		{
			"invalid simple literal",
			`q = <quantity>100</quantity>;`,
			"must be < 100",
		},
		{
			"invalid decimal",
			`z = <zip>not-a-zip</zip>;`,
			"bad digit",
		},
		{
			"text in element-only content",
			`s = <items>loose text</items>;`,
			"not allowed in element-only content",
		},
		{
			"missing required attribute",
			`i = <item><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item>;`,
			`required attribute "partNum" is missing`,
		},
		{
			"bad SKU pattern",
			`i = <item partNum="926-aa"><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item>;`,
			"pattern",
		},
		{
			"string splice in element position",
			`s = <items>$someString$</items>;`,
			"not a declared V-DOM element variable",
		},
	}
	for _, c := range cases {
		src := "package main\n\nfunc f(d *pogen.Document, someString string) {\n\t" + c.body + "\n}\n"
		_, err := pp.Rewrite(src)
		if err == nil {
			t.Errorf("%s: expected static rejection", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

// TestValidConstructorsAccepted: matching positive cases pass.
func TestValidConstructorsAccepted(t *testing.T) {
	pp := poPP(t)
	bodies := []string{
		`q = <quantity>99</quantity>;`,
		`c = <comment>free text &amp; entities</comment>;`,
		`i = <item partNum="926-AA"><productName>p</productName><quantity>1</quantity><USPrice>1.5</USPrice></item>;`,
		`i = <item partNum="926-AA"><productName>p</productName><quantity>1</quantity><USPrice>1.5</USPrice><comment>ok</comment><shipDate>1999-05-21</shipDate></item>;`,
		`s = <shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>90952</zip></shipTo>;`,
	}
	for _, b := range bodies {
		src := "package main\n\nfunc f(d *pogen.Document) {\n\t" + b + "\n}\n"
		if _, err := pp.Rewrite(src); err != nil {
			t.Errorf("valid constructor rejected: %s\n%v", b, err)
		}
	}
}

// fig10Source is the paper's Fig. 10 (directory browser page in P-XML),
// transcribed with Go declarations.
const fig10Source = `package main

//pxml:package wmlgen
//pxml:doc d

func page(d *wmlgen.Document, subDirs []string, parentDir string, currentDir string, subDir string) *wmlgen.PElement {
	var p *wmlgen.PElement
	var s *wmlgen.SelectElement
	var o *wmlgen.OptionElement

	s = <select name="directories">
		<option value=$parentDir$>..</option>
	</select>;
	o = <option value=$subDir$>$subDirs[0]$</option>;
	p = <p>
		<b>$currentDir$</b>
		<br/>
		$s$
		<br/>
	</p>;
	return p
}
`

// TestFig10ToFig11 reproduces the paper's Fig. 10 -> Fig. 11 rewriting:
// the WML constructors become createOption/createSelect/createP/createB
// V-DOM calls with setValue/setName attribute calls.
func TestFig10ToFig11(t *testing.T) {
	pp := wmlPP(t)
	out, err := pp.Rewrite(fig10Source)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	for _, want := range []string{
		`d.CreateOptionType("..")`,       // createOption("..")
		".SetValue2(parentDir)",          // o.setValue(parentDir)
		`.SetName("directories")`,        // select name attribute
		"d.CreateSelectType()",           // createSelect
		".AddOption(",                    // s.add(o)
		"d.CreateOptionType(subDirs[0])", // createOption(subDirs[i])
		".SetValue2(subDir)",             // o.setValue(subDir)
		"d.CreatePType()",                // createP()
		".Add(",                          // p.add(...)
		"d.CreateB(currentDir)",          // createB(currentDir)
		"d.CreateBrType()",               // createBr()
		"p = ",                           // final assignments preserved
		"s = ",
		"o = ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 11 output missing %q:\n%s", want, out)
		}
	}
	// The spliced select variable is added to the paragraph directly.
	if !strings.Contains(out, ".Add(s)") {
		t.Errorf("spliced $s$ should be p.Add(s):\n%s", out)
	}
}

// TestWMLStaticRejections: WML-specific static errors.
func TestWMLStaticRejections(t *testing.T) {
	pp := wmlPP(t)
	cases := []struct{ body, wantErr string }{
		// option directly inside p violates the paragraph model.
		{`p = <p><option value="x">..</option></p>;`, "does not match the schema"},
		// TITLE is not a WML element (the §1 "Wrong Server Page").
		{`p = <p><TITLE>oops</TITLE></p>;`, "not declared"},
		// select without options violates minOccurs.
		{`s = <select name="d"></select>;`, "does not match the schema"},
		// bad enumerated attribute.
		{`p = <p align="justified"><b>x</b></p>;`, "enumerated"},
	}
	for _, c := range cases {
		src := "package main\n\nfunc f(d *wmlgen.Document) {\n\t" + c.body + "\n}\n"
		_, err := pp.Rewrite(src)
		if err == nil {
			t.Errorf("expected rejection for %s", c.body)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("error %q does not contain %q", err, c.wantErr)
		}
	}
}

// TestDirectives: //pxml: comments override options.
func TestDirectives(t *testing.T) {
	pp, err := New(Options{SchemaSource: schemas.PurchaseOrderXSD, Scheme: normalize.SchemePaper})
	if err != nil {
		t.Fatal(err)
	}
	src := `package main
//pxml:package pogen
//pxml:doc factory
func f(factory *pogen.Document) {
	c := <comment>hi</comment>;
	_ = c
}
`
	out, rerr := pp.Rewrite(src)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.Contains(out, `factory.CreateComment("hi")`) {
		t.Errorf("directive doc expr not used:\n%s", out)
	}
	// Without directives and without options the rewrite fails.
	if _, err := pp.Rewrite("package main\nfunc f() { c := <comment>x</comment>; _ = c }\n"); err == nil {
		t.Error("missing package/doc should fail")
	}
}

// TestSourceWithoutConstructors passes through unchanged.
func TestSourceWithoutConstructors(t *testing.T) {
	pp := poPP(t)
	src := "package main\n\nfunc main() {\n\tx := 1 < 2\n\t_ = x\n\ty := \"<name>not xml</name>\"\n\t_ = y\n}\n"
	out, err := pp.Rewrite(src)
	if err != nil {
		t.Fatal(err)
	}
	if out != src {
		t.Errorf("source without constructors changed:\n%s", out)
	}
}

// TestComparisonNotMistakenForConstructor: a < b comparisons survive.
func TestComparisonsSurvive(t *testing.T) {
	pp := poPP(t)
	src := "package main\n\nfunc f(i int, n int) bool {\n\treturn i < n\n}\n"
	out, err := pp.Rewrite(src)
	if err != nil || out != src {
		t.Errorf("comparison mangled: %v\n%s", err, out)
	}
}

// TestInferredTypeFromColonEquals: a := constructor can be spliced later.
func TestInferredTypeFromColonEquals(t *testing.T) {
	pp := poPP(t)
	src := `package main
func f(d *pogen.Document) {
	n := <name>Alice</name>;
	s := <shipTo country="US">$n$<street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;
	_ = s
}
`
	out, err := pp.Rewrite(src)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !strings.Contains(out, "d.CreateUSAddressType(n, ") {
		t.Errorf("inferred splice type failed:\n%s", out)
	}
}

// TestNamespacedSchema: constructors against a schema with a target
// namespace and qualified locals.
func TestNamespacedSchema(t *testing.T) {
	pp, err := New(Options{
		SchemaSource: schemas.NamespacedOrderXSD,
		Scheme:       normalize.SchemePaper,
		Package:      "nsgen",
		DocExpr:      "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	src := "package p\nfunc f(d *nsgen.Document) {\n\to := <order priority=\"1\"><id>42</id><note>rush</note></order>;\n\t_ = o\n}\n"
	out, rerr := pp.Rewrite(src)
	if rerr != nil {
		t.Fatalf("Rewrite: %v", rerr)
	}
	for _, want := range []string{"d.CreateOrderTypeType(", "d.MustId(\"42\")", "d.CreateNote(\"rush\")", ".SetPriority(\"1\")"} {
		if !strings.Contains(out, want) {
			t.Errorf("namespaced rewrite missing %q:\n%s", want, out)
		}
	}
	// Facet violations still caught statically.
	bad := "package p\nfunc f(d *nsgen.Document) {\n\to := <order><id>0</id></order>;\n\t_ = o\n}\n"
	if _, err := pp.Rewrite(bad); err == nil {
		t.Error("id=0 should fail positiveInteger statically")
	}
}
