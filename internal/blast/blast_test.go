package blast_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blast"
	"repro/internal/registry"
	"repro/internal/schemas"
	"repro/internal/server"
)

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Registry: reg}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestMixedRunAgainstRealServer drives every operation kind through a
// real serving stack and checks the accounting adds up.
func TestMixedRunAgainstRealServer(t *testing.T) {
	ts := startServer(t)
	const totalReqs = 60
	res, err := blast.Run(context.Background(), blast.Config{
		Targets:       []string{ts.URL},
		Schema:        "po",
		Doc:           []byte(schemas.PurchaseOrderDoc),
		Mix:           blast.Mix{Validate: 4, Stream: 2, Batch: 1, Decode: 2, Encode: 1},
		Concurrency:   4,
		TotalRequests: totalReqs,
		BatchSize:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != totalReqs {
		t.Fatalf("Requests = %d, want %d", res.Requests, totalReqs)
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d (first: %s)", res.Failed, res.FirstError)
	}
	if res.OK != totalReqs {
		t.Fatalf("OK = %d, want %d", res.OK, totalReqs)
	}
	if res.Invalid != 0 {
		t.Fatalf("Invalid = %d for a valid document", res.Invalid)
	}
	// Batches count BatchSize documents each, so Docs > Requests as
	// soon as one batch ran; with weight 1/10 over 60 requests the odds
	// of zero batches are negligible — but derive the bound from the
	// recorded mix anyway.
	wantDocs := int64(0)
	for op, n := range res.ByOp {
		if op == blast.OpBatch {
			wantDocs += n * 5
		} else {
			wantDocs += n
		}
	}
	if res.Docs != wantDocs {
		t.Fatalf("Docs = %d, want %d from mix %v", res.Docs, wantDocs, res.ByOp)
	}
	if res.Latency.Count != totalReqs {
		t.Fatalf("latency count = %d, want %d", res.Latency.Count, totalReqs)
	}
	if res.Latency.P50Ns <= 0 || res.Latency.P99Ns < res.Latency.P50Ns {
		t.Fatalf("implausible latency quantiles: %+v", res.Latency)
	}
	if res.StatusCounts[http.StatusOK] != totalReqs {
		t.Fatalf("status counts = %v", res.StatusCounts)
	}
}

// TestInvalidDocumentCounted: a 200 verdict with valid:false moves
// Invalid, not Failed — wrong answers and broken transport are
// different alarms.
func TestInvalidDocumentCounted(t *testing.T) {
	ts := startServer(t)
	bad := []byte(schemas.PurchaseOrderDoc)
	badDoc := string(bad)
	badDoc = badDoc[:len(badDoc)-len("</purchaseOrder>")] + "<unexpected/></purchaseOrder>"
	res, err := blast.Run(context.Background(), blast.Config{
		Targets:       []string{ts.URL},
		Schema:        "po",
		Doc:           []byte(badDoc),
		Concurrency:   2,
		TotalRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d (first: %s)", res.Failed, res.FirstError)
	}
	if res.OK != 10 || res.Invalid != 10 {
		t.Fatalf("OK = %d, Invalid = %d, want 10 and 10", res.OK, res.Invalid)
	}
}

// TestClassification: 429 is Shed, other non-200s are Failed, and the
// first failure is sampled.
func TestClassification(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 1:
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"valid":true}`)) //nolint:errcheck
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	res, err := blast.Run(context.Background(), blast.Config{
		Targets:       []string{ts.URL},
		Schema:        "po",
		Doc:           []byte("<a/>"),
		Concurrency:   1,
		TotalRequests: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 3 || res.Shed != 3 || res.Failed != 3 {
		t.Fatalf("ok/shed/failed = %d/%d/%d, want 3/3/3", res.OK, res.Shed, res.Failed)
	}
	if res.FirstError == "" {
		t.Fatal("no first error sampled")
	}
}

// TestRatePacing: a rate-limited run must not overshoot its target by
// more than the pacer's burst allowance.
func TestRatePacing(t *testing.T) {
	ts := startServer(t)
	const rate = 200.0
	res, err := blast.Run(context.Background(), blast.Config{
		Targets:     []string{ts.URL},
		Schema:      "po",
		Doc:         []byte(schemas.PurchaseOrderDoc),
		Rate:        rate,
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d (first: %s)", res.Failed, res.FirstError)
	}
	// 200/s over 0.5s is ~100 requests. Allow generous slop for CI
	// noise, but an unthrottled run would do thousands.
	if res.Requests < 20 || res.Requests > 150 {
		t.Fatalf("paced run issued %d requests, want roughly 100", res.Requests)
	}
}

// TestEncodePriming: with an encode weight and no DocJSON, Run fetches
// the canonical JSON via /v1/decode before the workers start.
func TestEncodePriming(t *testing.T) {
	ts := startServer(t)
	res, err := blast.Run(context.Background(), blast.Config{
		Targets:       []string{ts.URL},
		Schema:        "po",
		Doc:           []byte(schemas.PurchaseOrderDoc),
		Mix:           blast.Mix{Encode: 1},
		Concurrency:   2,
		TotalRequests: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d (first: %s)", res.Failed, res.FirstError)
	}
	if res.OK != 6 || res.ByOp[blast.OpEncode] != 6 {
		t.Fatalf("ok = %d, encode ops = %d, want 6 and 6", res.OK, res.ByOp[blast.OpEncode])
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := blast.Run(context.Background(), blast.Config{
		Targets: []string{"http://x"}, Schema: "po", Doc: []byte("<a/>"),
	})
	if err == nil {
		t.Fatal("Run without a budget succeeded")
	}
	_, err = blast.Run(context.Background(), blast.Config{Schema: "po", Doc: []byte("<a/>"), Duration: time.Second})
	if err == nil {
		t.Fatal("Run without targets succeeded")
	}
}
