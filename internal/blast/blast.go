// Package blast is the load harness behind cmd/xsdblast: it drives an
// xsdserved node or fleet with a mixed validate/decode/encode/batch
// workload at a target rate and reports what the paper's serving story
// is ultimately judged on — tail latency and loss under load, not mean
// throughput in a vacuum. The library form exists so benchmarks and the
// fleet integration test can run the exact harness the CLI runs, in
// process, and assert on its numbers.
package blast

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Op is one workload operation kind.
type Op string

const (
	OpValidate Op = "validate" // POST /v1/validate/{schema}
	OpStream   Op = "stream"   // POST /v1/validate/{schema}?stream=1
	OpBatch    Op = "batch"    // POST /v1/validate-batch/{schema}
	OpDecode   Op = "decode"   // POST /v1/decode/{schema}
	OpEncode   Op = "encode"   // POST /v1/encode/{schema}
)

// Mix weights the workload by operation. Zero-valued entries are
// excluded; the zero Mix means pure validate.
type Mix struct {
	Validate int `json:"validate"`
	Stream   int `json:"stream"`
	Batch    int `json:"batch"`
	Decode   int `json:"decode"`
	Encode   int `json:"encode"`
}

func (m Mix) total() int { return m.Validate + m.Stream + m.Batch + m.Decode + m.Encode }

// pick maps a uniform draw in [0, total) to an operation.
func (m Mix) pick(n int) Op {
	if n -= m.Validate; n < 0 {
		return OpValidate
	}
	if n -= m.Stream; n < 0 {
		return OpStream
	}
	if n -= m.Batch; n < 0 {
		return OpBatch
	}
	if n -= m.Decode; n < 0 {
		return OpDecode
	}
	return OpEncode
}

// Config describes one load run.
type Config struct {
	// Targets are base URLs ("http://127.0.0.1:8080"); requests
	// round-robin across them. Required.
	Targets []string
	// Schema names the registry entry to exercise. Required.
	Schema string
	// Doc is the XML document posted to validate/stream/decode (and
	// batched). Required.
	Doc []byte
	// DocJSON is the canonical-JSON body for encode requests. When nil
	// and the mix includes encode, Run primes it with one /v1/decode
	// call against the first target.
	DocJSON []byte
	// Mix weights the operations (zero value = all validate).
	Mix Mix
	// Rate is the target request rate per second across all workers;
	// zero means unthrottled (as fast as Concurrency allows).
	Rate float64
	// Concurrency is the worker count (default 8). It bounds in-flight
	// requests; under a Rate it is how much burst the pacer can absorb.
	Concurrency int
	// Duration stops the run after a wall-clock budget.
	Duration time.Duration
	// TotalRequests stops the run after a request count. At least one
	// of Duration/TotalRequests must be set.
	TotalRequests int64
	// BatchSize is how many copies of Doc one batch request carries
	// (default 16).
	BatchSize int
	// Seed makes the op/target sequence reproducible (0 picks 1).
	Seed int64
	// Client is the HTTP client (nil builds one with a 30s timeout and
	// per-target keep-alive connections).
	Client *http.Client
}

// Result is what a run measured. Counters classify by outcome:
// transport errors and non-(200|429) statuses are Failed, 429s are Shed
// (the server refusing work by design, not failing it), and 200s are
// OK — with verdicts that judged the document invalid also counted in
// Invalid, because a load run against a valid document where Invalid
// moves is a correctness bug worth failing a run over.
type Result struct {
	Requests     int64                 `json:"requests"`
	Docs         int64                 `json:"docs"` // documents processed (batches count BatchSize)
	OK           int64                 `json:"ok"`
	Invalid      int64                 `json:"invalid"`
	Shed         int64                 `json:"shed"`
	Failed       int64                 `json:"failed"`
	StatusCounts map[int]int64         `json:"status_counts"`
	ByOp         map[Op]int64          `json:"by_op"`
	Latency      obs.HistogramSnapshot `json:"latency"`
	ElapsedNs    int64                 `json:"elapsed_ns"`
	RPS          float64               `json:"rps"`
	DocsPerSec   float64               `json:"docs_per_sec"`
	// FirstError samples one failure for diagnosis (load tools that
	// report only counts leave you grepping server logs).
	FirstError string `json:"first_error,omitempty"`
}

// state is the shared mutable accounting a run's workers write into.
type state struct {
	cfg      *Config
	client   *http.Client
	requests atomic.Int64 // requests started (admission ticket when TotalRequests caps the run)
	docs     atomic.Int64
	ok       atomic.Int64
	invalid  atomic.Int64
	shed     atomic.Int64
	failed   atomic.Int64
	lat      obs.Histogram

	mu       sync.Mutex
	statuses map[int]int64
	byOp     map[Op]int64
	firstErr string
}

// Run executes the configured load and blocks until the budget
// (duration, request count, or ctx) is exhausted.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("blast: no targets")
	}
	if cfg.Schema == "" {
		return nil, errors.New("blast: no schema")
	}
	if len(cfg.Doc) == 0 {
		return nil, errors.New("blast: no document")
	}
	if cfg.Duration <= 0 && cfg.TotalRequests <= 0 {
		return nil, errors.New("blast: need a Duration or TotalRequests budget")
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = Mix{Validate: 1}
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	st := &state{
		cfg:      &cfg,
		client:   cfg.Client,
		statuses: map[int]int64{},
		byOp:     map[Op]int64{},
	}
	if st.client == nil {
		st.client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.Concurrency,
			},
		}
	}
	if cfg.Mix.Encode > 0 && len(cfg.DocJSON) == 0 {
		data, err := primeJSON(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("blast: priming encode body via /v1/decode: %w", err)
		}
		cfg.DocJSON = data
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Pacer: a token channel fed in 5ms slices. Workers block on a
	// token before each request, so the offered rate holds even while
	// some workers are stuck in slow requests (up to Concurrency of
	// them — beyond that the pacer is ahead of capacity and tokens
	// pile up to a one-tick burst, no further).
	var tokens chan struct{}
	if cfg.Rate > 0 {
		tokens = make(chan struct{}, cfg.Concurrency)
		go pace(runCtx, cfg.Rate, tokens)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for {
				if runCtx.Err() != nil {
					return
				}
				// The request ticket: claim a slot in the total budget
				// before pacing, release nothing — a claimed ticket is
				// a request that WILL be sent unless the clock runs out.
				n := st.requests.Add(1)
				if cfg.TotalRequests > 0 && n > cfg.TotalRequests {
					st.requests.Add(-1)
					return
				}
				if tokens != nil {
					select {
					case <-runCtx.Done():
						st.requests.Add(-1)
						return
					case <-tokens:
					}
				}
				st.doRequest(runCtx, rng)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Requests:     st.requests.Load(),
		Docs:         st.docs.Load(),
		OK:           st.ok.Load(),
		Invalid:      st.invalid.Load(),
		Shed:         st.shed.Load(),
		Failed:       st.failed.Load(),
		StatusCounts: st.statuses,
		ByOp:         st.byOp,
		Latency:      st.lat.Snapshot(),
		ElapsedNs:    int64(elapsed),
		FirstError:   st.firstErr,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.RPS = float64(res.Requests) / s
		res.DocsPerSec = float64(res.Docs) / s
	}
	return res, nil
}

// pace feeds tokens at rate/sec in 5ms slices, carrying the fractional
// remainder so low rates still average out exactly.
func pace(ctx context.Context, rate float64, tokens chan<- struct{}) {
	const tick = 5 * time.Millisecond
	t := time.NewTicker(tick)
	defer t.Stop()
	perTick := rate * tick.Seconds()
	var carry float64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		carry += perTick
		for carry >= 1 {
			carry--
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			default:
				// Workers are saturated; dropping the token keeps the
				// pacer from banking unbounded burst.
				carry = 0
			}
		}
	}
}

// doRequest issues one operation and classifies the outcome.
func (st *state) doRequest(ctx context.Context, rng *rand.Rand) {
	cfg := st.cfg
	op := cfg.Mix.pick(rng.Intn(cfg.Mix.total()))
	target := cfg.Targets[rng.Intn(len(cfg.Targets))]

	var path string
	var body []byte
	contentType := "application/xml"
	docsInRequest := int64(1)
	switch op {
	case OpValidate:
		path, body = "/v1/validate/"+cfg.Schema, cfg.Doc
	case OpStream:
		path, body = "/v1/validate/"+cfg.Schema+"?stream=1", cfg.Doc
	case OpDecode:
		path, body = "/v1/decode/"+cfg.Schema, cfg.Doc
	case OpEncode:
		path, body = "/v1/encode/"+cfg.Schema, cfg.DocJSON
		contentType = "application/json"
	case OpBatch:
		path = "/v1/validate-batch/" + cfg.Schema
		body = batchBody(cfg.Doc, cfg.BatchSize)
		contentType = "application/json"
		docsInRequest = int64(cfg.BatchSize)
	}

	st.mu.Lock()
	st.byOp[op]++
	st.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		st.fail(op, err.Error())
		return
	}
	req.Header.Set("Content-Type", contentType)
	begin := time.Now()
	resp, err := st.client.Do(req)
	if err != nil {
		// A send cut off by the run budget expiring is the harness
		// stopping, not the server failing.
		if ctx.Err() != nil {
			st.requests.Add(-1)
			return
		}
		st.fail(op, err.Error())
		return
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	st.lat.Observe(time.Since(begin))
	st.mu.Lock()
	st.statuses[resp.StatusCode]++
	st.mu.Unlock()
	if rerr != nil {
		st.fail(op, rerr.Error())
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		st.ok.Add(1)
		st.docs.Add(docsInRequest)
		st.invalid.Add(countInvalid(op, data))
	case resp.StatusCode == http.StatusTooManyRequests:
		st.shed.Add(1)
	default:
		st.fail(op, fmt.Sprintf("status %d: %.200s", resp.StatusCode, data))
	}
}

func (st *state) fail(op Op, msg string) {
	st.failed.Add(1)
	st.mu.Lock()
	if st.firstErr == "" {
		st.firstErr = fmt.Sprintf("%s: %s", op, msg)
	}
	st.mu.Unlock()
}

// countInvalid extracts how many documents the 200 verdict judged
// invalid: the "invalid" count for batch responses, a "valid":false
// sniff otherwise.
func countInvalid(op Op, body []byte) int64 {
	if op == OpBatch {
		var br struct {
			Invalid int64 `json:"invalid"`
		}
		if json.Unmarshal(body, &br) == nil {
			return br.Invalid
		}
		return 0
	}
	var v struct {
		Valid *bool `json:"valid"`
	}
	if json.Unmarshal(body, &v) == nil && v.Valid != nil && !*v.Valid {
		return 1
	}
	return 0
}

// batchBody wraps n copies of doc into a /v1/validate-batch payload.
func batchBody(doc []byte, n int) []byte {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = string(doc)
	}
	body, err := json.Marshal(map[string][]string{"documents": docs})
	if err != nil {
		panic(err) // strings marshal unconditionally
	}
	return body
}

// primeJSON fetches the canonical-JSON form of cfg.Doc through
// /v1/decode so encode requests have a body.
func primeJSON(ctx context.Context, st *state) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		st.cfg.Targets[0]+"/v1/decode/"+st.cfg.Schema, bytes.NewReader(st.cfg.Doc))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := st.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("decode answered %d: %.200s", resp.StatusCode, body)
	}
	var dr struct {
		Valid bool            `json:"valid"`
		Data  json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		return nil, err
	}
	if !dr.Valid || len(dr.Data) == 0 {
		return nil, fmt.Errorf("document did not decode cleanly: %.200s", body)
	}
	return dr.Data, nil
}
