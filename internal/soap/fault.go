package soap

import (
	"bytes"
	"strconv"

	"repro/internal/dom"
	"repro/internal/validator"
)

// Fault codes, named after the SOAP 1.1 forms; Envelope() translates to
// the 1.2 equivalents (Client→Sender, Server→Receiver) when rendering a
// 1.2 fault.
const (
	CodeClient          = "Client"
	CodeServer          = "Server"
	CodeMustUnderstand  = "MustUnderstand"
	CodeVersionMismatch = "VersionMismatch"
)

// DetailNamespace qualifies the structured fault detail this service
// emits: one <violation> element per schema violation or parse error.
const DetailNamespace = "urn:repro:soap:detail"

// Detail is one structured fault detail entry. Schema violations carry
// Path (the validator's XPath-like location); parse errors carry Line and
// Col (1-based, zero when unknown).
type Detail struct {
	Path string
	Msg  string
	Line int
	Col  int
}

// Fault is a SOAP fault to be answered to the caller.
type Fault struct {
	// Version selects the envelope dialect: 11 or 12. Zero renders as
	// SOAP 1.1 — the fallback when the request was too malformed to carry
	// a recognizable version.
	Version int
	// Code is one of the Code* constants.
	Code string
	// Reason is the human-readable fault string.
	Reason string
	// Details are rendered under the fault detail as structured
	// <violation> entries.
	Details []Detail
}

// Error implements error so faults can travel error paths.
func (f *Fault) Error() string { return "soap fault (" + f.Code + "): " + f.Reason }

// HTTPStatus maps the fault to its HTTP response code: sender-side
// faults are 400s, only CodeServer is a 500. Invalid input therefore
// never surfaces as a server error.
func (f *Fault) HTTPStatus() int {
	if f.Code == CodeServer {
		return 500
	}
	return 400
}

// ViolationFault builds the Client fault for a schema-invalid payload,
// one detail entry per violation.
func ViolationFault(version int, what string, violations []validator.Violation) *Fault {
	f := &Fault{Version: version, Code: CodeClient, Reason: what + " is not schema-valid"}
	for _, v := range violations {
		f.Details = append(f.Details, Detail{Path: v.Path, Msg: v.Msg})
	}
	return f
}

// Envelope renders the fault as a complete SOAP envelope in its version.
func (f *Fault) Envelope() []byte {
	var b bytes.Buffer
	if f.Version == 12 {
		f.write12(&b)
	} else {
		f.write11(&b)
	}
	return WrapPayload(f.Version, b.Bytes())
}

// code12 translates a SOAP 1.1 fault code to its 1.2 name.
func code12(code string) string {
	switch code {
	case CodeClient:
		return "Sender"
	case CodeServer:
		return "Receiver"
	default:
		return code
	}
}

func (f *Fault) write11(b *bytes.Buffer) {
	// faultcode is a QName in the envelope namespace; WrapPayload binds
	// that namespace to the env prefix, visible here by scoping.
	b.WriteString(`<env:Fault xmlns:env="` + Envelope11 + `"><faultcode>env:`)
	b.WriteString(f.Code)
	b.WriteString(`</faultcode><faultstring>`)
	b.WriteString(dom.EscapeText(f.Reason))
	b.WriteString(`</faultstring>`)
	if len(f.Details) > 0 {
		b.WriteString(`<detail>`)
		f.writeDetails(b)
		b.WriteString(`</detail>`)
	}
	b.WriteString(`</env:Fault>`)
}

func (f *Fault) write12(b *bytes.Buffer) {
	b.WriteString(`<env:Fault xmlns:env="` + Envelope12 + `"><env:Code><env:Value>env:`)
	b.WriteString(code12(f.Code))
	b.WriteString(`</env:Value></env:Code><env:Reason><env:Text xml:lang="en">`)
	b.WriteString(dom.EscapeText(f.Reason))
	b.WriteString(`</env:Text></env:Reason>`)
	if len(f.Details) > 0 {
		b.WriteString(`<env:Detail>`)
		f.writeDetails(b)
		b.WriteString(`</env:Detail>`)
	}
	b.WriteString(`</env:Fault>`)
}

func (f *Fault) writeDetails(b *bytes.Buffer) {
	b.WriteString(`<d:violations xmlns:d="` + DetailNamespace + `">`)
	for _, d := range f.Details {
		b.WriteString(`<d:violation`)
		if d.Path != "" {
			b.WriteString(` path="` + dom.EscapeAttr(d.Path) + `"`)
		}
		if d.Line > 0 {
			b.WriteString(` line="` + strconv.Itoa(d.Line) + `" col="` + strconv.Itoa(d.Col) + `"`)
		}
		b.WriteString(`>`)
		b.WriteString(dom.EscapeText(d.Msg))
		b.WriteString(`</d:violation>`)
	}
	b.WriteString(`</d:violations>`)
}

// ParseFault extracts fault information from a response envelope, for
// clients. It reports ok=false when the body's payload is not a Fault.
func ParseFault(env *Envelope) (*Fault, bool) {
	p := env.Payload
	if p == nil || p.LocalName() != "Fault" || p.NamespaceURI() != versionNS(env.Version) {
		return nil, false
	}
	f := &Fault{Version: env.Version}
	ns := versionNS(env.Version)
	if env.Version == 12 {
		for _, c := range p.ChildElements() {
			if c.NamespaceURI() != ns {
				continue
			}
			switch c.LocalName() {
			case "Code":
				if v := firstChildNS(c, ns, "Value"); v != nil {
					f.Code = localPart(v.TextContent())
				}
			case "Reason":
				if t := firstChildNS(c, ns, "Text"); t != nil {
					f.Reason = t.TextContent()
				}
			case "Detail":
				f.Details = parseDetails(c)
			}
		}
	} else {
		for _, c := range p.ChildElements() {
			switch c.LocalName() {
			case "faultcode":
				f.Code = localPart(c.TextContent())
			case "faultstring":
				f.Reason = c.TextContent()
			case "detail":
				f.Details = parseDetails(c)
			}
		}
	}
	return f, true
}

func parseDetails(detail *dom.Element) []Detail {
	var out []Detail
	for _, vs := range detail.ChildElements() {
		if vs.NamespaceURI() != DetailNamespace || vs.LocalName() != "violations" {
			continue
		}
		for _, v := range vs.ChildElements() {
			if v.NamespaceURI() != DetailNamespace || v.LocalName() != "violation" {
				continue
			}
			d := Detail{Path: v.GetAttribute("path"), Msg: v.TextContent()}
			d.Line, _ = strconv.Atoi(v.GetAttribute("line"))
			d.Col, _ = strconv.Atoi(v.GetAttribute("col"))
			out = append(out, d)
		}
	}
	return out
}

func firstChildNS(e *dom.Element, ns, local string) *dom.Element {
	for _, c := range e.ChildElements() {
		if c.NamespaceURI() == ns && c.LocalName() == local {
			return c
		}
	}
	return nil
}

// localPart strips any prefix from a lexical QName value.
func localPart(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			return s[i+1:]
		}
	}
	return s
}
