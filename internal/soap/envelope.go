package soap

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/dom"
	"repro/internal/xmlparser"
)

// Envelope namespaces per SOAP version.
const (
	Envelope11 = "http://schemas.xmlsoap.org/soap/envelope/"
	Envelope12 = "http://www.w3.org/2003/05/soap-envelope"
)

// Content types per SOAP version (1.1 rides text/xml, 1.2 has its own).
const (
	ContentType11 = "text/xml; charset=utf-8"
	ContentType12 = "application/soap+xml; charset=utf-8"
)

// versionNS returns the envelope namespace for a version number.
func versionNS(version int) string {
	if version == 12 {
		return Envelope12
	}
	return Envelope11
}

// ContentType returns the response content type for a version number.
func ContentType(version int) string {
	if version == 12 {
		return ContentType12
	}
	return ContentType11
}

// Envelope is a structurally parsed SOAP message.
type Envelope struct {
	// Version is 11 or 12, from the envelope namespace.
	Version int
	// Header entries in document order (nil when there is no Header).
	Header []*dom.Element
	// Body is the soap:Body element.
	Body *dom.Element
	// Payload is the single element child of Body — the document/literal
	// body. Nil for an empty body.
	Payload *dom.Element
}

// ParseEnvelope checks the SOAP structural rules and returns either the
// parsed envelope or the Fault to answer with. It never returns both.
//
// Structural rules enforced: the root is soap:Envelope in a known version
// namespace; its element children are an optional Header followed by
// exactly one Body and nothing else; the Body has at most one element
// child (document/literal single-part bodies); no header entry demands
// mustUnderstand (this layer understands none).
func ParseEnvelope(src []byte) (*Envelope, *Fault) {
	doc, err := dom.Parse(src)
	if err != nil {
		f := &Fault{Code: CodeClient, Reason: "malformed envelope: " + err.Error()}
		var se *xmlparser.SyntaxError
		if errors.As(err, &se) {
			f.Details = []Detail{{Msg: se.Msg, Line: se.Pos.Line, Col: se.Pos.Col}}
		}
		return nil, f
	}
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != "Envelope" {
		return nil, &Fault{Code: CodeClient, Reason: "request is not a SOAP envelope"}
	}
	env := &Envelope{}
	switch root.NamespaceURI() {
	case Envelope11:
		env.Version = 11
	case Envelope12:
		env.Version = 12
	default:
		return nil, &Fault{Code: CodeVersionMismatch,
			Reason: fmt.Sprintf("unsupported envelope namespace %q", root.NamespaceURI())}
	}
	ns := versionNS(env.Version)
	for _, c := range root.ChildElements() {
		switch {
		case c.NamespaceURI() == ns && c.LocalName() == "Header":
			if env.Body != nil || env.Header != nil {
				return nil, env.fault(CodeClient, "Header must be the first and only header child of Envelope")
			}
			env.Header = c.ChildElements()
			if env.Header == nil {
				env.Header = []*dom.Element{}
			}
		case c.NamespaceURI() == ns && c.LocalName() == "Body":
			if env.Body != nil {
				return nil, env.fault(CodeClient, "multiple Body elements")
			}
			env.Body = c
		default:
			return nil, env.fault(CodeClient,
				fmt.Sprintf("unexpected element <%s> in Envelope", c.TagName()))
		}
	}
	if env.Body == nil {
		return nil, env.fault(CodeClient, "envelope has no Body")
	}
	for _, h := range env.Header {
		mu := h.GetAttributeNS(ns, "mustUnderstand")
		if mu == "1" || mu == "true" {
			return nil, env.fault(CodeMustUnderstand,
				fmt.Sprintf("header <%s> requires mustUnderstand, which this service does not implement", h.TagName()))
		}
	}
	bodyKids := env.Body.ChildElements()
	if len(bodyKids) > 1 {
		return nil, env.fault(CodeClient,
			fmt.Sprintf("Body has %d element children; document/literal messages carry exactly one", len(bodyKids)))
	}
	if len(bodyKids) == 1 {
		env.Payload = bodyKids[0]
	}
	return env, nil
}

// fault builds a Fault in this envelope's SOAP version.
func (e *Envelope) fault(code, reason string) *Fault {
	return &Fault{Version: e.Version, Code: code, Reason: reason}
}

// WrapPayload frames an already-serialized body payload in an envelope of
// the given version. An empty payload produces an empty Body (the
// response to a one-way operation).
func WrapPayload(version int, payload []byte) []byte {
	ns := versionNS(version)
	var b bytes.Buffer
	b.Grow(len(payload) + 128)
	b.WriteString(`<env:Envelope xmlns:env="`)
	b.WriteString(ns)
	b.WriteString(`"><env:Body>`)
	b.Write(payload)
	b.WriteString(`</env:Body></env:Envelope>`)
	return b.Bytes()
}
