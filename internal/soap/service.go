package soap

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bind"
	"repro/internal/validator"
	"repro/internal/wsdl"
	"repro/internal/xsd"
)

// Handler implements one operation: a schema-valid request value in, a
// response value out. Returning a *Fault answers with exactly that fault;
// any other error becomes a Server fault whose reason is the error text.
// One-way operations return (nil, nil).
type Handler func(ctx context.Context, req *bind.Value) (*bind.Value, error)

// operation is one dispatchable operation.
type operation struct {
	def     *wsdl.Operation
	inDecl  *xsd.ElementDecl
	handler Handler
}

// Service dispatches SOAP envelopes for one wsdl:service: it owns the
// service's compiled schema, validator and binder, and routes requests by
// their body root element.
type Service struct {
	name    string
	defs    *wsdl.Definitions
	binder  *bind.Binder
	val     *validator.Validator
	byInput map[xsd.QName]*operation
	byName  map[string]*operation
}

// NewService builds the dispatch table for the named wsdl:service,
// merging the operations of all its ports. Two operations may not claim
// the same input element — the body root is the dispatch key.
func NewService(d *wsdl.Definitions, serviceName string) (*Service, error) {
	w, ok := d.Service(serviceName)
	if !ok {
		return nil, fmt.Errorf("soap: wsdl defines no service %q", serviceName)
	}
	if d.Schema == nil {
		return nil, fmt.Errorf("soap: service %q has no <types> schema to validate against", serviceName)
	}
	val := validator.New(d.Schema, nil)
	s := &Service{
		name:    serviceName,
		defs:    d,
		val:     val,
		binder:  bind.New(d.Schema, val),
		byInput: map[xsd.QName]*operation{},
		byName:  map[string]*operation{},
	}
	for _, port := range w.Ports {
		for _, def := range port.Operations {
			if prev, ok := s.byName[def.Name]; ok {
				if prev.def.Input != def.Input || prev.def.Output != def.Output {
					return nil, fmt.Errorf("soap: operation %q bound twice with different messages", def.Name)
				}
				continue // same operation through another port
			}
			if prev, ok := s.byInput[def.Input]; ok {
				return nil, fmt.Errorf("soap: operations %q and %q share input element %s; the body root must identify one operation",
					prev.def.Name, def.Name, def.Input)
			}
			decl, ok := d.Schema.LookupElement(def.Input)
			if !ok {
				return nil, fmt.Errorf("soap: input element %s of operation %q is not declared", def.Input, def.Name)
			}
			op := &operation{def: def, inDecl: decl}
			s.byInput[def.Input] = op
			s.byName[def.Name] = op
		}
	}
	return s, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// WSDL returns the service description document as parsed.
func (s *Service) WSDL() []byte { return s.defs.Source }

// Binder exposes the service's binder so generated stubs build values
// against the same plan and warm validator cache.
func (s *Service) Binder() *bind.Binder { return s.binder }

// Operations lists operation names in sorted order.
func (s *Service) Operations() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Register installs the handler for an operation.
func (s *Service) Register(opName string, h Handler) error {
	op, ok := s.byName[opName]
	if !ok {
		return fmt.Errorf("soap: service %q has no operation %q", s.name, opName)
	}
	op.handler = h
	return nil
}

// Response is a rendered SOAP response: body bytes plus the HTTP framing
// the transport should use.
type Response struct {
	Body        []byte
	ContentType string
	Status      int
	// Operation is the dispatched operation name ("" when dispatch never
	// reached one).
	Operation string
	// Faulted reports whether Body carries a Fault.
	Faulted bool
}

// respond renders a fault response.
func respondFault(f *Fault, opName string) *Response {
	return &Response{
		Body:        f.Envelope(),
		ContentType: ContentType(f.Version),
		Status:      f.HTTPStatus(),
		Operation:   opName,
		Faulted:     true,
	}
}

// Handle processes one request envelope end to end: structural envelope
// checks, dispatch on the body root element, schema validation of the
// payload, typed decode, the handler, and the schema-validated response.
// soapAction is the request's SOAPAction header value (quotes already
// present are tolerated), used as a cross-check, never as the primary
// dispatch key. Every outcome is a well-formed SOAP response.
func (s *Service) Handle(ctx context.Context, req []byte, soapAction string) *Response {
	env, fault := ParseEnvelope(req)
	if fault != nil {
		return respondFault(fault, "")
	}
	if env.Payload == nil {
		return respondFault(env.fault(CodeClient, "Body is empty; expected one operation element"), "")
	}
	name := xsd.QName{Space: env.Payload.NamespaceURI(), Local: env.Payload.LocalName()}
	op, ok := s.byInput[name]
	if !ok {
		return respondFault(env.fault(CodeClient,
			fmt.Sprintf("no operation of service %q accepts body element %s", s.name, name)), "")
	}
	opName := op.def.Name
	if a := trimAction(soapAction); a != "" && op.def.SOAPAction != "" && a != op.def.SOAPAction {
		return respondFault(env.fault(CodeClient,
			fmt.Sprintf("SOAPAction %q does not match operation %q (%s)", a, opName, op.def.SOAPAction)), opName)
	}
	if res := s.val.ValidateElement(env.Payload, op.inDecl); !res.OK() {
		return respondFault(ViolationFault(env.Version, "request body", res.Violations), opName)
	}
	if op.handler == nil {
		f := env.fault(CodeServer, fmt.Sprintf("operation %q is not implemented by this endpoint", opName))
		r := respondFault(f, opName)
		r.Status = 501 // distinguishable from a handler crash
		return r
	}
	reqVal, err := s.binder.DecodeElement(env.Payload, op.inDecl, false)
	if err != nil {
		// Validation passed, so a decode failure is ours, not the caller's.
		return respondFault(env.fault(CodeServer, "decoding request: "+err.Error()), opName)
	}
	respVal, err := op.handler(ctx, reqVal)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			if f.Version == 0 {
				f.Version = env.Version
			}
			return respondFault(f, opName)
		}
		return respondFault(env.fault(CodeServer, err.Error()), opName)
	}
	if op.def.OneWay() {
		if respVal != nil {
			return respondFault(env.fault(CodeServer,
				fmt.Sprintf("operation %q is one-way but its handler produced a response", opName)), opName)
		}
		return &Response{
			Body:        WrapPayload(env.Version, nil),
			ContentType: ContentType(env.Version),
			Status:      200,
			Operation:   opName,
		}
	}
	if respVal == nil {
		return respondFault(env.fault(CodeServer,
			fmt.Sprintf("operation %q produced no response", opName)), opName)
	}
	if respVal.Name != op.def.Output {
		return respondFault(env.fault(CodeServer,
			fmt.Sprintf("operation %q response element is %s, want %s", opName, respVal.Name, op.def.Output)), opName)
	}
	payload, err := s.binder.Marshal(respVal)
	if err != nil {
		// Marshal re-validates: a handler that builds an invalid response
		// faults here instead of emitting an invalid envelope.
		return respondFault(env.fault(CodeServer, "response is not schema-valid: "+err.Error()), opName)
	}
	return &Response{
		Body:        WrapPayload(env.Version, payload),
		ContentType: ContentType(env.Version),
		Status:      200,
		Operation:   opName,
	}
}

// trimAction strips the quotes SOAPAction values legally carry.
func trimAction(a string) string {
	if len(a) >= 2 && a[0] == '"' && a[len(a)-1] == '"' {
		a = a[1 : len(a)-1]
	}
	return a
}
