package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/bind"
	"repro/internal/dom"
	"repro/internal/wsdl"
	"repro/internal/xsd"
)

// Client calls a SOAP service's operations over HTTP. Requests are
// marshaled through the service schema's binder — which re-validates —
// before they leave, and response bodies are validated on arrival, so a
// Client neither sends nor accepts a schema-invalid payload. Generated
// stubs wrap Call with one typed method per operation.
type Client struct {
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client

	endpoint string
	version  int
	binder   *bind.Binder
	schema   *xsd.Schema
	byName   map[string]*wsdl.Operation
}

// maxResponseBytes bounds how much of a response body a client reads.
const maxResponseBytes = 64 << 20

// NewClient builds a client for the named wsdl:service, talking to
// endpoint. The SOAP version follows the service's first port.
func NewClient(d *wsdl.Definitions, serviceName, endpoint string) (*Client, error) {
	w, ok := d.Service(serviceName)
	if !ok {
		return nil, fmt.Errorf("soap: wsdl defines no service %q", serviceName)
	}
	if d.Schema == nil {
		return nil, fmt.Errorf("soap: service %q has no <types> schema", serviceName)
	}
	c := &Client{
		endpoint: endpoint,
		version:  11,
		binder:   bind.New(d.Schema, nil),
		schema:   d.Schema,
		byName:   map[string]*wsdl.Operation{},
	}
	for _, port := range w.Ports {
		for _, op := range port.Operations {
			if _, ok := c.byName[op.Name]; !ok {
				c.byName[op.Name] = op
			}
		}
	}
	if len(w.Ports) > 0 {
		c.version = w.Ports[0].SOAPVersion
	}
	return c, nil
}

// Binder returns the client's binder, for building request values.
func (c *Client) Binder() *bind.Binder { return c.binder }

// Call invokes one operation: req must be the operation's input element.
// For a two-way operation the decoded, validated response value is
// returned; for a one-way operation the response value is nil. A SOAP
// fault answer is returned as a *Fault error.
func (c *Client) Call(ctx context.Context, opName string, req *bind.Value) (*bind.Value, error) {
	op, ok := c.byName[opName]
	if !ok {
		return nil, fmt.Errorf("soap: client has no operation %q", opName)
	}
	if req == nil {
		return nil, fmt.Errorf("soap: operation %q requires a request value", opName)
	}
	if req.Name != op.Input {
		return nil, fmt.Errorf("soap: operation %q takes element %s, not %s", opName, op.Input, req.Name)
	}
	payload, err := c.binder.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("soap: request for %q: %w", opName, err)
	}
	body := WrapPayload(c.version, payload)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", ContentType(c.version))
	if c.version == 11 {
		// SOAP 1.1 requires the header even when empty.
		hreq.Header.Set("SOAPAction", `"`+op.SOAPAction+`"`)
	} else if op.SOAPAction != "" {
		hreq.Header.Set("Content-Type", ContentType12+`; action="`+op.SOAPAction+`"`)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hres, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("soap: reading response for %q: %w", opName, err)
	}
	env, fault := ParseEnvelope(data)
	if fault != nil {
		return nil, fmt.Errorf("soap: response to %q (HTTP %d) is not a SOAP envelope: %s", opName, hres.StatusCode, fault.Reason)
	}
	if f, ok := ParseFault(env); ok {
		return nil, f
	}
	if op.OneWay() {
		if env.Payload != nil {
			return nil, fmt.Errorf("soap: one-way operation %q answered with a body element <%s>", opName, env.Payload.TagName())
		}
		return nil, nil
	}
	if env.Payload == nil {
		return nil, fmt.Errorf("soap: response to %q has an empty body", opName)
	}
	got := xsd.QName{Space: env.Payload.NamespaceURI(), Local: env.Payload.LocalName()}
	if got != op.Output {
		return nil, fmt.Errorf("soap: response to %q is %s, want %s", opName, got, op.Output)
	}
	decl, ok := c.schema.LookupElement(op.Output)
	if !ok {
		return nil, fmt.Errorf("soap: response element %s is not declared", op.Output)
	}
	// Validate the payload in place before decoding: the response must be
	// schema-valid even when the far side is not this package's server.
	dom.DeclareInScopeNamespaces(env.Payload)
	if res := c.binder.Validator().ValidateElement(env.Payload, decl); !res.OK() {
		return nil, fmt.Errorf("soap: response to %q is not schema-valid: %w", opName, res.Err())
	}
	v, err := c.binder.DecodeElement(env.Payload, decl, false)
	if err != nil {
		return nil, fmt.Errorf("soap: decoding response to %q: %w", opName, err)
	}
	return v, nil
}
