// Package soap frames document/literal payloads in SOAP 1.1 and 1.2
// envelopes and dispatches them to typed operation handlers.
//
// The layer is deliberately thin: an Envelope is parsed structurally
// (Envelope → optional Header → Body → one payload element), the payload
// element is validated in place against the operation's schema
// declaration, and only then decoded through internal/bind into the typed
// value a handler receives. Responses travel the reverse path — the
// handler's value is marshaled through the binder, which re-validates, so
// an envelope this package emits carries a schema-valid body by
// construction.
//
// Every failure mode maps to a SOAP Fault, never a bare transport error:
// malformed XML becomes a Client/Sender fault whose detail carries the
// parser's line and column, schema violations become one detail entry per
// violation with the validator's XPath-like location, an unknown body
// element or mustUnderstand header faults with the matching standard
// code. The fault speaks the same SOAP version as the request (1.1 when
// the request was too broken to tell).
package soap
