package soap

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/dom"
	"repro/internal/wsdl"
)

// calcWSDL mirrors the wsdl package's fixture: Add (request/response) and
// Ping (one-way), bodies in urn:calc.
const calcWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="Calc" targetNamespace="urn:calc:svc"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:tns="urn:calc:svc"
    xmlns:c="urn:calc">
  <wsdl:types>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               targetNamespace="urn:calc" elementFormDefault="qualified">
      <xs:element name="AddRequest">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="a" type="xs:int"/>
            <xs:element name="b" type="xs:int"/>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="AddResponse">
        <xs:complexType>
          <xs:sequence><xs:element name="sum" type="xs:int"/></xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="Ping" type="xs:string"/>
    </xs:schema>
  </wsdl:types>
  <wsdl:message name="AddIn"><wsdl:part name="body" element="c:AddRequest"/></wsdl:message>
  <wsdl:message name="AddOut"><wsdl:part name="body" element="c:AddResponse"/></wsdl:message>
  <wsdl:message name="PingIn"><wsdl:part name="body" element="c:Ping"/></wsdl:message>
  <wsdl:portType name="CalcPort">
    <wsdl:operation name="Add">
      <wsdl:input message="tns:AddIn"/>
      <wsdl:output message="tns:AddOut"/>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input message="tns:PingIn"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="CalcBinding" type="tns:CalcPort">
    <soap:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="Add">
      <soap:operation soapAction="urn:calc:add"/>
      <wsdl:input><soap:body use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input><soap:body use="literal"/></wsdl:input>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="Calc">
    <wsdl:port name="CalcSOAP" binding="tns:CalcBinding">
      <soap:address location="http://localhost/v1/soap/Calc"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

// newCalc builds the service with a real Add handler (sums the operands)
// and a Ping handler.
func newCalc(t testing.TB) *Service {
	t.Helper()
	d, err := wsdl.Parse([]byte(calcWSDL), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewService(d, "Calc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("Add", func(_ context.Context, req *bind.Value) (*bind.Value, error) {
		sum := 0
		for _, c := range req.Children {
			n, err := strconv.Atoi(c.Simple.String())
			if err != nil {
				return nil, err
			}
			sum += n
		}
		return s.Binder().FromJSON([]byte(fmt.Sprintf(`{"$element":"AddResponse","sum":%d}`, sum)))
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("Ping", func(_ context.Context, _ *bind.Value) (*bind.Value, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func env11(body string) string {
	return `<e:Envelope xmlns:e="` + Envelope11 + `"><e:Body>` + body + `</e:Body></e:Envelope>`
}

func env12(body string) string {
	return `<e:Envelope xmlns:e="` + Envelope12 + `"><e:Body>` + body + `</e:Body></e:Envelope>`
}

const addReq = `<c:AddRequest xmlns:c="urn:calc"><c:a>19</c:a><c:b>23</c:b></c:AddRequest>`

func TestRoundTripBothVersions(t *testing.T) {
	s := newCalc(t)
	for _, tc := range []struct {
		name    string
		req     string
		version int
	}{
		{"soap11", env11(addReq), 11},
		{"soap12", env12(addReq), 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := s.Handle(context.Background(), []byte(tc.req), "")
			if r.Status != 200 || r.Faulted {
				t.Fatalf("status %d faulted=%v body %s", r.Status, r.Faulted, r.Body)
			}
			if r.Operation != "Add" {
				t.Errorf("operation = %q", r.Operation)
			}
			if want := ContentType(tc.version); r.ContentType != want {
				t.Errorf("content type = %q, want %q", r.ContentType, want)
			}
			env, fault := ParseEnvelope(r.Body)
			if fault != nil {
				t.Fatalf("response does not parse: %v", fault)
			}
			if env.Version != tc.version {
				t.Errorf("response version = %d, want %d", env.Version, tc.version)
			}
			if env.Payload == nil || env.Payload.LocalName() != "AddResponse" {
				t.Fatalf("payload = %v", env.Payload)
			}
			if got := env.Payload.TextContent(); got != "42" {
				t.Errorf("sum = %q, want 42", got)
			}
		})
	}
}

func TestOneWay(t *testing.T) {
	s := newCalc(t)
	r := s.Handle(context.Background(), []byte(env11(`<c:Ping xmlns:c="urn:calc">hi</c:Ping>`)), "")
	if r.Status != 200 || r.Faulted || r.Operation != "Ping" {
		t.Fatalf("status %d faulted=%v op %q: %s", r.Status, r.Faulted, r.Operation, r.Body)
	}
	env, fault := ParseEnvelope(r.Body)
	if fault != nil || env.Payload != nil {
		t.Fatalf("one-way response should have an empty body: %v %v", fault, env)
	}
}

// TestFaultTable drives every failure mode through Handle and checks the
// fault code, HTTP status and details. No case may produce a 500 (the
// only 500s come from handler failures, covered separately).
func TestFaultTable(t *testing.T) {
	s := newCalc(t)
	mu11 := `<e:Envelope xmlns:e="` + Envelope11 + `"><e:Header><h:tx xmlns:h="urn:h" e:mustUnderstand="1"/></e:Header><e:Body>` + addReq + `</e:Body></e:Envelope>`
	mu12 := `<e:Envelope xmlns:e="` + Envelope12 + `"><e:Header><h:tx xmlns:h="urn:h" e:mustUnderstand="true"/></e:Header><e:Body>` + addReq + `</e:Body></e:Envelope>`
	cases := []struct {
		name       string
		req        string
		action     string
		wantStatus int
		wantCode   string // as rendered: 1.1 names for v11, 1.2 names for v12
		reason     string
	}{
		{"malformed xml", `<e:Envelope xmlns:e="` + Envelope11 + `"><unclosed`, "", 400, "Client", "malformed envelope"},
		{"not an envelope", `<root/>`, "", 400, "Client", "not a SOAP envelope"},
		{"unknown envelope ns", `<e:Envelope xmlns:e="urn:soap13"><e:Body/></e:Envelope>`, "", 400, "VersionMismatch", "unsupported envelope namespace"},
		{"no body", `<e:Envelope xmlns:e="` + Envelope11 + `"/>`, "", 400, "Client", "no Body"},
		{"empty body", env11(``), "", 400, "Client", "Body is empty"},
		{"two body children", env11(addReq + addReq), "", 400, "Client", "exactly one"},
		{"stray envelope child", `<e:Envelope xmlns:e="` + Envelope11 + `"><e:Body/><e:Extra/></e:Envelope>`, "", 400, "Client", "unexpected element"},
		{"unknown body root", env11(`<x:Nope xmlns:x="urn:calc"/>`), "", 400, "Client", "no operation"},
		{"mustUnderstand 1.1", mu11, "", 400, "MustUnderstand", "mustUnderstand"},
		{"mustUnderstand 1.2", mu12, "", 400, "MustUnderstand", "mustUnderstand"},
		{"schema violation", env11(`<c:AddRequest xmlns:c="urn:calc"><c:a>x</c:a><c:b>2</c:b></c:AddRequest>`), "", 400, "Client", "not schema-valid"},
		{"xsi nil on non-nillable", env11(`<c:AddRequest xmlns:c="urn:calc" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:nil="true"/>`), "", 400, "Client", "not schema-valid"},
		{"soapaction mismatch", env11(addReq), `"urn:calc:subtract"`, 400, "Client", "SOAPAction"},
		{"schema violation 1.2", env12(`<c:AddRequest xmlns:c="urn:calc"><c:b>2</c:b></c:AddRequest>`), "", 400, "Sender", "not schema-valid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := s.Handle(context.Background(), []byte(tc.req), tc.action)
			if r.Status != tc.wantStatus {
				t.Errorf("status = %d, want %d\n%s", r.Status, tc.wantStatus, r.Body)
			}
			if !r.Faulted {
				t.Fatalf("want a fault, got %s", r.Body)
			}
			env, fault := ParseEnvelope(r.Body)
			if fault != nil {
				t.Fatalf("fault envelope does not parse: %v\n%s", fault, r.Body)
			}
			f, ok := ParseFault(env)
			if !ok {
				t.Fatalf("fault body is not a Fault: %s", r.Body)
			}
			if f.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", f.Code, tc.wantCode)
			}
			if !strings.Contains(f.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", f.Reason, tc.reason)
			}
		})
	}
}

// TestFaultDetails checks the structured detail entries: parse errors
// carry line/col, schema violations carry the validator's path.
func TestFaultDetails(t *testing.T) {
	s := newCalc(t)
	r := s.Handle(context.Background(), []byte("<e:Envelope xmlns:e=\""+Envelope11+"\">\n  <e:Body><broken</e:Body></e:Envelope>"), "")
	env, _ := ParseEnvelope(r.Body)
	f, _ := ParseFault(env)
	if len(f.Details) != 1 || f.Details[0].Line != 2 || f.Details[0].Col <= 0 {
		t.Errorf("parse-error detail = %+v, want line 2 with a column", f.Details)
	}

	r = s.Handle(context.Background(), []byte(env11(`<c:AddRequest xmlns:c="urn:calc"><c:a>x</c:a><c:b>99999999999</c:b></c:AddRequest>`)), "")
	env, _ = ParseEnvelope(r.Body)
	f, _ = ParseFault(env)
	if len(f.Details) != 2 {
		t.Fatalf("details = %+v, want one per violation", f.Details)
	}
	for _, d := range f.Details {
		if !strings.Contains(d.Path, "AddRequest") {
			t.Errorf("violation path %q does not locate the payload", d.Path)
		}
	}
}

// TestHeadersIgnoredUnlessMustUnderstand lets ordinary headers pass.
func TestHeadersIgnoredUnlessMustUnderstand(t *testing.T) {
	s := newCalc(t)
	req := `<e:Envelope xmlns:e="` + Envelope11 + `"><e:Header><h:trace xmlns:h="urn:h">abc</h:trace></e:Header><e:Body>` + addReq + `</e:Body></e:Envelope>`
	r := s.Handle(context.Background(), []byte(req), "")
	if r.Faulted {
		t.Fatalf("informational header faulted: %s", r.Body)
	}
}

func TestSOAPActionMatch(t *testing.T) {
	s := newCalc(t)
	r := s.Handle(context.Background(), []byte(env11(addReq)), `"urn:calc:add"`)
	if r.Faulted {
		t.Fatalf("matching quoted SOAPAction rejected: %s", r.Body)
	}
}

func TestHandlerFailures(t *testing.T) {
	d, err := wsdl.Parse([]byte(calcWSDL), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewService(d, "Calc")
	if err != nil {
		t.Fatal(err)
	}
	// Unregistered operation: a fault, 501, never a bare 500.
	r := s.Handle(context.Background(), []byte(env11(addReq)), "")
	if r.Status != 501 || !r.Faulted {
		t.Fatalf("unregistered op: status %d faulted %v", r.Status, r.Faulted)
	}
	env, _ := ParseEnvelope(r.Body)
	if f, ok := ParseFault(env); !ok || f.Code != "Server" {
		t.Fatalf("unregistered op fault = %+v", f)
	}

	// A handler error is a genuine Server fault, 500 with a Fault body.
	if err := s.Register("Add", func(context.Context, *bind.Value) (*bind.Value, error) {
		return nil, fmt.Errorf("database on fire")
	}); err != nil {
		t.Fatal(err)
	}
	r = s.Handle(context.Background(), []byte(env11(addReq)), "")
	if r.Status != 500 || !r.Faulted {
		t.Fatalf("handler error: status %d faulted %v", r.Status, r.Faulted)
	}
	env, _ = ParseEnvelope(r.Body)
	if f, ok := ParseFault(env); !ok || !strings.Contains(f.Reason, "database on fire") {
		t.Fatalf("fault = %+v", f)
	}

	// A handler may fault explicitly with full control.
	if err := s.Register("Add", func(context.Context, *bind.Value) (*bind.Value, error) {
		return nil, &Fault{Code: CodeClient, Reason: "quota exceeded"}
	}); err != nil {
		t.Fatal(err)
	}
	r = s.Handle(context.Background(), []byte(env12(addReq)), "")
	if r.Status != 400 {
		t.Fatalf("explicit fault status = %d", r.Status)
	}
	env, _ = ParseEnvelope(r.Body)
	if f, ok := ParseFault(env); !ok || f.Code != "Sender" || f.Version != 12 {
		t.Fatalf("explicit fault should inherit the request version: %+v", f)
	}

	// A handler returning an invalid value faults at Marshal, not emits.
	if err := s.Register("Add", func(context.Context, *bind.Value) (*bind.Value, error) {
		v, err := s.Binder().FromJSON([]byte(`{"$element":"AddResponse","sum":7}`))
		if err != nil {
			return nil, err
		}
		v.Children = nil // now missing the required sum child
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	r = s.Handle(context.Background(), []byte(env11(addReq)), "")
	if r.Status != 500 || !r.Faulted {
		t.Fatalf("invalid response escaped: status %d %s", r.Status, r.Body)
	}
	if !strings.Contains(string(r.Body), "not schema-valid") {
		t.Fatalf("marshal fault reason missing: %s", r.Body)
	}
}

// FuzzSOAPRoundTrip feeds arbitrary bytes through Handle: the response
// must always be a parseable SOAP envelope with a sane status, and a
// faulted response must carry a Fault element.
func FuzzSOAPRoundTrip(f *testing.F) {
	s := newCalc(f)
	f.Add([]byte(env11(addReq)))
	f.Add([]byte(env12(addReq)))
	f.Add([]byte(env11(`<c:Ping xmlns:c="urn:calc">x</c:Ping>`)))
	f.Add([]byte(env11(``)))
	f.Add([]byte(`<nope>`))
	f.Add([]byte(`<e:Envelope xmlns:e="` + Envelope11 + `"><e:Header><h:x xmlns:h="u" e:mustUnderstand="1"/></e:Header><e:Body/></e:Envelope>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := s.Handle(context.Background(), data, "")
		switch r.Status {
		case 200, 400, 500, 501:
		default:
			t.Fatalf("status %d", r.Status)
		}
		if _, err := dom.Parse(r.Body); err != nil {
			t.Fatalf("response is not well-formed: %v\n%s", err, r.Body)
		}
		env, fault := ParseEnvelope(r.Body)
		if fault != nil {
			t.Fatalf("response envelope rejected: %v\n%s", fault, r.Body)
		}
		if _, ok := ParseFault(env); ok != r.Faulted {
			t.Fatalf("Faulted=%v but ParseFault=%v\n%s", r.Faulted, ok, r.Body)
		}
	})
}
