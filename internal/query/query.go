package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// Query is a compiled, schema-checked path expression.
type Query struct {
	schema *xsd.Schema
	root   *xsd.ElementDecl
	steps  []step
	// resultDecl is the element declaration results conform to (nil when
	// the query ends on an attribute or a wildcard step).
	resultDecl *xsd.ElementDecl
	// resultAttr is the attribute type of an @attr query (nil otherwise).
	resultAttr *xsd.AttributeDecl
	src        string
}

// step is one path step.
type step struct {
	// local is the element name test; "*" matches any element.
	local string
	// descendant marks a '//' step (search the whole subtree).
	descendant bool
	// attr is the trailing attribute name ("" for element steps).
	attr string
	// pred is the optional predicate.
	pred *predicate
}

// predicate is [n] or [@name='value'].
type predicate struct {
	index int // 1-based; 0 when unset
	attr  string
	value string
}

// Compile parses the path and statically checks it against the schema,
// starting from the named global root element.
func Compile(schema *xsd.Schema, path string) (*Query, error) {
	steps, rootName, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	root, ok := schema.LookupElement(xsd.QName{Local: rootName})
	if !ok {
		// Try any target namespace match by local name.
		for q, d := range schema.Elements {
			if q.Local == rootName {
				root, ok = d, true
				break
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("query: no global element %q in the schema", rootName)
	}
	q := &Query{schema: schema, root: root, steps: steps, src: path}
	if err := q.typeCheck(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustCompile panics on a compile error.
func MustCompile(schema *xsd.Schema, path string) *Query {
	q, err := Compile(schema, path)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the source path.
func (q *Query) String() string { return q.src }

// ResultElement returns the element declaration every result conforms to
// (nil for attribute queries and wildcard tails).
func (q *Query) ResultElement() *xsd.ElementDecl { return q.resultDecl }

// ResultAttribute returns the attribute declaration of an @attr query.
func (q *Query) ResultAttribute() *xsd.AttributeDecl { return q.resultAttr }

// parsePath splits /root/step/...[@attr]; the leading step names the
// global root element.
func parsePath(path string) ([]step, string, error) {
	orig := path
	if !strings.HasPrefix(path, "/") {
		return nil, "", fmt.Errorf("query: path %q must start with '/'", orig)
	}
	var steps []step
	rest := path[1:]
	first := true
	rootName := ""
	for rest != "" {
		descendant := false
		if strings.HasPrefix(rest, "/") {
			descendant = true
			rest = rest[1:]
		}
		end := strings.IndexByte(rest, '/')
		var seg string
		if end < 0 {
			seg, rest = rest, ""
		} else {
			seg, rest = rest[:end], rest[end+1:]
		}
		if seg == "" {
			return nil, "", fmt.Errorf("query: empty step in %q", orig)
		}
		st := step{descendant: descendant}
		// Predicate.
		if i := strings.IndexByte(seg, '['); i >= 0 {
			if !strings.HasSuffix(seg, "]") {
				return nil, "", fmt.Errorf("query: unterminated predicate in %q", seg)
			}
			p, err := parsePredicate(seg[i+1 : len(seg)-1])
			if err != nil {
				return nil, "", err
			}
			st.pred = p
			seg = seg[:i]
		}
		if strings.HasPrefix(seg, "@") {
			if rest != "" {
				return nil, "", fmt.Errorf("query: attribute step must be last in %q", orig)
			}
			st.attr = seg[1:]
			if st.attr == "" {
				return nil, "", fmt.Errorf("query: empty attribute name in %q", orig)
			}
		} else {
			st.local = seg
		}
		if first {
			if st.descendant || st.attr != "" || st.local == "*" {
				return nil, "", fmt.Errorf("query: the first step must name a global root element")
			}
			rootName = st.local
			first = false
			// The root step is consumed, not stored.
			if st.pred != nil {
				return nil, "", fmt.Errorf("query: predicates are not supported on the root step")
			}
			continue
		}
		steps = append(steps, st)
	}
	if rootName == "" {
		return nil, "", fmt.Errorf("query: path %q names no root element", orig)
	}
	return steps, rootName, nil
}

// parsePredicate parses "3" or "@name='value'".
func parsePredicate(s string) (*predicate, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("query: positional predicate must be >= 1")
		}
		return &predicate{index: n}, nil
	}
	if strings.HasPrefix(s, "@") {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("query: predicate %q needs @name='value'", s)
		}
		name := strings.TrimSpace(s[1:eq])
		val := strings.TrimSpace(s[eq+1:])
		if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
			return nil, fmt.Errorf("query: predicate value in %q must be quoted", s)
		}
		return &predicate{attr: name, value: val[1 : len(val)-1]}, nil
	}
	return nil, fmt.Errorf("query: unsupported predicate %q", s)
}

// typeCheck walks the steps through the schema, rejecting steps the
// content models make impossible.
func (q *Query) typeCheck() error {
	// current is the set of element declarations a result may be
	// governed by at this point.
	current := []*xsd.ElementDecl{q.root}
	for si, st := range q.steps {
		if st.attr != "" {
			// Attribute step: at least one current decl must declare it.
			var attr *xsd.AttributeDecl
			for _, decl := range current {
				if ct, ok := decl.Type.(*xsd.ComplexType); ok {
					for _, use := range ct.AttributeUses {
						if use.Decl.Name.Local == st.attr {
							attr = use.Decl
						}
					}
				}
			}
			if attr == nil {
				return fmt.Errorf("query: step %d: attribute %q is not declared on %s", si+1, st.attr, declNames(current))
			}
			q.resultAttr = attr
			q.resultDecl = nil
			return nil
		}
		var next []*xsd.ElementDecl
		seen := map[*xsd.ElementDecl]bool{}
		add := func(d *xsd.ElementDecl) {
			if !seen[d] {
				seen[d] = true
				next = append(next, d)
			}
		}
		for _, decl := range current {
			for _, child := range q.childDecls(decl, st.descendant) {
				if st.local == "*" || child.Name.Local == st.local {
					add(child)
				}
			}
		}
		if len(next) == 0 {
			return fmt.Errorf("query: step %d: the schema allows no %q under %s", si+1, st.local, declNames(current))
		}
		// Predicate attribute must exist on at least one candidate.
		if st.pred != nil && st.pred.attr != "" {
			ok := false
			for _, decl := range next {
				if ct, isCT := decl.Type.(*xsd.ComplexType); isCT && findUse(ct, st.pred.attr) != nil {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("query: step %d: predicate attribute %q is not declared on %q", si+1, st.pred.attr, st.local)
			}
		}
		current = next
	}
	if len(current) == 1 {
		q.resultDecl = current[0]
	}
	return nil
}

func findUse(ct *xsd.ComplexType, local string) *xsd.AttributeUse {
	for _, use := range ct.AttributeUses {
		if use.Decl.Name.Local == local {
			return use
		}
	}
	return nil
}

// childDecls collects the element declarations reachable as children of
// decl (transitively when descendant is set).
func (q *Query) childDecls(decl *xsd.ElementDecl, descendant bool) []*xsd.ElementDecl {
	var out []*xsd.ElementDecl
	seen := map[*xsd.ElementDecl]bool{}
	var collect func(d *xsd.ElementDecl, deep bool)
	collect = func(d *xsd.ElementDecl, deep bool) {
		ct, ok := d.Type.(*xsd.ComplexType)
		if !ok || ct.Particle == nil {
			return
		}
		var walkParticle func(p *xsd.Particle)
		walkParticle = func(p *xsd.Particle) {
			switch {
			case p.Element != nil:
				child := p.Element
				if !seen[child] {
					seen[child] = true
					out = append(out, child)
					if deep {
						collect(child, true)
					}
				}
				for _, m := range q.schema.SubstitutionMembers(child.Name) {
					if !seen[m] {
						seen[m] = true
						out = append(out, m)
						if deep {
							collect(m, true)
						}
					}
				}
			case p.Group != nil:
				for _, c := range p.Group.Particles {
					walkParticle(c)
				}
			}
		}
		walkParticle(ct.Particle)
	}
	collect(decl, descendant)
	return out
}

func declNames(decls []*xsd.ElementDecl) string {
	var parts []string
	for _, d := range decls {
		parts = append(parts, "<"+d.Name.Local+">")
	}
	return strings.Join(parts, ", ")
}

// Evaluate runs the query over a document. The document's root must match
// the query's root declaration.
func (q *Query) Evaluate(doc *dom.Document) ([]*dom.Element, error) {
	root := doc.DocumentElement()
	if root == nil || root.LocalName() != q.root.Name.Local {
		return nil, fmt.Errorf("query: document root is not <%s>", q.root.Name.Local)
	}
	current := []*dom.Element{root}
	for _, st := range q.steps {
		if st.attr != "" {
			// Attribute steps are evaluated by EvaluateStrings.
			return nil, fmt.Errorf("query: %q selects attributes; use EvaluateStrings", q.src)
		}
		var next []*dom.Element
		for _, e := range current {
			if st.descendant {
				for _, c := range e.GetElementsByTagNameNS("*", st.local) {
					next = append(next, c)
				}
				if st.local == "*" {
					next = e.GetElementsByTagNameNS("*", "*")
				}
			} else {
				for _, c := range e.ChildElements() {
					if st.local == "*" || c.LocalName() == st.local {
						next = append(next, c)
					}
				}
			}
		}
		current = applyPredicate(next, st.pred)
	}
	return current, nil
}

// EvaluateStrings runs the query and returns string results: attribute
// values for @attr queries, text content otherwise.
func (q *Query) EvaluateStrings(doc *dom.Document) ([]string, error) {
	if q.resultAttr == nil {
		elems, err := q.Evaluate(doc)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(elems))
		for i, e := range elems {
			out[i] = e.TextContent()
		}
		return out, nil
	}
	// Evaluate the element prefix, then project the attribute.
	prefix := &Query{schema: q.schema, root: q.root, steps: q.steps[:len(q.steps)-1], src: q.src}
	elems, err := prefix.Evaluate(doc)
	if err != nil {
		return nil, err
	}
	attr := q.steps[len(q.steps)-1].attr
	var out []string
	for _, e := range elems {
		if e.HasAttribute(attr) {
			out = append(out, e.GetAttribute(attr))
		}
	}
	return out, nil
}

// applyPredicate filters a node set.
func applyPredicate(elems []*dom.Element, p *predicate) []*dom.Element {
	if p == nil {
		return elems
	}
	if p.index > 0 {
		if p.index <= len(elems) {
			return elems[p.index-1 : p.index]
		}
		return nil
	}
	var out []*dom.Element
	for _, e := range elems {
		if e.GetAttribute(p.attr) == p.value {
			out = append(out, e)
		}
	}
	return out
}
