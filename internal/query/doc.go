// Package query implements the paper's §8 future-work direction: a typed
// query facility where "a query which is applied to appropriate
// VDOM-objects can be guaranteed to result only in documents which are
// valid according to an underlying Xml schema."
//
// The query language is a path subset (child steps, '//' descendants, '*'
// wildcards, attribute access, positional and attribute-equality
// predicates). The point of the reproduction is not the language's size
// but its *static typing*: Compile checks every step against the schema's
// content models, so a query that could never select anything — a
// misspelled element, a child the schema does not allow there, an
// undeclared attribute — is rejected at compile time, before any document
// is seen. Compile also reports the static result type (the element
// declaration or attribute type every result will conform to).
//
// # Role in the pipeline
//
// query sits downstream of the pipeline's schema layers (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml): like pxml
// it consumes the resolved schema from package xsd to reject impossible
// paths statically, and it executes over package dom trees.
//
// # Concurrency
//
// A compiled query is immutable after Compile; one compiled query may be
// executed concurrently over different documents, provided no goroutine
// mutates a document mid-execution (execution only reads the tree).
// Compilation against a shared schema is likewise safe, since schema
// lookups are read-only.
package query
