package query

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/xsd"
)

func poSchema(t *testing.T) *xsd.Schema {
	t.Helper()
	s, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func poDoc(t *testing.T) *dom.Document {
	t.Helper()
	d, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStaticAcceptance: schema-possible paths compile; the result type is
// inferred.
func TestStaticAcceptance(t *testing.T) {
	s := poSchema(t)
	cases := []struct {
		path       string
		resultElem string // "" when attribute result
	}{
		{"/purchaseOrder/shipTo", "shipTo"},
		{"/purchaseOrder/shipTo/name", "name"},
		{"/purchaseOrder/items/item", "item"},
		{"/purchaseOrder/items/item/productName", "productName"},
		{"/purchaseOrder//productName", "productName"},
		{"/purchaseOrder/items/item/@partNum", ""},
		{"/purchaseOrder/*", ""}, // multiple candidate decls: no single type
		{"/purchaseOrder/comment", "comment"},
	}
	for _, c := range cases {
		q, err := Compile(s, c.path)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.path, err)
			continue
		}
		if c.resultElem != "" {
			if q.ResultElement() == nil || q.ResultElement().Name.Local != c.resultElem {
				t.Errorf("%q: result element %v, want %s", c.path, q.ResultElement(), c.resultElem)
			}
		}
		if strings.HasSuffix(c.path, "@partNum") {
			if q.ResultAttribute() == nil || q.ResultAttribute().Type.Name.Local != "SKU" {
				t.Errorf("%q: attribute result should be SKU-typed", c.path)
			}
		}
	}
}

// TestStaticRejection is the future-work claim: schema-impossible queries
// are compile-time errors.
func TestStaticRejection(t *testing.T) {
	s := poSchema(t)
	cases := []struct{ path, wantErr string }{
		{"/purchaseOrder/nayme", `no "nayme"`},
		{"/purchaseOrder/shipTo/zip/oops", `no "oops"`},
		{"/purchaseOrder/items/productName", `no "productName"`}, // productName is under item, not items
		{"/noSuchRoot/x", "no global element"},
		{"/purchaseOrder/shipTo/@country2", `"country2" is not declared`},
		{"/purchaseOrder/items/item[@bogus='1']", `"bogus" is not declared`},
		{"purchaseOrder/shipTo", "must start with"},
		{"/purchaseOrder/@attr/x", "must be last"},
	}
	for _, c := range cases {
		_, err := Compile(s, c.path)
		if err == nil {
			t.Errorf("Compile(%q): expected static rejection", c.path)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Compile(%q): error %q does not contain %q", c.path, err, c.wantErr)
		}
	}
}

func TestEvaluate(t *testing.T) {
	s := poSchema(t)
	doc := poDoc(t)

	names, err := MustCompile(s, "/purchaseOrder/shipTo/name").EvaluateStrings(doc)
	if err != nil || len(names) != 1 || names[0] != "Alice Smith" {
		t.Errorf("shipTo/name: %v, %v", names, err)
	}

	products, err := MustCompile(s, "/purchaseOrder//productName").EvaluateStrings(doc)
	if err != nil || len(products) != 2 || products[0] != "Lawnmower" {
		t.Errorf("descendant productName: %v, %v", products, err)
	}

	parts, err := MustCompile(s, "/purchaseOrder/items/item/@partNum").EvaluateStrings(doc)
	if err != nil || len(parts) != 2 || parts[1] != "926-AA" {
		t.Errorf("@partNum: %v, %v", parts, err)
	}

	items, err := MustCompile(s, "/purchaseOrder/items/item").Evaluate(doc)
	if err != nil || len(items) != 2 {
		t.Fatalf("items: %d, %v", len(items), err)
	}
}

func TestPredicates(t *testing.T) {
	s := poSchema(t)
	doc := poDoc(t)

	second, err := MustCompile(s, "/purchaseOrder/items/item[2]/productName").EvaluateStrings(doc)
	if err != nil || len(second) != 1 || second[0] != "Baby Monitor" {
		t.Errorf("item[2]: %v, %v", second, err)
	}

	byPart, err := MustCompile(s, "/purchaseOrder/items/item[@partNum='872-AA']/productName").EvaluateStrings(doc)
	if err != nil || len(byPart) != 1 || byPart[0] != "Lawnmower" {
		t.Errorf("item[@partNum]: %v, %v", byPart, err)
	}

	// An index past the end selects nothing (valid, empty).
	none, err := MustCompile(s, "/purchaseOrder/items/item[9]").Evaluate(doc)
	if err != nil || len(none) != 0 {
		t.Errorf("item[9]: %v, %v", none, err)
	}
}

func TestWrongDocumentRoot(t *testing.T) {
	s := poSchema(t)
	q := MustCompile(s, "/purchaseOrder/comment")
	doc, _ := dom.ParseString("<other/>")
	if _, err := q.Evaluate(doc); err == nil {
		t.Error("mismatched root should fail")
	}
}

// TestTypedResultGuarantee connects to the paper's claim: because the
// result type is static, consumers know the governing declaration without
// inspecting any instance.
func TestTypedResultGuarantee(t *testing.T) {
	s := poSchema(t)
	q := MustCompile(s, "/purchaseOrder/items/item/quantity")
	decl := q.ResultElement()
	if decl == nil {
		t.Fatal("quantity query should have a static element type")
	}
	st, ok := decl.Type.(*xsd.SimpleType)
	if !ok {
		t.Fatalf("quantity should be simple-typed, got %T", decl.Type)
	}
	// The statically-known facet: quantity < 100.
	if st.Validate("150") == nil {
		t.Error("static type lost the maxExclusive facet")
	}
}
