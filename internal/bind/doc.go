// Package bind is the schema-directed data-binding subsystem: it turns a
// compiled xsd.Schema into a binding plan and uses it to decode XML
// documents into typed Go values (and canonical JSON) in the same pass as
// validation, and to marshal those values back into schema-valid XML.
//
// The premise mirrors the paper's: an XML Schema carries enough static
// information to make document construction type-safe, and the same
// compiled artifacts — resolved declarations, content-model automata,
// simple-type value spaces — decide statically which children repeat
// (maxOccurs > 1 becomes a JSON array), which text is an integer or a
// date (xsdtypes decoders), which branch of a choice was taken, and where
// mixed content degrades to ordered segments.
//
// Two decode paths produce identical values:
//
//   - the DOM path re-uses validator.ValidateDocument and then walks the
//     tree, classifying children with the cached content-model matchers;
//   - the streaming path hooks validator.StreamValidator's frame
//     transitions (validator.StreamEvents), building the value tree in
//     O(depth) alongside the lazy-DFA stepping, with no DOM.
//
// Marshal is the reverse direction: a Value (decoded, or built from JSON
// via FromJSON) is serialized to XML and checked through the same content
// models, which yields the round-trip property decode∘marshal = id modulo
// canonicalization (attribute defaults materialized, lexical forms
// canonicalized, comments and insignificant whitespace dropped).
package bind
