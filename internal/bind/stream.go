package bind

// The streaming decode path: a validator.StreamEvents observer that builds
// the value tree during the streaming validation pass. Memory stays
// O(depth + output): the only retained state is the open-element value
// stack; simple values arrive already parsed from the validator's frames,
// so text is parsed exactly once per element across both consumers.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// DecodeReader validates a document from r through the streaming path and
// decodes it in the same pass. The Result is the full verdict; the Value
// is nil when the document is invalid. The error reports I/O-independent
// internal failures only (the verdict owns everything schema-related).
func (b *Binder) DecodeReader(ctx context.Context, r io.Reader) (*Value, *validator.Result, error) {
	sb := &streamBinder{b: b}
	res, err := b.sv.ValidateReaderEvents(ctx, r, sb)
	if err != nil {
		return nil, nil, err
	}
	return sb.finish(res)
}

// DecodeStreamBytes is DecodeReader over an in-memory document.
func (b *Binder) DecodeStreamBytes(src []byte) (*Value, *validator.Result, error) {
	sb := &streamBinder{b: b}
	res := b.sv.ValidateBytesEvents(src, sb)
	return sb.finish(res)
}

// streamBinder implements validator.StreamEvents.
type streamBinder struct {
	b     *Binder
	stack []*Value
	root  *Value
	err   error

	// Raw-fragment builder for skipped wildcard subtrees.
	rawDoc   *dom.Document
	rawRoot  *dom.Element
	rawCur   dom.Node
	rawDepth int
}

func (sb *streamBinder) finish(res *validator.Result) (*Value, *validator.Result, error) {
	if !res.OK() {
		return nil, res, nil
	}
	if sb.err != nil {
		return nil, res, sb.err
	}
	if sb.root == nil {
		return nil, res, fmt.Errorf("bind: stream decode produced no root value")
	}
	return sb.root, res, nil
}

func (sb *streamBinder) fail(err error) {
	if sb.err == nil {
		sb.err = err
	}
}

// OpenElement implements validator.StreamEvents.
func (sb *streamBinder) OpenElement(decl *xsd.ElementDecl, typ xsd.Type, tok *xmlparser.Token, nilled, wildcard bool) {
	v := &Value{Name: xsd.QName{Space: tok.Name.Space, Local: tok.Name.Local}, typ: typ, Wild: wildcard}
	if lex, _ := tok.Attr(xsd.XSINamespace, "type"); lex != "" {
		v.TypeName = typ.TypeName()
	}
	if ct, ok := typ.(*xsd.ComplexType); ok {
		v.Attrs = sb.b.typedAttrs(ct, tokRawAttrs(tok))
	}
	switch {
	case nilled:
		v.Kind = KindNil
	default:
		switch t := typ.(type) {
		case *xsd.SimpleType:
			v.Kind = KindSimple
		case *xsd.ComplexType:
			switch t.Kind {
			case xsd.ContentSimple:
				v.Kind = KindSimple
			case xsd.ContentEmpty:
				v.Kind = KindEmpty
			case xsd.ContentMixed:
				v.Kind = KindMixed
			default:
				v.Kind = KindStruct
			}
		}
	}
	sb.stack = append(sb.stack, v)
}

// CloseElement implements validator.StreamEvents.
func (sb *streamBinder) CloseElement(val *xsdtypes.Value) {
	n := len(sb.stack)
	if n == 0 {
		sb.fail(fmt.Errorf("bind: unbalanced CloseElement"))
		return
	}
	v := sb.stack[n-1]
	sb.stack = sb.stack[:n-1]
	if v.Kind == KindSimple && val != nil {
		v.Simple = *val
	}
	sb.attach(v)
}

// MixedText implements validator.StreamEvents.
func (sb *streamBinder) MixedText(data string) {
	if n := len(sb.stack); n > 0 && sb.stack[n-1].Kind == KindMixed {
		sb.stack[n-1].Segments = appendText(sb.stack[n-1].Segments, data)
	}
}

// RawToken implements validator.StreamEvents: rebuild the skipped subtree
// with the same token-to-node mapping the DOM parser uses, then serialize
// it, so both decode paths produce byte-identical raw fragments.
func (sb *streamBinder) RawToken(tok *xmlparser.Token) {
	switch tok.Kind {
	case xmlparser.KindStartElement:
		if sb.rawDepth == 0 {
			doc := dom.NewDocument()
			root := doc.CreateElementNS(tok.Name.Space, tok.Name.Qualified())
			copyTokAttrs(root, tok)
			_, _ = doc.AppendChild(root)
			sb.rawDoc, sb.rawRoot, sb.rawCur, sb.rawDepth = doc, root, root, 1
			return
		}
		e := sb.rawDoc.CreateElementNS(tok.Name.Space, tok.Name.Qualified())
		copyTokAttrs(e, tok)
		_, _ = sb.rawCur.AppendChild(e)
		sb.rawCur = e
		sb.rawDepth++
	case xmlparser.KindEndElement:
		if sb.rawDepth == 0 {
			return
		}
		if sb.rawDepth--; sb.rawDepth == 0 {
			name := xsd.QName{Space: sb.rawRoot.NamespaceURI(), Local: sb.rawRoot.LocalName()}
			sb.attach(&Value{Name: name, Kind: KindRaw, Wild: true, Raw: dom.ToString(sb.rawRoot)})
			sb.rawDoc, sb.rawRoot, sb.rawCur = nil, nil, nil
			return
		}
		sb.rawCur = sb.rawCur.ParentNode()
	case xmlparser.KindText:
		if tok.Data() == "" || sb.rawDepth == 0 {
			return
		}
		_, _ = sb.rawCur.AppendChild(sb.rawDoc.CreateTextNode(tok.Data()))
	case xmlparser.KindCData:
		if sb.rawDepth == 0 {
			return
		}
		_, _ = sb.rawCur.AppendChild(sb.rawDoc.CreateCDATASection(tok.Data()))
	case xmlparser.KindComment:
		if sb.rawDepth == 0 {
			return
		}
		_, _ = sb.rawCur.AppendChild(sb.rawDoc.CreateComment(tok.Data()))
	case xmlparser.KindProcInst:
		if sb.rawDepth == 0 {
			return
		}
		_, _ = sb.rawCur.AppendChild(sb.rawDoc.CreateProcessingInstruction(tok.Target, tok.Data()))
	}
}

// FallbackElement implements validator.StreamEvents: subtrees the
// streaming validator buffered (identity constraints, non-Glushkov
// models) decode through the DOM path before the pooled document is
// released.
func (sb *streamBinder) FallbackElement(decl *xsd.ElementDecl, root *dom.Element, wildcard bool) {
	v, err := sb.b.decodeElement(root, decl, wildcard)
	if err != nil {
		// Invalid subtree: the verdict carries it, the value is discarded.
		return
	}
	sb.attach(v)
}

// attach delivers a completed child to the innermost open element, or
// records the root.
func (sb *streamBinder) attach(v *Value) {
	if n := len(sb.stack); n > 0 {
		p := sb.stack[n-1]
		switch p.Kind {
		case KindMixed:
			p.Segments = append(p.Segments, Segment{Child: v})
		case KindStruct:
			p.Children = append(p.Children, v)
		}
		// Other parent kinds only occur on invalid documents; the value
		// is discarded with the verdict.
		return
	}
	if sb.root == nil {
		sb.root = v
	}
}

func tokRawAttrs(tok *xmlparser.Token) []rawAttr {
	var out []rawAttr
	for i := range tok.Attrs {
		a := &tok.Attrs[i]
		if isMetaSpace(a.Name.Space) {
			continue
		}
		out = append(out, rawAttr{name: xsd.QName{Space: a.Name.Space, Local: a.Name.Local}, value: a.Value})
	}
	return out
}

func copyTokAttrs(e *dom.Element, tok *xmlparser.Token) {
	for i := range tok.Attrs {
		a := &tok.Attrs[i]
		e.SetAttributeNS(a.Name.Space, a.Name.Qualified(), a.Value)
	}
}
