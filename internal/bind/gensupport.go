package bind

// Support surface for ahead-of-time generated binding code (the validator
// back end of internal/codegen). Generated packages build Value trees with
// specialized straight-line walks, but delegate cold paths — xsi:type
// substitutions, declarations pruned out of the generated code — to the
// generic decoder, and reuse the canonical serializer and mixed-content
// merge rule so their output is byte-identical to the interpreted path.

import (
	"repro/internal/dom"
	"repro/internal/xsd"
)

// SetType sets the effective governing type generated decoders record on
// the values they build (the generic decoder sets it internally).
func (v *Value) SetType(t xsd.Type) { v.typ = t }

// DecodeElement decodes one validated element governed by decl on the
// generic walk. wild marks wildcard-admitted elements (bound under
// "$any").
func (b *Binder) DecodeElement(el *dom.Element, decl *xsd.ElementDecl, wild bool) (*Value, error) {
	return b.decodeElement(el, decl, wild)
}

// AppendText adds character data to a mixed-content segment list with the
// canonical merge rule (adjacent text coalesced, empty runs dropped).
func AppendText(segs []Segment, data string) []Segment { return appendText(segs, data) }
