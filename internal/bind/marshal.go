package bind

// Value → XML. Marshal serializes a typed value tree and then runs the
// output back through the validator, so a Value that violates its content
// model (missing required field, wrong choice arm, bad scalar) is an
// explicit error rather than silently invalid XML. Namespaces are
// re-prefixed deterministically: the empty namespace stays unprefixed,
// xsi/xsd keep their conventional prefixes, and everything else is
// assigned ns1, ns2, … in first-seen document order, all declared on the
// root. Equal values therefore marshal to byte-equal documents.

import (
	"bytes"
	"fmt"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// Marshal serializes v as schema-valid XML. The result is re-parsed and
// re-validated; a tree the schema rejects yields an error carrying the
// first violation.
func (b *Binder) Marshal(v *Value) ([]byte, error) {
	if v == nil {
		return nil, fmt.Errorf("bind: cannot marshal a nil value")
	}
	out := Serialize(v)
	doc, err := dom.Parse(out)
	if err != nil {
		return nil, fmt.Errorf("bind: marshaled document does not parse: %w", err)
	}
	res := b.v.ValidateDocument(doc)
	if !res.OK() {
		viol := res.Violations[0]
		return nil, fmt.Errorf("bind: marshaled document is schema-invalid at %s: %s", viol.Path, viol.Msg)
	}
	return out, nil
}

// Serialize renders a value tree as deterministic XML without the
// re-parse/re-validate round trip. Generated binding packages use it as
// the serialization half of their specialized Marshal, pairing it with
// their own compiled validator instead of the interpreted one.
func Serialize(v *Value) []byte {
	ns := newNSTable()
	collectSpaces(v, ns)
	var buf bytes.Buffer
	writeXML(&buf, v, ns, true)
	return buf.Bytes()
}

// nsTable assigns stable prefixes to namespaces used in a value tree.
type nsTable struct {
	prefixes map[string]string
	order    []string // declaration order, excludes ""
	next     int
}

func newNSTable() *nsTable {
	return &nsTable{prefixes: map[string]string{"": ""}}
}

func (t *nsTable) add(space string) {
	if _, ok := t.prefixes[space]; ok {
		return
	}
	var pfx string
	switch space {
	case xsd.XSINamespace:
		pfx = "xsi"
	case xsd.XSDNamespace:
		pfx = "xsd"
	default:
		t.next++
		pfx = fmt.Sprintf("ns%d", t.next)
	}
	t.prefixes[space] = pfx
	t.order = append(t.order, space)
}

func (t *nsTable) qualify(name xsd.QName) string {
	if pfx := t.prefixes[name.Space]; pfx != "" {
		return pfx + ":" + name.Local
	}
	return name.Local
}

func collectSpaces(v *Value, ns *nsTable) {
	if v == nil || v.Kind == KindRaw {
		return
	}
	ns.add(v.Name.Space)
	if !v.TypeName.IsZero() || v.Kind == KindNil {
		ns.add(xsd.XSINamespace)
	}
	if !v.TypeName.IsZero() && v.TypeName.Space != "" {
		ns.add(v.TypeName.Space)
	}
	for _, a := range v.Attrs {
		if a.Name.Space != "" {
			ns.add(a.Name.Space)
		}
	}
	for _, c := range v.Children {
		collectSpaces(c, ns)
	}
	for _, s := range v.Segments {
		collectSpaces(s.Child, ns)
	}
}

func writeXML(w *bytes.Buffer, v *Value, ns *nsTable, root bool) {
	if v.Kind == KindRaw {
		// Raw wildcard fragments round-trip verbatim; they carry their own
		// namespace declarations from the source document.
		w.WriteString(v.Raw)
		return
	}
	tag := ns.qualify(v.Name)
	w.WriteByte('<')
	w.WriteString(tag)
	if root {
		for _, space := range ns.order {
			w.WriteString(` xmlns:`)
			w.WriteString(ns.prefixes[space])
			w.WriteString(`="`)
			w.WriteString(dom.EscapeAttr(space))
			w.WriteByte('"')
		}
	}
	if !v.TypeName.IsZero() {
		w.WriteString(` xsi:type="`)
		w.WriteString(dom.EscapeAttr(ns.qualify(v.TypeName)))
		w.WriteByte('"')
	}
	if v.Kind == KindNil {
		w.WriteString(` xsi:nil="true"`)
	}
	for _, a := range v.Attrs {
		w.WriteByte(' ')
		w.WriteString(ns.qualify(a.Name))
		w.WriteString(`="`)
		w.WriteString(dom.EscapeAttr(a.Value.String()))
		w.WriteByte('"')
	}
	switch v.Kind {
	case KindNil, KindEmpty:
		w.WriteString("/>")
	case KindSimple:
		lex := v.Simple.String()
		if lex == "" {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		w.WriteString(dom.EscapeText(lex))
		closeTag(w, tag)
	case KindStruct:
		if len(v.Children) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		for _, c := range v.Children {
			writeXML(w, c, ns, false)
		}
		closeTag(w, tag)
	case KindMixed:
		if len(v.Segments) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteByte('>')
		for _, s := range v.Segments {
			if s.Child != nil {
				writeXML(w, s.Child, ns, false)
			} else {
				w.WriteString(dom.EscapeText(s.Text))
			}
		}
		closeTag(w, tag)
	default:
		w.WriteString("/>")
	}
}

func closeTag(w *bytes.Buffer, tag string) {
	w.WriteString("</")
	w.WriteString(tag)
	w.WriteByte('>')
}
