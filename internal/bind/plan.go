package bind

import (
	"repro/internal/xsd"
)

// Plan is the schema's binding plan: one TypePlan per complex type,
// derived once from occurrence bounds, compositors and substitution
// groups. A Plan is immutable after construction and safe for concurrent
// use.
type Plan struct {
	schema *xsd.Schema
	types  map[*xsd.ComplexType]*TypePlan
}

// TypePlan is the binding view of one complex type's content model.
type TypePlan struct {
	// Fields lists the element fields in declaration order; this is the
	// JSON emission order.
	Fields []*FieldPlan
	// HasWildcard reports whether the model admits wildcard children
	// (they bind under the "$any" key).
	HasWildcard bool

	// byName maps every admissible instance name — the declared name and
	// every substitution-group member — to its field.
	byName map[xsd.QName]*FieldPlan
	// members maps each admissible instance name to the declaration that
	// governs it (the member itself for substitutions).
	members map[xsd.QName]*xsd.ElementDecl
}

// FieldPlan is one element field of a complex type.
type FieldPlan struct {
	// Key is the JSON object key (the declared element's local name,
	// expanded to "{space}local" on a collision).
	Key string
	// Decl is the declared element (the substitution-group head when the
	// field admits substitutes).
	Decl *xsd.ElementDecl
	// Plural marks fields whose effective maximum occurrence exceeds one
	// (directly, through an enclosing group, or by appearing at several
	// positions of the model); plural fields always bind as JSON arrays.
	Plural bool
	// Optional marks fields whose effective minimum occurrence is zero
	// (directly, through an enclosing group, or inside a choice).
	Optional bool
	// Choice is the 1-based identifier of the nearest enclosing choice
	// compositor, 0 outside any choice: fields sharing a Choice are
	// alternatives of a tagged union.
	Choice int
}

// NewPlan derives the binding plan for every complex type in the schema
// (global and anonymous).
func NewPlan(s *xsd.Schema) *Plan {
	p := &Plan{schema: s, types: map[*xsd.ComplexType]*TypePlan{}}
	for name, t := range s.Types {
		if name.Space == xsd.XSDNamespace {
			continue
		}
		if ct, ok := t.(*xsd.ComplexType); ok {
			p.add(ct)
		}
	}
	for _, t := range s.AnonymousTypes() {
		if ct, ok := t.(*xsd.ComplexType); ok {
			p.add(ct)
		}
	}
	return p
}

// For returns the type's plan, or nil for simple types and types outside
// the schema.
func (p *Plan) For(t xsd.Type) *TypePlan {
	ct, ok := t.(*xsd.ComplexType)
	if !ok {
		return nil
	}
	return p.types[ct]
}

// Field returns the field an instance element name binds to, or nil.
func (tp *TypePlan) Field(name xsd.QName) *FieldPlan { return tp.byName[name] }

// Member returns the declaration governing an instance element name.
func (tp *TypePlan) Member(name xsd.QName) *xsd.ElementDecl { return tp.members[name] }

// fieldByLocal finds the field and governing declaration for a bare local
// name (used when reconstructing values from JSON, where namespaces are
// not spelled out). Declared names win over substitution members.
func (tp *TypePlan) fieldByLocal(local string) (*FieldPlan, *xsd.ElementDecl) {
	for _, f := range tp.Fields {
		if f.Decl.Name.Local == local {
			return f, tp.members[f.Decl.Name]
		}
	}
	for name, decl := range tp.members {
		if name.Local == local {
			return tp.byName[name], decl
		}
	}
	return nil, nil
}

func (p *Plan) add(ct *xsd.ComplexType) *TypePlan {
	if tp, ok := p.types[ct]; ok {
		return tp
	}
	tp := &TypePlan{
		byName:  map[xsd.QName]*FieldPlan{},
		members: map[xsd.QName]*xsd.ElementDecl{},
	}
	p.types[ct] = tp
	if ct.Kind == xsd.ContentElementOnly || ct.Kind == xsd.ContentMixed {
		w := &planWalker{p: p, tp: tp}
		w.particle(ct.Particle, false, false, 0)
	}
	return tp
}

// planWalker derives fields from one content-model particle tree.
type planWalker struct {
	p       *Plan
	tp      *TypePlan
	nchoice int
}

func (w *planWalker) particle(pt *xsd.Particle, plural, optional bool, choice int) {
	if pt == nil {
		return
	}
	plural = plural || pt.Max == xsd.Unbounded || pt.Max > 1
	optional = optional || pt.Min == 0
	switch {
	case pt.Element != nil:
		w.element(pt.Element, plural, optional, choice)
	case pt.Wildcard != nil:
		w.tp.HasWildcard = true
	case pt.Group != nil:
		childChoice := choice
		childOptional := optional
		if pt.Group.Kind == xsd.Choice {
			w.nchoice++
			childChoice = w.nchoice
			// An arm of a multi-arm choice may always be absent (the
			// other arm was taken), whatever its own minOccurs says.
			if len(pt.Group.Particles) > 1 {
				childOptional = true
			}
		}
		for _, c := range pt.Group.Particles {
			w.particle(c, plural, childOptional, childChoice)
		}
	}
}

func (w *planWalker) element(decl *xsd.ElementDecl, plural, optional bool, choice int) {
	if f := w.tp.byName[decl.Name]; f != nil {
		// The same declaration at a second position: occurrences may
		// exceed one even if each position is singular.
		f.Plural = true
		return
	}
	key := decl.Name.Local
	for _, other := range w.tp.Fields {
		if other.Key == key {
			key = decl.Name.String()
			break
		}
	}
	f := &FieldPlan{Key: key, Decl: decl, Plural: plural, Optional: optional, Choice: choice}
	w.tp.Fields = append(w.tp.Fields, f)
	w.tp.byName[decl.Name] = f
	if !decl.Abstract {
		w.tp.members[decl.Name] = decl
	}
	if decl.Global {
		for _, m := range w.p.schema.SubstitutionMembers(decl.Name) {
			if m.Abstract {
				continue
			}
			w.tp.byName[m.Name] = f
			w.tp.members[m.Name] = m
		}
	}
}
