package bind

// Canonical JSON projection of decoded values. The mapping (DESIGN.md
// §12): attributes become "@name" keys, simple content "$value", plural
// fields are always arrays, choices surface as whichever field key is
// present, substitution members and mixed/any children carry an
// "$element" discriminator, xsi:nil becomes null, wildcard content binds
// under "$any" (raw fragments as "$raw" strings). Emission order is
// deterministic — plan order for fields, document order within a field —
// so equal values render byte-equal JSON.

import (
	"bytes"
	"encoding/json"
	"math"

	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// JSON renders a decoded value as canonical JSON.
func (b *Binder) JSON(v *Value) []byte {
	var buf bytes.Buffer
	b.writeJSON(&buf, v, true)
	return buf.Bytes()
}

// JSONIndent is JSON pretty-printed for humans (CLI output).
func (b *Binder) JSONIndent(v *Value) []byte {
	var out bytes.Buffer
	if err := json.Indent(&out, b.JSON(v), "", "  "); err != nil {
		return b.JSON(v)
	}
	return out.Bytes()
}

func writeJSONString(w *bytes.Buffer, s string) {
	enc, _ := json.Marshal(s)
	w.Write(enc)
}

// attrKey renders an attribute name as a JSON key: "@local", expanded
// with the namespace for qualified attributes.
func attrKey(name xsd.QName) string {
	if name.Space == "" {
		return "@" + name.Local
	}
	return "@" + name.String()
}

func (b *Binder) writeJSON(w *bytes.Buffer, v *Value, withElem bool) {
	if v == nil {
		w.WriteString("null")
		return
	}
	// Scalar and null shortcuts for undecorated field values.
	if !withElem && v.TypeName.IsZero() && len(v.Attrs) == 0 {
		switch v.Kind {
		case KindSimple:
			writeScalar(w, v.Simple)
			return
		case KindNil:
			w.WriteString("null")
			return
		}
	}
	w.WriteByte('{')
	first := true
	field := func(key string) {
		if !first {
			w.WriteByte(',')
		}
		first = false
		writeJSONString(w, key)
		w.WriteByte(':')
	}
	if withElem && !v.Name.IsZero() {
		field("$element")
		writeJSONString(w, v.Name.Local)
	}
	if !v.TypeName.IsZero() {
		field("$type")
		writeJSONString(w, v.TypeName.Local)
	}
	for _, a := range v.Attrs {
		field(attrKey(a.Name))
		writeScalar(w, a.Value)
	}
	switch v.Kind {
	case KindNil:
		field("$nil")
		w.WriteString("true")
	case KindSimple:
		field("$value")
		writeScalar(w, v.Simple)
	case KindRaw:
		field("$raw")
		writeJSONString(w, v.Raw)
	case KindMixed:
		field("$mixed")
		w.WriteByte('[')
		for i, s := range v.Segments {
			if i > 0 {
				w.WriteByte(',')
			}
			if s.Child == nil {
				writeJSONString(w, s.Text)
			} else {
				b.writeJSON(w, s.Child, true)
			}
		}
		w.WriteByte(']')
	case KindStruct:
		b.writeStructFields(w, v, field)
	}
	w.WriteByte('}')
}

// writeStructFields groups document-order children into plan-order fields.
func (b *Binder) writeStructFields(w *bytes.Buffer, v *Value, field func(string)) {
	tp := b.plan.For(v.typ)
	var any []*Value
	byField := map[*FieldPlan][]*Value{}
	for _, c := range v.Children {
		var f *FieldPlan
		if tp != nil && !c.Wild {
			f = tp.byName[c.Name]
		}
		if f == nil {
			any = append(any, c)
			continue
		}
		byField[f] = append(byField[f], c)
	}
	if tp != nil {
		for _, f := range tp.Fields {
			vals := byField[f]
			if len(vals) == 0 {
				continue
			}
			field(f.Key)
			if f.Plural || len(vals) > 1 {
				w.WriteByte('[')
				for i, c := range vals {
					if i > 0 {
						w.WriteByte(',')
					}
					b.writeJSON(w, c, c.Name != f.Decl.Name)
				}
				w.WriteByte(']')
			} else {
				b.writeJSON(w, vals[0], vals[0].Name != f.Decl.Name)
			}
		}
	}
	if len(any) > 0 {
		field("$any")
		w.WriteByte('[')
		for i, c := range any {
			if i > 0 {
				w.WriteByte(',')
			}
			b.writeJSON(w, c, c.Kind != KindRaw)
		}
		w.WriteByte(']')
	}
}

// writeScalar renders an xsdtypes value as a JSON scalar: booleans and
// finite numbers natively, lists as arrays, everything else (including
// INF/NaN, whose canonical lexical forms are not JSON numbers) as the
// canonical lexical string.
func writeScalar(w *bytes.Buffer, val xsdtypes.Value) {
	switch val.Kind {
	case xsdtypes.VBool:
		if val.Bool {
			w.WriteString("true")
		} else {
			w.WriteString("false")
		}
	case xsdtypes.VDecimal:
		w.WriteString(val.Dec.String())
	case xsdtypes.VFloat:
		if math.IsInf(val.F, 0) || math.IsNaN(val.F) {
			writeJSONString(w, val.String())
			return
		}
		w.WriteString(val.String())
	case xsdtypes.VList:
		w.WriteByte('[')
		for i, it := range val.Items {
			if i > 0 {
				w.WriteByte(',')
			}
			writeScalar(w, it)
		}
		w.WriteByte(']')
	default:
		writeJSONString(w, val.String())
	}
}
