package bind

// The DOM decode path: validate first (the verdict is authoritative), then
// walk the tree assuming validity. Child classification re-runs the cached
// content-model matcher once per element — the same automata the validator
// used — so wildcard admissions and substitution resolution agree with the
// verdict by construction.

import (
	"fmt"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// DecodeBytes parses, validates and decodes a document. An unparseable
// document yields the parse-error verdict (matching ValidateBytes); an
// invalid one yields its violations; in both cases the Value is nil.
func (b *Binder) DecodeBytes(src []byte) (*Value, *validator.Result) {
	doc, err := dom.Parse(src)
	if err != nil {
		return nil, &validator.Result{Violations: []validator.Violation{{Path: "/", Msg: err.Error()}}}
	}
	return b.DecodeDocument(doc)
}

// DecodeDocument validates the document and, when valid, decodes it into
// a typed Value. The returned Result is always the full verdict.
func (b *Binder) DecodeDocument(doc *dom.Document) (*Value, *validator.Result) {
	res := b.v.ValidateDocument(doc)
	if !res.OK() {
		return nil, res
	}
	root := doc.DocumentElement()
	if root == nil {
		return nil, res
	}
	decl, ok := b.schema.LookupElement(xsd.QName{Space: root.NamespaceURI(), Local: root.LocalName()})
	if !ok {
		return nil, res
	}
	v, err := b.decodeElement(root, decl, false)
	if err != nil {
		// Defensive: a document the validator accepted must decode; any
		// error here is a binder bug surfaced as a verdict.
		return nil, &validator.Result{Violations: []validator.Violation{{Path: "/", Msg: "bind: " + err.Error()}}}
	}
	return v, res
}

// decodeElement decodes one validated element governed by decl.
func (b *Binder) decodeElement(el *dom.Element, decl *xsd.ElementDecl, wild bool) (*Value, error) {
	v := &Value{Name: xsd.QName{Space: el.NamespaceURI(), Local: el.LocalName()}, Wild: wild}
	typ := decl.Type
	if lex := el.GetAttributeNS(xsd.XSINamespace, "type"); lex != "" {
		q, err := resolveQName(el, lex)
		if err != nil {
			return nil, err
		}
		t, ok := b.schema.LookupType(q)
		if !ok {
			return nil, fmt.Errorf("xsi:type %s names an unknown type", q)
		}
		typ = t
		v.TypeName = t.TypeName()
	}
	v.typ = typ
	ct, isComplex := typ.(*xsd.ComplexType)
	if isComplex {
		v.Attrs = b.typedAttrs(ct, domRawAttrs(el))
	}
	if lex := el.GetAttributeNS(xsd.XSINamespace, "nil"); lex == "true" || lex == "1" {
		v.Kind = KindNil
		return v, nil
	}
	if st, ok := typ.(*xsd.SimpleType); ok {
		text := el.TextContent()
		if text == "" && decl.Fixed != nil {
			text = *decl.Fixed
		}
		if text == "" && decl.Default != nil {
			text = *decl.Default
		}
		val, err := st.Parse(text)
		if err != nil {
			return nil, err
		}
		v.Kind = KindSimple
		v.Simple = val
		return v, nil
	}
	switch ct.Kind {
	case xsd.ContentSimple:
		val, err := ct.SimpleContentType.Parse(el.TextContent())
		if err != nil {
			return nil, err
		}
		v.Kind = KindSimple
		v.Simple = val
		return v, nil
	case xsd.ContentEmpty:
		v.Kind = KindEmpty
		return v, nil
	default:
		return v, b.decodeModel(v, el, ct)
	}
}

// decodeModel decodes element-only or mixed content by matching the child
// sequence against the type's content model.
func (b *Binder) decodeModel(v *Value, el *dom.Element, ct *xsd.ComplexType) error {
	kids := el.ChildNodes()
	var elems []*dom.Element
	var syms []contentmodel.Symbol
	for _, k := range kids {
		if e, ok := k.(*dom.Element); ok {
			elems = append(elems, e)
			syms = append(syms, contentmodel.Symbol{Space: e.NamespaceURI(), Local: e.LocalName()})
		}
	}
	leaves, merr := ct.Matcher(b.schema).Match(syms)
	if merr != nil {
		return fmt.Errorf("content model rejected validated children: %s", merr.Error())
	}
	vals := make([]*Value, len(elems))
	for i, e := range elems {
		name := xsd.QName{Space: syms[i].Space, Local: syms[i].Local}
		var cv *Value
		var err error
		switch data := leaves[i].Data.(type) {
		case *xsd.ElementDecl:
			resolved, rerr := b.schema.ResolveChild(data, name)
			if rerr != nil {
				return rerr
			}
			cv, err = b.decodeElement(e, resolved, false)
		case *contentmodel.Wildcard:
			if gdecl, ok := b.schema.LookupElement(name); ok {
				cv, err = b.decodeElement(e, gdecl, true)
			} else {
				cv = &Value{Name: name, Kind: KindRaw, Wild: true, Raw: dom.ToString(e)}
			}
		default:
			return fmt.Errorf("child %s matched no declaration or wildcard", name)
		}
		if err != nil {
			return err
		}
		vals[i] = cv
	}
	if ct.Kind == xsd.ContentMixed {
		v.Kind = KindMixed
		ei := 0
		for _, k := range kids {
			switch n := k.(type) {
			case *dom.Element:
				v.Segments = append(v.Segments, Segment{Child: vals[ei]})
				ei++
			case *dom.Text:
				v.Segments = appendText(v.Segments, n.Data)
			case *dom.CDATASection:
				v.Segments = appendText(v.Segments, n.Data)
			}
		}
		return nil
	}
	v.Kind = KindStruct
	v.Children = vals
	return nil
}

func domRawAttrs(el *dom.Element) []rawAttr {
	var out []rawAttr
	for _, a := range el.Attributes() {
		n := a.Name()
		if isMetaSpace(n.Space) {
			continue
		}
		out = append(out, rawAttr{name: xsd.QName{Space: n.Space, Local: n.Local}, value: a.Value()})
	}
	return out
}
