package bind

import (
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// Kind classifies a decoded value.
type Kind int

// Value kinds.
const (
	// KindStruct is element-only complex content: typed children in
	// document order.
	KindStruct Kind = iota
	// KindSimple is a simple-typed element or complex simple content: a
	// parsed xsdtypes value (plus attributes for the latter).
	KindSimple
	// KindMixed is mixed complex content: ordered text/element segments.
	KindMixed
	// KindEmpty is complex empty content.
	KindEmpty
	// KindNil is an xsi:nil="true" element.
	KindNil
	// KindRaw is a wildcard-admitted element with no governing
	// declaration: the subtree is kept as raw XML.
	KindRaw
)

// Attr is one decoded attribute: parsed into the declared type's value
// space, or kept as a string for wildcard-admitted attributes.
type Attr struct {
	Name  xsd.QName
	Value xsdtypes.Value
}

// Segment is one slice of mixed content: either Text or Child is set.
type Segment struct {
	Text  string
	Child *Value
}

// Value is one decoded element. It preserves document order (children,
// segments, attributes), so a decoded Value can be marshaled back to
// schema-valid XML.
type Value struct {
	// Name is the element's instance name (after substitution it is the
	// member's, not the head's).
	Name xsd.QName
	// TypeName is the explicit xsi:type override, zero when the declared
	// type governed.
	TypeName xsd.QName
	Kind     Kind
	// Wild marks elements admitted by a content-model wildcard rather
	// than a declaration; they bind under "$any".
	Wild bool

	Attrs    []Attr
	Simple   xsdtypes.Value // KindSimple
	Children []*Value       // KindStruct
	Segments []Segment      // KindMixed
	Raw      string         // KindRaw: serialized XML fragment

	typ xsd.Type // effective governing type (nil for KindRaw)
}

// Type returns the effective governing type (after xsi:type), nil for raw
// wildcard content.
func (v *Value) Type() xsd.Type { return v.typ }

// appendText adds character data to a segment list, merging adjacent text
// and dropping empty runs, so both decode paths canonicalize identically.
func appendText(segs []Segment, data string) []Segment {
	if data == "" {
		return segs
	}
	if n := len(segs); n > 0 && segs[n-1].Child == nil {
		segs[n-1].Text += data
		return segs
	}
	return append(segs, Segment{Text: data})
}
