package bind

// JSON → Value: the inverse of the canonical projection, used by the
// /v1/encode endpoint and the xsdbind CLI. A JSON object's key order is
// meaningless, so the child sequence is reconstructed by stepping the
// type's content-model automaton greedily over the pending children
// (plan order breaks ties): models that interleave fields, like
// (key, value)+, reassemble correctly from their grouped arrays. Marshal
// re-validates, so a sequence the greedy walk cannot reassemble surfaces
// as an encode error, never as silently invalid XML.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// FromJSON reconstructs a typed Value from canonical JSON. The top-level
// object must carry "$element" naming a global element declaration.
func (b *Binder) FromJSON(data []byte) (*Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var node any
	if err := dec.Decode(&node); err != nil {
		return nil, fmt.Errorf("bind: bad JSON: %w", err)
	}
	obj, ok := node.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("bind: top-level JSON must be an object with $element")
	}
	name, _ := obj["$element"].(string)
	if name == "" {
		return nil, fmt.Errorf("bind: top-level JSON object is missing $element")
	}
	decl := b.globalByLocal(name)
	if decl == nil {
		return nil, fmt.Errorf("bind: no global element declaration named %q", name)
	}
	return b.valueFromJSON(decl, node, false)
}

// globalByLocal finds a global element declaration by local name,
// preferring the target namespace.
func (b *Binder) globalByLocal(local string) *xsd.ElementDecl {
	if d, ok := b.schema.Elements[xsd.QName{Space: b.schema.TargetNamespace, Local: local}]; ok {
		return d
	}
	if d, ok := b.schema.Elements[xsd.QName{Local: local}]; ok {
		return d
	}
	var names []xsd.QName
	for q := range b.schema.Elements {
		if q.Local == local {
			names = append(names, q)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Space < names[j].Space })
	return b.schema.Elements[names[0]]
}

// typeByLocal resolves a "$type" discriminator to a named type.
func (b *Binder) typeByLocal(local string) xsd.Type {
	if t, ok := b.schema.LookupType(xsd.QName{Space: b.schema.TargetNamespace, Local: local}); ok {
		return t
	}
	if t, ok := b.schema.LookupType(xsd.QName{Space: xsd.XSDNamespace, Local: local}); ok {
		return t
	}
	if t, ok := b.schema.LookupType(xsd.QName{Local: local}); ok {
		return t
	}
	var names []xsd.QName
	for q := range b.schema.Types {
		if q.Local == local {
			names = append(names, q)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Space < names[j].Space })
	t, _ := b.schema.LookupType(names[0])
	return t
}

func (b *Binder) valueFromJSON(decl *xsd.ElementDecl, node any, wild bool) (*Value, error) {
	v := &Value{Name: decl.Name, Wild: wild}
	typ := decl.Type
	obj, isObj := node.(map[string]any)
	if isObj {
		if tn, ok := obj["$type"].(string); ok && tn != "" {
			t := b.typeByLocal(tn)
			if t == nil {
				return nil, fmt.Errorf("bind: $type %q names no type in the schema", tn)
			}
			typ = t
			v.TypeName = t.TypeName()
		}
		if raw, ok := obj["$raw"].(string); ok {
			v.Kind = KindRaw
			v.Wild = true
			v.Raw = raw
			return v, nil
		}
	}
	v.typ = typ
	ct, isComplex := typ.(*xsd.ComplexType)
	if isComplex && isObj {
		attrs, err := b.attrsFromJSON(decl, ct, obj)
		if err != nil {
			return nil, err
		}
		v.Attrs = attrs
	}
	if node == nil || (isObj && obj["$nil"] == true) {
		if !decl.Nillable {
			return nil, fmt.Errorf("bind: element %s is not nillable", decl.Name)
		}
		v.Kind = KindNil
		if v.typ == nil {
			v.typ = typ
		}
		return v, nil
	}
	if st, ok := typ.(*xsd.SimpleType); ok {
		scalar := node
		if isObj {
			scalar = obj["$value"]
		}
		val, err := scalarValue(st, scalar)
		if err != nil {
			return nil, fmt.Errorf("bind: element %s: %w", decl.Name, err)
		}
		v.Kind = KindSimple
		v.Simple = val
		return v, nil
	}
	switch ct.Kind {
	case xsd.ContentSimple:
		scalar := node
		if isObj {
			scalar = obj["$value"]
		}
		val, err := scalarValue(ct.SimpleContentType, scalar)
		if err != nil {
			return nil, fmt.Errorf("bind: element %s: %w", decl.Name, err)
		}
		v.Kind = KindSimple
		v.Simple = val
		return v, nil
	case xsd.ContentEmpty:
		v.Kind = KindEmpty
		return v, nil
	case xsd.ContentMixed:
		v.Kind = KindMixed
		return v, b.mixedFromJSON(v, ct, obj)
	default:
		v.Kind = KindStruct
		return v, b.structFromJSON(v, ct, obj)
	}
}

func (b *Binder) structFromJSON(v *Value, ct *xsd.ComplexType, obj map[string]any) error {
	tp := b.plan.For(ct)
	if tp == nil {
		return fmt.Errorf("bind: no binding plan for type %s", ct.Name)
	}
	known := map[string]bool{"$element": true, "$type": true, "$any": true}
	for _, f := range tp.Fields {
		known[f.Key] = true
		jv, ok := obj[f.Key]
		if !ok {
			continue
		}
		items, isArr := jv.([]any)
		if !isArr {
			items = []any{jv}
		}
		for _, item := range items {
			cv, err := b.childFromJSON(tp, f, item)
			if err != nil {
				return err
			}
			v.Children = append(v.Children, cv)
		}
	}
	if anyv, ok := obj["$any"]; ok {
		items, isArr := anyv.([]any)
		if !isArr {
			items = []any{anyv}
		}
		for _, item := range items {
			cv, err := b.anyFromJSON(item)
			if err != nil {
				return err
			}
			v.Children = append(v.Children, cv)
		}
	}
	for key := range obj {
		if !known[key] && !strings.HasPrefix(key, "@") {
			return fmt.Errorf("bind: unknown field %q for type %s", key, ct.Name)
		}
	}
	v.Children = b.orderChildren(ct, v.Children)
	return nil
}

// orderChildren arranges reconstructed children into a sequence the
// type's content model accepts, by greedily stepping the compiled
// automaton: at each position the first pending child (in plan-grouped
// order) whose symbol the automaton admits is emitted next. Models whose
// repetitions interleave fields — (key, value)+ — reassemble from
// grouped JSON arrays this way. If the walk dead-ends the original order
// is returned and Marshal's re-validation reports the failure.
func (b *Binder) orderChildren(ct *xsd.ComplexType, children []*Value) []*Value {
	if len(children) < 2 {
		return children
	}
	g, ok := ct.Matcher(b.schema).(*contentmodel.Glushkov)
	if !ok {
		return children
	}
	syms := make([]contentmodel.Symbol, len(children))
	for i, c := range children {
		syms[i] = contentmodel.Symbol{Space: c.Name.Space, Local: c.Name.Local}
	}
	// Fast path: the grouped order is already admissible.
	if _, merr := g.Match(syms); merr == nil {
		return children
	}
	pending := append([]*Value{}, children...)
	pendSyms := append([]contentmodel.Symbol{}, syms...)
	var order []*Value
	var prefix []contentmodel.Symbol
	for len(pending) > 0 {
		chosen := -1
		for i := range pending {
			r := g.Start()
			ok := true
			for _, s := range prefix {
				if _, merr := r.Step(s); merr != nil {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			if _, merr := r.Step(pendSyms[i]); merr == nil {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			return children
		}
		order = append(order, pending[chosen])
		prefix = append(prefix, pendSyms[chosen])
		pending = append(pending[:chosen], pending[chosen+1:]...)
		pendSyms = append(pendSyms[:chosen], pendSyms[chosen+1:]...)
	}
	return order
}

// childFromJSON builds one field occurrence, resolving a "$element"
// discriminator to a substitution-group member when present.
func (b *Binder) childFromJSON(tp *TypePlan, f *FieldPlan, item any) (*Value, error) {
	decl := f.Decl
	if m, ok := item.(map[string]any); ok {
		if en, ok := m["$element"].(string); ok && en != "" && en != f.Decl.Name.Local {
			_, member := tp.fieldByLocal(en)
			if member == nil {
				return nil, fmt.Errorf("bind: $element %q is not admissible for field %q", en, f.Key)
			}
			if _, err := b.schema.ResolveChild(f.Decl, member.Name); err != nil {
				return nil, fmt.Errorf("bind: $element %q: %w", en, err)
			}
			decl = member
		}
	}
	if decl.Abstract {
		return nil, fmt.Errorf("bind: element %s is abstract; name a concrete substitute with $element", decl.Name)
	}
	return b.valueFromJSON(decl, item, false)
}

// anyFromJSON builds one "$any" entry: a string is a raw XML fragment, an
// object names a global element with "$element".
func (b *Binder) anyFromJSON(item any) (*Value, error) {
	switch x := item.(type) {
	case string:
		return rawValue(x)
	case map[string]any:
		if raw, ok := x["$raw"].(string); ok {
			return rawValue(raw)
		}
		en, _ := x["$element"].(string)
		if en == "" {
			return nil, fmt.Errorf("bind: $any entries must be raw XML strings or objects with $element")
		}
		decl := b.globalByLocal(en)
		if decl == nil {
			return nil, fmt.Errorf("bind: $any element %q has no global declaration", en)
		}
		return b.valueFromJSON(decl, item, true)
	default:
		return nil, fmt.Errorf("bind: $any entries must be raw XML strings or objects with $element")
	}
}

func (b *Binder) mixedFromJSON(v *Value, ct *xsd.ComplexType, obj map[string]any) error {
	tp := b.plan.For(ct)
	if tp == nil {
		return fmt.Errorf("bind: no binding plan for type %s", ct.Name)
	}
	for key := range obj {
		if key != "$element" && key != "$type" && key != "$mixed" && !strings.HasPrefix(key, "@") {
			return fmt.Errorf("bind: unknown field %q for mixed type %s", key, ct.Name)
		}
	}
	segs, _ := obj["$mixed"].([]any)
	for _, s := range segs {
		switch x := s.(type) {
		case string:
			v.Segments = appendText(v.Segments, x)
		case map[string]any:
			en, _ := x["$element"].(string)
			if en == "" {
				return fmt.Errorf("bind: $mixed element segments need $element")
			}
			f, decl := tp.fieldByLocal(en)
			if decl == nil {
				if gdecl := b.globalByLocal(en); gdecl != nil && tp.HasWildcard {
					cv, err := b.valueFromJSON(gdecl, x, true)
					if err != nil {
						return err
					}
					v.Segments = append(v.Segments, Segment{Child: cv})
					continue
				}
				return nil
			}
			_ = f
			cv, err := b.valueFromJSON(decl, x, false)
			if err != nil {
				return err
			}
			v.Segments = append(v.Segments, Segment{Child: cv})
		default:
			return fmt.Errorf("bind: $mixed segments must be strings or element objects")
		}
	}
	return nil
}

// attrsFromJSON parses "@..." keys into typed attributes in declaration
// order (wildcard-admitted extras sorted by key for determinism).
func (b *Binder) attrsFromJSON(decl *xsd.ElementDecl, ct *xsd.ComplexType, obj map[string]any) ([]Attr, error) {
	byName := map[xsd.QName]any{}
	var extras []string
	for key, jv := range obj {
		if !strings.HasPrefix(key, "@") {
			continue
		}
		name := parseAttrKey(key[1:])
		use := ct.FindAttributeUse(name)
		if use == nil && name.Space == "" {
			// A bare local may name a qualified declared attribute.
			for _, u := range ct.AttributeUses {
				if u.Decl.Name.Local == name.Local {
					name = u.Decl.Name
					use = u
					break
				}
			}
		}
		if use == nil || use.Prohibited {
			if ct.AttrWildcard == nil || !ct.AttrWildcard.Admits(name.Space) {
				return nil, fmt.Errorf("bind: attribute %q is not declared for element %s", key, decl.Name)
			}
			extras = append(extras, key)
			continue
		}
		byName[use.Decl.Name] = jv
	}
	var out []Attr
	for _, use := range ct.AttributeUses {
		jv, ok := byName[use.Decl.Name]
		if !ok {
			def := use.Default
			if def == nil {
				def = use.Fixed
			}
			if use.Prohibited || def == nil {
				continue
			}
			val, err := use.Decl.Type.Parse(*def)
			if err != nil {
				continue
			}
			out = append(out, Attr{Name: use.Decl.Name, Value: val})
			continue
		}
		val, err := scalarValue(use.Decl.Type, jv)
		if err != nil {
			return nil, fmt.Errorf("bind: attribute %q: %w", use.Decl.Name.Local, err)
		}
		out = append(out, Attr{Name: use.Decl.Name, Value: val})
	}
	sort.Strings(extras)
	for _, key := range extras {
		lex, err := jsonLexical(obj[key])
		if err != nil {
			return nil, fmt.Errorf("bind: attribute %q: %w", key, err)
		}
		out = append(out, Attr{Name: parseAttrKey(key[1:]), Value: xsdtypes.Value{Kind: xsdtypes.VString, Str: lex}})
	}
	return out, nil
}

// rawValue wraps a raw XML fragment, parsing it to recover the element
// name (which child ordering and serialization need).
func rawValue(raw string) (*Value, error) {
	doc, err := dom.Parse([]byte(raw))
	if err != nil {
		return nil, fmt.Errorf("bind: $raw fragment does not parse: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil {
		return nil, fmt.Errorf("bind: $raw fragment has no element")
	}
	name := xsd.QName{Space: root.NamespaceURI(), Local: root.LocalName()}
	return &Value{Name: name, Kind: KindRaw, Wild: true, Raw: raw}, nil
}

// parseAttrKey inverts attrKey: Clark notation or a bare local name.
func parseAttrKey(s string) xsd.QName {
	if strings.HasPrefix(s, "{") {
		if i := strings.IndexByte(s, '}'); i > 0 {
			return xsd.QName{Space: s[1:i], Local: s[i+1:]}
		}
	}
	return xsd.QName{Local: s}
}

// scalarValue parses a JSON scalar (or array, for list types) through a
// simple type's lexical space.
func scalarValue(st *xsd.SimpleType, node any) (xsdtypes.Value, error) {
	lex, err := jsonLexical(node)
	if err != nil {
		return xsdtypes.Value{}, err
	}
	return st.Parse(lex)
}

// jsonLexical renders a JSON scalar as an XSD lexical form; arrays join
// with single spaces (the list lexical space).
func jsonLexical(node any) (string, error) {
	switch x := node.(type) {
	case string:
		return x, nil
	case json.Number:
		return x.String(), nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	case nil:
		return "", nil
	case []any:
		parts := make([]string, len(x))
		for i, it := range x {
			p, err := jsonLexical(it)
			if err != nil {
				return "", err
			}
			parts[i] = p
		}
		return strings.Join(parts, " "), nil
	default:
		return "", fmt.Errorf("unsupported JSON value for a simple type")
	}
}
