package bind

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// Binder decodes XML into typed values (and JSON) and marshals values
// back, always through the schema's validator. A Binder is immutable and
// safe for concurrent use; it shares the validator's compiled-model cache,
// so automata built by either consumer serve both.
type Binder struct {
	schema *xsd.Schema
	v      *validator.Validator
	sv     *validator.StreamValidator
	plan   *Plan
}

// New builds a binder over a resolved schema. v may be nil, in which case
// a validator with default options is created; passing the serving layer's
// validator shares its warm model cache.
func New(schema *xsd.Schema, v *validator.Validator) *Binder {
	if v == nil {
		v = validator.New(schema, nil)
	}
	return &Binder{schema: schema, v: v, sv: v.Stream(), plan: NewPlan(schema)}
}

// Plan returns the derived binding plan.
func (b *Binder) Plan() *Plan { return b.plan }

// Validator returns the binder's validator (shared model cache).
func (b *Binder) Validator() *validator.Validator { return b.v }

// Schema returns the schema the binder was built from.
func (b *Binder) Schema() *xsd.Schema { return b.schema }

// rawAttr is a lexical attribute before typing, common to both decode
// paths (DOM attributes and start-tag tokens).
type rawAttr struct {
	name  xsd.QName
	value string
}

func isMetaSpace(space string) bool {
	return space == xmlparser.XMLNSNamespace || space == xsd.XSINamespace || space == xmlparser.XMLNamespace
}

// typedAttrs parses the element's attributes into the declared value
// spaces (wildcard-admitted ones stay strings) and materializes absent
// defaulted or fixed attributes, so decoded values are self-contained.
func (b *Binder) typedAttrs(ct *xsd.ComplexType, raw []rawAttr) []Attr {
	var out []Attr
	for _, a := range raw {
		use := ct.FindAttributeUse(a.name)
		if use == nil || use.Prohibited {
			out = append(out, Attr{Name: a.name, Value: xsdtypes.Value{Kind: xsdtypes.VString, Str: a.value}})
			continue
		}
		val, err := use.Decl.Type.Parse(a.value)
		if err != nil {
			// Only reachable on invalid documents (the verdict carries
			// the violation); keep the lexical form.
			val = xsdtypes.Value{Kind: xsdtypes.VString, Str: a.value}
		}
		out = append(out, Attr{Name: a.name, Value: val})
	}
	for _, use := range ct.AttributeUses {
		def := use.Default
		if def == nil {
			def = use.Fixed
		}
		if use.Prohibited || def == nil {
			continue
		}
		present := false
		for _, a := range raw {
			if a.name == use.Decl.Name {
				present = true
				break
			}
		}
		if present {
			continue
		}
		if val, err := use.Decl.Type.Parse(*def); err == nil {
			out = append(out, Attr{Name: use.Decl.Name, Value: val})
		}
	}
	return out
}

// resolveQName resolves a lexical QName (an xsi:type value) against the
// namespace declarations in scope at el.
func resolveQName(el *dom.Element, lexical string) (xsd.QName, error) {
	lexical = strings.TrimSpace(lexical)
	prefix, local := "", lexical
	if i := strings.IndexByte(lexical, ':'); i >= 0 {
		prefix, local = lexical[:i], lexical[i+1:]
	}
	if prefix == "xml" {
		return xsd.QName{Space: xmlparser.XMLNamespace, Local: local}, nil
	}
	key := prefix
	if key == "" {
		key = "xmlns"
	}
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		e, ok := n.(*dom.Element)
		if !ok {
			break
		}
		if e.HasAttributeNS(xmlparser.XMLNSNamespace, key) {
			return xsd.QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, key), Local: local}, nil
		}
	}
	if prefix != "" {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q in %q", prefix, lexical)
	}
	return xsd.QName{Local: local}, nil
}
