package xmlparser

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// TestSWARScanBoundaries pins the word-sweep scanners against the exact
// byte tables at every alignment: a special byte planted at each offset
// of a 40-byte plain run must stop the scan precisely there.
func TestSWARScanBoundaries(t *testing.T) {
	plain := []byte(strings.Repeat("abcdefgh", 5))
	textSpecials := []byte{'<', '&', ']', '\r', 0x00, 0x1f, 0x0b, 0x80, 0xc3, 0xff}
	attrSpecials := []byte{'<', '&', '"', '\'', '\t', '\n', '\r', 0x00, 0x1f, 0x80, 0xff}
	for _, sp := range textSpecials {
		for i := 0; i <= len(plain); i++ {
			s := append(append(append([]byte{}, plain[:i]...), sp), plain[i:]...)
			if got := scanPlainText(s); got != i {
				t.Fatalf("scanPlainText: special 0x%02x at %d: got %d", sp, i, got)
			}
		}
	}
	for _, sp := range attrSpecials {
		for i := 0; i <= len(plain); i++ {
			s := append(append(append([]byte{}, plain[:i]...), sp), plain[i:]...)
			if got := scanPlainAttr(s); got != i {
				t.Fatalf("scanPlainAttr: special 0x%02x at %d: got %d", sp, i, got)
			}
		}
	}
	// Plain bytes the text scanner must NOT stop on: tab and LF.
	if got := scanPlainText([]byte("a\tb\nc")); got != 5 {
		t.Fatalf("scanPlainText over tab/LF: got %d, want 5", got)
	}
	// Exhaustive single-byte agreement with the tables.
	for c := 0; c < 256; c++ {
		one := []byte{byte(c)}
		if got, want := scanPlainText(one) == 0, specialText[c]; got != want {
			t.Fatalf("scanPlainText table disagreement at 0x%02x", c)
		}
		if got, want := scanPlainAttr(one) == 0, specialAttr[c]; got != want {
			t.Fatalf("scanPlainAttr table disagreement at 0x%02x", c)
		}
	}
}

// TestCheckCharBytes pins the amortized character-legality sweep against
// the per-rune reference over the interesting classes.
func TestCheckCharBytes(t *testing.T) {
	cases := []struct {
		in  string
		bad bool
	}{
		{"plain ascii with\ttabs\nand\rreturns", false},
		{strings.Repeat("x", 100), false},
		{"caf\u00e9 \u4e16\u754c \U0001F600", false},
		{"\x7f del is legal", false},
		{"bad\x00ctl", true},
		{"bad\x1fctl", true},
		{"fffe \ufffe here", true},
		{"ffff \uffff here", true},
		{"invalid \x80\x80 utf8 is U+FFFD (legal)", false},
		{"truncated \xc3", false},
		{"", false},
	}
	for _, c := range cases {
		err := checkCharBytes([]byte(c.in))
		if (err != nil) != c.bad {
			t.Errorf("checkCharBytes(%q): err=%v, want bad=%v", c.in, err, c.bad)
		}
		// Agreement with the per-rune reference used for cold tokens.
		ref := checkChars(c.in)
		if (err != nil) != (ref != nil) {
			t.Errorf("checkCharBytes(%q) disagrees with checkChars: %v vs %v", c.in, err, ref)
		}
		if err != nil && ref != nil && err.Error() != ref.Error() {
			t.Errorf("checkCharBytes(%q) message %q, reference %q", c.in, err, ref)
		}
	}
}

// bulkParityDocs stress the SWAR fast paths where they diverge most from
// the reference scanner: runs crossing 8-byte word and refill boundaries,
// newlines inside bulk runs, non-ASCII segments, lone ']', CR forms, and
// rewrite triggers mid-run.
var bulkParityDocs = []string{
	"<a>" + strings.Repeat("0123456", 1200) + "</a>",
	"<a>" + strings.Repeat("line\n", 500) + "</a>",
	"<a>" + strings.Repeat("x", 8189) + "\n tail</a>",
	"<a>" + strings.Repeat("\u4e16\u754c", 300) + "</a>",
	"<a>ascii \u00e9 mixed \U0001F600 runs \u4e16</a>",
	"<a>brackets ] in ]] text ]x]</a>",
	"<a>cr\rcrlf\r\nlf\n</a>",
	"<a>amp &amp; entity &#x41; refs</a>",
	"<a>" + strings.Repeat("y", 40) + "&lt;" + strings.Repeat("z", 40) + "</a>",
	"<a><![CDATA[" + strings.Repeat("cdata ]] run\n", 300) + "]]></a>",
	"<a><![CDATA[\u00e9\u4e16\u754c]]></a>",
	`<a attr="` + strings.Repeat("v", 300) + `"/>`,
	"<a attr='tab\tlf\ncr\rmix " + strings.Repeat("w", 64) + "'/>",
	`<a attr="quote ' other"/>`,
	"<a attr=\"caf\u00e9 \u4e16\u754c\"/>",
	"<verylongelementnamethatcrosseswords attributenamealsoquitelong=\"v\"/>",
	"<a>\n<b>\n<c>deep\n</c>\n</b>\n</a>",
	"<m>t1<i>x</i>\r\nt2<b/>t3</m>",
	"<a>text<!--comment\nspanning\nlines--><?pi some data?></a>",
}

// bulkParityErrDocs must produce byte-identical errors (message and
// position) from the SWAR and reference scanners.
var bulkParityErrDocs = []string{
	"<a>pre ]]> post</a>",
	"<a>" + strings.Repeat("x", 100) + "]]></a>",
	"<a>ctl \x01 here</a>",
	"<a>\n\n  bad \x1f</a>",
	"<a>fffe \ufffe</a>",
	"<a>" + strings.Repeat("p", 70) + "\uffff</a>",
	"<a attr=\"bad \x02\"/>",
	"<a attr=\"fffe \ufffe\"/>",
	"<a><![CDATA[bad \x03]]></a>",
	"<a><![CDATA[" + strings.Repeat("q", 90) + "\ufffe]]></a>",
	"<a>unterminated",
	`<a attr="unterminated`,
}

// parseMode parses src with explicit control of reader mode and the
// noBulk reference-scanner switch.
func parseMode(src string, rd func() io.Reader, noBulk bool) ([]Token, error) {
	var d *Decoder
	if rd == nil {
		d = NewDecoder([]byte(src), nil)
	} else {
		d = NewReaderDecoder(rd(), nil)
	}
	d.noBulk = noBulk
	return parseAll(d)
}

// assertTokenParity compares two (tokens, error) outcomes byte-exactly.
func assertTokenParity(t *testing.T, label, src string, aT []Token, aE error, bT []Token, bE error) {
	t.Helper()
	if (aE == nil) != (bE == nil) {
		t.Errorf("%s: error divergence on %.60q:\n  bulk: %v\n  ref:  %v", label, src, aE, bE)
		return
	}
	if aE != nil {
		if aE.Error() != bE.Error() {
			t.Errorf("%s: error text divergence on %.60q:\n  bulk: %v\n  ref:  %v", label, src, aE, bE)
		}
		return
	}
	if len(aT) != len(bT) {
		t.Errorf("%s: token count divergence on %.60q: %d vs %d", label, src, len(aT), len(bT))
		return
	}
	for i := range aT {
		if !reflect.DeepEqual(aT[i], bT[i]) {
			t.Errorf("%s: token %d divergence on %.60q:\n  bulk: %#v\n  ref:  %#v", label, i, src, aT[i], bT[i])
			return
		}
	}
}

// TestBulkScanPositionParity is the position-accounting gate for the SWAR
// tokenizer: over documents engineered to hit every bulk path, the word-
// sweep scanner and the byte-at-a-time reference scanner (noBulk) must
// produce identical token streams — every Line/Col/Offset, every payload,
// every error — in both whole-buffer and chunked-reader modes.
func TestBulkScanPositionParity(t *testing.T) {
	docs := append([]string{}, bulkParityDocs...)
	docs = append(docs, bulkParityErrDocs...)
	docs = append(docs, parityDocs...)
	docs = append(docs, parityErrDocs...)
	for _, src := range docs {
		bulkToks, bulkErr := parseMode(src, nil, false)
		refToks, refErr := parseMode(src, nil, true)
		assertTokenParity(t, "buffer", src, bulkToks, bulkErr, refToks, refErr)

		onebyte := func() io.Reader { return iotest.OneByteReader(strings.NewReader(src)) }
		chunk := func() io.Reader { return &chunkReader{s: src, n: 509} }
		for name, mk := range map[string]func() io.Reader{"one-byte": onebyte, "509-chunk": chunk} {
			rT, rE := parseMode(src, mk, false)
			assertTokenParity(t, "reader-"+name+"-vs-buffer-bulk", src, bulkToks, bulkErr, rT, rE)
			nT, nE := parseMode(src, mk, true)
			assertTokenParity(t, "reader-"+name+"-noBulk", src, bulkToks, bulkErr, nT, nE)
		}
	}
}

// TestBulkScanPositionParityCorpus replays the checked-in fuzz corpus
// through the same bulk-vs-reference comparison.
func TestBulkScanPositionParityCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus files are go-fuzz encoded; the parity property holds for
		// arbitrary bytes, so feeding the raw encoding is fine too.
		src := string(raw)
		bulkToks, bulkErr := parseMode(src, nil, false)
		refToks, refErr := parseMode(src, nil, true)
		assertTokenParity(t, "corpus:"+e.Name(), src, bulkToks, bulkErr, refToks, refErr)
	}
}

// TestZeroCopyTokenContract verifies the documented aliasing rules:
// undetached payloads alias decoder state and change under the decoder's
// feet, Detach makes them durable, and Data materializes consistently.
func TestZeroCopyTokenContract(t *testing.T) {
	d := NewDecoder([]byte("<a>first</a>"), nil)
	var text Token
	for {
		tok, err := d.Token()
		if err != nil {
			t.Fatal(err)
		}
		if tok == nil {
			break
		}
		if tok.Kind == KindText {
			text = *tok
			text.Detach()
		}
	}
	if text.Data() != "first" || string(text.Bytes()) != "first" {
		t.Fatalf("detached token: Data=%q Bytes=%q", text.Data(), text.Bytes())
	}

	// Zero-copy: a pure text run's bytes alias the input buffer.
	src := []byte("<a>zero copy run</a>")
	d = NewDecoder(src, nil)
	d.Token() // <a>
	tok, err := d.Token()
	if err != nil || tok.Kind != KindText {
		t.Fatalf("want text token, got %v, %v", tok, err)
	}
	b := tok.Bytes()
	if len(b) == 0 || &b[0] != &src[3] {
		t.Fatal("pure text run is not a zero-copy view of the input")
	}
}
