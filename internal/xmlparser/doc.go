// Package xmlparser implements an XML 1.0 (Fifth Edition) parser with
// namespace support, written from scratch for this reproduction.
//
// The parser is event-based: Parse and the Decoder type produce a stream of
// Tokens (start tags, end tags, character data, comments, processing
// instructions, doctype declarations). Higher layers (package dom) build
// trees from this stream.
//
// # Streaming entry points
//
// There is exactly one tokenizer code path with two input modes. NewDecoder
// scans a complete in-memory buffer; NewReaderDecoder (and the ParseReader /
// ParseFragmentReader conveniences) pulls input incrementally from an
// io.Reader, keeping only a compacted window of the input resident, so
// memory is bounded by the largest single token rather than the document.
// Both modes produce byte-identical tokens, positions and errors — a
// property the regression suite (TestReaderDecoderParity) and the FuzzParse
// differential fuzzer hold permanently. Decoder.Next is the pull API for
// streaming consumers (it returns tokens by value and io.EOF at end of
// input); Decoder.Token returns a pointer into a scratch slot that is
// reused by the following call, so callers that keep a token across calls
// must copy it (or call Detach, below).
//
// # Zero-copy tokens and SWAR scanning
//
// A token's payload is a []byte view into the decoder's input buffer,
// not an eagerly materialized string. Token.Bytes returns the view
// (valid only until the next Token/Next call — the same lifetime the
// scratch token always had); Token.Data materializes a string lazily
// and memoizes it; Token.Detach copies the views out so a token can be
// retained indefinitely. Consumers that only route on tokens — counters,
// filters, streaming validation of character data — therefore scan at
// near-zero bytes allocated per operation, while tree builders call
// Detach (package dom does) and pay the copy exactly once.
//
// The inner scan loops advance eight bytes per step using SWAR word
// tests to find the next delimiter in character data, attribute values
// and names, with the exact per-byte classification table applied only
// to flagged words and tails; UTF-8 validation and line/column tracking
// are amortized over whole runs. The bulk path is pinned to a
// byte-at-a-time reference scanner (the noBulk mode) by differential
// tests and FuzzParse, including exact error positions.
//
// The parser enforces well-formedness as defined by the XML recommendation:
// matching start/end tags, a single root element, unique attributes,
// well-formed character and entity references, no '<' in attribute values,
// no ']]>' in character data, and legal XML characters and names. Errors
// carry line and column information.
//
// # Role in the pipeline
//
// xmlparser is the bottom layer under everything (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): schema documents,
// instance documents and P-XML fragments all enter the system through
// this tokenizer before package dom shapes them into trees.
//
// # Concurrency
//
// A Decoder is a single-use, single-goroutine cursor over its input —
// do not share one Decoder across goroutines. Distinct Decoder instances
// (and therefore concurrent Parse calls over different inputs) are fully
// independent, which is what lets xsdcheck parse many files in parallel.
// Token values returned by Next (and the copies parseAll collects) are
// immutable and safe to retain; only the pointer returned by Token aims
// at reused decoder state.
package xmlparser
