// Package xmlparser implements an XML 1.0 (Fifth Edition) parser with
// namespace support, written from scratch for this reproduction.
//
// The parser is event-based: Parse and the Decoder type produce a stream of
// Tokens (start tags, end tags, character data, comments, processing
// instructions, doctype declarations). Higher layers (package dom) build
// trees from this stream.
//
// The parser enforces well-formedness as defined by the XML recommendation:
// matching start/end tags, a single root element, unique attributes,
// well-formed character and entity references, no '<' in attribute values,
// no ']]>' in character data, and legal XML characters and names. Errors
// carry line and column information.
//
// # Role in the pipeline
//
// xmlparser is the bottom layer under everything (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): schema documents,
// instance documents and P-XML fragments all enter the system through
// this tokenizer before package dom shapes them into trees.
//
// # Concurrency
//
// A Decoder is a single-use, single-goroutine cursor over its input —
// do not share one Decoder across goroutines. Distinct Decoder instances
// (and therefore concurrent Parse calls over different inputs) are fully
// independent, which is what lets xsdcheck parse many files in parallel.
// Produced tokens do not alias decoder state once returned.
package xmlparser
