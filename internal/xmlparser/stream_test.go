package xmlparser

import (
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// chunkReader yields at most n bytes per Read, forcing the incremental
// decoder through its fill/compact paths at arbitrary boundaries.
type chunkReader struct {
	s string
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.s) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.s) {
		n = len(c.s)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.s[:n])
	c.s = c.s[n:]
	return n, nil
}

// parityDocs exercise every token kind, multi-line positions, entities,
// namespaces, CDATA and attribute normalization.
var parityDocs = []string{
	`<a/>`,
	`<a>hi</a>`,
	"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE root>\n<root attr=\"v\">\n  <child/>\n  text &amp; more &#65;\n  <!-- a comment -->\n  <?pi data?>\n  <![CDATA[raw <stuff> here]]>\n</root>\n",
	`<po:order xmlns:po="urn:example:po" po:id="1"><po:note xml:lang="en">n</po:note></po:order>`,
	`<e xmlns="urn:d"><f xmlns=""><g/></f></e>`,
	"<doc>line one\nline two\r\nline three</doc>",
	`<a b="  spaced   value  " c="tab&#9;here"/>`,
	"<mixed>t1<i>x</i>t2<b/>t3</mixed>",
}

// parityErrDocs must fail with byte-identical errors (message and
// line:col position) on both paths.
var parityErrDocs = []string{
	``,
	`<a><b></a>`,
	`<a attr=">`,
	`<a>&undefined;</a>`,
	`<a><![CDATA[never closed</a>`,
	`<a>text past root</a> trailing`,
	`<p:a xmlns:q="urn:q"/>`,
	"<a>\n<b>\n</b>\n<c>\n</a>",
	`<!-- unterminated`,
}

// tokenParity asserts the whole-buffer and reader decoders produce
// identical token streams (including every Pos) and identical errors.
func tokenParity(t *testing.T, src string, fragment bool) {
	t.Helper()
	var bufToks []Token
	var bufErr error
	if fragment {
		bufToks, bufErr = ParseFragment([]byte(src), nil)
	} else {
		bufToks, bufErr = Parse([]byte(src))
	}
	readers := map[string]func() io.Reader{
		"one-byte": func() io.Reader { return iotest.OneByteReader(strings.NewReader(src)) },
		"3-byte":   func() io.Reader { return &chunkReader{s: src, n: 3} },
		"4k":       func() io.Reader { return &chunkReader{s: src, n: 4096} },
		"whole":    func() io.Reader { return strings.NewReader(src) },
	}
	for name, mk := range readers {
		var rdToks []Token
		var rdErr error
		if fragment {
			rdToks, rdErr = ParseFragmentReader(mk(), nil)
		} else {
			rdToks, rdErr = ParseReader(mk())
		}
		if (bufErr == nil) != (rdErr == nil) {
			t.Errorf("%s reader: error divergence on %q:\n  buffer: %v\n  reader: %v", name, src, bufErr, rdErr)
			continue
		}
		if bufErr != nil {
			if bufErr.Error() != rdErr.Error() {
				t.Errorf("%s reader: error text divergence on %q:\n  buffer: %v\n  reader: %v", name, src, bufErr, rdErr)
			}
			continue
		}
		if !reflect.DeepEqual(bufToks, rdToks) {
			t.Errorf("%s reader: token divergence on %q:\n  buffer: %#v\n  reader: %#v", name, src, bufToks, rdToks)
		}
	}
}

// TestReaderDecoderParity is the regression test for the single-tokenizer
// refactor: byte offsets, line/column positions and error messages from
// the incremental reader path must be identical to the whole-buffer path.
func TestReaderDecoderParity(t *testing.T) {
	for _, src := range parityDocs {
		tokenParity(t, src, false)
	}
	for _, src := range parityErrDocs {
		tokenParity(t, src, false)
	}
}

// TestReaderDecoderParityFragments covers fragment mode: multiple roots
// and top-level character data.
func TestReaderDecoderParityFragments(t *testing.T) {
	for _, src := range []string{
		`<a/><b/>`,
		`leading text <x>y</x> trailing`,
		`<a>1</a> between <b>2</b>`,
		``,
	} {
		tokenParity(t, src, true)
	}
}

// TestReaderDecoderParityLargeDocument forces many refills and window
// compactions: the document is far larger than the read chunk, and token
// boundaries land on arbitrary chunk edges.
func TestReaderDecoderParityLargeDocument(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<catalog>\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString(`  <item id="i`)
		sb.WriteString(strings.Repeat("x", i%37))
		sb.WriteString(`"><name>product &amp; part</name><desc><![CDATA[<raw>]]></desc></item>`)
		sb.WriteString("\n")
	}
	sb.WriteString("</catalog>")
	src := sb.String()
	bufToks, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("buffer parse: %v", err)
	}
	rdToks, err := ParseReader(&chunkReader{s: src, n: 509})
	if err != nil {
		t.Fatalf("reader parse: %v", err)
	}
	if !reflect.DeepEqual(bufToks, rdToks) {
		for i := range bufToks {
			if i >= len(rdToks) || !reflect.DeepEqual(bufToks[i], rdToks[i]) {
				t.Fatalf("token %d diverged:\n  buffer: %#v\n  reader: %#v", i, bufToks[i], rdToks[i])
			}
		}
		t.Fatalf("token count diverged: %d vs %d", len(bufToks), len(rdToks))
	}
	// Spot-check that offsets really are absolute document offsets, not
	// window-relative.
	last := rdToks[len(rdToks)-1]
	if want := len(src) - len("</catalog>"); last.Pos.Offset != want {
		t.Errorf("final end tag offset = %d, want %d", last.Pos.Offset, want)
	}
}

// errReader fails with a non-EOF error after yielding a prefix.
type errReader struct {
	s    string
	done bool
}

func (e *errReader) Read(p []byte) (int, error) {
	if !e.done {
		e.done = true
		return copy(p, e.s), nil
	}
	return 0, io.ErrUnexpectedEOF
}

// TestReaderDecoderSurfacesIOError checks that a mid-document read
// failure is reported as the I/O error, not as a misleading syntax error
// about the truncated window.
func TestReaderDecoderSurfacesIOError(t *testing.T) {
	_, err := ParseReader(&errReader{s: `<a><b>text`})
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestReaderDecoderNoProgress checks the zero-byte-read guard.
func TestReaderDecoderNoProgress(t *testing.T) {
	stuck := iotest.ErrReader(nil) // (0, nil) forever
	_, err := ParseReader(stuck)
	if err == nil {
		t.Fatal("decoder did not detect a no-progress reader")
	}
}
