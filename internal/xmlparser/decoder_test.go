package xmlparser

import (
	"strings"
	"testing"
)

// collect parses src in document mode and fails the test on error.
func collect(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return toks
}

// wantErr parses src and asserts an error mentioning substr.
func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatalf("Parse(%q): expected error containing %q, got nil", src, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Parse(%q): error %q does not contain %q", src, err, substr)
	}
}

func TestSimpleDocument(t *testing.T) {
	toks := collect(t, `<a><b x="1">hi</b></a>`)
	kinds := []Kind{KindStartElement, KindStartElement, KindText, KindEndElement, KindEndElement}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[1].Attrs[0].Name.Local != "x" || toks[1].Attrs[0].Value != "1" {
		t.Errorf("attribute: got %+v", toks[1].Attrs)
	}
}

func TestSelfClosing(t *testing.T) {
	toks := collect(t, `<a><b/></a>`)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if !toks[1].SelfClosing || toks[1].Kind != KindStartElement {
		t.Errorf("expected self-closing start, got %+v", toks[1])
	}
	if toks[2].Kind != KindEndElement || toks[2].Name.Local != "b" {
		t.Errorf("expected synthesized end tag, got %+v", toks[2])
	}
}

func TestXMLDecl(t *testing.T) {
	toks := collect(t, `<?xml version="1.0" encoding="UTF-8"?><r/>`)
	if toks[0].Kind != KindXMLDecl {
		t.Fatalf("expected XMLDecl first, got %v", toks[0].Kind)
	}
	wantErr(t, `<?xml version="2.0"?><r/>`, "version")
	wantErr(t, `<?xml version="1.0" encoding="EBCDIC"?><r/>`, "unsupported encoding")
}

func TestPredefinedEntities(t *testing.T) {
	toks := collect(t, `<a>&lt;&gt;&amp;&apos;&quot;</a>`)
	if got := toks[1].Data(); got != `<>&'"` {
		t.Errorf("entity expansion: got %q", got)
	}
}

func TestCharacterReferences(t *testing.T) {
	toks := collect(t, `<a>&#65;&#x42;&#x1F600;</a>`)
	if got := toks[1].Data(); got != "AB\U0001F600" {
		t.Errorf("char refs: got %q", got)
	}
	wantErr(t, `<a>&#xD800;</a>`, "illegal character")
	wantErr(t, `<a>&#;</a>`, "malformed character reference")
	wantErr(t, `<a>&#x110000;</a>`, "out of range")
}

func TestInternalEntityDeclarations(t *testing.T) {
	src := `<!DOCTYPE a [<!ENTITY who "World"><!ENTITY greet "Hello &who;">]><a>&greet;!</a>`
	toks := collect(t, src)
	var text string
	for _, tok := range toks {
		if tok.Kind == KindText {
			text += tok.Data()
		}
	}
	if text != "Hello World!" {
		t.Errorf("entity chain: got %q", text)
	}
}

func TestRecursiveEntity(t *testing.T) {
	wantErr(t, `<!DOCTYPE a [<!ENTITY e "&e;">]><a>&e;</a>`, "too deep")
}

func TestUndeclaredEntity(t *testing.T) {
	wantErr(t, `<a>&nope;</a>`, "undeclared entity")
}

func TestMismatchedTags(t *testing.T) {
	wantErr(t, `<a><b></a></b>`, "does not match")
	wantErr(t, `<a>`, "not closed")
	wantErr(t, `</a>`, "unexpected end tag")
}

func TestMultipleRoots(t *testing.T) {
	wantErr(t, `<a/><b/>`, "more than one root")
	// But fine in fragment mode.
	if _, err := ParseFragment([]byte(`<a/><b/>text`), nil); err != nil {
		t.Errorf("fragment mode: %v", err)
	}
}

func TestContentOutsideRoot(t *testing.T) {
	wantErr(t, `hello<a/>`, "outside of root")
	wantErr(t, `<a/>trailing`, "outside of root")
	// Whitespace around the root is fine.
	collect(t, "\n  <a/>  \n")
}

func TestDuplicateAttributes(t *testing.T) {
	wantErr(t, `<a x="1" x="2"/>`, "duplicate attribute")
	wantErr(t, `<a xmlns:p="u" xmlns:q="u" p:x="1" q:x="2"/>`, "duplicate attribute")
}

func TestAttributeNormalization(t *testing.T) {
	toks := collect(t, "<a x=\"one\ttwo\nthree\"/>")
	if got := toks[0].Attrs[0].Value; got != "one two three" {
		t.Errorf("attr normalization: got %q", got)
	}
	wantErr(t, `<a x="a<b"/>`, "'<' is not permitted")
}

func TestCDATA(t *testing.T) {
	toks := collect(t, `<a><![CDATA[<not> & markup]]></a>`)
	if toks[1].Kind != KindCData || toks[1].Data() != "<not> & markup" {
		t.Errorf("cdata: got %+v", toks[1])
	}
	wantErr(t, `<a>]]></a>`, "']]>'")
}

func TestComments(t *testing.T) {
	toks := collect(t, `<!-- before --><a><!-- in --></a><!-- after -->`)
	n := 0
	for _, tok := range toks {
		if tok.Kind == KindComment {
			n++
		}
	}
	if n != 3 {
		t.Errorf("comments: got %d, want 3", n)
	}
	wantErr(t, `<a><!-- a -- b --></a>`, "'--'")
}

func TestProcessingInstructions(t *testing.T) {
	toks := collect(t, `<?go fmt?><a><?noop?></a>`)
	if toks[0].Kind != KindProcInst || toks[0].Target != "go" || toks[0].Data() != "fmt" {
		t.Errorf("PI: got %+v", toks[0])
	}
	if toks[2].Kind != KindProcInst || toks[2].Target != "noop" || toks[2].Data() != "" {
		t.Errorf("dataless PI: got %+v", toks[2])
	}
	wantErr(t, `<a><?xml bad?></a>`, "reserved")
}

func TestNamespaceResolution(t *testing.T) {
	src := `<p:a xmlns:p="urn:one" xmlns="urn:def"><b p:x="1"/></p:a>`
	toks := collect(t, src)
	if toks[0].Name.Space != "urn:one" || toks[0].Name.Local != "a" {
		t.Errorf("element ns: got %+v", toks[0].Name)
	}
	if toks[1].Name.Space != "urn:def" {
		t.Errorf("default ns should apply to <b>: got %+v", toks[1].Name)
	}
	var px Attr
	for _, a := range toks[1].Attrs {
		if a.Name.Local == "x" {
			px = a
		}
	}
	if px.Name.Space != "urn:one" {
		t.Errorf("prefixed attr ns: got %+v", px.Name)
	}
}

func TestNamespaceScoping(t *testing.T) {
	src := `<a xmlns="urn:o"><b xmlns="urn:i"/><c/></a>`
	toks := collect(t, src)
	spaces := map[string]string{}
	for _, tok := range toks {
		if tok.Kind == KindStartElement {
			spaces[tok.Name.Local] = tok.Name.Space
		}
	}
	if spaces["a"] != "urn:o" || spaces["b"] != "urn:i" || spaces["c"] != "urn:o" {
		t.Errorf("scoping: got %v", spaces)
	}
}

func TestUndeclaredPrefix(t *testing.T) {
	wantErr(t, `<p:a/>`, "undeclared namespace prefix")
	wantErr(t, `<a p:x="1"/>`, "undeclared namespace prefix")
}

func TestReservedPrefixes(t *testing.T) {
	wantErr(t, `<a xmlns:xml="urn:wrong"/>`, "cannot be rebound")
	wantErr(t, `<a xmlns:xmlns="urn:x"/>`, `"xmlns" cannot be declared`)
	// xml prefix usable without declaration.
	toks := collect(t, `<a xml:lang="en"/>`)
	if toks[0].Attrs[0].Name.Space != XMLNamespace {
		t.Errorf("xml: prefix: got %+v", toks[0].Attrs[0].Name)
	}
}

func TestDefaultNamespaceUndeclare(t *testing.T) {
	src := `<a xmlns="urn:o"><b xmlns=""/></a>`
	toks := collect(t, src)
	if toks[1].Name.Space != "" {
		t.Errorf("undeclared default ns: got %q", toks[1].Name.Space)
	}
}

func TestDoctypeExternalID(t *testing.T) {
	toks := collect(t, `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0//EN" "http://x/dtd"><html/>`)
	if toks[0].Kind != KindDoctype || toks[0].Name.Local != "html" {
		t.Fatalf("doctype: got %+v", toks[0])
	}
	if !strings.HasPrefix(toks[0].Target, "PUBLIC") {
		t.Errorf("external id: got %q", toks[0].Target)
	}
}

func TestDoctypeInternalSubsetCaptured(t *testing.T) {
	src := `<!DOCTYPE a [<!ELEMENT a (#PCDATA)><!ATTLIST a x CDATA #IMPLIED>]><a/>`
	toks := collect(t, src)
	if !strings.Contains(toks[0].Data(), "<!ELEMENT a") || !strings.Contains(toks[0].Data(), "<!ATTLIST") {
		t.Errorf("internal subset: got %q", toks[0].Data())
	}
}

func TestLineColumnTracking(t *testing.T) {
	src := "<a>\n  <b>\n    <c></d>\n  </b>\n</a>"
	_, err := Parse([]byte(src))
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected SyntaxError, got %v", err)
	}
	if se.Pos.Line != 3 {
		t.Errorf("error line: got %d, want 3 (%v)", se.Pos.Line, se)
	}
}

func TestEOLNormalization(t *testing.T) {
	toks := collect(t, "<a>one\r\ntwo\rthree</a>")
	if got := toks[1].Data(); got != "one\ntwo\nthree" {
		t.Errorf("eol normalization: got %q", got)
	}
}

func TestIllegalCharacters(t *testing.T) {
	wantErr(t, "<a>\x01</a>", "illegal character")
	wantErr(t, "<a x=\"\x02\"/>", "illegal character")
}

func TestNameValidation(t *testing.T) {
	cases := []struct {
		s      string
		name   bool
		ncname bool
	}{
		{"abc", true, true},
		{"_x", true, true},
		{"a:b", true, false},
		{"1a", false, false},
		{"", false, false},
		{"a-b.c", true, true},
		{"héllo", true, true},
		{"-a", false, false},
	}
	for _, c := range cases {
		if got := IsName(c.s); got != c.name {
			t.Errorf("IsName(%q) = %v, want %v", c.s, got, c.name)
		}
		if got := IsNCName(c.s); got != c.ncname {
			t.Errorf("IsNCName(%q) = %v, want %v", c.s, got, c.ncname)
		}
	}
}

func TestNmtoken(t *testing.T) {
	if !IsNmtoken("123-abc") {
		t.Error("123-abc should be an Nmtoken")
	}
	if IsNmtoken("a b") || IsNmtoken("") {
		t.Error("spaces / empty are not Nmtokens")
	}
}

func TestTokenAttrLookup(t *testing.T) {
	toks := collect(t, `<a xmlns:p="urn:x" p:k="v" plain="w"/>`)
	tok := toks[0]
	if v, ok := tok.Attr("urn:x", "k"); !ok || v != "v" {
		t.Errorf("Attr(urn:x,k): %q %v", v, ok)
	}
	if v, ok := tok.Attr("", "plain"); !ok || v != "w" {
		t.Errorf("Attr(,plain): %q %v", v, ok)
	}
	if _, ok := tok.Attr("", "missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestWhitespaceOnlyDocumentRejected(t *testing.T) {
	wantErr(t, "   \n ", "no root element")
}

func TestDeeplyNested(t *testing.T) {
	depth := 2000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	toks := collect(t, sb.String())
	if len(toks) != 2*depth+1 {
		t.Errorf("deep nesting: got %d tokens", len(toks))
	}
}

func TestSkipComments(t *testing.T) {
	d := NewDecoder([]byte(`<a><!-- gone -->x</a>`), &Options{Namespaces: true, SkipComments: true})
	for {
		tok, err := d.Token()
		if err != nil {
			t.Fatal(err)
		}
		if tok == nil {
			break
		}
		if tok.Kind == KindComment {
			t.Error("comment emitted despite SkipComments")
		}
	}
}

func TestPositionOfTokens(t *testing.T) {
	toks := collect(t, "<a>\n<b/></a>")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("root pos: %v", toks[0].Pos)
	}
	if toks[2].Pos.Line != 2 {
		t.Errorf("<b/> line: %v", toks[2].Pos)
	}
}

func TestCustomEntities(t *testing.T) {
	toks, err := ParseFragment([]byte(`<a>&custom;</a>`), map[string]string{"custom": "VALUE"})
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Data() != "VALUE" {
		t.Errorf("custom entity: got %q", toks[1].Data())
	}
}

func TestEntityWithMarkupRejected(t *testing.T) {
	wantErr(t, `<!DOCTYPE a [<!ENTITY e "<b/>">]><a>&e;</a>`, "contains markup")
}

func TestAttributeEntityExpansion(t *testing.T) {
	toks := collect(t, `<!DOCTYPE a [<!ENTITY v "x&amp;y">]><a k="&v;"/>`)
	var start Token
	for _, tok := range toks {
		if tok.Kind == KindStartElement {
			start = tok
		}
	}
	if start.Attrs[0].Value != "x&y" {
		t.Errorf("attr entity: got %q", start.Attrs[0].Value)
	}
}
