package xmlparser

import "fmt"

// Kind identifies the kind of a Token.
type Kind int

// Token kinds.
const (
	// KindStartElement is a start tag or the start of a self-closing tag.
	KindStartElement Kind = iota
	// KindEndElement is an end tag, or synthesized for a self-closing tag.
	KindEndElement
	// KindText is character data (entity and character references resolved).
	KindText
	// KindCData is the content of a CDATA section.
	KindCData
	// KindComment is the body of a comment (without delimiters).
	KindComment
	// KindProcInst is a processing instruction.
	KindProcInst
	// KindDoctype is a document type declaration.
	KindDoctype
	// KindXMLDecl is the XML declaration (<?xml version=...?>).
	KindXMLDecl
)

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case KindStartElement:
		return "StartElement"
	case KindEndElement:
		return "EndElement"
	case KindText:
		return "Text"
	case KindCData:
		return "CData"
	case KindComment:
		return "Comment"
	case KindProcInst:
		return "ProcInst"
	case KindDoctype:
		return "Doctype"
	case KindXMLDecl:
		return "XMLDecl"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pos is a position in the input document.
type Pos struct {
	Line   int // 1-based line number
	Col    int // 1-based column (in runes)
	Offset int // 0-based byte offset
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Name is a possibly namespace-qualified name.
type Name struct {
	Space  string // resolved namespace URI, empty if none
	Prefix string // prefix as written, empty if none
	Local  string // local part
}

// String returns the name in Clark notation ({uri}local) when it has a
// namespace, and the plain local name otherwise.
func (n Name) String() string {
	if n.Space != "" {
		return "{" + n.Space + "}" + n.Local
	}
	return n.Local
}

// Qualified returns the lexical qualified name (prefix:local or local).
func (n Name) Qualified() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Local
	}
	return n.Local
}

// Attr is an attribute appearing in a start tag.
type Attr struct {
	Name  Name
	Value string // normalized per XML 1.0 §3.3.3
	Pos   Pos
	// IsNamespaceDecl reports whether this attribute is an xmlns or
	// xmlns:prefix declaration. Namespace declarations are reported so
	// that serializers can round-trip them.
	IsNamespaceDecl bool
}

// Token is one parse event.
//
// Tokens returned by Decoder.Token and Decoder.Next are views into the
// decoder's buffers: the text payload (Bytes) and the Attrs slice are
// only valid until the next Token/Next call. Callers that retain tokens
// across calls must Detach them first (Parse and friends do). Data
// materializes the payload as a string on demand, caching the result.
type Token struct {
	Kind Kind
	Name Name // element name for KindStartElement / KindEndElement

	// data and str hold the token's text payload — character data for
	// KindText/KindCData, comment body, PI data, doctype internal subset.
	// Hot tokens (text, CDATA) carry data as a zero-copy byte view; str
	// is the lazily materialized (and cached) string form. d is the
	// owning decoder, used to intern materialized strings; it is nil for
	// detached tokens.
	data  []byte
	str   string
	strOK bool
	d     *Decoder

	// Target is the processing-instruction target for KindProcInst.
	Target string
	// Attrs are the attributes of a start element, in document order.
	Attrs []Attr
	// SelfClosing marks a KindStartElement that was written as <e/>. A
	// matching KindEndElement token is still emitted.
	SelfClosing bool
	// Pos is the position of the first character of the token.
	Pos Pos
}

// Data returns the token's text payload as a string, materializing (and
// interning, when the token is still attached to its decoder) on first
// use. Token streams that never look at character data never pay for
// string conversion.
func (t *Token) Data() string {
	if !t.strOK {
		if t.d != nil {
			t.str = t.d.internBytes(t.data)
		} else {
			t.str = string(t.data)
		}
		t.strOK = true
	}
	return t.str
}

// Bytes returns the token's text payload without copying or string
// conversion. For KindText and KindCData tokens this is a zero-copy view
// of the decoder's input window (or assembly buffer), valid only until
// the next Token/Next call on the decoder.
func (t *Token) Bytes() []byte {
	if t.data != nil || !t.strOK {
		return t.data
	}
	return []byte(t.str)
}

// SetData replaces the token's text payload with s.
func (t *Token) SetData(s string) {
	t.str, t.strOK, t.data = s, true, nil
}

// Detach makes the token independent of the decoder's internal buffers:
// the payload is materialized and the attribute slice is copied. Callers
// that keep tokens beyond the next Token/Next call (Parse does) must
// detach them.
func (t *Token) Detach() {
	t.Data()
	t.data = nil
	t.d = nil
	if len(t.Attrs) > 0 {
		t.Attrs = append([]Attr(nil), t.Attrs...)
	}
}

// Attr returns the value of the named attribute and whether it is present.
// Only the local name and namespace are compared.
func (t *Token) Attr(space, local string) (string, bool) {
	for i := range t.Attrs {
		a := &t.Attrs[i]
		if a.Name.Local == local && a.Name.Space == space {
			return a.Value, true
		}
	}
	return "", false
}

// SyntaxError is a well-formedness or syntax error with position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: %s at %s", e.Msg, e.Pos)
}
