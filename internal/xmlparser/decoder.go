package xmlparser

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// XMLNamespace is the namespace URI bound to the reserved "xml" prefix.
const XMLNamespace = "http://www.w3.org/XML/1998/namespace"

// XMLNSNamespace is the namespace URI of namespace declarations themselves.
const XMLNSNamespace = "http://www.w3.org/2000/xmlns/"

// Options configures a Decoder.
type Options struct {
	// Namespaces enables namespace processing (resolution of prefixes,
	// rejection of undeclared prefixes). It defaults to true in
	// NewDecoder when Options is nil.
	Namespaces bool
	// Fragment permits parsing of document fragments: multiple root
	// elements and character data at the top level are allowed, and the
	// XML declaration and doctype may be absent (they may be absent in
	// documents too).
	Fragment bool
	// Entities supplies additional named entities, beyond the five
	// predefined ones and those declared in the internal DTD subset.
	Entities map[string]string
	// KeepComments controls whether comment tokens are emitted. Comments
	// are emitted by default.
	SkipComments bool
}

// defaultOptions returns the options used when the caller passes nil.
func defaultOptions() Options { return Options{Namespaces: true} }

// nsFrame is one element's worth of namespace declarations.
type nsFrame struct {
	bindings map[string]string // prefix -> uri; "" key is the default ns
}

// openElem tracks an open start tag for end-tag matching.
type openElem struct {
	name     Name
	rawName  string // as written, for error messages
	pos      Pos
	nsPushed bool
}

// Decoder parses a single XML document (or fragment) and yields Tokens.
//
// A Decoder reads either from a byte slice (NewDecoder) or incrementally
// from an io.Reader (NewReaderDecoder). Both modes share one scanning code
// path: src is the buffered window of the input, and in reader mode the
// window is refilled on demand and compacted at token boundaries, so
// memory stays proportional to the largest single token rather than to
// the document size.
type Decoder struct {
	rd   io.Reader // nil in whole-buffer mode
	src  []byte    // buffered window of the input
	off  int       // read position within src
	base int       // bytes discarded before src[0] (reader mode only)
	line int
	col  int

	// srcDone means no further input will be appended to src; readErr
	// holds a sticky non-EOF reader error, surfaced instead of the
	// syntax error the truncation would otherwise produce.
	srcDone   bool
	readErr   error
	zeroReads int

	opts     Options
	ns       []nsFrame
	stack    []openElem
	pending  []Token
	seenRoot bool
	seenDecl bool
	started  bool
	eof      bool

	// internalEntities holds general entities declared in the internal
	// DTD subset.
	internalEntities map[string]string
	entityDepth      int

	// tok is the scratch slot Token returns a pointer into; buf is the
	// assembly buffer for attribute values and slow-path text (tokens
	// whose runs needed rewriting return views of it); attrs is the
	// scratch attribute slice reused across start tags; interned caches
	// small repeated strings (names, values, text runs) so token streams
	// over repetitive documents stop allocating once warm.
	tok      Token
	buf      []byte
	attrs    []Attr
	interned map[string]string

	// noBulk disables every bulk/SWAR scanning path, forcing the
	// byte-at-a-time reference scanner. It exists for position-parity
	// tests: both modes must report identical Line/Col/Offset.
	noBulk bool
}

// Interning bounds: strings longer than maxInternLen are never cached,
// and the cache stops growing at maxInternEntries so hostile input cannot
// hold unbounded memory.
const (
	maxInternLen     = 64
	maxInternEntries = 1024
)

// internBytes returns string(b), serving repeated small strings from the
// decoder's intern cache without allocating.
func (d *Decoder) internBytes(b []byte) string {
	if len(b) > maxInternLen {
		return string(b)
	}
	if s, ok := d.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.interned) < maxInternEntries {
		if d.interned == nil {
			d.interned = make(map[string]string)
		}
		d.interned[s] = s
	}
	return s
}

// NewDecoder creates a Decoder over src. A nil opts selects the defaults
// (namespace processing on, document mode).
func NewDecoder(src []byte, opts *Options) *Decoder {
	o := defaultOptions()
	if opts != nil {
		o = *opts
	}
	d := &Decoder{src: src, srcDone: true, line: 1, col: 1, opts: o}
	d.ns = []nsFrame{{bindings: map[string]string{"xml": XMLNamespace}}}
	return d
}

// NewReaderDecoder creates a Decoder that pulls input incrementally from r.
// The decoder buffers only a window of the input (compacted as tokens are
// consumed), so whole documents never need to be resident in memory. A nil
// opts selects the defaults (namespace processing on, document mode).
func NewReaderDecoder(r io.Reader, opts *Options) *Decoder {
	o := defaultOptions()
	if opts != nil {
		o = *opts
	}
	d := &Decoder{rd: r, line: 1, col: 1, opts: o}
	d.ns = []nsFrame{{bindings: map[string]string{"xml": XMLNamespace}}}
	return d
}

// Parse parses a complete document and returns all tokens.
func Parse(src []byte) ([]Token, error) {
	return parseAll(NewDecoder(src, nil))
}

// ParseFragment parses a document fragment: multiple top-level elements and
// top-level character data are permitted.
func ParseFragment(src []byte, extraEntities map[string]string) ([]Token, error) {
	o := defaultOptions()
	o.Fragment = true
	o.Entities = extraEntities
	return parseAll(NewDecoder(src, &o))
}

// ParseReader parses a complete document incrementally from r.
func ParseReader(r io.Reader) ([]Token, error) {
	return parseAll(NewReaderDecoder(r, nil))
}

// ParseFragmentReader parses a document fragment incrementally from r.
func ParseFragmentReader(r io.Reader, extraEntities map[string]string) ([]Token, error) {
	o := defaultOptions()
	o.Fragment = true
	o.Entities = extraEntities
	return parseAll(NewReaderDecoder(r, &o))
}

func parseAll(d *Decoder) ([]Token, error) {
	var toks []Token
	for {
		t, err := d.Token()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return toks, nil
		}
		// Returned tokens are views into decoder buffers; the retained
		// copies must own their payloads.
		tc := *t
		tc.Detach()
		toks = append(toks, tc)
	}
}

// readChunk is the reader-mode refill granularity.
const readChunk = 8192

// compactThreshold is how many consumed bytes accumulate before the
// window is shifted down (reader mode only).
const compactThreshold = 4096

// readMore appends one chunk of reader input to the window.
func (d *Decoder) readMore() {
	if d.srcDone {
		return
	}
	var buf [readChunk]byte
	n, err := d.rd.Read(buf[:])
	if n > 0 {
		d.zeroReads = 0
		d.src = append(d.src, buf[:n]...)
	} else if err == nil {
		// Tolerate the occasional (0, nil) read, but refuse to spin on a
		// reader that never makes progress.
		d.zeroReads++
		if d.zeroReads >= 100 {
			d.srcDone = true
			d.readErr = io.ErrNoProgress
		}
	}
	if err != nil {
		d.srcDone = true
		if err != io.EOF {
			d.readErr = err
		}
	}
}

// fill ensures at least n bytes are buffered past the read position, or
// that the input is exhausted.
func (d *Decoder) fill(n int) {
	for !d.srcDone && len(d.src)-d.off < n {
		d.readMore()
	}
}

// compact discards consumed input from the window. It must only run at
// token boundaries: scanning functions hold indexes into src.
func (d *Decoder) compact() {
	if d.rd == nil || d.off < compactThreshold {
		return
	}
	n := copy(d.src, d.src[d.off:])
	d.src = d.src[:n]
	d.base += d.off
	d.off = 0
}

// pos returns the current input position.
func (d *Decoder) pos() Pos { return Pos{Line: d.line, Col: d.col, Offset: d.base + d.off} }

var nlByte = []byte{'\n'}

// advancePos consumes n buffered bytes, updating line/col in bulk so
// scanned runs never pay per-byte position accounting. The accounting is
// exactly next()'s: one column per rune, with each invalid UTF-8 byte
// counting as one rune (which is precisely how utf8.RuneCount decodes),
// and only LF — never CR — starting a new line.
func (d *Decoder) advancePos(n int) {
	seg := d.src[d.off : d.off+n]
	d.off += n
	if j := bytes.LastIndexByte(seg, '\n'); j >= 0 {
		d.line += bytes.Count(seg, nlByte)
		d.col = 1 + utf8.RuneCount(seg[j+1:])
	} else {
		d.col += utf8.RuneCount(seg)
	}
}

// nonASCIIRun returns the maximal run of non-ASCII bytes at the read
// position without consuming it, refilling in reader mode so a multi-byte
// sequence is never split at the window edge. UTF-8 continuation and lead
// bytes are all >= 0x80, so the run boundary is always a rune boundary.
func (d *Decoder) nonASCIIRun() []byte {
	k := d.off
	for {
		for k < len(d.src) && d.src[k] >= 0x80 {
			k++
		}
		if k < len(d.src) || d.srcDone {
			return d.src[d.off:k]
		}
		d.readMore()
	}
}

// byteToken builds a token whose payload is a zero-copy byte view.
func (d *Decoder) byteToken(kind Kind, data []byte, p Pos) Token {
	return Token{Kind: kind, data: data, d: d, Pos: p}
}

// errf creates a SyntaxError at the given position.
func (d *Decoder) errf(p Pos, format string, args ...any) error {
	return &SyntaxError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// peek returns the next rune without consuming it, or -1 at end of input.
func (d *Decoder) peek() rune {
	d.fill(utf8.UTFMax)
	if d.off >= len(d.src) {
		return -1
	}
	r, _ := utf8.DecodeRune(d.src[d.off:])
	return r
}

// peekAt returns the rune n bytes ahead (only valid for ASCII lookahead).
func (d *Decoder) peekByte(n int) byte {
	d.fill(n + 1)
	if d.off+n >= len(d.src) {
		return 0
	}
	return d.src[d.off+n]
}

// next consumes and returns the next rune, or -1 at end of input.
func (d *Decoder) next() rune {
	d.fill(utf8.UTFMax)
	if d.off >= len(d.src) {
		return -1
	}
	r, size := utf8.DecodeRune(d.src[d.off:])
	if r == utf8.RuneError && size == 1 {
		// Invalid UTF-8: represent as the error rune; validity checks
		// will reject it because RuneError is legal but we flag the
		// encoding problem explicitly here.
		d.off += size
		d.col++
		return r
	}
	d.off += size
	if r == '\n' {
		d.line++
		d.col = 1
	} else {
		d.col++
	}
	return r
}

// hasPrefix reports whether the remaining input starts with s.
func (d *Decoder) hasPrefix(s string) bool {
	d.fill(len(s))
	if len(d.src)-d.off < len(s) {
		return false
	}
	return string(d.src[d.off:d.off+len(s)]) == s
}

// skip consumes len(s) bytes; the caller must have verified them.
func (d *Decoder) skip(s string) {
	for range s {
		d.next()
	}
}

// skipSpace consumes whitespace and reports whether any was present.
func (d *Decoder) skipSpace() bool {
	seen := false
	for {
		r := d.peek()
		if r < 0 || !IsSpace(r) {
			return seen
		}
		d.next()
		seen = true
	}
}

// Token returns the next token, or (nil, nil) at end of input.
func (d *Decoder) Token() (*Token, error) {
	d.compact()
	t, ok, err := d.token()
	if err != nil {
		if d.readErr != nil {
			// A truncated window produces misleading syntax errors;
			// report the underlying read failure instead.
			return nil, d.readErr
		}
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	// The returned pointer aims at a scratch slot reused by the next
	// Token/Next call; callers that keep a token across calls must copy
	// it (Next does).
	d.tok = t
	return &d.tok, nil
}

// Next returns the next token by value, or io.EOF at end of input. It is
// the pull API used by streaming consumers (validator.StreamValidator).
func (d *Decoder) Next() (Token, error) {
	t, err := d.Token()
	if err != nil {
		return Token{}, err
	}
	if t == nil {
		return Token{}, io.EOF
	}
	return *t, nil
}

func (d *Decoder) token() (Token, bool, error) {
	if len(d.pending) > 0 {
		t := d.pending[0]
		d.pending = d.pending[1:]
		return t, true, nil
	}
	if d.eof {
		return Token{}, false, nil
	}
	if !d.started {
		d.started = true
		if t, ok, err := d.xmlDecl(); err != nil {
			return Token{}, false, err
		} else if ok {
			return t, true, nil
		}
	}
	for {
		d.fill(1)
		if d.off >= len(d.src) {
			return Token{}, false, d.finish()
		}
		inContent := len(d.stack) > 0
		r := d.peek()
		if r != '<' {
			if !inContent && !d.opts.Fragment {
				// Prolog / epilog: only whitespace allowed.
				p := d.pos()
				if !d.skipSpace() {
					return Token{}, false, d.errf(p, "content outside of root element")
				}
				continue
			}
			t, err := d.text()
			return t, err == nil, err
		}
		p := d.pos()
		switch {
		case d.hasPrefix("<!--"):
			t, err := d.comment(p)
			if err != nil {
				return Token{}, false, err
			}
			if d.opts.SkipComments {
				continue
			}
			return t, true, nil
		case d.hasPrefix("<![CDATA["):
			if !inContent && !d.opts.Fragment {
				return Token{}, false, d.errf(p, "CDATA section outside of root element")
			}
			t, err := d.cdata(p)
			return t, err == nil, err
		case d.hasPrefix("<!DOCTYPE"):
			if inContent || d.seenRoot {
				return Token{}, false, d.errf(p, "DOCTYPE not allowed here")
			}
			t, err := d.doctype(p)
			return t, err == nil, err
		case d.hasPrefix("<?"):
			t, err := d.procInst(p)
			return t, err == nil, err
		case d.hasPrefix("</"):
			t, err := d.endTag(p)
			return t, err == nil, err
		case d.hasPrefix("<!"):
			return Token{}, false, d.errf(p, "unexpected markup declaration")
		default:
			if d.seenRoot && !inContent && !d.opts.Fragment {
				return Token{}, false, d.errf(p, "document has more than one root element")
			}
			t, err := d.startTag(p)
			return t, err == nil, err
		}
	}
}

// finish validates end-of-input conditions.
func (d *Decoder) finish() error {
	d.eof = true
	if d.readErr != nil {
		return d.readErr
	}
	if len(d.stack) > 0 {
		top := d.stack[len(d.stack)-1]
		return d.errf(d.pos(), "unexpected end of input: element <%s> opened at %s is not closed", top.rawName, top.pos)
	}
	if !d.seenRoot && !d.opts.Fragment {
		return d.errf(d.pos(), "document has no root element")
	}
	return nil
}

// xmlDecl parses an optional leading XML declaration.
func (d *Decoder) xmlDecl() (Token, bool, error) {
	if !d.hasPrefix("<?xml") {
		return Token{}, false, nil
	}
	// Must be followed by whitespace to be the declaration and not a PI
	// with a target beginning with "xml".
	b := d.peekByte(5)
	if b != ' ' && b != '\t' && b != '\r' && b != '\n' {
		return Token{}, false, nil
	}
	p := d.pos()
	d.skip("<?xml")
	data, err := d.untilString("?>", "XML declaration")
	if err != nil {
		return Token{}, false, err
	}
	d.seenDecl = true
	attrs, err := ParsePseudoAttrs(data)
	if err != nil {
		return Token{}, false, d.errf(p, "malformed XML declaration: %v", err)
	}
	version, ok := attrs["version"]
	if !ok || (version != "1.0" && version != "1.1") {
		return Token{}, false, d.errf(p, "XML declaration must specify version 1.0 or 1.1")
	}
	if enc, ok := attrs["encoding"]; ok {
		lower := strings.ToLower(enc)
		if lower != "utf-8" && lower != "utf8" && lower != "us-ascii" && lower != "ascii" {
			return Token{}, false, d.errf(p, "unsupported encoding %q (only UTF-8 input is supported)", enc)
		}
	}
	t := Token{Kind: KindXMLDecl, Pos: p}
	t.SetData(strings.TrimSpace(data))
	return t, true, nil
}

// ParsePseudoAttrs parses the name="value" pairs of XML and text
// declarations (e.g. `version="1.0" encoding="UTF-8"`).
func ParsePseudoAttrs(s string) (map[string]string, error) {
	out := map[string]string{}
	rest := strings.TrimSpace(s)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("expected '=' in %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !IsName(name) {
			return nil, fmt.Errorf("bad pseudo-attribute name %q", name)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if rest == "" || (rest[0] != '"' && rest[0] != '\'') {
			return nil, fmt.Errorf("pseudo-attribute %s must be quoted", name)
		}
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated value for %s", name)
		}
		out[name] = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[1+end+1:])
	}
	return out, nil
}

// untilString consumes input up to and including the terminator, returning
// the text before it.
func (d *Decoder) untilString(term, what string) (string, error) {
	b, err := d.untilBytes(term, what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// untilBytes consumes input up to and including the terminator, returning
// a zero-copy view of the text before it (valid until the next token is
// pulled). In reader mode it refills the window until the terminator
// appears, so no index into src is held across a compaction. Positions
// advance in one bulk step rather than per rune.
func (d *Decoder) untilBytes(term, what string) ([]byte, error) {
	start := d.off
	searchFrom := d.off
	for {
		idx := bytes.Index(d.src[searchFrom:], []byte(term))
		if idx >= 0 {
			end := searchFrom + idx
			if d.noBulk {
				for d.off < end+len(term) {
					d.next()
				}
			} else {
				d.advancePos(end + len(term) - d.off)
			}
			return d.src[start:end], nil
		}
		if d.srcDone {
			return nil, d.errf(d.pos(), "unterminated %s", what)
		}
		// Resume the search just before the unscanned tail so a
		// terminator split across reads is still found.
		if from := len(d.src) - len(term) + 1; from > searchFrom {
			searchFrom = from
		}
		d.readMore()
	}
}

// comment parses <!-- ... -->.
func (d *Decoder) comment(p Pos) (Token, error) {
	d.skip("<!--")
	body, err := d.untilString("-->", "comment")
	if err != nil {
		return Token{}, err
	}
	if strings.Contains(body, "--") {
		return Token{}, d.errf(p, "'--' is not permitted inside comments")
	}
	if strings.HasSuffix(body, "-") {
		return Token{}, d.errf(p, "comment must not end with '--->'")
	}
	if err := checkChars(body); err != nil {
		return Token{}, d.errf(p, "illegal character in comment: %v", err)
	}
	t := Token{Kind: KindComment, Pos: p}
	t.SetData(body)
	return t, nil
}

// cdata parses <![CDATA[ ... ]]>. The body is returned as a zero-copy
// view of the input window; character legality is checked over the whole
// run with the SWAR sweep instead of per rune.
func (d *Decoder) cdata(p Pos) (Token, error) {
	d.skip("<![CDATA[")
	body, err := d.untilBytes("]]>", "CDATA section")
	if err != nil {
		return Token{}, err
	}
	if cerr := checkCharBytes(body); cerr != nil {
		return Token{}, d.errf(p, "illegal character in CDATA section: %v", cerr)
	}
	return d.byteToken(KindCData, body, p), nil
}

// procInst parses <?target data?>.
func (d *Decoder) procInst(p Pos) (Token, error) {
	d.skip("<?")
	target, err := d.name("processing instruction target")
	if err != nil {
		return Token{}, err
	}
	if strings.EqualFold(target, "xml") {
		return Token{}, d.errf(p, "processing instruction target %q is reserved", target)
	}
	var data string
	if IsSpace(d.peek()) {
		d.skipSpace()
		data, err = d.untilString("?>", "processing instruction")
		if err != nil {
			return Token{}, err
		}
	} else {
		if !d.hasPrefix("?>") {
			return Token{}, d.errf(d.pos(), "expected '?>' or whitespace after PI target")
		}
		d.skip("?>")
	}
	if err := checkChars(data); err != nil {
		return Token{}, d.errf(p, "illegal character in processing instruction: %v", err)
	}
	t := Token{Kind: KindProcInst, Target: target, Pos: p}
	t.SetData(data)
	return t, nil
}

// name scans an XML Name. ASCII name bytes are swept directly off the
// window in one run per iteration — names never contain newlines, so the
// column advances by the run length without per-byte decoder-field
// updates; non-ASCII runes take the rune-decoding path.
func (d *Decoder) name(what string) (string, error) {
	p := d.pos()
	start := d.off
	r := d.peek()
	if r < 0 || !IsNameStartChar(r) {
		return "", d.errf(p, "expected %s", what)
	}
	d.next()
	for {
		if d.off >= len(d.src) {
			d.fill(1)
			if d.off >= len(d.src) {
				break
			}
		}
		if c := d.src[d.off]; c < 0x80 {
			if !asciiName[c] {
				break
			}
			if d.noBulk {
				d.off++
				d.col++
				continue
			}
			src, i := d.src, d.off+1
			for i < len(src) && src[i] < 0x80 && asciiName[src[i]] {
				i++
			}
			d.col += i - d.off
			d.off = i
			continue
		}
		r := d.peek()
		if r < 0 || !IsNameChar(r) {
			break
		}
		d.next()
	}
	return d.internBytes(d.src[start:d.off]), nil
}

// checkChars verifies every rune in s is a legal XML character.
func checkChars(s string) error {
	for _, r := range s {
		if !IsChar(r) {
			return fmt.Errorf("U+%04X", r)
		}
	}
	return nil
}

// plainTextByte and plainAttrByte mark ASCII bytes that need no special
// handling in character data and attribute values respectively: they are
// copied to the output in bulk, one slice append per run. Newlines stay on
// the slow path (line accounting), as do the delimiters, references,
// ']' (for the "]]>" check), CR (normalization) and control bytes.
var (
	plainTextByte [128]bool
	plainAttrByte [128]bool
)

func init() {
	for b := 0x20; b < 0x80; b++ {
		plainTextByte[b] = b != '<' && b != '&' && b != ']'
		plainAttrByte[b] = b != '<' && b != '&' && b != '"' && b != '\''
	}
	plainTextByte['\t'] = true
}

// text parses character data up to the next '<'.
//
// The fast path scans the window with the SWAR word sweep and — when the
// run needs no rewriting — returns a zero-copy view of the input: no
// copy, no string materialization, no per-byte position updates. Bytes
// that force a rewrite (references, CR normalization, invalid UTF-8
// needing U+FFFD replacement) or an exact error position drop the token
// into the per-rune assembler, seeded with the already-verified prefix;
// its output is a view of d.buf, still unmaterialized.
func (d *Decoder) text() (Token, error) {
	p := d.pos()
	if d.noBulk {
		d.buf = d.buf[:0]
		return d.textSlow(p)
	}
	start := d.off
	for {
		if d.off >= len(d.src) {
			if !d.srcDone {
				d.readMore()
				continue
			}
			break
		}
		if n := scanPlainText(d.src[d.off:]); n > 0 {
			d.advancePos(n)
			continue
		}
		c := d.src[d.off]
		if c == '<' {
			break
		}
		if c == ']' {
			if d.hasPrefix("]]>") {
				return Token{}, d.errf(d.pos(), "']]>' is not permitted in character data")
			}
			d.off++
			d.col++
			continue
		}
		if c >= 0x80 {
			seg := d.nonASCIIRun()
			if !validXMLRun(seg) {
				return d.textSlowFrom(p, start)
			}
			d.advancePos(len(seg))
			continue
		}
		// '&', CR or a control byte: rewriting or an exact error
		// position is needed — switch to the per-rune assembler.
		return d.textSlowFrom(p, start)
	}
	return d.byteToken(KindText, d.src[start:d.off], p), nil
}

// textSlowFrom re-enters the per-rune text assembler mid-token: every
// byte between start and the read position has been verified plain, so
// it seeds the assembly buffer verbatim.
func (d *Decoder) textSlowFrom(p Pos, start int) (Token, error) {
	d.buf = append(d.buf[:0], d.src[start:d.off]...)
	return d.textSlow(p)
}

// textSlow assembles character data rune by rune into d.buf, expanding
// references, normalizing CR/CRLF to LF and replacing invalid UTF-8 with
// U+FFFD. It remains the reference scanner: with noBulk set it touches
// one rune at a time, byte-exact against the SWAR path.
func (d *Decoder) textSlow(p Pos) (Token, error) {
	for {
		if !d.noBulk {
			// Bulk-copy a run of plain ASCII bytes before falling back
			// to rune-at-a-time scanning for whatever stopped the run.
			i := d.off
			for i < len(d.src) {
				c := d.src[i]
				if c >= 0x80 || !plainTextByte[c] {
					break
				}
				i++
			}
			if i > d.off {
				d.buf = append(d.buf, d.src[d.off:i]...)
				d.col += i - d.off
				d.off = i
			}
		}
		r := d.peek()
		if r < 0 || r == '<' {
			break
		}
		if r == '&' {
			s, err := d.reference(false)
			if err != nil {
				return Token{}, err
			}
			d.buf = append(d.buf, s...)
			continue
		}
		if r == ']' && d.hasPrefix("]]>") {
			return Token{}, d.errf(d.pos(), "']]>' is not permitted in character data")
		}
		if !IsChar(r) {
			return Token{}, d.errf(d.pos(), "illegal character U+%04X in character data", r)
		}
		if r == '\r' {
			// End-of-line normalization: CR and CRLF become LF.
			d.next()
			if d.peek() == '\n' {
				d.next()
			}
			d.buf = append(d.buf, '\n')
			continue
		}
		d.buf = utf8.AppendRune(d.buf, r)
		d.next()
	}
	return d.byteToken(KindText, d.buf, p), nil
}

// reference parses &name;, &#n; or &#xn;. inAttr selects the stricter
// attribute-value context.
func (d *Decoder) reference(inAttr bool) (string, error) {
	p := d.pos()
	d.next() // consume '&'
	if d.peek() == '#' {
		d.next()
		hex := false
		if d.peek() == 'x' {
			hex = true
			d.next()
		}
		var n rune
		digits := 0
		for {
			r := d.peek()
			var v rune = -1
			switch {
			case r >= '0' && r <= '9':
				v = r - '0'
			case hex && r >= 'a' && r <= 'f':
				v = r - 'a' + 10
			case hex && r >= 'A' && r <= 'F':
				v = r - 'A' + 10
			}
			if v < 0 {
				break
			}
			base := rune(10)
			if hex {
				base = 16
			}
			n = n*base + v
			if n > 0x10FFFF {
				return "", d.errf(p, "character reference out of range")
			}
			digits++
			d.next()
		}
		if digits == 0 || d.peek() != ';' {
			return "", d.errf(p, "malformed character reference")
		}
		d.next()
		if !IsChar(n) {
			return "", d.errf(p, "character reference to illegal character U+%04X", n)
		}
		return string(n), nil
	}
	name, err := d.name("entity name")
	if err != nil {
		return "", d.errf(p, "malformed entity reference")
	}
	if d.peek() != ';' {
		return "", d.errf(p, "entity reference %q missing ';'", name)
	}
	d.next()
	return d.resolveEntity(p, name, inAttr)
}

// predefEntities are the five predefined XML entities.
var predefEntities = map[string]string{
	"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": `"`,
}

// resolveEntity expands a general entity reference, recursively expanding
// references inside internal entity replacement text.
func (d *Decoder) resolveEntity(p Pos, name string, inAttr bool) (string, error) {
	if v, ok := predefEntities[name]; ok {
		return v, nil
	}
	repl, ok := d.internalEntities[name]
	if !ok {
		repl, ok = d.opts.Entities[name]
	}
	if !ok {
		return "", d.errf(p, "reference to undeclared entity %q", name)
	}
	if d.entityDepth >= 16 {
		return "", d.errf(p, "entity expansion too deep (recursive entity %q?)", name)
	}
	if strings.ContainsAny(repl, "<") {
		return "", d.errf(p, "entity %q contains markup, which this parser does not support", name)
	}
	d.entityDepth++
	defer func() { d.entityDepth-- }()
	return d.expandEntityText(p, repl, inAttr, name)
}

// expandEntityText resolves references inside entity replacement text.
func (d *Decoder) expandEntityText(p Pos, s string, inAttr bool, via string) (string, error) {
	if !strings.Contains(s, "&") {
		return s, nil
	}
	sub := NewDecoder([]byte(s), &Options{Namespaces: false, Fragment: true})
	sub.internalEntities = d.internalEntities
	sub.opts.Entities = d.opts.Entities
	sub.entityDepth = d.entityDepth
	var sb strings.Builder
	for sub.off < len(sub.src) {
		r := sub.peek()
		if r == '&' {
			v, err := sub.reference(inAttr)
			if err != nil {
				return "", d.errf(p, "in expansion of entity %q: %v", via, err)
			}
			sb.WriteString(v)
			continue
		}
		sb.WriteRune(r)
		sub.next()
	}
	return sb.String(), nil
}

// startTag parses <name attr="v" ...> or <name .../>.
func (d *Decoder) startTag(p Pos) (Token, error) {
	d.next() // consume '<'
	raw, err := d.name("element name")
	if err != nil {
		return Token{}, err
	}
	// Attributes accumulate in the decoder's scratch slice; the emitted
	// token aliases it, so it is only valid until the next Token call
	// (Detach copies it for retained tokens).
	d.attrs = d.attrs[:0]
	selfClosing := false
	for {
		had := d.skipSpace()
		r := d.peek()
		switch {
		case r == '>':
			d.next()
		case r == '/':
			d.next()
			if d.peek() != '>' {
				return Token{}, d.errf(d.pos(), "expected '>' after '/' in tag <%s>", raw)
			}
			d.next()
			selfClosing = true
		case r < 0:
			return Token{}, d.errf(p, "unterminated start tag <%s>", raw)
		default:
			if !had {
				return Token{}, d.errf(d.pos(), "expected whitespace before attribute in <%s>", raw)
			}
			a, err := d.attribute()
			if err != nil {
				return Token{}, err
			}
			d.attrs = append(d.attrs, a)
			continue
		}
		break
	}
	var attrs []Attr
	if len(d.attrs) > 0 {
		attrs = d.attrs
	}
	// Literal duplicate check (pre-namespace).
	for i := range attrs {
		for j := i + 1; j < len(attrs); j++ {
			if attrs[i].Name.Local == attrs[j].Name.Local && attrs[i].Name.Prefix == attrs[j].Name.Prefix {
				return Token{}, d.errf(attrs[j].Pos, "duplicate attribute %q in <%s>", attrs[j].Name.Qualified(), raw)
			}
		}
	}
	name := Name{Local: raw}
	nsPushed := false
	if d.opts.Namespaces {
		var err error
		name, attrs, nsPushed, err = d.applyNamespaces(p, raw, attrs)
		if err != nil {
			return Token{}, err
		}
	}
	d.seenRoot = true
	tok := Token{Kind: KindStartElement, Name: name, Attrs: attrs, SelfClosing: selfClosing, Pos: p}
	if selfClosing {
		if nsPushed {
			d.ns = d.ns[:len(d.ns)-1]
		}
		d.pending = append(d.pending, Token{Kind: KindEndElement, Name: name, Pos: p})
	} else {
		d.stack = append(d.stack, openElem{name: name, rawName: raw, pos: p, nsPushed: nsPushed})
	}
	return tok, nil
}

// attribute parses name="value".
func (d *Decoder) attribute() (Attr, error) {
	p := d.pos()
	raw, err := d.name("attribute name")
	if err != nil {
		return Attr{}, err
	}
	d.skipSpace()
	if d.peek() != '=' {
		return Attr{}, d.errf(d.pos(), "expected '=' after attribute name %q", raw)
	}
	d.next()
	d.skipSpace()
	q := d.peek()
	if q != '"' && q != '\'' {
		return Attr{}, d.errf(d.pos(), "attribute value for %q must be quoted", raw)
	}
	d.next()
	d.buf = d.buf[:0]
	for {
		if !d.noBulk {
			// SWAR-sweep plain ASCII value bytes into the buffer (both
			// quote kinds stop the run; the non-delimiting one is
			// appended by the per-rune path). Values still materialize
			// to interned strings — they feed maps and comparisons.
			if d.off >= len(d.src) && !d.srcDone {
				d.fill(1)
			}
			if n := scanPlainAttr(d.src[d.off:]); n > 0 {
				d.buf = append(d.buf, d.src[d.off:d.off+n]...)
				d.col += n
				d.off += n
				continue
			}
			if d.off < len(d.src) && d.src[d.off] >= 0x80 {
				seg := d.nonASCIIRun()
				if validXMLRun(seg) {
					d.buf = append(d.buf, seg...)
					d.advancePos(len(seg))
					continue
				}
				// Invalid UTF-8 or an encoded non-character: consume the
				// whole run per-rune (U+FFFD replacement, exact error
				// positions) so the run is never re-validated.
				end := d.off + len(seg)
				for d.off < end {
					r := d.peek()
					if !IsChar(r) {
						return Attr{}, d.errf(d.pos(), "illegal character U+%04X in attribute value", r)
					}
					d.buf = utf8.AppendRune(d.buf, r)
					d.next()
				}
				continue
			}
		}
		r := d.peek()
		switch {
		case r < 0:
			return Attr{}, d.errf(p, "unterminated attribute value for %q", raw)
		case r == q:
			d.next()
			name := splitRawName(raw)
			return Attr{Name: name, Value: d.internBytes(d.buf), Pos: p}, nil
		case r == '<':
			return Attr{}, d.errf(d.pos(), "'<' is not permitted in attribute values")
		case r == '&':
			s, err := d.reference(true)
			if err != nil {
				return Attr{}, err
			}
			d.buf = append(d.buf, s...)
		case r == '\t' || r == '\n':
			// Attribute-value normalization: whitespace becomes space.
			d.buf = append(d.buf, ' ')
			d.next()
		case r == '\r':
			d.next()
			if d.peek() == '\n' {
				d.next()
			}
			d.buf = append(d.buf, ' ')
		default:
			if !IsChar(r) {
				return Attr{}, d.errf(d.pos(), "illegal character U+%04X in attribute value", r)
			}
			d.buf = utf8.AppendRune(d.buf, r)
			d.next()
		}
	}
}

// splitRawName splits prefix:local.
func splitRawName(raw string) Name {
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		return Name{Prefix: raw[:i], Local: raw[i+1:]}
	}
	return Name{Local: raw}
}

// applyNamespaces processes xmlns declarations in attrs, resolves the element
// and attribute names, and reports whether a namespace frame was pushed.
func (d *Decoder) applyNamespaces(p Pos, rawElem string, attrs []Attr) (Name, []Attr, bool, error) {
	var decls map[string]string
	for i := range attrs {
		a := &attrs[i]
		prefix, local := a.Name.Prefix, a.Name.Local
		isDecl := prefix == "xmlns" || (prefix == "" && local == "xmlns")
		if !isDecl {
			continue
		}
		a.IsNamespaceDecl = true
		declPrefix := ""
		if prefix == "xmlns" {
			declPrefix = local
		}
		switch declPrefix {
		case "xmlns":
			return Name{}, nil, false, d.errf(a.Pos, "prefix \"xmlns\" cannot be declared")
		case "xml":
			if a.Value != XMLNamespace {
				return Name{}, nil, false, d.errf(a.Pos, "prefix \"xml\" cannot be rebound")
			}
		default:
			if a.Value == XMLNamespace || a.Value == XMLNSNamespace {
				return Name{}, nil, false, d.errf(a.Pos, "namespace %q cannot be bound to prefix %q", a.Value, declPrefix)
			}
		}
		if declPrefix != "" && a.Value == "" {
			return Name{}, nil, false, d.errf(a.Pos, "cannot undeclare prefix %q with an empty namespace name (XML 1.0)", declPrefix)
		}
		if declPrefix != "" && !IsNCName(declPrefix) {
			return Name{}, nil, false, d.errf(a.Pos, "bad namespace prefix %q", declPrefix)
		}
		if decls == nil {
			decls = map[string]string{}
		}
		decls[declPrefix] = a.Value
	}
	pushed := false
	if decls != nil {
		d.ns = append(d.ns, nsFrame{bindings: decls})
		pushed = true
	}
	en := splitRawName(rawElem)
	if en.Prefix != "" {
		if !IsNCName(en.Prefix) || !IsNCName(en.Local) {
			return Name{}, nil, false, d.errf(p, "bad qualified name %q", rawElem)
		}
		uri, ok := d.lookupNS(en.Prefix)
		if !ok {
			return Name{}, nil, false, d.errf(p, "undeclared namespace prefix %q on element <%s>", en.Prefix, rawElem)
		}
		en.Space = uri
	} else {
		if !IsNCName(en.Local) {
			return Name{}, nil, false, d.errf(p, "bad element name %q", rawElem)
		}
		if uri, ok := d.lookupNS(""); ok {
			en.Space = uri
		}
	}
	for i := range attrs {
		a := &attrs[i]
		if a.IsNamespaceDecl {
			a.Name.Space = XMLNSNamespace
			continue
		}
		if a.Name.Prefix == "" {
			continue // unprefixed attributes are in no namespace
		}
		if !IsNCName(a.Name.Prefix) || !IsNCName(a.Name.Local) {
			return Name{}, nil, false, d.errf(a.Pos, "bad qualified attribute name %q", a.Name.Qualified())
		}
		uri, ok := d.lookupNS(a.Name.Prefix)
		if !ok {
			return Name{}, nil, false, d.errf(a.Pos, "undeclared namespace prefix %q on attribute", a.Name.Prefix)
		}
		a.Name.Space = uri
	}
	// Post-resolution duplicate check: same {uri, local} via different
	// prefixes.
	for i := range attrs {
		if attrs[i].IsNamespaceDecl {
			continue
		}
		for j := i + 1; j < len(attrs); j++ {
			if attrs[j].IsNamespaceDecl {
				continue
			}
			if attrs[i].Name.Local == attrs[j].Name.Local && attrs[i].Name.Space == attrs[j].Name.Space && attrs[i].Name.Space != "" {
				return Name{}, nil, false, d.errf(attrs[j].Pos, "duplicate attribute {%s}%s", attrs[j].Name.Space, attrs[j].Name.Local)
			}
		}
	}
	return en, attrs, pushed, nil
}

// lookupNS resolves a prefix against the namespace stack.
func (d *Decoder) lookupNS(prefix string) (string, bool) {
	for i := len(d.ns) - 1; i >= 0; i-- {
		if uri, ok := d.ns[i].bindings[prefix]; ok {
			if uri == "" && prefix == "" {
				return "", false // default namespace undeclared
			}
			return uri, true
		}
	}
	if prefix == "" {
		return "", false
	}
	return "", false
}

// endTag parses </name>.
func (d *Decoder) endTag(p Pos) (Token, error) {
	d.skip("</")
	raw, err := d.name("element name in end tag")
	if err != nil {
		return Token{}, err
	}
	d.skipSpace()
	if d.peek() != '>' {
		return Token{}, d.errf(d.pos(), "expected '>' to close end tag </%s>", raw)
	}
	d.next()
	if len(d.stack) == 0 {
		return Token{}, d.errf(p, "unexpected end tag </%s>", raw)
	}
	top := d.stack[len(d.stack)-1]
	if top.rawName != raw {
		return Token{}, d.errf(p, "end tag </%s> does not match start tag <%s> opened at %s", raw, top.rawName, top.pos)
	}
	d.stack = d.stack[:len(d.stack)-1]
	if top.nsPushed {
		d.ns = d.ns[:len(d.ns)-1]
	}
	return Token{Kind: KindEndElement, Name: top.name, Pos: p}, nil
}

// doctype parses <!DOCTYPE name externalID? [internal subset]? >.
// The internal subset's raw text is returned in Token.Data; the external
// identifier (if any) in Token.Target. ENTITY declarations in the internal
// subset are registered for reference expansion.
func (d *Decoder) doctype(p Pos) (Token, error) {
	d.skip("<!DOCTYPE")
	if !d.skipSpace() {
		return Token{}, d.errf(p, "expected whitespace after <!DOCTYPE")
	}
	name, err := d.name("doctype name")
	if err != nil {
		return Token{}, err
	}
	d.skipSpace()
	extStart := d.off
	// External ID: SYSTEM literal | PUBLIC literal literal.
	if d.hasPrefix("SYSTEM") || d.hasPrefix("PUBLIC") {
		isPublic := d.hasPrefix("PUBLIC")
		d.skip("SYSTEM") // both keywords are 6 bytes
		if !d.skipSpace() {
			return Token{}, d.errf(d.pos(), "expected whitespace after external ID keyword")
		}
		if _, err := d.quotedLiteral(); err != nil {
			return Token{}, err
		}
		if isPublic {
			if !d.skipSpace() {
				return Token{}, d.errf(d.pos(), "expected whitespace between public and system literals")
			}
			if _, err := d.quotedLiteral(); err != nil {
				return Token{}, err
			}
		}
	}
	extID := strings.TrimSpace(string(d.src[extStart:d.off]))
	d.skipSpace()
	subset := ""
	if d.peek() == '[' {
		d.next()
		subset, err = d.internalSubset(p)
		if err != nil {
			return Token{}, err
		}
	}
	d.skipSpace()
	if d.peek() != '>' {
		return Token{}, d.errf(d.pos(), "expected '>' to close DOCTYPE")
	}
	d.next()
	if err := d.registerEntities(subset); err != nil {
		return Token{}, err
	}
	t := Token{Kind: KindDoctype, Name: Name{Local: name}, Target: extID, Pos: p}
	t.SetData(subset)
	return t, nil
}

// quotedLiteral parses a quoted literal ("..." or '...').
func (d *Decoder) quotedLiteral() (string, error) {
	q := d.peek()
	if q != '"' && q != '\'' {
		return "", d.errf(d.pos(), "expected quoted literal")
	}
	d.next()
	start := d.off
	for {
		r := d.peek()
		if r < 0 {
			return "", d.errf(d.pos(), "unterminated literal")
		}
		if r == q {
			s := string(d.src[start:d.off])
			d.next()
			return s, nil
		}
		d.next()
	}
}

// internalSubset consumes the internal DTD subset up to the closing ']',
// honoring quoted literals and comments, and returns the raw text.
func (d *Decoder) internalSubset(p Pos) (string, error) {
	start := d.off
	depth := 0
	for {
		r := d.peek()
		switch {
		case r < 0:
			return "", d.errf(p, "unterminated internal DTD subset")
		case r == ']' && depth == 0:
			s := string(d.src[start:d.off])
			d.next()
			return s, nil
		case r == '"' || r == '\'':
			if _, err := d.quotedLiteral(); err != nil {
				return "", err
			}
		case d.hasPrefix("<!--"):
			if _, err := d.comment(d.pos()); err != nil {
				return "", err
			}
		case r == '<':
			depth++
			d.next()
		case r == '>':
			if depth > 0 {
				depth--
			}
			d.next()
		default:
			d.next()
		}
	}
}

// registerEntities extracts internal general entity declarations
// (<!ENTITY name "value">) from the internal subset so that references to
// them expand during parsing. Parameter entities and external entities are
// recognized and skipped.
func (d *Decoder) registerEntities(subset string) error {
	rest := subset
	for {
		i := strings.Index(rest, "<!ENTITY")
		if i < 0 {
			return nil
		}
		rest = rest[i+len("<!ENTITY"):]
		rest = strings.TrimLeft(rest, " \t\r\n")
		if strings.HasPrefix(rest, "%") {
			continue // parameter entity: not expanded in content
		}
		j := strings.IndexFunc(rest, IsSpace)
		if j < 0 {
			continue
		}
		name := rest[:j]
		rest = strings.TrimLeft(rest[j:], " \t\r\n")
		if rest == "" || (rest[0] != '"' && rest[0] != '\'') {
			continue // external entity (SYSTEM/PUBLIC): unsupported, skipped
		}
		q := rest[0]
		k := strings.IndexByte(rest[1:], q)
		if k < 0 {
			continue
		}
		value := rest[1 : 1+k]
		rest = rest[1+k+1:]
		if !IsName(name) {
			continue
		}
		if d.internalEntities == nil {
			d.internalEntities = map[string]string{}
		}
		if _, dup := d.internalEntities[name]; !dup {
			// First declaration binds, per XML 1.0.
			d.internalEntities[name] = value
		}
	}
}
