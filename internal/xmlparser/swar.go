package xmlparser

// SWAR (SIMD-within-a-register) scanning for the tokenizer hot loops.
//
// Character data, CDATA sections and attribute values are overwhelmingly
// runs of plain ASCII bytes; the scanner's job is to find the rare byte
// that needs attention (markup delimiters, references, normalization,
// controls, non-ASCII). These helpers examine eight bytes per step with
// unsigned word arithmetic: a run is admitted 8 bytes at a time and the
// word that trips a mask is re-examined by an exact per-byte table, so
// the masks are allowed (and expected) to over-approximate.
//
// The mask algebra is the classic one: for a little-endian word w,
//
//	hasless(w, n) = (w - n*0x0101..) & ^w & 0x8080..
//	equal(w, b)   = hasless(w ^ (b*0x0101..), 1)
//
// flags the high bit of every lane whose byte is < n (resp. == b). Borrow
// propagation can flag lanes *after* a genuine hit, never before it, so
// "mask != 0" always means the word really contains a special byte at or
// before the first flagged lane — exactly the guarantee the two-phase
// (word sweep, then byte verify) structure needs.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"unicode/utf8"
)

const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// swarLess flags lanes whose byte value is < n (n must be <= 128).
func swarLess(w uint64, n byte) uint64 {
	return (w - swarOnes*uint64(n)) & ^w & swarHighs
}

// swarEq flags lanes whose byte equals b.
func swarEq(w uint64, b byte) uint64 {
	return swarLess(w^(swarOnes*uint64(b)), 1)
}

// specialText marks bytes that end a bulk character-data run: markup and
// reference starters, ']' (for the "]]>" check), CR (end-of-line
// normalization), illegal controls, and all non-ASCII lead/continuation
// bytes (validated as whole runs separately). Tab and LF are plain — LF
// only affects position accounting, which the bulk advance recomputes.
var specialText [256]bool

// specialAttr marks bytes that end a bulk attribute-value run: both quote
// kinds, '<', '&', every control (tab/LF/CR normalize to space), and
// non-ASCII bytes.
var specialAttr [256]bool

func init() {
	for c := 0; c < 256; c++ {
		b := byte(c)
		switch {
		case c >= 0x80:
			specialText[c] = true
			specialAttr[c] = true
		case b == '<' || b == '&':
			specialText[c] = true
			specialAttr[c] = true
		case b == ']' || b == '\r':
			specialText[c] = true
		case c < 0x20:
			specialText[c] = b != '\t' && b != '\n'
			specialAttr[c] = true
		}
		if b == '"' || b == '\'' {
			specialAttr[c] = true
		}
	}
	// CR is a control, caught by the c < 0x20 arm for attributes too.
	specialAttr['\r'] = true
}

// textMask flags lanes that may hold a special character-data byte.
func textMask(w uint64) uint64 {
	m := w & swarHighs // non-ASCII
	m |= swarEq(w, '<') | swarEq(w, '&') | swarEq(w, ']') | swarEq(w, '\r')
	ctl := swarLess(w, 0x20) &^ (swarEq(w, '\t') | swarEq(w, '\n'))
	return m | ctl
}

// attrMask flags lanes that may hold a special attribute-value byte.
func attrMask(w uint64) uint64 {
	m := w & swarHighs
	m |= swarEq(w, '<') | swarEq(w, '&') | swarEq(w, '"') | swarEq(w, '\'')
	return m | swarLess(w, 0x20)
}

// scanPlainText returns the length of the prefix of s containing only
// plain character-data bytes (no delimiters, references, CR, controls or
// non-ASCII). Words are admitted 8 at a time; the word that trips the
// mask — or the sub-word tail — is resolved by the exact table.
func scanPlainText(s []byte) int {
	i := 0
	for i+8 <= len(s) {
		if textMask(binary.LittleEndian.Uint64(s[i:])) != 0 {
			break
		}
		i += 8
	}
	for i < len(s) && !specialText[s[i]] {
		i++
	}
	return i
}

// scanPlainAttr is scanPlainText for attribute values.
func scanPlainAttr(s []byte) int {
	i := 0
	for i+8 <= len(s) {
		if attrMask(binary.LittleEndian.Uint64(s[i:])) != 0 {
			break
		}
		i += 8
	}
	for i < len(s) && !specialAttr[s[i]] {
		i++
	}
	return i
}

// Encodings of the two non-character code points that are valid UTF-8 but
// illegal XML. 0xEF can never be a continuation byte, so any occurrence
// of these sequences sits on a rune boundary.
var (
	seqFFFE = []byte("\xef\xbf\xbe")
	seqFFFF = []byte("\xef\xbf\xbf")
)

// validXMLRun reports whether seg — a run of non-ASCII bytes — is valid
// UTF-8 containing no U+FFFE/U+FFFF. UTF-8 validity is decided over the
// whole run at once (amortized) instead of rune by rune; callers fall
// back to the per-rune path (which replaces invalid sequences with
// U+FFFD and pins down exact error positions) when this returns false.
func validXMLRun(seg []byte) bool {
	if !utf8.Valid(seg) {
		return false
	}
	return !bytes.Contains(seg, seqFFFE) && !bytes.Contains(seg, seqFFFF)
}

// checkCharBytes verifies every character of b is a legal XML character,
// sweeping plain ASCII 8 bytes at a time. Decoding matches a for-range
// loop over string(b): invalid UTF-8 yields U+FFFD (legal), so the only
// rejections are ASCII controls outside \t\n\r and encoded U+FFFE/U+FFFF.
func checkCharBytes(b []byte) *charError {
	i := 0
	for i < len(b) {
		if i+8 <= len(b) {
			w := binary.LittleEndian.Uint64(b[i:])
			ctl := swarLess(w, 0x20) &^ (swarEq(w, '\t') | swarEq(w, '\n') | swarEq(w, '\r'))
			if w&swarHighs == 0 && ctl == 0 {
				i += 8
				continue
			}
		}
		c := b[i]
		switch {
		case c == '\t' || c == '\n' || c == '\r':
			i++
		case c < 0x20:
			return &charError{r: rune(c)}
		case c < 0x80:
			i++
		default:
			r, size := utf8.DecodeRune(b[i:])
			if r == 0xFFFE || r == 0xFFFF {
				return &charError{r: r}
			}
			i += size
		}
	}
	return nil
}

// charError is an illegal-character report, formatted like checkChars'.
type charError struct{ r rune }

func (e *charError) Error() string { return fmt.Sprintf("U+%04X", e.r) }
