package xmlparser

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse holds three invariants over arbitrary input:
//
//  1. no panics, on either decoding path;
//  2. the whole-buffer and incremental-reader paths agree exactly —
//     same tokens (with positions) or same error;
//  3. round-trip: for accepted input, serializing the token stream and
//     reparsing it reaches a fixed point (serialize∘parse is idempotent).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a>hi &amp; bye</a>`,
		`<po:order xmlns:po="urn:p" po:n="1"><po:x/></po:order>`,
		"<?xml version=\"1.0\"?>\n<r a=\"v\"><!--c--><![CDATA[<]]><?pi d?></r>",
		`<a b=" x  y " c="&#9;"/>`,
		"<m>t1<i>x</i>\r\nt2</m>",
		`<a><b></a>`,
		`<a>&bad;</a>`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		bufToks, bufErr := Parse(data)
		rdToks, rdErr := ParseReader(bytes.NewReader(data))
		if (bufErr == nil) != (rdErr == nil) {
			t.Fatalf("path divergence: buffer err=%v reader err=%v", bufErr, rdErr)
		}
		// The SWAR fast paths must agree byte-exactly (tokens, positions,
		// errors) with the byte-at-a-time reference scanner.
		refDec := NewDecoder(data, nil)
		refDec.noBulk = true
		refToks, refErr := parseAll(refDec)
		if (bufErr == nil) != (refErr == nil) {
			t.Fatalf("bulk/reference divergence: bulk err=%v ref err=%v", bufErr, refErr)
		}
		if bufErr != nil {
			if bufErr.Error() != rdErr.Error() {
				t.Fatalf("error divergence:\n  buffer: %v\n  reader: %v", bufErr, rdErr)
			}
			if bufErr.Error() != refErr.Error() {
				t.Fatalf("bulk/reference error divergence:\n  bulk: %v\n  ref:  %v", bufErr, refErr)
			}
			return
		}
		if !reflect.DeepEqual(bufToks, rdToks) {
			t.Fatalf("token divergence:\n  buffer: %#v\n  reader: %#v", bufToks, rdToks)
		}
		if !reflect.DeepEqual(bufToks, refToks) {
			t.Fatalf("bulk/reference token divergence:\n  bulk: %#v\n  ref:  %#v", bufToks, refToks)
		}
		s1, ok := serializeTokens(bufToks)
		if !ok {
			return // token stream not losslessly serializable (doctype etc.)
		}
		toks2, err := Parse([]byte(s1))
		if err != nil {
			t.Fatalf("reparse of serialized output failed: %v\ninput: %q\nserialized: %q", err, data, s1)
		}
		s2, ok := serializeTokens(toks2)
		if !ok {
			t.Fatalf("reparse produced unserializable tokens from %q", s1)
		}
		if s1 != s2 {
			t.Fatalf("round-trip not idempotent:\n  first:  %q\n  second: %q", s1, s2)
		}
	})
}

// serializeTokens writes a token stream back to XML text. It reports
// ok=false for streams it cannot serialize losslessly (doctype and XML
// declarations, or data containing delimiter sequences the lenient
// scanner tolerated).
func serializeTokens(toks []Token) (string, bool) {
	var sb strings.Builder
	for i := range toks {
		t := &toks[i]
		switch t.Kind {
		case KindStartElement:
			sb.WriteByte('<')
			sb.WriteString(t.Name.Qualified())
			for _, a := range t.Attrs {
				sb.WriteByte(' ')
				sb.WriteString(a.Name.Qualified())
				sb.WriteString(`="`)
				escapeAttr(&sb, a.Value)
				sb.WriteByte('"')
			}
			sb.WriteByte('>')
		case KindEndElement:
			sb.WriteString("</")
			sb.WriteString(t.Name.Qualified())
			sb.WriteByte('>')
		case KindText:
			escapeText(&sb, t.Data())
		case KindCData:
			if strings.Contains(t.Data(), "]]>") {
				return "", false
			}
			sb.WriteString("<![CDATA[")
			sb.WriteString(t.Data())
			sb.WriteString("]]>")
		case KindComment:
			if strings.Contains(t.Data(), "--") || strings.HasSuffix(t.Data(), "-") {
				return "", false
			}
			sb.WriteString("<!--")
			sb.WriteString(t.Data())
			sb.WriteString("-->")
		case KindProcInst:
			if strings.Contains(t.Data(), "?>") {
				return "", false
			}
			sb.WriteString("<?")
			sb.WriteString(t.Target)
			if t.Data() != "" {
				sb.WriteByte(' ')
				sb.WriteString(t.Data())
			}
			sb.WriteString("?>")
		default: // KindDoctype, KindXMLDecl
			return "", false
		}
	}
	return sb.String(), true
}

func escapeText(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '\r':
			sb.WriteString("&#13;")
		default:
			sb.WriteRune(r)
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		case '\t':
			sb.WriteString("&#9;")
		case '\n':
			sb.WriteString("&#10;")
		case '\r':
			sb.WriteString("&#13;")
		default:
			sb.WriteRune(r)
		}
	}
}
