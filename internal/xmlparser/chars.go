package xmlparser

// Character classification per XML 1.0 (Fifth Edition).

// IsChar reports whether r is a legal XML character (production [2]).
func IsChar(r rune) bool {
	return r == 0x9 || r == 0xA || r == 0xD ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// IsSpace reports whether r is XML whitespace (production [3]).
func IsSpace(r rune) bool {
	return r == 0x20 || r == 0x9 || r == 0xD || r == 0xA
}

// nameStartRanges holds the NameStartChar ranges of production [4],
// excluding ':' which is handled separately for namespace processing.
var nameStartRanges = [][2]rune{
	{'A', 'Z'},
	{'_', '_'},
	{'a', 'z'},
	{0xC0, 0xD6},
	{0xD8, 0xF6},
	{0xF8, 0x2FF},
	{0x370, 0x37D},
	{0x37F, 0x1FFF},
	{0x200C, 0x200D},
	{0x2070, 0x218F},
	{0x2C00, 0x2FEF},
	{0x3001, 0xD7FF},
	{0xF900, 0xFDCF},
	{0xFDF0, 0xFFFD},
	{0x10000, 0xEFFFF},
}

// nameExtraRanges holds the additional NameChar ranges of production [4a],
// again excluding ':'.
var nameExtraRanges = [][2]rune{
	{'-', '-'},
	{'.', '.'},
	{'0', '9'},
	{0xB7, 0xB7},
	{0x300, 0x36F},
	{0x203F, 0x2040},
}

func inRanges(r rune, ranges [][2]rune) bool {
	for _, rg := range ranges {
		if r >= rg[0] && r <= rg[1] {
			return true
		}
	}
	return false
}

// asciiNameStart and asciiName are lookup tables front-ending the range
// scans for the ASCII bytes that dominate real documents; the decoder's
// name scanner indexes them directly per byte.
var (
	asciiNameStart [128]bool
	asciiName      [128]bool
)

func init() {
	for b := 0; b < 128; b++ {
		r := rune(b)
		asciiNameStart[b] = r == ':' || inRanges(r, nameStartRanges)
		asciiName[b] = asciiNameStart[b] || inRanges(r, nameExtraRanges)
	}
}

// IsNameStartChar reports whether r may start an XML name. The colon is
// accepted (it is a NameStartChar in XML 1.0); namespace processing rejects
// misplaced colons separately.
func IsNameStartChar(r rune) bool {
	if r >= 0 && r < 128 {
		return asciiNameStart[r]
	}
	return inRanges(r, nameStartRanges)
}

// IsNameChar reports whether r may appear in an XML name after the first
// character.
func IsNameChar(r rune) bool {
	if r >= 0 && r < 128 {
		return asciiName[r]
	}
	return inRanges(r, nameStartRanges) || inRanges(r, nameExtraRanges)
}

// IsName reports whether s is a legal XML Name (production [5]).
func IsName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !IsNameStartChar(r) {
				return false
			}
		} else if !IsNameChar(r) {
			return false
		}
	}
	return true
}

// IsNCName reports whether s is a legal namespace-aware NCName: a Name with
// no colon.
func IsNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == ':' {
			return false
		}
		if i == 0 {
			if !inRanges(r, nameStartRanges) {
				return false
			}
		} else if !inRanges(r, nameStartRanges) && !inRanges(r, nameExtraRanges) {
			return false
		}
	}
	return true
}

// IsNmtoken reports whether s is a legal Nmtoken (production [7]): one or
// more NameChars.
func IsNmtoken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !IsNameChar(r) {
			return false
		}
	}
	return true
}
