package xmlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestRobustnessRandomCorruption is failure injection on the parser: take
// a valid document, corrupt random bytes, and require that the parser
// never panics — it either reports a syntax error or yields a token
// stream whose serialization is itself parseable.
func TestRobustnessRandomCorruption(t *testing.T) {
	base := `<?xml version="1.0"?><po date="1999-10-20"><a x="1">text &amp; more</a><b><!--c--><![CDATA[raw]]></b><c/></po>`
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		buf := []byte(base)
		// 1-3 corruptions: overwrite, delete or insert a byte.
		for k := 0; k < 1+r.Intn(3); k++ {
			pos := r.Intn(len(buf))
			switch r.Intn(3) {
			case 0:
				buf[pos] = byte(r.Intn(128))
			case 1:
				buf = append(buf[:pos], buf[pos+1:]...)
			case 2:
				buf = append(buf[:pos], append([]byte{byte(32 + r.Intn(95))}, buf[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panic on corrupted input %q: %v", buf, p)
				}
			}()
			toks, err := Parse(buf)
			if err != nil {
				// A positioned syntax error is the expected outcome.
				if se, ok := err.(*SyntaxError); ok && se.Pos.Line < 1 {
					t.Fatalf("error with bad position: %v", err)
				}
				return
			}
			// Accepted: the token stream must be structurally sane
			// (balanced start/end).
			depth := 0
			for _, tok := range toks {
				switch tok.Kind {
				case KindStartElement:
					depth++
				case KindEndElement:
					depth--
					if depth < 0 {
						t.Fatalf("unbalanced tokens accepted for %q", buf)
					}
				}
			}
			if depth != 0 {
				t.Fatalf("unbalanced accept for %q", buf)
			}
		}()
	}
}

// TestRobustnessTruncation: every prefix of a valid document either errors
// or parses (it can only parse when the prefix happens to be complete).
func TestRobustnessTruncation(t *testing.T) {
	base := `<a href="x">one<b>two</b>&lt;three&gt;<c/></a>`
	for i := 0; i <= len(base); i++ {
		prefix := base[:i]
		toks, err := Parse([]byte(prefix))
		if err == nil && i < len(base) {
			// Only acceptable if the prefix is a complete document —
			// impossible here because the root closes at the very end.
			t.Fatalf("incomplete prefix %q accepted with %d tokens", prefix, len(toks))
		}
	}
}

// TestRobustnessHugeAttribute: long values don't trip buffer handling.
func TestRobustnessHugeAttribute(t *testing.T) {
	val := strings.Repeat("x&amp;", 50_000)
	src := `<a k="` + val + `">` + val + `</a>`
	toks, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("x&", 50_000)
	if toks[0].Attrs[0].Value != want {
		t.Error("huge attribute mangled")
	}
}

// TestRobustnessManyAttributes: wide elements are handled and duplicate
// detection stays correct.
func TestRobustnessManyAttributes(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<e")
	for i := 0; i < 500; i++ {
		sb.WriteString(" a")
		sb.WriteString(strings.Repeat("x", i%7))
		sb.WriteString(string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('a'+i/260)))
		sb.WriteString(`="v"`)
	}
	sb.WriteString("/>")
	// Some generated names may collide; the parser must either parse or
	// report the duplicate, never panic.
	_, err := Parse([]byte(sb.String()))
	_ = err
}

// TestNUL: NUL bytes are illegal XML characters everywhere.
func TestNUL(t *testing.T) {
	for _, src := range []string{"<a>\x00</a>", "<a k=\"\x00\"/>", "<a\x00/>"} {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("NUL accepted in %q", src)
		}
	}
}
