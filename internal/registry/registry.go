package registry

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/compat"
	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// FileStat records one document of an entry's dependency closure with
// the file state it was compiled from.
type FileStat struct {
	Path    string
	ModTime time.Time
	Size    int64
}

// Entry is one named, versioned, compiled schema. Entries are immutable
// after publication: a reload that changes a schema publishes a new Entry
// rather than mutating the old one, so a request that resolved an Entry
// keeps a consistent (schema, validator, version) triple for its whole
// lifetime no matter how many swaps happen meanwhile.
type Entry struct {
	// Name is the registry key: the schema file's base name without the
	// .xsd extension ("po.xsd" serves as "po").
	Name string
	// Version starts at 1 and increments every time the entry's file
	// closure is observed to have changed. It survives transient load
	// errors (a bad intermediate write does not reset the sequence).
	Version int
	// Path, ModTime and Size identify the root file state this entry was
	// compiled from.
	Path    string
	ModTime time.Time
	Size    int64
	// Files is the dependency closure the entry was compiled from — the
	// root document first, then every included/imported/redefined file in
	// load order, each with the state observed at compile time. A change
	// to ANY of these invalidates the entry on the next reload; an
	// unchanged closure keeps the entry (and its warm compiled-model
	// caches) across reloads.
	Files []FileStat
	// Compat classifies this version against the previous served version
	// of the same name (nil for version 1).
	Compat *compat.Report
	// LoadedAt is when this version was compiled.
	LoadedAt time.Time

	Schema    *xsd.Schema
	Validator *validator.Validator
	Stream    *validator.StreamValidator
	// Binder decodes documents against this schema version into typed
	// values / canonical JSON and marshals them back. It shares Validator
	// (and therefore its warm compiled-model cache), and is immutable like
	// the rest of the entry.
	Binder *bind.Binder
}

// GateError reports a recompiled schema rejected by the registry's
// compatibility gate; the previous version keeps serving.
type GateError struct {
	Name   string
	Gate   compat.Level
	Report *compat.Report
}

// Error summarizes the violated gate with the first break reasons.
func (e *GateError) Error() string {
	breaks := e.Report.BackwardBreaks
	if e.Gate == compat.Forward {
		breaks = e.Report.ForwardBreaks
	}
	msg := fmt.Sprintf("compatibility gate: new version classified %q, gate requires %q",
		e.Report.Level, e.Gate)
	if len(breaks) > 0 {
		n := len(breaks)
		if n > 3 {
			breaks = breaks[:3]
		}
		msg += ": " + strings.Join(breaks, "; ")
		if n > 3 {
			msg += fmt.Sprintf("; and %d more", n-3)
		}
	}
	return msg
}

// snapshot is one immutable registry state. Readers load it with a single
// atomic pointer read; Reload builds a fresh one aside and publishes it
// with a single atomic store, so there is no state a reader can observe
// half-swapped.
type snapshot struct {
	gen     int64
	entries map[string]*Entry
	names   []string          // sorted keys of entries
	errs    map[string]string // name -> last load error (entry may still serve stale)
	// fingerprint identifies the published content state: a hash over
	// every entry's file closure (paths, sizes, mtimes) and the pending
	// load errors. Two nodes serving the same schema directory publish
	// the same fingerprint, which is what cluster gossip compares to
	// decide whether the fleet has converged.
	fingerprint string
}

var emptySnapshot = &snapshot{entries: map[string]*Entry{}, errs: map[string]string{}}

// Registry serves named schemas loaded from one directory tree and
// hot-swaps them when files change. Every top-level *.xsd file is an
// entry; the documents it reaches through xs:include / xs:import /
// xs:redefine may live anywhere under the same directory (subdirectories
// are not scanned for entries, so a conventional lib/ or common/ folder
// holds shared parts without serving them as schemas of their own).
// Get/List/Errors are wait-free snapshot reads; Reload is serialized by a
// mutex and publishes atomically.
//
// Old versions are drained, not torn down: an Entry stays alive for as
// long as any in-flight request references it, and its Validator's
// compiled-model cache goes away only when the garbage collector proves
// nobody can use it again. A schema file that fails to parse keeps its
// previous good version serving and surfaces the error via Errors.
type Registry struct {
	dir   string
	vopts *validator.Options

	mu  sync.Mutex // serializes Reload
	cur atomic.Pointer[snapshot]

	// Gate, when set before the first Reload/Watch call, rejects any
	// recompiled schema whose compatibility classification against the
	// previous version does not satisfy the level: the old version keeps
	// serving and the violation surfaces through Errors (as a *GateError)
	// and OnCompat. The zero value (compat.None) accepts everything and
	// only records reports.
	Gate compat.Level

	// OnReload, when set before the first Reload/Watch call, observes
	// every reload attempt (generation, number of changed entries, and
	// the aggregated load error, nil when clean). The server uses it for
	// structured logging and reload metrics.
	OnReload func(gen int64, changed int, err error)

	// OnCompat, when set before the first Reload/Watch call, observes
	// every compatibility classification a reload produces (one per
	// recompiled schema that had a previous good version), with gated
	// reporting whether the gate rejected the new version.
	OnCompat func(name string, report *compat.Report, gated bool)

	// Workers caps the parallel-compile pool a Reload uses for changed
	// schemas. Zero (the default) means GOMAXPROCS; 1 compiles serially.
	// Exists for benchmarks that price the parallelism itself.
	Workers int

	// DisableSharedParse turns off the content-hash keyed schema-document
	// parse cache a Reload normally shares across the schemas it
	// recompiles (fifty dependents of one library then re-parse it fifty
	// times, the pre-sharing behavior). Exists for benchmarks that price
	// the sharing itself.
	DisableSharedParse bool
}

// New creates a registry over dir. The validator options are applied to
// every compiled schema (nil selects the defaults). The registry starts
// empty; call Reload to perform the initial load.
func New(dir string, vopts *validator.Options) *Registry {
	r := &Registry{dir: dir, vopts: vopts}
	r.cur.Store(emptySnapshot)
	return r
}

// Dir returns the directory the registry loads from.
func (r *Registry) Dir() string { return r.dir }

// Get returns the current entry for name. The returned entry remains
// valid (and its validator usable) even if a reload replaces it while the
// caller is still validating — that is the drain guarantee.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := r.cur.Load().entries[name]
	return e, ok
}

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	s := r.cur.Load()
	out := make([]*Entry, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, s.entries[n])
	}
	return out
}

// Errors returns the last load error per schema name, for names whose
// most recent file state failed to parse or compile. A name present here
// may still be served from its previous good version.
func (r *Registry) Errors() map[string]string {
	s := r.cur.Load()
	out := make(map[string]string, len(s.errs))
	for k, v := range s.errs {
		out[k] = v
	}
	return out
}

// Generation returns the published snapshot's generation, which
// increments on every Reload that changed what is served (entries
// added, replaced or removed, or the pending-error set shifting). A
// no-op reload republishes the same generation, so the number
// identifies a content state: one node SIGHUPed into picking up a new
// schema version moves one generation ahead of its peers, and the
// cluster's gossip loop pulls the others forward until the fleet
// reports the same generation again. Tests use it to await a swap.
func (r *Registry) Generation() int64 { return r.cur.Load().gen }

// Fingerprint returns a hash identifying the published content state:
// every entry's dependency closure (canonical paths, sizes, mtimes)
// plus the pending load errors. Two registries over the same schema
// directory that have observed the same file states report the same
// fingerprint regardless of how many reloads each has run, which makes
// it the cluster's convergence check (generations say how far a node
// has moved; fingerprints say whether two nodes serve the same thing).
func (r *Registry) Fingerprint() string { return r.cur.Load().fingerprint }

// reloadCache deduplicates filesystem work within one Reload: every file
// is statted at most once (change detection over closures shares
// dependencies), read at most once (many schemas importing one common
// file cost one read, not one per dependent), and parsed to a DOM at
// most once per distinct content (the parse cache is keyed by a content
// hash, so the same bytes reached through different paths — or by fifty
// dependents of one shared library — cost one dom.Parse per reload).
// The cache dies with the reload pass; nothing is shared across reloads.
type reloadCache struct {
	mu    sync.Mutex
	stats map[string]statResult
	reads map[string]readResult
	doms  map[[sha256.Size]byte]domResult
}

type domResult struct {
	doc *dom.Document
	err error
}

// parseDoc is installed as ParseOptions.ParseDoc for every schema
// compiled in this reload pass. Cached documents are shared between the
// parallel compile workers; that is safe because the xsd parser treats
// schema DOMs as read-only and never Releases them (each parser keeps
// its own component maps keyed by element pointer).
func (c *reloadCache) parseDoc(src []byte) (*dom.Document, error) {
	key := sha256.Sum256(src)
	c.mu.Lock()
	if r, ok := c.doms[key]; ok {
		c.mu.Unlock()
		return r.doc, r.err
	}
	c.mu.Unlock()
	// Parse outside the lock: one slow parse must not serialize the
	// whole compile pool. A racing duplicate parse of the same content
	// is harmless — last write wins, both documents are valid.
	doc, err := dom.Parse(src)
	c.mu.Lock()
	c.doms[key] = domResult{doc, err}
	c.mu.Unlock()
	return doc, err
}

type statResult struct {
	mod  time.Time
	size int64
	err  error
}

type readResult struct {
	src []byte
	err error
}

func newReloadCache() *reloadCache {
	return &reloadCache{
		stats: map[string]statResult{},
		reads: map[string]readResult{},
		doms:  map[[sha256.Size]byte]domResult{},
	}
}

func (c *reloadCache) stat(path string) (time.Time, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.stats[path]; ok {
		return s.mod, s.size, s.err
	}
	var s statResult
	if info, err := os.Stat(path); err != nil {
		s.err = err
	} else {
		s.mod, s.size = info.ModTime(), info.Size()
	}
	c.stats[path] = s
	return s.mod, s.size, s.err
}

// readFile is installed as the DirResolver's ReadFile hook; it also
// captures the stat so closure stamps reflect the state that was read.
func (c *reloadCache) readFile(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.reads[path]; ok {
		return r.src, r.err
	}
	var s statResult
	if info, err := os.Stat(path); err != nil {
		s.err = err
	} else {
		s.mod, s.size = info.ModTime(), info.Size()
	}
	if _, ok := c.stats[path]; !ok {
		c.stats[path] = s
	}
	var r readResult
	if s.err != nil {
		r.err = s.err
	} else {
		r.src, r.err = os.ReadFile(path)
	}
	c.reads[path] = r
	return r.src, r.err
}

// changedSince reports whether any file in the entry's compile-time
// closure differs from its recorded state (or can no longer be statted).
func changedSince(prev *Entry, cache *reloadCache) bool {
	if len(prev.Files) == 0 {
		return true // pre-closure entry: always recompile
	}
	for _, fs := range prev.Files {
		mod, size, err := cache.stat(fs.Path)
		if err != nil || !mod.Equal(fs.ModTime) || size != fs.Size {
			return true
		}
	}
	return false
}

// Reload rescans the directory and atomically publishes a new snapshot.
// Entries whose whole dependency closure is unchanged (same ModTime and
// Size for every file) keep their existing Entry — same Validator, same
// warm compiled-model cache — while a change to any imported or included
// file recompiles exactly the dependents whose closure contains it.
// Changed schemas are parsed and compiled aside, in parallel, before the
// swap, so readers never see a partially-loaded state; a shared per-reload
// cache stats and reads every file at most once no matter how many
// schemas import it. Recompiled schemas that had a previous version are
// classified against it (Entry.Compat) and, when Gate is set, rejected if
// the classification does not satisfy it. The returned count is the
// number of entries added, replaced or removed; the error aggregates
// per-file failures (which do not prevent the other files from loading).
func (r *Registry) Reload() (changed int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	old := r.cur.Load()
	next := &snapshot{
		gen:     old.gen + 1,
		entries: make(map[string]*Entry, len(old.entries)),
		errs:    map[string]string{},
	}

	dirents, derr := os.ReadDir(r.dir)
	if derr != nil {
		// Directory unreadable: keep serving the old set, bump nothing.
		if r.OnReload != nil {
			r.OnReload(old.gen, 0, derr)
		}
		return 0, derr
	}

	cache := newReloadCache()
	type work struct {
		key, path string
		prev      *Entry
	}
	var pending []work
	seen := map[string]bool{}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".xsd") {
			continue
		}
		key := strings.TrimSuffix(name, ".xsd")
		seen[key] = true
		path := filepath.Join(r.dir, name)
		if prev := old.entries[key]; prev != nil && !changedSince(prev, cache) {
			next.entries[key] = prev // unchanged closure: keep the warm validator
			continue
		}
		pending = append(pending, work{key, path, old.entries[key]})
	}

	// Compile every changed schema aside, in parallel. Parsing dominates
	// cold-start cost; the pool is bounded so a 1000-schema start does not
	// spawn 1000 goroutines fighting over the allocator.
	type result struct {
		entry *Entry
		err   error
	}
	results := make([]result, len(pending))
	var catalog map[string]string
	if len(pending) > 0 {
		// One namespace catalog per reload: schemaLocation-less xs:import
		// resolves to the directory's document declaring that namespace.
		// Catalog reads go through the same per-reload cache, so the scan
		// costs nothing extra for files a compile would read anyway.
		catalog, _ = xsd.BuildCatalog(r.dir, cache.readFile) //nolint:errcheck // an unreadable tree fails per-schema below
	}
	if len(pending) > 0 {
		workers := r.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(pending) {
			workers = len(pending)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range pending {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				e, lerr := r.load(pending[i].key, pending[i].path, pending[i].prev, cache, catalog)
				results[i] = result{e, lerr}
			}(i)
		}
		wg.Wait()
	}

	var errs []error
	for i, w := range pending {
		entry, lerr := results[i].entry, results[i].err
		if lerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", w.key, lerr))
			r.keepStale(old, next, w.key, lerr)
			var ge *GateError
			if errors.As(lerr, &ge) && r.OnCompat != nil {
				r.OnCompat(w.key, ge.Report, true)
			}
			continue
		}
		next.entries[w.key] = entry
		changed++
		if entry.Compat != nil && r.OnCompat != nil {
			r.OnCompat(w.key, entry.Compat, false)
		}
	}
	for key := range old.entries {
		if !seen[key] {
			changed++ // removed from disk: removed from serving
		}
	}

	next.names = make([]string, 0, len(next.entries))
	for k := range next.entries {
		next.names = append(next.names, k)
	}
	sort.Strings(next.names)
	next.fingerprint = fingerprint(next)

	// A reload that changed nothing — same entries, same pending errors —
	// republishes the old generation: the generation identifies a content
	// state, not a reload count, so a fleet of nodes polling the same
	// unchanged directory stays on one number instead of drifting apart.
	if changed == 0 && sameErrors(old.errs, next.errs) {
		next.gen = old.gen
	}

	r.cur.Store(next)
	err = errors.Join(errs...)
	if r.OnReload != nil {
		r.OnReload(next.gen, changed, err)
	}
	return changed, err
}

// sameErrors reports whether two pending-error maps are equal.
func sameErrors(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// fingerprint hashes the snapshot's content identity: every entry's file
// closure state plus the pending errors, in sorted order. Versions and
// generations are deliberately excluded — they count a node's own
// observations, so they differ between a node booted yesterday and one
// booted this morning even when both serve identical bytes.
func fingerprint(s *snapshot) string {
	h := fnv.New64a()
	for _, name := range s.names {
		e := s.entries[name]
		h.Write([]byte(name)) //nolint:errcheck // fnv never fails
		h.Write([]byte{0})    //nolint:errcheck
		for _, fs := range e.Files {
			h.Write([]byte(fs.Path))                                      //nolint:errcheck
			h.Write([]byte(strconv.FormatInt(fs.Size, 10)))               //nolint:errcheck
			h.Write([]byte(strconv.FormatInt(fs.ModTime.UnixNano(), 10))) //nolint:errcheck
			h.Write([]byte{0})                                            //nolint:errcheck
		}
	}
	errNames := make([]string, 0, len(s.errs))
	for k := range s.errs {
		errNames = append(errNames, k)
	}
	sort.Strings(errNames)
	for _, k := range errNames {
		h.Write([]byte(k))         //nolint:errcheck
		h.Write([]byte(s.errs[k])) //nolint:errcheck
		h.Write([]byte{0})         //nolint:errcheck
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// keepStale carries a previously-good entry into the next snapshot when
// its file's current state is unloadable, and records the error.
func (r *Registry) keepStale(old, next *snapshot, key string, err error) {
	if prev := old.entries[key]; prev != nil {
		next.entries[key] = prev
	}
	next.errs[key] = err.Error()
}

// load reads, parses and compiles one schema file — following its
// import/include/redefine references through the shared reload cache,
// with location-less imports resolved by the reload's namespace catalog —
// into a fresh Entry, classifying it against prev when there is one.
func (r *Registry) load(key, path string, prev *Entry, cache *reloadCache, catalog map[string]string) (*Entry, error) {
	res := xsd.NewDirResolver(r.dir)
	res.ReadFile = cache.readFile
	res.Catalog = catalog
	popts := &xsd.ParseOptions{Resolver: res}
	if !r.DisableSharedParse {
		popts.ParseDoc = cache.parseDoc
	}
	schema, err := xsd.ParseFile(path, popts)
	if err != nil {
		return nil, err
	}
	sources := schema.Sources()
	files := make([]FileStat, 0, len(sources))
	for _, src := range sources {
		mod, size, serr := cache.stat(src)
		if serr != nil {
			return nil, serr
		}
		files = append(files, FileStat{Path: src, ModTime: mod, Size: size})
	}
	v := validator.New(schema, r.vopts)
	entry := &Entry{
		Name:      key,
		Version:   1,
		Path:      path,
		ModTime:   files[0].ModTime,
		Size:      files[0].Size,
		Files:     files,
		LoadedAt:  time.Now(),
		Schema:    schema,
		Validator: v,
		Stream:    v.Stream(),
		Binder:    bind.New(schema, v),
	}
	if prev != nil {
		entry.Version = prev.Version + 1
		entry.Compat = compat.Classify(prev.Schema, schema)
		if !entry.Compat.Satisfies(r.Gate) {
			return nil, &GateError{Name: key, Gate: r.Gate, Report: entry.Compat}
		}
	}
	return entry, nil
}

// Watch reloads on a fixed interval and whenever kick delivers (the
// binary wires SIGHUP into kick), until ctx is cancelled. There is no
// fsnotify dependency: mtime polling is portable and one stat per closure
// file per interval is free at this scale. Reload errors are reported
// through OnReload and the next tick tries again.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, kick <-chan struct{}) {
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case _, ok := <-kick:
			if !ok {
				kick = nil
				continue
			}
		}
		r.Reload() //nolint:errcheck // surfaced via OnReload and Errors
	}
}
