package registry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// Entry is one named, versioned, compiled schema. Entries are immutable
// after publication: a reload that changes a schema publishes a new Entry
// rather than mutating the old one, so a request that resolved an Entry
// keeps a consistent (schema, validator, version) triple for its whole
// lifetime no matter how many swaps happen meanwhile.
type Entry struct {
	// Name is the registry key: the schema file's base name without the
	// .xsd extension ("po.xsd" serves as "po").
	Name string
	// Version starts at 1 and increments every time the file's content is
	// observed to have changed. It survives transient load errors (a bad
	// intermediate write does not reset the sequence).
	Version int
	// Path, ModTime and Size identify the file state this entry was
	// compiled from; an unchanged (ModTime, Size) pair short-circuits
	// recompilation on reload, which is what keeps the validator's
	// compiled content-model cache warm across no-op reloads.
	Path    string
	ModTime time.Time
	Size    int64
	// LoadedAt is when this version was compiled.
	LoadedAt time.Time

	Schema    *xsd.Schema
	Validator *validator.Validator
	Stream    *validator.StreamValidator
	// Binder decodes documents against this schema version into typed
	// values / canonical JSON and marshals them back. It shares Validator
	// (and therefore its warm compiled-model cache), and is immutable like
	// the rest of the entry.
	Binder *bind.Binder
}

// snapshot is one immutable registry state. Readers load it with a single
// atomic pointer read; Reload builds a fresh one aside and publishes it
// with a single atomic store, so there is no state a reader can observe
// half-swapped.
type snapshot struct {
	gen     int64
	entries map[string]*Entry
	names   []string          // sorted keys of entries
	errs    map[string]string // name -> last load error (entry may still serve stale)
}

var emptySnapshot = &snapshot{entries: map[string]*Entry{}, errs: map[string]string{}}

// Registry serves named schemas loaded from one directory and hot-swaps
// them when the files change. Get/List/Errors are wait-free snapshot
// reads; Reload is serialized by a mutex and publishes atomically.
//
// Old versions are drained, not torn down: an Entry stays alive for as
// long as any in-flight request references it, and its Validator's
// compiled-model cache goes away only when the garbage collector proves
// nobody can use it again. A schema file that fails to parse keeps its
// previous good version serving and surfaces the error via Errors.
type Registry struct {
	dir   string
	vopts *validator.Options

	mu  sync.Mutex // serializes Reload
	cur atomic.Pointer[snapshot]

	// OnReload, when set before the first Reload/Watch call, observes
	// every reload attempt (generation, number of changed entries, and
	// the aggregated load error, nil when clean). The server uses it for
	// structured logging and reload metrics.
	OnReload func(gen int64, changed int, err error)
}

// New creates a registry over dir. The validator options are applied to
// every compiled schema (nil selects the defaults). The registry starts
// empty; call Reload to perform the initial load.
func New(dir string, vopts *validator.Options) *Registry {
	r := &Registry{dir: dir, vopts: vopts}
	r.cur.Store(emptySnapshot)
	return r
}

// Dir returns the directory the registry loads from.
func (r *Registry) Dir() string { return r.dir }

// Get returns the current entry for name. The returned entry remains
// valid (and its validator usable) even if a reload replaces it while the
// caller is still validating — that is the drain guarantee.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := r.cur.Load().entries[name]
	return e, ok
}

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	s := r.cur.Load()
	out := make([]*Entry, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, s.entries[n])
	}
	return out
}

// Errors returns the last load error per schema name, for names whose
// most recent file state failed to parse or compile. A name present here
// may still be served from its previous good version.
func (r *Registry) Errors() map[string]string {
	s := r.cur.Load()
	out := make(map[string]string, len(s.errs))
	for k, v := range s.errs {
		out[k] = v
	}
	return out
}

// Generation returns the published snapshot's generation, which
// increments on every Reload (including no-op ones). Tests and the
// integration harness use it to await a swap.
func (r *Registry) Generation() int64 { return r.cur.Load().gen }

// Reload rescans the directory and atomically publishes a new snapshot.
// Unchanged files (same ModTime and Size) keep their existing Entry —
// same Validator, same warm compiled-model cache. Changed or new files
// are parsed and compiled aside before the swap, so readers never see a
// partially-loaded state. The returned count is the number of entries
// added, replaced or removed; the error aggregates per-file failures
// (which do not prevent the other files from loading).
func (r *Registry) Reload() (changed int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	old := r.cur.Load()
	next := &snapshot{
		gen:     old.gen + 1,
		entries: make(map[string]*Entry, len(old.entries)),
		errs:    map[string]string{},
	}

	dirents, derr := os.ReadDir(r.dir)
	if derr != nil {
		// Directory unreadable: keep serving the old set, bump nothing.
		if r.OnReload != nil {
			r.OnReload(old.gen, 0, derr)
		}
		return 0, derr
	}

	var errs []error
	seen := map[string]bool{}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".xsd") {
			continue
		}
		key := strings.TrimSuffix(name, ".xsd")
		seen[key] = true
		path := filepath.Join(r.dir, name)
		info, ierr := de.Info()
		if ierr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", key, ierr))
			r.keepStale(old, next, key, ierr)
			continue
		}
		prev := old.entries[key]
		if prev != nil && prev.ModTime.Equal(info.ModTime()) && prev.Size == info.Size() {
			next.entries[key] = prev // unchanged: keep the warm validator
			continue
		}
		entry, lerr := r.load(key, path, info)
		if lerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", key, lerr))
			r.keepStale(old, next, key, lerr)
			continue
		}
		if prev != nil {
			entry.Version = prev.Version + 1
		}
		next.entries[key] = entry
		changed++
	}
	for key := range old.entries {
		if !seen[key] {
			changed++ // removed from disk: removed from serving
		}
	}

	next.names = make([]string, 0, len(next.entries))
	for k := range next.entries {
		next.names = append(next.names, k)
	}
	sort.Strings(next.names)

	r.cur.Store(next)
	err = errors.Join(errs...)
	if r.OnReload != nil {
		r.OnReload(next.gen, changed, err)
	}
	return changed, err
}

// keepStale carries a previously-good entry into the next snapshot when
// its file's current state is unloadable, and records the error.
func (r *Registry) keepStale(old, next *snapshot, key string, err error) {
	if prev := old.entries[key]; prev != nil {
		next.entries[key] = prev
	}
	next.errs[key] = err.Error()
}

// load reads, parses and compiles one schema file into a fresh Entry.
func (r *Registry) load(key, path string, info os.FileInfo) (*Entry, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	schema, err := xsd.Parse(src, nil)
	if err != nil {
		return nil, err
	}
	v := validator.New(schema, r.vopts)
	return &Entry{
		Name:      key,
		Version:   1,
		Path:      path,
		ModTime:   info.ModTime(),
		Size:      info.Size(),
		LoadedAt:  time.Now(),
		Schema:    schema,
		Validator: v,
		Stream:    v.Stream(),
		Binder:    bind.New(schema, v),
	}, nil
}

// Watch reloads on a fixed interval and whenever kick delivers (the
// binary wires SIGHUP into kick), until ctx is cancelled. There is no
// fsnotify dependency: mtime polling is portable and one stat per schema
// per interval is free at this scale. Reload errors are reported through
// OnReload and the next tick tries again.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, kick <-chan struct{}) {
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case _, ok := <-kick:
			if !ok {
				kick = nil
				continue
			}
		}
		r.Reload() //nolint:errcheck // surfaced via OnReload and Errors
	}
}
