// Package registry serves named, versioned, compiled XML Schemas loaded
// from a directory, with atomic hot-swap on change — the schema-evolution
// story of the paper's §5 (naming stability across schema versions)
// operationalized for a long-running validation service.
//
// Each *.xsd file in the directory becomes one Entry keyed by its base
// name, carrying the parsed xsd.Schema, a shared validator.Validator
// (whose compiled content-model cache is warm for the entry's lifetime),
// and a monotonically increasing per-name Version.
//
// # Swap protocol
//
// The registry's whole state is one immutable snapshot behind an
// atomic.Pointer. Readers (Get, List, Errors, Generation) are wait-free:
// one atomic load, then plain reads of immutable data. Reload builds the
// next snapshot entirely aside — reusing the Entry (and its warm caches)
// for files whose (ModTime, Size) is unchanged, parsing and compiling
// changed files before anything is published — and then swaps the
// pointer. There is no state a reader can observe half-updated, and an
// in-flight validation that already resolved an Entry drains on the old
// version untouched; its Validator is reclaimed by the garbage collector
// once the last request lets go. A file that fails to parse keeps its
// previous good version serving and reports through Errors.
//
// Watch polls on an interval and on a kick channel (the xsdserved binary
// wires SIGHUP into it); there is deliberately no fsnotify dependency.
//
// # Role in the pipeline
//
// registry is the bottom of the serving layer (registry → server → obs):
// package server resolves every request's schema through Get, and the
// hot-swap race test in this package is the serving-layer counterpart of
// the validator's concurrency suite.
package registry
