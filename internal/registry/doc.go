// Package registry serves named, versioned, compiled XML Schemas loaded
// from a directory tree, with atomic hot-swap on change — the
// schema-evolution story of the paper's §5 (naming stability across
// schema versions) operationalized for a long-running validation
// service.
//
// Each top-level *.xsd file in the directory becomes one Entry keyed by
// its base name, carrying the parsed xsd.Schema, a shared
// validator.Validator (whose compiled content-model cache is warm for
// the entry's lifetime), a monotonically increasing per-name Version,
// and the entry's full dependency closure: every document reached
// through xs:include / xs:import / xs:redefine, with the file state
// observed at compile time. Subdirectories are not scanned for entries,
// so a conventional lib/ folder holds shared parts without serving them.
//
// # Swap protocol and invalidation
//
// The registry's whole state is one immutable snapshot behind an
// atomic.Pointer. Readers (Get, List, Errors, Generation) are wait-free:
// one atomic load, then plain reads of immutable data. Reload builds the
// next snapshot entirely aside and then swaps the pointer, so there is
// no state a reader can observe half-updated, and an in-flight
// validation that already resolved an Entry drains on the old version
// untouched; its Validator is reclaimed by the garbage collector once
// the last request lets go.
//
// Invalidation is by closure: an entry is kept — same Validator, same
// warm automaton caches — iff every file in its closure has unchanged
// (ModTime, Size), so editing one imported file recompiles exactly the
// dependents whose closure contains it. Changed schemas compile in
// parallel under a bounded pool (Workers; GOMAXPROCS by default) with a
// per-reload cache that stats and reads each unique file once no matter
// how many schemas share it — the cold-start path EXPERIMENTS.md E13
// measures. A file that fails to parse keeps its previous good version
// serving and reports through Errors.
//
// # Compatibility gating
//
// Every recompile of a schema with a serving version is classified by
// compat.Classify (Entry.Compat) and observed through OnCompat. When
// Gate is set, a new version whose classification does not satisfy it is
// not published: the previous version keeps serving and the rejection
// surfaces through Errors as a *GateError. Gating is per transition,
// always against the currently serving version.
//
// Watch polls on an interval and on a kick channel (the xsdserved binary
// wires SIGHUP into it); there is deliberately no fsnotify dependency.
//
// # Role in the pipeline
//
// registry is the bottom of the serving layer (registry → server → obs):
// package server resolves every request's schema through Get, and the
// hot-swap race test in this package is the serving-layer counterpart of
// the validator's concurrency suite.
package registry
