package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/schemas"
)

const sharedLib = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:shared"
            xmlns:s="urn:shared">
  <xsd:complexType name="Meta">
    <xsd:sequence>
      <xsd:element name="id" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

// importerOf returns a schema in its own namespace importing the shared
// library, declaring one root element with an extra optional child.
func importerOf(ns, root, extra string) string {
	return `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="` + ns + `"
            xmlns:s="urn:shared" elementFormDefault="qualified">
  <xsd:import namespace="urn:shared" schemaLocation="lib/common.xsd"/>
  <xsd:element name="` + root + `">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="meta" type="s:Meta"/>` + extra + `
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`
}

// TestClosureInvalidation is the satellite fix: editing an *imported*
// file must recompile every schema whose dependency closure contains it
// — and only those.
func TestClosureInvalidation(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	libPath := filepath.Join(dir, "lib", "common.xsd")
	writeSchema(t, libPath, sharedLib, base)
	writeSchema(t, filepath.Join(dir, "a.xsd"), importerOf("urn:a", "adoc", ""), base)
	writeSchema(t, filepath.Join(dir, "standalone.xsd"), schemas.PurchaseOrderXSD, base)

	r := New(dir, nil)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	a1, ok := r.Get("a")
	if !ok {
		t.Fatal("a.xsd did not load")
	}
	if len(a1.Files) != 2 || filepath.Base(a1.Files[1].Path) != "common.xsd" {
		t.Fatalf("a closure = %+v, want root + lib/common.xsd", a1.Files)
	}
	if _, ok := r.Get("lib"); ok {
		t.Fatal("subdirectory content must not serve as an entry")
	}
	s1, _ := r.Get("standalone")

	// Edit only the imported library: a widening change.
	widened := strings.Replace(sharedLib,
		`<xsd:element name="id" type="xsd:string"/>`,
		`<xsd:element name="id" type="xsd:string"/>
      <xsd:element name="note" type="xsd:string" minOccurs="0"/>`, 1)
	writeSchema(t, libPath, widened, base.Add(time.Minute))
	changed, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed = %d, want 1 (only the importer of lib/common.xsd)", changed)
	}
	a2, _ := r.Get("a")
	if a2 == a1 || a2.Version != 2 {
		t.Fatalf("a not recompiled after its import changed: version %d", a2.Version)
	}
	if a2.Compat == nil || a2.Compat.Level != compat.Backward {
		t.Errorf("a.Compat = %+v, want backward (optional element added)", a2.Compat)
	}
	if s2, _ := r.Get("standalone"); s2 != s1 {
		t.Error("standalone entry was rebuilt although nothing in its closure changed")
	}
}

// TestCompatGate verifies the reload gate: a breaking rewrite is
// rejected, the previous version keeps serving, and OnCompat observes
// the gated report.
func TestCompatGate(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	path := filepath.Join(dir, "po.xsd")
	writeSchema(t, path, schemas.PurchaseOrderXSD, base)

	r := New(dir, nil)
	r.Gate = compat.Backward
	type obs struct {
		name  string
		level compat.Level
		gated bool
	}
	var seen []obs
	r.OnCompat = func(name string, rep *compat.Report, gated bool) {
		seen = append(seen, obs{name, rep.Level, gated})
	}
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}

	// Backward-compatible evolution passes the gate.
	writeSchema(t, path, poV2, base.Add(time.Minute))
	if _, err := r.Reload(); err != nil {
		t.Fatalf("backward evolution rejected: %v", err)
	}
	e, _ := r.Get("po")
	if e.Version != 2 || e.Compat == nil || !e.Compat.Backward() {
		t.Fatalf("entry after compatible swap: version %d compat %+v", e.Version, e.Compat)
	}

	// A breaking rewrite (required element renamed) is rejected.
	broken := strings.Replace(poV2,
		`<xsd:element name="shipTo" type="USAddress"/>`,
		`<xsd:element name="destination" type="USAddress"/>`, 1)
	writeSchema(t, path, broken, base.Add(2*time.Minute))
	if _, err := r.Reload(); err == nil || !strings.Contains(err.Error(), "compatibility gate") {
		t.Fatalf("gate did not reject breaking rewrite: err = %v", err)
	}
	e, _ = r.Get("po")
	if e.Version != 2 {
		t.Fatalf("breaking version published: version %d", e.Version)
	}
	if msg := r.Errors()["po"]; !strings.Contains(msg, "compatibility gate") {
		t.Errorf("Errors()[po] = %q, want gate message", msg)
	}
	if len(seen) != 2 || seen[0].gated || !seen[1].gated {
		t.Errorf("OnCompat observations = %+v, want pass then gated", seen)
	}

	// Reverting to the served content clears the violation.
	writeSchema(t, path, poV2, base.Add(3*time.Minute))
	if _, err := r.Reload(); err != nil {
		t.Fatalf("revert rejected: %v", err)
	}
	if e, _ = r.Get("po"); e.Version != 3 {
		t.Errorf("revert version = %d, want 3", e.Version)
	}
}

// TestParallelColdStart loads a 200-schema import graph sharing one
// library file, then verifies a no-op reload keeps every warm entry.
func TestParallelColdStart(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeSchema(t, filepath.Join(dir, "lib", "common.xsd"), sharedLib, base)
	const n = 200
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%03d", i)
		writeSchema(t, filepath.Join(dir, name+".xsd"),
			importerOf("urn:"+name, "doc", ""), base)
	}

	r := New(dir, nil)
	changed, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if changed != n {
		t.Fatalf("cold start changed = %d, want %d", changed, n)
	}
	first := map[string]*Entry{}
	for _, e := range r.List() {
		first[e.Name] = e
	}
	if len(first) != n {
		t.Fatalf("serving %d entries, want %d", len(first), n)
	}

	changed, err = r.Reload()
	if err != nil || changed != 0 {
		t.Fatalf("no-op reload: changed=%d err=%v", changed, err)
	}
	for _, e := range r.List() {
		if first[e.Name] != e {
			t.Fatalf("entry %s rebuilt on a no-op reload", e.Name)
		}
	}
}

// TestLocationlessImportCatalog resolves an xs:import carrying only a
// namespace through the per-reload catalog built from the schema
// directory: the importing entry must compile, and the cataloged library
// must appear in its dependency closure so edits to it invalidate the
// dependent.
func TestLocationlessImportCatalog(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeSchema(t, filepath.Join(dir, "lib", "common.xsd"), sharedLib, base)
	noLoc := strings.Replace(importerOf("urn:a", "alpha", ""),
		` schemaLocation="lib/common.xsd"`, "", 1)
	writeSchema(t, filepath.Join(dir, "alpha.xsd"), noLoc, base)

	r := New(dir, nil)
	if _, err := r.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	e, ok := r.Get("alpha")
	if !ok {
		t.Fatalf("alpha not served; errors: %v", r.Errors())
	}
	if len(e.Files) != 2 {
		t.Fatalf("closure = %d files, want root + cataloged import: %+v", len(e.Files), e.Files)
	}

	// Editing the cataloged library must recompile the dependent.
	writeSchema(t, filepath.Join(dir, "lib", "common.xsd"), sharedLib, base.Add(time.Minute))
	if _, err := r.Reload(); err != nil {
		t.Fatalf("second reload: %v", err)
	}
	if e2, _ := r.Get("alpha"); e2.Version != e.Version+1 {
		t.Errorf("alpha version = %d, want %d after cataloged-import edit", e2.Version, e.Version+1)
	}
}
