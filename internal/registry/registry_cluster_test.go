package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/schemas"
)

// TestParseDocCacheSharesIdenticalContent: the per-reload DOM cache
// returns the SAME document for the same bytes — that is the whole
// mechanism behind cross-entry sharing of identical imported
// compilations (fifty dependents of one library parse it once).
func TestParseDocCacheSharesIdenticalContent(t *testing.T) {
	cache := newReloadCache()
	d1, err := cache.parseDoc([]byte(sharedLib))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cache.parseDoc([]byte(sharedLib))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("identical content parsed twice; cache returned distinct documents")
	}
	d3, err := cache.parseDoc([]byte(schemas.PurchaseOrderXSD))
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different content returned the same document")
	}
}

// TestSharedParseEquivalence: sharing parsed DOMs across the reload's
// compile workers must be invisible — same entries, same verdicts, same
// fingerprint as the no-sharing path.
func TestSharedParseEquivalence(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	if err := os.MkdirAll(filepath.Join(dir, "lib"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeSchema(t, filepath.Join(dir, "lib", "common.xsd"), sharedLib, base)
	const n = 20
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("imp%02d", i)
		writeSchema(t, filepath.Join(dir, name+".xsd"), importerOf("urn:"+name, "doc", ""), base)
	}
	writeSchema(t, filepath.Join(dir, "po.xsd"), schemas.PurchaseOrderXSD, base)

	shared := New(dir, nil)
	if _, err := shared.Reload(); err != nil {
		t.Fatal(err)
	}
	direct := New(dir, nil)
	direct.DisableSharedParse = true
	if _, err := direct.Reload(); err != nil {
		t.Fatal(err)
	}

	if len(shared.List()) != n+1 || len(direct.List()) != n+1 {
		t.Fatalf("entry counts differ: shared %d, direct %d", len(shared.List()), len(direct.List()))
	}
	if shared.Fingerprint() != direct.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", shared.Fingerprint(), direct.Fingerprint())
	}
	for _, reg := range []*Registry{shared, direct} {
		e, ok := reg.Get("po")
		if !ok {
			t.Fatal("po missing")
		}
		res := e.Validator.ValidateDocument(mustParse(t, schemas.PurchaseOrderDoc))
		if !res.OK() {
			t.Fatalf("po document invalid under shared-parse variant: %v", res.Violations)
		}
		// meta is qualified (importer's elementFormDefault); id comes
		// from the shared library, whose locals are unqualified.
		doc := mustParse(t, `<q:doc xmlns:q="urn:imp07"><q:meta><id>x</id></q:meta></q:doc>`)
		e, ok = reg.Get("imp07")
		if !ok {
			t.Fatal("imp07 missing")
		}
		if res := e.Validator.ValidateDocument(doc); !res.OK() {
			t.Fatalf("importer document invalid: %v", res.Violations)
		}
	}
}

// TestGenerationIdentifiesContentState: no-op reloads republish the
// same generation; only content changes advance it. This is what lets
// a fleet converge on one number instead of drifting one generation
// apart per poll tick.
func TestGenerationIdentifiesContentState(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	writeSchema(t, filepath.Join(dir, "po.xsd"), schemas.PurchaseOrderXSD, base)

	r := New(dir, nil)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 1 {
		t.Fatalf("generation after initial load = %d, want 1", r.Generation())
	}
	fp1 := r.Fingerprint()
	for i := 0; i < 3; i++ {
		if _, err := r.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Generation() != 1 {
		t.Fatalf("generation after no-op reloads = %d, want 1", r.Generation())
	}
	if r.Fingerprint() != fp1 {
		t.Fatal("fingerprint moved across no-op reloads")
	}

	writeSchema(t, filepath.Join(dir, "po.xsd"), poV2, base.Add(time.Minute))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 2 {
		t.Fatalf("generation after content change = %d, want 2", r.Generation())
	}
	if r.Fingerprint() == fp1 {
		t.Fatal("fingerprint unchanged across a content change")
	}

	// A reload that newly FAILS is a state change too (the error set
	// shifted), even though the stale entry keeps serving.
	writeSchema(t, filepath.Join(dir, "po.xsd"), "<broken", base.Add(2*time.Minute))
	if _, err := r.Reload(); err == nil {
		t.Fatal("reload of a broken schema reported no error")
	}
	if r.Generation() != 3 {
		t.Fatalf("generation after error-state change = %d, want 3", r.Generation())
	}
	gen := r.Generation()
	if _, err := r.Reload(); err == nil {
		t.Fatal("re-reload of a broken schema reported no error")
	}
	if r.Generation() != gen {
		t.Fatalf("generation moved (%d -> %d) while the error state was unchanged", gen, r.Generation())
	}
}

// TestFingerprintConvergesAcrossNodes: two registries over one schema
// directory report the same fingerprint once both have observed the
// same file states — regardless of how many reloads each has run.
// Fleet convergence is exactly this property plus gossip.
func TestFingerprintConvergesAcrossNodes(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	writeSchema(t, filepath.Join(dir, "po.xsd"), schemas.PurchaseOrderXSD, base)

	a, b := New(dir, nil), New(dir, nil)
	if _, err := a.Reload(); err != nil {
		t.Fatal(err)
	}
	// b reloads three times to a's one; their generations may differ,
	// their fingerprints must not.
	for i := 0; i < 3; i++ {
		if _, err := b.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same dir, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}

	writeSchema(t, filepath.Join(dir, "po.xsd"), poV2, base.Add(time.Minute))
	if _, err := a.Reload(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("a observed the change but still matches b")
	}
	if _, err := b.Reload(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("both observed the change but fingerprints differ")
	}
}
