package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/schemas"
)

func mustParse(t *testing.T, src string) *dom.Document {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// poV2 is the purchase-order schema with an optional <priority> tacked on
// the end of PurchaseOrderType — a backward-compatible evolution, so the
// paper's Figure 1 document is valid under both versions. That is exactly
// the property the hot-swap test needs: whichever version a request
// lands on, validation must succeed.
var poV2 = strings.Replace(schemas.PurchaseOrderXSD,
	`<xsd:element name="items" type="Items"/>`,
	`<xsd:element name="items" type="Items"/>
      <xsd:element name="priority" type="xsd:string" minOccurs="0"/>`, 1)

// writeSchema writes content and forces a distinct mtime so change
// detection never depends on filesystem timestamp granularity.
func writeSchema(t *testing.T, path, content string, stamp time.Time) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
}

func TestReloadBasics(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	poPath := filepath.Join(dir, "po.xsd")
	writeSchema(t, poPath, schemas.PurchaseOrderXSD, base)
	writeSchema(t, filepath.Join(dir, "broken.xsd"), "<xsd:schema", base)
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := New(dir, nil)
	if _, ok := r.Get("po"); ok {
		t.Fatal("registry serves entries before the first Reload")
	}
	changed, err := r.Reload()
	if err == nil {
		t.Fatal("broken.xsd did not surface a load error")
	}
	if changed != 1 {
		t.Fatalf("changed = %d, want 1 (po loaded, broken failed, txt ignored)", changed)
	}
	e, ok := r.Get("po")
	if !ok || e.Version != 1 {
		t.Fatalf("po entry = %+v, ok=%v", e, ok)
	}
	if res := e.Validator.ValidateDocument(mustParse(t, schemas.PurchaseOrderDoc)); !res.OK() {
		t.Fatalf("paper document invalid under loaded schema: %v", res.Err())
	}
	if msg := r.Errors()["broken"]; msg == "" {
		t.Error("broken.xsd missing from Errors()")
	}
	if _, ok := r.Get("broken"); ok {
		t.Error("never-good schema must not serve")
	}
	if _, ok := r.Get("notes"); ok {
		t.Error("non-.xsd file leaked into the registry")
	}

	// No-op reload: same entry pointer, so the compiled-model cache
	// survives and no version churn happens.
	if _, err := r.Reload(); err == nil {
		t.Fatal("broken.xsd error must persist across reloads")
	}
	if e2, _ := r.Get("po"); e2 != e {
		t.Error("unchanged file was recompiled on reload (entry pointer changed)")
	}

	// Content change: new entry, bumped version.
	writeSchema(t, poPath, poV2, base.Add(time.Second))
	if _, err := r.Reload(); err == nil {
		t.Fatal("expected broken.xsd error again")
	}
	e3, _ := r.Get("po")
	if e3 == e || e3.Version != 2 {
		t.Fatalf("after rewrite: entry %p version %d, want new entry at version 2", e3, e3.Version)
	}

	// Removal: the name stops serving.
	if err := os.Remove(poPath); err != nil {
		t.Fatal(err)
	}
	r.Reload() //nolint:errcheck
	if _, ok := r.Get("po"); ok {
		t.Error("removed schema still serving")
	}
}

func TestBrokenRewriteKeepsServingStale(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	poPath := filepath.Join(dir, "po.xsd")
	writeSchema(t, poPath, schemas.PurchaseOrderXSD, base)

	r := New(dir, nil)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	good, _ := r.Get("po")

	// A bad intermediate write (e.g. a non-atomic editor save) must not
	// take the schema out of service.
	writeSchema(t, poPath, "not xml at all", base.Add(time.Second))
	if _, err := r.Reload(); err == nil {
		t.Fatal("broken rewrite did not report an error")
	}
	stale, ok := r.Get("po")
	if !ok || stale != good {
		t.Fatalf("stale entry not served: ok=%v entry=%p want %p", ok, stale, good)
	}
	if r.Errors()["po"] == "" {
		t.Error("load error not surfaced while serving stale")
	}

	// Recovery: version continues from the good sequence.
	writeSchema(t, poPath, poV2, base.Add(2*time.Second))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	fixed, _ := r.Get("po")
	if fixed.Version != 2 {
		t.Errorf("recovered version = %d, want 2", fixed.Version)
	}
	if len(r.Errors()) != 0 {
		t.Errorf("errors not cleared after recovery: %v", r.Errors())
	}
}

// TestHotSwapUnderLoad is the serving-layer race test: goroutines
// validate continuously (DOM and streaming paths) while the schema file
// is rewritten and reloaded under them. Every validation must succeed —
// an in-flight request drains on whichever version it resolved — and the
// readers must observe the version advancing. Run under -race this also
// proves the snapshot swap publishes safely.
func TestHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	poPath := filepath.Join(dir, "po.xsd")
	writeSchema(t, poPath, schemas.PurchaseOrderXSD, base)

	r := New(dir, nil)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var (
		stop     atomic.Bool
		failures atomic.Int64
		runs     atomic.Int64
		maxSeen  atomic.Int64
		wg       sync.WaitGroup
	)
	doc := []byte(schemas.PurchaseOrderDoc)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, ok := r.Get("po")
				if !ok {
					failures.Add(1)
					continue
				}
				for {
					v := maxSeen.Load()
					if int64(e.Version) <= v || maxSeen.CompareAndSwap(v, int64(e.Version)) {
						break
					}
				}
				// Torn-read check: the entry must be internally
				// consistent even if a swap happens mid-request.
				if e.Schema == nil || e.Validator == nil || e.Stream == nil {
					failures.Add(1)
					continue
				}
				d, perr := dom.ParseString(schemas.PurchaseOrderDoc)
				if perr != nil {
					failures.Add(1)
					continue
				}
				if res := e.Validator.ValidateDocument(d); !res.OK() {
					failures.Add(1)
				}
				d.Release()
				if res := e.Stream.ValidateBytes(doc); !res.OK() {
					failures.Add(1)
				}
				runs.Add(2)
			}
		}()
	}

	const swaps = 20
	content := [2]string{poV2, schemas.PurchaseOrderXSD}
	for i := 0; i < swaps; i++ {
		writeSchema(t, poPath, content[i%2], base.Add(time.Duration(i+1)*time.Second))
		if _, err := r.Reload(); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond) // let readers land on this version
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed validations during hot swap (of %d runs)", n, runs.Load())
	}
	if runs.Load() == 0 {
		t.Fatal("load generator never ran")
	}
	e, _ := r.Get("po")
	if e.Version != swaps+1 {
		t.Errorf("final version = %d, want %d (every rewrite detected)", e.Version, swaps+1)
	}
	if maxSeen.Load() < 2 {
		t.Errorf("readers only ever saw version %d — swap not observed under load", maxSeen.Load())
	}
	if got := r.Generation(); got != swaps+1 {
		t.Errorf("generation = %d, want %d", got, swaps+1)
	}
}
