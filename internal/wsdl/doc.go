// Package wsdl parses WSDL 1.1 service descriptions into a typed service
// model: services → ports → operations, each operation carrying the
// global element QNames of its document/literal input and output bodies.
//
// The <types> section's embedded schemas compile through the same
// internal/xsd machinery the rest of the system uses: embedded schema
// documents register in an in-memory namespace catalog, so the
// schemaLocation-less xs:import form WSDL authors use between embedded
// schemas resolves exactly like a registry directory's catalog does, and
// file-based imports resolve relative to the WSDL document, confined by
// whatever resolver the caller supplies. The result is ONE *xsd.Schema
// covering every operation's body elements — the schema a soap.Service
// validates envelopes against and an internal/bind Binder decodes them
// with.
//
// Scope: WSDL 1.1 with SOAP 1.1 and SOAP 1.2 bindings, document/literal
// style, message parts referencing global elements. rpc/encoded bindings
// (SOAP-ENC arrays, use="encoded") are rejected with a diagnostic rather
// than silently mis-modeled: the validated-by-construction guarantee only
// holds when bodies are schema-governed elements.
package wsdl
