package wsdl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xsd"
)

// calcWSDL is a two-namespace doc/literal WSDL: the calc schema imports
// the shared types schema with a schemaLocation-less xs:import, the form
// embedded <types> sections use between sibling schemas.
const calcWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="Calc" targetNamespace="urn:calc:svc"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:tns="urn:calc:svc"
    xmlns:c="urn:calc">
  <wsdl:types>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               targetNamespace="urn:calc:types">
      <xs:complexType name="Pair">
        <xs:sequence>
          <xs:element name="a" type="xs:int"/>
          <xs:element name="b" type="xs:int"/>
        </xs:sequence>
      </xs:complexType>
    </xs:schema>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               xmlns:t="urn:calc:types"
               targetNamespace="urn:calc" elementFormDefault="qualified">
      <xs:import namespace="urn:calc:types"/>
      <xs:element name="AddRequest" type="t:Pair"/>
      <xs:element name="AddResponse">
        <xs:complexType>
          <xs:sequence><xs:element name="sum" type="xs:int"/></xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="Ping" type="xs:string"/>
    </xs:schema>
  </wsdl:types>
  <wsdl:message name="AddIn"><wsdl:part name="body" element="c:AddRequest"/></wsdl:message>
  <wsdl:message name="AddOut"><wsdl:part name="body" element="c:AddResponse"/></wsdl:message>
  <wsdl:message name="PingIn"><wsdl:part name="body" element="c:Ping"/></wsdl:message>
  <wsdl:portType name="CalcPort">
    <wsdl:operation name="Add">
      <wsdl:input message="tns:AddIn"/>
      <wsdl:output message="tns:AddOut"/>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input message="tns:PingIn"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="CalcBinding" type="tns:CalcPort">
    <soap:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="Add">
      <soap:operation soapAction="urn:calc:add"/>
      <wsdl:input><soap:body use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input><soap:body use="literal"/></wsdl:input>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="Calc">
    <wsdl:port name="CalcSOAP" binding="tns:CalcBinding">
      <soap:address location="http://localhost/v1/soap/Calc"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

func TestParseCalc(t *testing.T) {
	d, err := Parse([]byte(calcWSDL), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Calc" || d.TargetNamespace != "urn:calc:svc" {
		t.Errorf("definitions = %q tns %q", d.Name, d.TargetNamespace)
	}
	svc, ok := d.Service("Calc")
	if !ok || len(svc.Ports) != 1 {
		t.Fatalf("service Calc missing or portless: %+v", d.Services)
	}
	p := svc.Ports[0]
	if p.SOAPVersion != 11 {
		t.Errorf("SOAPVersion = %d, want 11", p.SOAPVersion)
	}
	if p.Address != "http://localhost/v1/soap/Calc" {
		t.Errorf("address = %q", p.Address)
	}
	if len(p.Operations) != 2 {
		t.Fatalf("operations = %+v, want Add and Ping", p.Operations)
	}
	add, ping := p.Operations[0], p.Operations[1]
	if add.Name != "Add" || ping.Name != "Ping" {
		t.Fatalf("operation order = %q, %q (want name-sorted)", add.Name, ping.Name)
	}
	if add.SOAPAction != "urn:calc:add" {
		t.Errorf("Add soapAction = %q", add.SOAPAction)
	}
	if add.Input != (xsd.QName{Space: "urn:calc", Local: "AddRequest"}) ||
		add.Output != (xsd.QName{Space: "urn:calc", Local: "AddResponse"}) {
		t.Errorf("Add body elements = %v / %v", add.Input, add.Output)
	}
	if !ping.OneWay() || ping.Input.Local != "Ping" {
		t.Errorf("Ping = %+v, want one-way", ping)
	}
	// The embedded schemas compiled into one: the imported-by-namespace
	// type must be present.
	if _, ok := d.Schema.LookupType(xsd.QName{Space: "urn:calc:types", Local: "Pair"}); !ok {
		t.Error("type urn:calc:types Pair missing from compiled schema")
	}
	if _, ok := d.Schema.LookupElement(add.Input); !ok {
		t.Error("AddRequest element missing from compiled schema")
	}
}

// TestParseFileRelativeImport resolves a file-based schemaLocation inside
// <types> relative to the WSDL's own directory, confined to it.
func TestParseFileRelativeImport(t *testing.T) {
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "types.xsd"), `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:ext">
  <xs:element name="Echo" type="xs:string"/>
</xs:schema>`)
	w := `<?xml version="1.0"?>
<wsdl:definitions name="E" targetNamespace="urn:e"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap12/"
    xmlns:tns="urn:e" xmlns:x="urn:ext">
  <wsdl:types>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:e2">
      <xs:import namespace="urn:ext" schemaLocation="types.xsd"/>
    </xs:schema>
  </wsdl:types>
  <wsdl:message name="In"><wsdl:part name="body" element="x:Echo"/></wsdl:message>
  <wsdl:portType name="P">
    <wsdl:operation name="Echo"><wsdl:input message="tns:In"/></wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="B" type="tns:P">
    <soap:binding transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="Echo"><wsdl:input><soap:body use="literal"/></wsdl:input></wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="E">
    <wsdl:port name="EP" binding="tns:B"><soap:address location="x"/></wsdl:port>
  </wsdl:service>
</wsdl:definitions>`
	path := filepath.Join(dir, "e.wsdl")
	mustWrite(t, path, w)
	d, err := ParseFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Services[0].Ports[0]
	if p.SOAPVersion != 12 {
		t.Errorf("SOAPVersion = %d, want 12 (soap12 binding namespace)", p.SOAPVersion)
	}
	if p.Operations[0].Input != (xsd.QName{Space: "urn:ext", Local: "Echo"}) {
		t.Errorf("input = %v", p.Operations[0].Input)
	}
	// Byte-parsed (no directory context) the same document must fail
	// rather than read files.
	if _, err := Parse([]byte(w), nil); err == nil {
		t.Error("Parse without a resolver read a file reference")
	}
}

func TestRejections(t *testing.T) {
	cases := []struct {
		name, from, to, want string
	}{
		{"rpc style", `style="document"`, `style="rpc"`, "document/literal only"},
		{"encoded use", `use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"`, `use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="encoded"`, "literal only"},
		{"type part", `element="c:AddRequest"`, `type="c:AddRequest"`, "element parts"},
		{"undeclared element", `element="c:Ping"`, `element="c:Pong"`, "no embedded schema declares"},
		{"undefined message", `message="tns:PingIn"`, `message="tns:Nope"`, "undefined message"},
		{"undefined binding", `binding="tns:CalcBinding"`, `binding="tns:Nope"`, "undefined binding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := strings.Replace(calcWSDL, tc.from, tc.to, 1)
			if src == calcWSDL {
				t.Fatal("mutation did not apply")
			}
			_, err := Parse([]byte(src), nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestNotWSDL(t *testing.T) {
	if _, err := Parse([]byte(`<root/>`), nil); err == nil || !strings.Contains(err.Error(), "wsdl:definitions") {
		t.Fatalf("got %v", err)
	}
	if _, err := Parse([]byte(`<not xml`), nil); err == nil {
		t.Fatal("malformed document accepted")
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
