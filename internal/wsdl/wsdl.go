package wsdl

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dom"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
)

// WSDL 1.1 namespaces.
const (
	Namespace       = "http://schemas.xmlsoap.org/wsdl/"
	SOAP11Namespace = "http://schemas.xmlsoap.org/wsdl/soap/"
	SOAP12Namespace = "http://schemas.xmlsoap.org/wsdl/soap12/"
)

// Definitions is a parsed WSDL document: its services and the one schema
// compiled from every embedded <types> document.
type Definitions struct {
	// Name is the definitions element's name attribute (may be empty).
	Name string
	// TargetNamespace is the WSDL's own target namespace (the namespace
	// of its message/portType/binding/service names, not of the payload
	// elements).
	TargetNamespace string
	// Schema is the compiled union of the <types> section: every embedded
	// schema document plus whatever they import. Nil when the WSDL has no
	// types (legal, but then no operation may reference a body element).
	Schema *xsd.Schema
	// Services in document order.
	Services []*Service
	// Source is the WSDL document as parsed, for GET echoes.
	Source []byte
}

// Service is one wsdl:service: a named set of ports.
type Service struct {
	Name  string
	Ports []*Port
}

// Port is one wsdl:port: a binding bound to a transport address.
type Port struct {
	Name string
	// Binding is the resolved binding's QName.
	Binding xsd.QName
	// SOAPVersion is 11 or 12, from the binding's soap:binding element
	// namespace.
	SOAPVersion int
	// Address is the soap:address location (informational; servers mount
	// wherever they like).
	Address string
	// Operations in portType order.
	Operations []*Operation
}

// Operation is one bound operation with its document/literal body
// elements resolved.
type Operation struct {
	Name string
	// SOAPAction is the binding's soapAction URI ("" when absent — SOAP
	// 1.2 makes it optional).
	SOAPAction string
	// Input is the QName of the global element forming the request body.
	Input xsd.QName
	// Output is the QName of the response body element; zero for one-way
	// operations.
	Output xsd.QName
}

// OneWay reports whether the operation has no response body.
func (op *Operation) OneWay() bool { return op.Output.IsZero() }

// Service returns the named service.
func (d *Definitions) Service(name string) (*Service, bool) {
	for _, s := range d.Services {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Options configures WSDL parsing.
type Options struct {
	// Resolver resolves file-based schemaLocation references inside the
	// <types> section (and namespace-only imports that the embedded
	// catalog does not satisfy, when it implements xsd.NamespaceResolver).
	// ParseFile defaults it to a DirResolver confined to the WSDL's
	// directory; Parse leaves it nil, making file references an error.
	Resolver xsd.Resolver
}

// ParseFile parses the WSDL document at path. Schema references inside
// <types> resolve relative to the WSDL's directory unless opts overrides
// the resolver.
func ParseFile(path string, opts *Options) (*Definitions, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	o := Options{}
	if opts != nil {
		o = *opts
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	if o.Resolver == nil {
		o.Resolver = xsd.NewDirResolver(filepath.Dir(abs))
	}
	return parse(src, o, abs)
}

// Parse parses a WSDL document from bytes.
func Parse(src []byte, opts *Options) (*Definitions, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	return parse(src, o, "wsdl")
}

// message is one wsdl:message during resolution.
type message struct {
	name  xsd.QName
	parts []msgPart
}

type msgPart struct {
	name    string
	element xsd.QName
}

// portTypeOp is one abstract operation before binding.
type portTypeOp struct {
	name   string
	input  xsd.QName // message QName
	output xsd.QName // zero for one-way
}

// binding is one wsdl:binding during resolution.
type binding struct {
	name        xsd.QName
	portType    xsd.QName
	soapVersion int
	actions     map[string]string // operation name -> soapAction
	ops         map[string]bool   // operations the binding actually binds
}

func errAt(el *dom.Element, format string, args ...any) error {
	return fmt.Errorf("wsdl: <%s>: %s", el.TagName(), fmt.Sprintf(format, args...))
}

func parse(src []byte, o Options, docKey string) (*Definitions, error) {
	doc, err := dom.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.NamespaceURI() != Namespace || root.LocalName() != "definitions" {
		return nil, fmt.Errorf("wsdl: document root is not wsdl:definitions")
	}
	d := &Definitions{
		Name:            root.GetAttribute("name"),
		TargetNamespace: root.GetAttribute("targetNamespace"),
		Source:          src,
	}
	tns := d.TargetNamespace

	messages := map[xsd.QName]*message{}
	portTypes := map[xsd.QName]map[string]*portTypeOp{}
	bindings := map[xsd.QName]*binding{}
	var serviceEls []*dom.Element

	for _, el := range root.ChildElements() {
		if el.NamespaceURI() != Namespace {
			continue // extensibility elements at the top level are ignorable
		}
		switch el.LocalName() {
		case "documentation", "import":
			// wsdl:import (of other WSDLs) is out of scope; <types>
			// xs:import covers the schema side.
			if el.LocalName() == "import" {
				return nil, errAt(el, "wsdl:import is not supported; inline the definitions or import schemas inside <types>")
			}
		case "types":
			schema, err := parseTypes(el, o, docKey)
			if err != nil {
				return nil, err
			}
			d.Schema = schema
		case "message":
			m, err := parseMessage(el, tns)
			if err != nil {
				return nil, err
			}
			if _, dup := messages[m.name]; dup {
				return nil, errAt(el, "duplicate message %q", m.name.Local)
			}
			messages[m.name] = m
		case "portType":
			name := el.GetAttribute("name")
			if name == "" {
				return nil, errAt(el, "portType requires a name")
			}
			ops, err := parsePortType(el)
			if err != nil {
				return nil, err
			}
			portTypes[xsd.QName{Space: tns, Local: name}] = ops
		case "binding":
			b, err := parseBinding(el, tns)
			if err != nil {
				return nil, err
			}
			bindings[b.name] = b
		case "service":
			serviceEls = append(serviceEls, el)
		}
	}

	for _, el := range serviceEls {
		svc, err := resolveService(el, d, tns, messages, portTypes, bindings)
		if err != nil {
			return nil, err
		}
		d.Services = append(d.Services, svc)
	}
	if len(d.Services) == 0 {
		return nil, fmt.Errorf("wsdl: no wsdl:service defined")
	}
	return d, nil
}

// parseTypes compiles the embedded schema documents into one xsd.Schema.
// Each embedded <xs:schema> is serialized self-contained (inherited
// namespace declarations copied down) and registered in an in-memory
// namespace catalog; when there are several, a synthetic no-namespace
// root importing each by namespace stitches them together, so embedded
// schemas referencing each other via schemaLocation-less xs:import
// resolve exactly like a registry directory's catalog.
func parseTypes(el *dom.Element, o Options, docKey string) (*xsd.Schema, error) {
	var schemas []*dom.Element
	for _, c := range el.ChildElements() {
		if c.NamespaceURI() == xsd.XSDNamespace && c.LocalName() == "schema" {
			schemas = append(schemas, c)
		}
	}
	if len(schemas) == 0 {
		return nil, nil
	}
	res := &typesResolver{inner: o.Resolver, embedded: map[string]embeddedDoc{}, wsdlKey: docKey}
	for i, s := range schemas {
		dom.DeclareInScopeNamespaces(s)
		key := fmt.Sprintf("%s#types[%d]", docKey, i)
		ns := s.GetAttribute("targetNamespace")
		if _, dup := res.embedded[ns]; dup {
			return nil, errAt(s, "two embedded schemas declare target namespace %q", ns)
		}
		res.embedded[ns] = embeddedDoc{key: key, src: []byte(dom.ToString(s))}
	}
	opts := &xsd.ParseOptions{Resolver: res}
	if len(schemas) == 1 {
		ns := schemas[0].GetAttribute("targetNamespace")
		e := res.embedded[ns]
		s, err := xsd.ParseSource(e.key, e.src, opts)
		if err != nil {
			return nil, fmt.Errorf("wsdl: types: %w", err)
		}
		return s, nil
	}
	// Synthetic root importing every embedded namespace; the catalog
	// resolves each import to its embedded document.
	var sb strings.Builder
	sb.WriteString(`<xs:schema xmlns:xs="` + xsd.XSDNamespace + `">`)
	for _, s := range schemas {
		ns := s.GetAttribute("targetNamespace")
		if ns == "" {
			return nil, errAt(s, "a no-namespace embedded schema cannot be combined with others (imports cannot reach it)")
		}
		sb.WriteString(`<xs:import namespace="` + dom.EscapeAttr(ns) + `"/>`)
	}
	sb.WriteString(`</xs:schema>`)
	s, err := xsd.ParseSource(docKey+"#types", []byte(sb.String()), opts)
	if err != nil {
		return nil, fmt.Errorf("wsdl: types: %w", err)
	}
	return s, nil
}

// embeddedDoc is one embedded schema document keyed for the resolver.
type embeddedDoc struct {
	key string
	src []byte
}

// typesResolver resolves references made from inside the <types> section:
// embedded schemas by namespace, file references through the caller's
// resolver with the WSDL document as the base.
type typesResolver struct {
	inner    xsd.Resolver
	embedded map[string]embeddedDoc
	wsdlKey  string
}

func (r *typesResolver) Resolve(base, location string) (string, []byte, error) {
	if r.inner == nil {
		return "", nil, fmt.Errorf("schemaLocation %q cannot be resolved (no file resolver configured)", location)
	}
	// References written inside an embedded schema resolve relative to
	// the WSDL document itself; synthetic keys carry the WSDL path before
	// the fragment marker, so directory-based resolvers do the right
	// thing without special-casing.
	if i := strings.IndexByte(base, '#'); i >= 0 {
		base = base[:i]
		if base == "wsdl" {
			base = "" // byte-parsed WSDL: no directory context
		}
	}
	return r.inner.Resolve(base, location)
}

// ResolveNamespace serves the embedded catalog first, then the inner
// resolver's catalog when it has one.
func (r *typesResolver) ResolveNamespace(namespace string) (string, []byte, bool, error) {
	if e, ok := r.embedded[namespace]; ok {
		return e.key, e.src, true, nil
	}
	if nr, ok := r.inner.(xsd.NamespaceResolver); ok {
		return nr.ResolveNamespace(namespace)
	}
	return "", nil, false, nil
}

func parseMessage(el *dom.Element, tns string) (*message, error) {
	name := el.GetAttribute("name")
	if name == "" {
		return nil, errAt(el, "message requires a name")
	}
	m := &message{name: xsd.QName{Space: tns, Local: name}}
	for _, c := range el.ChildElements() {
		if c.NamespaceURI() != Namespace || c.LocalName() != "part" {
			continue
		}
		pn := c.GetAttribute("name")
		if c.HasAttribute("type") {
			return nil, errAt(c, "part %q references a type; only document/literal element parts are supported", pn)
		}
		elemRef := c.GetAttribute("element")
		if elemRef == "" {
			return nil, errAt(c, "part %q requires an element reference", pn)
		}
		q, err := resolveQName(c, elemRef)
		if err != nil {
			return nil, errAt(c, "%v", err)
		}
		m.parts = append(m.parts, msgPart{name: pn, element: q})
	}
	return m, nil
}

func parsePortType(el *dom.Element) (map[string]*portTypeOp, error) {
	ops := map[string]*portTypeOp{}
	for _, c := range el.ChildElements() {
		if c.NamespaceURI() != Namespace || c.LocalName() != "operation" {
			continue
		}
		name := c.GetAttribute("name")
		if name == "" {
			return nil, errAt(c, "operation requires a name")
		}
		if _, dup := ops[name]; dup {
			return nil, errAt(c, "duplicate operation %q (overloading is not supported)", name)
		}
		op := &portTypeOp{name: name}
		for _, io := range c.ChildElements() {
			if io.NamespaceURI() != Namespace {
				continue
			}
			var target *xsd.QName
			switch io.LocalName() {
			case "input":
				target = &op.input
			case "output":
				target = &op.output
			default:
				continue // fault messages carry no doc/literal body element
			}
			msg := io.GetAttribute("message")
			if msg == "" {
				return nil, errAt(io, "operation %q: %s requires a message", name, io.LocalName())
			}
			q, err := resolveQName(io, msg)
			if err != nil {
				return nil, errAt(io, "%v", err)
			}
			*target = q
		}
		if op.input.IsZero() {
			return nil, errAt(c, "operation %q has no input (notification operations are not supported)", name)
		}
		ops[name] = op
	}
	return ops, nil
}

func parseBinding(el *dom.Element, tns string) (*binding, error) {
	name := el.GetAttribute("name")
	if name == "" {
		return nil, errAt(el, "binding requires a name")
	}
	b := &binding{
		name:    xsd.QName{Space: tns, Local: name},
		actions: map[string]string{},
		ops:     map[string]bool{},
	}
	typ := el.GetAttribute("type")
	if typ == "" {
		return nil, errAt(el, "binding %q requires a portType reference", name)
	}
	q, err := resolveQName(el, typ)
	if err != nil {
		return nil, errAt(el, "%v", err)
	}
	b.portType = q
	for _, c := range el.ChildElements() {
		switch c.NamespaceURI() {
		case SOAP11Namespace, SOAP12Namespace:
			if c.LocalName() != "binding" {
				continue
			}
			if style := c.GetAttribute("style"); style != "" && style != "document" {
				return nil, errAt(c, "binding %q: style %q is not supported (document/literal only)", name, style)
			}
			b.soapVersion = 11
			if c.NamespaceURI() == SOAP12Namespace {
				b.soapVersion = 12
			}
		case Namespace:
			if c.LocalName() != "operation" {
				continue
			}
			opName := c.GetAttribute("name")
			if opName == "" {
				return nil, errAt(c, "binding %q: operation requires a name", name)
			}
			b.ops[opName] = true
			if err := parseBoundOperation(c, b, opName); err != nil {
				return nil, err
			}
		}
	}
	if b.soapVersion == 0 {
		return nil, errAt(el, "binding %q has no soap:binding (SOAP 1.1 or 1.2)", name)
	}
	return b, nil
}

// parseBoundOperation reads the soap:operation extension (soapAction,
// style override) and rejects encoded bodies.
func parseBoundOperation(el *dom.Element, b *binding, opName string) error {
	for _, c := range el.ChildElements() {
		switch {
		case (c.NamespaceURI() == SOAP11Namespace || c.NamespaceURI() == SOAP12Namespace) && c.LocalName() == "operation":
			if style := c.GetAttribute("style"); style != "" && style != "document" {
				return errAt(c, "operation %q: style %q is not supported (document/literal only)", opName, style)
			}
			if sa := c.GetAttribute("soapAction"); sa != "" {
				b.actions[opName] = sa
			}
		case c.NamespaceURI() == Namespace && (c.LocalName() == "input" || c.LocalName() == "output"):
			for _, body := range c.ChildElements() {
				if (body.NamespaceURI() == SOAP11Namespace || body.NamespaceURI() == SOAP12Namespace) && body.LocalName() == "body" {
					if use := body.GetAttribute("use"); use != "" && use != "literal" {
						return errAt(body, "operation %q: use %q is not supported (literal only)", opName, use)
					}
				}
			}
		}
	}
	return nil
}

// resolveService stitches a wsdl:service's ports through their bindings
// and portTypes down to resolved operations, checking every referenced
// body element against the compiled schema.
func resolveService(el *dom.Element, d *Definitions, tns string,
	messages map[xsd.QName]*message, portTypes map[xsd.QName]map[string]*portTypeOp,
	bindings map[xsd.QName]*binding) (*Service, error) {
	name := el.GetAttribute("name")
	if name == "" {
		return nil, errAt(el, "service requires a name")
	}
	svc := &Service{Name: name}
	for _, pe := range el.ChildElements() {
		if pe.NamespaceURI() != Namespace || pe.LocalName() != "port" {
			continue
		}
		pname := pe.GetAttribute("name")
		bref := pe.GetAttribute("binding")
		if pname == "" || bref == "" {
			return nil, errAt(pe, "port requires name and binding")
		}
		bq, err := resolveQName(pe, bref)
		if err != nil {
			return nil, errAt(pe, "%v", err)
		}
		b, ok := bindings[bq]
		if !ok {
			return nil, errAt(pe, "port %q references undefined binding %s", pname, bq)
		}
		ops, ok := portTypes[b.portType]
		if !ok {
			return nil, errAt(pe, "binding %q references undefined portType %s", bq.Local, b.portType)
		}
		port := &Port{Name: pname, Binding: bq, SOAPVersion: b.soapVersion}
		for _, ae := range pe.ChildElements() {
			if (ae.NamespaceURI() == SOAP11Namespace || ae.NamespaceURI() == SOAP12Namespace) && ae.LocalName() == "address" {
				port.Address = ae.GetAttribute("location")
			}
		}
		// portType operations in name order for determinism; the binding
		// may bind a subset.
		var names []string
		for n := range ops {
			if len(b.ops) == 0 || b.ops[n] {
				names = append(names, n)
			}
		}
		sortStrings(names)
		for _, n := range names {
			pto := ops[n]
			op := &Operation{Name: n, SOAPAction: b.actions[n]}
			in, err := bodyElement(d, messages, pto.input, "input of operation "+n)
			if err != nil {
				return nil, err
			}
			op.Input = in
			if !pto.output.IsZero() {
				out, err := bodyElement(d, messages, pto.output, "output of operation "+n)
				if err != nil {
					return nil, err
				}
				op.Output = out
			}
			port.Operations = append(port.Operations, op)
		}
		if len(port.Operations) == 0 {
			return nil, errAt(pe, "port %q binds no operations", pname)
		}
		svc.Ports = append(svc.Ports, port)
	}
	if len(svc.Ports) == 0 {
		return nil, errAt(el, "service %q has no ports", name)
	}
	return svc, nil
}

// bodyElement resolves a message reference to its single part's global
// element and checks the schema declares it.
func bodyElement(d *Definitions, messages map[xsd.QName]*message, msg xsd.QName, what string) (xsd.QName, error) {
	m, ok := messages[msg]
	if !ok {
		return xsd.QName{}, fmt.Errorf("wsdl: %s references undefined message %s", what, msg)
	}
	if len(m.parts) != 1 {
		return xsd.QName{}, fmt.Errorf("wsdl: message %s has %d parts; document/literal bodies need exactly one", msg.Local, len(m.parts))
	}
	q := m.parts[0].element
	if d.Schema == nil {
		return xsd.QName{}, fmt.Errorf("wsdl: %s references element %s but the WSDL has no <types>", what, q)
	}
	if _, ok := d.Schema.LookupElement(q); !ok {
		return xsd.QName{}, fmt.Errorf("wsdl: %s references element %s, which no embedded schema declares", what, q)
	}
	return q, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// resolveQName resolves a lexical QName attribute value against the
// namespace declarations in scope at el. An unprefixed value resolves to
// the default namespace when one is declared, else to no namespace —
// WSDL authors conventionally prefix everything, but both forms appear.
func resolveQName(el *dom.Element, lexical string) (xsd.QName, error) {
	lexical = strings.TrimSpace(lexical)
	prefix, local := "", lexical
	if i := strings.IndexByte(lexical, ':'); i >= 0 {
		prefix, local = lexical[:i], lexical[i+1:]
	}
	if local == "" {
		return xsd.QName{}, fmt.Errorf("bad QName %q", lexical)
	}
	if prefix == "xml" {
		return xsd.QName{Space: xmlparser.XMLNamespace, Local: local}, nil
	}
	key := prefix
	if key == "" {
		key = "xmlns"
	}
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		e, ok := n.(*dom.Element)
		if !ok {
			break
		}
		if e.HasAttributeNS(xmlparser.XMLNSNamespace, key) {
			return xsd.QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, key), Local: local}, nil
		}
	}
	if prefix != "" {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q in %q", prefix, lexical)
	}
	return xsd.QName{Local: local}, nil
}
