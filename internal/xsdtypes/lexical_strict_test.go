package xsdtypes

import (
	"bytes"
	"testing"
)

// These tables pin down lexical-space edges where a lenient standard-
// library parser (strconv.Atoi accepts signs, base64 tolerates layout)
// would widen XSD's grammar: signs inside date fields and timezones,
// empty duration fractions, odd-length and whitespace-laden binary.

func TestYearLexicalStrictness(t *testing.T) {
	accept(t, "gYear", "2001")
	accept(t, "gYear", "-2001")
	accept(t, "gYear", "12000")
	for _, bad := range []string{
		"+2001",  // no leading '+' in the lexical space
		"-+123",  // sign after the sign
		"+201",   // '+' padding to four chars
		"2 01",   // interior space
		"20_1",   // non-digit
		"0000",   // year zero (XSD 1.0)
		"02001",  // extraneous leading zero
		"201",    // fewer than four digits
		"--2001", // double sign
	} {
		reject(t, "gYear", bad)
	}
	// The same field through a composite type.
	accept(t, "date", "2001-10-26")
	reject(t, "date", "+2001-10-26")
}

func TestTimezoneLexicalStrictness(t *testing.T) {
	accept(t, "time", "13:20:00Z")
	accept(t, "time", "13:20:00+05:30")
	accept(t, "time", "13:20:00-14:00")
	for _, bad := range []string{
		"13:20:00+-5:59", // Atoi would read hour "-5" and pass the h > 14 check
		"13:20:00++5:59",
		"13:20:00+5-:59",
		"13:20:00+05:+9",
		"13:20:00+15:00", // offset out of range
		"13:20:00+14:01",
	} {
		reject(t, "time", bad)
	}
	accept(t, "dateTime", "2001-10-26T13:20:00+14:00")
	reject(t, "dateTime", "2001-10-26T13:20:00+-5:59")
}

func TestDurationFractionStrictness(t *testing.T) {
	accept(t, "duration", "PT1.5S")
	accept(t, "duration", "PT0.000000001S")
	for _, bad := range []string{
		"PT1.S",  // digits required after the point
		"PT.5S",  // and before it
		"PT.S",   // neither
		"P1.5Y",  // fractions only on seconds
		"PT1.5M", // likewise
		"+P1Y",   // no leading '+'
	} {
		reject(t, "duration", bad)
	}
}

func TestHexBinaryLexical(t *testing.T) {
	cases := []struct {
		lexical string
		want    []byte // nil means reject
	}{
		{"0FB7", []byte{0x0f, 0xb7}},
		{"0fb7", []byte{0x0f, 0xb7}},
		{"", []byte{}},
		{"  0FB7  ", []byte{0x0f, 0xb7}}, // collapse strips the edges
		{"\t0FB7\n", []byte{0x0f, 0xb7}}, // any XML whitespace
		{"0F B7", nil},                   // interior space is not hex
		{"F", nil},                       // odd length
		{"0FB", nil},                     // odd length
		{"0G", nil},                      // not a hex digit
		{"0x0F", nil},                    // no 0x prefix
	}
	for _, c := range cases {
		if c.want == nil {
			reject(t, "hexBinary", c.lexical)
			continue
		}
		v := accept(t, "hexBinary", c.lexical)
		if !bytes.Equal(v.Bytes, c.want) {
			t.Errorf("hexBinary %q = %x, want %x", c.lexical, v.Bytes, c.want)
		}
	}
}

func TestBase64BinaryLexical(t *testing.T) {
	cases := []struct {
		lexical string
		want    []byte // nil means reject
	}{
		{"TWFu", []byte("Man")},
		{"TWE=", []byte("Ma")},
		{"TQ==", []byte("M")},
		{"", []byte{}},
		{"  TWFu  ", []byte("Man")},    // collapse strips the edges
		{"TWFu IA==", []byte("Man ")},  // XSD allows single interior spaces
		{"TWFu\nIA==", []byte("Man ")}, // newline collapses to a space first
		{"TWF", nil},                   // length not a multiple of four
		{"TWFu=", nil},                 // stray padding
		{"====", nil},                  // padding only
		{"TW!u", nil},                  // not in the alphabet
	}
	for _, c := range cases {
		if c.want == nil {
			reject(t, "base64Binary", c.lexical)
			continue
		}
		v := accept(t, "base64Binary", c.lexical)
		if !bytes.Equal(v.Bytes, c.want) {
			t.Errorf("base64Binary %q = %q, want %q", c.lexical, v.Bytes, c.want)
		}
	}
}
