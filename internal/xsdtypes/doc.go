// Package xsdtypes implements the built-in simple types of XML Schema
// Part 2: Datatypes — lexical parsing, value spaces, ordering, canonical
// forms, whitespace processing and constraining facets.
//
// The paper's V-DOM maps "Xml Schema simple types ... to primitive types"
// (transformation rule 8) and concedes that facet checks on restricted
// simple types remain dynamic; this package is that dynamic layer, shared
// by the runtime validator, the schema parser and the generated V-DOM
// bindings.
//
// # Role in the pipeline
//
// xsdtypes is a leaf dependency of the pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): package xsd builds
// its simple-type definitions on these built-ins, and every layer that
// checks a lexical value — validator, vdom setters, pxml's static
// checks — funnels through Parse/Check here.
//
// # Concurrency
//
// The built-in registry is populated at package init and read-only
// afterwards; Builtin values, Facets and parsed Values are immutable.
// All parsing and facet checking is pure (including the precompiled
// pattern facets, see package xsdregex), so everything in this package
// may be used from any number of goroutines without synchronization.
package xsdtypes
