package xsdtypes

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xmlparser"
)

// ValueKind identifies the primitive value space a Value belongs to.
type ValueKind int

// Value kinds.
const (
	VString ValueKind = iota
	VBool
	VDecimal
	VFloat // float and double share the representation
	VDuration
	VDateTime // all seven temporal types
	VHexBinary
	VBase64Binary
	VAnyURI
	VQName
	VNotation
	VList
)

// Value is a parsed simple-type value.
type Value struct {
	Kind  ValueKind
	Str   string // VString, VAnyURI, VQName (lexical prefix:local), VNotation
	Bool  bool
	Dec   Decimal
	F     float64
	DT    DateTime
	Dur   Duration
	Bytes []byte
	Items []Value
}

// String renders the value's canonical lexical form.
func (v Value) String() string {
	switch v.Kind {
	case VString, VAnyURI, VQName, VNotation:
		return v.Str
	case VBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case VDecimal:
		return v.Dec.String()
	case VFloat:
		switch {
		case math.IsInf(v.F, 1):
			return "INF"
		case math.IsInf(v.F, -1):
			return "-INF"
		case math.IsNaN(v.F):
			return "NaN"
		}
		return strconv.FormatFloat(v.F, 'G', -1, 64)
	case VDuration:
		return v.Dur.String()
	case VDateTime:
		return v.DT.String()
	case VHexBinary:
		return strings.ToUpper(hex.EncodeToString(v.Bytes))
	case VBase64Binary:
		return base64.StdEncoding.EncodeToString(v.Bytes)
	case VList:
		parts := make([]string, len(v.Items))
		for i, it := range v.Items {
			parts[i] = it.String()
		}
		return strings.Join(parts, " ")
	}
	return ""
}

// Equal reports value-space equality.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case VString, VAnyURI, VQName, VNotation:
		return v.Str == w.Str
	case VBool:
		return v.Bool == w.Bool
	case VDecimal:
		return v.Dec.Cmp(w.Dec) == 0
	case VFloat:
		return v.F == w.F || (math.IsNaN(v.F) && math.IsNaN(w.F))
	case VDuration:
		return v.Dur.Cmp(w.Dur) == 0
	case VDateTime:
		return v.DT.Cmp(w.DT) == 0
	case VHexBinary, VBase64Binary:
		return string(v.Bytes) == string(w.Bytes)
	case VList:
		if len(v.Items) != len(w.Items) {
			return false
		}
		for i := range v.Items {
			if !v.Items[i].Equal(w.Items[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values of the same primitive kind; it returns an
// error for unordered kinds (booleans, QNames, binaries) or mismatched
// kinds.
func Compare(v, w Value) (int, error) {
	if v.Kind != w.Kind {
		return 0, fmt.Errorf("cannot compare %v and %v values", v.Kind, w.Kind)
	}
	switch v.Kind {
	case VDecimal:
		return v.Dec.Cmp(w.Dec), nil
	case VFloat:
		if math.IsNaN(v.F) || math.IsNaN(w.F) {
			return 0, fmt.Errorf("NaN is unordered")
		}
		switch {
		case v.F < w.F:
			return -1, nil
		case v.F > w.F:
			return 1, nil
		default:
			return 0, nil
		}
	case VDateTime:
		return v.DT.Cmp(w.DT), nil
	case VDuration:
		return v.Dur.Cmp(w.Dur), nil
	case VString:
		return strings.Compare(v.Str, w.Str), nil
	default:
		return 0, fmt.Errorf("values of this kind are unordered")
	}
}

// WhiteSpace is the whiteSpace facet value.
type WhiteSpace int

// WhiteSpace modes.
const (
	WSPreserve WhiteSpace = iota
	WSReplace
	WSCollapse
)

// ApplyWhiteSpace normalizes s according to the whiteSpace facet.
func ApplyWhiteSpace(ws WhiteSpace, s string) string {
	switch ws {
	case WSPreserve:
		return s
	case WSReplace:
		var sb strings.Builder
		sb.Grow(len(s))
		for _, r := range s {
			if r == '\t' || r == '\n' || r == '\r' {
				sb.WriteByte(' ')
			} else {
				sb.WriteRune(r)
			}
		}
		return sb.String()
	default: // WSCollapse
		fields := strings.FieldsFunc(s, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\n' || r == '\r'
		})
		return strings.Join(fields, " ")
	}
}

// parseBool parses xs:boolean.
func parseBool(s string) (bool, error) {
	switch s {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("bad boolean %q", s)
}

// parseFloat parses xs:float/xs:double with the XSD special values.
func parseFloat(s string, bits int) (float64, error) {
	switch s {
	case "INF", "+INF":
		return math.Inf(1), nil
	case "-INF":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	// XSD does not allow hex floats, "Inf", "nan", or leading/trailing
	// junk; ParseFloat is close enough after excluding those spellings.
	lower := strings.ToLower(s)
	if strings.Contains(lower, "inf") || strings.Contains(lower, "nan") || strings.Contains(lower, "x") || strings.Contains(lower, "p") {
		return 0, fmt.Errorf("bad float %q", s)
	}
	f, err := strconv.ParseFloat(s, bits)
	if err != nil {
		return 0, fmt.Errorf("bad float %q", s)
	}
	return f, nil
}

// stdBase64 decodes standard base64 with padding.
func stdBase64(s string) ([]byte, error) {
	return base64.StdEncoding.DecodeString(s)
}

// parseQNameLexical validates a QName lexical form (prefix resolution is a
// schema-level concern handled by the validator, which has the namespace
// context).
func parseQNameLexical(s string) error {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		if !xmlparser.IsNCName(s) {
			return fmt.Errorf("bad QName %q", s)
		}
		return nil
	}
	if !xmlparser.IsNCName(s[:i]) || !xmlparser.IsNCName(s[i+1:]) {
		return fmt.Errorf("bad QName %q", s)
	}
	return nil
}
