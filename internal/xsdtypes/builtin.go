package xsdtypes

import (
	"fmt"
	"strings"

	"repro/internal/xmlparser"
	"repro/internal/xsdregex"
)

// XSDNamespace is the XML Schema namespace URI.
const XSDNamespace = "http://www.w3.org/2001/XMLSchema"

// XSINamespace is the XML Schema instance namespace (xsi:type, xsi:nil).
const XSINamespace = "http://www.w3.org/2001/XMLSchema-instance"

// Builtin describes one built-in simple type.
type Builtin struct {
	// Name is the local name in the XSD namespace (e.g. "positiveInteger").
	Name string
	// Base is the type this one is derived from (nil for anySimpleType).
	Base *Builtin
	// Kind is the primitive value space.
	Kind ValueKind
	// Temporal selects the date/time flavor when Kind is VDateTime.
	Temporal TemporalKind
	// FloatBits is 32 or 64 when Kind is VFloat.
	FloatBits int
	// WS is the effective whitespace mode.
	WS WhiteSpace
	// List marks the three built-in list types; ItemType is their item.
	List     bool
	ItemType *Builtin
	// Facets are the constraining facets added at this derivation step.
	Facets Facets
	// Check runs additional lexical checks after whitespace handling
	// (e.g. Name/NCName productions, integer lexical form).
	Check func(lexical string) error
}

// registry holds all built-ins by local name.
var registry = map[string]*Builtin{}

func register(b *Builtin) *Builtin {
	if b.Base != nil && b.Kind == 0 {
		// Kind 0 is VString, which doubles as "unset": a type that did
		// not pick a representation inherits the base's wholesale. The
		// string family inherits VString from anySimpleType, which is
		// what an explicit setting would do anyway.
		b.Kind = b.Base.Kind
		b.Temporal = b.Base.Temporal
		b.FloatBits = b.Base.FloatBits
	}
	registry[b.Name] = b
	return b
}

// Lookup finds a built-in type by its local name in the XSD namespace.
func Lookup(local string) (*Builtin, bool) {
	b, ok := registry[local]
	return b, ok
}

// MustLookup returns a built-in known to exist.
func MustLookup(local string) *Builtin {
	b, ok := registry[local]
	if !ok {
		panic("xsdtypes: unknown builtin " + local)
	}
	return b
}

// Names returns all registered built-in names (for documentation tests).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// DerivesFrom reports whether b equals anc or derives from it.
func (b *Builtin) DerivesFrom(anc *Builtin) bool {
	for t := b; t != nil; t = t.Base {
		if t == anc {
			return true
		}
	}
	return false
}

// Primitive returns the primitive ancestor (the type just below
// anySimpleType in b's chain).
func (b *Builtin) Primitive() *Builtin {
	t := b
	for t.Base != nil && t.Base.Base != nil {
		t = t.Base
	}
	return t
}

// Parse validates a lexical value and returns its parsed Value. The input
// is whitespace-normalized per the type, parsed in the primitive's lexical
// space, then checked against every facet step in the derivation chain.
func (b *Builtin) Parse(lexical string) (Value, error) {
	norm := ApplyWhiteSpace(b.WS, lexical)
	v, err := b.parsePrimitive(norm)
	if err != nil {
		return Value{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	// Facet chain: root-most first so error messages blame the broadest
	// violated constraint; order does not affect acceptance.
	var chain []*Builtin
	for t := b; t != nil; t = t.Base {
		chain = append(chain, t)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		t := chain[i]
		if t.Check != nil {
			if err := t.Check(norm); err != nil {
				return Value{}, fmt.Errorf("%s: %w", b.Name, err)
			}
		}
		if !t.Facets.IsEmpty() {
			if err := t.Facets.Check(v, norm); err != nil {
				return Value{}, fmt.Errorf("%s: %w", b.Name, err)
			}
		}
	}
	return v, nil
}

// Validate checks a lexical value, discarding the parsed form.
func (b *Builtin) Validate(lexical string) error {
	_, err := b.Parse(lexical)
	return err
}

// parsePrimitive parses the whitespace-normalized lexical form in b's
// primitive value space.
func (b *Builtin) parsePrimitive(s string) (Value, error) {
	if b.List {
		item := b.ItemType
		var items []Value
		if s != "" {
			for _, part := range strings.Fields(s) {
				iv, err := item.Parse(part)
				if err != nil {
					return Value{}, err
				}
				items = append(items, iv)
			}
		}
		return Value{Kind: VList, Items: items}, nil
	}
	switch b.Kind {
	case VString, VAnyURI, VNotation:
		return Value{Kind: b.Kind, Str: s}, nil
	case VQName:
		if err := parseQNameLexical(s); err != nil {
			return Value{}, err
		}
		return Value{Kind: VQName, Str: s}, nil
	case VBool:
		v, err := parseBool(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VBool, Bool: v}, nil
	case VDecimal:
		d, err := ParseDecimal(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VDecimal, Dec: d}, nil
	case VFloat:
		f, err := parseFloat(s, b.FloatBits)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VFloat, F: f}, nil
	case VDuration:
		d, err := ParseDuration(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VDuration, Dur: d}, nil
	case VDateTime:
		dt, err := ParseDateTime(b.Temporal, s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VDateTime, DT: dt}, nil
	case VHexBinary:
		if len(s)%2 != 0 {
			return Value{}, fmt.Errorf("hexBinary %q has odd length", s)
		}
		bytes, err := hexDecode(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VHexBinary, Bytes: bytes}, nil
	case VBase64Binary:
		bytes, err := base64Decode(s)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VBase64Binary, Bytes: bytes}, nil
	}
	return Value{}, fmt.Errorf("internal: unhandled kind for %s", b.Name)
}

// helper constructors for facet bounds

func intPtr(v int) *int { return &v }

func decVal(s string) *Value {
	return &Value{Kind: VDecimal, Dec: MustDecimal(s)}
}

// checkIntegerLexical enforces the integer lexical space (no '.', at least
// one digit).
func checkIntegerLexical(s string) error {
	t := s
	if strings.HasPrefix(t, "+") || strings.HasPrefix(t, "-") {
		t = t[1:]
	}
	if t == "" {
		return fmt.Errorf("bad integer %q", s)
	}
	for _, r := range t {
		if r < '0' || r > '9' {
			return fmt.Errorf("bad integer %q", s)
		}
	}
	return nil
}

func checkProduction(name string, pred func(string) bool) func(string) error {
	return func(s string) error {
		if !pred(s) {
			return fmt.Errorf("%q is not a valid %s", s, name)
		}
		return nil
	}
}

// languagePattern is the xs:language pattern from the spec.
var languagePattern = xsdregex.MustCompile(`[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*`)

// The built-in type hierarchy.
var (
	AnySimpleType = register(&Builtin{Name: "anySimpleType", Kind: VString, WS: WSPreserve})

	// Primitives.
	String       = register(&Builtin{Name: "string", Base: AnySimpleType, Kind: VString, WS: WSPreserve})
	Boolean      = register(&Builtin{Name: "boolean", Base: AnySimpleType, Kind: VBool, WS: WSCollapse})
	DecimalType  = register(&Builtin{Name: "decimal", Base: AnySimpleType, Kind: VDecimal, WS: WSCollapse})
	Float        = register(&Builtin{Name: "float", Base: AnySimpleType, Kind: VFloat, FloatBits: 32, WS: WSCollapse})
	Double       = register(&Builtin{Name: "double", Base: AnySimpleType, Kind: VFloat, FloatBits: 64, WS: WSCollapse})
	DurationType = register(&Builtin{Name: "duration", Base: AnySimpleType, Kind: VDuration, WS: WSCollapse})
	DateTimeType = register(&Builtin{Name: "dateTime", Base: AnySimpleType, Kind: VDateTime, Temporal: KindDateTime, WS: WSCollapse})
	TimeType     = register(&Builtin{Name: "time", Base: AnySimpleType, Kind: VDateTime, Temporal: KindTime, WS: WSCollapse})
	DateType     = register(&Builtin{Name: "date", Base: AnySimpleType, Kind: VDateTime, Temporal: KindDate, WS: WSCollapse})
	GYearMonth   = register(&Builtin{Name: "gYearMonth", Base: AnySimpleType, Kind: VDateTime, Temporal: KindGYearMonth, WS: WSCollapse})
	GYear        = register(&Builtin{Name: "gYear", Base: AnySimpleType, Kind: VDateTime, Temporal: KindGYear, WS: WSCollapse})
	GMonthDay    = register(&Builtin{Name: "gMonthDay", Base: AnySimpleType, Kind: VDateTime, Temporal: KindGMonthDay, WS: WSCollapse})
	GDay         = register(&Builtin{Name: "gDay", Base: AnySimpleType, Kind: VDateTime, Temporal: KindGDay, WS: WSCollapse})
	GMonth       = register(&Builtin{Name: "gMonth", Base: AnySimpleType, Kind: VDateTime, Temporal: KindGMonth, WS: WSCollapse})
	HexBinary    = register(&Builtin{Name: "hexBinary", Base: AnySimpleType, Kind: VHexBinary, WS: WSCollapse})
	Base64Binary = register(&Builtin{Name: "base64Binary", Base: AnySimpleType, Kind: VBase64Binary, WS: WSCollapse})
	AnyURI       = register(&Builtin{Name: "anyURI", Base: AnySimpleType, Kind: VAnyURI, WS: WSCollapse})
	QName        = register(&Builtin{Name: "QName", Base: AnySimpleType, Kind: VQName, WS: WSCollapse})
	NOTATION     = register(&Builtin{Name: "NOTATION", Base: AnySimpleType, Kind: VNotation, WS: WSCollapse})

	// String-derived.
	NormalizedString = register(&Builtin{Name: "normalizedString", Base: String, WS: WSReplace})
	Token            = register(&Builtin{Name: "token", Base: NormalizedString, WS: WSCollapse})
	Language         = register(&Builtin{Name: "language", Base: Token, WS: WSCollapse,
		Facets: Facets{Patterns: []*xsdregex.Regexp{languagePattern}}})
	NMTOKEN = register(&Builtin{Name: "NMTOKEN", Base: Token, WS: WSCollapse,
		Check: checkProduction("NMTOKEN", xmlparser.IsNmtoken)})
	NameType = register(&Builtin{Name: "Name", Base: Token, WS: WSCollapse,
		Check: checkProduction("Name", xmlparser.IsName)})
	NCName = register(&Builtin{Name: "NCName", Base: NameType, WS: WSCollapse,
		Check: checkProduction("NCName", xmlparser.IsNCName)})
	ID     = register(&Builtin{Name: "ID", Base: NCName, WS: WSCollapse, Check: checkProduction("ID", xmlparser.IsNCName)})
	IDREF  = register(&Builtin{Name: "IDREF", Base: NCName, WS: WSCollapse, Check: checkProduction("IDREF", xmlparser.IsNCName)})
	ENTITY = register(&Builtin{Name: "ENTITY", Base: NCName, WS: WSCollapse, Check: checkProduction("ENTITY", xmlparser.IsNCName)})

	// Built-in list types.
	NMTOKENS = register(&Builtin{Name: "NMTOKENS", Base: AnySimpleType, Kind: VList, WS: WSCollapse,
		List: true, ItemType: NMTOKEN, Facets: Facets{MinLength: intPtr(1)}})
	IDREFS = register(&Builtin{Name: "IDREFS", Base: AnySimpleType, Kind: VList, WS: WSCollapse,
		List: true, ItemType: IDREF, Facets: Facets{MinLength: intPtr(1)}})
	ENTITIES = register(&Builtin{Name: "ENTITIES", Base: AnySimpleType, Kind: VList, WS: WSCollapse,
		List: true, ItemType: ENTITY, Facets: Facets{MinLength: intPtr(1)}})

	// Decimal-derived integer tower.
	Integer = register(&Builtin{Name: "integer", Base: DecimalType, WS: WSCollapse,
		Check: checkIntegerLexical, Facets: Facets{FractionDigits: intPtr(0)}})
	NonPositiveInteger = register(&Builtin{Name: "nonPositiveInteger", Base: Integer, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("0")}})
	NegativeInteger = register(&Builtin{Name: "negativeInteger", Base: NonPositiveInteger, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("-1")}})
	Long = register(&Builtin{Name: "long", Base: Integer, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("-9223372036854775808"), MaxInclusive: decVal("9223372036854775807")}})
	Int = register(&Builtin{Name: "int", Base: Long, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("-2147483648"), MaxInclusive: decVal("2147483647")}})
	Short = register(&Builtin{Name: "short", Base: Int, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("-32768"), MaxInclusive: decVal("32767")}})
	Byte = register(&Builtin{Name: "byte", Base: Short, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("-128"), MaxInclusive: decVal("127")}})
	NonNegativeInteger = register(&Builtin{Name: "nonNegativeInteger", Base: Integer, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("0")}})
	UnsignedLong = register(&Builtin{Name: "unsignedLong", Base: NonNegativeInteger, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("18446744073709551615")}})
	UnsignedInt = register(&Builtin{Name: "unsignedInt", Base: UnsignedLong, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("4294967295")}})
	UnsignedShort = register(&Builtin{Name: "unsignedShort", Base: UnsignedInt, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("65535")}})
	UnsignedByte = register(&Builtin{Name: "unsignedByte", Base: UnsignedShort, WS: WSCollapse,
		Facets: Facets{MaxInclusive: decVal("255")}})
	PositiveInteger = register(&Builtin{Name: "positiveInteger", Base: NonNegativeInteger, WS: WSCollapse,
		Facets: Facets{MinInclusive: decVal("1")}})
)

// hexDecode decodes a hexBinary lexical value.
func hexDecode(s string) ([]byte, error) {
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := hexVal(s[i])
		lo, ok2 := hexVal(s[i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("bad hexBinary %q", s)
		}
		out[i/2] = hi<<4 | lo
	}
	return out, nil
}

func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

// base64Decode decodes base64Binary (the XSD lexical space allows internal
// spaces, which collapse already removed between groups; we also strip any
// remaining spaces).
func base64Decode(s string) ([]byte, error) {
	s = strings.ReplaceAll(s, " ", "")
	return stdBase64(s)
}
